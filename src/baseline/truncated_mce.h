// Single-level block decomposition baseline with neighborhood truncation.
//
// This is the comparator the paper argues against (Sections 1, 7: the
// EmMCE-style approaches [8, 10]): blocks have a hard node cap and each
// node is processed with *at most* that many of its neighbors. For
// feasible nodes nothing changes, but a hub's neighborhood no longer fits,
// so part of it is dropped — exactly the failure mode the paper describes:
// "some maximal cliques involving n may remain undetected and some
// non-maximal cliques could be erroneously found."
//
// The implementation is intentionally faithful to that flaw; it exists to
// quantify it (bench_ablation_hub_neglect, baseline tests), not to be used.

#ifndef MCE_BASELINE_TRUNCATED_MCE_H_
#define MCE_BASELINE_TRUNCATED_MCE_H_

#include <cstdint>

#include "graph/graph.h"
#include "mce/clique.h"
#include "mce/enumerator.h"

namespace mce::baseline {

/// Which neighbors a hub keeps when its closed neighborhood exceeds the
/// block cap.
enum class TruncationPolicy : uint8_t {
  /// Keep the lowest-degree neighbors (drop other hubs first) — the
  /// degree-ordered processing suggested in [10].
  kKeepLowDegree = 0,
  /// Keep the smallest node ids (arbitrary but deterministic).
  kKeepFirstIds = 1,
};

struct TruncatedMceOptions {
  /// Hard cap on nodes per block (the paper's m).
  uint32_t max_block_size = 1000;
  TruncationPolicy policy = TruncationPolicy::kKeepLowDegree;
  /// Per-block enumerator (storage/algorithm combination).
  MceOptions combo = {Algorithm::kTomita, StorageKind::kAdjacencyList};
};

struct TruncatedMceResult {
  /// What the baseline reports as "maximal cliques" (deduplicated). May
  /// miss maximal cliques of G and may contain non-maximal ones.
  CliqueSet cliques;
  /// Number of nodes whose neighborhood was truncated (the hubs).
  uint64_t truncated_nodes = 0;
  /// Total neighbors dropped across all truncated nodes.
  uint64_t dropped_neighbors = 0;
};

/// Runs the baseline: each node processed (in increasing degree order)
/// inside a block of at most options.max_block_size nodes formed by itself
/// and as many neighbors as fit.
TruncatedMceResult TruncatedBlockMce(const Graph& g,
                                     const TruncatedMceOptions& options);

/// Quality report of a baseline output against the exact clique set.
struct BaselineComparison {
  uint64_t correct = 0;    // reported and maximal in G
  uint64_t erroneous = 0;  // reported but NOT maximal in G
  uint64_t missed = 0;     // maximal in G but not reported
  size_t largest_missed = 0;  // size of the largest missed clique
};

/// Compares `reported` against `truth` (the exact maximal cliques of g).
/// Both sets are canonicalized by the call.
BaselineComparison CompareWithTruth(const Graph& g, CliqueSet& reported,
                                    CliqueSet& truth);

/// Second baseline: BMC-style disjoint equal-size partitioning (Xing et
/// al. [36] in the paper's numbering). The node set is split into
/// consecutive chunks of `block_size` nodes (BFS order, so chunks are
/// locally coherent) and cliques are enumerated per chunk independently.
/// As Section 7 notes, "since BMC generates blocks having similar size,
/// inter-block cliques are skipped and the approach is not complete":
/// every clique that crosses a chunk boundary is missed or reported in a
/// truncated, non-maximal form.
struct PartitionedMceResult {
  CliqueSet cliques;
  uint64_t num_blocks = 0;
};

PartitionedMceResult PartitionedBlockMce(
    const Graph& g, uint32_t block_size,
    const MceOptions& combo = {Algorithm::kTomita,
                               StorageKind::kAdjacencyList});

}  // namespace mce::baseline

#endif  // MCE_BASELINE_TRUNCATED_MCE_H_
