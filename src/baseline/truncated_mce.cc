#include "baseline/truncated_mce.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/subgraph.h"
#include "util/check.h"

namespace mce::baseline {

TruncatedMceResult TruncatedBlockMce(const Graph& g,
                                     const TruncatedMceOptions& options) {
  const uint32_t m = options.max_block_size;
  MCE_CHECK_GE(m, 2u);
  TruncatedMceResult result;

  // Process nodes in increasing degree order ([10]'s suggestion), so hubs
  // come last and most of their neighborhood is already "visited".
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&g](NodeId a, NodeId b) {
    if (g.Degree(a) != g.Degree(b)) return g.Degree(a) < g.Degree(b);
    return a < b;
  });

  std::vector<uint8_t> processed(g.num_nodes(), 0);
  for (NodeId v : order) {
    // Keep at most m-1 neighbors.
    auto nbrs = g.Neighbors(v);
    std::vector<NodeId> kept(nbrs.begin(), nbrs.end());
    if (kept.size() + 1 > m) {
      switch (options.policy) {
        case TruncationPolicy::kKeepLowDegree:
          std::stable_sort(kept.begin(), kept.end(),
                           [&g](NodeId a, NodeId b) {
                             if (g.Degree(a) != g.Degree(b)) {
                               return g.Degree(a) < g.Degree(b);
                             }
                             return a < b;
                           });
          break;
        case TruncationPolicy::kKeepFirstIds:
          break;  // already ascending by id
      }
      result.dropped_neighbors += kept.size() - (m - 1);
      kept.resize(m - 1);
      ++result.truncated_nodes;
    }

    // Build the (possibly truncated) block and enumerate cliques through v.
    std::vector<NodeId> members = kept;
    members.push_back(v);
    InducedSubgraph block = Induce(g, members);
    // Locate v and split neighbors into candidates / visited.
    std::vector<NodeId> p, x;
    NodeId local_v = kInvalidNode;
    for (NodeId local = 0; local < block.to_parent.size(); ++local) {
      const NodeId parent = block.to_parent[local];
      if (parent == v) {
        local_v = local;
      } else if (processed[parent]) {
        x.push_back(local);
      } else {
        p.push_back(local);
      }
    }
    MCE_CHECK_NE(local_v, kInvalidNode);
    EnumerateSeeded(block.graph, options.combo, local_v, std::move(p),
                    std::move(x), [&](std::span<const NodeId> local) {
                      result.cliques.Add(ToParentIds(block, local));
                    });
    processed[v] = 1;
  }
  result.cliques.Canonicalize();
  return result;
}

PartitionedMceResult PartitionedBlockMce(const Graph& g, uint32_t block_size,
                                         const MceOptions& combo) {
  MCE_CHECK_GE(block_size, 1u);
  PartitionedMceResult result;
  const NodeId n = g.num_nodes();
  if (n == 0) return result;

  // BFS order so consecutive chunks are locally coherent (BMC's blocks
  // are built from traversal, not random hashing).
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<uint8_t> seen(n, 0);
  std::vector<NodeId> queue;
  for (NodeId start = 0; start < n; ++start) {
    if (seen[start]) continue;
    seen[start] = 1;
    queue.push_back(start);
    size_t head = order.size();
    order.push_back(start);
    while (head < order.size()) {
      NodeId v = order[head++];
      for (NodeId u : g.Neighbors(v)) {
        if (!seen[u]) {
          seen[u] = 1;
          order.push_back(u);
        }
      }
    }
  }

  for (size_t begin = 0; begin < order.size(); begin += block_size) {
    const size_t end = std::min(order.size(), begin + block_size);
    std::vector<NodeId> chunk(order.begin() + static_cast<ptrdiff_t>(begin),
                              order.begin() + static_cast<ptrdiff_t>(end));
    InducedSubgraph block = Induce(g, chunk);
    ++result.num_blocks;
    EnumerateMaximalCliques(block.graph, combo,
                            [&](std::span<const NodeId> local) {
                              result.cliques.Add(ToParentIds(block, local));
                            });
  }
  result.cliques.Canonicalize();
  return result;
}

BaselineComparison CompareWithTruth(const Graph& g, CliqueSet& reported,
                                    CliqueSet& truth) {
  (void)g;
  reported.Canonicalize();
  truth.Canonicalize();
  BaselineComparison cmp;
  const auto& r = reported.cliques();
  const auto& t = truth.cliques();
  size_t i = 0, j = 0;
  while (i < r.size() || j < t.size()) {
    if (j == t.size() || (i < r.size() && r[i] < t[j])) {
      ++cmp.erroneous;
      ++i;
    } else if (i == r.size() || t[j] < r[i]) {
      ++cmp.missed;
      cmp.largest_missed = std::max(cmp.largest_missed, t[j].size());
      ++j;
    } else {
      ++cmp.correct;
      ++i;
      ++j;
    }
  }
  return cmp;
}

}  // namespace mce::baseline
