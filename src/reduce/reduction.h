// Graph-reduction prepass (Deng et al. 2023-style reduction rules adapted
// to the exact-MCE pipeline).
//
// ReduceGraph strips vertices whose maximal cliques are trivially known
// before CUT/BLOCKS ever run, emitting those cliques directly and handing
// the pipeline a smaller graph R plus a ReductionMap that re-expands R's
// cliques to original ids. Three rule families, iterated to a fixed point:
//
//  * Simplicial elimination (subsumes degree-0 and degree-1): remove a
//    vertex u whose current neighborhood N_R(u) is a clique. N_R[u] is
//    then the unique maximal clique of R containing u, and its expansion
//    E_u is a clique of the original graph G (class members are pairwise
//    adjacent and adjacency between classes is all-or-nothing). E_u is
//    emitted iff it is not contained in a previously emitted trivial
//    clique — exactly the maximal ones survive: an extension vertex x of
//    E_u would have its class representative either still alive (then it
//    sits in N_R(u), so x ∈ E_u — contradiction) or removed earlier (then
//    by induction E_u ∪ {x} lies inside an earlier emitted clique, so E_u
//    was covered and suppressed). Degree-0/1 are the d=0/1 cases; general
//    dominated-vertex *deletion* is unsound for exact MCE (it loses or
//    leaks cliques — see DESIGN.md §10), so domination folds only through
//    this simplicial form, with the fold degree capped to bound the
//    pairwise adjacency check.
//  * True-twin compression: vertices with identical closed neighborhoods
//    N_R[u] = N_R[v] are merged into a super-vertex; every maximal clique
//    contains either both or neither, so enumeration runs once on the
//    representative and re-expands through the vertex class. Classes
//    compose across rounds (a super-vertex can later be merged again or
//    eliminated as simplicial).
//  * Re-expansion leak check: a maximal clique C of the final R whose
//    expansion is contained in an emitted trivial clique is non-maximal
//    in G (possible once simplicial removals with degree >= 2 happened)
//    and is dropped by ReductionMap::ExpandClique. With only
//    degree-0/1/twin eliminations no leak can exist, and the check
//    short-circuits on the covered-vertex counts.
//
// Everything mutable during the fixed-point loop draws from a reusable
// ReduceWorkspace (grow-only, like mce::BlockWorkspace), so repeated runs
// are allocation-free at steady state apart from the result arrays.

#ifndef MCE_REDUCE_REDUCTION_H_
#define MCE_REDUCE_REDUCTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "mce/clique.h"

namespace mce::reduce {

struct ReduceOptions {
  /// Maximum current degree at which the simplicial (dominated-fold) rule
  /// is attempted; the clique test costs O(d^2 log deg). Degree-0/1
  /// elimination is always on. Must be >= 1.
  uint32_t max_fold_degree = 8;
  /// Fixed-point round cap; 0 = iterate until no rule fires.
  uint32_t max_rounds = 0;
};

/// Per-rule telemetry of one reduction run (RunStats / metrics / --json).
struct ReductionStats {
  bool enabled = false;
  /// Vertices removed by rule: degree-0, degree-1, simplicial fold with
  /// degree >= 2, and twin merges (the merged vertex disappears).
  uint64_t isolated_removed = 0;
  uint64_t degree1_removed = 0;
  uint64_t dominated_removed = 0;
  uint64_t twins_merged = 0;
  uint64_t vertices_removed = 0;  // sum of the four above
  uint64_t edges_removed = 0;
  /// Maximal cliques emitted directly by the prepass.
  uint64_t trivial_cliques = 0;
  /// Elimination candidates suppressed because a previously emitted
  /// trivial clique contained them (they were not maximal in G).
  uint64_t suppressed_cliques = 0;
  /// Fixed-point rounds that fired at least one rule.
  uint32_t rounds = 0;
  double seconds = 0;
};

/// Maps the reduced graph R back to the original graph G: per-vertex
/// expansion classes (twin members, sorted original ids) plus the emitted
/// trivial cliques and their cover index. Immutable after ReduceGraph
/// returns; safe to share across threads.
class ReductionMap {
 public:
  /// False for a default-constructed map (no reduction ran); expansion is
  /// then the identity and no cover check is needed.
  bool active() const { return active_; }

  /// Original-id members of reduced vertex `r`, sorted.
  std::span<const NodeId> ClassOf(NodeId r) const {
    const size_t begin = r == 0 ? 0 : class_ends_[r - 1];
    return {class_ids_.data() + begin, class_ends_[r] - begin};
  }

  /// Expands a clique of R (any order) to sorted original ids in *out.
  /// Returns false when the expansion is contained in an emitted trivial
  /// clique — the clique is not maximal in G and must be dropped.
  bool ExpandClique(std::span<const NodeId> reduced, Clique* out) const;

  size_t num_trivial_cliques() const { return trivial_ends_.size(); }
  /// The i-th emitted trivial clique (sorted original ids), in emission
  /// order — the order executors deliver them in.
  std::span<const NodeId> TrivialClique(size_t i) const {
    const size_t begin = i == 0 ? 0 : trivial_ends_[i - 1];
    return {trivial_ids_.data() + begin, trivial_ends_[i] - begin};
  }

 private:
  friend class Reducer;

  /// True iff the sorted original-id clique `c` is a subset of some
  /// emitted trivial clique.
  bool Covered(std::span<const NodeId> c) const;

  bool active_ = false;
  // Flat per-vertex class arena over R's ids.
  std::vector<NodeId> class_ids_;
  std::vector<size_t> class_ends_;
  // Flat trivial-clique arena (original ids, each sorted).
  std::vector<NodeId> trivial_ids_;
  std::vector<size_t> trivial_ends_;
  // Cover index: cover_count_[v] != 0 iff original vertex v appears in
  // some trivial clique (saturating count, doubles as the "pick the
  // rarest member" heuristic). The cliques containing v form a chain in
  // cover_pool_ — (trivial index, next entry) — headed by cover_head_[v];
  // one flat pool instead of per-vertex vectors keeps emission
  // allocation-light.
  static constexpr uint32_t kNoCoverEntry = 0xffffffffu;
  std::vector<uint8_t> cover_count_;
  std::vector<uint32_t> cover_head_;
  std::vector<std::pair<uint32_t, uint32_t>> cover_pool_;
};

/// Grow-only scratch for ReduceGraph: the mutable adjacency copy, the
/// worklist, liveness flags, and twin-hash buffers. Reusing one workspace
/// across runs eliminates steady-state allocations of the fixed-point
/// loop.
class ReduceWorkspace {
 public:
  ReduceWorkspace() = default;
  ReduceWorkspace(const ReduceWorkspace&) = delete;
  ReduceWorkspace& operator=(const ReduceWorkspace&) = delete;

 private:
  friend class Reducer;
  // Mutable flat-CSR adjacency: vertex v's current neighbors are
  // lists[row_begin[v], row_begin[v] + deg[v]) (unsorted; removal swaps
  // with the last active entry). mirror[p] is the position of the reverse
  // arc of lists[p], maintained through swaps, so deleting a vertex costs
  // O(deg) instead of rescanning every neighbor's row. One O(m) copy per
  // run, no per-vertex vectors.
  std::vector<uint32_t> row_begin;
  std::vector<NodeId> lists;
  std::vector<uint32_t> mirror;
  std::vector<uint32_t> deg;
  std::vector<uint32_t> cursor;           // mirror-construction scratch
  std::vector<uint8_t> alive;
  std::vector<uint8_t> queued;
  std::vector<NodeId> queue;
  std::vector<NodeId> candidates;         // pre-scan seed vertices
  std::vector<std::vector<NodeId>> cls;   // extra class members (empty =
                                          // singleton), original ids
  std::vector<std::pair<uint64_t, NodeId>> twin_keys;  // (hash, vertex)
  std::vector<uint64_t> twin_hash;  // pre-scan per-vertex twin signatures
  std::vector<NodeId> scratch;            // candidate/closed-neighborhood
  std::vector<NodeId> merge_scratch;
};

struct ReductionResult {
  /// True when no rule fired anywhere: the pre-scan proved the input is
  /// already irreducible, `graph` is default-constructed (empty), and
  /// `map` is inactive — callers keep using the input graph directly.
  /// This is the fast path that makes the prepass near-free on graphs
  /// with nothing to strip (no adjacency copy, no rebuild).
  bool unchanged = false;
  /// The reduced graph R the pipeline decomposes (empty when unchanged).
  Graph graph;
  ReductionMap map;
  ReductionStats stats;
};

/// Runs the reduction rules on `g` to a fixed point. `workspace` may be
/// null (a local one is used). The result graph's vertex r corresponds to
/// the original vertices map.ClassOf(r); the trivial cliques plus the
/// expansions of R's maximal cliques that survive ExpandClique are exactly
/// the maximal cliques of `g`, each produced once.
ReductionResult ReduceGraph(const Graph& g, const ReduceOptions& options,
                            ReduceWorkspace* workspace = nullptr);

}  // namespace mce::reduce

#endif  // MCE_REDUCE_REDUCTION_H_
