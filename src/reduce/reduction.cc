#include "reduce/reduction.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "util/check.h"
#include "util/timer.h"

namespace mce::reduce {

bool ReductionMap::ExpandClique(std::span<const NodeId> reduced,
                                Clique* out) const {
  out->clear();
  if (!active_) {
    out->assign(reduced.begin(), reduced.end());
    std::sort(out->begin(), out->end());
    return true;
  }
  for (NodeId r : reduced) {
    const std::span<const NodeId> members = ClassOf(r);
    out->insert(out->end(), members.begin(), members.end());
  }
  // The reduced→original relabeling is monotone and most classes are
  // singletons, so expansions of already-sorted cliques usually come out
  // sorted — checking is far cheaper than unconditionally sorting on
  // every enumerated clique.
  if (!std::is_sorted(out->begin(), out->end())) {
    std::sort(out->begin(), out->end());
  }
  return trivial_ends_.empty() || !Covered(*out);
}

bool ReductionMap::Covered(std::span<const NodeId> c) const {
  if (c.empty()) return false;
  // Fast path: a containing clique would cover every member, so one
  // uncovered vertex rules containment out without touching the index.
  for (NodeId v : c) {
    if (cover_count_[v] == 0) return false;
  }
  // Any member's chain suffices (a superset contains all members); walk
  // the chain of the member appearing in the fewest trivial cliques.
  NodeId best = c[0];
  for (NodeId v : c) {
    if (cover_count_[v] < cover_count_[best]) best = v;
  }
  for (uint32_t e = cover_head_[best]; e != kNoCoverEntry;
       e = cover_pool_[e].second) {
    const std::span<const NodeId> t = TrivialClique(cover_pool_[e].first);
    if (t.size() >= c.size() &&
        std::includes(t.begin(), t.end(), c.begin(), c.end())) {
      return true;
    }
  }
  return false;
}

namespace {

/// splitmix64 finalizer; per-vertex mixing for the twin hashes.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Order-independent hash of the closed neighborhood {v} ∪ nbrs — the
/// mutable adjacency rows are unsorted (swap removal), so the key must be
/// commutative; candidate groups are verified on sorted copies anyway.
uint64_t HashClosed(std::span<const NodeId> nbrs, NodeId v) {
  uint64_t sum = Mix(v + 1);
  uint64_t xr = sum;
  for (NodeId u : nbrs) {
    const uint64_t h = Mix(u + 1);
    sum += h;
    xr ^= h;
  }
  return Mix(sum ^ (xr * 0xff51afd7ed558ccdull) ^ (nbrs.size() + 1));
}

}  // namespace

/// The fixed-point loop. Owns no storage: scratch lives in the workspace,
/// results are written into the ReductionResult.
///
/// The reducer first pre-scans the immutable input: which vertices a rule
/// could fire on right now (degree <= 1, simplicial within the fold cap,
/// or a true-twin pair). When the answer is "none" the input is already a
/// fixed point and the run ends without copying the adjacency or building
/// a result graph — the prepass on an irreducible graph costs one
/// read-only pass. Otherwise the candidates seed the worklist, so the
/// mutable phase never re-derives what the scan already proved.
class Reducer {
 public:
  Reducer(const Graph& g, const ReduceOptions& options, ReduceWorkspace& ws,
          ReductionResult& out)
      : g_(g), options_(options), ws_(ws), out_(out) {}

  void Run() {
    Timer timer;
    const NodeId n = g_.num_nodes();
    ReductionStats& stats = out_.stats;
    stats.enabled = true;

    if (!PreScan()) {
      out_.unchanged = true;
      stats.seconds = timer.ElapsedSeconds();
      return;
    }

    Reset(n);
    for (NodeId v : ws_.candidates) Push(v);
    for (;;) {
      const bool removed = DrainWorklist();
      const bool merged = MergeTwins();
      if (removed || merged) ++stats.rounds;
      // DrainWorklist is exhaustive — every vertex whose neighborhood
      // changed was re-queued and re-tested — so once a twin scan of the
      // drained state finds nothing, the state is a fixed point; no
      // confirming extra iteration is needed.
      if (!merged) break;
      if (options_.max_rounds != 0 && stats.rounds >= options_.max_rounds) {
        break;
      }
    }

    BuildResult(n);
    stats.seconds = timer.ElapsedSeconds();
  }

 private:
  // --- Read-only pre-scan over the input graph. ---------------------------

  bool AdjacentInInput(NodeId u, NodeId w) const {
    const std::span<const NodeId> row = g_.Neighbors(u);
    return std::binary_search(row.begin(), row.end(), w);
  }

  bool InputNeighborhoodIsClique(std::span<const NodeId> nbrs) const {
    // Cheap reject first: the extreme ids of a sorted row are the pair
    // most likely to be non-adjacent in banded/ring-like graphs.
    if (!AdjacentInInput(nbrs.front(), nbrs.back())) return false;
    for (size_t i = 0; i + 1 < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        if (!AdjacentInInput(nbrs[i], nbrs[j])) return false;
      }
    }
    return true;
  }

  /// Sorted closed neighborhood in the (sorted-row) input graph.
  void BuildClosedInInput(NodeId v, std::vector<NodeId>& out) const {
    const std::span<const NodeId> nbrs = g_.Neighbors(v);
    out.clear();
    auto pos = std::lower_bound(nbrs.begin(), nbrs.end(), v);
    out.insert(out.end(), nbrs.begin(), pos);
    out.push_back(v);
    out.insert(out.end(), pos, nbrs.end());
  }

  bool ClosedEqualInInput(NodeId v, NodeId w) {
    if (g_.Neighbors(v).size() != g_.Neighbors(w).size()) return false;
    BuildClosedInInput(v, ws_.scratch);
    BuildClosedInInput(w, ws_.merge_scratch);
    return ws_.scratch == ws_.merge_scratch;
  }

  /// True iff some input vertex pair has identical closed neighborhoods.
  /// True twins are necessarily adjacent (v ∈ N[v] = N[u]), so scanning
  /// each edge with a cheap per-vertex signature filter — equal degree,
  /// equal closed-id sum — finds a pair in O(n + m) plus the rare full
  /// compares on signature collisions.
  bool InputHasTwinPair() {
    const NodeId n = g_.num_nodes();
    if (n < 2) return false;
    if (ws_.twin_hash.size() < n) ws_.twin_hash.resize(n);
    for (NodeId v = 0; v < n; ++v) {
      uint64_t sig = v;
      for (NodeId u : g_.Neighbors(v)) sig += u;
      ws_.twin_hash[v] = sig;
    }
    for (NodeId v = 0; v < n; ++v) {
      const std::span<const NodeId> nbrs = g_.Neighbors(v);
      for (NodeId u : nbrs) {
        if (u <= v) continue;
        if (ws_.twin_hash[u] == ws_.twin_hash[v] &&
            nbrs.size() == g_.Neighbors(u).size() &&
            ClosedEqualInInput(v, u)) {
          return true;
        }
      }
    }
    return false;
  }

  /// Collects every vertex the simplicial rule fires on right now into
  /// ws_.candidates; when none exists, falls through to the twin-pair
  /// existence check. Returns false iff the graph is already irreducible.
  bool PreScan() {
    ws_.candidates.clear();
    const NodeId n = g_.num_nodes();
    for (NodeId v = 0; v < n; ++v) {
      const std::span<const NodeId> nbrs = g_.Neighbors(v);
      if (nbrs.size() <= 1) {
        ws_.candidates.push_back(v);
        continue;
      }
      if (nbrs.size() <= options_.max_fold_degree &&
          InputNeighborhoodIsClique(nbrs)) {
        ws_.candidates.push_back(v);
      }
    }
    // With simplicial seeds the full run happens anyway (its twin pass
    // covers twins); only a seedless graph needs the existence probe.
    if (!ws_.candidates.empty()) return true;
    return InputHasTwinPair();
  }

  // --- Mutable flat-CSR phase. --------------------------------------------

  void Reset(NodeId n) {
    ws_.row_begin.resize(static_cast<size_t>(n) + 1);
    ws_.deg.resize(n);
    ws_.lists.clear();
    for (NodeId v = 0; v < n; ++v) {
      ws_.row_begin[v] = static_cast<uint32_t>(ws_.lists.size());
      const std::span<const NodeId> nbrs = g_.Neighbors(v);
      ws_.lists.insert(ws_.lists.end(), nbrs.begin(), nbrs.end());
      ws_.deg[v] = static_cast<uint32_t>(nbrs.size());
    }
    ws_.row_begin[n] = static_cast<uint32_t>(ws_.lists.size());
    // Reverse-arc positions in O(m): sweeping vertices in ascending order
    // visits u's in-arcs in ascending source order, which is exactly u's
    // sorted row order — so a per-row cursor pairs each arc with its
    // reverse without any searching.
    ws_.mirror.resize(ws_.lists.size());
    ws_.cursor.assign(ws_.row_begin.begin(), ws_.row_begin.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      const uint32_t begin = ws_.row_begin[v];
      const uint32_t end = ws_.row_begin[v + 1];
      for (uint32_t p = begin; p < end; ++p) {
        ws_.mirror[p] = ws_.cursor[ws_.lists[p]]++;
      }
    }
    ws_.alive.assign(n, 1);
    ws_.queued.assign(n, 0);
    ws_.queue.clear();
    if (ws_.cls.size() < n) ws_.cls.resize(n);
    for (NodeId v = 0; v < n; ++v) ws_.cls[v].clear();
    ReductionMap& map = out_.map;
    map.cover_count_.assign(n, 0);
    map.cover_head_.assign(n, ReductionMap::kNoCoverEntry);
    map.cover_pool_.clear();
  }

  std::span<const NodeId> Row(NodeId v) const {
    return {ws_.lists.data() + ws_.row_begin[v], ws_.deg[v]};
  }

  /// Membership by scanning the lower-degree endpoint's (unsorted) row.
  bool Adjacent(NodeId u, NodeId w) const {
    if (ws_.deg[w] < ws_.deg[u]) std::swap(u, w);
    for (NodeId x : Row(u)) {
      if (x == w) return true;
    }
    return false;
  }

  /// Drops the arc at position `j` of u's row: swap with the last active
  /// entry and repoint the moved arc's reverse. O(1).
  void RemoveArcAt(NodeId u, uint32_t j) {
    const uint32_t e = ws_.row_begin[u] + ws_.deg[u] - 1;
    MCE_DCHECK_LE(ws_.row_begin[u], j);
    MCE_DCHECK_LE(j, e);
    if (j != e) {
      ws_.lists[j] = ws_.lists[e];
      ws_.mirror[j] = ws_.mirror[e];
      ws_.mirror[ws_.mirror[j]] = j;
    }
    --ws_.deg[u];
  }

  /// Detaches `v` from the graph: every incident arc and its reverse go
  /// away (O(deg(v)) via the mirror index), the neighbors re-queue.
  void DetachVertex(NodeId v) {
    const uint32_t begin = ws_.row_begin[v];
    const uint32_t end = begin + ws_.deg[v];
    for (uint32_t p = begin; p < end; ++p) {
      const NodeId u = ws_.lists[p];
      MCE_DCHECK_EQ(ws_.lists[ws_.mirror[p]], v);
      RemoveArcAt(u, ws_.mirror[p]);
      ++out_.stats.edges_removed;
      Push(u);
    }
    ws_.deg[v] = 0;
    ws_.alive[v] = 0;
  }

  void Push(NodeId v) {
    if (ws_.alive[v] == 0 || ws_.queued[v] != 0) return;
    ws_.queued[v] = 1;
    ws_.queue.push_back(v);
  }

  /// True iff the current neighborhood of `v` is pairwise adjacent.
  bool NeighborhoodIsClique(NodeId v) const {
    const std::span<const NodeId> nbrs = Row(v);
    for (size_t i = 0; i + 1 < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        if (!Adjacent(nbrs[i], nbrs[j])) return false;
      }
    }
    return true;
  }

  /// Appends the expansion class of `v` ({v} plus its merged members) to
  /// the scratch candidate.
  void AppendClass(NodeId v) {
    ws_.scratch.push_back(v);
    ws_.scratch.insert(ws_.scratch.end(), ws_.cls[v].begin(),
                       ws_.cls[v].end());
  }

  /// Emits the sorted original-id candidate in ws_.scratch unless a
  /// previously emitted trivial clique contains it.
  void EmitOrSuppress() {
    ReductionMap& map = out_.map;
    if (map.Covered(ws_.scratch)) {
      ++out_.stats.suppressed_cliques;
      return;
    }
    const auto index = static_cast<uint32_t>(map.trivial_ends_.size());
    map.trivial_ids_.insert(map.trivial_ids_.end(), ws_.scratch.begin(),
                            ws_.scratch.end());
    map.trivial_ends_.push_back(map.trivial_ids_.size());
    for (NodeId v : ws_.scratch) {
      if (map.cover_count_[v] < 255) ++map.cover_count_[v];
      map.cover_pool_.emplace_back(index, map.cover_head_[v]);
      map.cover_head_[v] = static_cast<uint32_t>(map.cover_pool_.size() - 1);
    }
    ++out_.stats.trivial_cliques;
  }

  /// Simplicial elimination (degree-0/1 plus the capped dominated fold)
  /// until the worklist drains. Returns true if any vertex was removed.
  bool DrainWorklist() {
    bool changed = false;
    while (!ws_.queue.empty()) {
      const NodeId v = ws_.queue.back();
      ws_.queue.pop_back();
      ws_.queued[v] = 0;
      if (ws_.alive[v] == 0) continue;
      const uint32_t deg = ws_.deg[v];
      if (deg >= 2 &&
          (deg > options_.max_fold_degree || !NeighborhoodIsClique(v))) {
        continue;
      }
      // N_R[v] is a clique of R; its expansion is the unique maximal
      // clique of R containing v, and a clique of G.
      ws_.scratch.clear();
      AppendClass(v);
      for (NodeId u : Row(v)) AppendClass(u);
      std::sort(ws_.scratch.begin(), ws_.scratch.end());
      EmitOrSuppress();

      ReductionStats& stats = out_.stats;
      if (deg == 0) {
        ++stats.isolated_removed;
      } else if (deg == 1) {
        ++stats.degree1_removed;
      } else {
        ++stats.dominated_removed;
      }
      DetachVertex(v);
      ++stats.vertices_removed;
      changed = true;
    }
    return changed;
  }

  /// Builds the sorted closed neighborhood of `v` into `out`.
  void BuildClosed(NodeId v, std::vector<NodeId>& out) const {
    const std::span<const NodeId> nbrs = Row(v);
    out.assign(nbrs.begin(), nbrs.end());
    out.push_back(v);
    std::sort(out.begin(), out.end());
  }

  /// One true-twin pass: groups alive vertices by closed-neighborhood
  /// hash, verifies equality, and merges each group into its smallest
  /// member. Returns true if anything merged.
  bool MergeTwins() {
    const NodeId n = g_.num_nodes();
    ws_.twin_keys.clear();
    for (NodeId v = 0; v < n; ++v) {
      if (ws_.alive[v] == 0) continue;
      ws_.twin_keys.emplace_back(HashClosed(Row(v), v), v);
    }
    std::sort(ws_.twin_keys.begin(), ws_.twin_keys.end());

    bool changed = false;
    size_t i = 0;
    while (i < ws_.twin_keys.size()) {
      size_t j = i + 1;
      while (j < ws_.twin_keys.size() &&
             ws_.twin_keys[j].first == ws_.twin_keys[i].first) {
        ++j;
      }
      if (j - i > 1) changed = MergeTwinRun(i, j) || changed;
      i = j;
    }
    return changed;
  }

  /// Verifies and merges the twin candidates in twin_keys[begin, end)
  /// (equal hash). Group members are compared against the pre-merge state
  /// — the representative's closed neighborhood is captured before any
  /// merge mutates it.
  bool MergeTwinRun(size_t begin, size_t end) {
    bool changed = false;
    for (size_t i = begin; i < end; ++i) {
      const NodeId rep = ws_.twin_keys[i].second;
      if (ws_.alive[rep] == 0) continue;
      // merge_scratch holds closed(rep); scratch is per-candidate.
      BuildClosed(rep, ws_.merge_scratch);
      // Collect the whole equivalence group against the pre-merge
      // neighborhoods, then merge (merging u into rep shrinks every
      // remaining twin's neighborhood by u, so interleaving comparisons
      // with merges would miss the rest of the group this round).
      size_t group_size = 0;
      for (size_t j = i + 1; j < end; ++j) {
        const NodeId u = ws_.twin_keys[j].second;
        if (ws_.alive[u] == 0) continue;
        BuildClosed(u, ws_.scratch);
        if (ws_.scratch == ws_.merge_scratch) {
          // Tag group members by rotating them to the front slots after i.
          std::swap(ws_.twin_keys[i + 1 + group_size], ws_.twin_keys[j]);
          ++group_size;
        }
      }
      for (size_t j = 0; j < group_size; ++j) {
        MergeTwin(rep, ws_.twin_keys[i + 1 + j].second);
        changed = true;
      }
      i += group_size;
    }
    return changed;
  }

  /// Merges twin `u` into representative `rep`: rep's expansion class
  /// absorbs u's, and u leaves the reduced graph.
  void MergeTwin(NodeId rep, NodeId u) {
    std::vector<NodeId>& rep_cls = ws_.cls[rep];
    std::vector<NodeId>& u_cls = ws_.cls[u];
    ws_.merge_scratch.clear();
    std::merge(u_cls.begin(), u_cls.end(), rep_cls.begin(), rep_cls.end(),
               std::back_inserter(ws_.merge_scratch));
    auto pos = std::lower_bound(ws_.merge_scratch.begin(),
                                ws_.merge_scratch.end(), u);
    ws_.merge_scratch.insert(pos, u);
    rep_cls.swap(ws_.merge_scratch);
    u_cls.clear();

    DetachVertex(u);
    ++out_.stats.twins_merged;
    ++out_.stats.vertices_removed;
  }

  /// Compacts the surviving vertices into R and freezes the map.
  void BuildResult(NodeId n) {
    ReductionMap& map = out_.map;
    map.active_ = true;
    map.class_ids_.clear();
    map.class_ends_.clear();

    NodeId next = 0;
    std::vector<NodeId>& new_id = ws_.merge_scratch;
    new_id.assign(n, kInvalidNode);
    for (NodeId v = 0; v < n; ++v) {
      if (ws_.alive[v] != 0) new_id[v] = next++;
    }

    // New ids ascend with the old ones, so remapping a row and sorting it
    // yields the final CSR layout directly — no GraphBuilder round trip.
    std::vector<uint64_t> offsets;
    std::vector<NodeId> adjacency;
    offsets.reserve(static_cast<size_t>(next) + 1);
    for (NodeId v = 0; v < n; ++v) {
      if (ws_.alive[v] == 0) continue;
      // Class = {v} plus the merged twins; twin representatives are the
      // smallest id of their group, so v leads its sorted class.
      map.class_ids_.push_back(v);
      map.class_ids_.insert(map.class_ids_.end(), ws_.cls[v].begin(),
                            ws_.cls[v].end());
      map.class_ends_.push_back(map.class_ids_.size());
      offsets.push_back(adjacency.size());
      const size_t row_start = adjacency.size();
      for (NodeId u : Row(v)) adjacency.push_back(new_id[u]);
      std::sort(adjacency.begin() + row_start, adjacency.end());
    }
    offsets.push_back(adjacency.size());
    out_.graph = Graph::FromSortedCsr(std::move(offsets),
                                      std::move(adjacency));
  }

  const Graph& g_;
  const ReduceOptions& options_;
  ReduceWorkspace& ws_;
  ReductionResult& out_;
};

ReductionResult ReduceGraph(const Graph& g, const ReduceOptions& options,
                            ReduceWorkspace* workspace) {
  MCE_CHECK_GE(options.max_fold_degree, 1u);
  ReductionResult out;
  ReduceWorkspace local;
  Reducer reducer(g, options, workspace != nullptr ? *workspace : local, out);
  reducer.Run();
  return out;
}

}  // namespace mce::reduce
