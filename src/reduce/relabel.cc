#include "reduce/relabel.h"

#include <utility>
#include <vector>

#include "graph/builder.h"
#include "graph/core_decomposition.h"

namespace mce::reduce {

void DegeneracyRelabelBlock(decomp::Block* block) {
  const Graph& g = block->subgraph.graph;
  const NodeId n = g.num_nodes();
  // Only relabel blocks where layout can pay for the rebuild: below ~half
  // a cache line of NodeIds the whole block is resident whatever the
  // order, and in sparse blocks the intersection footprint is too small
  // for packing the high-core vertices first to matter — the rebuild
  // (core decomposition + permuted CSR) would only cost. Dense blocks are
  // also where the matrix/bitset backends live, which benefit most.
  constexpr NodeId kMinRelabelNodes = 32;
  constexpr uint64_t kMinRelabelAvgDegree = 16;
  if (n < kMinRelabelNodes) return;
  if (g.num_edges() * 2 < kMinRelabelAvgDegree * static_cast<uint64_t>(n)) {
    return;
  }

  const CoreDecomposition cd = ComputeCoreDecomposition(g);
  // New id i takes the vertex the degeneracy order peels last — the
  // highest-core vertices come first.
  std::vector<NodeId> old_of_new(n), new_of_old(n);
  for (NodeId i = 0; i < n; ++i) {
    old_of_new[i] = cd.order[n - 1 - i];
    new_of_old[old_of_new[i]] = i;
  }

  GraphBuilder builder(n);
  builder.ReserveEdges(g.num_edges());
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (v > u) builder.AddEdge(new_of_old[u], new_of_old[v]);
    }
  }
  block->subgraph.graph = builder.Build();

  std::vector<NodeId> to_parent(n);
  std::vector<decomp::NodeRole> roles(n);
  for (NodeId i = 0; i < n; ++i) {
    to_parent[i] = block->subgraph.to_parent[old_of_new[i]];
    roles[i] = block->roles[old_of_new[i]];
  }
  block->subgraph.to_parent = std::move(to_parent);
  block->roles = std::move(roles);
  block->kernel_local.clear();
  for (NodeId i = 0; i < n; ++i) {
    if (block->roles[i] == decomp::NodeRole::kKernel) {
      block->kernel_local.push_back(i);
    }
  }
}

}  // namespace mce::reduce
