// Degeneracy-ordered block vertex layout.
//
// Block-local ids are assigned by Induce in ascending parent-id order,
// which scatters the block's densest vertices across its bitset rows and
// adjacency lists. Relabeling the block in reverse degeneracy order packs
// the hottest (highest-core) vertices into the lowest local ids: their
// bitset rows land in the same leading cache lines, and list-backend
// galloping scans run over the dense low-id prefix where intersections
// actually live (Eppstein–Löffler–Strash's ordering argument, applied to
// the block layout instead of the iteration order).
//
// The relabeling is a pure permutation of local ids: the analyzed clique
// set is unchanged, roles/kernel_local/to_parent are permuted consistently
// (kernel_local stays ascending in the new ids; to_parent is no longer
// increasing). Within-block emission order follows the new kernel order,
// which every executor shares — serial/pooled byte-identity is preserved.

#ifndef MCE_REDUCE_RELABEL_H_
#define MCE_REDUCE_RELABEL_H_

#include "decomp/block.h"

namespace mce::reduce {

/// Permutes `block`'s local ids into reverse degeneracy order (highest
/// core number first; ties follow the degeneracy order). No-op for blocks
/// where layout cannot pay for the rebuild: fewer than 32 nodes (the
/// whole block is cache-resident in any order) or average degree under 16
/// (too sparse for the packed prefix to shorten intersections).
void DegeneracyRelabelBlock(decomp::Block* block);

}  // namespace mce::reduce

#endif  // MCE_REDUCE_RELABEL_H_
