// Block feature extraction for the algorithm-selection decision tree.
//
// Section 4: "The parameters we used to classify blocks are the following:
// (a) number of nodes; (b) number of edges; (c) density; (d) degeneracy;
// and (e) the maximum value d* for which the graph has at least d* nodes
// with degree greater or equal than d*." All are O(n + m) to compute.

#ifndef MCE_DECISION_FEATURES_H_
#define MCE_DECISION_FEATURES_H_

#include <array>
#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace mce::decision {

/// Feature identifiers, indexable into BlockFeatures::AsArray().
enum class FeatureId : uint8_t {
  kNumNodes = 0,
  kNumEdges = 1,
  kDensity = 2,
  kDegeneracy = 3,
  kDStar = 4,
};

inline constexpr int kNumFeatures = 5;

const char* FeatureName(FeatureId id);

/// The five classification parameters of a block (or any graph).
struct BlockFeatures {
  double num_nodes = 0;
  double num_edges = 0;
  double density = 0;
  double degeneracy = 0;
  double d_star = 0;

  double Get(FeatureId id) const;
  std::array<double, kNumFeatures> AsArray() const;
  std::string ToString() const;
};

/// Computes all five features of `g`.
BlockFeatures ComputeFeatures(const Graph& g);

}  // namespace mce::decision

#endif  // MCE_DECISION_FEATURES_H_
