// CART-style decision tree trainer.
//
// The paper produces its Figure 3 tree by "launching the recursive
// partitioning algorithm in [32]" (rpart) on a training set of
// (block features -> fastest combo) measurements. This is an equivalent
// recursive partitioner: binary splits "feature > threshold" chosen by
// Gini impurity, majority-class leaves, depth/size stopping rules.

#ifndef MCE_DECISION_TRAINER_H_
#define MCE_DECISION_TRAINER_H_

#include <cstdint>
#include <vector>

#include "decision/decision_tree.h"
#include "decision/features.h"
#include "mce/enumerator.h"

namespace mce::decision {

/// One measurement: the features of a graph and the index (into the label
/// space passed to Train) of the combo that ran fastest on it.
struct TrainingExample {
  BlockFeatures features;
  int label = 0;
};

struct TrainerOptions {
  int max_depth = 4;
  /// A split is rejected when either side would hold fewer examples.
  int min_samples_leaf = 2;
  /// Node impurity below which the node becomes a leaf.
  double min_impurity = 1e-9;
};

/// Trains a DecisionTree. `label_space[i]` is the MceOptions that label i
/// stands for; labels in `examples` must index into it. `examples` must be
/// non-empty.
DecisionTree TrainDecisionTree(const std::vector<TrainingExample>& examples,
                               const std::vector<MceOptions>& label_space,
                               const TrainerOptions& options = {});

/// Fraction of examples whose Classify()-ed combo equals their label's
/// combo (training or held-out accuracy).
double Accuracy(const DecisionTree& tree,
                const std::vector<TrainingExample>& examples,
                const std::vector<MceOptions>& label_space);

}  // namespace mce::decision

#endif  // MCE_DECISION_TRAINER_H_
