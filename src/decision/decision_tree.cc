#include "decision/decision_tree.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "util/check.h"

namespace mce::decision {

DecisionTree::DecisionTree(MceOptions options) {
  Node leaf;
  leaf.is_leaf = true;
  leaf.options = options;
  nodes_.push_back(leaf);
}

DecisionTree::DecisionTree(std::vector<Node> nodes)
    : nodes_(std::move(nodes)) {
  Validate();
}

void DecisionTree::Validate() const {
  MCE_CHECK(!nodes_.empty());
  // Each node must be reachable at most once (tree shape), children in
  // range, and traversal must terminate.
  std::vector<int> seen(nodes_.size(), 0);
  std::function<void(int32_t)> visit = [&](int32_t i) {
    MCE_CHECK(i >= 0 && static_cast<size_t>(i) < nodes_.size());
    MCE_CHECK_EQ(seen[i], 0);  // no sharing, no cycles
    seen[i] = 1;
    const Node& n = nodes_[i];
    if (!n.is_leaf) {
      visit(n.true_child);
      visit(n.false_child);
    }
  };
  visit(0);
}

MceOptions DecisionTree::Classify(const BlockFeatures& features) const {
  int32_t i = 0;
  for (;;) {
    const Node& n = nodes_[i];
    if (n.is_leaf) return n.options;
    i = features.Get(n.feature) > n.threshold ? n.true_child : n.false_child;
  }
}

size_t DecisionTree::NumLeaves() const {
  return static_cast<size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const Node& n) { return n.is_leaf; }));
}

int DecisionTree::Depth() const {
  std::function<int(int32_t)> depth = [&](int32_t i) -> int {
    const Node& n = nodes_[i];
    if (n.is_leaf) return 0;
    return 1 + std::max(depth(n.true_child), depth(n.false_child));
  };
  return depth(0);
}

std::string DecisionTree::ToString() const {
  std::ostringstream os;
  std::function<void(int32_t, int)> render = [&](int32_t i, int indent) {
    const Node& n = nodes_[i];
    for (int k = 0; k < indent; ++k) os << "  ";
    if (n.is_leaf) {
      os << "-> [" << ComboName(n.options.storage, n.options.algorithm)
         << "]\n";
      return;
    }
    os << FeatureName(n.feature) << " > " << n.threshold << "?\n";
    for (int k = 0; k < indent; ++k) os << "  ";
    os << "true:\n";
    render(n.true_child, indent + 1);
    for (int k = 0; k < indent; ++k) os << "  ";
    os << "false:\n";
    render(n.false_child, indent + 1);
  };
  render(0, 0);
  return os.str();
}

DecisionTree PaperDecisionTree() {
  using Node = DecisionTree::Node;
  auto internal = [](FeatureId f, double t, int32_t yes, int32_t no) {
    Node n;
    n.is_leaf = false;
    n.feature = f;
    n.threshold = t;
    n.true_child = yes;
    n.false_child = no;
    return n;
  };
  auto leaf = [](StorageKind s, Algorithm a) {
    Node n;
    n.is_leaf = true;
    n.options = MceOptions{a, s};
    return n;
  };
  std::vector<Node> nodes;
  // 0: degeneracy > 25 ? 1 : 2
  nodes.push_back(internal(FeatureId::kDegeneracy, 25, 1, 2));
  // 1: #nodes < 8558, phrased as #nodes > 8557 ? 4 : 3 (so "true" means
  //    the small side goes to Matrix/XPivot, as in the figure).
  nodes.push_back(internal(FeatureId::kNumNodes, 8557, 4, 3));
  // 2: Lists/XPivot (sparse blocks)
  nodes.push_back(leaf(StorageKind::kAdjacencyList, Algorithm::kXPivot));
  // 3: Matrix/XPivot (small dense blocks)
  nodes.push_back(leaf(StorageKind::kMatrix, Algorithm::kXPivot));
  // 4: degeneracy > 52 ? 5 : 6
  nodes.push_back(internal(FeatureId::kDegeneracy, 52, 5, 6));
  // 5: BitSets/Tomita (large, very dense)
  nodes.push_back(leaf(StorageKind::kBitset, Algorithm::kTomita));
  // 6: Matrix/BKPivot (large, moderately dense)
  nodes.push_back(leaf(StorageKind::kMatrix, Algorithm::kBKPivot));
  return DecisionTree(std::move(nodes));
}

}  // namespace mce::decision
