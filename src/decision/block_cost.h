// Predictive cost model for BLOCK-ANALYSIS tasks.
//
// The execution engine needs a pre-execution score for every block at the
// moment it is emitted: the pooled executor dispatches ready tasks
// largest-predicted-first (so a late-emitted giant block cannot stall a
// level's tail behind small work) and splits any block whose predicted
// cost exceeds a threshold into per-kernel-range shards. The model reuses
// the same five features the bestfit classifier consumes (decision/
// features.h) — nothing new is measured on the block.
//
// The shape follows Eppstein–Löffler–Strash: a graph of degeneracy d has
// at most (n − d) · 3^(d/3) maximal cliques, and the BK recursion visits a
// tree of that order, while the linear n + m term covers storage
// construction and near-empty blocks. Density scales the exponential term
// because sparse blocks prune far below the degeneracy bound. Units are
// abstract "work units" (roughly adjacency probes), comparable across
// blocks of one run — only the ordering and the ratio to the split
// threshold matter, never the absolute value.

#ifndef MCE_DECISION_BLOCK_COST_H_
#define MCE_DECISION_BLOCK_COST_H_

#include <cstddef>

#include "decision/features.h"

namespace mce::decision {

/// Predicted BLOCK-ANALYSIS cost of a block with the given features, in
/// work units. Monotone in every feature; always >= 1 for non-empty
/// blocks so thresholds and ratios are well defined. When the
/// graph-reduction prepass is on, blocks are grown from the reduced
/// graph, so the features scored here are the post-reduction ones — the
/// model never sees (and never over-budgets for) vertices the prepass
/// already stripped. The features are invariant under the degeneracy
/// relabeling of block-local ids (n, m, density, and degeneracy are all
/// isomorphism-invariant), so scoring after the relabel changes nothing.
double EstimateBlockCost(const BlockFeatures& features);

/// Convenience: ComputeFeatures + EstimateBlockCost.
double EstimateBlockCost(const Graph& g);

/// Number of contiguous kernel-range shards a block of predicted `cost`
/// should split into so each shard's share is at most `max_cost`:
/// clamp(ceil(cost / max_cost), 1, kernels). A non-positive `max_cost`
/// disables splitting (returns 1), as does a block with <= 1 kernel.
size_t PlanShardCount(double cost, double max_cost, size_t kernels);

}  // namespace mce::decision

#endif  // MCE_DECISION_BLOCK_COST_H_
