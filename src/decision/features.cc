#include "decision/features.h"

#include <sstream>

#include "graph/core_decomposition.h"
#include "util/check.h"

namespace mce::decision {

const char* FeatureName(FeatureId id) {
  switch (id) {
    case FeatureId::kNumNodes:
      return "#nodes";
    case FeatureId::kNumEdges:
      return "#edges";
    case FeatureId::kDensity:
      return "density";
    case FeatureId::kDegeneracy:
      return "degeneracy";
    case FeatureId::kDStar:
      return "d*";
  }
  return "?";
}

double BlockFeatures::Get(FeatureId id) const {
  switch (id) {
    case FeatureId::kNumNodes:
      return num_nodes;
    case FeatureId::kNumEdges:
      return num_edges;
    case FeatureId::kDensity:
      return density;
    case FeatureId::kDegeneracy:
      return degeneracy;
    case FeatureId::kDStar:
      return d_star;
  }
  MCE_CHECK(false);
  return 0;
}

std::array<double, kNumFeatures> BlockFeatures::AsArray() const {
  return {num_nodes, num_edges, density, degeneracy, d_star};
}

std::string BlockFeatures::ToString() const {
  std::ostringstream os;
  os << "{#nodes=" << num_nodes << ", #edges=" << num_edges
     << ", density=" << density << ", degeneracy=" << degeneracy
     << ", d*=" << d_star << "}";
  return os.str();
}

BlockFeatures ComputeFeatures(const Graph& g) {
  BlockFeatures f;
  f.num_nodes = static_cast<double>(g.num_nodes());
  f.num_edges = static_cast<double>(g.num_edges());
  f.density = g.Density();
  f.degeneracy = static_cast<double>(Degeneracy(g));
  f.d_star = static_cast<double>(DStar(g));
  return f;
}

}  // namespace mce::decision
