#include "decision/block_cost.h"

#include <algorithm>
#include <cmath>

#include "graph/core_decomposition.h"

namespace mce::decision {

double EstimateBlockCost(const BlockFeatures& f) {
  // Linear term: storage construction and the per-node seed loop.
  const double linear = f.num_nodes + f.num_edges;
  // Enumeration term: the Eppstein bound (n − d) · 3^(d/3) on the BK
  // search tree, with each tree node costing ~d set operations. Density
  // discounts blocks whose candidate sets prune far below the bound.
  // Degeneracy is capped only by the block bound m, so the double stays
  // finite for every feasible block (3^(m/3) with m in the thousands
  // would overflow — clamp the exponent to keep the ordering usable).
  const double d = std::min(f.degeneracy, 120.0);
  const double span = std::max(1.0, f.num_nodes - f.degeneracy);
  const double tree = span * std::max(1.0, f.degeneracy) *
                      std::pow(3.0, d / 3.0);
  return std::max(1.0, linear + f.density * tree);
}

double EstimateBlockCost(const Graph& g) {
  // Only the features the model reads: d* is skipped, which saves its
  // extra degree pass on the block-emission hot path (the executor scores
  // every block the moment it is built).
  BlockFeatures f;
  f.num_nodes = static_cast<double>(g.num_nodes());
  f.num_edges = static_cast<double>(g.num_edges());
  f.density = g.Density();
  f.degeneracy = static_cast<double>(Degeneracy(g));
  return EstimateBlockCost(f);
}

size_t PlanShardCount(double cost, double max_cost, size_t kernels) {
  if (!(max_cost > 0) || kernels <= 1 || cost <= max_cost) return 1;
  const double want = std::ceil(cost / max_cost);
  if (want >= static_cast<double>(kernels)) return kernels;
  return static_cast<size_t>(want);
}

}  // namespace mce::decision
