#include "decision/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace mce::decision {

namespace {

/// Gini impurity of a label multiset given per-class counts.
double Gini(const std::vector<int>& counts, int total) {
  if (total == 0) return 0.0;
  double impurity = 1.0;
  for (int c : counts) {
    double p = static_cast<double>(c) / total;
    impurity -= p * p;
  }
  return impurity;
}

struct Split {
  bool found = false;
  FeatureId feature = FeatureId::kNumNodes;
  double threshold = 0;
  double impurity = std::numeric_limits<double>::infinity();
};

class Builder {
 public:
  Builder(const std::vector<TrainingExample>& examples,
          const std::vector<MceOptions>& label_space,
          const TrainerOptions& options)
      : examples_(examples), label_space_(label_space), options_(options) {}

  DecisionTree Build() {
    std::vector<int> all(examples_.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
    BuildNode(all, 0);
    return DecisionTree(std::move(nodes_));
  }

 private:
  int MajorityLabel(const std::vector<int>& idx) const {
    std::vector<int> counts(label_space_.size(), 0);
    for (int i : idx) ++counts[examples_[i].label];
    return static_cast<int>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
  }

  double NodeImpurity(const std::vector<int>& idx) const {
    std::vector<int> counts(label_space_.size(), 0);
    for (int i : idx) ++counts[examples_[i].label];
    return Gini(counts, static_cast<int>(idx.size()));
  }

  /// Finds the (feature, threshold) minimizing the weighted child Gini.
  Split FindBestSplit(const std::vector<int>& idx) const {
    Split best;
    const int total = static_cast<int>(idx.size());
    for (int f = 0; f < kNumFeatures; ++f) {
      const FeatureId feature = static_cast<FeatureId>(f);
      // Sort example indices by this feature value.
      std::vector<int> order = idx;
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return examples_[a].features.Get(feature) <
               examples_[b].features.Get(feature);
      });
      // Sweep thresholds between consecutive distinct values, maintaining
      // left ("<= threshold", i.e. predicate false) and right counts.
      std::vector<int> left_counts(label_space_.size(), 0);
      std::vector<int> right_counts(label_space_.size(), 0);
      for (int i : order) ++right_counts[examples_[i].label];
      int left_n = 0;
      for (int k = 0; k + 1 < total; ++k) {
        const int i = order[k];
        ++left_counts[examples_[i].label];
        --right_counts[examples_[i].label];
        ++left_n;
        double v = examples_[i].features.Get(feature);
        double v_next = examples_[order[k + 1]].features.Get(feature);
        if (v == v_next) continue;  // not a valid cut point
        if (left_n < options_.min_samples_leaf ||
            total - left_n < options_.min_samples_leaf) {
          continue;
        }
        double w_impurity =
            (static_cast<double>(left_n) / total) * Gini(left_counts, left_n) +
            (static_cast<double>(total - left_n) / total) *
                Gini(right_counts, total - left_n);
        if (w_impurity < best.impurity) {
          best.found = true;
          best.feature = feature;
          best.threshold = (v + v_next) / 2.0;
          best.impurity = w_impurity;
        }
      }
    }
    return best;
  }

  /// Appends the subtree for `idx` and returns its root index.
  int32_t BuildNode(const std::vector<int>& idx, int depth) {
    MCE_CHECK(!idx.empty());
    const int32_t my_index = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();  // placeholder; filled below

    const double impurity = NodeImpurity(idx);
    Split split;
    if (depth < options_.max_depth && impurity > options_.min_impurity) {
      split = FindBestSplit(idx);
    }
    if (!split.found || split.impurity >= impurity) {
      DecisionTree::Node leaf;
      leaf.is_leaf = true;
      leaf.options = label_space_[MajorityLabel(idx)];
      nodes_[my_index] = leaf;
      return my_index;
    }
    std::vector<int> yes, no;
    for (int i : idx) {
      if (examples_[i].features.Get(split.feature) > split.threshold) {
        yes.push_back(i);
      } else {
        no.push_back(i);
      }
    }
    DecisionTree::Node internal;
    internal.is_leaf = false;
    internal.feature = split.feature;
    internal.threshold = split.threshold;
    internal.true_child = BuildNode(yes, depth + 1);
    internal.false_child = BuildNode(no, depth + 1);
    nodes_[my_index] = internal;
    return my_index;
  }

  const std::vector<TrainingExample>& examples_;
  const std::vector<MceOptions>& label_space_;
  const TrainerOptions& options_;
  std::vector<DecisionTree::Node> nodes_;
};

}  // namespace

DecisionTree TrainDecisionTree(const std::vector<TrainingExample>& examples,
                               const std::vector<MceOptions>& label_space,
                               const TrainerOptions& options) {
  MCE_CHECK(!examples.empty());
  MCE_CHECK(!label_space.empty());
  for (const TrainingExample& e : examples) {
    MCE_CHECK(e.label >= 0 &&
              static_cast<size_t>(e.label) < label_space.size());
  }
  Builder builder(examples, label_space, options);
  return builder.Build();
}

double Accuracy(const DecisionTree& tree,
                const std::vector<TrainingExample>& examples,
                const std::vector<MceOptions>& label_space) {
  if (examples.empty()) return 0.0;
  int hits = 0;
  for (const TrainingExample& e : examples) {
    MceOptions predicted = tree.Classify(e.features);
    const MceOptions& truth = label_space[e.label];
    if (predicted.algorithm == truth.algorithm &&
        predicted.storage == truth.storage) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / examples.size();
}

}  // namespace mce::decision
