// Decision tree mapping block features to a storage/algorithm combination.
//
// Section 4: each internal node holds a predicate "feature > threshold";
// each leaf holds a data-structure/algorithm combo. Traversal from the root
// yields the best-fit enumerator for a block. The tree of the paper's
// Figure 3 is provided verbatim; trainer.h can learn fresh trees.

#ifndef MCE_DECISION_DECISION_TREE_H_
#define MCE_DECISION_DECISION_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "decision/features.h"
#include "mce/enumerator.h"
#include "util/status.h"

namespace mce::decision {

/// A trained classifier. Nodes are stored in a flat vector; index 0 is the
/// root; leaves carry the selected MceOptions.
class DecisionTree {
 public:
  struct Node {
    bool is_leaf = true;
    // Internal nodes: "Get(feature) > threshold" ? goto true_child
    //                                            : goto false_child.
    FeatureId feature = FeatureId::kNumNodes;
    double threshold = 0;
    int32_t true_child = -1;
    int32_t false_child = -1;
    // Leaves:
    MceOptions options;
  };

  /// Single-leaf tree that always selects `options`.
  explicit DecisionTree(MceOptions options);
  /// Tree from explicit nodes; node 0 must be the root and children must
  /// form a DAG-free tree (validated).
  explicit DecisionTree(std::vector<Node> nodes);

  /// Selects the combination for a block with the given features.
  MceOptions Classify(const BlockFeatures& features) const;

  const std::vector<Node>& nodes() const { return nodes_; }
  size_t NumLeaves() const;
  int Depth() const;

  /// Human-readable rendering (one node per line, indented) — the format
  /// used by bench_fig3_decision_tree.
  std::string ToString() const;

 private:
  void Validate() const;

  std::vector<Node> nodes_;
};

/// The exact tree of Figure 3:
///   degeneracy > 25 ? (#nodes < 8558 ? Matrix/XPivot
///                                    : (degeneracy > 52 ? BitSets/Tomita
///                                                       : Matrix/BKPivot))
///                   : Lists/XPivot
DecisionTree PaperDecisionTree();

}  // namespace mce::decision

#endif  // MCE_DECISION_DECISION_TREE_H_
