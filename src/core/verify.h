// Output self-verification.
//
// A clique enumerator's results are easy to get subtly wrong (missed
// cliques, non-maximal outputs, duplicates) and expensive to eyeball;
// these helpers let a downstream user certify a result set against the
// definitions, and — for graphs small enough to re-enumerate — against an
// independent reference run. The library's own tests use the same checks.

#ifndef MCE_CORE_VERIFY_H_
#define MCE_CORE_VERIFY_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "mce/clique.h"

namespace mce {

struct VerificationReport {
  uint64_t checked = 0;
  uint64_t not_a_clique = 0;     // members not pairwise adjacent
  uint64_t not_maximal = 0;      // extendable by some vertex
  uint64_t duplicates = 0;       // same clique listed twice
  /// Only populated when VerifyAgainstReference ran: cliques of g missing
  /// from the set.
  uint64_t missing = 0;

  bool ok() const {
    return not_a_clique == 0 && not_maximal == 0 && duplicates == 0 &&
           missing == 0;
  }
  std::string ToString() const;
};

/// Checks every clique of `cliques` against `g`: pairwise adjacency,
/// maximality, and duplicate detection. Does NOT check completeness (no
/// reference enumeration is run). `cliques` is canonicalized by the call.
VerificationReport VerifyCliques(const Graph& g, CliqueSet& cliques);

/// Full certification: VerifyCliques plus an independent re-enumeration of
/// `g` to detect missing cliques. Cost is a fresh MCE of g — intended for
/// tests and spot checks, not for the 17M-node case.
VerificationReport VerifyAgainstReference(const Graph& g,
                                          CliqueSet& cliques);

}  // namespace mce

#endif  // MCE_CORE_VERIFY_H_
