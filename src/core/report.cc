#include "core/report.h"

#include <cstdio>
#include <sstream>

#include "obs/trace.h"

namespace mce {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string Double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string RunReportJson(const FindResult& result) {
  std::ostringstream os;
  const RunStats& s = result.stats;
  os << "{";
  os << "\"block_size\":" << result.effective_block_size;
  os << ",\"total_cliques\":" << s.total_cliques;
  os << ",\"feasible_cliques\":" << s.feasible_cliques;
  os << ",\"hub_cliques\":" << s.hub_cliques;
  os << ",\"max_clique_size\":" << s.max_clique_size;
  os << ",\"avg_clique_size\":" << Double(s.avg_clique_size);
  os << ",\"avg_feasible_clique_size\":"
     << Double(s.avg_feasible_clique_size);
  os << ",\"avg_hub_clique_size\":" << Double(s.avg_hub_clique_size);
  os << ",\"num_levels\":" << s.num_levels;
  os << ",\"total_blocks\":" << s.total_blocks;
  os << ",\"decompose_seconds\":" << Double(s.decompose_seconds);
  os << ",\"analyze_seconds\":" << Double(s.analyze_seconds);
  os << ",\"overlap_seconds\":" << Double(s.overlap_seconds);
  os << ",\"idle_seconds\":" << Double(s.idle_seconds);
  os << ",\"barrier_idle_seconds\":" << Double(s.barrier_idle_seconds);
  os << ",\"block_splits\":" << s.block_splits;
  os << ",\"wall_seconds\":" << Double(s.wall_seconds);
  os << ",\"utilization\":" << Double(s.utilization);
  os << ",\"used_fallback\":" << (s.used_fallback ? "true" : "false");
  const reduce::ReductionStats& r = s.reduction;
  os << ",\"reduction\":{\"enabled\":" << (r.enabled ? "true" : "false")
     << ",\"isolated_removed\":" << r.isolated_removed
     << ",\"degree1_removed\":" << r.degree1_removed
     << ",\"dominated_removed\":" << r.dominated_removed
     << ",\"twins_merged\":" << r.twins_merged
     << ",\"vertices_removed\":" << r.vertices_removed
     << ",\"edges_removed\":" << r.edges_removed
     << ",\"trivial_cliques\":" << r.trivial_cliques
     << ",\"suppressed_cliques\":" << r.suppressed_cliques
     << ",\"rounds\":" << r.rounds
     << ",\"seconds\":" << Double(r.seconds) << "}";
  const decomp::MemoryStats& m = s.memory;
  os << ",\"memory\":{\"budget_bytes\":" << m.budget_bytes
     << ",\"peak_tracked_bytes\":" << m.peak_tracked_bytes
     << ",\"spill_chunks\":" << m.spill_chunks
     << ",\"spill_bytes\":" << m.spill_bytes
     << ",\"admission_stalls\":" << m.admission_stalls
     << ",\"admission_stall_seconds\":" << Double(m.admission_stall_seconds)
     << "}";
  const obs::ProgressAccounting& p = s.progress;
  os << ",\"progress\":{\"enabled\":" << (p.enabled ? "true" : "false")
     << ",\"predicted_cost\":" << Double(p.predicted_cost)
     << ",\"completed_cost\":" << Double(p.completed_cost)
     << ",\"blocks\":" << p.blocks << ",\"cliques\":" << p.cliques
     << ",\"eta_samples\":" << p.samples
     << ",\"mean_abs_eta_error_seconds\":"
     << Double(p.mean_abs_eta_error_seconds)
     << ",\"wall_seconds\":" << Double(p.wall_seconds) << "}";
  const obs::ProfileStats& prof = s.profile;
  const auto bucket = [&os](const obs::ProfileBucket& b) {
    os << "{\"spans\":" << b.spans << ",\"seconds\":" << Double(b.seconds)
       << ",\"cliques\":" << b.cliques
       << ",\"cycles\":" << b.counters.cycles
       << ",\"instructions\":" << b.counters.instructions
       << ",\"ipc\":" << Double(b.Ipc())
       << ",\"cache_misses\":" << b.counters.cache_misses
       << ",\"branch_misses\":" << b.counters.branch_misses
       << ",\"task_clock_ns\":" << b.counters.task_clock_ns
       << ",\"ns_per_clique\":" << Double(b.NsPerClique()) << "}";
  };
  os << ",\"profile\":{\"enabled\":" << (prof.enabled ? "true" : "false")
     << ",\"hardware\":" << (prof.hardware ? "true" : "false")
     << ",\"total\":";
  bucket(prof.total);
  os << ",\"by_kind\":{";
  for (size_t i = 0; i < prof.by_kind.size(); ++i) {
    if (i > 0) os << ",";
    os << "\""
       << JsonEscape(obs::ToString(
              static_cast<obs::SpanKind>(prof.by_kind[i].first)))
       << "\":";
    bucket(prof.by_kind[i].second);
  }
  os << "},\"by_level\":[";
  for (size_t i = 0; i < prof.by_level.size(); ++i) {
    if (i > 0) os << ",";
    bucket(prof.by_level[i]);
  }
  os << "]}";
  os << ",\"levels\":[";
  for (size_t i = 0; i < result.levels.size(); ++i) {
    const decomp::LevelStats& l = result.levels[i];
    if (i > 0) os << ",";
    os << "{\"nodes\":" << l.num_nodes << ",\"edges\":" << l.num_edges
       << ",\"feasible\":" << l.feasible << ",\"hubs\":" << l.hubs
       << ",\"blocks\":" << l.blocks << ",\"cliques\":" << l.cliques
       << ",\"decompose_seconds\":" << Double(l.decompose_seconds)
       << ",\"analyze_seconds\":" << Double(l.analyze_seconds)
       << ",\"block_seconds\":" << Double(l.block_seconds)
       << ",\"busiest_worker_seconds\":" << Double(l.busiest_worker_seconds)
       << ",\"analyze_threads\":" << l.analyze_threads
       << ",\"overlap_seconds\":" << Double(l.overlap_seconds)
       << ",\"idle_seconds\":" << Double(l.idle_seconds)
       << ",\"barrier_idle_seconds\":" << Double(l.barrier_idle_seconds)
       << ",\"block_splits\":" << l.block_splits << "}";
  }
  os << "]";
  if (result.cluster.has_value()) {
    const ClusterSummary& c = *result.cluster;
    os << ",\"cluster\":{\"workers\":" << c.workers
       << ",\"makespan_seconds\":" << Double(c.makespan_seconds)
       << ",\"analysis_speedup\":" << Double(c.analysis_speedup)
       << ",\"compute_speedup\":" << Double(c.compute_speedup)
       << ",\"max_level_skew\":" << Double(c.max_level_skew)
       << ",\"bytes_shipped\":" << c.bytes_shipped << "}";
  } else {
    os << ",\"cluster\":null";
  }
  os << "}";
  return os.str();
}

}  // namespace mce
