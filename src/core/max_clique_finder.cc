#include "core/max_clique_finder.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/timer.h"

namespace mce {

MaxCliqueFinder::MaxCliqueFinder(Options options)
    : options_(std::move(options)), paper_tree_(decision::PaperDecisionTree()) {}

Result<uint32_t> MaxCliqueFinder::ResolveBlockSize(const Graph& g) const {
  if (options_.block_size > 0) return options_.block_size;
  if (!(options_.block_size_ratio > 0.0) || options_.block_size_ratio > 1.0) {
    return Status::InvalidArgument(
        "block_size_ratio must be in (0, 1] when block_size is 0");
  }
  const uint32_t d = g.MaxDegree();
  const uint32_t m = static_cast<uint32_t>(
      std::ceil(options_.block_size_ratio * static_cast<double>(d)));
  return std::max<uint32_t>(2, m);
}

Result<FindResult> MaxCliqueFinder::Find(const Graph& g) const {
  MCE_ASSIGN_OR_RETURN(uint32_t m, ResolveBlockSize(g));
  if (options_.min_adjacency == 0) {
    return Status::InvalidArgument("min_adjacency must be >= 1");
  }
  if (options_.simulate_cluster && options_.cluster.num_workers < 1) {
    return Status::InvalidArgument("cluster.num_workers must be >= 1");
  }

  decomp::FindMaxCliquesOptions pipeline;
  pipeline.max_block_size = m;
  pipeline.min_adjacency = options_.min_adjacency;
  pipeline.seed_policy = options_.seed_policy;
  pipeline.num_threads = options_.num_threads;
  pipeline.executor = options_.executor;
  pipeline.reduce = options_.reduce;
  pipeline.split_blocks = options_.split_blocks;
  pipeline.max_block_cost = options_.max_block_cost;
  pipeline.memory_budget_bytes = options_.memory_budget_bytes;
  pipeline.spill_threshold_bytes = options_.spill_threshold_bytes;
  pipeline.spill_dir = options_.spill_dir;
  pipeline.trace = options_.trace;
  pipeline.metrics = options_.metrics;
  pipeline.progress = options_.progress;
  pipeline.profile = options_.profile;
  if (options_.use_decision_tree) {
    pipeline.tree =
        options_.custom_tree != nullptr ? options_.custom_tree : &paper_tree_;
  } else {
    pipeline.fixed = options_.fixed_combo;
  }

  FindResult out;
  out.effective_block_size = m;
  const Timer wall;

  if (options_.simulate_cluster) {
    dist::DistributedResult dist_result =
        dist::RunDistributedMce(g, std::move(pipeline), options_.cluster);
    ClusterSummary summary;
    summary.workers = options_.cluster.num_workers;
    summary.makespan_seconds = dist_result.TotalSeconds();
    summary.analysis_speedup = dist_result.AnalysisSpeedup();
    summary.compute_speedup = dist_result.AnalysisComputeSpeedup();
    for (const dist::DistributedLevel& level : dist_result.levels) {
      summary.max_level_skew =
          std::max(summary.max_level_skew, level.simulation.Skew());
      for (const dist::WorkerTimeline& w : level.simulation.workers) {
        summary.bytes_shipped += w.bytes_received;
      }
    }
    out.cluster = summary;
    out.stats = ComputeRunStats(dist_result.algorithm);
    out.levels = std::move(dist_result.algorithm.levels);
    out.origin_level = std::move(dist_result.algorithm.origin_level);
    out.cliques = std::move(dist_result.algorithm.cliques);
  } else {
    decomp::FindMaxCliquesResult result = decomp::FindMaxCliques(g, pipeline);
    out.stats = ComputeRunStats(result);
    out.levels = std::move(result.levels);
    out.origin_level = std::move(result.origin_level);
    out.cliques = std::move(result.cliques);
  }
  out.stats.wall_seconds = wall.ElapsedSeconds();
  return out;
}

}  // namespace mce
