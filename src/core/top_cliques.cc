#include "core/top_cliques.h"

#include <algorithm>

#include "graph/core_decomposition.h"
#include "graph/subgraph.h"
#include "util/check.h"

namespace mce {

CliqueSet MaximalCliquesAtLeast(const Graph& g, uint32_t min_size,
                                const MceOptions& options) {
  MCE_CHECK_GE(min_size, 1u);
  CliqueSet out;
  if (g.num_nodes() == 0) return out;
  if (min_size <= 1) {
    out = EnumerateToSet(g, options);
    return out;
  }
  // Restrict to the (min_size - 1)-core.
  std::vector<NodeId> core_nodes = KCoreNodes(g, min_size - 1);
  if (core_nodes.empty()) return out;
  InducedSubgraph core = Induce(g, core_nodes);
  EnumerateMaximalCliques(core.graph, options,
                          [&](std::span<const NodeId> local) {
                            if (local.size() >= min_size) {
                              out.Add(ToParentIds(core, local));
                            }
                          });
  out.Canonicalize();
  return out;
}

std::vector<Clique> TopKMaximalCliques(const Graph& g, size_t k,
                                       const MceOptions& options) {
  std::vector<Clique> out;
  if (k == 0 || g.num_nodes() == 0) return out;
  // Largest possible clique has degeneracy + 1 members.
  uint32_t threshold = Degeneracy(g) + 1;
  CliqueSet found;
  for (;;) {
    found = MaximalCliquesAtLeast(g, threshold, options);
    if (found.size() >= k || threshold == 1) break;
    --threshold;
  }
  std::vector<size_t> order(found.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&found](size_t a, size_t b) {
    const Clique& ca = found.cliques()[a];
    const Clique& cb = found.cliques()[b];
    if (ca.size() != cb.size()) return ca.size() > cb.size();
    return ca < cb;
  });
  for (size_t i = 0; i < order.size() && i < k; ++i) {
    out.push_back(found.cliques()[order[i]]);
  }
  return out;
}

}  // namespace mce
