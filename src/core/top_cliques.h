// Size-thresholded and top-k maximal clique queries with k-core pruning.
//
// Consumers of community detection usually want only the large cliques
// (the paper's own Figure 11 looks at the 200 largest). Every clique of
// size >= q lies inside the (q-1)-core, so the search can be restricted to
// that core — usually a tiny fraction of a scale-free network — and any
// clique maximal there with >= q members is automatically maximal in the
// whole graph (an extending vertex would itself belong to the q-core).

#ifndef MCE_CORE_TOP_CLIQUES_H_
#define MCE_CORE_TOP_CLIQUES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "mce/clique.h"
#include "mce/enumerator.h"

namespace mce {

/// All maximal cliques of `g` with at least `min_size` members,
/// canonicalized. min_size must be >= 1. Cost is an MCE of the
/// (min_size-1)-core only.
CliqueSet MaximalCliquesAtLeast(
    const Graph& g, uint32_t min_size,
    const MceOptions& options = {Algorithm::kEppstein,
                                 StorageKind::kAdjacencyList});

/// The `k` largest maximal cliques, largest first (ties broken by
/// lexicographic content). Uses descending size thresholds with core
/// pruning, so it touches dense regions only until k cliques are found.
/// Returns fewer than k when the graph has fewer maximal cliques.
std::vector<Clique> TopKMaximalCliques(
    const Graph& g, size_t k,
    const MceOptions& options = {Algorithm::kEppstein,
                                 StorageKind::kAdjacencyList});

}  // namespace mce

#endif  // MCE_CORE_TOP_CLIQUES_H_
