// Aggregated, user-facing statistics of a FindMaxCliques run.
//
// These are the quantities the paper's evaluation plots: clique counts and
// average sizes split by origin (feasible-block cliques vs hub-only
// cliques, the white/gray bars of Figures 9-10), the hub share among the
// largest cliques (Figure 11), per-phase timings (Figures 7-8), and the
// number of first-level iterations (Section 6.2).

#ifndef MCE_CORE_RUN_STATS_H_
#define MCE_CORE_RUN_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "decomp/find_max_cliques.h"

namespace mce {

struct RunStats {
  uint64_t total_cliques = 0;
  /// Cliques produced by level-0 feasible blocks (white bars).
  uint64_t feasible_cliques = 0;
  /// Cliques consisting of hub nodes only, i.e. from recursion levels >= 1
  /// (gray bars).
  uint64_t hub_cliques = 0;

  size_t max_clique_size = 0;
  double avg_clique_size = 0;
  double avg_feasible_clique_size = 0;
  double avg_hub_clique_size = 0;

  size_t num_levels = 0;
  bool used_fallback = false;
  uint64_t total_blocks = 0;
  double decompose_seconds = 0;
  double analyze_seconds = 0;
  /// Cross-level pipelining achieved by the executor: wall-clock seconds
  /// during which a level's decomposition overlapped the previous level's
  /// analysis, summed over levels (0 on the serial executor).
  double overlap_seconds = 0;
  /// Aggregate work-starved worker idle time inside the analyze phases,
  /// summed over levels (waits at level boundaries are excluded).
  double idle_seconds = 0;
  /// Aggregate worker capacity spent parked at inter-level task-graph
  /// boundaries, summed over levels (LevelStats::barrier_idle_seconds).
  double barrier_idle_seconds = 0;
  /// BlockTasks the executor split into kernel-range shards, summed over
  /// levels (0 with splitting disabled or on the serial executor).
  uint64_t block_splits = 0;
  /// Graph-reduction prepass telemetry (reduction.enabled iff the run had
  /// FindMaxCliquesOptions::reduce set); per-rule removal counts, trivial
  /// cliques, and rounds to fixed point.
  reduce::ReductionStats reduction;
  /// Memory-budget telemetry: the configured budget, the executor's peak
  /// tracked bytes (graphs + blocks + workspaces + sink buffers), and the
  /// spill/admission activity it took to stay under the budget.
  decomp::MemoryStats memory;
  /// End-to-end pipeline wall time as measured by MaxCliqueFinder::Find
  /// (0 when the stats were derived outside a timed entry point). The
  /// number mce_perf_diff compares across runs.
  double wall_seconds = 0;
  /// Analysis-phase worker utilization in (0, 1]: the serial-equivalent
  /// block work divided by the worker capacity of the analyze phases
  /// (busiest worker's time x workers, summed over levels). 0 when the
  /// run produced no block work.
  double utilization = 0;
  /// Live-progress accounting (enabled iff the run had a
  /// ProgressEstimator attached): predicted vs. retired cost and how the
  /// sampler's ETAs tracked the actual wall clock.
  obs::ProgressAccounting progress;
  /// Per-task hardware-counter attribution (enabled iff the run had
  /// FindMaxCliquesOptions::profile set): cycles, instructions, cache and
  /// branch misses, and task-clock split by task kind and by recursion
  /// level. profile.hardware is false when perf_event_open was
  /// unavailable and only the software task clock was recorded.
  obs::ProfileStats profile;

  std::string ToString() const;
};

/// Derives RunStats from a pipeline result.
RunStats ComputeRunStats(const decomp::FindMaxCliquesResult& result);

/// Among the `k` largest cliques (ties broken toward including larger
/// origin-level-0 cliques deterministically), the fraction that are
/// hub-only — Figure 11's gray share. Returns 0 when there are no cliques.
double HubShareOfLargestCliques(const decomp::FindMaxCliquesResult& result,
                                size_t k);

}  // namespace mce

#endif  // MCE_CORE_RUN_STATS_H_
