// Post-enumeration analysis helpers over a clique collection: size
// histograms, top-k selection, and per-node participation — the summary
// quantities a community-detection consumer reads off the result (and the
// ones the evaluation's figures aggregate).

#ifndef MCE_CORE_CLIQUE_ANALYSIS_H_
#define MCE_CORE_CLIQUE_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "mce/clique.h"

namespace mce {

/// histogram[s] = number of cliques with exactly s members (index 0 unused
/// unless empty cliques are present).
std::vector<uint64_t> CliqueSizeHistogram(const CliqueSet& cliques);

/// Indices of the `k` largest cliques, largest first; ties broken by
/// lexicographic clique content for determinism. Returns fewer when the
/// collection is smaller.
std::vector<size_t> LargestCliqueIndices(const CliqueSet& cliques, size_t k);

/// counts[v] = number of cliques containing node v. `num_nodes` sizes the
/// result; clique members must be < num_nodes.
std::vector<uint64_t> PerNodeCliqueCounts(const CliqueSet& cliques,
                                          NodeId num_nodes);

/// Nodes sorted by descending clique participation (count, then id): the
/// "most social" vertices. Returns the top `k`.
std::vector<NodeId> TopParticipants(const CliqueSet& cliques,
                                    NodeId num_nodes, size_t k);

}  // namespace mce

#endif  // MCE_CORE_CLIQUE_ANALYSIS_H_
