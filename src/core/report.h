// JSON run reports.
//
// Machine-readable serialization of a pipeline run (stats, per-level
// telemetry, optional cluster summary) for dashboards and the CLI's
// --json mode. Hand-rolled writer — the schema is flat and stable.

#ifndef MCE_CORE_REPORT_H_
#define MCE_CORE_REPORT_H_

#include <string>

#include "core/max_clique_finder.h"

namespace mce {

/// Escapes a string for embedding in JSON (quotes, backslashes, control
/// characters).
std::string JsonEscape(const std::string& s);

/// Serializes the run result (without the clique contents — those can be
/// huge; consumers dump them separately) as a single JSON object:
/// {
///   "block_size": ..., "total_cliques": ..., "feasible_cliques": ...,
///   "hub_cliques": ..., "max_clique_size": ..., "avg_clique_size": ...,
///   "levels": [{"nodes":..,"edges":..,"feasible":..,"hubs":..,
///               "blocks":..,"cliques":..,"decompose_seconds":..,
///               "analyze_seconds":..}, ...],
///   "used_fallback": ..., "cluster": {...} | null
/// }
std::string RunReportJson(const FindResult& result);

}  // namespace mce

#endif  // MCE_CORE_REPORT_H_
