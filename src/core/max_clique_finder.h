// MaxCliqueFinder — the library's public entry point.
//
// Wraps the complete pipeline of the paper: two-level decomposition,
// decision-tree-driven per-block enumeration, hub recursion, Lemma 1
// filtering, and (optionally) the simulated distributed execution. Typical
// use:
//
//   mce::MaxCliqueFinder::Options options;
//   options.block_size_ratio = 0.5;   // m = 0.5 * max degree (paper's m/d)
//   mce::MaxCliqueFinder finder(options);
//   auto result = finder.Find(graph);
//   if (!result.ok()) { ... }
//   for (const mce::Clique& c : result->cliques.cliques()) { ... }

#ifndef MCE_CORE_MAX_CLIQUE_FINDER_H_
#define MCE_CORE_MAX_CLIQUE_FINDER_H_

#include <optional>
#include <string>
#include <vector>

#include "core/run_stats.h"
#include "decision/decision_tree.h"
#include "decomp/find_max_cliques.h"
#include "dist/distributed_mce.h"
#include "graph/graph.h"
#include "util/status.h"

namespace mce {

/// Summary of the simulated distributed execution, present when
/// Options::simulate_cluster is set.
struct ClusterSummary {
  int workers = 0;
  double makespan_seconds = 0;  // end-to-end simulated wall time
  /// Analysis-phase speedup including communication (may dip below 1 on
  /// workloads whose tasks are tiny relative to the network latency).
  double analysis_speedup = 0;
  /// Placement-quality speedup (compute only), in [1, workers].
  double compute_speedup = 1.0;
  double max_level_skew = 1.0;
  uint64_t bytes_shipped = 0;
};

struct FindResult {
  /// All maximal cliques of the input graph.
  CliqueSet cliques;
  /// Parallel to cliques.cliques(): the recursion level that produced each
  /// clique (0 = contains a feasible node; >= 1 = hub-only).
  std::vector<uint32_t> origin_level;
  RunStats stats;
  std::vector<decomp::LevelStats> levels;
  /// The block bound m that was actually used.
  uint32_t effective_block_size = 0;
  std::optional<ClusterSummary> cluster;
};

class MaxCliqueFinder {
 public:
  struct Options {
    /// Block bound m, in nodes. 0 means "derive from block_size_ratio".
    uint32_t block_size = 0;
    /// When block_size == 0: m = max(2, ratio * max_degree(G)) — the m/d
    /// parameterization of Section 6. Must be in (0, 1] then.
    double block_size_ratio = 0.5;
    /// Choose the per-block enumerator with the Figure 3 decision tree
    /// (default) or with `fixed_combo`.
    bool use_decision_tree = true;
    /// Override the built-in tree with a custom (e.g. freshly trained) one.
    /// Not owned; must outlive the finder. Only read when
    /// use_decision_tree is true.
    const decision::DecisionTree* custom_tree = nullptr;
    MceOptions fixed_combo = {Algorithm::kTomita,
                              StorageKind::kAdjacencyList};
    /// Second-level decomposition knobs (Algorithm 3).
    uint32_t min_adjacency = 1;
    decomp::SeedPolicy seed_policy = decomp::SeedPolicy::kLowestDegree;
    /// Worker threads for the block-analysis and Lemma-1 filter phases.
    /// 1 = serial, 0 = one per hardware thread. The clique set and origin
    /// levels are identical for every thread count.
    uint32_t num_threads = 1;
    /// Which execution engine runs the pipeline (serial, pooled, or auto
    /// by thread count); every engine yields identical cliques.
    decomp::ExecutorKind executor = decomp::ExecutorKind::kAuto;
    /// Graph-reduction prepass: strip simplicial/degree-0/degree-1
    /// vertices and compress true twins before the pipeline runs, then
    /// re-expand cliques on emission. The clique set is identical with or
    /// without it. CLI: --reduce / --no-reduce.
    bool reduce = false;
    /// Cost-guided BlockTask splitting on the pooled executor: blocks
    /// whose predicted analysis cost exceeds max_block_cost run as
    /// kernel-range shards (see decomp::FindMaxCliquesOptions). The
    /// emitted cliques are identical either way. CLI: --no-split /
    /// --max-block-cost.
    bool split_blocks = true;
    double max_block_cost = decomp::kDefaultMaxBlockCost;
    /// Soft ceiling, in bytes, on the executor's tracked resident state
    /// (graphs, materialized blocks, analysis workspaces, clique-sink
    /// buffers). 0 = unlimited. Under a budget the pooled executor holds
    /// back ready BlockTasks past the first and sink buffers spill to
    /// disk. The clique output is identical either way. CLI:
    /// --memory-budget.
    uint64_t memory_budget_bytes = 0;
    /// Per-level clique-buffer bytes above which sinks spill sorted chunks
    /// to temp files; 0 derives budget/8 from memory_budget_bytes (so no
    /// spilling at all without a budget). CLI: --spill-threshold.
    uint64_t spill_threshold_bytes = 0;
    /// Directory for spill files; empty = $TMPDIR, else /tmp. CLI:
    /// --spill-dir.
    std::string spill_dir;
    /// Run the block-analysis phase on the simulated cluster and attach a
    /// ClusterSummary to the result.
    bool simulate_cluster = false;
    dist::ClusterConfig cluster;
    /// Observability sinks passed through to the pipeline (src/obs). Not
    /// owned; nullptr falls back to the process-wide installed instances.
    obs::TraceRecorder* trace = nullptr;
    obs::MetricsRegistry* metrics = nullptr;
    /// Live progress estimator passed through to the executors; attach a
    /// TelemetrySampler to the same instance for heartbeat output. No
    /// installed-instance fallback (progress is run-scoped). Not owned.
    obs::ProgressEstimator* progress = nullptr;
    /// Per-task hardware-counter profiling (perf_event_open when
    /// available, software task clock otherwise): every pipeline task
    /// reads cycle/instruction/miss deltas, surfaced as
    /// RunStats::profile and as counter args on trace spans. CLI:
    /// --perf-counters.
    bool profile = false;
  };

  MaxCliqueFinder() : MaxCliqueFinder(Options()) {}
  explicit MaxCliqueFinder(Options options);

  /// Validates the options against `g` and runs the pipeline.
  Result<FindResult> Find(const Graph& g) const;

  /// The block bound that Find would use on `g` (after ratio resolution).
  Result<uint32_t> ResolveBlockSize(const Graph& g) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  decision::DecisionTree paper_tree_;
};

}  // namespace mce

#endif  // MCE_CORE_MAX_CLIQUE_FINDER_H_
