#include "core/run_stats.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/check.h"

namespace mce {

std::string RunStats::ToString() const {
  std::ostringstream os;
  os << "cliques=" << total_cliques << " (feasible=" << feasible_cliques
     << ", hub-only=" << hub_cliques << ")"
     << " max_size=" << max_clique_size << " avg_size=" << avg_clique_size
     << " levels=" << num_levels << " blocks=" << total_blocks
     << " decompose_s=" << decompose_seconds
     << " analyze_s=" << analyze_seconds
     << " overlap_s=" << overlap_seconds << " idle_s=" << idle_seconds
     << " barrier_idle_s=" << barrier_idle_seconds;
  if (block_splits > 0) os << " block_splits=" << block_splits;
  if (wall_seconds > 0) os << " wall_s=" << wall_seconds;
  if (utilization > 0) os << " util=" << utilization;
  if (progress.enabled) {
    os << " progress[cost=" << progress.completed_cost << "/"
       << progress.predicted_cost
       << " eta_err_s=" << progress.mean_abs_eta_error_seconds << "]";
  }
  if (profile.enabled) {
    os << " profile[" << (profile.hardware ? "hw" : "sw")
       << " spans=" << profile.total.spans
       << " cycles=" << profile.total.counters.cycles
       << " ipc=" << profile.total.Ipc() << "]";
  }
  if (reduction.enabled) {
    os << " reduce[v=" << reduction.vertices_removed
       << " e=" << reduction.edges_removed
       << " trivial=" << reduction.trivial_cliques
       << " rounds=" << reduction.rounds << "]";
  }
  if (memory.budget_bytes > 0 || memory.spill_chunks > 0) {
    os << " mem[peak=" << memory.peak_tracked_bytes
       << " budget=" << memory.budget_bytes
       << " spill_chunks=" << memory.spill_chunks
       << " spill_bytes=" << memory.spill_bytes
       << " stalls=" << memory.admission_stalls << "]";
  }
  if (used_fallback) os << " [fallback]";
  return os.str();
}

RunStats ComputeRunStats(const decomp::FindMaxCliquesResult& result) {
  MCE_CHECK_EQ(result.cliques.size(), result.origin_level.size());
  RunStats s;
  s.total_cliques = result.cliques.size();
  s.num_levels = result.levels.size();
  s.used_fallback = result.used_fallback;
  s.reduction = result.reduction;
  s.memory = result.memory;

  uint64_t total_size = 0, feasible_size = 0, hub_size = 0;
  for (size_t i = 0; i < result.cliques.size(); ++i) {
    const size_t size = result.cliques.cliques()[i].size();
    total_size += size;
    s.max_clique_size = std::max(s.max_clique_size, size);
    if (result.origin_level[i] == 0) {
      ++s.feasible_cliques;
      feasible_size += size;
    } else {
      ++s.hub_cliques;
      hub_size += size;
    }
  }
  if (s.total_cliques > 0) {
    s.avg_clique_size = static_cast<double>(total_size) / s.total_cliques;
  }
  if (s.feasible_cliques > 0) {
    s.avg_feasible_clique_size =
        static_cast<double>(feasible_size) / s.feasible_cliques;
  }
  if (s.hub_cliques > 0) {
    s.avg_hub_clique_size = static_cast<double>(hub_size) / s.hub_cliques;
  }
  double block_seconds = 0;
  double capacity_seconds = 0;
  for (const decomp::LevelStats& level : result.levels) {
    s.total_blocks += level.blocks;
    s.decompose_seconds += level.decompose_seconds;
    s.analyze_seconds += level.analyze_seconds;
    s.overlap_seconds += level.overlap_seconds;
    s.idle_seconds += level.idle_seconds;
    s.barrier_idle_seconds += level.barrier_idle_seconds;
    s.block_splits += level.block_splits;
    block_seconds += level.block_seconds;
    capacity_seconds +=
        level.busiest_worker_seconds * std::max(1u, level.analyze_threads);
  }
  // Achieved analysis utilization: serial-equivalent work over the worker
  // capacity spanned by the busiest worker, per level. 1.0 means every
  // worker was busy for exactly as long as the busiest one.
  if (capacity_seconds > 0) s.utilization = block_seconds / capacity_seconds;
  s.progress = result.progress;
  s.profile = result.profile;
  return s;
}

double HubShareOfLargestCliques(const decomp::FindMaxCliquesResult& result,
                                size_t k) {
  const size_t n = result.cliques.size();
  if (n == 0 || k == 0) return 0.0;
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Largest first; ties by clique content for determinism.
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const auto& ca = result.cliques.cliques()[a];
    const auto& cb = result.cliques.cliques()[b];
    if (ca.size() != cb.size()) return ca.size() > cb.size();
    return ca < cb;
  });
  const size_t take = std::min(k, n);
  size_t hub = 0;
  for (size_t i = 0; i < take; ++i) {
    if (result.origin_level[order[i]] >= 1) ++hub;
  }
  return static_cast<double>(hub) / static_cast<double>(take);
}

}  // namespace mce
