#include "core/verify.h"

#include <algorithm>
#include <sstream>

#include "mce/enumerator.h"

namespace mce {

std::string VerificationReport::ToString() const {
  std::ostringstream os;
  os << "checked=" << checked << " not_a_clique=" << not_a_clique
     << " not_maximal=" << not_maximal << " duplicates=" << duplicates
     << " missing=" << missing << (ok() ? " [OK]" : " [FAILED]");
  return os.str();
}

VerificationReport VerifyCliques(const Graph& g, CliqueSet& cliques) {
  VerificationReport report;
  const size_t before = cliques.size();
  cliques.Canonicalize();
  report.duplicates = before - cliques.size();
  for (const Clique& c : cliques.cliques()) {
    ++report.checked;
    if (!IsClique(g, c)) {
      ++report.not_a_clique;
      continue;
    }
    if (!CommonNeighbors(g, c).empty()) ++report.not_maximal;
  }
  report.checked += report.duplicates;  // duplicates were "checked" too
  return report;
}

VerificationReport VerifyAgainstReference(const Graph& g,
                                          CliqueSet& cliques) {
  VerificationReport report = VerifyCliques(g, cliques);
  CliqueSet reference = EnumerateToSet(
      g, MceOptions{Algorithm::kEppstein, StorageKind::kAdjacencyList});
  // Both canonicalized: count reference cliques absent from `cliques`.
  const auto& have = cliques.cliques();
  for (const Clique& c : reference.cliques()) {
    if (!std::binary_search(have.begin(), have.end(), c)) ++report.missing;
  }
  return report;
}

}  // namespace mce
