#include "core/clique_analysis.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace mce {

std::vector<uint64_t> CliqueSizeHistogram(const CliqueSet& cliques) {
  std::vector<uint64_t> histogram(cliques.MaxCliqueSize() + 1, 0);
  for (const Clique& c : cliques.cliques()) ++histogram[c.size()];
  return histogram;
}

std::vector<size_t> LargestCliqueIndices(const CliqueSet& cliques, size_t k) {
  std::vector<size_t> order(cliques.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&cliques](size_t a, size_t b) {
    const Clique& ca = cliques.cliques()[a];
    const Clique& cb = cliques.cliques()[b];
    if (ca.size() != cb.size()) return ca.size() > cb.size();
    return ca < cb;
  });
  order.resize(std::min(k, order.size()));
  return order;
}

std::vector<uint64_t> PerNodeCliqueCounts(const CliqueSet& cliques,
                                          NodeId num_nodes) {
  std::vector<uint64_t> counts(num_nodes, 0);
  for (const Clique& c : cliques.cliques()) {
    for (NodeId v : c) {
      MCE_CHECK_LT(v, num_nodes);
      ++counts[v];
    }
  }
  return counts;
}

std::vector<NodeId> TopParticipants(const CliqueSet& cliques,
                                    NodeId num_nodes, size_t k) {
  std::vector<uint64_t> counts = PerNodeCliqueCounts(cliques, num_nodes);
  std::vector<NodeId> order(num_nodes);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&counts](NodeId a, NodeId b) {
    if (counts[a] != counts[b]) return counts[a] > counts[b];
    return a < b;
  });
  order.resize(std::min<size_t>(k, order.size()));
  return order;
}

}  // namespace mce
