// k-clique communities via clique percolation (Palla et al.), the
// community-detection application the paper motivates MCE with (its
// citation [20] computes k-clique communities in parallel).
//
// Definition: a k-clique community is a union of k-cliques reachable from
// one another through adjacency steps, where two k-cliques are adjacent
// when they share k-1 nodes. The standard reduction computes this from
// the maximal cliques: every maximal clique of size >= k is a node of an
// overlap graph; two are connected when they share >= k-1 vertices; the
// communities are the vertex unions of the connected components.

#ifndef MCE_COMMUNITY_PERCOLATION_H_
#define MCE_COMMUNITY_PERCOLATION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "mce/clique.h"

namespace mce::community {

/// One community: its member nodes (sorted) and the maximal cliques (as
/// indices into the input clique set) that formed it.
struct Community {
  std::vector<NodeId> members;
  std::vector<size_t> clique_indices;
};

/// Computes the k-clique communities of `g` from a precomputed set of its
/// maximal cliques (canonicalized or not). k must be >= 2. Communities are
/// returned largest-first; nodes may belong to several (overlapping
/// communities are the point of the method).
std::vector<Community> KCliqueCommunities(const CliqueSet& maximal_cliques,
                                          uint32_t k);

/// Convenience: enumerates the maximal cliques of `g` (via the Eppstein
/// variant) and percolates them.
std::vector<Community> KCliqueCommunities(const Graph& g, uint32_t k);

}  // namespace mce::community

#endif  // MCE_COMMUNITY_PERCOLATION_H_
