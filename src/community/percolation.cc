#include "community/percolation.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "mce/enumerator.h"
#include "util/check.h"

namespace mce::community {

namespace {

/// Plain union-find with path halving.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

/// |a n b| for sorted vectors.
size_t OverlapSize(const Clique& a, const Clique& b) {
  size_t count = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

std::vector<Community> KCliqueCommunities(const CliqueSet& maximal_cliques,
                                          uint32_t k) {
  MCE_CHECK_GE(k, 2u);
  // Eligible cliques: size >= k.
  std::vector<size_t> eligible;
  for (size_t i = 0; i < maximal_cliques.size(); ++i) {
    if (maximal_cliques.cliques()[i].size() >= k) eligible.push_back(i);
  }

  // Candidate adjacent pairs share at least one vertex; bucket cliques per
  // vertex so only co-located pairs are compared.
  std::unordered_map<NodeId, std::vector<size_t>> by_vertex;
  for (size_t e = 0; e < eligible.size(); ++e) {
    for (NodeId v : maximal_cliques.cliques()[eligible[e]]) {
      by_vertex[v].push_back(e);
    }
  }
  DisjointSets sets(eligible.size());
  for (const auto& [vertex, list] : by_vertex) {
    for (size_t i = 0; i < list.size(); ++i) {
      for (size_t j = i + 1; j < list.size(); ++j) {
        if (sets.Find(list[i]) == sets.Find(list[j])) continue;
        const Clique& a = maximal_cliques.cliques()[eligible[list[i]]];
        const Clique& b = maximal_cliques.cliques()[eligible[list[j]]];
        if (OverlapSize(a, b) + 1 >= k) sets.Union(list[i], list[j]);
      }
    }
  }

  // Gather components.
  std::unordered_map<size_t, Community> by_root;
  for (size_t e = 0; e < eligible.size(); ++e) {
    Community& c = by_root[sets.Find(e)];
    c.clique_indices.push_back(eligible[e]);
    const Clique& members = maximal_cliques.cliques()[eligible[e]];
    c.members.insert(c.members.end(), members.begin(), members.end());
  }
  std::vector<Community> out;
  out.reserve(by_root.size());
  for (auto& [root, community] : by_root) {
    std::sort(community.members.begin(), community.members.end());
    community.members.erase(
        std::unique(community.members.begin(), community.members.end()),
        community.members.end());
    std::sort(community.clique_indices.begin(),
              community.clique_indices.end());
    out.push_back(std::move(community));
  }
  std::sort(out.begin(), out.end(), [](const Community& a,
                                       const Community& b) {
    if (a.members.size() != b.members.size()) {
      return a.members.size() > b.members.size();
    }
    return a.members < b.members;  // deterministic order
  });
  return out;
}

std::vector<Community> KCliqueCommunities(const Graph& g, uint32_t k) {
  CliqueSet cliques = EnumerateToSet(
      g, MceOptions{Algorithm::kEppstein, StorageKind::kAdjacencyList});
  return KCliqueCommunities(cliques, k);
}

}  // namespace mce::community
