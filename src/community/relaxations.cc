#include "community/relaxations.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "graph/builder.h"
#include "graph/subgraph.h"
#include "util/check.h"

namespace mce::community {

namespace {

/// Truncated BFS from `start` (depth <= k) over `g`; fills `dist` (sized
/// n, reset lazily through `touched`).
void BoundedBfs(const Graph& g, NodeId start, uint32_t k,
                std::vector<uint32_t>* dist, std::vector<NodeId>* touched) {
  constexpr uint32_t kUnseen = static_cast<uint32_t>(-1);
  (*dist)[start] = 0;
  touched->push_back(start);
  std::queue<NodeId> queue;
  queue.push(start);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    if ((*dist)[v] == k) continue;
    for (NodeId u : g.Neighbors(v)) {
      if ((*dist)[u] != kUnseen) continue;
      (*dist)[u] = (*dist)[v] + 1;
      touched->push_back(u);
      queue.push(u);
    }
  }
}

}  // namespace

Graph PowerGraph(const Graph& g, uint32_t k) {
  MCE_CHECK_GE(k, 1u);
  if (k == 1) return g;
  constexpr uint32_t kUnseen = static_cast<uint32_t>(-1);
  GraphBuilder builder(g.num_nodes());
  std::vector<uint32_t> dist(g.num_nodes(), kUnseen);
  std::vector<NodeId> touched;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    touched.clear();
    BoundedBfs(g, v, k, &dist, &touched);
    for (NodeId u : touched) {
      if (u > v) builder.AddEdge(v, u);
      dist[u] = kUnseen;  // lazy reset
    }
  }
  return builder.Build();
}

CliqueSet MaximalDistanceKCliques(const Graph& g, uint32_t k,
                                  const MceOptions& options) {
  Graph power = PowerGraph(g, k);
  return EnumerateToSet(power, options);
}

bool InducedDiameterAtMost(const Graph& g, std::span<const NodeId> nodes,
                           uint32_t k) {
  if (nodes.size() <= 1) return true;
  InducedSubgraph sub = Induce(g, nodes);
  constexpr uint32_t kUnseen = static_cast<uint32_t>(-1);
  std::vector<uint32_t> dist(sub.graph.num_nodes(), kUnseen);
  std::vector<NodeId> touched;
  for (NodeId v = 0; v < sub.graph.num_nodes(); ++v) {
    touched.clear();
    BoundedBfs(sub.graph, v, k, &dist, &touched);
    const bool all_reached = touched.size() == sub.graph.num_nodes();
    for (NodeId u : touched) dist[u] = kUnseen;
    if (!all_reached) return false;
  }
  return true;
}

CliqueSet KClans(const Graph& g, uint32_t k, const MceOptions& options) {
  CliqueSet kcliques = MaximalDistanceKCliques(g, k, options);
  CliqueSet out;
  for (const Clique& c : kcliques.cliques()) {
    if (InducedDiameterAtMost(g, c, k)) out.Add(c);
  }
  out.Canonicalize();
  return out;
}

}  // namespace mce::community
