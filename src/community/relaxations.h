// Distance-based clique relaxations: k-cliques and k-clans.
//
// The paper's conclusions name "k-cliques, k-clubs, k-clans, and k-plexes"
// as the relaxed community models to extend the approach to. The
// degree-based relaxation (k-plex) lives in mce/kplex.h; this header
// provides the distance-based family:
//  * a (Luce) k-clique is a set of nodes pairwise within distance k in G —
//    equivalently, a clique of the k-th power graph G^k;
//  * a k-clan is a maximal k-clique whose *induced* subgraph has diameter
//    at most k (the distance-k paths must stay inside the set).
// Maximal k-cliques are therefore exactly the maximal cliques of G^k,
// which this module computes with the library's own MCE.

#ifndef MCE_COMMUNITY_RELAXATIONS_H_
#define MCE_COMMUNITY_RELAXATIONS_H_

#include <cstdint>

#include "graph/graph.h"
#include "mce/clique.h"
#include "mce/enumerator.h"

namespace mce::community {

/// The k-th power graph: an edge {u, v} for every pair at distance
/// <= k in g (k >= 1; k = 1 returns g itself). O(n * (n + m)) worst case
/// via truncated BFS per node — intended for block-scale graphs.
Graph PowerGraph(const Graph& g, uint32_t k);

/// All maximal (distance-)k-cliques of g, canonicalized. k = 1 is plain
/// MCE.
CliqueSet MaximalDistanceKCliques(
    const Graph& g, uint32_t k,
    const MceOptions& options = {Algorithm::kEppstein,
                                 StorageKind::kAdjacencyList});

/// True iff the subgraph induced by `nodes` is connected with diameter
/// <= k.
bool InducedDiameterAtMost(const Graph& g, std::span<const NodeId> nodes,
                           uint32_t k);

/// All k-clans of g: maximal k-cliques whose induced diameter is <= k.
CliqueSet KClans(const Graph& g, uint32_t k,
                 const MceOptions& options = {
                     Algorithm::kEppstein, StorageKind::kAdjacencyList});

}  // namespace mce::community

#endif  // MCE_COMMUNITY_RELAXATIONS_H_
