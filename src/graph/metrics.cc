#include "graph/metrics.h"

#include <algorithm>

#include "graph/core_decomposition.h"
#include "graph/ordered_adjacency.h"

namespace mce {

GraphMetrics ComputeMetrics(const Graph& g) {
  GraphMetrics m;
  m.num_nodes = g.num_nodes();
  m.num_edges = g.num_edges();
  m.density = g.Density();
  m.degeneracy = Degeneracy(g);
  m.d_star = DStar(g);
  m.max_degree = g.MaxDegree();
  return m;
}

std::vector<uint64_t> DegreeHistogram(const Graph& g, int truncate_at) {
  uint32_t cap = g.MaxDegree();
  if (truncate_at >= 0) cap = std::min<uint32_t>(cap, truncate_at);
  std::vector<uint64_t> histogram(cap + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    uint32_t d = g.Degree(v);
    if (d <= cap) ++histogram[d];
  }
  return histogram;
}

uint64_t CountTriangles(const Graph& g) {
  // For each vertex, intersect the later-neighbor lists of its later
  // neighbors: each triangle is counted exactly once, at its order-minimal
  // vertex. Work per edge is bounded by the degeneracy.
  OrderedAdjacency ordered(g);
  uint64_t triangles = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto later = ordered.LaterNeighbors(v);
    for (size_t i = 0; i < later.size(); ++i) {
      auto later_u = ordered.LaterNeighbors(later[i]);
      // Both spans are sorted by id: merge-count the intersection with
      // the remaining later neighbors of v.
      size_t a = 0, b = 0;
      while (a < later.size() && b < later_u.size()) {
        if (later[a] < later_u[b]) {
          ++a;
        } else if (later_u[b] < later[a]) {
          ++b;
        } else {
          ++triangles;
          ++a;
          ++b;
        }
      }
    }
  }
  return triangles;
}

double GlobalClusteringCoefficient(const Graph& g) {
  uint64_t wedges = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const uint64_t d = g.Degree(v);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(g)) /
         static_cast<double>(wedges);
}

double DegreeRangeFraction(const Graph& g, uint32_t lo, uint32_t hi) {
  if (g.num_nodes() == 0) return 0.0;
  uint64_t in_range = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    uint32_t d = g.Degree(v);
    if (d >= lo && d <= hi) ++in_range;
  }
  return static_cast<double>(in_range) / g.num_nodes();
}

}  // namespace mce
