// Mutable undirected simple graph with sorted adjacency vectors.
//
// The CSR Graph is immutable by design (the decomposition pipeline never
// mutates its input); the incremental-MCE engine (src/incremental) needs
// edge insertions and deletions, which this type provides in O(degree)
// while keeping neighbor lists sorted for O(log d) membership tests.

#ifndef MCE_GRAPH_DYNAMIC_GRAPH_H_
#define MCE_GRAPH_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mce {

class DynamicGraph {
 public:
  DynamicGraph() = default;
  explicit DynamicGraph(NodeId num_nodes) : adjacency_(num_nodes) {}
  /// Snapshot of an immutable graph.
  explicit DynamicGraph(const Graph& g);

  NodeId num_nodes() const { return static_cast<NodeId>(adjacency_.size()); }
  uint64_t num_edges() const { return num_edges_; }

  /// Appends an isolated node and returns its id.
  NodeId AddNode();

  /// Ensures ids [0, n) exist.
  void EnsureNodes(NodeId n);

  /// Inserts {u, v}; returns false (and does nothing) when the edge exists
  /// or u == v. Node ids must exist.
  bool AddEdge(NodeId u, NodeId v);

  /// Removes {u, v}; returns false when absent.
  bool RemoveEdge(NodeId u, NodeId v);

  bool HasEdge(NodeId u, NodeId v) const;

  uint32_t Degree(NodeId v) const {
    MCE_DCHECK_LT(v, num_nodes());
    return static_cast<uint32_t>(adjacency_[v].size());
  }

  /// Sorted neighbor list.
  const std::vector<NodeId>& Neighbors(NodeId v) const {
    MCE_DCHECK_LT(v, num_nodes());
    return adjacency_[v];
  }

  /// Sorted common neighborhood of u and v.
  std::vector<NodeId> CommonNeighbors(NodeId u, NodeId v) const;

  /// Immutable CSR snapshot of the current state.
  Graph ToGraph() const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  uint64_t num_edges_ = 0;
};

}  // namespace mce

#endif  // MCE_GRAPH_DYNAMIC_GRAPH_H_
