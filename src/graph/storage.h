// GraphStorage — ownership-agnostic backing store for a Graph's CSR.
//
// A Graph is two arrays: offsets (n+1 × uint64_t) and adjacency
// (2m × NodeId). Where those arrays live is an ownership question the rest
// of the pipeline should not care about, so Graph holds a
// shared_ptr<const GraphStorage> and caches the two spans. Two backings
// exist:
//
//   OwnedCsrStorage — heap vectors, today's path. GraphBuilder,
//     FromSortedCsr, the reduction prepass, and Induce all land here.
//   MmapCsrStorage  — a read-only mmap view of an MCECSR02 binary file
//     (written by tools/mce_convert / WriteCsrBinary in graph/io.h). The
//     kernel pages adjacency in on demand and may evict it under pressure,
//     so graphs larger than RAM enumerate without ever materializing the
//     CSR on the heap.
//
// ResidentBytes() is the storage's charge against util/MemoryBudget: heap
// vectors pin their full footprint, mmap views report 0 because their pages
// are clean, file-backed, and reclaimable by the kernel at any time.
//
// MCECSR02 on-disk layout (native endianness, 64-bit offsets):
//
//   byte  0  uint64  magic "MCECSR02"
//   byte  8  uint64  n          number of nodes
//   byte 16  uint64  m          number of undirected edges
//   byte 24  uint64  reserved   0
//   byte 32  uint64  offsets[n + 1]
//   ...      uint32  adjacency[2 m]
//
// Both arrays start naturally aligned (32 is a multiple of 8, and
// 32 + 8(n+1) is a multiple of 4), so the mapped file is directly usable
// as the two spans with no translation. Open() validates the header, the
// file size, and the offset endpoints; per-row invariants (sortedness,
// symmetry, no self-loops) are trusted from the writer — use
// ReadCsrBinary() from graph/io.h for a heap copy that revalidates them in
// debug builds.

#ifndef MCE_GRAPH_STORAGE_H_
#define MCE_GRAPH_STORAGE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace mce {

/// Abstract backing store for one CSR graph. Immutable after construction;
/// all methods are thread-safe.
class GraphStorage {
 public:
  virtual ~GraphStorage() = default;

  GraphStorage(const GraphStorage&) = delete;
  GraphStorage& operator=(const GraphStorage&) = delete;

  /// n+1 row offsets; offsets()[0] == 0, offsets()[n] == adjacency().size().
  virtual std::span<const uint64_t> offsets() const = 0;
  /// Concatenated neighbor rows, sorted within each row.
  virtual std::span<const NodeId> adjacency() const = 0;
  /// Heap bytes this storage pins — the MemoryBudget charge. 0 for mmap
  /// views whose pages the kernel can reclaim.
  virtual uint64_t ResidentBytes() const = 0;
  /// Stable identifier for stats and tests: "heap" or "mmap".
  virtual const char* kind() const = 0;

 protected:
  GraphStorage() = default;
};

/// CSR arrays owned as heap vectors.
class OwnedCsrStorage final : public GraphStorage {
 public:
  OwnedCsrStorage(std::vector<uint64_t> offsets, std::vector<NodeId> adjacency)
      : offsets_(std::move(offsets)), adjacency_(std::move(adjacency)) {}

  std::span<const uint64_t> offsets() const override { return offsets_; }
  std::span<const NodeId> adjacency() const override { return adjacency_; }
  uint64_t ResidentBytes() const override {
    return offsets_.capacity() * sizeof(uint64_t) +
           adjacency_.capacity() * sizeof(NodeId);
  }
  const char* kind() const override { return "heap"; }

 private:
  std::vector<uint64_t> offsets_;  // size n+1
  std::vector<NodeId> adjacency_;  // size 2m
};

/// Read-only mmap view of an MCECSR02 file. The mapping lives as long as
/// the storage object; the file descriptor is closed right after mmap.
class MmapCsrStorage final : public GraphStorage {
 public:
  /// Maps `path` and validates magic, version, file size, and offset
  /// endpoints. Errors: IoError (open/stat/mmap failure, short file),
  /// InvalidArgument (bad magic, inconsistent header), OutOfRange
  /// (node count exceeds NodeId).
  static Result<std::shared_ptr<const GraphStorage>> Open(
      const std::string& path);

  ~MmapCsrStorage() override;

  std::span<const uint64_t> offsets() const override { return offsets_; }
  std::span<const NodeId> adjacency() const override { return adjacency_; }
  uint64_t ResidentBytes() const override { return 0; }
  const char* kind() const override { return "mmap"; }

 private:
  MmapCsrStorage() = default;

  void* map_ = nullptr;
  size_t map_len_ = 0;
  std::span<const uint64_t> offsets_;
  std::span<const NodeId> adjacency_;
};

/// Magic for the MCECSR02 CSR format ("MCECSR02" as a big-endian number,
/// mirroring kBinaryMagic in graph/io.cc for the edge-pair format).
inline constexpr uint64_t kCsrBinaryMagic = 0x4d43454353523032ULL;

/// The shared zero-node storage every default-constructed or moved-from
/// Graph points at (offsets = {0}). Leaked singleton, safe at any point of
/// static destruction.
const std::shared_ptr<const GraphStorage>& EmptyGraphStorage();

}  // namespace mce

#endif  // MCE_GRAPH_STORAGE_H_
