#include "graph/storage.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mce {
namespace {

struct CsrHeader {
  uint64_t magic;
  uint64_t num_nodes;
  uint64_t num_edges;
  uint64_t reserved;
};
static_assert(sizeof(CsrHeader) == 32);

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

Result<std::shared_ptr<const GraphStorage>> MmapCsrStorage::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError(Errno("open " + path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status s = Status::IoError(Errno("fstat " + path));
    ::close(fd);
    return s;
  }
  const uint64_t file_len = static_cast<uint64_t>(st.st_size);
  auto fail = [&](Status s) -> Result<std::shared_ptr<const GraphStorage>> {
    ::close(fd);
    return s;
  };
  if (file_len < sizeof(CsrHeader)) {
    return fail(Status::IoError(path + ": truncated CSR header"));
  }
  void* map = ::mmap(nullptr, file_len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps the file alive.
  if (map == MAP_FAILED) return Status::IoError(Errno("mmap " + path));

  std::shared_ptr<MmapCsrStorage> storage(new MmapCsrStorage());
  storage->map_ = map;
  storage->map_len_ = file_len;

  CsrHeader header;
  std::memcpy(&header, map, sizeof(header));
  if (header.magic != kCsrBinaryMagic) {
    return Status::InvalidArgument(path + ": not an MCECSR02 graph file");
  }
  if (header.num_nodes > kInvalidNode) {
    return Status::OutOfRange(path + ": node count exceeds NodeId range");
  }
  const uint64_t n = header.num_nodes;
  const uint64_t entries = 2 * header.num_edges;
  const uint64_t expected =
      sizeof(CsrHeader) + (n + 1) * sizeof(uint64_t) + entries * sizeof(NodeId);
  if (file_len != expected) {
    return Status::IoError(path + ": file size " + std::to_string(file_len) +
                           " does not match header (expected " +
                           std::to_string(expected) + ")");
  }
  const auto* offsets =
      reinterpret_cast<const uint64_t*>(static_cast<const char*>(map) +
                                        sizeof(CsrHeader));
  const auto* adjacency = reinterpret_cast<const NodeId*>(offsets + (n + 1));
  if (offsets[0] != 0 || offsets[n] != entries) {
    return Status::InvalidArgument(path + ": inconsistent CSR offsets");
  }
  storage->offsets_ = {offsets, offsets + n + 1};
  storage->adjacency_ = {adjacency, adjacency + entries};
  return std::shared_ptr<const GraphStorage>(std::move(storage));
}

MmapCsrStorage::~MmapCsrStorage() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
}

const std::shared_ptr<const GraphStorage>& EmptyGraphStorage() {
  static const auto* empty = new std::shared_ptr<const GraphStorage>(
      std::make_shared<OwnedCsrStorage>(std::vector<uint64_t>{0},
                                        std::vector<NodeId>{}));
  return *empty;
}

}  // namespace mce
