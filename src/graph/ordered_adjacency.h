// Degeneracy-ordered adjacency — the "inverted table" structure of
// Eppstein & Strash that the paper lists among its adjacency-list variants
// (Section 4). Every node's neighbor list is split into the neighbors that
// come *later* in a degeneracy ordering (at most `degeneracy` of them) and
// those that come *earlier*; the Eppstein outer loop reads the two halves
// directly instead of re-partitioning per vertex.

#ifndef MCE_GRAPH_ORDERED_ADJACENCY_H_
#define MCE_GRAPH_ORDERED_ADJACENCY_H_

#include <span>
#include <vector>

#include "graph/core_decomposition.h"
#include "graph/graph.h"

namespace mce {

class OrderedAdjacency {
 public:
  /// Computes the degeneracy ordering of `g` and partitions every
  /// adjacency row. O(n + m).
  explicit OrderedAdjacency(const Graph& g);

  NodeId num_nodes() const {
    return static_cast<NodeId>(later_offset_.size() - 1);
  }

  const CoreDecomposition& cores() const { return cores_; }

  /// Neighbors of v that appear after v in the degeneracy order, sorted by
  /// id. Size is bounded by the graph's degeneracy.
  std::span<const NodeId> LaterNeighbors(NodeId v) const {
    MCE_DCHECK_LT(v, num_nodes());
    return {adjacency_.data() + later_offset_[v],
            adjacency_.data() + split_[v]};
  }

  /// Neighbors of v that appear before v in the order, sorted by id.
  std::span<const NodeId> EarlierNeighbors(NodeId v) const {
    MCE_DCHECK_LT(v, num_nodes());
    return {adjacency_.data() + split_[v],
            adjacency_.data() + later_offset_[v + 1]};
  }

 private:
  CoreDecomposition cores_;
  // Row v occupies [later_offset_[v], later_offset_[v+1]); the later
  // neighbors come first, ending at split_[v].
  std::vector<uint64_t> later_offset_;
  std::vector<uint64_t> split_;
  std::vector<NodeId> adjacency_;
};

}  // namespace mce

#endif  // MCE_GRAPH_ORDERED_ADJACENCY_H_
