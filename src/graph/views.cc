#include "graph/views.h"

namespace mce {

void AdjacencyMatrix::Assign(const Graph& g) {
  n_ = g.num_nodes();
  cells_.assign(static_cast<size_t>(n_) * n_, 0);
  for (NodeId v = 0; v < n_; ++v) {
    for (NodeId u : g.Neighbors(v)) {
      cells_[static_cast<size_t>(v) * n_ + u] = 1;
    }
  }
}

void BitsetGraph::Assign(const Graph& g) {
  n_ = g.num_nodes();
  if (rows_.size() < n_) rows_.resize(n_);
  for (NodeId v = 0; v < n_; ++v) {
    Bitset& row = rows_[v];
    row.Reinit(n_);
    for (NodeId u : g.Neighbors(v)) row.Set(u);
  }
}

}  // namespace mce
