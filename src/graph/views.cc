#include "graph/views.h"

namespace mce {

AdjacencyMatrix::AdjacencyMatrix(const Graph& g)
    : n_(g.num_nodes()), cells_(static_cast<size_t>(n_) * n_, 0) {
  for (NodeId v = 0; v < n_; ++v) {
    for (NodeId u : g.Neighbors(v)) {
      cells_[static_cast<size_t>(v) * n_ + u] = 1;
    }
  }
}

BitsetGraph::BitsetGraph(const Graph& g) : n_(g.num_nodes()) {
  rows_.reserve(n_);
  for (NodeId v = 0; v < n_; ++v) {
    Bitset row(n_);
    for (NodeId u : g.Neighbors(v)) row.Set(u);
    rows_.push_back(std::move(row));
  }
}

}  // namespace mce
