// Whole-graph statistics used by the block classifier (Section 4) and the
// dataset tables of the evaluation (Table 2, Table 3, Figure 6).

#ifndef MCE_GRAPH_METRICS_H_
#define MCE_GRAPH_METRICS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mce {

/// The five block-classification parameters of Section 4 plus max degree.
struct GraphMetrics {
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  double density = 0.0;
  uint32_t degeneracy = 0;
  uint32_t d_star = 0;
  uint32_t max_degree = 0;
};

/// Computes all metrics in O(n + m).
GraphMetrics ComputeMetrics(const Graph& g);

/// histogram[d] = number of nodes of degree d, for d in [0, max_degree];
/// if `truncate_at` >= 0, the histogram is cut at that degree (Figure 6
/// truncates at 20) and higher-degree nodes are ignored.
std::vector<uint64_t> DegreeHistogram(const Graph& g, int truncate_at = -1);

/// Fraction of nodes with degree in [lo, hi] (inclusive). The paper reports
/// that on average 91% of nodes fall in [1, 20] for its datasets.
double DegreeRangeFraction(const Graph& g, uint32_t lo, uint32_t hi);

/// Number of triangles in `g` (each counted once), via degeneracy-ordered
/// neighbor intersection — O(m * degeneracy).
uint64_t CountTriangles(const Graph& g);

/// Global clustering coefficient (transitivity): 3 * triangles / number of
/// connected vertex triples ("wedges"). 0 when the graph has no wedge.
/// Social networks sit far above the Erdos-Renyi baseline — one of the
/// properties community structure rests on.
double GlobalClusteringCoefficient(const Graph& g);

}  // namespace mce

#endif  // MCE_GRAPH_METRICS_H_
