#include "graph/builder.h"

#include <algorithm>

namespace mce {

void GraphBuilder::AddEdge(NodeId u, NodeId v) {
  if (u == v) return;
  if (u > v) std::swap(u, v);
  ReserveNodes(v + 1);
  edges_.emplace_back(u, v);
}

bool GraphBuilder::HasEdgeSlow(NodeId u, NodeId v) const {
  if (u > v) std::swap(u, v);
  auto key = std::make_pair(u, v);
  return std::find(edges_.begin(), edges_.end(), key) != edges_.end();
}

Graph GraphBuilder::Build() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  const NodeId n = num_nodes_;
  std::vector<uint64_t> offsets(n + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (NodeId i = 0; i < n; ++i) offsets[i + 1] += offsets[i];

  std::vector<NodeId> adjacency(edges_.size() * 2);
  std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges_) {
    adjacency[cursor[u]++] = v;
    adjacency[cursor[v]++] = u;
  }
  // Edges were sorted by (u, v), so each u's row is already sorted; rows for
  // v (the larger endpoint) received entries in sorted-u order too, but a
  // node's row mixes both roles, so sort each row to be safe.
  for (NodeId i = 0; i < n; ++i) {
    std::sort(adjacency.begin() + static_cast<ptrdiff_t>(offsets[i]),
              adjacency.begin() + static_cast<ptrdiff_t>(offsets[i + 1]));
  }

  edges_.clear();
  num_nodes_ = 0;
  return Graph(std::move(offsets), std::move(adjacency));
}

}  // namespace mce
