#include "graph/connectivity.h"

#include <algorithm>

namespace mce {

std::vector<NodeId> ComponentLabels::Members(uint32_t c) const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < label.size(); ++v) {
    if (label[v] == c) out.push_back(v);
  }
  return out;
}

ComponentLabels ConnectedComponents(const Graph& g) {
  ComponentLabels out;
  out.label.assign(g.num_nodes(), static_cast<uint32_t>(-1));
  std::vector<NodeId> queue;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (out.label[start] != static_cast<uint32_t>(-1)) continue;
    const uint32_t component = out.count++;
    out.label[start] = component;
    queue.clear();
    queue.push_back(start);
    while (!queue.empty()) {
      NodeId v = queue.back();
      queue.pop_back();
      for (NodeId u : g.Neighbors(v)) {
        if (out.label[u] == static_cast<uint32_t>(-1)) {
          out.label[u] = component;
          queue.push_back(u);
        }
      }
    }
  }
  return out;
}

bool IsConnected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  return ConnectedComponents(g).count == 1;
}

uint64_t LargestComponentSize(const Graph& g) {
  ComponentLabels components = ConnectedComponents(g);
  if (components.count == 0) return 0;
  std::vector<uint64_t> sizes(components.count, 0);
  for (uint32_t l : components.label) ++sizes[l];
  return *std::max_element(sizes.begin(), sizes.end());
}

}  // namespace mce
