#include "graph/subgraph.h"

#include <algorithm>
#include <unordered_map>

namespace mce {

InducedSubgraph Induce(const Graph& g, std::span<const NodeId> nodes) {
  std::vector<NodeId> sorted(nodes.begin(), nodes.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::unordered_map<NodeId, NodeId> to_local;
  to_local.reserve(sorted.size() * 2);
  for (NodeId i = 0; i < sorted.size(); ++i) {
    MCE_CHECK_LT(sorted[i], g.num_nodes());
    to_local.emplace(sorted[i], i);
  }

  // The parent's rows are sorted and to_local is monotone on the sorted
  // member list, so filtering each parent row yields the local rows already
  // sorted and symmetric — build the CSR directly and skip GraphBuilder's
  // sort/dedup pass.
  std::vector<uint64_t> offsets(sorted.size() + 1, 0);
  std::vector<NodeId> adjacency;
  for (NodeId local_u = 0; local_u < sorted.size(); ++local_u) {
    for (NodeId v : g.Neighbors(sorted[local_u])) {
      auto it = to_local.find(v);
      if (it != to_local.end()) adjacency.push_back(it->second);
    }
    offsets[local_u + 1] = adjacency.size();
  }
  return InducedSubgraph{
      Graph::FromSortedCsr(std::move(offsets), std::move(adjacency)),
      std::move(sorted)};
}

std::vector<NodeId> ToParentIds(const InducedSubgraph& sub,
                                std::span<const NodeId> nodes) {
  std::vector<NodeId> out;
  out.reserve(nodes.size());
  for (NodeId v : nodes) {
    MCE_CHECK_LT(v, sub.to_parent.size());
    out.push_back(sub.to_parent[v]);
  }
  return out;
}

}  // namespace mce
