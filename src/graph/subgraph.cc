#include "graph/subgraph.h"

#include <algorithm>
#include <unordered_map>

#include "graph/builder.h"

namespace mce {

InducedSubgraph Induce(const Graph& g, std::span<const NodeId> nodes) {
  std::vector<NodeId> sorted(nodes.begin(), nodes.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::unordered_map<NodeId, NodeId> to_local;
  to_local.reserve(sorted.size() * 2);
  for (NodeId i = 0; i < sorted.size(); ++i) {
    MCE_CHECK_LT(sorted[i], g.num_nodes());
    to_local.emplace(sorted[i], i);
  }

  GraphBuilder builder(static_cast<NodeId>(sorted.size()));
  for (NodeId local_u = 0; local_u < sorted.size(); ++local_u) {
    const NodeId u = sorted[local_u];
    for (NodeId v : g.Neighbors(u)) {
      if (v <= u) continue;  // each edge once
      auto it = to_local.find(v);
      if (it != to_local.end()) builder.AddEdge(local_u, it->second);
    }
  }
  return InducedSubgraph{builder.Build(), std::move(sorted)};
}

std::vector<NodeId> ToParentIds(const InducedSubgraph& sub,
                                std::span<const NodeId> nodes) {
  std::vector<NodeId> out;
  out.reserve(nodes.size());
  for (NodeId v : nodes) {
    MCE_CHECK_LT(v, sub.to_parent.size());
    out.push_back(sub.to_parent[v]);
  }
  return out;
}

}  // namespace mce
