// k-core decomposition, degeneracy, degeneracy ordering, and the d*
// parameter.
//
// Degeneracy ("coreness" in the paper, Section 5) is the sparsity measure
// the whole approach leans on: Theorem 1 guarantees the first-level
// decomposition terminates when the degeneracy d is below the block bound,
// and the Eppstein MCE variant iterates vertices in degeneracy order.
// The implementation is the Batagelj–Zaversnik bucket algorithm, O(n + m).

#ifndef MCE_GRAPH_CORE_DECOMPOSITION_H_
#define MCE_GRAPH_CORE_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mce {

/// Result of the O(n + m) core decomposition.
struct CoreDecomposition {
  /// core[v] = largest k such that v belongs to the k-core.
  std::vector<uint32_t> core;
  /// Nodes in degeneracy order: each node has at most `degeneracy` neighbors
  /// later in the order.
  std::vector<NodeId> order;
  /// position[v] = index of v within `order`.
  std::vector<uint32_t> position;
  /// The graph's degeneracy: max over v of core[v] (0 for empty graphs).
  uint32_t degeneracy = 0;
};

CoreDecomposition ComputeCoreDecomposition(const Graph& g);

/// Degeneracy only (same cost as the full decomposition).
uint32_t Degeneracy(const Graph& g);

/// Nodes of the k-core of `g` (possibly empty), i.e., the maximal induced
/// subgraph with minimum degree >= k, as sorted parent ids.
std::vector<NodeId> KCoreNodes(const Graph& g, uint32_t k);

/// The paper's d* parameter (Section 4): the maximum value d* for which the
/// graph has at least d* nodes with degree >= d* — the h-index of the degree
/// sequence, an O(n) estimate of the densest region's size.
uint32_t DStar(const Graph& g);

}  // namespace mce

#endif  // MCE_GRAPH_CORE_DECOMPOSITION_H_
