// Connected components and reachability helpers.

#ifndef MCE_GRAPH_CONNECTIVITY_H_
#define MCE_GRAPH_CONNECTIVITY_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mce {

/// Per-node component labels, numbered 0..count-1 in order of smallest
/// member id.
struct ComponentLabels {
  std::vector<uint32_t> label;  // label[v] = component of v
  uint32_t count = 0;

  /// Members of component `c`, ascending.
  std::vector<NodeId> Members(uint32_t c) const;
};

/// BFS-based connected components, O(n + m).
ComponentLabels ConnectedComponents(const Graph& g);

/// True iff the whole graph is one component (the empty graph is
/// considered connected).
bool IsConnected(const Graph& g);

/// Size of the largest component (0 for the empty graph).
uint64_t LargestComponentSize(const Graph& g);

}  // namespace mce

#endif  // MCE_GRAPH_CONNECTIVITY_H_
