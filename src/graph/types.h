// Fundamental graph scalar types, shared by graph.h and storage.h.

#ifndef MCE_GRAPH_TYPES_H_
#define MCE_GRAPH_TYPES_H_

#include <cstdint>

namespace mce {

using NodeId = uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

}  // namespace mce

#endif  // MCE_GRAPH_TYPES_H_
