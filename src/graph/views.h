// Dense adjacency views over a Graph.
//
// Section 4 of the paper evaluates each MCE algorithm over three data
// structures: adjacency matrices, bitsets, and adjacency lists. The list
// form is the Graph itself; this header provides the other two, built once
// per block and shared by the recursion.

#ifndef MCE_GRAPH_VIEWS_H_
#define MCE_GRAPH_VIEWS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/bitset.h"

namespace mce {

/// Dense boolean adjacency matrix. Memory is n^2 bytes, so this is only
/// materialized for blocks (whose size the decomposition bounds by m).
class AdjacencyMatrix {
 public:
  explicit AdjacencyMatrix(const Graph& g);

  NodeId num_nodes() const { return n_; }

  bool Adjacent(NodeId u, NodeId v) const {
    MCE_DCHECK_LT(u, n_);
    MCE_DCHECK_LT(v, n_);
    return cells_[static_cast<size_t>(u) * n_ + v] != 0;
  }

 private:
  NodeId n_;
  std::vector<uint8_t> cells_;
};

/// Adjacency rows as bitsets: row(v) has bit u set iff {u, v} is an edge.
/// Memory is n^2 / 8 bits; set intersections become word-parallel ANDs.
class BitsetGraph {
 public:
  explicit BitsetGraph(const Graph& g);

  NodeId num_nodes() const { return n_; }

  const Bitset& Row(NodeId v) const {
    MCE_DCHECK_LT(v, n_);
    return rows_[v];
  }

  bool Adjacent(NodeId u, NodeId v) const { return Row(u).Test(v); }

 private:
  NodeId n_;
  std::vector<Bitset> rows_;
};

}  // namespace mce

#endif  // MCE_GRAPH_VIEWS_H_
