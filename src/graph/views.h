// Dense adjacency views over a Graph.
//
// Section 4 of the paper evaluates each MCE algorithm over three data
// structures: adjacency matrices, bitsets, and adjacency lists. The list
// form is the Graph itself; this header provides the other two, built once
// per block and shared by the recursion.

#ifndef MCE_GRAPH_VIEWS_H_
#define MCE_GRAPH_VIEWS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/bitset.h"

namespace mce {

/// Dense boolean adjacency matrix. Memory is n^2 bytes, so this is only
/// materialized for blocks (whose size the decomposition bounds by m).
class AdjacencyMatrix {
 public:
  /// Empty matrix; fill with Assign().
  AdjacencyMatrix() : n_(0) {}
  explicit AdjacencyMatrix(const Graph& g) { Assign(g); }

  /// Rebuilds the matrix for `g`, reusing the existing cell storage.
  /// Grow-only: a matrix that has already held an n-node graph rebuilds for
  /// any graph with <= n nodes without allocating, so one instance can be
  /// recycled across the blocks a worker thread processes.
  void Assign(const Graph& g);

  NodeId num_nodes() const { return n_; }

  bool Adjacent(NodeId u, NodeId v) const {
    MCE_DCHECK_LT(u, n_);
    MCE_DCHECK_LT(v, n_);
    return cells_[static_cast<size_t>(u) * n_ + v] != 0;
  }

 private:
  NodeId n_;
  std::vector<uint8_t> cells_;
};

/// Adjacency rows as bitsets: row(v) has bit u set iff {u, v} is an edge.
/// Memory is n^2 / 8 bits; set intersections become word-parallel ANDs.
class BitsetGraph {
 public:
  /// Empty graph; fill with Assign().
  BitsetGraph() : n_(0) {}
  explicit BitsetGraph(const Graph& g) { Assign(g); }

  /// Rebuilds the rows for `g`. Grow-only like AdjacencyMatrix::Assign:
  /// rows (and their word storage) are kept and Reinit-ed, so rebuilding
  /// for a graph no larger than any previously assigned one is
  /// allocation-free.
  void Assign(const Graph& g);

  NodeId num_nodes() const { return n_; }

  const Bitset& Row(NodeId v) const {
    MCE_DCHECK_LT(v, n_);
    return rows_[v];
  }

  bool Adjacent(NodeId u, NodeId v) const { return Row(u).Test(v); }

 private:
  NodeId n_;
  std::vector<Bitset> rows_;  // grow-only: may be longer than n_
};

}  // namespace mce

#endif  // MCE_GRAPH_VIEWS_H_
