#include "graph/graph.h"

#include <algorithm>

namespace mce {

bool Graph::HasEdge(NodeId u, NodeId v) const {
  MCE_DCHECK_LT(u, num_nodes());
  MCE_DCHECK_LT(v, num_nodes());
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

uint32_t Graph::MaxDegree() const {
  uint32_t best = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) best = std::max(best, Degree(v));
  return best;
}

double Graph::Density() const {
  const uint64_t n = num_nodes();
  if (n < 2) return 0.0;
  return (2.0 * static_cast<double>(num_edges())) /
         (static_cast<double>(n) * static_cast<double>(n - 1));
}

}  // namespace mce
