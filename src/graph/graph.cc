#include "graph/graph.h"

#include <algorithm>

namespace mce {

Graph Graph::FromSortedCsr(std::vector<uint64_t> offsets,
                           std::vector<NodeId> adjacency) {
  MCE_DCHECK(!offsets.empty());
  MCE_DCHECK_EQ(offsets.front(), 0u);
  MCE_DCHECK_EQ(offsets.back(), adjacency.size());
#ifndef NDEBUG
  for (size_t v = 0; v + 1 < offsets.size(); ++v) {
    MCE_DCHECK_LE(offsets[v], offsets[v + 1]);
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      MCE_DCHECK_NE(adjacency[i], static_cast<NodeId>(v));
      if (i > offsets[v]) MCE_DCHECK_LT(adjacency[i - 1], adjacency[i]);
    }
  }
#endif
  return Graph(std::move(offsets), std::move(adjacency));
}

Graph Graph::FromStorage(std::shared_ptr<const GraphStorage> storage) {
  MCE_CHECK(storage != nullptr);
  MCE_CHECK(!storage->offsets().empty());
  MCE_CHECK_EQ(storage->offsets().front(), 0u);
  MCE_CHECK_EQ(storage->offsets().back(), storage->adjacency().size());
  return Graph(std::move(storage));
}

bool Graph::operator==(const Graph& other) const {
  return std::equal(offsets_.begin(), offsets_.end(), other.offsets_.begin(),
                    other.offsets_.end()) &&
         std::equal(adjacency_.begin(), adjacency_.end(),
                    other.adjacency_.begin(), other.adjacency_.end());
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  MCE_DCHECK_LT(u, num_nodes());
  MCE_DCHECK_LT(v, num_nodes());
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

uint32_t Graph::MaxDegree() const {
  uint32_t best = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) best = std::max(best, Degree(v));
  return best;
}

double Graph::Density() const {
  const uint64_t n = num_nodes();
  if (n < 2) return 0.0;
  return (2.0 * static_cast<double>(num_edges())) /
         (static_cast<double>(n) * static_cast<double>(n - 1));
}

}  // namespace mce
