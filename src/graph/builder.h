// Mutable edge accumulator that produces an immutable CSR Graph.

#ifndef MCE_GRAPH_BUILDER_H_
#define MCE_GRAPH_BUILDER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace mce {

/// Collects edges (self-loops and duplicates are tolerated and removed at
/// Build time) and finalizes them into a Graph. The node count grows to
/// cover the largest endpoint seen, and can be raised explicitly to include
/// isolated nodes.
class GraphBuilder {
 public:
  GraphBuilder() = default;
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  /// Ensures the graph has at least `n` nodes (ids [0, n) all exist).
  void ReserveNodes(NodeId n) {
    if (n > num_nodes_) num_nodes_ = n;
  }

  void ReserveEdges(size_t m) { edges_.reserve(m); }

  /// Records an undirected edge {u, v}. Self-loops are dropped silently
  /// (cliques are defined on simple graphs); duplicates are deduplicated
  /// at Build time.
  void AddEdge(NodeId u, NodeId v);

  /// True if {u, v} was added before. O(edges) — intended for generators
  /// that need occasional membership tests on small graphs; use Graph
  /// after Build for fast queries.
  bool HasEdgeSlow(NodeId u, NodeId v) const;

  NodeId num_nodes() const { return num_nodes_; }
  size_t num_recorded_edges() const { return edges_.size(); }

  /// Sorts, deduplicates, and builds the CSR graph. The builder is left
  /// empty and reusable.
  Graph Build();

 private:
  NodeId num_nodes_ = 0;
  std::vector<std::pair<NodeId, NodeId>> edges_;  // normalized: first < second
};

}  // namespace mce

#endif  // MCE_GRAPH_BUILDER_H_
