#include "graph/ordered_adjacency.h"

namespace mce {

OrderedAdjacency::OrderedAdjacency(const Graph& g)
    : cores_(ComputeCoreDecomposition(g)) {
  const NodeId n = g.num_nodes();
  later_offset_.assign(n + 1, 0);
  split_.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    later_offset_[v + 1] = later_offset_[v] + g.Degree(v);
  }
  adjacency_.resize(later_offset_.back());
  for (NodeId v = 0; v < n; ++v) {
    uint64_t later = later_offset_[v];
    uint64_t earlier = later_offset_[v + 1];
    // Two passes keep each half sorted by id (Neighbors(v) is sorted).
    for (NodeId u : g.Neighbors(v)) {
      if (cores_.position[u] > cores_.position[v]) {
        adjacency_[later++] = u;
      }
    }
    split_[v] = later;
    uint64_t cursor = later;
    for (NodeId u : g.Neighbors(v)) {
      if (cores_.position[u] < cores_.position[v]) {
        adjacency_[cursor++] = u;
      }
    }
    MCE_CHECK_EQ(cursor, earlier);
  }
}

}  // namespace mce
