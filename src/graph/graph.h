// Immutable undirected simple graph in CSR (compressed sparse row) layout.
//
// This is the canonical graph type of the library: generators produce it,
// the decomposition consumes it, and the MCE storage backends (matrix,
// bitset, adjacency list) are derived views of it. Neighbor lists are sorted
// and duplicate-free, there are no self-loops, and each undirected edge is
// stored in both endpoints' lists.
//
// The CSR arrays live behind a shared GraphStorage (graph/storage.h): heap
// vectors for built graphs, or a read-only mmap of an MCECSR02 file for
// out-of-core runs. Graph caches the two spans so the hot accessors never
// pay a virtual call; copies share the storage, and a moved-from Graph is
// reset to the shared empty storage so its spans stay valid.

#ifndef MCE_GRAPH_GRAPH_H_
#define MCE_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "graph/storage.h"
#include "graph/types.h"
#include "util/check.h"

namespace mce {

class GraphBuilder;

/// Immutable CSR graph. Construct through GraphBuilder, FromSortedCsr, or
/// FromStorage.
class Graph {
 public:
  /// An empty graph with zero nodes (shares a static empty storage).
  Graph() : Graph(EmptyGraphStorage()) {}

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;

  Graph(Graph&& other) noexcept
      : storage_(std::move(other.storage_)),
        offsets_(other.offsets_),
        adjacency_(other.adjacency_) {
    other.ResetToEmpty();
  }
  Graph& operator=(Graph&& other) noexcept {
    if (this != &other) {
      storage_ = std::move(other.storage_);
      offsets_ = other.offsets_;
      adjacency_ = other.adjacency_;
      other.ResetToEmpty();
    }
    return *this;
  }

  NodeId num_nodes() const {
    return static_cast<NodeId>(offsets_.size() - 1);
  }

  /// Number of undirected edges (each edge counted once).
  uint64_t num_edges() const { return adjacency_.size() / 2; }

  uint32_t Degree(NodeId v) const {
    MCE_DCHECK_LT(v, num_nodes());
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted, duplicate-free neighbor list of `v`.
  std::span<const NodeId> Neighbors(NodeId v) const {
    MCE_DCHECK_LT(v, num_nodes());
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// Edge test by binary search over the smaller endpoint's list: O(log d).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Adopts an already-valid CSR directly, skipping GraphBuilder's
  /// sort/dedup pass — for producers that hold the final layout anyway
  /// (e.g. the reduction prepass compacting its surviving vertices, or
  /// Induce building rows in parent-list order). `offsets` has n+1 entries
  /// starting at 0 and ending at adjacency.size(); every row must be
  /// sorted, duplicate-free, self-loop-free, and symmetric. Validated with
  /// MCE_DCHECK only.
  static Graph FromSortedCsr(std::vector<uint64_t> offsets,
                             std::vector<NodeId> adjacency);

  /// Wraps an externally owned storage (e.g. an MmapCsrStorage from
  /// OpenMmapGraph). Checks the O(1) invariants (non-null, offsets front 0
  /// and back == adjacency size); per-row validity is the producer's
  /// contract.
  static Graph FromStorage(std::shared_ptr<const GraphStorage> storage);

  /// The backing store (shared with copies of this Graph).
  const GraphStorage& storage() const { return *storage_; }

  /// Heap bytes pinned by the backing store — 0 for mmap-backed graphs.
  uint64_t ResidentBytes() const { return storage_->ResidentBytes(); }

  /// Maximum degree over all nodes (0 for the empty graph). O(n).
  uint32_t MaxDegree() const;

  /// Graph density: 2m / (n (n - 1)); 0 when n < 2.
  double Density() const;

  /// Structural equality: same CSR contents regardless of backing kind (a
  /// heap graph and its mmap image compare equal).
  bool operator==(const Graph& other) const;

 private:
  friend class GraphBuilder;

  explicit Graph(std::shared_ptr<const GraphStorage> storage)
      : storage_(std::move(storage)),
        offsets_(storage_->offsets()),
        adjacency_(storage_->adjacency()) {}

  Graph(std::vector<uint64_t> offsets, std::vector<NodeId> adjacency)
      : Graph(std::make_shared<const OwnedCsrStorage>(std::move(offsets),
                                                      std::move(adjacency))) {}

  void ResetToEmpty() {
    storage_ = EmptyGraphStorage();
    offsets_ = storage_->offsets();
    adjacency_ = storage_->adjacency();
  }

  std::shared_ptr<const GraphStorage> storage_;
  std::span<const uint64_t> offsets_;   // cached storage_->offsets()
  std::span<const NodeId> adjacency_;   // cached storage_->adjacency()
};

}  // namespace mce

#endif  // MCE_GRAPH_GRAPH_H_
