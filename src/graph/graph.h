// Immutable undirected simple graph in CSR (compressed sparse row) layout.
//
// This is the canonical graph type of the library: generators produce it,
// the decomposition consumes it, and the MCE storage backends (matrix,
// bitset, adjacency list) are derived views of it. Neighbor lists are sorted
// and duplicate-free, there are no self-loops, and each undirected edge is
// stored in both endpoints' lists.

#ifndef MCE_GRAPH_GRAPH_H_
#define MCE_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"

namespace mce {

using NodeId = uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

class GraphBuilder;

/// Immutable CSR graph. Construct through GraphBuilder.
class Graph {
 public:
  /// An empty graph with zero nodes.
  Graph() : offsets_(1, 0) {}

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  NodeId num_nodes() const {
    return static_cast<NodeId>(offsets_.size() - 1);
  }

  /// Number of undirected edges (each edge counted once).
  uint64_t num_edges() const { return adjacency_.size() / 2; }

  uint32_t Degree(NodeId v) const {
    MCE_DCHECK_LT(v, num_nodes());
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted, duplicate-free neighbor list of `v`.
  std::span<const NodeId> Neighbors(NodeId v) const {
    MCE_DCHECK_LT(v, num_nodes());
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// Edge test by binary search over the smaller endpoint's list: O(log d).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Adopts an already-valid CSR directly, skipping GraphBuilder's
  /// sort/dedup pass — for producers that hold the final layout anyway
  /// (e.g. the reduction prepass compacting its surviving vertices).
  /// `offsets` has n+1 entries starting at 0 and ending at
  /// adjacency.size(); every row must be sorted, duplicate-free,
  /// self-loop-free, and symmetric. Validated with MCE_DCHECK only.
  static Graph FromSortedCsr(std::vector<uint64_t> offsets,
                             std::vector<NodeId> adjacency);

  /// Maximum degree over all nodes (0 for the empty graph). O(n).
  uint32_t MaxDegree() const;

  /// Graph density: 2m / (n (n - 1)); 0 when n < 2.
  double Density() const;

  bool operator==(const Graph& other) const {
    return offsets_ == other.offsets_ && adjacency_ == other.adjacency_;
  }

 private:
  friend class GraphBuilder;

  Graph(std::vector<uint64_t> offsets, std::vector<NodeId> adjacency)
      : offsets_(std::move(offsets)), adjacency_(std::move(adjacency)) {}

  std::vector<uint64_t> offsets_;   // size n+1
  std::vector<NodeId> adjacency_;   // size 2m, sorted within each row
};

}  // namespace mce

#endif  // MCE_GRAPH_GRAPH_H_
