// Induced subgraphs with id mappings back to the parent graph.
//
// Both decomposition levels rely on induction: the first level recurses on
// the subgraph induced by the hub nodes (procedure `induced` of Algorithm 1),
// and the second level materializes each block as the subgraph induced by
// its kernel/border/visited nodes. Cliques found in the subgraph must be
// reported in the parent's id space, hence the to_parent mapping.

#ifndef MCE_GRAPH_SUBGRAPH_H_
#define MCE_GRAPH_SUBGRAPH_H_

#include <span>
#include <vector>

#include "graph/graph.h"

namespace mce {

/// A subgraph plus the mapping from its compact ids to the parent's ids.
struct InducedSubgraph {
  Graph graph;
  /// to_parent[i] is the parent id of subgraph node i; strictly increasing.
  std::vector<NodeId> to_parent;
};

/// Builds the subgraph of `g` induced by `nodes`.
///
/// `nodes` may be in any order and contain duplicates; the result's node i
/// corresponds to the i-th smallest distinct input id. Runs in
/// O(sum of degrees of `nodes`) after an O(n)-ish id-translation setup.
InducedSubgraph Induce(const Graph& g, std::span<const NodeId> nodes);

/// Translates a clique (or any node list) from subgraph ids to parent ids.
std::vector<NodeId> ToParentIds(const InducedSubgraph& sub,
                                std::span<const NodeId> nodes);

}  // namespace mce

#endif  // MCE_GRAPH_SUBGRAPH_H_
