// Graph serialization.
//
// Section 6.2 of the paper distributes each dataset as files of records
// <n1, e, n2> — two node labels and an edge label — and hash-encodes the
// labels for speed. ReadTriples reproduces that pipeline: labels are
// interned into dense ids (the "hash encoding") and the label table is kept
// for reporting cliques in the original vocabulary. Plain numeric edge
// lists (the SNAP format) and a compact binary format are also supported.

#ifndef MCE_GRAPH_IO_H_
#define MCE_GRAPH_IO_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace mce {

/// A graph whose nodes carry external string labels.
struct LabeledGraph {
  Graph graph;
  /// labels[v] is the external label of node v.
  std::vector<std::string> labels;
  /// Distinct edge labels seen in the input (informational; the clique
  /// problem ignores them).
  std::vector<std::string> edge_labels;
};

/// Interns string labels into dense node ids, first-seen order.
class LabelInterner {
 public:
  /// Returns the id of `label`, assigning the next free id when new.
  NodeId Intern(const std::string& label);

  /// Returns the id of `label` or kInvalidNode when unknown.
  NodeId Lookup(const std::string& label) const;

  size_t size() const { return labels_.size(); }
  const std::vector<std::string>& labels() const { return labels_; }

 private:
  std::unordered_map<std::string, NodeId> index_;
  std::vector<std::string> labels_;
};

/// Reads a whitespace-separated numeric edge list ("u v" per line).
/// Lines starting with '#' or '%' are comments. Node ids are used as given
/// (the graph covers [0, max id]).
Result<Graph> ReadEdgeList(const std::string& path);

/// Writes "u v" lines, one per undirected edge.
Status WriteEdgeList(const Graph& g, const std::string& path);

/// Reads <n1, e, n2> triples: three whitespace-separated tokens per line,
/// node and edge labels as arbitrary strings (Section 6.2 format).
Result<LabeledGraph> ReadTriples(const std::string& path);

/// Writes triples using the given labels; the edge label is "e" when the
/// labeled graph carries none.
Status WriteTriples(const LabeledGraph& g, const std::string& path);

/// Compact binary format: header (magic, node count, edge count) followed
/// by the edge pairs. Fast path for benchmark reruns on large graphs.
Status WriteBinary(const Graph& g, const std::string& path);
Result<Graph> ReadBinary(const std::string& path);

/// MCECSR02 binary CSR format (layout in graph/storage.h): the graph's two
/// CSR arrays verbatim behind a 32-byte header, 64-bit offsets throughout.
/// Written by tools/mce_convert; the mmap read path below serves graphs
/// larger than RAM without heap-materializing the CSR.
Status WriteCsrBinary(const Graph& g, const std::string& path);

/// Reads an MCECSR02 file into an owned (heap) graph. Revalidates per-row
/// invariants in debug builds via Graph::FromSortedCsr.
Result<Graph> ReadCsrBinary(const std::string& path);

/// Opens an MCECSR02 file as a zero-copy mmap-backed graph. The returned
/// graph's ResidentBytes() is 0 — its pages are clean and reclaimable —
/// and copies of it share the single mapping.
Result<Graph> OpenMmapGraph(const std::string& path);

/// Graphviz DOT export for small graphs / community inspection. Nodes
/// whose ids appear in `highlight` are filled; `labels` (optional, may be
/// empty) names the nodes.
Status WriteDot(const Graph& g, const std::string& path,
                const std::vector<std::string>& labels = {},
                const std::vector<NodeId>& highlight = {});

}  // namespace mce

#endif  // MCE_GRAPH_IO_H_
