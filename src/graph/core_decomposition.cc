#include "graph/core_decomposition.h"

#include <algorithm>

namespace mce {

CoreDecomposition ComputeCoreDecomposition(const Graph& g) {
  const NodeId n = g.num_nodes();
  CoreDecomposition out;
  out.core.assign(n, 0);
  out.order.resize(n);
  out.position.assign(n, 0);
  if (n == 0) return out;

  // Bucket sort nodes by degree (Batagelj–Zaversnik).
  const uint32_t max_degree = g.MaxDegree();
  std::vector<uint32_t> degree(n);
  std::vector<uint32_t> bucket_start(max_degree + 2, 0);
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = g.Degree(v);
    ++bucket_start[degree[v] + 1];
  }
  for (uint32_t d = 0; d <= max_degree; ++d) {
    bucket_start[d + 1] += bucket_start[d];
  }
  // vert[i] lists nodes sorted by current degree; pos[v] is v's slot.
  std::vector<NodeId>& vert = out.order;
  std::vector<uint32_t>& pos = out.position;
  {
    std::vector<uint32_t> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      pos[v] = cursor[degree[v]]++;
      vert[pos[v]] = v;
    }
  }
  // bin[d] = index of the first node with current degree d.
  std::vector<uint32_t> bin(bucket_start.begin(), bucket_start.end() - 1);

  uint32_t degeneracy = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const NodeId v = vert[i];
    degeneracy = std::max(degeneracy, degree[v]);
    out.core[v] = degeneracy;
    for (NodeId u : g.Neighbors(v)) {
      if (degree[u] <= degree[v]) continue;
      // Move u into the next-lower bucket: swap it with the first node of
      // its current bucket, then shrink the bucket from the left.
      const uint32_t du = degree[u];
      const uint32_t pu = pos[u];
      const uint32_t pw = bin[du];
      const NodeId w = vert[pw];
      if (u != w) {
        pos[u] = pw;
        vert[pw] = u;
        pos[w] = pu;
        vert[pu] = w;
      }
      ++bin[du];
      --degree[u];
    }
  }
  out.degeneracy = degeneracy;
  return out;
}

uint32_t Degeneracy(const Graph& g) {
  return ComputeCoreDecomposition(g).degeneracy;
}

std::vector<NodeId> KCoreNodes(const Graph& g, uint32_t k) {
  CoreDecomposition d = ComputeCoreDecomposition(g);
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (d.core[v] >= k) nodes.push_back(v);
  }
  return nodes;
}

uint32_t DStar(const Graph& g) {
  const NodeId n = g.num_nodes();
  if (n == 0) return 0;
  // counts[d] = number of nodes with degree exactly d (degree capped at n).
  std::vector<uint32_t> counts(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    ++counts[std::min<uint32_t>(g.Degree(v), n)];
  }
  // Walk d downward, accumulating |{v : deg(v) >= d}| until it reaches d.
  uint64_t at_least = 0;
  for (uint32_t d = n; d > 0; --d) {
    at_least += counts[d];
    if (at_least >= d) return d;
  }
  return 0;
}

}  // namespace mce
