#include "graph/io.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "graph/builder.h"

namespace mce {

namespace {

constexpr uint64_t kBinaryMagic = 0x4d43454752463031ULL;  // "MCEGRF01"

bool IsCommentOrBlank(const std::string& line) {
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') continue;
    return c == '#' || c == '%';
  }
  return true;  // blank
}

/// True when `ss` still holds a non-whitespace token after the expected
/// fields were extracted — a malformed line that must be rejected rather
/// than silently truncated (e.g. "0 1.5" parses ids 0 and 1, leaving ".5").
bool HasTrailingGarbage(std::istringstream& ss) {
  std::string rest;
  return static_cast<bool>(ss >> rest);
}

}  // namespace

NodeId LabelInterner::Intern(const std::string& label) {
  auto [it, inserted] =
      index_.emplace(label, static_cast<NodeId>(labels_.size()));
  if (inserted) labels_.push_back(label);
  return it->second;
}

NodeId LabelInterner::Lookup(const std::string& label) const {
  auto it = index_.find(label);
  return it == index_.end() ? kInvalidNode : it->second;
}

Result<Graph> ReadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  GraphBuilder builder;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream ss(line);
    uint64_t u = 0, v = 0;
    if (!(ss >> u >> v)) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": expected 'u v'");
    }
    if (HasTrailingGarbage(ss)) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": trailing tokens after 'u v'");
    }
    if (u > kInvalidNode - 1 || v > kInvalidNode - 1) {
      return Status::OutOfRange(path + ":" + std::to_string(line_no) +
                                ": node id exceeds 32-bit range");
    }
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  if (in.bad()) return Status::IoError("read error on " + path);
  return builder.Build();
}

Status WriteEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
  out.flush();
  if (!out) return Status::IoError("write error on " + path);
  return Status::OK();
}

Result<LabeledGraph> ReadTriples(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  LabelInterner nodes;
  std::unordered_set<std::string> edge_label_set;
  std::vector<std::string> edge_labels;
  GraphBuilder builder;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream ss(line);
    std::string n1, e, n2;
    if (!(ss >> n1 >> e >> n2)) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": expected '<n1> <e> <n2>'");
    }
    if (HasTrailingGarbage(ss)) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": trailing tokens after '<n1> <e> <n2>'");
    }
    // Intern in textual order (argument evaluation order is unspecified).
    const NodeId id1 = nodes.Intern(n1);
    const NodeId id2 = nodes.Intern(n2);
    builder.AddEdge(id1, id2);
    if (edge_label_set.insert(e).second) edge_labels.push_back(e);
  }
  if (in.bad()) return Status::IoError("read error on " + path);
  // Interning may have seen isolated... every label came from an edge, but a
  // self-loop line still interns its label; make the graph cover all of them.
  builder.ReserveNodes(static_cast<NodeId>(nodes.size()));
  LabeledGraph out;
  out.graph = builder.Build();
  out.labels = nodes.labels();
  out.edge_labels = std::move(edge_labels);
  return out;
}

Status WriteTriples(const LabeledGraph& g, const std::string& path) {
  if (g.labels.size() != g.graph.num_nodes()) {
    return Status::InvalidArgument("label table size != node count");
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const std::string edge_label =
      g.edge_labels.empty() ? std::string("e") : g.edge_labels.front();
  for (NodeId u = 0; u < g.graph.num_nodes(); ++u) {
    for (NodeId v : g.graph.Neighbors(u)) {
      if (u < v) {
        out << g.labels[u] << ' ' << edge_label << ' ' << g.labels[v] << '\n';
      }
    }
  }
  out.flush();
  if (!out) return Status::IoError("write error on " + path);
  return Status::OK();
}

Status WriteDot(const Graph& g, const std::string& path,
                const std::vector<std::string>& labels,
                const std::vector<NodeId>& highlight) {
  if (!labels.empty() && labels.size() != g.num_nodes()) {
    return Status::InvalidArgument("label table size != node count");
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  std::vector<uint8_t> is_highlighted(g.num_nodes(), 0);
  for (NodeId v : highlight) {
    if (v >= g.num_nodes()) {
      return Status::OutOfRange("highlight node out of range");
    }
    is_highlighted[v] = 1;
  }
  out << "graph mce {\n  node [shape=circle];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out << "  n" << v;
    out << " [";
    if (!labels.empty()) out << "label=\"" << labels[v] << "\"";
    if (is_highlighted[v]) {
      if (!labels.empty()) out << ", ";
      out << "style=filled, fillcolor=lightblue";
    }
    out << "];\n";
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (u < v) out << "  n" << u << " -- n" << v << ";\n";
    }
  }
  out << "}\n";
  out.flush();
  if (!out) return Status::IoError("write error on " + path);
  return Status::OK();
}

Status WriteBinary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const uint64_t n = g.num_nodes();
  const uint64_t m = g.num_edges();
  out.write(reinterpret_cast<const char*>(&kBinaryMagic), sizeof(uint64_t));
  out.write(reinterpret_cast<const char*>(&n), sizeof(uint64_t));
  out.write(reinterpret_cast<const char*>(&m), sizeof(uint64_t));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (u < v) {
        out.write(reinterpret_cast<const char*>(&u), sizeof(NodeId));
        out.write(reinterpret_cast<const char*>(&v), sizeof(NodeId));
      }
    }
  }
  out.flush();
  if (!out) return Status::IoError("write error on " + path);
  return Status::OK();
}

Result<Graph> ReadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  uint64_t magic = 0, n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(uint64_t));
  in.read(reinterpret_cast<char*>(&n), sizeof(uint64_t));
  in.read(reinterpret_cast<char*>(&m), sizeof(uint64_t));
  if (!in || magic != kBinaryMagic) {
    return Status::InvalidArgument(path + ": not an mce binary graph");
  }
  if (n > kInvalidNode) {
    return Status::OutOfRange(path + ": node count exceeds 32-bit range");
  }
  GraphBuilder builder(static_cast<NodeId>(n));
  builder.ReserveEdges(m);
  for (uint64_t i = 0; i < m; ++i) {
    NodeId u = 0, v = 0;
    in.read(reinterpret_cast<char*>(&u), sizeof(NodeId));
    in.read(reinterpret_cast<char*>(&v), sizeof(NodeId));
    if (!in) return Status::IoError(path + ": truncated edge section");
    if (u >= n || v >= n) {
      return Status::InvalidArgument(path + ": edge endpoint out of range");
    }
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

Status WriteCsrBinary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const uint64_t n = g.num_nodes();
  const uint64_t m = g.num_edges();
  const uint64_t reserved = 0;
  out.write(reinterpret_cast<const char*>(&kCsrBinaryMagic), sizeof(uint64_t));
  out.write(reinterpret_cast<const char*>(&n), sizeof(uint64_t));
  out.write(reinterpret_cast<const char*>(&m), sizeof(uint64_t));
  out.write(reinterpret_cast<const char*>(&reserved), sizeof(uint64_t));
  const std::span<const uint64_t> offsets = g.storage().offsets();
  const std::span<const NodeId> adjacency = g.storage().adjacency();
  out.write(reinterpret_cast<const char*>(offsets.data()),
            static_cast<std::streamsize>(offsets.size() * sizeof(uint64_t)));
  out.write(reinterpret_cast<const char*>(adjacency.data()),
            static_cast<std::streamsize>(adjacency.size() * sizeof(NodeId)));
  out.flush();
  if (!out) return Status::IoError("write error on " + path);
  return Status::OK();
}

Result<Graph> ReadCsrBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  uint64_t magic = 0, n = 0, m = 0, reserved = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(uint64_t));
  in.read(reinterpret_cast<char*>(&n), sizeof(uint64_t));
  in.read(reinterpret_cast<char*>(&m), sizeof(uint64_t));
  in.read(reinterpret_cast<char*>(&reserved), sizeof(uint64_t));
  if (!in || magic != kCsrBinaryMagic) {
    return Status::InvalidArgument(path + ": not an MCECSR02 graph file");
  }
  if (n > kInvalidNode) {
    return Status::OutOfRange(path + ": node count exceeds 32-bit range");
  }
  std::vector<uint64_t> offsets(n + 1);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(uint64_t)));
  if (!in) return Status::IoError(path + ": truncated offset section");
  if (offsets.front() != 0 || offsets.back() != 2 * m) {
    return Status::InvalidArgument(path + ": inconsistent CSR offsets");
  }
  for (uint64_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Status::InvalidArgument(path + ": non-monotone CSR offsets");
    }
  }
  std::vector<NodeId> adjacency(2 * m);
  in.read(reinterpret_cast<char*>(adjacency.data()),
          static_cast<std::streamsize>(adjacency.size() * sizeof(NodeId)));
  if (!in) return Status::IoError(path + ": truncated adjacency section");
  for (NodeId v : adjacency) {
    if (v >= n) {
      return Status::InvalidArgument(path + ": neighbor id out of range");
    }
  }
  return Graph::FromSortedCsr(std::move(offsets), std::move(adjacency));
}

Result<Graph> OpenMmapGraph(const std::string& path) {
  MCE_ASSIGN_OR_RETURN(std::shared_ptr<const GraphStorage> storage,
                       MmapCsrStorage::Open(path));
  return Graph::FromStorage(std::move(storage));
}

}  // namespace mce
