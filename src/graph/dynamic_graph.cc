#include "graph/dynamic_graph.h"

#include <algorithm>

#include "graph/builder.h"

namespace mce {

DynamicGraph::DynamicGraph(const Graph& g) : adjacency_(g.num_nodes()) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto nbrs = g.Neighbors(v);
    adjacency_[v].assign(nbrs.begin(), nbrs.end());
  }
  num_edges_ = g.num_edges();
}

NodeId DynamicGraph::AddNode() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

void DynamicGraph::EnsureNodes(NodeId n) {
  if (n > num_nodes()) adjacency_.resize(n);
}

bool DynamicGraph::AddEdge(NodeId u, NodeId v) {
  MCE_CHECK_LT(u, num_nodes());
  MCE_CHECK_LT(v, num_nodes());
  if (u == v) return false;
  auto& nu = adjacency_[u];
  auto it = std::lower_bound(nu.begin(), nu.end(), v);
  if (it != nu.end() && *it == v) return false;
  nu.insert(it, v);
  auto& nv = adjacency_[v];
  nv.insert(std::lower_bound(nv.begin(), nv.end(), u), u);
  ++num_edges_;
  return true;
}

bool DynamicGraph::RemoveEdge(NodeId u, NodeId v) {
  MCE_CHECK_LT(u, num_nodes());
  MCE_CHECK_LT(v, num_nodes());
  if (u == v) return false;
  auto& nu = adjacency_[u];
  auto it = std::lower_bound(nu.begin(), nu.end(), v);
  if (it == nu.end() || *it != v) return false;
  nu.erase(it);
  auto& nv = adjacency_[v];
  nv.erase(std::lower_bound(nv.begin(), nv.end(), u));
  --num_edges_;
  return true;
}

bool DynamicGraph::HasEdge(NodeId u, NodeId v) const {
  MCE_DCHECK_LT(u, num_nodes());
  MCE_DCHECK_LT(v, num_nodes());
  const auto& nu = adjacency_[u];
  const auto& nv = adjacency_[v];
  const auto& shorter = nu.size() <= nv.size() ? nu : nv;
  const NodeId target = nu.size() <= nv.size() ? v : u;
  return std::binary_search(shorter.begin(), shorter.end(), target);
}

std::vector<NodeId> DynamicGraph::CommonNeighbors(NodeId u, NodeId v) const {
  std::vector<NodeId> out;
  const auto& nu = adjacency_[u];
  const auto& nv = adjacency_[v];
  std::set_intersection(nu.begin(), nu.end(), nv.begin(), nv.end(),
                        std::back_inserter(out));
  return out;
}

Graph DynamicGraph::ToGraph() const {
  GraphBuilder builder(num_nodes());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : adjacency_[u]) {
      if (u < v) builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

}  // namespace mce
