#include "gen/social.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "gen/generators.h"
#include "gen/special.h"
#include "graph/builder.h"
#include "util/check.h"
#include "util/random.h"

namespace mce::gen {

namespace {

/// Adds `count` super-hub nodes: existing high-degree nodes each wired to a
/// uniform sample of `reach` * n nodes.
Graph BoostSuperHubs(const Graph& g, uint32_t count, double reach, Rng* rng) {
  const NodeId n = g.num_nodes();
  if (count == 0 || n == 0 || reach <= 0.0) return g;
  // Pick the current top-degree nodes as the celebrities.
  std::vector<NodeId> by_degree(n);
  for (NodeId v = 0; v < n; ++v) by_degree[v] = v;
  std::sort(by_degree.begin(), by_degree.end(), [&g](NodeId a, NodeId b) {
    return g.Degree(a) > g.Degree(b);
  });
  count = std::min<uint32_t>(count, n);
  const uint64_t followers =
      std::min<uint64_t>(n, static_cast<uint64_t>(std::ceil(reach * n)));

  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (u < v) builder.AddEdge(u, v);
    }
  }
  for (uint32_t h = 0; h < count; ++h) {
    const NodeId hub = by_degree[h];
    for (uint64_t i : rng->SampleWithoutReplacement(n, followers)) {
      if (static_cast<NodeId>(i) != hub) {
        builder.AddEdge(hub, static_cast<NodeId>(i));
      }
    }
  }
  return builder.Build();
}

/// Scales a planted-clique count with the dataset scale (at least 1) so
/// the planted structure stays a fixed *fraction* of the network at every
/// scale, instead of swamping small instances.
uint32_t Scaled(uint32_t base, double scale) {
  return std::max<uint32_t>(1, static_cast<uint32_t>(base * scale));
}

}  // namespace

namespace {

/// Plants `config.hub_cliques` cliques among high-degree nodes and boosts
/// every member's degree toward a per-clique fraction of the maximum
/// degree, so that a sweep of m/d reclassifies whole cliques as hub-only
/// at different thresholds (see SocialNetworkConfig::hub_boost_frac_*).
Graph PlantBoostedHubCliques(const Graph& g,
                             const SocialNetworkConfig& config, Rng* rng) {
  const NodeId n = g.num_nodes();
  const uint32_t count = config.hub_cliques;
  if (count == 0 || n == 0) return g;
  const uint32_t max_degree = g.MaxDegree();

  // Candidate pool: top-degree decile (at least enough for one clique).
  std::vector<NodeId> pool(n);
  for (NodeId v = 0; v < n; ++v) pool[v] = v;
  std::sort(pool.begin(), pool.end(), [&g](NodeId a, NodeId b) {
    return g.Degree(a) > g.Degree(b);
  });
  size_t keep = std::max<size_t>(n / 10, config.hub_clique_size_hi * 4);
  pool.resize(std::min<size_t>(keep, n));

  // Exact degree/edge tracking: the top hub clique must provably clear
  // 0.9 * (final max degree), so approximate accounting is not enough.
  std::vector<std::unordered_set<NodeId>> adjacency(n);
  std::vector<uint32_t> degree(n);
  for (NodeId v = 0; v < n; ++v) {
    auto nbrs = g.Neighbors(v);
    adjacency[v].insert(nbrs.begin(), nbrs.end());
    degree[v] = g.Degree(v);
  }
  auto add_edge = [&](NodeId u, NodeId v) {
    if (u == v) return false;
    if (!adjacency[u].insert(v).second) return false;
    adjacency[v].insert(u);
    ++degree[u];
    ++degree[v];
    return true;
  };

  for (uint32_t c = 0; c < count; ++c) {
    // Quadratic spread: most cliques near frac_lo, a few near frac_hi.
    // The last clique ("top" clique) targets the running maximum exactly
    // and without jitter, so it stays a hub clique even at m/d = 0.9.
    const bool top_clique = (c + 1 == count);
    const double t = count > 1 ? static_cast<double>(c) / (count - 1) : 1.0;
    const double frac = config.hub_boost_frac_lo +
                        (config.hub_boost_frac_hi -
                         config.hub_boost_frac_lo) * t * t;
    uint32_t size = static_cast<uint32_t>(rng->NextInt(
        config.hub_clique_size_lo, config.hub_clique_size_hi));
    // The top clique takes the maximum planted size: with few members a
    // very-high-degree clique has an order-one chance of being extendable
    // by some ordinary node (its members reach much of the graph), which
    // would reclassify it as feasible-side.
    if (top_clique) size = config.hub_clique_size_hi;
    size = std::min<uint32_t>(size, static_cast<uint32_t>(pool.size()));
    std::vector<NodeId> members;
    for (uint64_t i : rng->SampleWithoutReplacement(pool.size(), size)) {
      members.push_back(pool[i]);
    }
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        add_edge(members[i], members[j]);
      }
    }
    const uint32_t running_max =
        *std::max_element(degree.begin(), degree.end());
    for (NodeId v : members) {
      const double jitter =
          top_clique ? 1.0 : 0.95 + 0.1 * rng->NextDouble();
      const uint32_t target = static_cast<uint32_t>(
          std::min(1.0, frac * jitter) *
          std::max(running_max, max_degree));
      while (degree[v] < target) {
        NodeId w = static_cast<NodeId>(rng->NextBounded(n));
        add_edge(v, w);
      }
    }
    if (top_clique) {
      // Top-off pass: cross-boost spillover may have nudged the global
      // maximum; lift every member to it so the whole clique clears any
      // m/d threshold up to 1.0.
      const uint32_t final_max =
          *std::max_element(degree.begin(), degree.end());
      for (NodeId v : members) {
        while (degree[v] < final_max) {
          NodeId w = static_cast<NodeId>(rng->NextBounded(n));
          add_edge(v, w);
        }
      }
    }
  }

  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : adjacency[u]) {
      if (u < v) builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

}  // namespace

Graph GenerateSocialNetwork(const SocialNetworkConfig& config) {
  MCE_CHECK_GE(config.num_nodes, config.attach + 1);
  Rng rng(config.seed);
  Graph g = BarabasiAlbert(config.num_nodes, config.attach, &rng);
  g = BoostSuperHubs(g, config.super_hubs, config.super_hub_reach, &rng);
  g = OverlayRandomCliques(g, config.community_cliques,
                           config.community_size_lo, config.community_size_hi,
                           /*bias_high_degree=*/false, &rng);
  g = PlantBoostedHubCliques(g, config, &rng);
  return g;
}

// The five recipes keep Table 3's relative ordering: twitter1 smallest and
// sparsest; twitter2/3 progressively larger and denser; facebook with an
// extreme hub (its real max degree, 2.6M, is over half the network);
// google+ in between. Max planted clique sizes track Figures 9-10
// (27/31/33/21/18).

SocialNetworkConfig Twitter1Config(double scale) {
  SocialNetworkConfig c;
  c.name = "twitter1";
  c.num_nodes = static_cast<NodeId>(12000 * scale);
  c.attach = 4;
  c.super_hubs = 2;
  c.super_hub_reach = 0.04;
  c.community_cliques = Scaled(150, scale);
  c.community_size_lo = 4;
  c.community_size_hi = 27;
  c.hub_cliques = Scaled(50, scale);
  c.hub_clique_size_lo = 8;
  c.hub_clique_size_hi = 24;
  c.seed = 101;
  return c;
}

SocialNetworkConfig Twitter2Config(double scale) {
  SocialNetworkConfig c;
  c.name = "twitter2";
  c.num_nodes = static_cast<NodeId>(20000 * scale);
  c.attach = 8;
  c.super_hubs = 3;
  c.super_hub_reach = 0.06;
  c.community_cliques = Scaled(220, scale);
  c.community_size_lo = 4;
  c.community_size_hi = 31;
  c.hub_cliques = Scaled(70, scale);
  c.hub_clique_size_lo = 8;
  c.hub_clique_size_hi = 28;
  c.seed = 102;
  return c;
}

SocialNetworkConfig Twitter3Config(double scale) {
  SocialNetworkConfig c;
  c.name = "twitter3";
  c.num_nodes = static_cast<NodeId>(30000 * scale);
  c.attach = 10;
  c.super_hubs = 4;
  c.super_hub_reach = 0.07;
  c.community_cliques = Scaled(300, scale);
  c.community_size_lo = 4;
  c.community_size_hi = 33;
  c.hub_cliques = Scaled(90, scale);
  c.hub_clique_size_lo = 10;
  c.hub_clique_size_hi = 30;
  c.seed = 103;
  return c;
}

SocialNetworkConfig FacebookConfig(double scale) {
  SocialNetworkConfig c;
  c.name = "facebook";
  c.num_nodes = static_cast<NodeId>(16000 * scale);
  c.attach = 8;
  // Table 3: facebook's max degree (2.62M) exceeds half its 4.6M nodes.
  c.super_hubs = 2;
  c.super_hub_reach = 0.3;
  c.community_cliques = Scaled(200, scale);
  c.community_size_lo = 4;
  c.community_size_hi = 21;
  c.hub_cliques = Scaled(60, scale);
  c.hub_clique_size_lo = 6;
  c.hub_clique_size_hi = 19;
  c.seed = 104;
  return c;
}

SocialNetworkConfig GooglePlusConfig(double scale) {
  SocialNetworkConfig c;
  c.name = "google+";
  c.num_nodes = static_cast<NodeId>(18000 * scale);
  c.attach = 6;
  c.super_hubs = 3;
  c.super_hub_reach = 0.12;
  c.community_cliques = Scaled(180, scale);
  c.community_size_lo = 4;
  c.community_size_hi = 18;
  c.hub_cliques = Scaled(55, scale);
  c.hub_clique_size_lo = 6;
  c.hub_clique_size_hi = 16;
  c.seed = 105;
  return c;
}

std::vector<SocialNetworkConfig> AllDatasetConfigs(double scale) {
  return {Twitter1Config(scale), Twitter2Config(scale), Twitter3Config(scale),
          FacebookConfig(scale), GooglePlusConfig(scale)};
}

}  // namespace mce::gen
