#include "gen/generators.h"

#include <cmath>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/builder.h"
#include "util/check.h"

namespace mce::gen {

namespace {

// Packs an edge into a single 64-bit key for dedup sets.
inline uint64_t EdgeKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

Graph ErdosRenyiGnp(NodeId n, double p, Rng* rng) {
  MCE_CHECK(p >= 0.0 && p <= 1.0);
  GraphBuilder builder(n);
  if (n < 2 || p == 0.0) return builder.Build();
  if (p >= 1.0) {
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) builder.AddEdge(u, v);
    }
    return builder.Build();
  }
  // Walk the linearized strict upper triangle with geometric jumps: the gap
  // to the next present edge is Geometric(p).
  const double log_q = std::log1p(-p);
  uint64_t total = static_cast<uint64_t>(n) * (n - 1) / 2;
  uint64_t idx = 0;
  for (;;) {
    double r = rng->NextDouble();
    // Skip length in [1, inf): floor(log(1-r)/log(1-p)) + 1.
    uint64_t skip =
        static_cast<uint64_t>(std::floor(std::log1p(-r) / log_q)) + 1;
    if (skip > total - idx) break;
    idx += skip;
    // Translate linear index (1-based within the triangle) to (u, v).
    uint64_t e = idx - 1;
    // Row u contains (n - 1 - u) cells; find u by walking rows. To stay
    // O(1), invert the triangular index analytically.
    double nn = static_cast<double>(n);
    double disc = (2.0 * nn - 1.0) * (2.0 * nn - 1.0) -
                  8.0 * static_cast<double>(e);
    NodeId u = static_cast<NodeId>(
        std::floor(((2.0 * nn - 1.0) - std::sqrt(disc)) / 2.0));
    // Guard against floating point rounding at row boundaries.
    auto row_start = [n](NodeId row) {
      return static_cast<uint64_t>(row) * n - static_cast<uint64_t>(row) * (row + 1) / 2;
    };
    while (u > 0 && row_start(u) > e) --u;
    while (row_start(u + 1) <= e) ++u;
    NodeId v = static_cast<NodeId>(u + 1 + (e - row_start(u)));
    builder.AddEdge(u, v);
    if (idx == total) break;
  }
  return builder.Build();
}

Graph ErdosRenyiGnm(NodeId n, uint64_t m, Rng* rng) {
  uint64_t total = n < 2 ? 0 : static_cast<uint64_t>(n) * (n - 1) / 2;
  MCE_CHECK_LE(m, total);
  GraphBuilder builder(n);
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(m * 2);
  while (chosen.size() < m) {
    NodeId u = static_cast<NodeId>(rng->NextBounded(n));
    NodeId v = static_cast<NodeId>(rng->NextBounded(n));
    if (u == v) continue;
    if (chosen.insert(EdgeKey(u, v)).second) builder.AddEdge(u, v);
  }
  return builder.Build();
}

Graph BarabasiAlbert(NodeId n, uint32_t attach, Rng* rng) {
  MCE_CHECK_GE(attach, 1u);
  MCE_CHECK_LT(attach, n);
  GraphBuilder builder(n);
  // Seed: a clique on the first attach+1 nodes, so every early node has
  // degree >= attach and the repeated-endpoints list is never empty.
  const NodeId seed_size = attach + 1;
  std::vector<NodeId> endpoints;  // each node appears deg(v) times
  endpoints.reserve(2 * static_cast<size_t>(attach) * n);
  for (NodeId u = 0; u < seed_size; ++u) {
    for (NodeId v = u + 1; v < seed_size; ++v) {
      builder.AddEdge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::unordered_set<uint64_t> edge_set;
  std::vector<NodeId> targets;
  for (NodeId v = seed_size; v < n; ++v) {
    targets.clear();
    edge_set.clear();
    // Sample `attach` distinct targets proportionally to degree by drawing
    // from the endpoints multiset.
    while (targets.size() < attach) {
      NodeId t = endpoints[rng->NextBounded(endpoints.size())];
      if (edge_set.insert(EdgeKey(v, t)).second) targets.push_back(t);
    }
    for (NodeId t : targets) {
      builder.AddEdge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return builder.Build();
}

Graph PowerLawConfigurationModel(NodeId n, double gamma, uint32_t min_degree,
                                 uint32_t max_degree, Rng* rng) {
  MCE_CHECK(gamma > 1.0);
  MCE_CHECK_GE(min_degree, 1u);
  MCE_CHECK_LE(min_degree, max_degree);
  MCE_CHECK_LT(max_degree, n);
  GraphBuilder builder(n);
  if (n < 2) return builder.Build();

  // Draw degrees by inverse-transform sampling of the bounded Pareto
  // distribution P(d) ~ d^-gamma on [min_degree, max_degree].
  const double a = std::pow(static_cast<double>(min_degree), 1.0 - gamma);
  const double b = std::pow(static_cast<double>(max_degree) + 1.0,
                            1.0 - gamma);
  std::vector<NodeId> stubs;
  for (NodeId v = 0; v < n; ++v) {
    const double u = rng->NextDouble();
    const double d =
        std::pow(a + u * (b - a), 1.0 / (1.0 - gamma));
    uint32_t degree = static_cast<uint32_t>(d);
    degree = std::max(min_degree, std::min(max_degree, degree));
    for (uint32_t i = 0; i < degree; ++i) stubs.push_back(v);
  }
  // Even stub count: drop one stub if odd.
  if (stubs.size() % 2 == 1) stubs.pop_back();
  rng->Shuffle(&stubs);
  // Pair consecutive stubs; the builder drops self-loops and duplicates.
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    builder.AddEdge(stubs[i], stubs[i + 1]);
  }
  return builder.Build();
}

Graph WattsStrogatz(NodeId n, uint32_t k, double beta, Rng* rng) {
  MCE_CHECK_LT(k, n);
  MCE_CHECK(beta >= 0.0 && beta <= 1.0);
  GraphBuilder builder(n);
  if (n == 0 || k == 0) return builder.Build();
  const uint32_t half = k / 2;
  std::unordered_set<uint64_t> edge_set;
  // Ring lattice: node i connects to i+1 .. i+half (mod n).
  std::vector<std::pair<NodeId, NodeId>> lattice;
  for (NodeId i = 0; i < n; ++i) {
    for (uint32_t j = 1; j <= half; ++j) {
      NodeId t = static_cast<NodeId>((i + j) % n);
      if (edge_set.insert(EdgeKey(i, t)).second) lattice.emplace_back(i, t);
    }
  }
  // Rewire: with probability beta, replace {i, t} by {i, random}.
  for (auto& [u, v] : lattice) {
    if (!rng->NextBool(beta)) continue;
    // Try a few times to find a fresh endpoint; on failure keep the edge.
    for (int attempt = 0; attempt < 16; ++attempt) {
      NodeId w = static_cast<NodeId>(rng->NextBounded(n));
      if (w == u || w == v) continue;
      if (edge_set.count(EdgeKey(u, w))) continue;
      edge_set.erase(EdgeKey(u, v));
      edge_set.insert(EdgeKey(u, w));
      v = w;
      break;
    }
  }
  for (const auto& [u, v] : lattice) builder.AddEdge(u, v);
  return builder.Build();
}

}  // namespace mce::gen
