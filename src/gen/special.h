// Structured graph families used by the theory and the tests.

#ifndef MCE_GEN_SPECIAL_H_
#define MCE_GEN_SPECIAL_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/random.h"

namespace mce::gen {

/// K_n, the complete graph on n nodes (one maximal clique).
Graph Complete(NodeId n);

/// Complete multipartite graph with `parts` parts of 3 nodes each: the
/// Moon-Moser family, which has 3^parts maximal cliques — the worst case
/// for MCE output size. Keep `parts` small.
Graph MoonMoser(uint32_t parts);

/// The H_n family from the proof of Theorem 1, Statement 2: degeneracy
/// < m + 1 yet the first-level decomposition needs Omega(n) recursive
/// rounds. Construction: nodes v_1..v_n; v_j for j <= m+1 connects to all
/// previous nodes (so H_{m+1} is complete); v_j for j > m+1 connects to the
/// m previous nodes of lowest current degree (which are the most recent
/// ones). Requires n >= 1, m >= 1.
Graph HnWorstCase(NodeId n, uint32_t m);

/// Returns a copy of `g` with a clique planted on each node set in
/// `members` (missing edges added).
Graph OverlayCliques(const Graph& g,
                     const std::vector<std::vector<NodeId>>& members);

/// Samples `count` node subsets with sizes uniform in [size_lo, size_hi]
/// from the id range [0, g.num_nodes()) and plants cliques on them.
/// When `bias_high_degree` is true, members are drawn from the highest-
/// degree tenth of the nodes (used to create hub-only cliques in the
/// social stand-ins). Returns the augmented graph.
Graph OverlayRandomCliques(const Graph& g, uint32_t count, uint32_t size_lo,
                           uint32_t size_hi, bool bias_high_degree, Rng* rng);

}  // namespace mce::gen

#endif  // MCE_GEN_SPECIAL_H_
