// Synthetic stand-ins for the paper's evaluation datasets.
//
// The paper evaluates on SNAP/KONECT snapshots of Twitter (three sizes),
// Facebook, and Google+ — up to 17M nodes / 477M edges (Table 3). Those
// traces are not redistributable here and would not fit this environment,
// so each dataset is replaced by a seeded generator that reproduces the
// *shape* the experiments depend on (see DESIGN.md):
//   * scale-free degree distribution (Barabasi-Albert backbone), with the
//     bulk of nodes at degree <= 20 (Figure 6's truncated histogram);
//   * a small set of very-high-degree hubs (the facebook stand-in's top hub
//     reaches a large fraction of the graph, mirroring Table 3's 2.6M-degree
//     node);
//   * planted communities (cliques) among ordinary nodes, and planted
//     cliques among the top-degree nodes so that hub-only maximal cliques
//     exist and are among the largest — the effect Figures 9-11 measure.

#ifndef MCE_GEN_SOCIAL_H_
#define MCE_GEN_SOCIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace mce::gen {

/// Recipe for one synthetic social network.
struct SocialNetworkConfig {
  std::string name;
  NodeId num_nodes = 10000;
  /// Barabasi-Albert attachment count (controls average degree ~ 2*attach).
  uint32_t attach = 4;
  /// Number of "celebrity" nodes additionally wired to a random fraction of
  /// the whole graph.
  uint32_t super_hubs = 2;
  /// Fraction of all nodes each super hub connects to.
  double super_hub_reach = 0.05;
  /// Planted community cliques among the general population.
  uint32_t community_cliques = 120;
  uint32_t community_size_lo = 4;
  uint32_t community_size_hi = 16;
  /// Planted cliques among the top-degree tenth of the nodes.
  uint32_t hub_cliques = 40;
  uint32_t hub_clique_size_lo = 6;
  uint32_t hub_clique_size_hi = 18;
  /// Hub-clique members are additionally wired up to a target degree of
  /// frac * (max degree), with per-clique fractions spread quadratically
  /// over [lo, hi]: most hub cliques sit just above the feasibility line
  /// of small m, a few above even m/d = 0.9 — reproducing the real
  /// networks' dense very-high-degree core (the gray bars of Figures 9-11
  /// exist at every ratio).
  double hub_boost_frac_lo = 0.12;
  double hub_boost_frac_hi = 1.0;
  uint64_t seed = 1;
};

/// Generates the network described by `config`. Deterministic in the seed.
Graph GenerateSocialNetwork(const SocialNetworkConfig& config);

/// Recipes mirroring Table 3's five datasets, scaled down by default to
/// laptop size. `scale` multiplies the node counts (1.0 ~ 10-30k nodes).
SocialNetworkConfig Twitter1Config(double scale = 1.0);
SocialNetworkConfig Twitter2Config(double scale = 1.0);
SocialNetworkConfig Twitter3Config(double scale = 1.0);
SocialNetworkConfig FacebookConfig(double scale = 1.0);
SocialNetworkConfig GooglePlusConfig(double scale = 1.0);

/// All five, in the paper's order (twitter1..3, facebook, google+).
std::vector<SocialNetworkConfig> AllDatasetConfigs(double scale = 1.0);

}  // namespace mce::gen

#endif  // MCE_GEN_SOCIAL_H_
