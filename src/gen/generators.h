// Classic random-graph generators.
//
// Section 4 trains the algorithm-selection decision tree on a collection of
// synthetic graphs "generated according to the models of Erdos-Renyi,
// Barabasi-Albert and Watts-Strogatz"; these are those three models. All
// generators are deterministic given the Rng seed.

#ifndef MCE_GEN_GENERATORS_H_
#define MCE_GEN_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/random.h"

namespace mce::gen {

/// G(n, p): each of the n(n-1)/2 possible edges exists independently with
/// probability p. Uses geometric skipping, so the cost is O(n + m) even for
/// tiny p.
Graph ErdosRenyiGnp(NodeId n, double p, Rng* rng);

/// G(n, m): exactly m distinct edges sampled uniformly. Requires
/// m <= n(n-1)/2.
Graph ErdosRenyiGnm(NodeId n, uint64_t m, Rng* rng);

/// Barabasi-Albert preferential attachment: starts from a small clique and
/// attaches each new node to `attach` existing nodes chosen proportionally
/// to their degree. Produces the power-law degree distribution that makes
/// social networks scale-free (Section 1). Requires 1 <= attach < n.
Graph BarabasiAlbert(NodeId n, uint32_t attach, Rng* rng);

/// Watts-Strogatz small world: ring lattice where each node connects to its
/// k nearest neighbors (k even), then each edge is rewired with probability
/// beta. Requires k < n.
Graph WattsStrogatz(NodeId n, uint32_t k, double beta, Rng* rng);

/// Configuration model over a power-law degree sequence: degrees drawn
/// from P(d) ~ d^-gamma on [min_degree, max_degree], stubs matched
/// uniformly, self-loops and multi-edges dropped. Unlike Barabasi-Albert
/// there is no minimum-degree floor of `attach`, so the bulk of the nodes
/// sits at min_degree — the shape of the paper's Figure 6 (91% of nodes
/// with degree <= 20). Requires gamma > 1 and min_degree >= 1.
Graph PowerLawConfigurationModel(NodeId n, double gamma, uint32_t min_degree,
                                 uint32_t max_degree, Rng* rng);

}  // namespace mce::gen

#endif  // MCE_GEN_GENERATORS_H_
