#include "gen/special.h"

#include <algorithm>
#include <numeric>

#include "graph/builder.h"
#include "util/check.h"

namespace mce::gen {

Graph Complete(NodeId n) {
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) builder.AddEdge(u, v);
  }
  return builder.Build();
}

Graph MoonMoser(uint32_t parts) {
  const NodeId n = parts * 3;
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (u / 3 != v / 3) builder.AddEdge(u, v);  // different parts
    }
  }
  return builder.Build();
}

Graph HnWorstCase(NodeId n, uint32_t m) {
  MCE_CHECK_GE(n, 1u);
  MCE_CHECK_GE(m, 1u);
  GraphBuilder builder(n);
  std::vector<uint32_t> degree(n, 0);
  auto connect = [&](NodeId u, NodeId v) {
    builder.AddEdge(u, v);
    ++degree[u];
    ++degree[v];
  };
  for (NodeId j = 1; j < n; ++j) {
    if (j <= m) {
      // v_{j+1} in paper terms: connect to all previous (complete prefix).
      for (NodeId i = 0; i < j; ++i) connect(j, i);
    } else {
      // Connect to the m previous nodes of lowest current degree, ties
      // broken toward the most recent node (matches the paper's figure,
      // where new nodes chain onto the tail).
      std::vector<NodeId> prev(j);
      std::iota(prev.begin(), prev.end(), 0);
      std::sort(prev.begin(), prev.end(), [&degree](NodeId a, NodeId b) {
        if (degree[a] != degree[b]) return degree[a] < degree[b];
        return a > b;
      });
      for (uint32_t t = 0; t < m; ++t) connect(j, prev[t]);
    }
  }
  return builder.Build();
}

Graph OverlayCliques(const Graph& g,
                     const std::vector<std::vector<NodeId>>& members) {
  GraphBuilder builder(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (u < v) builder.AddEdge(u, v);
    }
  }
  for (const auto& clique : members) {
    for (size_t i = 0; i < clique.size(); ++i) {
      for (size_t j = i + 1; j < clique.size(); ++j) {
        builder.AddEdge(clique[i], clique[j]);
      }
    }
  }
  return builder.Build();
}

Graph OverlayRandomCliques(const Graph& g, uint32_t count, uint32_t size_lo,
                           uint32_t size_hi, bool bias_high_degree, Rng* rng) {
  MCE_CHECK_LE(size_lo, size_hi);
  const NodeId n = g.num_nodes();
  if (n == 0 || count == 0) return g;

  // Candidate pool: all nodes, or the top-degree tenth (at least size_hi
  // nodes so a clique always fits).
  std::vector<NodeId> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  if (bias_high_degree) {
    std::sort(pool.begin(), pool.end(), [&g](NodeId a, NodeId b) {
      return g.Degree(a) > g.Degree(b);
    });
    size_t keep = std::max<size_t>(n / 10, std::min<size_t>(n, size_hi * 4));
    keep = std::min<size_t>(keep, n);
    pool.resize(keep);
  }

  std::vector<std::vector<NodeId>> cliques;
  cliques.reserve(count);
  for (uint32_t c = 0; c < count; ++c) {
    uint32_t size = static_cast<uint32_t>(
        rng->NextInt(size_lo, size_hi));
    size = std::min<uint32_t>(size, static_cast<uint32_t>(pool.size()));
    std::vector<uint64_t> idx =
        rng->SampleWithoutReplacement(pool.size(), size);
    std::vector<NodeId> members;
    members.reserve(size);
    for (uint64_t i : idx) members.push_back(pool[i]);
    cliques.push_back(std::move(members));
  }
  return OverlayCliques(g, cliques);
}

}  // namespace mce::gen
