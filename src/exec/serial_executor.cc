// SerialExecutor: depth-first execution of the task graph on the calling
// thread. DecomposeTask(h) streams its blocks and each BlockTask runs the
// moment its block finishes growing, with the FilterTask applied inline
// per clique — so at most one block (plus the level graph) is alive at a
// time and the memory profile is O(graph + largest block).

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "decision/block_cost.h"
#include "decomp/cut.h"
#include "decomp/parallel_analysis.h"
#include "exec/executor.h"
#include "graph/subgraph.h"
#include "mce/workspace.h"
#include "util/check.h"
#include "util/memory_budget.h"
#include "util/timer.h"

namespace mce::exec {

namespace {

class SerialExecutor final : public Executor {
 public:
  decomp::StreamingStats Run(const Graph& g,
                             const decomp::FindMaxCliquesOptions& options,
                             const decomp::LeveledCliqueCallback& emit) override {
    MCE_CHECK_GE(options.max_block_size, 1u);
    obs::TraceRecorder* const trace = ResolveTrace(options);
    RunMetrics metrics(ResolveMetrics(options));
    obs::ProgressEstimator* const progress = options.progress;
    const bool profile_on = options.profile;
    obs::ProfileAccumulator profile;
    decomp::StreamingStats out;
    // One workspace reused across every block of the run.
    BlockWorkspace workspace;
    // ReduceTask: when options.reduce is set the prepass emits the trivial
    // cliques right here and the level chain below starts from the
    // reduced graph; `g` stays the filter's reference graph.
    ReducePrepass prep;
    prep.Run(g, options, trace, metrics, emit, &out,
             profile_on ? &profile : nullptr);
    const reduce::ReductionMap* const expansion = prep.map();
    const Graph* current = &prep.pipeline_graph();
    // The serial walk never stalls or spills (its live set is already
    // O(graph + one block)), but it tracks the same charges the pooled
    // engine does so peak_tracked_bytes is comparable across executors.
    MemoryBudget budget(options.memory_budget_bytes);
    auto charge = [&](uint64_t bytes) {
      if (bytes == 0) return;
      budget.Charge(bytes);
      metrics.RecordCharge(bytes);
    };
    // Queue depth is always 0 on the serial walk; the budget gauges
    // make serial heartbeats comparable with pooled ones. The guard
    // detaches the closure on every exit, including unwinds out of the
    // user's emit callback — the captures live on this frame.
    obs::ScopedGaugeSource gauge_guard(progress, [&budget] {
      obs::GaugeSample s;
      s.mem_charged_bytes = budget.charged();
      s.mem_peak_bytes = budget.peak();
      return s;
    });
    const uint64_t pipeline_graph_bytes =
        prep.pipeline_graph().ResidentBytes();
    charge(pipeline_graph_bytes);
    uint64_t level_graph_bytes = 0;  // the current owned level graph
    Graph owned;  // deeper levels own the hub-induced subgraph
    std::vector<NodeId> to_original;  // empty means identity (level 0)
    uint32_t level = 0;
    Clique scratch;
    Clique expand_scratch;

    const decomp::BlocksOptions blocks_options = BlocksOptionsFor(options);
    const decomp::BlockAnalysisOptions analysis_options =
        AnalysisOptionsFor(options);

    auto deliver = [&](std::span<const NodeId> c) {
      const bool kept = MapExpandAndFilterClique(
          g, c, to_original, level, expansion, &expand_scratch, &scratch);
      // Level 0 needs no maximality check, so only deeper levels count as
      // filter work.
      if (level > 0) metrics.RecordFilter(1, kept ? 1 : 0);
      if (kept) {
        ++out.cliques_emitted;
        if (progress != nullptr) progress->AddCliques(1);
        emit(scratch, level);
      }
    };

    // Per-level counter state: the level window is read at decompose-span
    // close, and the nested block/fallback deltas are subtracted so the
    // decompose bucket holds only its *self* work — per-kind sums then
    // reproduce the run total exactly despite the nesting.
    obs::ScopedCounters level_counters;
    obs::CounterDelta level_children;

    // The decompose span of a level covers CUT plus the block growth; the
    // inline BlockTask spans nest inside it on this single track.
    auto record_decompose = [&](const decomp::LevelStats& stats,
                                int64_t begin_us) {
      obs::TraceEvent e;
      e.begin_us = begin_us;
      e.end_us = obs::NowMicros();
      e.kind = obs::SpanKind::kDecompose;
      e.level = level;
      e.args[0] = stats.num_nodes;
      e.args[1] = stats.num_edges;
      e.args[2] = stats.feasible;
      e.args[3] = stats.hubs;
      if (level_counters.active()) {
        obs::CounterDelta self = level_counters.Finish();
        self.SaturatingSubtract(level_children);
        e.prof = self;
        profile.Add(obs::SpanKind::kDecompose, level,
                    stats.decompose_seconds, 0, self);
      }
      if (trace != nullptr) trace->Record(e);
    };

    for (;;) {
      decomp::LevelStats stats;
      stats.num_nodes = current->num_nodes();
      stats.num_edges = current->num_edges();
      // One worker (this thread) runs everything; JSON consumers divide by
      // this, so it must never read 0.
      stats.analyze_threads = 1;

      const int64_t level_begin_us =
          trace != nullptr || profile_on ? obs::NowMicros() : 0;
      level_children = obs::CounterDelta();
      if (profile_on) level_counters.Begin();
      if (progress != nullptr) progress->BeginLevel(level);
      // The decompose clock accumulates Cut plus the block-growth
      // segments between block emissions.
      Timer segment;
      decomp::CutResult cut = decomp::Cut(*current, options.max_block_size);
      stats.feasible = cut.feasible.size();
      stats.hubs = cut.hubs.size();

      if (cut.feasible.empty() && current->num_nodes() > 0) {
        // Sparsity precondition violated: the remaining graph is its own
        // m-core. Enumerate it directly as one indivisible task.
        out.used_fallback = true;
        stats.decompose_seconds = segment.ElapsedSeconds();
        if (trace != nullptr || profile_on) {
          record_decompose(stats, level_begin_us);
        }
        const int64_t fallback_begin_us =
            trace != nullptr || profile_on ? obs::NowMicros() : 0;
        obs::ScopedCounters fallback_counters;
        if (profile_on) fallback_counters.Begin();
        double fallback_cost = 0;
        if (progress != nullptr) {
          // The fallback MCE is one indivisible unit of work; score it
          // with the same cost model as a block so the denominator stays
          // in one currency.
          fallback_cost = decision::EstimateBlockCost(*current);
          progress->RegisterBlock(level, fallback_cost);
        }
        Timer analyze_timer;
        uint64_t produced = 0;
        EnumerateMaximalCliques(*current, options.fallback,
                                [&](std::span<const NodeId> c) {
                                  ++produced;
                                  deliver(c);
                                });
        if (progress != nullptr) progress->RetireBlock(level, fallback_cost);
        stats.cliques = produced;
        stats.analyze_seconds = analyze_timer.ElapsedSeconds();
        stats.block_seconds = stats.analyze_seconds;
        stats.busiest_worker_seconds = stats.analyze_seconds;
        if (trace != nullptr || profile_on) {
          obs::TraceEvent e;
          e.begin_us = fallback_begin_us;
          e.end_us = obs::NowMicros();
          e.kind = obs::SpanKind::kFallback;
          e.level = level;
          e.args[0] = stats.num_nodes;
          e.args[1] = stats.num_edges;
          e.args[2] = produced;
          if (fallback_counters.active()) {
            e.prof = fallback_counters.Finish();
            profile.Add(obs::SpanKind::kFallback, level,
                        stats.analyze_seconds, produced, e.prof);
          }
          if (trace != nullptr) trace->Record(e);
        }
        out.levels.push_back(stats);
        if (progress != nullptr) progress->FinishLevel(level);
        break;
      }

      uint64_t produced = 0;
      uint64_t block_index = 0;
      decomp::BuildBlocksStreaming(
          *current, cut.feasible, blocks_options,
          [&](decomp::Block&& block) {
            stats.decompose_seconds += segment.ElapsedSeconds();
            // The block plus its analysis workspace are live for exactly
            // this callback.
            const uint64_t block_charge =
                block.EstimatedBytes() + EstimateAnalysisBytes(block);
            charge(block_charge);
            // One cost-model evaluation serves both consumers: the
            // progress denominator (registered before the analysis so a
            // sampler sees the work as pending, not invisible) and the
            // descriptor sink.
            const double estimated_cost =
                progress != nullptr || sink_ || trace != nullptr || profile_on
                    ? decision::EstimateBlockCost(block.subgraph.graph)
                    : 0;
            if (progress != nullptr) {
              progress->RegisterBlock(level, estimated_cost);
            }
            const int64_t block_begin_us =
                trace != nullptr || profile_on ? obs::NowMicros() : 0;
            obs::ScopedCounters block_counters;
            if (profile_on) block_counters.Begin();
            Timer block_timer;
            decomp::BlockAnalysisResult result = decomp::AnalyzeBlock(
                block, analysis_options, deliver, &workspace);
            const double block_seconds = block_timer.ElapsedSeconds();
            budget.Release(block_charge);
            obs::CounterDelta block_delta;
            if (block_counters.active()) {
              block_delta = block_counters.Finish();
              profile.Add(obs::SpanKind::kBlock, level, block_seconds,
                          result.num_cliques, block_delta);
              level_children += block_delta;
            }
            if (trace != nullptr) {
              obs::TraceEvent e = MakeBlockSpan(
                  block_begin_us, obs::NowMicros(), block, result, level,
                  block_index);
              e.cost = estimated_cost;
              e.prof = block_delta;
              trace->Record(e);
            }
            metrics.RecordBlock(block, result, block_seconds);
            produced += result.num_cliques;
            stats.block_seconds += block_seconds;
            stats.analyze_seconds += block_seconds;
            if (options.block_observer) {
              options.block_observer(decomp::MakeBlockTaskRecord(
                  block, result, block_seconds, level));
            }
            if (progress != nullptr) {
              progress->RetireBlock(level, estimated_cost);
            }
            if (sink_) {
              // Parity with the pooled executor's descriptors: the same
              // cost model scores the block even though the serial walk
              // never reorders or splits.
              sink_(MakeBlockTaskDescriptor(block, result, block_seconds,
                                            level, block_index,
                                            estimated_cost));
            }
            ++block_index;
            segment.Reset();
          });
      stats.decompose_seconds += segment.ElapsedSeconds();
      stats.blocks = block_index;
      stats.cliques = produced;
      stats.busiest_worker_seconds = stats.block_seconds;
      if (trace != nullptr || profile_on) {
        record_decompose(stats, level_begin_us);
      }
      out.levels.push_back(stats);
      if (progress != nullptr) progress->FinishLevel(level);

      if (cut.hubs.empty()) break;

      // Recursive step: continue on the hub-induced subgraph.
      InducedSubgraph sub = Induce(*current, cut.hubs);
      to_original = ComposeToOriginal(to_original, sub.to_parent);
      // Parent and child graphs overlap until the move below frees the
      // parent, so the child is charged before the parent is released.
      const uint64_t next_graph_bytes = sub.graph.ResidentBytes();
      charge(next_graph_bytes);
      owned = std::move(sub.graph);
      budget.Release(level_graph_bytes);
      level_graph_bytes = next_graph_bytes;
      current = &owned;
      ++level;
    }
    out.memory.budget_bytes = budget.limit();
    out.memory.peak_tracked_bytes = budget.peak();
    if (profile_on) out.profile = profile.Snapshot();
    metrics.RecordRun(out);
    if (progress != nullptr) {
      progress->MarkComplete();
      out.progress = progress->Accounting();
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<Executor> MakeSerialExecutor() {
  return std::make_unique<SerialExecutor>();
}

}  // namespace mce::exec
