// SimulatedClusterExecutor: wraps an inner executor and feeds the real
// BlockTask descriptors it executes into the dist:: cluster scheduler —
// the simulated placement consumes the engine's own task stream instead
// of an after-the-fact block_observer replay. The algorithmic output
// (cliques, emission order, observer stream) is exactly the inner
// executor's; what this adds is one cluster simulation per recursion
// level plus the distributed decompose-cost model.

#ifndef MCE_EXEC_CLUSTER_EXECUTOR_H_
#define MCE_EXEC_CLUSTER_EXECUTOR_H_

#include <memory>
#include <vector>

#include "dist/cluster.h"
#include "exec/executor.h"

namespace mce::exec {

struct LevelSimulation {
  dist::SimulationResult simulation;
  /// Simulated distributed decomposition time for the level: the measured
  /// CUT+BLOCKS time divided across workers plus the shared-FS read of the
  /// level's edge data (Section 6.2 splits the input across machines).
  double decompose_seconds = 0;
};

class SimulatedClusterExecutor final : public Executor {
 public:
  SimulatedClusterExecutor(dist::ClusterConfig config,
                           std::unique_ptr<Executor> inner);

  decomp::StreamingStats Run(const Graph& g,
                             const decomp::FindMaxCliquesOptions& options,
                             const decomp::LeveledCliqueCallback& emit) override;

  /// One simulation per recursion level of the last Run, in level order
  /// (parallel to the returned stats.levels).
  const std::vector<LevelSimulation>& levels() const { return levels_; }

 private:
  dist::ClusterConfig config_;
  std::unique_ptr<Executor> inner_;
  std::vector<LevelSimulation> levels_;
};

}  // namespace mce::exec

#endif  // MCE_EXEC_CLUSTER_EXECUTOR_H_
