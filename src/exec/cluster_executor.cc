#include "exec/cluster_executor.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "exec/task_graph.h"
#include "obs/trace.h"
#include "util/check.h"

namespace mce::exec {

SimulatedClusterExecutor::SimulatedClusterExecutor(
    dist::ClusterConfig config, std::unique_ptr<Executor> inner)
    : config_(std::move(config)), inner_(std::move(inner)) {
  MCE_CHECK(inner_ != nullptr);
}

decomp::StreamingStats SimulatedClusterExecutor::Run(
    const Graph& g, const decomp::FindMaxCliquesOptions& options,
    const decomp::LeveledCliqueCallback& emit) {
  levels_.clear();
  // The inner executor delivers descriptors on the calling thread in
  // block order, so plain vectors suffice. The user's sink (if any) still
  // sees every descriptor.
  std::vector<std::vector<dist::Task>> tasks_per_level;
  std::vector<std::vector<uint64_t>> cliques_per_level;
  const BlockTaskSink user_sink = sink_;
  inner_->set_block_task_sink(
      [&tasks_per_level, &cliques_per_level,
       &user_sink](const BlockTaskDescriptor& d) {
        if (tasks_per_level.size() <= d.level) {
          tasks_per_level.resize(d.level + 1);
          cliques_per_level.resize(d.level + 1);
        }
        dist::Task t;
        t.estimated_cost = d.estimated_cost;
        t.compute_seconds = d.compute_seconds;
        t.bytes = d.bytes;
        tasks_per_level[d.level].push_back(t);
        cliques_per_level[d.level].push_back(d.cliques);
        if (user_sink) user_sink(d);
      });

  decomp::StreamingStats stats = inner_->Run(g, options, emit);
  inner_->set_block_task_sink({});

  tasks_per_level.resize(stats.levels.size());
  for (size_t level = 0; level < stats.levels.size(); ++level) {
    LevelSimulation ls;
    ls.simulation = dist::SimulateCluster(tasks_per_level[level], config_);
    // Decomposition: the level's edge file is read from the shared FS and
    // the CUT+BLOCKS work parallelizes across workers.
    const decomp::LevelStats& level_stats = stats.levels[level];
    const uint64_t level_bytes =
        level_stats.num_edges * 2 * sizeof(NodeId) +
        level_stats.num_nodes * sizeof(NodeId);
    ls.decompose_seconds =
        config_.cost.DiskSeconds(level_bytes) +
        config_.cost.ComputeSeconds(level_stats.decompose_seconds) /
            config_.num_workers;
    levels_.push_back(std::move(ls));
  }

  // Replay the simulated placement as synthetic trace lanes: one lane per
  // (worker, thread) slot under the "mce cluster sim" process, levels laid
  // out end to end (each level's lanes start after its simulated
  // decompose phase). Zero-cost when no recorder is resolved.
  if (obs::TraceRecorder* trace = ResolveTrace(options)) {
    cliques_per_level.resize(levels_.size());
    int64_t base_us = obs::NowMicros();
    for (size_t level = 0; level < levels_.size(); ++level) {
      const LevelSimulation& ls = levels_[level];
      base_us += static_cast<int64_t>(ls.decompose_seconds * 1e6);
      const dist::SimulationResult& sim = ls.simulation;
      for (size_t i = 0; i < sim.task_lane.size(); ++i) {
        obs::TraceEvent e;
        e.begin_us =
            base_us + static_cast<int64_t>(sim.task_start_seconds[i] * 1e6);
        e.end_us = e.begin_us +
                   static_cast<int64_t>(sim.task_compute_seconds[i] * 1e6);
        e.kind = obs::SpanKind::kSimBlock;
        e.level = static_cast<uint32_t>(level);
        e.index = i;
        e.args[0] = static_cast<uint64_t>(sim.assignment[i]);
        e.args[1] = static_cast<uint64_t>(sim.task_lane[i]);
        e.args[2] = cliques_per_level[level][i];
        e.lane_pid = 1;
        e.lane_tid = sim.task_lane[i];
        trace->Record(e);
      }
      base_us += static_cast<int64_t>(sim.makespan_seconds * 1e6);
    }
  }
  return stats;
}

}  // namespace mce::exec
