#include "exec/cluster_executor.h"

#include <utility>

#include "util/check.h"

namespace mce::exec {

SimulatedClusterExecutor::SimulatedClusterExecutor(
    dist::ClusterConfig config, std::unique_ptr<Executor> inner)
    : config_(std::move(config)), inner_(std::move(inner)) {
  MCE_CHECK(inner_ != nullptr);
}

decomp::StreamingStats SimulatedClusterExecutor::Run(
    const Graph& g, const decomp::FindMaxCliquesOptions& options,
    const decomp::LeveledCliqueCallback& emit) {
  levels_.clear();
  // The inner executor delivers descriptors on the calling thread in
  // block order, so plain vectors suffice. The user's sink (if any) still
  // sees every descriptor.
  std::vector<std::vector<dist::Task>> tasks_per_level;
  const BlockTaskSink user_sink = sink_;
  inner_->set_block_task_sink(
      [&tasks_per_level, &user_sink](const BlockTaskDescriptor& d) {
        if (tasks_per_level.size() <= d.level) {
          tasks_per_level.resize(d.level + 1);
        }
        dist::Task t;
        t.estimated_cost = d.estimated_cost;
        t.compute_seconds = d.compute_seconds;
        t.bytes = d.bytes;
        tasks_per_level[d.level].push_back(t);
        if (user_sink) user_sink(d);
      });

  decomp::StreamingStats stats = inner_->Run(g, options, emit);
  inner_->set_block_task_sink({});

  tasks_per_level.resize(stats.levels.size());
  for (size_t level = 0; level < stats.levels.size(); ++level) {
    LevelSimulation ls;
    ls.simulation = dist::SimulateCluster(tasks_per_level[level], config_);
    // Decomposition: the level's edge file is read from the shared FS and
    // the CUT+BLOCKS work parallelizes across workers.
    const decomp::LevelStats& level_stats = stats.levels[level];
    const uint64_t level_bytes =
        level_stats.num_edges * 2 * sizeof(NodeId) +
        level_stats.num_nodes * sizeof(NodeId);
    ls.decompose_seconds =
        config_.cost.DiskSeconds(level_bytes) +
        config_.cost.ComputeSeconds(level_stats.decompose_seconds) /
            config_.num_workers;
    levels_.push_back(std::move(ls));
  }
  return stats;
}

}  // namespace mce::exec
