// Executor: pluggable engines that run the FIND-MAX-CLIQUES task graph
// (exec/task_graph.h).
//
// Every executor honors the delivery contract of DESIGN.md §7: the clique
// callback, the block observer, and the block-task sink run only on the
// thread that called Run(), blocks surface in decomposition order, levels
// in recursion order — so all executors produce byte-identical emission.
// What differs is scheduling:
//
//   SerialExecutor  — depth-first on the calling thread; each BlockTask
//                     runs the moment DecomposeTask emits its block, so
//                     memory stays O(graph + largest block).
//   PooledExecutor  — BlockTasks dispatch to a shared ThreadPool as
//                     BuildBlocks emits them, FilterTasks chunk across the
//                     pool behind a completion token, and
//                     DecomposeTask(h+1) is submitted right after Cut(h)
//                     so it overlaps the tail of level-h analysis.
//
// The simulated-cluster wrapper lives in exec/cluster_executor.h.

#ifndef MCE_EXEC_EXECUTOR_H_
#define MCE_EXEC_EXECUTOR_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>

#include "decomp/find_max_cliques.h"
#include "exec/task_graph.h"
#include "graph/graph.h"

namespace mce::exec {

/// Receives one descriptor per executed BlockTask, on the calling thread,
/// in block order, after options.block_observer for the same block.
using BlockTaskSink = std::function<void(const BlockTaskDescriptor&)>;

class Executor {
 public:
  virtual ~Executor() = default;

  /// Runs the full task graph over `g`. `emit` receives each maximal
  /// clique of g (sorted, original ids) exactly once, already past the
  /// Lemma-1 filter, in an order independent of the executor.
  virtual decomp::StreamingStats Run(
      const Graph& g, const decomp::FindMaxCliquesOptions& options,
      const decomp::LeveledCliqueCallback& emit) = 0;

  void set_block_task_sink(BlockTaskSink sink) { sink_ = std::move(sink); }

 protected:
  BlockTaskSink sink_;
};

std::unique_ptr<Executor> MakeSerialExecutor();
std::unique_ptr<Executor> MakePooledExecutor(size_t num_threads);

/// Resolves options.executor and options.num_threads (0 = one per hardware
/// thread) into a concrete engine: kAuto picks serial at one thread,
/// pooled otherwise.
std::unique_ptr<Executor> MakeExecutor(
    const decomp::FindMaxCliquesOptions& options);

/// 0 means one worker per hardware thread; otherwise the request stands.
size_t ResolveThreadCount(uint32_t requested);

/// Runs `executor` and assembles the batch result: cliques canonicalized
/// and sorted with their origin levels, plus the streaming stats. Shared
/// by decomp::FindMaxCliques and dist::RunDistributedMce.
decomp::FindMaxCliquesResult CollectToResult(
    Executor& executor, const Graph& g,
    const decomp::FindMaxCliquesOptions& options);

}  // namespace mce::exec

#endif  // MCE_EXEC_EXECUTOR_H_
