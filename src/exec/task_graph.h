// The task-graph vocabulary of the execution engine.
//
// One FIND-MAX-CLIQUES run is a graph of three typed stages per recursion
// level h:
//
//   DecomposeTask(h)  = induce G_h from the parent's hubs (h >= 1), CUT
//                       (Algorithm 2), and BLOCKS (Algorithm 3). Emits one
//                       BlockTask per block as the block finishes growing.
//   BlockTask(h, i)   = BLOCK-ANALYSIS (Algorithm 4) of block i, buffering
//                       its cliques.
//   FilterTask(h, c)  = one chunk of the telescoped Lemma-1 maximality
//                       checks over the level's buffered cliques (h >= 1;
//                       level-0 cliques are maximal by construction).
//
// Dependency edges:
//   DecomposeTask(h+1) <- Cut(h)'s hub set only — NOT level h's clique
//     output, which is what lets an executor overlap level-(h+1)
//     decomposition with the tail of level-h analysis.
//   BlockTask(h, i)    <- block i's emission by DecomposeTask(h).
//   FilterTask(h, *)   <- all BlockTask(h, *) (the chunk partition needs
//     the full clique count).
//   Delivery(h)        <- FilterTask(h, *) and Delivery(h-1): cliques,
//     observer records, and BlockTask descriptors surface on the calling
//     thread, in block order, levels in order (DESIGN.md §7).
//
// This header holds the stage payloads and the pure helpers every executor
// shares; the executors themselves live behind exec/executor.h.

#ifndef MCE_EXEC_TASK_GRAPH_H_
#define MCE_EXEC_TASK_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "decomp/block.h"
#include "decomp/block_analysis.h"
#include "decomp/blocks.h"
#include "decomp/find_max_cliques.h"
#include "graph/graph.h"
#include "mce/clique.h"
#include "mce/clique_sink.h"
#include "mce/enumerator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "reduce/reduction.h"

namespace mce::exec {

class RunMetrics;

/// Shipping-ready description of one executed BlockTask. This is what the
/// simulated-cluster executor schedules — real task descriptors, not an
/// after-the-fact observer replay.
struct BlockTaskDescriptor {
  uint32_t level = 0;
  /// Block index within its level (emission order).
  uint64_t index = 0;
  uint64_t nodes = 0;
  uint64_t edges = 0;
  /// Estimated shipping size of the block.
  uint64_t bytes = 0;
  /// Pre-execution cost estimate available to a scheduler — the
  /// decision::EstimateBlockCost score every executor computes at block
  /// emission (the same number that drives cost-guided dispatch and
  /// splitting).
  double estimated_cost = 0;
  /// Measured analysis wall time.
  double compute_seconds = 0;
  uint64_t cliques = 0;
  /// The data-structure/algorithm combination that actually ran.
  MceOptions used;
};

BlockTaskDescriptor MakeBlockTaskDescriptor(
    const decomp::Block& block, const decomp::BlockAnalysisResult& result,
    double seconds, uint32_t level, uint64_t index, double estimated_cost);

/// Derives the Algorithm-3 options of a DecomposeTask.
decomp::BlocksOptions BlocksOptionsFor(
    const decomp::FindMaxCliquesOptions& options);

/// Derives the Algorithm-4 options of a BlockTask.
decomp::BlockAnalysisOptions AnalysisOptionsFor(
    const decomp::FindMaxCliquesOptions& options);

/// Composes the parent level's original-id mapping with the induced
/// subgraph's to_parent: an empty `to_original` is the identity (level 0).
std::vector<NodeId> ComposeToOriginal(const std::vector<NodeId>& to_original,
                                      const std::vector<NodeId>& to_parent);

/// The FilterTask body for one clique: translates `level_ids` (ids of
/// G_level) to original ids via `to_original` (empty = identity), sorts,
/// and applies the telescoped Lemma-1 filter — a clique from level >= 1 is
/// kept iff it is maximal in the original graph. Returns true and fills
/// `out` when the clique survives.
bool MapAndFilterClique(const Graph& original,
                        std::span<const NodeId> level_ids,
                        const std::vector<NodeId>& to_original, uint32_t level,
                        Clique* out);

/// MapAndFilterClique with the reduction prepass in the loop: `level_ids`
/// are ids of the reduced graph's level chain, so after the to_original
/// translation (into *scratch) the clique re-expands through `expansion`
/// into original-graph ids — *before* the Lemma-1 check, which still runs
/// against the true original graph. Returns false when the expansion is
/// covered by a trivial clique of the prepass (a reduction leak) or fails
/// the maximality check. With a null/inactive `expansion` this is exactly
/// MapAndFilterClique.
bool MapExpandAndFilterClique(const Graph& original,
                              std::span<const NodeId> level_ids,
                              const std::vector<NodeId>& to_original,
                              uint32_t level,
                              const reduce::ReductionMap* expansion,
                              Clique* scratch, Clique* out);

/// The ReduceTask: shared prepass driver for the executors. When
/// options.reduce is set, Run() reduces `g` on the calling thread, emits
/// the trivial cliques (level 0, ahead of every pipeline clique — the
/// same stream position on every engine), records the kReduce span and
/// the reduction metrics/stats, and the pipeline then decomposes
/// pipeline_graph() with map() threaded through the filter call sites.
/// When options.reduce is off, pipeline_graph() is `g` and map() is null.
class ReducePrepass {
 public:
  /// Must be called once, before any pipeline task runs. `out` receives
  /// the stats and the trivial-clique emission count. `profile` (may be
  /// null) accumulates the prepass's counter delta under kReduce.
  void Run(const Graph& g, const decomp::FindMaxCliquesOptions& options,
           obs::TraceRecorder* trace, RunMetrics& metrics,
           const decomp::LeveledCliqueCallback& emit,
           decomp::StreamingStats* out,
           obs::ProfileAccumulator* profile = nullptr);

  const Graph& pipeline_graph() const { return *graph_; }
  /// Null when reduction is off — safe to pass straight to
  /// MapExpandAndFilterClique.
  const reduce::ReductionMap* map() const {
    return active_ ? &result_.map : nullptr;
  }

 private:
  const Graph* graph_ = nullptr;
  reduce::ReductionResult result_;
  bool active_ = false;
};

/// Chunk partition of a level's FilterTasks: contiguous [begin, end)
/// ranges covering `items`, at most 4 per worker and never more chunks
/// than items — in particular no chunks at all when `items` is 0, so tiny
/// or clique-free levels cannot produce empty or degenerate tasks.
std::vector<std::pair<size_t, size_t>> FilterChunks(size_t items,
                                                    size_t workers);

/// Rough bytes one AnalyzeBlock call pins while it runs: the block's
/// adjacency-list working set plus per-node recursion scratch. This is the
/// MemoryBudget workspace charge admission is decided against — a
/// deliberate estimate, not an allocator measurement. Saturates on
/// overflow.
uint64_t EstimateAnalysisBytes(const decomp::Block& block);

/// The run's effective span/metrics sinks: the option override when set,
/// else the process-wide installed instance. Either may be nullptr (= that
/// channel is off). Executors resolve once per Run.
obs::TraceRecorder* ResolveTrace(const decomp::FindMaxCliquesOptions& options);
obs::MetricsRegistry* ResolveMetrics(
    const decomp::FindMaxCliquesOptions& options);

/// A finished BlockTask's kBlock span: kernel/border/visited sizes, clique
/// count, and the MCE combination that ran, tagged with level and block
/// index.
obs::TraceEvent MakeBlockSpan(int64_t begin_us, int64_t end_us,
                              const decomp::Block& block,
                              const decomp::BlockAnalysisResult& result,
                              uint32_t level, uint64_t index);

/// One kernel-range shard of a split BlockTask: a kBlockShard span tagged
/// with the block it belongs to, the half-open kernel range it enumerated,
/// its clique count, and the block's total shard count.
obs::TraceEvent MakeBlockShardSpan(int64_t begin_us, int64_t end_us,
                                   uint32_t level, uint64_t block_index,
                                   const decomp::KernelRange& range,
                                   uint64_t cliques, uint64_t shards,
                                   const MceOptions& used);

/// Priority dispatch queue for ready analysis tasks. The thread pool runs
/// plain FIFO; cost-guided scheduling (DESIGN.md §7: largest predicted
/// cost first, so a giant block emitted last cannot serialize the tail of
/// a level) is layered on top by submitting generic "pull" thunks to the
/// pool and letting each pull run the currently most expensive queued
/// task. Ties dispatch in push (emission) order. Thread-safe.
class CostOrderedQueue {
 public:
  /// Enqueues `fn` with predicted cost `cost`.
  void Push(double cost, std::function<void()> fn);

  /// Pops and runs the highest-cost queued task; no-op when empty. Callers
  /// submit exactly one pool thunk per Push, so a non-empty pop is
  /// guaranteed under that discipline, but RunNext tolerates spurious
  /// calls.
  void RunNext();

  size_t Size() const;

 private:
  struct Entry {
    double cost = 0;
    uint64_t seq = 0;  // FIFO tiebreak: lower seq wins at equal cost
    std::function<void()> fn;

    /// std::push_heap max-heap order: "worse" entries compare less-than.
    bool operator<(const Entry& other) const {
      if (cost != other.cost) return cost < other.cost;
      return seq > other.seq;
    }
  };

  mutable std::mutex mu_;
  uint64_t next_seq_ = 0;
  std::vector<Entry> heap_;
};

/// Per-run handle bundle for the execution engine's well-known workload
/// metrics. Instrument lookups happen once, at construction; the Record*
/// calls are lock-free and no-ops when the registry is null. Thread-safe.
class RunMetrics {
 public:
  explicit RunMetrics(obs::MetricsRegistry* registry);

  explicit operator bool() const { return registry_ != nullptr; }

  /// One analyzed block: counts it, its cliques, and observes the block
  /// size / edge-density / ns-per-clique histograms.
  void RecordBlock(const decomp::Block& block,
                   const decomp::BlockAnalysisResult& result, double seconds);
  /// One BlockTask split into `shards` kernel-range shards (shards >= 2):
  /// bumps exec.blocks_split by one and exec.block_shards by `shards`.
  void RecordSplit(uint64_t shards);
  /// One Lemma-1 filter batch: `checked` cliques tested, `kept` survivors.
  void RecordFilter(uint64_t checked, uint64_t kept);
  /// The reduction prepass's per-rule counters (reduce.* namespace).
  void RecordReduction(const reduce::ReductionStats& stats);
  /// End-of-run totals from the pipeline's stats.
  void RecordRun(const decomp::StreamingStats& stats);

  /// Bytes charged to the MemoryBudget (mem.bytes_charged; sink deltas
  /// flow through SpillInstruments instead).
  void RecordCharge(uint64_t bytes);
  /// One admission stall resolved after `micros` of waiting
  /// (mem.admission_stalls / mem.admission_stall_micros).
  void RecordAdmissionStall(uint64_t micros);
  /// The mem.* handles clique sinks record flushes against (null handles
  /// when no registry is bound).
  SpillMetrics SpillInstruments() const;

 private:
  obs::MetricsRegistry* registry_;
  obs::Counter* blocks_ = nullptr;
  obs::Counter* blocks_split_ = nullptr;
  obs::Counter* block_shards_ = nullptr;
  obs::Counter* block_cliques_ = nullptr;
  obs::Counter* filter_checked_ = nullptr;
  obs::Counter* filter_kept_ = nullptr;
  obs::Counter* levels_ = nullptr;
  obs::Counter* cliques_emitted_ = nullptr;
  obs::Counter* fallback_runs_ = nullptr;
  obs::Counter* mem_bytes_charged_ = nullptr;
  obs::Counter* mem_admission_stalls_ = nullptr;
  obs::Counter* mem_admission_stall_micros_ = nullptr;
  obs::Counter* mem_spill_chunks_ = nullptr;
  obs::Counter* mem_spill_bytes_ = nullptr;
  obs::Histogram* block_nodes_ = nullptr;
  obs::Histogram* block_density_ = nullptr;
  obs::Histogram* block_ns_per_clique_ = nullptr;
  obs::Histogram* mem_spill_chunk_bytes_ = nullptr;
};

}  // namespace mce::exec

#endif  // MCE_EXEC_TASK_GRAPH_H_
