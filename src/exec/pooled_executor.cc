// PooledExecutor: the task graph on a shared ThreadPool.
//
// Scheduling differences vs. the serial depth-first walk:
//  * BlockTasks are submitted the moment BuildBlocksStreaming emits each
//    block, so analysis starts while the level is still decomposing.
//  * Task granularity follows the block cost model (DESIGN.md §7): blocks
//    predicted above max_block_cost split into kernel-range shards, blocks
//    below it coalesce into batches of about that much predicted work, and
//    ready tasks dispatch largest-predicted-first.
//  * DecomposeTask(h+1) depends only on Cut(h)'s hub set, so it is
//    submitted before level h's blocks are even built — the next level's
//    induce/cut/build runs concurrently with the tail of level-h analysis
//    (the measured window is LevelStats::overlap_seconds).
//  * The level's FilterTasks are chained behind its last BlockTask with a
//    ThreadPool::Completion token instead of a pool-wide Wait() barrier.
//
// Delivery (cliques, observer records, block-task descriptors, stats)
// happens only on the calling thread, levels in order and blocks in
// decomposition order, off buffered per-block results — which is what
// makes the emission byte-identical to the serial executor.
//
// Timing: every task records one begin/end window on the obs::NowMicros()
// timebase. The same windows feed the trace recorder (when one is
// resolved) and the LevelStats — analyze_seconds is the hull of the
// level's block+filter spans, overlap_seconds the decompose window
// clipped against earlier levels' analysis hulls, idle_seconds the
// worker capacity of the hull minus the block work inside it
// (obs/span_math.h).
//
// Synchronization: all cross-task state hangs off LevelRun records owned
// by a deque guarded by one engine mutex. Tasks receive stable element
// pointers taken under the lock (deques never relocate elements); a
// task's unlocked reads are confined to data whose writers finished
// before the mutex-protected state transition the reader observed.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "decision/block_cost.h"
#include "decision/features.h"
#include "decomp/block_analysis.h"
#include "decomp/cut.h"
#include "decomp/filter.h"
#include "decomp/parallel_analysis.h"
#include "exec/executor.h"
#include "graph/subgraph.h"
#include "mce/clique_sink.h"
#include "mce/workspace.h"
#include "obs/span_math.h"
#include "util/check.h"
#include "util/memory_budget.h"
#include "util/thread_pool.h"

namespace mce::exec {

namespace {

/// One kernel-range shard of a BlockTask: its range, buffered cliques, and
/// measured window. An unsplit block is the degenerate single-shard case.
struct ShardRun {
  decomp::KernelRange range;
  decomp::BlockAnalysisResult result;
  /// The shard's cliques (parent-graph ids, each sorted), in emission
  /// order; concatenating the shards in kernel order reproduces the
  /// undivided task's buffer byte for byte. A CliqueSink so the buffer can
  /// spill past the level's threshold without changing replay order.
  std::unique_ptr<CliqueSink> cliques;
  int64_t begin_us = 0;
  int64_t end_us = 0;
  double seconds = 0;
  size_t worker = 0;
};

/// Execution state of one BlockTask. The shard vector is sized at block
/// emission and never resized, so shard tasks hold stable element
/// pointers.
struct BlockExec {
  /// decision::EstimateBlockCost score, computed at emission; drives both
  /// the largest-first dispatch order and the split decision.
  double cost = 0;
  /// Progress units already retired by this block's finished shards
  /// (engine mutex). The last shard retires `cost - cost_retired`, so the
  /// retired total sums exactly to the registered cost however the block
  /// was split.
  double cost_retired = 0;
  /// The block's EstimatedBytes(), charged to the MemoryBudget at
  /// emission; zeroed wherever the charge is released.
  uint64_t block_bytes = 0;
  /// EstimateAnalysisBytes of the block — the per-shard workspace charge
  /// admission is decided against.
  uint64_t ws_bytes = 0;
  std::vector<ShardRun> shards;
  size_t shards_done = 0;  // engine mutex
  /// Whole-block aggregate, written by the last-finishing shard: `used`
  /// from any shard (the classification is deterministic per block) and
  /// the summed clique count / serial-equivalent seconds.
  decomp::BlockAnalysisResult result;
  double seconds = 0;
};

/// All state of one recursion level as it moves through the task graph.
struct LevelRun {
  uint32_t level = 0;
  Graph owned_graph;             // levels >= 1 own their induced subgraph
  const Graph* graph = nullptr;  // level 0 aliases the caller's graph
  /// owned_graph's tracked ResidentBytes; released in MaybeReleaseInputs.
  uint64_t graph_bytes = 0;
  /// Shared spill state of every sink this level creates: the engine's
  /// SpillConfig plus the level's running resident-byte total, which is
  /// what the per-level spill threshold is compared against.
  SpillContext spill;
  std::vector<NodeId> to_original;  // empty means identity (level 0)
  decomp::CutResult cut;
  bool has_child = false;
  bool child_induced = false;
  bool delivered = false;

  // BlockTask state. Deques so emitted tasks hold stable pointers while
  // the decompose task keeps appending.
  std::deque<decomp::Block> blocks;
  std::deque<BlockExec> execs;
  /// Tiny-block batch under construction (touched only by the level's
  /// decompose worker, before blocks_final). Blocks predicted under the
  /// split threshold are coalesced into one pool task aimed at about
  /// max_block_cost of work, the same granularity giant blocks are split
  /// down to — dispatch overhead then scales with predicted work, not
  /// block count.
  struct BatchItem {
    decomp::Block* block = nullptr;
    BlockExec* exec = nullptr;
    uint64_t index = 0;
  };
  std::vector<BatchItem> batch;
  double batch_cost = 0;
  bool blocks_final = false;
  size_t blocks_done = 0;
  bool analysis_signaled = false;
  ThreadPool::Completion analysis_token;

  // FilterTask state (levels >= 1). Chunks own disjoint clique ranges of
  // the concatenated shard sinks (block order, shards in kernel order —
  // the serial emission order) and buffer their survivors in per-chunk
  // sinks; delivery walks the sinks in chunk order.
  std::vector<const CliqueSink*> filter_sinks;
  size_t filter_total = 0;
  std::vector<std::unique_ptr<CliqueSink>> filter_out;
  size_t filter_chunks_left = 0;

  // m-core fallback: survivors buffered for calling-thread emission.
  bool fallback = false;
  std::unique_ptr<CliqueSink> fallback_cliques;

  decomp::LevelStats stats;

  // Task windows on the obs::NowMicros() timebase. The block windows live
  // in `runs`; filter chunk windows are appended under the engine mutex.
  int64_t decompose_begin_us = 0;
  int64_t decompose_end_us = 0;
  std::vector<std::pair<int64_t, int64_t>> filter_spans;
  int64_t fallback_begin_us = 0;
  int64_t fallback_end_us = 0;

  bool ready = false;
};

class PooledEngine {
 public:
  PooledEngine(const Graph& g, const decomp::FindMaxCliquesOptions& options,
               size_t num_threads, const BlockTaskSink& sink,
               const decomp::LeveledCliqueCallback& emit)
      : original_(g),
        options_(options),
        sink_(sink),
        emit_(emit),
        blocks_options_(BlocksOptionsFor(options)),
        analysis_options_(AnalysisOptionsFor(options)),
        trace_(ResolveTrace(options)),
        metrics_(ResolveMetrics(options)),
        progress_(options.progress),
        profile_on_(options.profile),
        budget_(options.memory_budget_bytes),
        workspaces_(std::max<size_t>(1, num_threads)),
        pool_(std::max<size_t>(1, num_threads)) {
    spill_config_.dir = options.spill_dir;
    spill_config_.threshold_bytes = decomp::EffectiveSpillThreshold(options);
    spill_config_.budget = &budget_;
    spill_config_.trace = trace_;
    spill_config_.metrics = metrics_.SpillInstruments();
    spill_config_.progress = progress_;
  }

  decomp::StreamingStats Run() {
    decomp::StreamingStats out;
    // Heartbeat gauges: pending pool tasks (generic pulls included)
    // plus the cost-ordered analysis backlog, and the budget's live
    // charge. The closure captures `this`; the guard detaches it on every
    // exit from Run — including unwinds out of the user's emit callback —
    // before the engine (and its pool) dies under a live sampler.
    obs::ScopedGaugeSource gauge_guard(progress_, [this] {
      obs::GaugeSample s;
      s.queue_depth = pool_.QueueDepth() + queue_.Size();
      s.mem_charged_bytes = budget_.charged();
      s.mem_peak_bytes = budget_.peak();
      return s;
    });
    // ReduceTask: runs on the calling thread before the root decompose is
    // even submitted, so the trivial cliques hold the same leading stream
    // positions as on the serial engine. The level chain decomposes the
    // reduced graph; original_ stays the Lemma-1 reference.
    prep_.Run(original_, options_, trace_, metrics_, emit_, &out,
              profile_on_ ? &profile_ : nullptr);
    expansion_ = prep_.map();
    // The pipeline graph is resident for the whole run (an mmap-backed
    // graph reports zero here — its pages are reclaimable).
    const uint64_t pipeline_graph_bytes =
        prep_.pipeline_graph().ResidentBytes();
    ChargeTracked(pipeline_graph_bytes);
    auto root = std::make_unique<LevelRun>();
    root->level = 0;
    root->graph = &prep_.pipeline_graph();
    root->spill.config = &spill_config_;
    root->spill.level = 0;
    LevelRun* root_ptr = root.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      levels_.push_back(std::move(root));
    }
    pool_.Submit([this, root_ptr] { DecomposeTask(root_ptr, nullptr); });

    size_t next = 0;
    for (;;) {
      LevelRun* lr = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] {
          return (next < levels_.size() && levels_[next]->ready) ||
                 (chain_done_ && next >= levels_.size());
        });
        if (next >= levels_.size()) break;
        lr = levels_[next].get();
      }
      DeliverLevel(lr, out);
      {
        std::lock_guard<std::mutex> lock(mu_);
        lr->delivered = true;
        MaybeReleaseInputs(lr);
      }
      ++next;
    }
    pool_.Wait();
    ReleaseTracked(pipeline_graph_bytes);
    out.memory.budget_bytes = budget_.limit();
    out.memory.peak_tracked_bytes = budget_.peak();
    out.memory.admission_stalls =
        admission_stalls_.load(std::memory_order_relaxed);
    out.memory.admission_stall_seconds =
        static_cast<double>(
            admission_stall_micros_.load(std::memory_order_relaxed)) *
        1e-6;
    if (profile_on_) out.profile = profile_.Snapshot();
    metrics_.RecordRun(out);
    if (progress_ != nullptr) {
      progress_->MarkComplete();
      out.progress = progress_->Accounting();
    }
    return out;
  }

 private:
  /// DecomposeTask(level): induce (levels >= 1), Cut, dispatch the child
  /// level's decompose, then stream blocks into BlockTasks.
  void DecomposeTask(LevelRun* lr, LevelRun* parent) {
    // The whole task — induce, cut, block growth, cost scoring — runs on
    // this one worker, so a single counter window covers it. The window
    // closes inside RecordDecomposeSpan, before the m-core fallback (its
    // own task kind) starts.
    obs::ScopedCounters decompose_counters;
    if (profile_on_) decompose_counters.Begin();
    lr->decompose_begin_us = obs::NowMicros();
    if (progress_ != nullptr) progress_->BeginLevel(lr->level);
    if (parent != nullptr) {
      InducedSubgraph sub = Induce(*parent->graph, parent->cut.hubs);
      lr->to_original = ComposeToOriginal(parent->to_original, sub.to_parent);
      lr->owned_graph = std::move(sub.graph);
      lr->graph = &lr->owned_graph;
      lr->graph_bytes = lr->owned_graph.ResidentBytes();
      ChargeTracked(lr->graph_bytes);
      std::lock_guard<std::mutex> lock(mu_);
      parent->child_induced = true;
      MaybeReleaseInputs(parent);
    }
    const Graph& graph = *lr->graph;
    lr->stats.num_nodes = graph.num_nodes();
    lr->stats.num_edges = graph.num_edges();
    lr->cut = decomp::Cut(graph, options_.max_block_size);
    lr->stats.feasible = lr->cut.feasible.size();
    lr->stats.hubs = lr->cut.hubs.size();

    if (lr->cut.feasible.empty() && graph.num_nodes() > 0) {
      // Sparsity precondition violated: enumerate the m-core directly as
      // one indivisible task on this worker, buffering the survivors.
      {
        std::lock_guard<std::mutex> lock(mu_);
        chain_done_ = true;
      }
      lr->fallback = true;
      lr->decompose_end_us = obs::NowMicros();
      RecordDecomposeSpan(lr, decompose_counters);
      RunFallback(lr);
      {
        std::lock_guard<std::mutex> lock(mu_);
        lr->ready = true;
      }
      cv_.notify_all();
      return;
    }

    if (!lr->cut.hubs.empty()) {
      // Cross-level pipelining: the child depends only on this cut's hub
      // set, so its decomposition is dispatched before this level's
      // blocks are built, overlapping the tail of this level's analysis.
      auto child = std::make_unique<LevelRun>();
      child->level = lr->level + 1;
      child->spill.config = &spill_config_;
      child->spill.level = child->level;
      LevelRun* child_ptr = child.get();
      {
        std::lock_guard<std::mutex> lock(mu_);
        lr->has_child = true;
        levels_.push_back(std::move(child));
      }
      pool_.Submit([this, child_ptr, lr] { DecomposeTask(child_ptr, lr); });
    } else {
      std::lock_guard<std::mutex> lock(mu_);
      chain_done_ = true;
    }

    // The filter stage chains behind the level's last BlockTask.
    lr->analysis_token = pool_.CreateCompletion(1);
    pool_.SubmitAfter(lr->analysis_token, [this, lr] { PlanFilter(lr); });

    decomp::BuildBlocksStreaming(
        graph, lr->cut.feasible, blocks_options_,
        [this, lr](decomp::Block&& b) { EmitBlock(lr, std::move(b)); });
    // The tail batch flushes before blocks_final so every emitted block
    // has a task in flight when the completion check below runs.
    FlushBatch(lr);

    bool signal = false;
    ThreadPool::Completion token;
    {
      std::lock_guard<std::mutex> lock(mu_);
      lr->blocks_final = true;
      lr->stats.blocks = lr->blocks.size();
      lr->decompose_end_us = obs::NowMicros();
      signal = !lr->analysis_signaled && lr->blocks_done == lr->blocks.size();
      if (signal) {
        lr->analysis_signaled = true;
        token = lr->analysis_token;
      }
    }
    RecordDecomposeSpan(lr, decompose_counters);
    if (signal) token.Signal();
  }

  /// The level's kDecompose span; call after decompose_end_us and the cut
  /// stats are final (this worker wrote both). Closes the task's counter
  /// window and books it under the decompose bucket.
  void RecordDecomposeSpan(LevelRun* lr, obs::ScopedCounters& counters) {
    obs::CounterDelta delta;
    if (counters.active()) {
      delta = counters.Finish();
      profile_.Add(
          obs::SpanKind::kDecompose, lr->level,
          static_cast<double>(lr->decompose_end_us - lr->decompose_begin_us) *
              1e-6,
          0, delta);
    }
    if (trace_ == nullptr) return;
    obs::TraceEvent e;
    e.begin_us = lr->decompose_begin_us;
    e.end_us = lr->decompose_end_us;
    e.kind = obs::SpanKind::kDecompose;
    e.level = lr->level;
    e.args[0] = lr->stats.num_nodes;
    e.args[1] = lr->stats.num_edges;
    e.args[2] = lr->stats.feasible;
    e.args[3] = lr->stats.hubs;
    e.prof = delta;
    trace_->Record(e);
  }

  /// Emission of one block by DecomposeTask(level): score it, plan its
  /// shards, and dispatch them through the cost-ordered queue.
  void EmitBlock(LevelRun* lr, decomp::Block&& b) {
    // The predicted cost reuses the bestfit classification features —
    // computed here, on the decompose worker, so dispatch order and the
    // split decision are fixed before any worker picks the block up.
    const double cost = decision::EstimateBlockCost(b.subgraph.graph);
    // Registered at emission — before any shard can run — so a progress
    // sampler sees the work as pending the moment it exists.
    if (progress_ != nullptr) progress_->RegisterBlock(lr->level, cost);
    const size_t kernels = b.kernel_local.size();
    const bool splittable = options_.split_blocks &&
                            options_.max_block_cost > 0 &&
                            pool_.num_threads() > 1;
    const size_t shards =
        splittable
            ? decision::PlanShardCount(cost, options_.max_block_cost, kernels)
            : 1;

    decomp::Block* block = nullptr;
    BlockExec* exec = nullptr;
    uint64_t index = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      index = lr->blocks.size();
      lr->blocks.push_back(std::move(b));
      lr->execs.emplace_back();
      block = &lr->blocks.back();
      exec = &lr->execs.back();
      exec->cost = cost;
      exec->shards.resize(shards);
    }
    // Materialized-block charge: the block exists from emission until its
    // last shard frees it (or delivery, when an observer/sink holds it).
    // Gated like an analysis admission — while analyses are in flight the
    // decompose worker waits for their releases instead of piling blocks
    // past the budget; the shard tasks already dispatched for earlier
    // blocks keep the pool busy meanwhile.
    exec->block_bytes = block->EstimatedBytes();
    exec->ws_bytes = EstimateAnalysisBytes(*block);
    if (budget_.limited() && budget_.WouldExceed(exec->block_bytes)) {
      // About to wait: dispatch the coalesced batch first, so every
      // charged block has a runnable analysis and the wait cannot starve
      // on blocks only this worker could have dispatched.
      FlushBatch(lr);
    }
    GateCharge(lr->level, exec->block_bytes, /*admit_analysis=*/false);
    // Shard sinks are created here, on the decompose worker, before any
    // shard task can observe its slot through the dispatch queue.
    for (ShardRun& run : exec->shards) {
      run.cliques = MakeCliqueSink(&lr->spill);
    }
    if (shards > 1) metrics_.RecordSplit(shards);
    if (shards == 1 && splittable && cost < options_.max_block_cost) {
      // Tiny block: coalesce instead of dispatching. The batch flushes
      // once it accumulates a split threshold's worth of predicted work
      // (and unconditionally at decompose end), so every pool task —
      // shard, batch, or lone mid-sized block — carries comparable work.
      exec->shards[0].range = {0, kernels};
      lr->batch.push_back({block, exec, index});
      lr->batch_cost += cost;
      // Batches flush about a split-threshold's worth of work at a time:
      // large enough that dispatch and context-switch overhead is
      // amortized (tiny tasks on few cores otherwise spend more time in
      // handoffs than analysis), small enough that a level still breaks
      // into many independently schedulable tasks. Narrow pools coarsen
      // the batches further — with few workers there is little balancing
      // to gain, and handoff overhead dominates; wide pools keep them at
      // the split granularity so every worker has work to pull.
      const double mult = pool_.num_threads() <= 4 ? 4.0 : 1.0;
      if (lr->batch_cost >= mult * options_.max_block_cost) FlushBatch(lr);
      return;
    }
    // Contiguous, even kernel ranges; every shard carries an equal share
    // of the predicted cost into the dispatch order.
    const double shard_cost = cost / static_cast<double>(shards);
    for (size_t s = 0; s < shards; ++s) {
      ShardRun& run = exec->shards[s];
      run.range.begin = kernels * s / shards;
      run.range.end = kernels * (s + 1) / shards;
      queue_.Push(shard_cost, [this, lr, block, exec, s, index] {
        ShardTask(lr, block, exec, s, index);
      });
      // One generic pull per queued task: the pool stays FIFO while the
      // queue decides which analysis task each freed worker runs —
      // highest predicted cost first (DESIGN.md §7).
      pool_.Submit([this] { queue_.RunNext(); });
    }
  }

  /// Dispatches the level's pending tiny-block batch as one pool task
  /// whose scheduling cost is the batch's summed prediction. Runs on the
  /// level's decompose worker (the only writer of the batch fields).
  void FlushBatch(LevelRun* lr) {
    if (lr->batch.empty()) return;
    const double cost = lr->batch_cost;
    queue_.Push(cost, [this, lr, items = std::move(lr->batch)] {
      for (const LevelRun::BatchItem& it : items) {
        ShardTask(lr, it.block, it.exec, 0, it.index);
      }
    });
    lr->batch = {};
    lr->batch_cost = 0;
    pool_.Submit([this] { queue_.RunNext(); });
  }

  /// BlockShardTask(level, i, s): Algorithm 4 over the shard's kernel
  /// range, into the shard's buffer slot. The last-finishing shard
  /// aggregates the block and advances the level's completion state.
  void ShardTask(LevelRun* lr, decomp::Block* block, BlockExec* exec,
                 size_t shard, uint64_t index) {
    const size_t worker_index = ThreadPool::CurrentWorkerIndex();
    const size_t worker =
        worker_index == ThreadPool::kNotAWorker ? 0 : worker_index;
    ShardRun& run = exec->shards[shard];
    // Budget admission: under a limit, a shard whose workspace estimate
    // would push the tracked total past the budget waits for in-flight
    // analyses to finish (the stall happens before begin_us so it never
    // inflates the block's measured window).
    AdmitAnalysis(lr->level, exec->ws_bytes);
    // Counters open after the admission stall so a budget wait never
    // shows up as analysis work.
    obs::ScopedCounters counters;
    if (profile_on_) counters.Begin();
    run.begin_us = obs::NowMicros();
    // Level-0 buffers are the emission source and must hold each clique
    // sorted; deeper levels' buffers only feed the filter, which sorts.
    // With the reduction prepass active, level 0 additionally re-expands
    // through the twin classes and drops covered cliques here, at
    // buffering time — level 0 has no filter stage to do it later.
    const bool canonicalize = lr->level == 0;
    const reduce::ReductionMap* const expansion = expansion_;
    Clique expand_tmp;
    run.result = decomp::AnalyzeBlock(
        *block, analysis_options_,
        [&run, canonicalize, expansion, &expand_tmp](
            std::span<const NodeId> c) {
          if (canonicalize) {
            if (expansion != nullptr) {
              if (expansion->ExpandClique(c, &expand_tmp)) {
                run.cliques->AppendRaw(expand_tmp);  // expansion is sorted
              }
            } else {
              run.cliques->Append(c);
            }
          } else {
            run.cliques->AppendRaw(c);
          }
        },
        &workspaces_[worker], run.range);
    run.end_us = obs::NowMicros();
    run.seconds = static_cast<double>(run.end_us - run.begin_us) * 1e-6;
    run.worker = worker;
    const size_t total = exec->shards.size();
    obs::CounterDelta delta;
    if (counters.active()) {
      delta = counters.Finish();
      profile_.Add(total > 1 ? obs::SpanKind::kBlockShard
                             : obs::SpanKind::kBlock,
                   lr->level, run.seconds, run.result.num_cliques, delta);
    }
    if (trace_ != nullptr) {
      if (total > 1) {
        obs::TraceEvent e = MakeBlockShardSpan(run.begin_us, run.end_us,
                                               lr->level, index, run.range,
                                               run.result.num_cliques, total,
                                               run.result.used);
        // Equal predicted share per shard — matching the dispatch queue.
        e.cost = exec->cost / static_cast<double>(total);
        e.prof = delta;
        trace_->Record(e);
      } else {
        obs::TraceEvent e = MakeBlockSpan(run.begin_us, run.end_us, *block,
                                          run.result, lr->level, index);
        e.cost = exec->cost;
        e.prof = delta;
        trace_->Record(e);
      }
    }
    FinishAnalysis(exec->ws_bytes);

    bool block_done = false;
    double retire = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      block_done = ++exec->shards_done == total;
      if (progress_ != nullptr) {
        // Equal predicted share per shard; the last shard retires the
        // exact residual so the block's retired total equals its
        // registered cost bit for bit.
        retire = block_done
                     ? std::max(exec->cost - exec->cost_retired, 0.0)
                     : exec->cost / static_cast<double>(total);
        exec->cost_retired += retire;
      }
    }
    if (progress_ != nullptr) {
      if (block_done) {
        progress_->RetireBlock(lr->level, retire);
      } else {
        progress_->RetireCost(retire);
      }
    }
    if (!block_done) return;

    // All shard writers finished before the shards_done transition this
    // thread observed, so their slots are safe to read unlocked.
    exec->result.used = exec->shards.front().result.used;
    for (const ShardRun& s : exec->shards) {
      exec->result.num_cliques += s.result.num_cliques;
      exec->seconds += s.seconds;
    }
    // Workload metrics count whole blocks, however many shards ran them.
    metrics_.RecordBlock(*block, exec->result, exec->seconds);
    if (!options_.block_observer && !sink_) {
      // Without an observer or sink, delivery never reads the block again
      // — only this task's aggregates. Freeing the subgraph here keeps the
      // engine's live footprint near the serial one-block-at-a-time
      // profile instead of holding every block until the level delivers.
      *block = decomp::Block();
      ReleaseBlockCharge(exec);
    }

    bool signal = false;
    ThreadPool::Completion token;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++lr->blocks_done;
      signal = lr->blocks_final && !lr->analysis_signaled &&
               lr->blocks_done == lr->blocks.size();
      if (signal) {
        lr->analysis_signaled = true;
        token = lr->analysis_token;
      }
    }
    if (signal) token.Signal();
  }

  /// Runs after the level's last BlockTask: partitions the buffered
  /// cliques into FilterTask chunks (levels >= 1), or marks the level
  /// ready directly (level 0 needs no filter).
  void PlanFilter(LevelRun* lr) {
    // The completion token ordered this task after every BlockTask of the
    // level, so the buffers are safe to read without the lock. Shards are
    // listed in kernel order within each block, so the sink concatenation
    // is the serial emission order — chunk tasks stream their ranges out
    // of it with ForEachCliqueInRange, never materializing spans.
    if (lr->level > 0) {
      size_t total = 0;
      for (const BlockExec& exec : lr->execs) {
        for (const ShardRun& run : exec.shards) {
          lr->filter_sinks.push_back(run.cliques.get());
          total += run.cliques->size();
        }
      }
      lr->filter_total = total;
      const std::vector<std::pair<size_t, size_t>> chunks =
          FilterChunks(total, pool_.num_threads());
      if (!chunks.empty()) {
        lr->filter_out.reserve(chunks.size());
        for (size_t c = 0; c < chunks.size(); ++c) {
          lr->filter_out.push_back(MakeCliqueSink(&lr->spill));
        }
        {
          std::lock_guard<std::mutex> lock(mu_);
          lr->filter_chunks_left = chunks.size();
        }
        for (size_t c = 0; c < chunks.size(); ++c) {
          const size_t begin = chunks[c].first;
          const size_t end = chunks[c].second;
          pool_.Submit([this, lr, begin, end, c] {
            FilterChunkTask(lr, begin, end, c);
          });
        }
        return;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      lr->ready = true;
    }
    cv_.notify_all();
  }

  /// FilterTask(level, chunk): the telescoped Lemma-1 checks over one
  /// contiguous slice of the level's buffered cliques, survivors appended
  /// in slice order to the chunk's own arena.
  void FilterChunkTask(LevelRun* lr, size_t begin, size_t end, size_t chunk) {
    obs::ScopedCounters counters;
    if (profile_on_) counters.Begin();
    const int64_t begin_us = obs::NowMicros();
    CliqueSink& out = *lr->filter_out[chunk];
    Clique scratch;
    Clique expand_scratch;
    uint64_t kept = 0;
    decomp::ForEachCliqueInRange(
        lr->filter_sinks, begin, end, [&](std::span<const NodeId> c) {
          if (MapExpandAndFilterClique(original_, c, lr->to_original,
                                       lr->level, expansion_, &expand_scratch,
                                       &scratch)) {
            out.AppendRaw(scratch);
            ++kept;
          }
        });
    const int64_t end_us = obs::NowMicros();
    obs::CounterDelta delta;
    if (counters.active()) {
      delta = counters.Finish();
      profile_.Add(obs::SpanKind::kFilter, lr->level,
                   static_cast<double>(end_us - begin_us) * 1e-6, kept,
                   delta);
    }
    if (trace_ != nullptr) {
      obs::TraceEvent e;
      e.begin_us = begin_us;
      e.end_us = end_us;
      e.kind = obs::SpanKind::kFilter;
      e.level = lr->level;
      e.index = chunk;
      e.args[0] = end - begin;
      e.args[1] = kept;
      e.prof = delta;
      trace_->Record(e);
    }
    metrics_.RecordFilter(end - begin, kept);
    bool done = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      lr->filter_spans.emplace_back(begin_us, end_us);
      done = --lr->filter_chunks_left == 0;
      if (done) lr->ready = true;
    }
    if (done) cv_.notify_all();
  }

  void RunFallback(LevelRun* lr) {
    decomp::LevelStats& stats = lr->stats;
    lr->fallback_cliques = MakeCliqueSink(&lr->spill);
    double fallback_cost = 0;
    if (progress_ != nullptr) {
      // The fallback MCE is one indivisible unit of work, scored with
      // the block cost model so the denominator stays in one currency.
      fallback_cost = decision::EstimateBlockCost(*lr->graph);
      progress_->RegisterBlock(lr->level, fallback_cost);
    }
    obs::ScopedCounters counters;
    if (profile_on_) counters.Begin();
    lr->fallback_begin_us = obs::NowMicros();
    Clique scratch;
    Clique expand_scratch;
    uint64_t produced = 0;
    EnumerateMaximalCliques(*lr->graph, options_.fallback,
                            [&](std::span<const NodeId> c) {
                              ++produced;
                              if (MapExpandAndFilterClique(
                                      original_, c, lr->to_original,
                                      lr->level, expansion_, &expand_scratch,
                                      &scratch)) {
                                lr->fallback_cliques->AppendRaw(scratch);
                              }
                            });
    lr->fallback_end_us = obs::NowMicros();
    if (progress_ != nullptr) progress_->RetireBlock(lr->level, fallback_cost);
    stats.cliques = produced;
    stats.analyze_seconds =
        static_cast<double>(lr->fallback_end_us - lr->fallback_begin_us) *
        1e-6;
    stats.block_seconds = stats.analyze_seconds;
    stats.busiest_worker_seconds = stats.analyze_seconds;
    stats.analyze_threads = 1;  // one worker ran the indivisible task
    obs::CounterDelta delta;
    if (counters.active()) {
      delta = counters.Finish();
      profile_.Add(obs::SpanKind::kFallback, lr->level,
                   stats.analyze_seconds, produced, delta);
    }
    if (trace_ != nullptr) {
      obs::TraceEvent e;
      e.begin_us = lr->fallback_begin_us;
      e.end_us = lr->fallback_end_us;
      e.kind = obs::SpanKind::kFallback;
      e.level = lr->level;
      e.args[0] = lr->graph->num_nodes();
      e.args[1] = lr->graph->num_edges();
      e.args[2] = produced;
      e.prof = delta;
      trace_->Record(e);
    }
    if (lr->level > 0) {
      metrics_.RecordFilter(produced, lr->fallback_cliques->size());
    }
  }

  /// Calling thread only. Emits the level's cliques, replays observer and
  /// sink in block order, and finalizes the level's stats.
  void DeliverLevel(LevelRun* lr, decomp::StreamingStats& out) {
    decomp::LevelStats& stats = lr->stats;
    const uint64_t emitted_before = out.cliques_emitted;
    // The level's analysis spans (block + filter tasks, or the fallback),
    // rebased to seconds since the engine epoch — the exact windows the
    // trace recorder saw.
    std::vector<obs::TimeRange> analyze_spans;
    if (lr->fallback) {
      out.used_fallback = true;
      analyze_spans.push_back(
          Range(lr->fallback_begin_us, lr->fallback_end_us));
      lr->fallback_cliques->ForEach([&](std::span<const NodeId> c) {
        ++out.cliques_emitted;
        emit_(c, lr->level);
      });
    } else {
      std::vector<double> worker_seconds(pool_.num_threads(), 0.0);
      uint64_t produced = 0;
      for (size_t i = 0; i < lr->execs.size(); ++i) {
        const BlockExec& exec = lr->execs[i];
        produced += exec.result.num_cliques;
        stats.block_seconds += exec.seconds;
        if (exec.shards.size() > 1) ++stats.block_splits;
        for (const ShardRun& run : exec.shards) {
          worker_seconds[run.worker] += run.seconds;
          analyze_spans.push_back(Range(run.begin_us, run.end_us));
        }
        // Observer and sink see one record per block — the aggregated
        // whole-block result — whether or not it ran as shards, so their
        // streams match the serial executor's.
        if (options_.block_observer) {
          options_.block_observer(decomp::MakeBlockTaskRecord(
              lr->blocks[i], exec.result, exec.seconds, lr->level));
        }
        if (sink_) {
          sink_(MakeBlockTaskDescriptor(lr->blocks[i], exec.result,
                                        exec.seconds, lr->level, i,
                                        exec.cost));
        }
      }
      stats.cliques = produced;
      stats.busiest_worker_seconds =
          *std::max_element(worker_seconds.begin(), worker_seconds.end());
      stats.analyze_threads = static_cast<uint32_t>(pool_.num_threads());
      for (const auto& [begin_us, end_us] : lr->filter_spans) {
        analyze_spans.push_back(Range(begin_us, end_us));
      }
      stats.analyze_seconds = obs::Hull(analyze_spans).Length();

      if (lr->level == 0) {
        // Identity mapping and per-clique sorting already happened in the
        // per-shard buffers, so the merge is a plain replay: blocks in
        // decomposition order, shards in kernel order.
        for (const BlockExec& exec : lr->execs) {
          for (const ShardRun& run : exec.shards) {
            run.cliques->ForEach([&](std::span<const NodeId> c) {
              ++out.cliques_emitted;
              emit_(c, lr->level);
            });
          }
        }
      } else {
        // Chunk sinks in chunk order = concatenated-sink order = serial
        // order.
        for (const std::unique_ptr<CliqueSink>& chunk : lr->filter_out) {
          chunk->ForEach([&](std::span<const NodeId> c) {
            ++out.cliques_emitted;
            emit_(c, lr->level);
          });
        }
      }
    }
    const obs::TimeRange decompose_window =
        Range(lr->decompose_begin_us, lr->decompose_end_us);
    stats.decompose_seconds = decompose_window.Length();
    // The pipelining win: how long this level's decomposition ran while
    // an earlier level was still analyzing — the decompose span clipped
    // against the union of earlier levels' analysis hulls.
    stats.overlap_seconds = obs::OverlapLength(decompose_window,
                                               analyze_windows_);
    const obs::TimeRange analyze_hull = obs::Hull(analyze_spans);
    if (!analyze_hull.Empty()) analyze_windows_.push_back(analyze_hull);
    // Idle capacity, attributed by cause: work starvation inside the
    // level's own spans vs. hull gaps where the pool was parked at a
    // task-graph boundary (obs/span_math.h).
    const obs::IdleSplit idle =
        obs::SplitIdle(analyze_spans, stats.block_seconds,
                       static_cast<int>(stats.analyze_threads));
    stats.idle_seconds = idle.idle_seconds;
    stats.barrier_idle_seconds = idle.barrier_idle_seconds;
    out.levels.push_back(stats);

    // Spill totals of every sink this level created, absorbed before the
    // sinks are destroyed.
    const auto absorb = [&out](const CliqueSink* s) {
      if (s == nullptr) return;
      out.memory.spill_chunks += s->spilled_chunks();
      out.memory.spill_bytes += s->spilled_bytes();
    };
    for (BlockExec& exec : lr->execs) {
      // Blocks still materialized (observer/sink runs hold them until
      // delivery) release their charge here.
      ReleaseBlockCharge(&exec);
      for (const ShardRun& run : exec.shards) absorb(run.cliques.get());
    }
    for (const std::unique_ptr<CliqueSink>& chunk : lr->filter_out) {
      absorb(chunk.get());
    }
    absorb(lr->fallback_cliques.get());

    // Free the bulky per-level state now that it is delivered. Destroying
    // the sinks releases their residual byte accounting.
    lr->blocks.clear();
    lr->execs.clear();
    lr->filter_sinks = {};
    lr->filter_out.clear();
    lr->fallback_cliques.reset();

    if (progress_ != nullptr) {
      // Cliques count at delivery (post-filter, the emission the caller
      // saw), levels finish in delivery order — matching the serial walk.
      progress_->AddCliques(out.cliques_emitted - emitted_before);
      progress_->FinishLevel(lr->level);
    }
  }

  /// A microsecond window rebased to seconds since the engine epoch.
  obs::TimeRange Range(int64_t begin_us, int64_t end_us) const {
    return obs::TimeRange{
        static_cast<double>(begin_us - epoch_us_) * 1e-6,
        static_cast<double>(end_us - epoch_us_) * 1e-6};
  }

  /// mu_ held. The level's graph feeds its child's Induce, so it is freed
  /// only once the level is delivered and the child (if any) has induced.
  void MaybeReleaseInputs(LevelRun* lr) {
    if (!lr->delivered) return;
    if (lr->has_child && !lr->child_induced) return;
    lr->owned_graph = Graph();
    lr->graph = nullptr;
    lr->cut = decomp::CutResult();
    lr->to_original = {};
    ReleaseTracked(lr->graph_bytes);
    lr->graph_bytes = 0;
  }

  /// Charges `bytes` against the budget and the mem.bytes_charged counter.
  void ChargeTracked(uint64_t bytes) {
    if (bytes == 0) return;
    budget_.Charge(bytes);
    metrics_.RecordCharge(bytes);
  }

  /// Releases `bytes` and wakes any admission waiter.
  void ReleaseTracked(uint64_t bytes) {
    if (bytes == 0) return;
    budget_.Release(bytes);
    if (budget_.limited()) admit_cv_.notify_all();
  }

  /// Admission gate for one analysis task's workspace charge. Under a
  /// budget, a task that would push the tracked total past the limit waits
  /// while other analyses are in flight — the first analysis always
  /// admits, so an undersized budget degrades to serial admission instead
  /// of deadlocking.
  void AdmitAnalysis(uint32_t level, uint64_t bytes) {
    GateCharge(level, bytes, /*admit_analysis=*/true);
  }

  /// The shared budget gate behind AdmitAnalysis and EmitBlock's
  /// materialized-block charge. Waits while charging `bytes` would cross
  /// the budget *and* something else holds gated bytes it will release.
  /// The two callers escape differently:
  ///  - an analysis waits only while other analyses run (in_flight > 0):
  ///    the first analysis always admits, so an undersized budget
  ///    degrades to serial admission instead of deadlocking;
  ///  - the decompose worker additionally waits while *materialized
  ///    blocks* are outstanding — every one of them has a dispatched
  ///    analysis (EmitBlock flushes its coalesce batch before gating)
  ///    whose completion releases the block, so block emission is strictly
  ///    budget-bound on multi-worker pools. Single-worker pools skip the
  ///    block wait: the decompose worker is the only one who could run
  ///    those analyses.
  /// The wait polls: sink flushes release budget without an engine
  /// notification, so a pure wait could miss its wakeup.
  void GateCharge(uint32_t level, uint64_t bytes, bool admit_analysis) {
    if (!budget_.limited()) {
      ChargeTracked(bytes);
      return;
    }
    {
      std::unique_lock<std::mutex> lock(admit_mu_);
      // Waiting on outstanding blocks is sound only when blocks free at
      // shard completion: with an observer or task sink they are held
      // until delivery, which needs this decompose task to finish first —
      // waiting on them here would deadlock the level against itself.
      const bool eager_block_release = !options_.block_observer && !sink_;
      const auto must_wait = [&] {
        if (!budget_.WouldExceed(bytes)) return false;
        if (analyses_in_flight_ > 0) return true;
        return !admit_analysis && eager_block_release &&
               pool_.num_threads() > 1 && blocks_outstanding_ > 0;
      };
      if (must_wait()) {
        const int64_t begin_us = obs::NowMicros();
        while (must_wait()) {
          admit_cv_.wait_for(lock, std::chrono::milliseconds(2));
        }
        const int64_t end_us = obs::NowMicros();
        admission_stalls_.fetch_add(1, std::memory_order_relaxed);
        admission_stall_micros_.fetch_add(
            static_cast<uint64_t>(end_us - begin_us),
            std::memory_order_relaxed);
        metrics_.RecordAdmissionStall(static_cast<uint64_t>(end_us - begin_us));
        if (trace_ != nullptr) {
          obs::TraceEvent e;
          e.begin_us = begin_us;
          e.end_us = end_us;
          e.kind = obs::SpanKind::kAdmission;
          e.level = level;
          e.args[0] = bytes;
          e.args[1] = budget_.charged();
          e.args[2] = budget_.limit();
          trace_->Record(e);
        }
      }
      if (admit_analysis) {
        ++analyses_in_flight_;
      } else {
        ++blocks_outstanding_;
      }
      // Charged under admit_mu_: were the charge outside, every waiter
      // released by one budget check could charge concurrently and
      // overshoot together — the check and the charge must be atomic.
      ChargeTracked(bytes);
    }
  }

  /// Releases a materialized block's charge and its outstanding slot.
  /// No-op when the block's bytes were already released (or never gated).
  void ReleaseBlockCharge(BlockExec* exec) {
    if (exec->block_bytes == 0) return;
    if (budget_.limited()) {
      std::lock_guard<std::mutex> lock(admit_mu_);
      MCE_DCHECK(blocks_outstanding_ > 0);
      --blocks_outstanding_;
    }
    ReleaseTracked(exec->block_bytes);
    exec->block_bytes = 0;
  }

  /// Releases an admitted analysis's workspace charge and its in-flight
  /// slot.
  void FinishAnalysis(uint64_t bytes) {
    ReleaseTracked(bytes);
    if (budget_.limited()) {
      {
        std::lock_guard<std::mutex> lock(admit_mu_);
        --analyses_in_flight_;
      }
      admit_cv_.notify_all();
    }
  }

  const Graph& original_;
  const decomp::FindMaxCliquesOptions& options_;
  const BlockTaskSink& sink_;
  const decomp::LeveledCliqueCallback& emit_;
  /// The ReduceTask's state; set once in Run() before any pipeline task
  /// is submitted, read-only afterwards (safe unlocked from workers).
  ReducePrepass prep_;
  const reduce::ReductionMap* expansion_ = nullptr;
  const decomp::BlocksOptions blocks_options_;
  const decomp::BlockAnalysisOptions analysis_options_;
  obs::TraceRecorder* const trace_;
  RunMetrics metrics_;
  /// Live progress accounting; null when the run is not observed.
  obs::ProgressEstimator* const progress_;
  /// Per-task hardware-counter attribution (options.profile). Pooled
  /// tasks run on disjoint worker threads, so every task's delta is
  /// accumulated as-is — per-kind sums reproduce the run total exactly.
  const bool profile_on_;
  obs::ProfileAccumulator profile_;

  // Memory accounting. Declared before levels_: the sinks owned by
  // LevelRun records release against budget_ in their destructors, so the
  // budget must outlive the level deque (members destroy in reverse
  // declaration order).
  MemoryBudget budget_;
  SpillConfig spill_config_;
  std::mutex admit_mu_;
  std::condition_variable admit_cv_;
  size_t analyses_in_flight_ = 0;   // admit_mu_
  size_t blocks_outstanding_ = 0;   // admit_mu_; blocks charged, not freed
  std::atomic<uint64_t> admission_stalls_{0};
  std::atomic<uint64_t> admission_stall_micros_{0};

  /// Zero point of the run's stats timebase (spans stay absolute; only
  /// the derived LevelStats windows are rebased).
  const int64_t epoch_us_ = obs::NowMicros();
  /// Analysis hulls of delivered levels, in level order (calling thread
  /// only); feeds the overlap stat of the levels below them.
  std::vector<obs::TimeRange> analyze_windows_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<LevelRun>> levels_;
  bool chain_done_ = false;
  std::vector<BlockWorkspace> workspaces_;
  /// Ready analysis tasks (shards and unsplit blocks), dispatched largest
  /// predicted cost first by generic pull thunks on the pool.
  CostOrderedQueue queue_;
  // Declared last: its destructor drains tasks that touch the state above.
  ThreadPool pool_;
};

class PooledExecutor final : public Executor {
 public:
  explicit PooledExecutor(size_t num_threads)
      : num_threads_(std::max<size_t>(1, num_threads)) {}

  decomp::StreamingStats Run(const Graph& g,
                             const decomp::FindMaxCliquesOptions& options,
                             const decomp::LeveledCliqueCallback& emit) override {
    MCE_CHECK_GE(options.max_block_size, 1u);
    PooledEngine engine(g, options, num_threads_, sink_, emit);
    return engine.Run();
  }

 private:
  size_t num_threads_;
};

}  // namespace

std::unique_ptr<Executor> MakePooledExecutor(size_t num_threads) {
  return std::make_unique<PooledExecutor>(num_threads);
}

}  // namespace mce::exec
