// PooledExecutor: the task graph on a shared ThreadPool.
//
// Scheduling differences vs. the serial depth-first walk:
//  * BlockTasks are submitted the moment BuildBlocksStreaming emits each
//    block, so analysis starts while the level is still decomposing.
//  * Task granularity follows the block cost model (DESIGN.md §7): blocks
//    predicted above max_block_cost split into kernel-range shards, blocks
//    below it coalesce into batches of about that much predicted work, and
//    ready tasks dispatch largest-predicted-first.
//  * DecomposeTask(h+1) depends only on Cut(h)'s hub set, so it is
//    submitted before level h's blocks are even built — the next level's
//    induce/cut/build runs concurrently with the tail of level-h analysis
//    (the measured window is LevelStats::overlap_seconds).
//  * The level's FilterTasks are chained behind its last BlockTask with a
//    ThreadPool::Completion token instead of a pool-wide Wait() barrier.
//
// Delivery (cliques, observer records, block-task descriptors, stats)
// happens only on the calling thread, levels in order and blocks in
// decomposition order, off buffered per-block results — which is what
// makes the emission byte-identical to the serial executor.
//
// Timing: every task records one begin/end window on the obs::NowMicros()
// timebase. The same windows feed the trace recorder (when one is
// resolved) and the LevelStats — analyze_seconds is the hull of the
// level's block+filter spans, overlap_seconds the decompose window
// clipped against earlier levels' analysis hulls, idle_seconds the
// worker capacity of the hull minus the block work inside it
// (obs/span_math.h).
//
// Synchronization: all cross-task state hangs off LevelRun records owned
// by a deque guarded by one engine mutex. Tasks receive stable element
// pointers taken under the lock (deques never relocate elements); a
// task's unlocked reads are confined to data whose writers finished
// before the mutex-protected state transition the reader observed.

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "decision/block_cost.h"
#include "decision/features.h"
#include "decomp/block_analysis.h"
#include "decomp/cut.h"
#include "decomp/parallel_analysis.h"
#include "exec/executor.h"
#include "graph/subgraph.h"
#include "mce/workspace.h"
#include "obs/span_math.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace mce::exec {

namespace {

/// Append-only clique arena: ids stored back to back with end offsets,
/// preserving emission order. The pooled engine buffers every clique a
/// level produces (that is what makes its emission byte-identical to the
/// serial walk), so the buffers must not cost one heap allocation per
/// clique the way vector<Clique> does — on clique-dense graphs that
/// allocator traffic alone made the pooled engine slower than serial.
class FlatCliques {
 public:
  /// Copies the clique and sorts it in place (the CliqueSet::Add
  /// contract, which the serial emission order is defined in terms of).
  void Append(std::span<const NodeId> c) {
    AppendRaw(c);
    std::sort(ids_.end() - static_cast<ptrdiff_t>(c.size()), ids_.end());
  }

  /// Copies verbatim, skipping the sort — for buffers whose reader
  /// canonicalizes anyway (level >= 1 shard buffers feed MapAndFilter-
  /// Clique, which sorts its output) or whose input already is canonical
  /// (filter and fallback survivors are MapAndFilterClique output).
  void AppendRaw(std::span<const NodeId> c) {
    if (ids_.capacity() == 0) {
      // First touch: skip the early doubling steps. Most arenas are
      // per-block buffers on graphs with thousands of small blocks, so
      // growing each one from nothing costs more allocator traffic than
      // the analysis itself saves.
      ids_.reserve(96);
      ends_.reserve(16);
    }
    ids_.insert(ids_.end(), c.begin(), c.end());
    ends_.push_back(ids_.size());
  }
  size_t size() const { return ends_.size(); }
  std::span<const NodeId> operator[](size_t i) const {
    const size_t begin = i == 0 ? 0 : ends_[i - 1];
    return {ids_.data() + begin, ends_[i] - begin};
  }

 private:
  std::vector<NodeId> ids_;
  std::vector<size_t> ends_;
};

/// One kernel-range shard of a BlockTask: its range, buffered cliques, and
/// measured window. An unsplit block is the degenerate single-shard case.
struct ShardRun {
  decomp::KernelRange range;
  decomp::BlockAnalysisResult result;
  /// The shard's cliques (parent-graph ids, each sorted), in emission
  /// order; concatenating the shards in kernel order reproduces the
  /// undivided task's buffer byte for byte.
  FlatCliques cliques;
  int64_t begin_us = 0;
  int64_t end_us = 0;
  double seconds = 0;
  size_t worker = 0;
};

/// Execution state of one BlockTask. The shard vector is sized at block
/// emission and never resized, so shard tasks hold stable element
/// pointers.
struct BlockExec {
  /// decision::EstimateBlockCost score, computed at emission; drives both
  /// the largest-first dispatch order and the split decision.
  double cost = 0;
  std::vector<ShardRun> shards;
  size_t shards_done = 0;  // engine mutex
  /// Whole-block aggregate, written by the last-finishing shard: `used`
  /// from any shard (the classification is deterministic per block) and
  /// the summed clique count / serial-equivalent seconds.
  decomp::BlockAnalysisResult result;
  double seconds = 0;
};

/// All state of one recursion level as it moves through the task graph.
struct LevelRun {
  uint32_t level = 0;
  Graph owned_graph;             // levels >= 1 own their induced subgraph
  const Graph* graph = nullptr;  // level 0 aliases the caller's graph
  std::vector<NodeId> to_original;  // empty means identity (level 0)
  decomp::CutResult cut;
  bool has_child = false;
  bool child_induced = false;
  bool delivered = false;

  // BlockTask state. Deques so emitted tasks hold stable pointers while
  // the decompose task keeps appending.
  std::deque<decomp::Block> blocks;
  std::deque<BlockExec> execs;
  /// Tiny-block batch under construction (touched only by the level's
  /// decompose worker, before blocks_final). Blocks predicted under the
  /// split threshold are coalesced into one pool task aimed at about
  /// max_block_cost of work, the same granularity giant blocks are split
  /// down to — dispatch overhead then scales with predicted work, not
  /// block count.
  struct BatchItem {
    decomp::Block* block = nullptr;
    BlockExec* exec = nullptr;
    uint64_t index = 0;
  };
  std::vector<BatchItem> batch;
  double batch_cost = 0;
  bool blocks_final = false;
  size_t blocks_done = 0;
  bool analysis_signaled = false;
  ThreadPool::Completion analysis_token;

  // FilterTask state (levels >= 1). Chunks own disjoint pending slices
  // and buffer their survivors in per-chunk arenas; delivery walks the
  // arenas in chunk order, which is pending order.
  std::vector<std::span<const NodeId>> pending;
  std::vector<FlatCliques> filter_out;
  size_t filter_chunks_left = 0;

  // m-core fallback: survivors buffered for calling-thread emission.
  bool fallback = false;
  FlatCliques fallback_cliques;

  decomp::LevelStats stats;

  // Task windows on the obs::NowMicros() timebase. The block windows live
  // in `runs`; filter chunk windows are appended under the engine mutex.
  int64_t decompose_begin_us = 0;
  int64_t decompose_end_us = 0;
  std::vector<std::pair<int64_t, int64_t>> filter_spans;
  int64_t fallback_begin_us = 0;
  int64_t fallback_end_us = 0;

  bool ready = false;
};

class PooledEngine {
 public:
  PooledEngine(const Graph& g, const decomp::FindMaxCliquesOptions& options,
               size_t num_threads, const BlockTaskSink& sink,
               const decomp::LeveledCliqueCallback& emit)
      : original_(g),
        options_(options),
        sink_(sink),
        emit_(emit),
        blocks_options_(BlocksOptionsFor(options)),
        analysis_options_(AnalysisOptionsFor(options)),
        trace_(ResolveTrace(options)),
        metrics_(ResolveMetrics(options)),
        workspaces_(std::max<size_t>(1, num_threads)),
        pool_(std::max<size_t>(1, num_threads)) {}

  decomp::StreamingStats Run() {
    decomp::StreamingStats out;
    // ReduceTask: runs on the calling thread before the root decompose is
    // even submitted, so the trivial cliques hold the same leading stream
    // positions as on the serial engine. The level chain decomposes the
    // reduced graph; original_ stays the Lemma-1 reference.
    prep_.Run(original_, options_, trace_, metrics_, emit_, &out);
    expansion_ = prep_.map();
    auto root = std::make_unique<LevelRun>();
    root->level = 0;
    root->graph = &prep_.pipeline_graph();
    LevelRun* root_ptr = root.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      levels_.push_back(std::move(root));
    }
    pool_.Submit([this, root_ptr] { DecomposeTask(root_ptr, nullptr); });

    size_t next = 0;
    for (;;) {
      LevelRun* lr = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] {
          return (next < levels_.size() && levels_[next]->ready) ||
                 (chain_done_ && next >= levels_.size());
        });
        if (next >= levels_.size()) break;
        lr = levels_[next].get();
      }
      DeliverLevel(lr, out);
      {
        std::lock_guard<std::mutex> lock(mu_);
        lr->delivered = true;
        MaybeReleaseInputs(lr);
      }
      ++next;
    }
    pool_.Wait();
    metrics_.RecordRun(out);
    return out;
  }

 private:
  /// DecomposeTask(level): induce (levels >= 1), Cut, dispatch the child
  /// level's decompose, then stream blocks into BlockTasks.
  void DecomposeTask(LevelRun* lr, LevelRun* parent) {
    lr->decompose_begin_us = obs::NowMicros();
    if (parent != nullptr) {
      InducedSubgraph sub = Induce(*parent->graph, parent->cut.hubs);
      lr->to_original = ComposeToOriginal(parent->to_original, sub.to_parent);
      lr->owned_graph = std::move(sub.graph);
      lr->graph = &lr->owned_graph;
      std::lock_guard<std::mutex> lock(mu_);
      parent->child_induced = true;
      MaybeReleaseInputs(parent);
    }
    const Graph& graph = *lr->graph;
    lr->stats.num_nodes = graph.num_nodes();
    lr->stats.num_edges = graph.num_edges();
    lr->cut = decomp::Cut(graph, options_.max_block_size);
    lr->stats.feasible = lr->cut.feasible.size();
    lr->stats.hubs = lr->cut.hubs.size();

    if (lr->cut.feasible.empty() && graph.num_nodes() > 0) {
      // Sparsity precondition violated: enumerate the m-core directly as
      // one indivisible task on this worker, buffering the survivors.
      {
        std::lock_guard<std::mutex> lock(mu_);
        chain_done_ = true;
      }
      lr->fallback = true;
      lr->decompose_end_us = obs::NowMicros();
      RecordDecomposeSpan(lr);
      RunFallback(lr);
      {
        std::lock_guard<std::mutex> lock(mu_);
        lr->ready = true;
      }
      cv_.notify_all();
      return;
    }

    if (!lr->cut.hubs.empty()) {
      // Cross-level pipelining: the child depends only on this cut's hub
      // set, so its decomposition is dispatched before this level's
      // blocks are built, overlapping the tail of this level's analysis.
      auto child = std::make_unique<LevelRun>();
      child->level = lr->level + 1;
      LevelRun* child_ptr = child.get();
      {
        std::lock_guard<std::mutex> lock(mu_);
        lr->has_child = true;
        levels_.push_back(std::move(child));
      }
      pool_.Submit([this, child_ptr, lr] { DecomposeTask(child_ptr, lr); });
    } else {
      std::lock_guard<std::mutex> lock(mu_);
      chain_done_ = true;
    }

    // The filter stage chains behind the level's last BlockTask.
    lr->analysis_token = pool_.CreateCompletion(1);
    pool_.SubmitAfter(lr->analysis_token, [this, lr] { PlanFilter(lr); });

    decomp::BuildBlocksStreaming(
        graph, lr->cut.feasible, blocks_options_,
        [this, lr](decomp::Block&& b) { EmitBlock(lr, std::move(b)); });
    // The tail batch flushes before blocks_final so every emitted block
    // has a task in flight when the completion check below runs.
    FlushBatch(lr);

    bool signal = false;
    ThreadPool::Completion token;
    {
      std::lock_guard<std::mutex> lock(mu_);
      lr->blocks_final = true;
      lr->stats.blocks = lr->blocks.size();
      lr->decompose_end_us = obs::NowMicros();
      signal = !lr->analysis_signaled && lr->blocks_done == lr->blocks.size();
      if (signal) {
        lr->analysis_signaled = true;
        token = lr->analysis_token;
      }
    }
    RecordDecomposeSpan(lr);
    if (signal) token.Signal();
  }

  /// The level's kDecompose span; call after decompose_end_us and the cut
  /// stats are final (this worker wrote both).
  void RecordDecomposeSpan(LevelRun* lr) {
    if (trace_ == nullptr) return;
    obs::TraceEvent e;
    e.begin_us = lr->decompose_begin_us;
    e.end_us = lr->decompose_end_us;
    e.kind = obs::SpanKind::kDecompose;
    e.level = lr->level;
    e.args[0] = lr->stats.num_nodes;
    e.args[1] = lr->stats.num_edges;
    e.args[2] = lr->stats.feasible;
    e.args[3] = lr->stats.hubs;
    trace_->Record(e);
  }

  /// Emission of one block by DecomposeTask(level): score it, plan its
  /// shards, and dispatch them through the cost-ordered queue.
  void EmitBlock(LevelRun* lr, decomp::Block&& b) {
    // The predicted cost reuses the bestfit classification features —
    // computed here, on the decompose worker, so dispatch order and the
    // split decision are fixed before any worker picks the block up.
    const double cost = decision::EstimateBlockCost(b.subgraph.graph);
    const size_t kernels = b.kernel_local.size();
    const bool splittable = options_.split_blocks &&
                            options_.max_block_cost > 0 &&
                            pool_.num_threads() > 1;
    const size_t shards =
        splittable
            ? decision::PlanShardCount(cost, options_.max_block_cost, kernels)
            : 1;

    decomp::Block* block = nullptr;
    BlockExec* exec = nullptr;
    uint64_t index = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      index = lr->blocks.size();
      lr->blocks.push_back(std::move(b));
      lr->execs.emplace_back();
      block = &lr->blocks.back();
      exec = &lr->execs.back();
      exec->cost = cost;
      exec->shards.resize(shards);
    }
    if (shards > 1) metrics_.RecordSplit(shards);
    if (shards == 1 && splittable && cost < options_.max_block_cost) {
      // Tiny block: coalesce instead of dispatching. The batch flushes
      // once it accumulates a split threshold's worth of predicted work
      // (and unconditionally at decompose end), so every pool task —
      // shard, batch, or lone mid-sized block — carries comparable work.
      exec->shards[0].range = {0, kernels};
      lr->batch.push_back({block, exec, index});
      lr->batch_cost += cost;
      // Batches flush about a split-threshold's worth of work at a time:
      // large enough that dispatch and context-switch overhead is
      // amortized (tiny tasks on few cores otherwise spend more time in
      // handoffs than analysis), small enough that a level still breaks
      // into many independently schedulable tasks. Narrow pools coarsen
      // the batches further — with few workers there is little balancing
      // to gain, and handoff overhead dominates; wide pools keep them at
      // the split granularity so every worker has work to pull.
      const double mult = pool_.num_threads() <= 4 ? 4.0 : 1.0;
      if (lr->batch_cost >= mult * options_.max_block_cost) FlushBatch(lr);
      return;
    }
    // Contiguous, even kernel ranges; every shard carries an equal share
    // of the predicted cost into the dispatch order.
    const double shard_cost = cost / static_cast<double>(shards);
    for (size_t s = 0; s < shards; ++s) {
      ShardRun& run = exec->shards[s];
      run.range.begin = kernels * s / shards;
      run.range.end = kernels * (s + 1) / shards;
      queue_.Push(shard_cost, [this, lr, block, exec, s, index] {
        ShardTask(lr, block, exec, s, index);
      });
      // One generic pull per queued task: the pool stays FIFO while the
      // queue decides which analysis task each freed worker runs —
      // highest predicted cost first (DESIGN.md §7).
      pool_.Submit([this] { queue_.RunNext(); });
    }
  }

  /// Dispatches the level's pending tiny-block batch as one pool task
  /// whose scheduling cost is the batch's summed prediction. Runs on the
  /// level's decompose worker (the only writer of the batch fields).
  void FlushBatch(LevelRun* lr) {
    if (lr->batch.empty()) return;
    const double cost = lr->batch_cost;
    queue_.Push(cost, [this, lr, items = std::move(lr->batch)] {
      for (const LevelRun::BatchItem& it : items) {
        ShardTask(lr, it.block, it.exec, 0, it.index);
      }
    });
    lr->batch = {};
    lr->batch_cost = 0;
    pool_.Submit([this] { queue_.RunNext(); });
  }

  /// BlockShardTask(level, i, s): Algorithm 4 over the shard's kernel
  /// range, into the shard's buffer slot. The last-finishing shard
  /// aggregates the block and advances the level's completion state.
  void ShardTask(LevelRun* lr, decomp::Block* block, BlockExec* exec,
                 size_t shard, uint64_t index) {
    const size_t worker_index = ThreadPool::CurrentWorkerIndex();
    const size_t worker =
        worker_index == ThreadPool::kNotAWorker ? 0 : worker_index;
    ShardRun& run = exec->shards[shard];
    run.begin_us = obs::NowMicros();
    // Level-0 buffers are the emission source and must hold each clique
    // sorted; deeper levels' buffers only feed the filter, which sorts.
    // With the reduction prepass active, level 0 additionally re-expands
    // through the twin classes and drops covered cliques here, at
    // buffering time — level 0 has no filter stage to do it later.
    const bool canonicalize = lr->level == 0;
    const reduce::ReductionMap* const expansion = expansion_;
    Clique expand_tmp;
    run.result = decomp::AnalyzeBlock(
        *block, analysis_options_,
        [&run, canonicalize, expansion, &expand_tmp](
            std::span<const NodeId> c) {
          if (canonicalize) {
            if (expansion != nullptr) {
              if (expansion->ExpandClique(c, &expand_tmp)) {
                run.cliques.AppendRaw(expand_tmp);  // expansion is sorted
              }
            } else {
              run.cliques.Append(c);
            }
          } else {
            run.cliques.AppendRaw(c);
          }
        },
        &workspaces_[worker], run.range);
    run.end_us = obs::NowMicros();
    run.seconds = static_cast<double>(run.end_us - run.begin_us) * 1e-6;
    run.worker = worker;
    const size_t total = exec->shards.size();
    if (trace_ != nullptr) {
      if (total > 1) {
        trace_->Record(MakeBlockShardSpan(run.begin_us, run.end_us, lr->level,
                                          index, run.range,
                                          run.result.num_cliques, total,
                                          run.result.used));
      } else {
        trace_->Record(MakeBlockSpan(run.begin_us, run.end_us, *block,
                                     run.result, lr->level, index));
      }
    }

    bool block_done = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      block_done = ++exec->shards_done == total;
    }
    if (!block_done) return;

    // All shard writers finished before the shards_done transition this
    // thread observed, so their slots are safe to read unlocked.
    exec->result.used = exec->shards.front().result.used;
    for (const ShardRun& s : exec->shards) {
      exec->result.num_cliques += s.result.num_cliques;
      exec->seconds += s.seconds;
    }
    // Workload metrics count whole blocks, however many shards ran them.
    metrics_.RecordBlock(*block, exec->result, exec->seconds);
    if (!options_.block_observer && !sink_) {
      // Without an observer or sink, delivery never reads the block again
      // — only this task's aggregates. Freeing the subgraph here keeps the
      // engine's live footprint near the serial one-block-at-a-time
      // profile instead of holding every block until the level delivers.
      *block = decomp::Block();
    }

    bool signal = false;
    ThreadPool::Completion token;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++lr->blocks_done;
      signal = lr->blocks_final && !lr->analysis_signaled &&
               lr->blocks_done == lr->blocks.size();
      if (signal) {
        lr->analysis_signaled = true;
        token = lr->analysis_token;
      }
    }
    if (signal) token.Signal();
  }

  /// Runs after the level's last BlockTask: partitions the buffered
  /// cliques into FilterTask chunks (levels >= 1), or marks the level
  /// ready directly (level 0 needs no filter).
  void PlanFilter(LevelRun* lr) {
    // The completion token ordered this task after every BlockTask of the
    // level, so the buffers are safe to read without the lock. Shards are
    // walked in kernel order within each block, so the pending list is the
    // serial emission order.
    if (lr->level > 0) {
      size_t total = 0;
      for (const BlockExec& exec : lr->execs) total += exec.result.num_cliques;
      lr->pending.reserve(total);
      for (const BlockExec& exec : lr->execs) {
        for (const ShardRun& run : exec.shards) {
          for (size_t c = 0; c < run.cliques.size(); ++c) {
            lr->pending.push_back(run.cliques[c]);
          }
        }
      }
      const std::vector<std::pair<size_t, size_t>> chunks =
          FilterChunks(lr->pending.size(), pool_.num_threads());
      if (!chunks.empty()) {
        lr->filter_out.resize(chunks.size());
        {
          std::lock_guard<std::mutex> lock(mu_);
          lr->filter_chunks_left = chunks.size();
        }
        for (size_t c = 0; c < chunks.size(); ++c) {
          const size_t begin = chunks[c].first;
          const size_t end = chunks[c].second;
          pool_.Submit([this, lr, begin, end, c] {
            FilterChunkTask(lr, begin, end, c);
          });
        }
        return;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      lr->ready = true;
    }
    cv_.notify_all();
  }

  /// FilterTask(level, chunk): the telescoped Lemma-1 checks over one
  /// contiguous slice of the level's buffered cliques, survivors appended
  /// in slice order to the chunk's own arena.
  void FilterChunkTask(LevelRun* lr, size_t begin, size_t end, size_t chunk) {
    const int64_t begin_us = obs::NowMicros();
    FlatCliques& out = lr->filter_out[chunk];
    Clique scratch;
    Clique expand_scratch;
    uint64_t kept = 0;
    for (size_t i = begin; i < end; ++i) {
      if (MapExpandAndFilterClique(original_, lr->pending[i], lr->to_original,
                                   lr->level, expansion_, &expand_scratch,
                                   &scratch)) {
        out.AppendRaw(scratch);
        ++kept;
      }
    }
    const int64_t end_us = obs::NowMicros();
    if (trace_ != nullptr) {
      obs::TraceEvent e;
      e.begin_us = begin_us;
      e.end_us = end_us;
      e.kind = obs::SpanKind::kFilter;
      e.level = lr->level;
      e.index = chunk;
      e.args[0] = end - begin;
      e.args[1] = kept;
      trace_->Record(e);
    }
    metrics_.RecordFilter(end - begin, kept);
    bool done = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      lr->filter_spans.emplace_back(begin_us, end_us);
      done = --lr->filter_chunks_left == 0;
      if (done) lr->ready = true;
    }
    if (done) cv_.notify_all();
  }

  void RunFallback(LevelRun* lr) {
    decomp::LevelStats& stats = lr->stats;
    lr->fallback_begin_us = obs::NowMicros();
    Clique scratch;
    Clique expand_scratch;
    uint64_t produced = 0;
    EnumerateMaximalCliques(*lr->graph, options_.fallback,
                            [&](std::span<const NodeId> c) {
                              ++produced;
                              if (MapExpandAndFilterClique(
                                      original_, c, lr->to_original,
                                      lr->level, expansion_, &expand_scratch,
                                      &scratch)) {
                                lr->fallback_cliques.AppendRaw(scratch);
                              }
                            });
    lr->fallback_end_us = obs::NowMicros();
    stats.cliques = produced;
    stats.analyze_seconds =
        static_cast<double>(lr->fallback_end_us - lr->fallback_begin_us) *
        1e-6;
    stats.block_seconds = stats.analyze_seconds;
    stats.busiest_worker_seconds = stats.analyze_seconds;
    stats.analyze_threads = 1;  // one worker ran the indivisible task
    if (trace_ != nullptr) {
      obs::TraceEvent e;
      e.begin_us = lr->fallback_begin_us;
      e.end_us = lr->fallback_end_us;
      e.kind = obs::SpanKind::kFallback;
      e.level = lr->level;
      e.args[0] = lr->graph->num_nodes();
      e.args[1] = lr->graph->num_edges();
      e.args[2] = produced;
      trace_->Record(e);
    }
    if (lr->level > 0) {
      metrics_.RecordFilter(produced, lr->fallback_cliques.size());
    }
  }

  /// Calling thread only. Emits the level's cliques, replays observer and
  /// sink in block order, and finalizes the level's stats.
  void DeliverLevel(LevelRun* lr, decomp::StreamingStats& out) {
    decomp::LevelStats& stats = lr->stats;
    // The level's analysis spans (block + filter tasks, or the fallback),
    // rebased to seconds since the engine epoch — the exact windows the
    // trace recorder saw.
    std::vector<obs::TimeRange> analyze_spans;
    if (lr->fallback) {
      out.used_fallback = true;
      analyze_spans.push_back(
          Range(lr->fallback_begin_us, lr->fallback_end_us));
      for (size_t c = 0; c < lr->fallback_cliques.size(); ++c) {
        ++out.cliques_emitted;
        emit_(lr->fallback_cliques[c], lr->level);
      }
    } else {
      std::vector<double> worker_seconds(pool_.num_threads(), 0.0);
      uint64_t produced = 0;
      for (size_t i = 0; i < lr->execs.size(); ++i) {
        const BlockExec& exec = lr->execs[i];
        produced += exec.result.num_cliques;
        stats.block_seconds += exec.seconds;
        if (exec.shards.size() > 1) ++stats.block_splits;
        for (const ShardRun& run : exec.shards) {
          worker_seconds[run.worker] += run.seconds;
          analyze_spans.push_back(Range(run.begin_us, run.end_us));
        }
        // Observer and sink see one record per block — the aggregated
        // whole-block result — whether or not it ran as shards, so their
        // streams match the serial executor's.
        if (options_.block_observer) {
          options_.block_observer(decomp::MakeBlockTaskRecord(
              lr->blocks[i], exec.result, exec.seconds, lr->level));
        }
        if (sink_) {
          sink_(MakeBlockTaskDescriptor(lr->blocks[i], exec.result,
                                        exec.seconds, lr->level, i,
                                        exec.cost));
        }
      }
      stats.cliques = produced;
      stats.busiest_worker_seconds =
          *std::max_element(worker_seconds.begin(), worker_seconds.end());
      stats.analyze_threads = static_cast<uint32_t>(pool_.num_threads());
      for (const auto& [begin_us, end_us] : lr->filter_spans) {
        analyze_spans.push_back(Range(begin_us, end_us));
      }
      stats.analyze_seconds = obs::Hull(analyze_spans).Length();

      if (lr->level == 0) {
        // Identity mapping and per-clique sorting already happened in the
        // per-shard buffers, so the merge is a plain replay: blocks in
        // decomposition order, shards in kernel order.
        for (const BlockExec& exec : lr->execs) {
          for (const ShardRun& run : exec.shards) {
            for (size_t c = 0; c < run.cliques.size(); ++c) {
              ++out.cliques_emitted;
              emit_(run.cliques[c], lr->level);
            }
          }
        }
      } else {
        // Chunk arenas in chunk order = pending order = serial order.
        for (const FlatCliques& chunk : lr->filter_out) {
          for (size_t c = 0; c < chunk.size(); ++c) {
            ++out.cliques_emitted;
            emit_(chunk[c], lr->level);
          }
        }
      }
    }
    const obs::TimeRange decompose_window =
        Range(lr->decompose_begin_us, lr->decompose_end_us);
    stats.decompose_seconds = decompose_window.Length();
    // The pipelining win: how long this level's decomposition ran while
    // an earlier level was still analyzing — the decompose span clipped
    // against the union of earlier levels' analysis hulls.
    stats.overlap_seconds = obs::OverlapLength(decompose_window,
                                               analyze_windows_);
    const obs::TimeRange analyze_hull = obs::Hull(analyze_spans);
    if (!analyze_hull.Empty()) analyze_windows_.push_back(analyze_hull);
    // Idle capacity, attributed by cause: work starvation inside the
    // level's own spans vs. hull gaps where the pool was parked at a
    // task-graph boundary (obs/span_math.h).
    const obs::IdleSplit idle =
        obs::SplitIdle(analyze_spans, stats.block_seconds,
                       static_cast<int>(stats.analyze_threads));
    stats.idle_seconds = idle.idle_seconds;
    stats.barrier_idle_seconds = idle.barrier_idle_seconds;
    out.levels.push_back(stats);

    // Free the bulky per-level state now that it is delivered.
    lr->blocks.clear();
    lr->execs.clear();
    lr->pending = {};
    lr->filter_out = {};
    lr->fallback_cliques = {};
  }

  /// A microsecond window rebased to seconds since the engine epoch.
  obs::TimeRange Range(int64_t begin_us, int64_t end_us) const {
    return obs::TimeRange{
        static_cast<double>(begin_us - epoch_us_) * 1e-6,
        static_cast<double>(end_us - epoch_us_) * 1e-6};
  }

  /// mu_ held. The level's graph feeds its child's Induce, so it is freed
  /// only once the level is delivered and the child (if any) has induced.
  void MaybeReleaseInputs(LevelRun* lr) {
    if (!lr->delivered) return;
    if (lr->has_child && !lr->child_induced) return;
    lr->owned_graph = Graph();
    lr->graph = nullptr;
    lr->cut = decomp::CutResult();
    lr->to_original = {};
  }

  const Graph& original_;
  const decomp::FindMaxCliquesOptions& options_;
  const BlockTaskSink& sink_;
  const decomp::LeveledCliqueCallback& emit_;
  /// The ReduceTask's state; set once in Run() before any pipeline task
  /// is submitted, read-only afterwards (safe unlocked from workers).
  ReducePrepass prep_;
  const reduce::ReductionMap* expansion_ = nullptr;
  const decomp::BlocksOptions blocks_options_;
  const decomp::BlockAnalysisOptions analysis_options_;
  obs::TraceRecorder* const trace_;
  RunMetrics metrics_;

  /// Zero point of the run's stats timebase (spans stay absolute; only
  /// the derived LevelStats windows are rebased).
  const int64_t epoch_us_ = obs::NowMicros();
  /// Analysis hulls of delivered levels, in level order (calling thread
  /// only); feeds the overlap stat of the levels below them.
  std::vector<obs::TimeRange> analyze_windows_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<LevelRun>> levels_;
  bool chain_done_ = false;
  std::vector<BlockWorkspace> workspaces_;
  /// Ready analysis tasks (shards and unsplit blocks), dispatched largest
  /// predicted cost first by generic pull thunks on the pool.
  CostOrderedQueue queue_;
  // Declared last: its destructor drains tasks that touch the state above.
  ThreadPool pool_;
};

class PooledExecutor final : public Executor {
 public:
  explicit PooledExecutor(size_t num_threads)
      : num_threads_(std::max<size_t>(1, num_threads)) {}

  decomp::StreamingStats Run(const Graph& g,
                             const decomp::FindMaxCliquesOptions& options,
                             const decomp::LeveledCliqueCallback& emit) override {
    MCE_CHECK_GE(options.max_block_size, 1u);
    PooledEngine engine(g, options, num_threads_, sink_, emit);
    return engine.Run();
  }

 private:
  size_t num_threads_;
};

}  // namespace

std::unique_ptr<Executor> MakePooledExecutor(size_t num_threads) {
  return std::make_unique<PooledExecutor>(num_threads);
}

}  // namespace mce::exec
