#include "exec/executor.h"

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace mce::exec {

size_t ResolveThreadCount(uint32_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    // The standard allows hardware_concurrency() to be unknowable; running
    // serially is the only safe default, but doing it silently makes
    // "why is --threads 0 not parallel" undiagnosable.
    MCE_LOG(WARNING) << "hardware_concurrency() returned 0 (unknown); "
                        "--threads 0 falls back to 1 worker";
    return 1;
  }
  return hw;
}

std::unique_ptr<Executor> MakeExecutor(
    const decomp::FindMaxCliquesOptions& options) {
  const size_t threads = ResolveThreadCount(options.num_threads);
  switch (options.executor) {
    case decomp::ExecutorKind::kSerial:
      return MakeSerialExecutor();
    case decomp::ExecutorKind::kPooled:
      return MakePooledExecutor(threads);
    case decomp::ExecutorKind::kAuto:
      break;
  }
  return threads > 1 ? MakePooledExecutor(threads) : MakeSerialExecutor();
}

decomp::FindMaxCliquesResult CollectToResult(
    Executor& executor, const Graph& g,
    const decomp::FindMaxCliquesOptions& options) {
  std::vector<std::pair<Clique, uint32_t>> found;
  decomp::StreamingStats stats = executor.Run(
      g, options, [&found](std::span<const NodeId> clique, uint32_t level) {
        found.emplace_back(Clique(clique.begin(), clique.end()), level);
      });
  std::sort(found.begin(), found.end());

  decomp::FindMaxCliquesResult out;
  out.levels = std::move(stats.levels);
  out.used_fallback = stats.used_fallback;
  out.reduction = stats.reduction;
  out.memory = stats.memory;
  out.progress = stats.progress;
  out.profile = stats.profile;
  for (auto& [clique, origin] : found) {
    out.origin_level.push_back(origin);
    out.cliques.Add(std::move(clique));  // already sorted
  }
  return out;
}

}  // namespace mce::exec
