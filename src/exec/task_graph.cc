#include "exec/task_graph.h"

#include <algorithm>

#include "decomp/filter.h"
#include "mce/storage.h"

namespace mce::exec {

uint64_t EstimateAnalysisBytes(const decomp::Block& block) {
  // The list backend's working set plus ~64 bytes of recursion scratch per
  // node (membership flags, candidate arrays, translate tables across the
  // recursion depth).
  return SaturatingAdd(
      EstimateStorageBytes(block.num_nodes(), block.num_edges(),
                           StorageKind::kAdjacencyList),
      SaturatingMul(block.num_nodes(), 64));
}

BlockTaskDescriptor MakeBlockTaskDescriptor(
    const decomp::Block& block, const decomp::BlockAnalysisResult& result,
    double seconds, uint32_t level, uint64_t index, double estimated_cost) {
  BlockTaskDescriptor d;
  d.level = level;
  d.index = index;
  d.nodes = block.num_nodes();
  d.edges = block.num_edges();
  d.bytes = block.EstimatedBytes();
  d.estimated_cost = estimated_cost;
  d.compute_seconds = seconds;
  d.cliques = result.num_cliques;
  d.used = result.used;
  return d;
}

decomp::BlocksOptions BlocksOptionsFor(
    const decomp::FindMaxCliquesOptions& options) {
  decomp::BlocksOptions blocks_options;
  blocks_options.max_block_size = options.max_block_size;
  blocks_options.min_adjacency = options.min_adjacency;
  blocks_options.seed_policy = options.seed_policy;
  blocks_options.degeneracy_relabel = options.reduce;
  return blocks_options;
}

decomp::BlockAnalysisOptions AnalysisOptionsFor(
    const decomp::FindMaxCliquesOptions& options) {
  decomp::BlockAnalysisOptions analysis_options;
  analysis_options.tree = options.tree;
  analysis_options.fixed = options.fixed;
  return analysis_options;
}

std::vector<NodeId> ComposeToOriginal(const std::vector<NodeId>& to_original,
                                      const std::vector<NodeId>& to_parent) {
  if (to_original.empty()) return to_parent;
  std::vector<NodeId> composed;
  composed.reserve(to_parent.size());
  for (NodeId v : to_parent) composed.push_back(to_original[v]);
  return composed;
}

bool MapAndFilterClique(const Graph& original,
                        std::span<const NodeId> level_ids,
                        const std::vector<NodeId>& to_original, uint32_t level,
                        Clique* out) {
  out->clear();
  out->reserve(level_ids.size());
  if (to_original.empty()) {
    out->assign(level_ids.begin(), level_ids.end());
  } else {
    for (NodeId v : level_ids) out->push_back(to_original[v]);
  }
  std::sort(out->begin(), out->end());
  return level == 0 || decomp::IsMaximalInGraph(original, *out);
}

bool MapExpandAndFilterClique(const Graph& original,
                              std::span<const NodeId> level_ids,
                              const std::vector<NodeId>& to_original,
                              uint32_t level,
                              const reduce::ReductionMap* expansion,
                              Clique* scratch, Clique* out) {
  if (expansion == nullptr || !expansion->active()) {
    return MapAndFilterClique(original, level_ids, to_original, level, out);
  }
  // Translate level ids to reduced-graph ids, then expand the twin
  // classes to original ids (sorted) — the Lemma-1 check below sees the
  // same original-id cliques it would without the prepass.
  scratch->clear();
  if (to_original.empty()) {
    scratch->assign(level_ids.begin(), level_ids.end());
  } else {
    scratch->reserve(level_ids.size());
    for (NodeId v : level_ids) scratch->push_back(to_original[v]);
  }
  if (!expansion->ExpandClique(*scratch, out)) return false;
  return level == 0 || decomp::IsMaximalInGraph(original, *out);
}

void ReducePrepass::Run(const Graph& g,
                        const decomp::FindMaxCliquesOptions& options,
                        obs::TraceRecorder* trace, RunMetrics& metrics,
                        const decomp::LeveledCliqueCallback& emit,
                        decomp::StreamingStats* out,
                        obs::ProfileAccumulator* profile) {
  if (!options.reduce) {
    graph_ = &g;
    return;
  }
  const bool timed = trace != nullptr || profile != nullptr;
  const int64_t begin_us = timed ? obs::NowMicros() : 0;
  obs::ScopedCounters counters;
  if (profile != nullptr) counters.Begin();
  result_ = reduce::ReduceGraph(g, reduce::ReduceOptions{});
  // Pre-scan proved the graph irreducible: no copy was made, the map is
  // inactive, and the pipeline runs on the input directly. Stats still
  // flow (enabled=true, zero removals) so --json shows the prepass ran.
  active_ = !result_.unchanged;
  graph_ = result_.unchanged ? &g : &result_.graph;
  out->reduction = result_.stats;
  // Trivial cliques lead the stream: every engine emits them here, on the
  // calling thread, before the root DecomposeTask produces anything — so
  // serial/pooled emission stays byte-identical with reduction on.
  for (size_t i = 0; i < result_.map.num_trivial_cliques(); ++i) {
    ++out->cliques_emitted;
    emit(result_.map.TrivialClique(i), 0);
  }
  if (options.progress != nullptr) {
    options.progress->AddCliques(result_.map.num_trivial_cliques());
  }
  metrics.RecordReduction(result_.stats);
  if (timed) {
    const int64_t end_us = obs::NowMicros();
    obs::TraceEvent e;
    e.begin_us = begin_us;
    e.end_us = end_us;
    e.kind = obs::SpanKind::kReduce;
    e.args[0] = result_.stats.vertices_removed;
    e.args[1] = result_.stats.edges_removed;
    e.args[2] = result_.stats.trivial_cliques;
    e.args[3] = result_.stats.rounds;
    if (counters.active()) {
      e.prof = counters.Finish();
      profile->Add(obs::SpanKind::kReduce, obs::ProfileAccumulator::kNoLevel,
                   static_cast<double>(end_us - begin_us) * 1e-6,
                   result_.stats.trivial_cliques, e.prof);
    }
    if (trace != nullptr) trace->Record(e);
  }
}

obs::TraceRecorder* ResolveTrace(const decomp::FindMaxCliquesOptions& options) {
  return options.trace != nullptr ? options.trace
                                  : obs::TraceRecorder::installed();
}

obs::MetricsRegistry* ResolveMetrics(
    const decomp::FindMaxCliquesOptions& options) {
  return options.metrics != nullptr ? options.metrics
                                    : obs::MetricsRegistry::installed();
}

obs::TraceEvent MakeBlockSpan(int64_t begin_us, int64_t end_us,
                              const decomp::Block& block,
                              const decomp::BlockAnalysisResult& result,
                              uint32_t level, uint64_t index) {
  obs::TraceEvent e;
  e.begin_us = begin_us;
  e.end_us = end_us;
  e.kind = obs::SpanKind::kBlock;
  e.level = level;
  e.index = index;
  e.args[0] = block.CountRole(decomp::NodeRole::kKernel);
  e.args[1] = block.CountRole(decomp::NodeRole::kBorder);
  e.args[2] = block.CountRole(decomp::NodeRole::kVisited);
  e.args[3] = result.num_cliques;
  e.algorithm = static_cast<uint8_t>(result.used.algorithm);
  e.storage = static_cast<uint8_t>(result.used.storage);
  return e;
}

obs::TraceEvent MakeBlockShardSpan(int64_t begin_us, int64_t end_us,
                                   uint32_t level, uint64_t block_index,
                                   const decomp::KernelRange& range,
                                   uint64_t cliques, uint64_t shards,
                                   const MceOptions& used) {
  obs::TraceEvent e;
  e.begin_us = begin_us;
  e.end_us = end_us;
  e.kind = obs::SpanKind::kBlockShard;
  e.level = level;
  e.index = block_index;
  e.args[0] = range.begin;
  e.args[1] = range.end;
  e.args[2] = cliques;
  e.args[3] = shards;
  e.algorithm = static_cast<uint8_t>(used.algorithm);
  e.storage = static_cast<uint8_t>(used.storage);
  return e;
}

void CostOrderedQueue::Push(double cost, std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  heap_.push_back(Entry{cost, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end());
}

void CostOrderedQueue::RunNext() {
  std::function<void()> fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (heap_.empty()) return;
    std::pop_heap(heap_.begin(), heap_.end());
    fn = std::move(heap_.back().fn);
    heap_.pop_back();
  }
  fn();
}

size_t CostOrderedQueue::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heap_.size();
}

RunMetrics::RunMetrics(obs::MetricsRegistry* registry) : registry_(registry) {
  if (registry_ == nullptr) return;
  blocks_ = &registry_->GetCounter("exec.blocks_analyzed");
  blocks_split_ = &registry_->GetCounter("exec.blocks_split");
  block_shards_ = &registry_->GetCounter("exec.block_shards");
  block_cliques_ = &registry_->GetCounter("exec.block_cliques");
  filter_checked_ = &registry_->GetCounter("exec.filter_cliques_checked");
  filter_kept_ = &registry_->GetCounter("exec.filter_cliques_kept");
  levels_ = &registry_->GetCounter("pipeline.levels");
  cliques_emitted_ = &registry_->GetCounter("pipeline.cliques_emitted");
  fallback_runs_ = &registry_->GetCounter("pipeline.fallback_runs");
  const std::vector<double> node_bounds = obs::ExponentialBuckets(1, 2, 20);
  block_nodes_ = &registry_->GetHistogram("exec.block_nodes", node_bounds);
  const std::vector<double> density_bounds = obs::LinearBuckets(0.05, 0.05, 20);
  block_density_ =
      &registry_->GetHistogram("exec.block_density", density_bounds);
  const std::vector<double> ns_bounds = obs::ExponentialBuckets(16, 4, 16);
  block_ns_per_clique_ =
      &registry_->GetHistogram("exec.block_ns_per_clique", ns_bounds);
  mem_bytes_charged_ = &registry_->GetCounter("mem.bytes_charged");
  mem_admission_stalls_ = &registry_->GetCounter("mem.admission_stalls");
  mem_admission_stall_micros_ =
      &registry_->GetCounter("mem.admission_stall_micros");
  mem_spill_chunks_ = &registry_->GetCounter("mem.spill_chunks");
  mem_spill_bytes_ = &registry_->GetCounter("mem.spill_bytes");
  const std::vector<double> chunk_bounds = obs::ExponentialBuckets(1024, 4, 16);
  mem_spill_chunk_bytes_ =
      &registry_->GetHistogram("mem.spill_chunk_bytes", chunk_bounds);
}

void RunMetrics::RecordCharge(uint64_t bytes) {
  if (registry_ == nullptr || bytes == 0) return;
  mem_bytes_charged_->Add(bytes);
}

void RunMetrics::RecordAdmissionStall(uint64_t micros) {
  if (registry_ == nullptr) return;
  mem_admission_stalls_->Increment();
  mem_admission_stall_micros_->Add(micros);
}

SpillMetrics RunMetrics::SpillInstruments() const {
  SpillMetrics metrics;
  metrics.bytes_charged = mem_bytes_charged_;
  metrics.spill_chunks = mem_spill_chunks_;
  metrics.spill_bytes = mem_spill_bytes_;
  metrics.spill_chunk_bytes = mem_spill_chunk_bytes_;
  return metrics;
}

void RunMetrics::RecordBlock(const decomp::Block& block,
                             const decomp::BlockAnalysisResult& result,
                             double seconds) {
  if (registry_ == nullptr) return;
  blocks_->Increment();
  block_cliques_->Add(result.num_cliques);
  const double n = static_cast<double>(block.num_nodes());
  block_nodes_->Observe(n);
  if (n >= 2) {
    block_density_->Observe(2.0 * static_cast<double>(block.num_edges()) /
                            (n * (n - 1.0)));
  }
  if (result.num_cliques > 0) {
    block_ns_per_clique_->Observe(
        seconds * 1e9 / static_cast<double>(result.num_cliques));
  }
}

void RunMetrics::RecordSplit(uint64_t shards) {
  if (registry_ == nullptr) return;
  blocks_split_->Increment();
  block_shards_->Add(shards);
}

void RunMetrics::RecordFilter(uint64_t checked, uint64_t kept) {
  if (registry_ == nullptr) return;
  filter_checked_->Add(checked);
  filter_kept_->Add(kept);
}

void RunMetrics::RecordReduction(const reduce::ReductionStats& stats) {
  // Resolved lazily: the prepass records once per run, so there is no hot
  // path to pre-bind these handles for.
  if (registry_ == nullptr) return;
  registry_->GetCounter("reduce.isolated_removed").Add(stats.isolated_removed);
  registry_->GetCounter("reduce.degree1_removed").Add(stats.degree1_removed);
  registry_->GetCounter("reduce.dominated_removed")
      .Add(stats.dominated_removed);
  registry_->GetCounter("reduce.twins_merged").Add(stats.twins_merged);
  registry_->GetCounter("reduce.vertices_removed").Add(stats.vertices_removed);
  registry_->GetCounter("reduce.edges_removed").Add(stats.edges_removed);
  registry_->GetCounter("reduce.trivial_cliques").Add(stats.trivial_cliques);
  registry_->GetCounter("reduce.suppressed_cliques")
      .Add(stats.suppressed_cliques);
  registry_->GetCounter("reduce.rounds").Add(stats.rounds);
}

void RunMetrics::RecordRun(const decomp::StreamingStats& stats) {
  if (registry_ == nullptr) return;
  levels_->Add(stats.levels.size());
  cliques_emitted_->Add(stats.cliques_emitted);
  if (stats.used_fallback) fallback_runs_->Increment();
  // Counter-attribution totals (once per run, resolved lazily like the
  // reduction counters — profiling is off on the default path).
  if (stats.profile.enabled) {
    const obs::ProfileBucket& total = stats.profile.total;
    registry_->GetCounter("obs.profile.spans").Add(total.spans);
    registry_->GetCounter("obs.profile.cycles").Add(total.counters.cycles);
    registry_->GetCounter("obs.profile.instructions")
        .Add(total.counters.instructions);
    registry_->GetCounter("obs.profile.cache_misses")
        .Add(total.counters.cache_misses);
    registry_->GetCounter("obs.profile.branch_misses")
        .Add(total.counters.branch_misses);
    registry_->GetCounter("obs.profile.task_clock_ns")
        .Add(total.counters.task_clock_ns);
    registry_->GetCounter("obs.profile.hardware_runs")
        .Add(stats.profile.hardware ? 1 : 0);
  }
}

std::vector<std::pair<size_t, size_t>> FilterChunks(size_t items,
                                                    size_t workers) {
  std::vector<std::pair<size_t, size_t>> chunks;
  if (items == 0) return chunks;
  const size_t count = std::min(items, std::max<size_t>(1, workers) * 4);
  chunks.reserve(count);
  for (size_t c = 0; c < count; ++c) {
    const size_t begin = items * c / count;
    const size_t end = items * (c + 1) / count;
    if (begin < end) chunks.emplace_back(begin, end);
  }
  return chunks;
}

}  // namespace mce::exec
