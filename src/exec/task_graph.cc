#include "exec/task_graph.h"

#include <algorithm>

#include "decomp/filter.h"

namespace mce::exec {

BlockTaskDescriptor MakeBlockTaskDescriptor(
    const decomp::Block& block, const decomp::BlockAnalysisResult& result,
    double seconds, uint32_t level, uint64_t index) {
  BlockTaskDescriptor d;
  d.level = level;
  d.index = index;
  d.nodes = block.num_nodes();
  d.edges = block.num_edges();
  d.bytes = block.EstimatedBytes();
  d.estimated_cost = static_cast<double>(d.edges + d.nodes);
  d.compute_seconds = seconds;
  d.cliques = result.num_cliques;
  d.used = result.used;
  return d;
}

decomp::BlocksOptions BlocksOptionsFor(
    const decomp::FindMaxCliquesOptions& options) {
  decomp::BlocksOptions blocks_options;
  blocks_options.max_block_size = options.max_block_size;
  blocks_options.min_adjacency = options.min_adjacency;
  blocks_options.seed_policy = options.seed_policy;
  return blocks_options;
}

decomp::BlockAnalysisOptions AnalysisOptionsFor(
    const decomp::FindMaxCliquesOptions& options) {
  decomp::BlockAnalysisOptions analysis_options;
  analysis_options.tree = options.tree;
  analysis_options.fixed = options.fixed;
  return analysis_options;
}

std::vector<NodeId> ComposeToOriginal(const std::vector<NodeId>& to_original,
                                      const std::vector<NodeId>& to_parent) {
  if (to_original.empty()) return to_parent;
  std::vector<NodeId> composed;
  composed.reserve(to_parent.size());
  for (NodeId v : to_parent) composed.push_back(to_original[v]);
  return composed;
}

bool MapAndFilterClique(const Graph& original,
                        std::span<const NodeId> level_ids,
                        const std::vector<NodeId>& to_original, uint32_t level,
                        Clique* out) {
  out->clear();
  out->reserve(level_ids.size());
  if (to_original.empty()) {
    out->assign(level_ids.begin(), level_ids.end());
  } else {
    for (NodeId v : level_ids) out->push_back(to_original[v]);
  }
  std::sort(out->begin(), out->end());
  return level == 0 || decomp::IsMaximalInGraph(original, *out);
}

std::vector<std::pair<size_t, size_t>> FilterChunks(size_t items,
                                                    size_t workers) {
  std::vector<std::pair<size_t, size_t>> chunks;
  if (items == 0) return chunks;
  const size_t count = std::min(items, std::max<size_t>(1, workers) * 4);
  chunks.reserve(count);
  for (size_t c = 0; c < count; ++c) {
    const size_t begin = items * c / count;
    const size_t end = items * (c + 1) / count;
    if (begin < end) chunks.emplace_back(begin, end);
  }
  return chunks;
}

}  // namespace mce::exec
