#include "incremental/incremental_mce.h"

#include <algorithm>
#include <string>

#include "graph/builder.h"
#include "mce/enumerator.h"
#include "util/check.h"

namespace mce::incremental {

namespace {

/// True iff `inner` (sorted) is a subset of `outer` (sorted).
bool IsSubset(const Clique& inner, const Clique& outer) {
  return inner.size() <= outer.size() &&
         std::includes(outer.begin(), outer.end(), inner.begin(),
                       inner.end());
}

}  // namespace

IncrementalMce::IncrementalMce(const Graph& initial)
    : graph_(initial), member_(initial.num_nodes()) {
  const MceOptions options{Algorithm::kEppstein, StorageKind::kAdjacencyList};
  UpdateStats ignored;
  EnumerateMaximalCliques(initial, options, [&](std::span<const NodeId> c) {
    Clique clique(c.begin(), c.end());
    std::sort(clique.begin(), clique.end());
    Insert(std::move(clique), &ignored);
  });
}

void IncrementalMce::Insert(Clique clique, UpdateStats* stats) {
  MCE_DCHECK(std::is_sorted(clique.begin(), clique.end()));
  auto [it, inserted] = by_content_.emplace(clique, next_id_);
  if (!inserted) return;  // already tracked
  const CliqueId id = next_id_++;
  for (NodeId v : clique) member_[v].insert(id);
  cliques_.emplace(id, std::move(clique));
  ++stats->cliques_added;
}

void IncrementalMce::Erase(CliqueId id, UpdateStats* stats) {
  auto it = cliques_.find(id);
  MCE_CHECK(it != cliques_.end());
  for (NodeId v : it->second) member_[v].erase(id);
  by_content_.erase(it->second);
  cliques_.erase(it);
  ++stats->cliques_removed;
}

std::vector<IncrementalMce::CliqueId> IncrementalMce::IdsContaining(
    NodeId v) const {
  return {member_[v].begin(), member_[v].end()};
}

bool IncrementalMce::IsMaximalNow(const Clique& clique) const {
  if (clique.empty()) return false;
  // Common neighborhood of all members, via repeated intersection of the
  // (sorted) adjacency vectors, smallest first.
  size_t smallest = 0;
  for (size_t i = 1; i < clique.size(); ++i) {
    if (graph_.Degree(clique[i]) < graph_.Degree(clique[smallest])) {
      smallest = i;
    }
  }
  std::vector<NodeId> common = graph_.Neighbors(clique[smallest]);
  std::vector<NodeId> next;
  for (size_t i = 0; i < clique.size() && !common.empty(); ++i) {
    if (i == smallest) continue;
    const auto& nbrs = graph_.Neighbors(clique[i]);
    next.clear();
    std::set_intersection(common.begin(), common.end(), nbrs.begin(),
                          nbrs.end(), std::back_inserter(next));
    common.swap(next);
  }
  return common.empty();
}

NodeId IncrementalMce::AddNode() {
  const NodeId v = graph_.AddNode();
  member_.emplace_back();
  UpdateStats ignored;
  Insert(Clique{v}, &ignored);
  return v;
}

Result<UpdateStats> IncrementalMce::AddEdge(NodeId u, NodeId v) {
  if (u >= graph_.num_nodes() || v >= graph_.num_nodes()) {
    return Status::OutOfRange("endpoint out of range");
  }
  if (u == v) return Status::InvalidArgument("self-loop");
  if (!graph_.AddEdge(u, v)) {
    return Status::AlreadyExists("edge {" + std::to_string(u) + "," +
                                 std::to_string(v) + "} already present");
  }
  UpdateStats stats;

  // New maximal cliques: {u, v} u K for each maximal clique K of the
  // common-neighborhood subgraph.
  std::vector<Clique> fresh;
  std::vector<NodeId> common = graph_.CommonNeighbors(u, v);
  if (common.empty()) {
    fresh.push_back({std::min(u, v), std::max(u, v)});
  } else {
    // Induce the common neighborhood directly from the dynamic adjacency
    // (O(sum of member degrees); no whole-graph snapshot). `common` is
    // sorted, so local ids map back by index.
    GraphBuilder builder(static_cast<NodeId>(common.size()));
    for (NodeId local = 0; local < common.size(); ++local) {
      const auto& nbrs = graph_.Neighbors(common[local]);
      // Intersect this member's neighbors with the (sorted) common set.
      size_t ci = local + 1;  // only pairs (local, later) -> each edge once
      for (NodeId w : nbrs) {
        while (ci < common.size() && common[ci] < w) ++ci;
        if (ci == common.size()) break;
        if (common[ci] == w) {
          builder.AddEdge(local, static_cast<NodeId>(ci));
          ++ci;
        }
      }
    }
    Graph sub = builder.Build();
    const MceOptions options{Algorithm::kTomita,
                             StorageKind::kAdjacencyList};
    EnumerateMaximalCliques(sub, options,
                            [&](std::span<const NodeId> local) {
                              Clique c;
                              c.reserve(local.size() + 2);
                              for (NodeId i : local) c.push_back(common[i]);
                              c.push_back(u);
                              c.push_back(v);
                              std::sort(c.begin(), c.end());
                              fresh.push_back(std::move(c));
                            });
  }

  // Previously-maximal cliques die iff (containing u or v) they are now
  // covered by a fresh clique.
  std::vector<CliqueId> candidates = IdsContaining(u);
  {
    std::vector<CliqueId> also_v = IdsContaining(v);
    candidates.insert(candidates.end(), also_v.begin(), also_v.end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (CliqueId id : candidates) {
    const Clique& old = cliques_.at(id);
    for (const Clique& f : fresh) {
      if (IsSubset(old, f)) {
        Erase(id, &stats);
        break;
      }
    }
  }
  for (Clique& f : fresh) Insert(std::move(f), &stats);
  return stats;
}

Result<UpdateStats> IncrementalMce::RemoveEdge(NodeId u, NodeId v) {
  if (u >= graph_.num_nodes() || v >= graph_.num_nodes()) {
    return Status::OutOfRange("endpoint out of range");
  }
  if (u == v) return Status::InvalidArgument("self-loop");
  // Affected cliques contain both endpoints; gather BEFORE the removal.
  std::vector<CliqueId> affected;
  for (CliqueId id : IdsContaining(u)) {
    if (member_[v].count(id)) affected.push_back(id);
  }
  if (!graph_.RemoveEdge(u, v)) {
    return Status::NotFound("edge {" + std::to_string(u) + "," +
                            std::to_string(v) + "} not present");
  }
  UpdateStats stats;
  for (CliqueId id : affected) {
    Clique whole = cliques_.at(id);
    Erase(id, &stats);
    for (NodeId drop : {u, v}) {
      Clique half = whole;
      half.erase(std::find(half.begin(), half.end(), drop));
      if (half.empty()) continue;
      if (by_content_.count(half)) continue;
      if (IsMaximalNow(half)) Insert(std::move(half), &stats);
    }
  }
  return stats;
}

CliqueSet IncrementalMce::CurrentCliques() const {
  CliqueSet out;
  for (const auto& [content, id] : by_content_) out.Add(content);
  return out;
}

size_t IncrementalMce::CliquesContaining(NodeId v) const {
  MCE_CHECK_LT(v, member_.size());
  return member_[v].size();
}

}  // namespace mce::incremental
