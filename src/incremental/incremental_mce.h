// Incremental maximal clique maintenance under edge updates.
//
// Section 8 lists "an incremental version of our approach that takes into
// account the evolution of the social network" as future work; this module
// provides it for single-edge updates. The maintained invariant is exact:
// after every update the engine holds precisely the maximal cliques of the
// current graph.
//
// Update rules (both directions are local to the touched edge):
//  * insert {u,v}: the new maximal cliques are {u,v} u K for each maximal
//    clique K of the subgraph induced by the common neighborhood
//    N(u) n N(v); previously-maximal cliques die iff they contain u or v
//    and are covered by a new clique.
//  * delete {u,v}: every clique containing both endpoints splits into its
//    two halves C \ {u} and C \ {v}, each kept iff still maximal (no
//    common neighbor) and not already present.
//
// Cost per update is bounded by the MCE of the common-neighborhood
// subgraph plus index maintenance over the cliques touching u and v —
// i.e., proportional to the local density, never to the whole graph.

#ifndef MCE_INCREMENTAL_INCREMENTAL_MCE_H_
#define MCE_INCREMENTAL_INCREMENTAL_MCE_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "mce/clique.h"
#include "util/status.h"

namespace mce::incremental {

struct UpdateStats {
  uint64_t cliques_added = 0;
  uint64_t cliques_removed = 0;
};

class IncrementalMce {
 public:
  /// Initializes from `initial`, computing its maximal cliques once.
  explicit IncrementalMce(const Graph& initial);

  /// Inserts the edge and updates the clique set. Errors when the edge
  /// already exists, endpoints are out of range, or u == v.
  Result<UpdateStats> AddEdge(NodeId u, NodeId v);

  /// Removes the edge and updates the clique set. Errors when absent.
  Result<UpdateStats> RemoveEdge(NodeId u, NodeId v);

  /// Appends an isolated node (which is immediately a maximal clique of
  /// size 1) and returns its id.
  NodeId AddNode();

  const DynamicGraph& graph() const { return graph_; }
  size_t num_cliques() const { return by_content_.size(); }

  /// The current maximal cliques, canonicalized (sorted, deduplicated —
  /// the engine never holds duplicates).
  CliqueSet CurrentCliques() const;

  /// Number of maximal cliques containing `v`.
  size_t CliquesContaining(NodeId v) const;

 private:
  using CliqueId = uint64_t;

  void Insert(Clique clique, UpdateStats* stats);
  void Erase(CliqueId id, UpdateStats* stats);
  /// Ids of cliques containing `v` (copy, safe to mutate during).
  std::vector<CliqueId> IdsContaining(NodeId v) const;
  bool IsMaximalNow(const Clique& clique) const;

  DynamicGraph graph_;
  CliqueId next_id_ = 0;
  std::unordered_map<CliqueId, Clique> cliques_;
  /// Canonical content -> id, for duplicate and membership queries.
  std::map<Clique, CliqueId> by_content_;
  /// Per-vertex membership index.
  std::vector<std::unordered_set<CliqueId>> member_;
};

}  // namespace mce::incremental

#endif  // MCE_INCREMENTAL_INCREMENTAL_MCE_H_
