#include "dist/cost_model.h"

// Header-only today; this TU anchors the module in the build so future
// non-inline additions have a home.
