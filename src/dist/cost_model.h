// Cost model of the simulated cluster.
//
// The paper deploys on a 10-node cluster (8 GB RAM each, TORQUE scheduler,
// Lustre FS over a LAN). This environment has no MPI and one core, so the
// distributed layer is *simulated*: block tasks really execute (serially)
// and their measured compute times are combined with an analytic
// communication/IO model to produce per-worker timelines, makespan, skew,
// and communication volume. See DESIGN.md ("Substitutions").

#ifndef MCE_DIST_COST_MODEL_H_
#define MCE_DIST_COST_MODEL_H_

#include <cstdint>

namespace mce::dist {

struct CostModel {
  /// Fixed per-message latency (seconds) — TCP round trip on a LAN.
  double network_latency_s = 2e-4;
  /// Network throughput for shipping serialized blocks.
  double network_bandwidth_bytes_per_s = 117.0 * 1024 * 1024;  // ~1 GbE
  /// Shared-filesystem read throughput (Lustre-ish).
  double disk_bandwidth_bytes_per_s = 400.0 * 1024 * 1024;
  /// Multiplier applied to measured compute seconds (models slower or
  /// faster worker CPUs relative to this machine).
  double cpu_speed_factor = 1.0;

  /// Time to ship `bytes` over the network (one message).
  double ShipSeconds(uint64_t bytes) const {
    return network_latency_s +
           static_cast<double>(bytes) / network_bandwidth_bytes_per_s;
  }

  /// Time to read `bytes` from the shared filesystem.
  double DiskSeconds(uint64_t bytes) const {
    return static_cast<double>(bytes) / disk_bandwidth_bytes_per_s;
  }

  /// Worker-side duration of a task measured at `seconds` locally.
  double ComputeSeconds(double seconds) const {
    return seconds * cpu_speed_factor;
  }
};

}  // namespace mce::dist

#endif  // MCE_DIST_COST_MODEL_H_
