// Distributed FIND-MAX-CLIQUES: the full pipeline with the block-analysis
// phase placed on the simulated cluster.
//
// The clique output is byte-identical to the serial FindMaxCliques (the
// placement of block tasks cannot change which cliques exist); what the
// cluster adds is the timing dimension: per-level makespan, speedup, load
// skew, and communication volume under a chosen partitioning strategy.

#ifndef MCE_DIST_DISTRIBUTED_MCE_H_
#define MCE_DIST_DISTRIBUTED_MCE_H_

#include <vector>

#include "decomp/find_max_cliques.h"
#include "dist/cluster.h"
#include "graph/graph.h"

namespace mce::dist {

struct DistributedLevel {
  SimulationResult simulation;
  /// Simulated distributed decomposition time for this level: the measured
  /// serial CUT+BLOCKS time divided across workers plus the shared-FS read
  /// of the level's edge data (Section 6.2 splits the input across
  /// machines).
  double decompose_seconds = 0;
};

struct DistributedResult {
  /// The complete algorithmic result (cliques, per-level stats, fallback
  /// flag) — identical to the serial run.
  decomp::FindMaxCliquesResult algorithm;
  /// One simulation per recursion level, same order as algorithm.levels.
  std::vector<DistributedLevel> levels;

  /// End-to-end simulated wall time (decomposition + analysis makespans).
  double TotalSeconds() const;
  /// Serial-equivalent analysis time across all levels.
  double SerialAnalysisSeconds() const;
  /// Aggregate speedup of the analysis phase, communication included
  /// (can dip below 1 when tasks are tiny relative to network latency).
  double AnalysisSpeedup() const;
  /// Placement-quality speedup: compute time only, in [1, workers].
  double AnalysisComputeSpeedup() const;
};

DistributedResult RunDistributedMce(const Graph& g,
                                    decomp::FindMaxCliquesOptions options,
                                    const ClusterConfig& cluster);

}  // namespace mce::dist

#endif  // MCE_DIST_DISTRIBUTED_MCE_H_
