#include "dist/distributed_mce.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace mce::dist {

double DistributedResult::TotalSeconds() const {
  double total = 0;
  for (const DistributedLevel& l : levels) {
    total += l.decompose_seconds + l.simulation.makespan_seconds;
  }
  return total;
}

double DistributedResult::SerialAnalysisSeconds() const {
  double total = 0;
  for (const DistributedLevel& l : levels) {
    total += l.simulation.total_compute_seconds;
  }
  return total;
}

double DistributedResult::AnalysisSpeedup() const {
  double makespan = 0;
  for (const DistributedLevel& l : levels) {
    makespan += l.simulation.makespan_seconds;
  }
  double serial = SerialAnalysisSeconds();
  return makespan > 0 ? serial / makespan : 1.0;
}

double DistributedResult::AnalysisComputeSpeedup() const {
  double busiest = 0;
  double serial = 0;
  for (const DistributedLevel& l : levels) {
    double level_busiest = 0;
    for (const WorkerTimeline& w : l.simulation.workers) {
      level_busiest = std::max(level_busiest, w.compute_seconds);
    }
    busiest += level_busiest;
    serial += l.simulation.total_compute_seconds;
  }
  return busiest > 0 ? serial / busiest : 1.0;
}

DistributedResult RunDistributedMce(const Graph& g,
                                    decomp::FindMaxCliquesOptions options,
                                    const ClusterConfig& cluster) {
  // Collect the block tasks of each recursion level while the pipeline
  // runs; the scheduler sees only pre-execution estimates (block edges).
  // The pipeline invokes the observer from its calling thread in block
  // order even when options.num_threads > 1 (worker-local parallelism of
  // the measurement run), so no synchronization is needed here.
  std::vector<std::vector<Task>> tasks_per_level;
  options.block_observer = [&](const decomp::BlockTaskRecord& record) {
    if (tasks_per_level.size() <= record.level) {
      tasks_per_level.resize(record.level + 1);
    }
    Task t;
    t.estimated_cost = static_cast<double>(record.edges + record.nodes);
    t.compute_seconds = record.seconds;
    t.bytes = record.bytes;
    tasks_per_level[record.level].push_back(t);
  };

  DistributedResult out;
  out.algorithm = decomp::FindMaxCliques(g, options);

  tasks_per_level.resize(out.algorithm.levels.size());
  for (size_t level = 0; level < out.algorithm.levels.size(); ++level) {
    DistributedLevel dl;
    dl.simulation = SimulateCluster(tasks_per_level[level], cluster);
    // Decomposition: the level's edge file is read from the shared FS and
    // the CUT+BLOCKS work parallelizes across workers (Section 6.2 splits
    // the dataset per machine).
    const decomp::LevelStats& stats = out.algorithm.levels[level];
    const uint64_t level_bytes =
        stats.num_edges * 2 * sizeof(NodeId) + stats.num_nodes * sizeof(NodeId);
    dl.decompose_seconds =
        cluster.cost.DiskSeconds(level_bytes) +
        cluster.cost.ComputeSeconds(stats.decompose_seconds) /
            cluster.num_workers;
    out.levels.push_back(dl);
  }
  return out;
}

}  // namespace mce::dist
