#include "dist/distributed_mce.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "exec/cluster_executor.h"
#include "exec/executor.h"

namespace mce::dist {

double DistributedResult::TotalSeconds() const {
  double total = 0;
  for (const DistributedLevel& l : levels) {
    total += l.decompose_seconds + l.simulation.makespan_seconds;
  }
  return total;
}

double DistributedResult::SerialAnalysisSeconds() const {
  double total = 0;
  for (const DistributedLevel& l : levels) {
    total += l.simulation.total_compute_seconds;
  }
  return total;
}

double DistributedResult::AnalysisSpeedup() const {
  double makespan = 0;
  for (const DistributedLevel& l : levels) {
    makespan += l.simulation.makespan_seconds;
  }
  double serial = SerialAnalysisSeconds();
  return makespan > 0 ? serial / makespan : 1.0;
}

double DistributedResult::AnalysisComputeSpeedup() const {
  double busiest = 0;
  double serial = 0;
  for (const DistributedLevel& l : levels) {
    double level_busiest = 0;
    for (const WorkerTimeline& w : l.simulation.workers) {
      level_busiest = std::max(level_busiest, w.compute_seconds);
    }
    busiest += level_busiest;
    serial += l.simulation.total_compute_seconds;
  }
  return busiest > 0 ? serial / busiest : 1.0;
}

DistributedResult RunDistributedMce(const Graph& g,
                                    decomp::FindMaxCliquesOptions options,
                                    const ClusterConfig& cluster) {
  // Thin driver over the execution engine: the simulated-cluster executor
  // wraps the engine picked by the options and schedules the real
  // BlockTask descriptors the engine executes, one simulation per
  // recursion level. The caller's block_observer (if any) still fires
  // normally — the simulation no longer hijacks it.
  exec::SimulatedClusterExecutor executor(cluster,
                                          exec::MakeExecutor(options));
  DistributedResult out;
  out.algorithm = exec::CollectToResult(executor, g, options);
  out.levels.reserve(executor.levels().size());
  for (const exec::LevelSimulation& ls : executor.levels()) {
    out.levels.push_back(DistributedLevel{ls.simulation, ls.decompose_seconds});
  }
  return out;
}

}  // namespace mce::dist
