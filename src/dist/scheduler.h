// Task-to-worker assignment strategies.
//
// The paper (Section 7) points out that the random/hash partitioning used
// by general graph systems is the worst choice for scale-free networks;
// its own decomposition produces dense chunks of heterogeneous size that a
// load-aware scheduler can balance. Both strategies are provided so the
// ablation bench can compare them.

#ifndef MCE_DIST_SCHEDULER_H_
#define MCE_DIST_SCHEDULER_H_

#include <cstdint>
#include <vector>

namespace mce::dist {

enum class PartitionStrategy : uint8_t {
  /// Greedy longest-processing-time: next-heaviest task to the currently
  /// least-loaded worker.
  kGreedyLpt = 0,
  /// Hash of the task index — the Pregel/PowerGraph-style baseline.
  kHash = 1,
  /// Round robin in task order.
  kRoundRobin = 2,
};

const char* ToString(PartitionStrategy s);

/// Returns assignment[i] = worker of task i (0-based), given each task's
/// estimated cost. `num_workers` must be >= 1.
std::vector<int> AssignTasks(const std::vector<double>& estimated_cost,
                             int num_workers, PartitionStrategy strategy,
                             uint64_t seed = 0);

}  // namespace mce::dist

#endif  // MCE_DIST_SCHEDULER_H_
