// Cluster simulation: turns a list of measured block tasks into per-worker
// timelines under a cost model and a partitioning strategy.

#ifndef MCE_DIST_CLUSTER_H_
#define MCE_DIST_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "dist/cost_model.h"
#include "dist/scheduler.h"

namespace mce::dist {

struct ClusterConfig {
  /// The paper's testbed has 10 machines.
  int num_workers = 10;
  /// Intra-worker parallelism: each simulated machine runs its assigned
  /// block tasks on this many threads (the paper's nodes have 4 CPUs x 8
  /// threads). Tasks are placed on a worker's least-loaded thread in
  /// arrival order; a worker's compute time is then its busiest thread
  /// rather than the sum over its tasks. 1 reproduces the serial-worker
  /// model.
  int threads_per_worker = 1;
  CostModel cost;
  PartitionStrategy strategy = PartitionStrategy::kGreedyLpt;
  /// Seed for hash partitioning.
  uint64_t seed = 7;
  /// Optional per-worker speed multipliers on compute time (1.0 = the
  /// cost model's base speed, 2.0 = half as fast — a straggler). Empty
  /// means homogeneous; otherwise must have num_workers entries. The
  /// paper's TORQUE testbed is time-shared, so heterogeneous load is the
  /// realistic regime ([38]'s skew analysis).
  std::vector<double> worker_slowdown;
};

/// One schedulable unit of work (a block analysis task).
struct Task {
  /// Estimated cost used by the scheduler (available before execution —
  /// here the block's edge count).
  double estimated_cost = 0;
  /// Measured compute seconds (scaled by the cost model's CPU factor).
  double compute_seconds = 0;
  /// Bytes shipped to the worker (block serialization).
  uint64_t bytes = 0;
};

struct WorkerTimeline {
  double compute_seconds = 0;
  double comm_seconds = 0;
  uint64_t bytes_received = 0;
  uint64_t tasks = 0;

  double TotalSeconds() const { return compute_seconds + comm_seconds; }
};

struct SimulationResult {
  std::vector<WorkerTimeline> workers;
  std::vector<int> assignment;  // task -> worker
  /// Per-task placement detail, parallel to `assignment`: the global lane
  /// the task ran on (worker * threads_per_worker + thread), its start
  /// offset on that lane's compute timeline, and its simulated compute
  /// duration (slowdown applied). Lanes model compute only; communication
  /// is accounted per worker. These are the simulated-cluster timeline
  /// lanes of the trace export.
  std::vector<int> task_lane;
  std::vector<double> task_start_seconds;
  std::vector<double> task_compute_seconds;
  /// Wall-clock of the parallel phase: the busiest worker's total.
  double makespan_seconds = 0;
  /// Sum of compute over all tasks (the serial-equivalent time).
  double total_compute_seconds = 0;
  double total_comm_seconds = 0;

  /// Load skew: busiest worker / mean worker (1.0 = perfectly balanced).
  double Skew() const;
  /// total compute / makespan — achieved end-to-end speedup. Can drop
  /// below 1 when per-task communication latency dominates tiny tasks.
  double Speedup() const;
  /// total compute / busiest worker's compute — parallelization quality of
  /// the placement alone, always in [1, num_workers].
  double ComputeSpeedup() const;
};

/// Assigns `tasks` to workers and accumulates their timelines.
SimulationResult SimulateCluster(const std::vector<Task>& tasks,
                                 const ClusterConfig& config);

}  // namespace mce::dist

#endif  // MCE_DIST_CLUSTER_H_
