#include "dist/scheduler.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/check.h"
#include "util/random.h"

namespace mce::dist {

const char* ToString(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kGreedyLpt:
      return "greedy-lpt";
    case PartitionStrategy::kHash:
      return "hash";
    case PartitionStrategy::kRoundRobin:
      return "round-robin";
  }
  return "?";
}

std::vector<int> AssignTasks(const std::vector<double>& estimated_cost,
                             int num_workers, PartitionStrategy strategy,
                             uint64_t seed) {
  MCE_CHECK_GE(num_workers, 1);
  std::vector<int> assignment(estimated_cost.size(), 0);
  switch (strategy) {
    case PartitionStrategy::kGreedyLpt: {
      // Process tasks heaviest-first; each goes to the least-loaded worker.
      std::vector<size_t> order(estimated_cost.size());
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return estimated_cost[a] > estimated_cost[b];
      });
      // Min-heap of (load, worker).
      using Entry = std::pair<double, int>;
      std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
      for (int w = 0; w < num_workers; ++w) heap.emplace(0.0, w);
      for (size_t task : order) {
        auto [load, w] = heap.top();
        heap.pop();
        assignment[task] = w;
        heap.emplace(load + estimated_cost[task], w);
      }
      break;
    }
    case PartitionStrategy::kHash: {
      uint64_t state = seed ^ 0x9e3779b97f4a7c15ULL;
      for (size_t i = 0; i < estimated_cost.size(); ++i) {
        uint64_t mix = state + i;
        assignment[i] = static_cast<int>(SplitMix64(&mix) %
                                         static_cast<uint64_t>(num_workers));
      }
      break;
    }
    case PartitionStrategy::kRoundRobin: {
      for (size_t i = 0; i < estimated_cost.size(); ++i) {
        assignment[i] = static_cast<int>(i % num_workers);
      }
      break;
    }
  }
  return assignment;
}

}  // namespace mce::dist
