#include "dist/cluster.h"

#include <algorithm>

#include "util/check.h"

namespace mce::dist {

double SimulationResult::Skew() const {
  if (workers.empty()) return 1.0;
  double max_load = 0;
  double total = 0;
  for (const WorkerTimeline& w : workers) {
    max_load = std::max(max_load, w.TotalSeconds());
    total += w.TotalSeconds();
  }
  double mean = total / static_cast<double>(workers.size());
  return mean > 0 ? max_load / mean : 1.0;
}

double SimulationResult::Speedup() const {
  return makespan_seconds > 0 ? total_compute_seconds / makespan_seconds : 1.0;
}

double SimulationResult::ComputeSpeedup() const {
  double max_compute = 0;
  for (const WorkerTimeline& w : workers) {
    max_compute = std::max(max_compute, w.compute_seconds);
  }
  return max_compute > 0 ? total_compute_seconds / max_compute : 1.0;
}

SimulationResult SimulateCluster(const std::vector<Task>& tasks,
                                 const ClusterConfig& config) {
  MCE_CHECK_GE(config.num_workers, 1);
  MCE_CHECK_GE(config.threads_per_worker, 1);
  if (!config.worker_slowdown.empty()) {
    MCE_CHECK_EQ(config.worker_slowdown.size(),
                 static_cast<size_t>(config.num_workers));
    for (double s : config.worker_slowdown) MCE_CHECK_GT(s, 0.0);
  }
  std::vector<double> estimates;
  estimates.reserve(tasks.size());
  for (const Task& t : tasks) estimates.push_back(t.estimated_cost);

  SimulationResult result;
  result.assignment =
      AssignTasks(estimates, config.num_workers, config.strategy, config.seed);
  result.workers.assign(config.num_workers, WorkerTimeline{});

  // Intra-worker thread loads: each worker's tasks go to its least-loaded
  // thread in arrival order; the worker's compute time is its busiest
  // thread's load (== the plain task sum when threads_per_worker is 1).
  std::vector<std::vector<double>> threads(
      config.num_workers,
      std::vector<double>(config.threads_per_worker, 0.0));

  // Blocks stream to each worker over one connection: the per-message
  // latency is paid once per busy worker, bytes are paid per task.
  result.task_lane.reserve(tasks.size());
  result.task_start_seconds.reserve(tasks.size());
  result.task_compute_seconds.reserve(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    const Task& t = tasks[i];
    const int worker = result.assignment[i];
    WorkerTimeline& w = result.workers[worker];
    const double slowdown = config.worker_slowdown.empty()
                                ? 1.0
                                : config.worker_slowdown[worker];
    const double compute =
        config.cost.ComputeSeconds(t.compute_seconds) * slowdown;
    const double comm = static_cast<double>(t.bytes) /
                        config.cost.network_bandwidth_bytes_per_s;
    std::vector<double>& lanes = threads[worker];
    const auto lane = std::min_element(lanes.begin(), lanes.end());
    result.task_lane.push_back(worker * config.threads_per_worker +
                               static_cast<int>(lane - lanes.begin()));
    result.task_start_seconds.push_back(*lane);
    result.task_compute_seconds.push_back(compute);
    *lane += compute;
    w.comm_seconds += comm;
    w.bytes_received += t.bytes;
    ++w.tasks;
    result.total_compute_seconds += compute;
    result.total_comm_seconds += comm;
  }
  for (int worker = 0; worker < config.num_workers; ++worker) {
    result.workers[worker].compute_seconds =
        *std::max_element(threads[worker].begin(), threads[worker].end());
  }
  for (WorkerTimeline& w : result.workers) {
    if (w.tasks > 0) {
      w.comm_seconds += config.cost.network_latency_s;
      result.total_comm_seconds += config.cost.network_latency_s;
    }
  }
  for (const WorkerTimeline& w : result.workers) {
    result.makespan_seconds = std::max(result.makespan_seconds,
                                       w.TotalSeconds());
  }
  return result;
}

}  // namespace mce::dist
