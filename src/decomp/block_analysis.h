// Per-block clique detection (Algorithm 4, BLOCK-ANALYSIS).
//
// For each kernel node k of a block, enumerates the maximal cliques that
// contain k but no visited node and no kernel processed earlier; k then
// joins the visited set. Globally — kernels partition the feasible nodes
// and "visited" reflects the block build order — every maximal clique of G
// containing at least one feasible node is reported exactly once, by the
// block owning its first-processed kernel.
//
// The MCE routine is chosen per block: a decision tree over the block's
// features (the paper's bestfit), or a fixed combination.

#ifndef MCE_DECOMP_BLOCK_ANALYSIS_H_
#define MCE_DECOMP_BLOCK_ANALYSIS_H_

#include <cstddef>
#include <cstdint>

#include "decision/decision_tree.h"
#include "decomp/block.h"
#include "mce/clique.h"
#include "mce/enumerator.h"
#include "mce/workspace.h"

namespace mce::decomp {

struct BlockAnalysisOptions {
  /// When set, bestfit(block) consults this tree; otherwise `fixed` is used.
  const decision::DecisionTree* tree = nullptr;
  MceOptions fixed = {Algorithm::kTomita, StorageKind::kAdjacencyList};
  /// Memory guard: if the selected dense storage (matrix/bitset) would
  /// exceed this many bytes for the block, fall back to adjacency lists.
  /// 0 disables the guard.
  uint64_t max_storage_bytes = 512ull << 20;
};

struct BlockAnalysisResult {
  /// The data-structure/algorithm combination that actually ran.
  MceOptions used;
  /// Number of cliques emitted by this block.
  uint64_t num_cliques = 0;
};

/// Runs Algorithm 4 on `block`, emitting cliques translated to the parent
/// graph's node ids. With a non-null `workspace`, all scratch memory (the
/// kernel recursion pools, the role/translate buffers, and the dense
/// matrix/bitset views) is drawn from it, so a caller that reuses one
/// workspace per worker thread analyzes a stream of blocks without
/// steady-state allocation; with nullptr a transient workspace is used.
/// `emit` receives each clique as a span into workspace memory that is
/// overwritten by the next clique — it must copy what it keeps.
BlockAnalysisResult AnalyzeBlock(const Block& block,
                                 const BlockAnalysisOptions& options,
                                 const CliqueCallback& emit,
                                 BlockWorkspace* workspace = nullptr);

/// A contiguous range [begin, end) of indices into Block::kernel_local —
/// the unit an executor splits an oversized BlockTask into.
struct KernelRange {
  size_t begin = 0;
  size_t end = 0;
};

/// Kernel-range overload of Algorithm 4: runs the per-kernel loop only for
/// kernel_local[range.begin, range.end), with every kernel before the
/// range already counted as visited — exactly the loop state the whole-
/// block call reaches when it arrives at range.begin. Concatenating the
/// emissions of consecutive ranges covering [0, kernel_local.size())
/// reproduces the whole-block emission byte for byte, which is what lets
/// an executor analyze one block's shards on different workers and merge
/// the buffers back in kernel order. The bestfit classification still
/// looks at the whole block, so every shard runs the same combination the
/// undivided task would have.
BlockAnalysisResult AnalyzeBlock(const Block& block,
                                 const BlockAnalysisOptions& options,
                                 const CliqueCallback& emit,
                                 BlockWorkspace* workspace, KernelRange range);

}  // namespace mce::decomp

#endif  // MCE_DECOMP_BLOCK_ANALYSIS_H_
