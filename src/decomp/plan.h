// Decomposition introspection: run both levels WITHOUT analyzing blocks
// and expose the structural quantities that drive the cost trade-offs of
// Section 6 — block counts and sizes, and the node replication factor
// (border/visited copies shipped to several blocks), which is the overhead
// the paper credits for the efficiency falloff at very small m/d
// ("an increasing overlap among the neighborhood of each block").

#ifndef MCE_DECOMP_PLAN_H_
#define MCE_DECOMP_PLAN_H_

#include <cstdint>
#include <vector>

#include "decomp/blocks.h"
#include "graph/graph.h"

namespace mce::decomp {

struct LevelPlan {
  uint64_t num_nodes = 0;
  uint64_t feasible = 0;
  uint64_t hubs = 0;
  uint64_t blocks = 0;
  uint64_t min_block_nodes = 0;
  uint64_t max_block_nodes = 0;
  double avg_block_nodes = 0;
  /// Sum over blocks of their node counts, divided by the level's node
  /// count: 1.0 means a perfect partition; larger values quantify the
  /// border/visited duplication shipped across blocks.
  double replication_factor = 0;
  /// Total bytes the level's blocks would ship to workers.
  uint64_t total_block_bytes = 0;
};

struct DecompositionPlan {
  std::vector<LevelPlan> levels;
  bool hits_fallback = false;  // sparsity precondition violated

  uint64_t TotalBlocks() const;
  /// Replication factor across all levels (weighted by level node count).
  double OverallReplication() const;
};

struct PlanOptions {
  uint32_t max_block_size = 1000;
  uint32_t min_adjacency = 1;
  SeedPolicy seed_policy = SeedPolicy::kLowestDegree;
};

/// Computes the full multi-level decomposition structure of `g` without
/// enumerating any cliques.
DecompositionPlan ComputePlan(const Graph& g, const PlanOptions& options);

}  // namespace mce::decomp

#endif  // MCE_DECOMP_PLAN_H_
