// Multi-threaded block analysis: the intra-machine parallelism of the
// paper's workers (each cluster node runs its blocks on 8 hardware
// threads). Blocks are independent by construction (Section 3.2), so this
// is a straightforward parallel map; cliques from all blocks are merged
// deterministically (sorted by block index) so the output is identical to
// the serial loop.
//
// AnalyzeBlocksToBuffers is the shared engine: the FindMaxCliques pipeline
// runs its per-level block fan-out through it, and ParallelAnalyzeBlocks is
// the standalone convenience wrapper over the same code path.

#ifndef MCE_DECOMP_PARALLEL_ANALYSIS_H_
#define MCE_DECOMP_PARALLEL_ANALYSIS_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "decomp/block.h"
#include "decomp/block_analysis.h"
#include "decomp/find_max_cliques.h"
#include "mce/clique.h"
#include "mce/workspace.h"
#include "util/thread_pool.h"

namespace mce::decomp {

/// The one construction site for BlockTaskRecord telemetry — used by the
/// execution engine (src/exec), ParallelAnalyzeBlocks, and anything else
/// that reports an analyzed block to a block_observer.
BlockTaskRecord MakeBlockTaskRecord(const Block& block,
                                    const BlockAnalysisResult& result,
                                    double seconds, uint32_t level);

/// Everything one block's analysis produced, buffered so the caller can
/// merge blocks deterministically in block order.
struct BlockRun {
  BlockAnalysisResult result;
  /// The block's cliques (parent-graph ids, each sorted), in emission
  /// order.
  CliqueSet cliques;
  /// Wall time of this block's AnalyzeBlock call.
  double seconds = 0;
  /// The analysis window on the obs::NowMicros() trace timebase (equal
  /// when the caller did not record a span). The execution engine derives
  /// its per-level analysis windows — and hence LevelStats overlap/idle —
  /// from these instead of a second set of clocks.
  int64_t begin_us = 0;
  int64_t end_us = 0;
  /// Pool worker that ran the block (0 when run inline without a pool).
  size_t worker = 0;
};

/// Analyzes every block, each into its own BlockRun slot (parallel to
/// `blocks`). With a non-null `pool` the blocks run as pool tasks and the
/// call blocks until all finish; with a null pool they run inline on the
/// calling thread. Either way the returned buffers are identical.
///
/// `workspaces`, when non-null, supplies one BlockWorkspace per pool
/// worker (it is grown to the required size; slot 0 also serves the
/// pool-less inline path). Each worker reuses its slot across all the
/// blocks it runs — and, when the caller keeps the vector alive, across
/// calls (the per-level loop of FindMaxCliques does) — so block analysis
/// stops allocating once the buffers reach steady state. Workspaces are
/// keyed by ThreadPool::CurrentWorkerIndex, so slots are never shared
/// concurrently.
std::vector<BlockRun> AnalyzeBlocksToBuffers(
    const std::vector<Block>& blocks, const BlockAnalysisOptions& options,
    ThreadPool* pool, std::vector<BlockWorkspace>* workspaces = nullptr);

struct ParallelAnalysisResult {
  /// Union of all blocks' cliques, in block order (deterministic).
  CliqueSet cliques;
  /// Per-block outcomes, parallel to the input blocks.
  std::vector<BlockAnalysisResult> per_block;
};

/// Analyzes every block on `num_threads` workers. Equivalent to calling
/// AnalyzeBlock sequentially and concatenating, in block order. When
/// `block_observer` is set it receives one BlockTaskRecord per block — with
/// the block's measured analysis time — in block order, from the calling
/// thread (the observer need not be thread-safe); `level` is stamped into
/// the records.
ParallelAnalysisResult ParallelAnalyzeBlocks(
    const std::vector<Block>& blocks, const BlockAnalysisOptions& options,
    size_t num_threads,
    const std::function<void(const BlockTaskRecord&)>& block_observer = {},
    uint32_t level = 0);

}  // namespace mce::decomp

#endif  // MCE_DECOMP_PARALLEL_ANALYSIS_H_
