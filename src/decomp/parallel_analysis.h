// Multi-threaded block analysis: the intra-machine parallelism of the
// paper's workers (each cluster node runs its blocks on 8 hardware
// threads). Blocks are independent by construction (Section 3.2), so this
// is a straightforward parallel map; cliques from all blocks are merged
// deterministically (sorted by block index) so the output is identical to
// the serial loop.

#ifndef MCE_DECOMP_PARALLEL_ANALYSIS_H_
#define MCE_DECOMP_PARALLEL_ANALYSIS_H_

#include <cstddef>
#include <vector>

#include "decomp/block.h"
#include "decomp/block_analysis.h"
#include "mce/clique.h"

namespace mce::decomp {

struct ParallelAnalysisResult {
  /// Union of all blocks' cliques, in block order (deterministic).
  CliqueSet cliques;
  /// Per-block outcomes, parallel to the input blocks.
  std::vector<BlockAnalysisResult> per_block;
};

/// Analyzes every block on `num_threads` workers. Equivalent to calling
/// AnalyzeBlock sequentially and concatenating, in block order.
ParallelAnalysisResult ParallelAnalyzeBlocks(
    const std::vector<Block>& blocks, const BlockAnalysisOptions& options,
    size_t num_threads);

}  // namespace mce::decomp

#endif  // MCE_DECOMP_PARALLEL_ANALYSIS_H_
