#include "decomp/blocks.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "reduce/relabel.h"
#include "util/check.h"

namespace mce::decomp {

namespace {

/// Sorts seeds according to the policy; ties break toward the smaller id so
/// decomposition is deterministic.
std::vector<NodeId> OrderSeeds(const Graph& g,
                               const std::vector<NodeId>& feasible,
                               SeedPolicy policy) {
  std::vector<NodeId> seeds = feasible;
  switch (policy) {
    case SeedPolicy::kLowestDegree:
      std::stable_sort(seeds.begin(), seeds.end(), [&g](NodeId a, NodeId b) {
        if (g.Degree(a) != g.Degree(b)) return g.Degree(a) < g.Degree(b);
        return a < b;
      });
      break;
    case SeedPolicy::kHighestDegree:
      std::stable_sort(seeds.begin(), seeds.end(), [&g](NodeId a, NodeId b) {
        if (g.Degree(a) != g.Degree(b)) return g.Degree(a) > g.Degree(b);
        return a < b;
      });
      break;
    case SeedPolicy::kFirstId:
      std::sort(seeds.begin(), seeds.end());
      break;
  }
  return seeds;
}

}  // namespace

std::vector<Block> BuildBlocks(const Graph& g,
                               const std::vector<NodeId>& feasible,
                               const BlocksOptions& options) {
  std::vector<Block> blocks;
  BuildBlocksStreaming(g, feasible, options,
                       [&blocks](Block&& b) { blocks.push_back(std::move(b)); });
  return blocks;
}

void BuildBlocksStreaming(const Graph& g, const std::vector<NodeId>& feasible,
                          const BlocksOptions& options,
                          const BlockCallback& emit) {
  const uint32_t m = options.max_block_size;
  MCE_CHECK_GE(m, 1u);

  std::vector<uint8_t> is_feasible(g.num_nodes(), 0);
  for (NodeId v : feasible) {
    MCE_CHECK(static_cast<uint64_t>(g.Degree(v)) + 1 <= m);
    is_feasible[v] = 1;
  }
  // Nodes already used as a kernel (of this or an earlier block).
  std::vector<uint8_t> used_kernel(g.num_nodes(), 0);

  for (NodeId seed : OrderSeeds(g, feasible, options.seed_policy)) {
    if (used_kernel[seed]) continue;

    std::vector<NodeId> kernel;                    // K, parent ids
    std::unordered_set<NodeId> block_nodes;        // K u N(K)
    // Adjacency-with-K counts for candidate border nodes (feasible and not
    // yet kernel anywhere).
    std::unordered_map<NodeId, uint32_t> candidate_adjacency;
    // Candidates whose absorption overflowed m for this block. The block
    // only grows, so |K u {n} u N(K u {n})| is non-decreasing: once a
    // candidate is infeasible here it stays infeasible and never returns
    // to the candidate pool (it will seed or join a later block instead).
    std::unordered_set<NodeId> infeasible;

    auto promote = [&](NodeId n) {
      used_kernel[n] = 1;
      kernel.push_back(n);
      candidate_adjacency.erase(n);
      block_nodes.insert(n);
      for (NodeId w : g.Neighbors(n)) {
        block_nodes.insert(w);
        if (is_feasible[w] && !used_kernel[w] && !infeasible.count(w)) {
          ++candidate_adjacency[w];
        }
      }
    };

    promote(seed);

    for (;;) {
      // select(N_f n H): the candidate with the most kernel adjacencies.
      NodeId best = kInvalidNode;
      uint32_t best_adj = 0;
      for (const auto& [node, adj] : candidate_adjacency) {
        if (best == kInvalidNode || adj > best_adj ||
            (adj == best_adj && node < best)) {
          best = node;
          best_adj = adj;
        }
      }
      if (best == kInvalidNode) break;                    // no border left
      if (best_adj < options.min_adjacency) break;        // threshold stop
      // isfeasible(K u {best}): |K u {best} u N(K u {best})| <= m.
      uint64_t added = 0;
      for (NodeId w : g.Neighbors(best)) {
        if (!block_nodes.count(w)) ++added;
      }
      if (block_nodes.size() + added > m) {
        // Algorithm 3 guards absorption per candidate: this one can never
        // fit, but a candidate with a smaller un-absorbed neighborhood
        // still may — skip it and keep scanning.
        infeasible.insert(best);
        candidate_adjacency.erase(best);
        continue;
      }
      promote(best);
    }

    // Materialize the block.
    std::vector<NodeId> members(block_nodes.begin(), block_nodes.end());
    Block block;
    block.subgraph = Induce(g, members);
    const auto& to_parent = block.subgraph.to_parent;
    block.roles.resize(to_parent.size());
    std::unordered_set<NodeId> kernel_set(kernel.begin(), kernel.end());
    for (NodeId local = 0; local < to_parent.size(); ++local) {
      const NodeId parent = to_parent[local];
      if (kernel_set.count(parent)) {
        block.roles[local] = NodeRole::kKernel;
        block.kernel_local.push_back(local);
      } else if (used_kernel[parent]) {
        block.roles[local] = NodeRole::kVisited;
      } else {
        block.roles[local] = NodeRole::kBorder;
      }
    }
    if (options.degeneracy_relabel) reduce::DegeneracyRelabelBlock(&block);
    emit(std::move(block));
  }
}

}  // namespace mce::decomp
