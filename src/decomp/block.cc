#include "decomp/block.h"

#include <algorithm>

namespace mce::decomp {

size_t Block::CountRole(NodeRole role) const {
  return static_cast<size_t>(
      std::count(roles.begin(), roles.end(), role));
}

uint64_t Block::EstimatedBytes() const {
  return static_cast<uint64_t>(num_nodes()) * (sizeof(NodeId) + 1) +
         2 * num_edges() * sizeof(NodeId) + (num_nodes() + 1) * sizeof(uint64_t);
}

}  // namespace mce::decomp
