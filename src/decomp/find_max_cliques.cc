#include "decomp/find_max_cliques.h"

#include <algorithm>
#include <optional>
#include <thread>
#include <utility>

#include "decomp/block_analysis.h"
#include "decomp/cut.h"
#include "decomp/filter.h"
#include "decomp/parallel_analysis.h"
#include "graph/subgraph.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace mce::decomp {

uint64_t FindMaxCliquesResult::CliquesFromLevel(uint32_t min_level) const {
  uint64_t count = 0;
  for (uint32_t l : origin_level) {
    if (l >= min_level) ++count;
  }
  return count;
}

namespace {

/// 0 means one worker per hardware thread; otherwise the request stands.
size_t ResolveThreads(uint32_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

BlockTaskRecord MakeTaskRecord(const Block& block, const BlockRun& run,
                               uint32_t level) {
  BlockTaskRecord task;
  task.level = level;
  task.nodes = block.num_nodes();
  task.edges = block.num_edges();
  task.bytes = block.EstimatedBytes();
  task.cliques = run.result.num_cliques;
  task.seconds = run.seconds;
  task.used = run.result.used;
  return task;
}

/// One level's block analysis on the shared pool: fans the blocks out as
/// pool tasks (per-block clique buffers), then merges in block order —
/// level-0 cliques are emitted directly; deeper levels translate ids and
/// run the Lemma-1 maximality filter over all buffered cliques in parallel
/// before emitting the survivors, still in block order. Both `emit` and
/// the block observer run only on the calling thread. Returns the number
/// of cliques the blocks produced (before the filter).
uint64_t AnalyzeLevelOnPool(const Graph& g, const std::vector<Block>& blocks,
                            const BlockAnalysisOptions& analysis_options,
                            const FindMaxCliquesOptions& options,
                            ThreadPool& pool,
                            std::vector<BlockWorkspace>& workspaces,
                            uint32_t level,
                            const std::vector<NodeId>& to_original,
                            LevelStats& stats, StreamingStats& out,
                            const LeveledCliqueCallback& emit) {
  std::vector<BlockRun> runs =
      AnalyzeBlocksToBuffers(blocks, analysis_options, &pool, &workspaces);

  std::vector<double> worker_seconds(pool.num_threads(), 0.0);
  uint64_t produced = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    produced += runs[i].result.num_cliques;
    stats.block_seconds += runs[i].seconds;
    worker_seconds[runs[i].worker] += runs[i].seconds;
    if (options.block_observer) {
      options.block_observer(MakeTaskRecord(blocks[i], runs[i], level));
    }
  }
  stats.busiest_worker_seconds =
      *std::max_element(worker_seconds.begin(), worker_seconds.end());

  if (level == 0) {
    // to_original is the identity here and per-clique sorting already
    // happened in the per-block buffers, so the merge is a plain replay.
    for (const BlockRun& run : runs) {
      for (const Clique& clique : run.cliques.cliques()) {
        ++out.cliques_emitted;
        emit(clique, level);
      }
    }
    return produced;
  }

  // Deeper levels: translate to original ids and keep only cliques that
  // are maximal in G (the telescoped Lemma 1 filter) — independent
  // per-clique work, chunked across the pool.
  std::vector<const Clique*> pending;
  pending.reserve(produced);
  for (const BlockRun& run : runs) {
    for (const Clique& clique : run.cliques.cliques()) {
      pending.push_back(&clique);
    }
  }
  std::vector<Clique> mapped(pending.size());
  std::vector<uint8_t> keep(pending.size(), 0);
  const size_t chunk_count =
      std::min(pending.size(), pool.num_threads() * 4);
  for (size_t c = 0; c < chunk_count; ++c) {
    const size_t begin = pending.size() * c / chunk_count;
    const size_t end = pending.size() * (c + 1) / chunk_count;
    pool.Submit([&g, &to_original, &pending, &mapped, &keep, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        Clique clique;
        clique.reserve(pending[i]->size());
        for (NodeId v : *pending[i]) clique.push_back(to_original[v]);
        std::sort(clique.begin(), clique.end());
        if (IsMaximalInGraph(g, clique)) {
          keep[i] = 1;
          mapped[i] = std::move(clique);
        }
      }
    });
  }
  pool.Wait();
  for (size_t i = 0; i < mapped.size(); ++i) {
    if (!keep[i]) continue;
    ++out.cliques_emitted;
    emit(mapped[i], level);
  }
  return produced;
}

/// The shared recursion driver. `emit` receives each maximal clique of G
/// (sorted, original ids) exactly once, already past the Lemma 1 filter:
/// level-0 cliques are maximal by construction; deeper cliques are emitted
/// iff they are maximal in G (the telescoped per-level filter — see the
/// header of this file's class comment). Serial and multi-threaded runs
/// emit the same cliques in the same order.
StreamingStats RunPipelineLoop(const Graph& g,
                               const FindMaxCliquesOptions& options,
                               const LeveledCliqueCallback& emit) {
  MCE_CHECK_GE(options.max_block_size, 1u);
  StreamingStats out;

  // One pool shared by every level's analysis and filter phases, and one
  // block workspace per worker (slot 0 serves the serial path) kept alive
  // across levels so block analysis reuses its scratch for the whole run.
  const size_t num_threads = ResolveThreads(options.num_threads);
  std::optional<ThreadPool> pool;
  if (num_threads > 1) pool.emplace(num_threads);
  std::vector<BlockWorkspace> workspaces;
  if (!pool.has_value()) workspaces.resize(1);

  Graph current = g;
  std::vector<NodeId> to_original;  // empty means identity (level 0)
  uint32_t level = 0;
  std::vector<NodeId> scratch;

  auto deliver = [&](std::span<const NodeId> clique_current_ids) {
    scratch.clear();
    if (to_original.empty()) {
      scratch.assign(clique_current_ids.begin(), clique_current_ids.end());
    } else {
      for (NodeId v : clique_current_ids) {
        scratch.push_back(to_original[v]);
      }
    }
    std::sort(scratch.begin(), scratch.end());
    if (level > 0 && !IsMaximalInGraph(g, scratch)) return;
    ++out.cliques_emitted;
    emit(scratch, level);
  };

  for (;;) {
    LevelStats stats;
    stats.num_nodes = current.num_nodes();
    stats.num_edges = current.num_edges();

    Timer decompose_timer;
    CutResult cut = Cut(current, options.max_block_size);
    stats.feasible = cut.feasible.size();
    stats.hubs = cut.hubs.size();

    if (cut.feasible.empty() && current.num_nodes() > 0) {
      // Sparsity precondition violated: the remaining graph is its own
      // m-core. Enumerate it directly so the result is still complete.
      // This residual enumeration is one indivisible task, so it runs
      // serially regardless of num_threads.
      out.used_fallback = true;
      stats.decompose_seconds = decompose_timer.ElapsedSeconds();
      Timer analyze_timer;
      uint64_t emitted = 0;
      EnumerateMaximalCliques(current, options.fallback,
                              [&](std::span<const NodeId> c) {
                                deliver(c);
                                ++emitted;
                              });
      stats.cliques = emitted;
      stats.analyze_seconds = analyze_timer.ElapsedSeconds();
      stats.block_seconds = stats.analyze_seconds;
      stats.busiest_worker_seconds = stats.analyze_seconds;
      out.levels.push_back(stats);
      break;
    }

    BlocksOptions blocks_options;
    blocks_options.max_block_size = options.max_block_size;
    blocks_options.min_adjacency = options.min_adjacency;
    blocks_options.seed_policy = options.seed_policy;
    std::vector<Block> blocks =
        BuildBlocks(current, cut.feasible, blocks_options);
    stats.blocks = blocks.size();
    stats.decompose_seconds = decompose_timer.ElapsedSeconds();

    Timer analyze_timer;
    BlockAnalysisOptions analysis_options;
    analysis_options.tree = options.tree;
    analysis_options.fixed = options.fixed;
    uint64_t emitted = 0;
    if (pool.has_value()) {
      stats.analyze_threads = static_cast<uint32_t>(pool->num_threads());
      emitted = AnalyzeLevelOnPool(g, blocks, analysis_options, options,
                                   *pool, workspaces, level, to_original,
                                   stats, out, emit);
    } else {
      for (const Block& block : blocks) {
        Timer block_timer;
        BlockAnalysisResult r = AnalyzeBlock(block, analysis_options,
                                             [&](std::span<const NodeId> c) {
                                               deliver(c);
                                             },
                                             &workspaces[0]);
        emitted += r.num_cliques;
        const double block_seconds = block_timer.ElapsedSeconds();
        stats.block_seconds += block_seconds;
        if (options.block_observer) {
          BlockTaskRecord task;
          task.level = level;
          task.nodes = block.num_nodes();
          task.edges = block.num_edges();
          task.bytes = block.EstimatedBytes();
          task.cliques = r.num_cliques;
          task.seconds = block_seconds;
          task.used = r.used;
          options.block_observer(task);
        }
      }
      stats.busiest_worker_seconds = stats.block_seconds;
    }
    stats.cliques = emitted;
    stats.analyze_seconds = analyze_timer.ElapsedSeconds();
    out.levels.push_back(stats);

    if (cut.hubs.empty()) break;

    // Recursive step: continue on the hub-induced subgraph.
    InducedSubgraph sub = Induce(current, cut.hubs);
    if (to_original.empty()) {
      to_original = sub.to_parent;
    } else {
      std::vector<NodeId> composed;
      composed.reserve(sub.to_parent.size());
      for (NodeId v : sub.to_parent) composed.push_back(to_original[v]);
      to_original = std::move(composed);
    }
    current = std::move(sub.graph);
    ++level;
  }
  return out;
}

}  // namespace

StreamingStats FindMaxCliquesStreaming(const Graph& g,
                                       const FindMaxCliquesOptions& options,
                                       const LeveledCliqueCallback& emit) {
  return RunPipelineLoop(g, options, emit);
}

FindMaxCliquesResult FindMaxCliques(const Graph& g,
                                    const FindMaxCliquesOptions& options) {
  std::vector<std::pair<Clique, uint32_t>> found;
  StreamingStats stats = RunPipelineLoop(
      g, options, [&found](std::span<const NodeId> clique, uint32_t level) {
        found.emplace_back(Clique(clique.begin(), clique.end()), level);
      });
  std::sort(found.begin(), found.end());

  FindMaxCliquesResult out;
  out.levels = std::move(stats.levels);
  out.used_fallback = stats.used_fallback;
  for (auto& [clique, origin] : found) {
    out.origin_level.push_back(origin);
    out.cliques.Add(std::move(clique));  // already sorted
  }
  return out;
}

}  // namespace mce::decomp
