#include "decomp/find_max_cliques.h"

#include "exec/executor.h"

namespace mce::decomp {

uint64_t FindMaxCliquesResult::CliquesFromLevel(uint32_t min_level) const {
  uint64_t count = 0;
  for (uint32_t l : origin_level) {
    if (l >= min_level) ++count;
  }
  return count;
}

// Both entry points are thin drivers over the execution engine
// (src/exec): options.executor / options.num_threads pick the engine, and
// every engine produces byte-identical emission (DESIGN.md §7).

StreamingStats FindMaxCliquesStreaming(const Graph& g,
                                       const FindMaxCliquesOptions& options,
                                       const LeveledCliqueCallback& emit) {
  return exec::MakeExecutor(options)->Run(g, options, emit);
}

FindMaxCliquesResult FindMaxCliques(const Graph& g,
                                    const FindMaxCliquesOptions& options) {
  std::unique_ptr<exec::Executor> executor = exec::MakeExecutor(options);
  return exec::CollectToResult(*executor, g, options);
}

}  // namespace mce::decomp
