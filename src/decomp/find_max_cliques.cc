#include "decomp/find_max_cliques.h"

#include <algorithm>
#include <utility>

#include "decomp/block_analysis.h"
#include "decomp/cut.h"
#include "decomp/filter.h"
#include "graph/subgraph.h"
#include "util/check.h"
#include "util/timer.h"

namespace mce::decomp {

uint64_t FindMaxCliquesResult::CliquesFromLevel(uint32_t min_level) const {
  uint64_t count = 0;
  for (uint32_t l : origin_level) {
    if (l >= min_level) ++count;
  }
  return count;
}

namespace {

/// The shared recursion driver. `emit` receives each maximal clique of G
/// (sorted, original ids) exactly once, already past the Lemma 1 filter:
/// level-0 cliques are maximal by construction; deeper cliques are emitted
/// iff they are maximal in G (the telescoped per-level filter — see the
/// header of this file's class comment).
StreamingStats RunPipelineLoop(const Graph& g,
                               const FindMaxCliquesOptions& options,
                               const LeveledCliqueCallback& emit) {
  MCE_CHECK_GE(options.max_block_size, 1u);
  StreamingStats out;

  Graph current = g;
  std::vector<NodeId> to_original;  // empty means identity (level 0)
  uint32_t level = 0;
  std::vector<NodeId> scratch;

  auto deliver = [&](std::span<const NodeId> clique_current_ids) {
    scratch.clear();
    if (to_original.empty()) {
      scratch.assign(clique_current_ids.begin(), clique_current_ids.end());
    } else {
      for (NodeId v : clique_current_ids) {
        scratch.push_back(to_original[v]);
      }
    }
    std::sort(scratch.begin(), scratch.end());
    if (level > 0 && !IsMaximalInGraph(g, scratch)) return;
    ++out.cliques_emitted;
    emit(scratch, level);
  };

  for (;;) {
    LevelStats stats;
    stats.num_nodes = current.num_nodes();
    stats.num_edges = current.num_edges();

    Timer decompose_timer;
    CutResult cut = Cut(current, options.max_block_size);
    stats.feasible = cut.feasible.size();
    stats.hubs = cut.hubs.size();

    if (cut.feasible.empty() && current.num_nodes() > 0) {
      // Sparsity precondition violated: the remaining graph is its own
      // m-core. Enumerate it directly so the result is still complete.
      out.used_fallback = true;
      stats.decompose_seconds = decompose_timer.ElapsedSeconds();
      Timer analyze_timer;
      uint64_t emitted = 0;
      EnumerateMaximalCliques(current, options.fallback,
                              [&](std::span<const NodeId> c) {
                                deliver(c);
                                ++emitted;
                              });
      stats.cliques = emitted;
      stats.analyze_seconds = analyze_timer.ElapsedSeconds();
      out.levels.push_back(stats);
      break;
    }

    BlocksOptions blocks_options;
    blocks_options.max_block_size = options.max_block_size;
    blocks_options.min_adjacency = options.min_adjacency;
    blocks_options.seed_policy = options.seed_policy;
    std::vector<Block> blocks =
        BuildBlocks(current, cut.feasible, blocks_options);
    stats.blocks = blocks.size();
    stats.decompose_seconds = decompose_timer.ElapsedSeconds();

    Timer analyze_timer;
    BlockAnalysisOptions analysis_options;
    analysis_options.tree = options.tree;
    analysis_options.fixed = options.fixed;
    uint64_t emitted = 0;
    for (const Block& block : blocks) {
      Timer block_timer;
      BlockAnalysisResult r = AnalyzeBlock(block, analysis_options,
                                           [&](std::span<const NodeId> c) {
                                             deliver(c);
                                           });
      emitted += r.num_cliques;
      if (options.block_observer) {
        BlockTaskRecord task;
        task.level = level;
        task.nodes = block.num_nodes();
        task.edges = block.num_edges();
        task.bytes = block.EstimatedBytes();
        task.cliques = r.num_cliques;
        task.seconds = block_timer.ElapsedSeconds();
        task.used = r.used;
        options.block_observer(task);
      }
    }
    stats.cliques = emitted;
    stats.analyze_seconds = analyze_timer.ElapsedSeconds();
    out.levels.push_back(stats);

    if (cut.hubs.empty()) break;

    // Recursive step: continue on the hub-induced subgraph.
    InducedSubgraph sub = Induce(current, cut.hubs);
    if (to_original.empty()) {
      to_original = sub.to_parent;
    } else {
      std::vector<NodeId> composed;
      composed.reserve(sub.to_parent.size());
      for (NodeId v : sub.to_parent) composed.push_back(to_original[v]);
      to_original = std::move(composed);
    }
    current = std::move(sub.graph);
    ++level;
  }
  return out;
}

}  // namespace

StreamingStats FindMaxCliquesStreaming(const Graph& g,
                                       const FindMaxCliquesOptions& options,
                                       const LeveledCliqueCallback& emit) {
  return RunPipelineLoop(g, options, emit);
}

FindMaxCliquesResult FindMaxCliques(const Graph& g,
                                    const FindMaxCliquesOptions& options) {
  std::vector<std::pair<Clique, uint32_t>> found;
  StreamingStats stats = RunPipelineLoop(
      g, options, [&found](std::span<const NodeId> clique, uint32_t level) {
        found.emplace_back(Clique(clique.begin(), clique.end()), level);
      });
  std::sort(found.begin(), found.end());

  FindMaxCliquesResult out;
  out.levels = std::move(stats.levels);
  out.used_fallback = stats.used_fallback;
  for (auto& [clique, origin] : found) {
    out.origin_level.push_back(origin);
    out.cliques.Add(std::move(clique));  // already sorted
  }
  return out;
}

}  // namespace mce::decomp
