// The overall algorithm (Algorithm 1, FIND-MAX-CLIQUES).
//
// Each level l: CUT splits the current graph G_l into feasible and hub
// nodes; BLOCKS decomposes the feasible side; BLOCK-ANALYSIS enumerates the
// cliques with a feasible node (C_f); the hub-induced subgraph becomes
// G_{l+1}. Because the induced chain G = G_0 > G_1 > ... preserves
// "maximal in G implies maximal in every G_l", the per-level Lemma 1
// filters telescope into a single rule: a clique found at level l >= 1 is
// kept iff it is maximal in G. Level-0 cliques are maximal by construction.
//
// Termination: each level strictly shrinks the graph while feasible nodes
// exist; when none exists (the m-core of G is non-empty, i.e. the sparsity
// precondition degeneracy < m of Theorem 1 is violated), the implementation
// falls back to a direct MCE of the remaining graph and flags it in the
// stats, rather than looping forever.

#ifndef MCE_DECOMP_FIND_MAX_CLIQUES_H_
#define MCE_DECOMP_FIND_MAX_CLIQUES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "decision/decision_tree.h"
#include "decomp/blocks.h"
#include "mce/clique.h"
#include "mce/enumerator.h"
#include "obs/perf_counters.h"
#include "obs/progress.h"
#include "reduce/reduction.h"

namespace mce::obs {
class TraceRecorder;
class MetricsRegistry;
}  // namespace mce::obs

namespace mce::decomp {

/// Telemetry for one analyzed block; consumed by the distributed-execution
/// simulator (src/dist) to schedule and cost block tasks.
struct BlockTaskRecord {
  uint32_t level = 0;
  uint64_t nodes = 0;
  uint64_t edges = 0;
  uint64_t bytes = 0;    // estimated shipping size
  uint64_t cliques = 0;
  double seconds = 0;    // measured analysis wall time
  MceOptions used;
};

/// Which execution engine (src/exec) runs the pipeline. kSerial walks the
/// levels on the calling thread with the streaming O(graph + largest
/// block) memory profile; kPooled runs block analysis and the Lemma-1
/// filter on a thread pool and overlaps level h+1's decomposition with the
/// tail of level h's analysis. kAuto picks kSerial when the resolved
/// thread count is 1, kPooled otherwise. Every choice produces
/// byte-identical emission.
enum class ExecutorKind : uint8_t {
  kAuto = 0,
  kSerial = 1,
  kPooled = 2,
};

/// Default BlockTask split threshold, in decision::EstimateBlockCost work
/// units. Calibrated on the bench_pipeline social stand-in, where per-level
/// block costs run from a few hundred (the sparse mass) up to ~80k (dense
/// planted-clique blocks) and the deepest hub levels collapse to a single
/// ~13k block: 8000 shards every block that can dominate a level — or BE a
/// level — while leaving the sparse mass whole, so shard bookkeeping stays
/// off the common path.
inline constexpr double kDefaultMaxBlockCost = 8000.0;

struct FindMaxCliquesOptions {
  /// Block bound m. Completeness requires nothing; termination without the
  /// fallback requires m > degeneracy(G).
  uint32_t max_block_size = 1000;
  /// Options for the second-level decomposition.
  uint32_t min_adjacency = 1;
  SeedPolicy seed_policy = SeedPolicy::kLowestDegree;
  /// bestfit: decision tree if non-null, else the fixed combination.
  const decision::DecisionTree* tree = nullptr;
  MceOptions fixed = {Algorithm::kTomita, StorageKind::kAdjacencyList};
  /// Combination used by the degenerate fallback (whole-graph MCE).
  MceOptions fallback = {Algorithm::kEppstein, StorageKind::kAdjacencyList};
  /// Worker threads for each level's block analysis and Lemma-1 filter.
  /// 1 = serial (cliques stream out as blocks are analyzed); > 1 buffers
  /// each block's cliques and merges them in block order, so the emitted
  /// cliques (content and order) are identical to the serial run; 0 = one
  /// thread per hardware thread.
  uint32_t num_threads = 1;
  /// Cost-guided BlockTask splitting (pooled executor). A block whose
  /// predicted analysis cost (decision::EstimateBlockCost over the block's
  /// classification features) exceeds max_block_cost is split into
  /// contiguous kernel-range shards of at most that predicted share, each
  /// running as its own pool task; shard buffers are merged back in kernel
  /// order, so emission stays byte-identical to the undivided task. Ready
  /// tasks dispatch largest-predicted-first either way. split_blocks=false
  /// (CLI --no-split) or max_block_cost <= 0 keeps blocks indivisible.
  bool split_blocks = true;
  double max_block_cost = kDefaultMaxBlockCost;
  /// Execution engine selection; see ExecutorKind.
  ExecutorKind executor = ExecutorKind::kAuto;
  /// Graph-reduction prepass (src/reduce): strip degree-0/1, simplicial
  /// (dominated-fold), and true-twin vertices before CUT ever runs, emit
  /// their maximal cliques directly (level 0, ahead of every block
  /// clique), decompose the reduced graph, and re-expand each pipeline
  /// clique through the ReductionMap *before* the Lemma-1 filter — the
  /// filter still checks expanded cliques against the original graph, so
  /// filtering semantics are unchanged. Also relabels every block into
  /// reverse degeneracy order (BlocksOptions::degeneracy_relabel). The
  /// emitted clique set is identical with and without. CLI: --reduce /
  /// --no-reduce.
  bool reduce = false;
  /// Optional per-block hook, called after each block is analyzed. Always
  /// invoked from the pipeline's calling thread, in block order, even when
  /// num_threads > 1 — it need not be thread-safe.
  std::function<void(const BlockTaskRecord&)> block_observer;
  /// Observability sinks (src/obs) for this run. Not owned; must outlive
  /// the run. nullptr means "use the process-wide installed instance, if
  /// any" (obs::TraceRecorder::Install / obs::MetricsRegistry::Install) —
  /// so with nothing installed and nothing set here, every event site
  /// costs one relaxed atomic load and nothing else.
  obs::TraceRecorder* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Live progress accounting (src/obs/progress.h). Unlike trace/metrics
  /// there is no process-wide installed fallback: progress is inherently
  /// run-scoped, so it is options-only. When set, executors register each
  /// block's EstimateBlockCost at emission, retire it on block/shard
  /// completion (the fallback MCE counts as one block), and fill the
  /// final ProgressAccounting in the run stats. A TelemetrySampler
  /// attached to the same estimator turns this into the NDJSON heartbeat
  /// stream (CLI: --heartbeat-out / --heartbeat-interval-ms /
  /// --progress). Not owned; must outlive the run.
  obs::ProgressEstimator* progress = nullptr;
  /// Byte budget for the engine's tracked materializations (pipeline graph,
  /// level subgraphs, blocks, analysis workspaces, clique-sink buffers).
  /// 0 = unlimited (peak is still tracked). With a budget set, the pooled
  /// executor holds ready BlockTasks back — beyond the first, so progress
  /// is guaranteed — while admitting one would push the tracked bytes past
  /// the budget, and clique sinks spill once past the spill threshold.
  /// CLI: --memory-budget.
  uint64_t memory_budget_bytes = 0;
  /// Per-level resident-byte ceiling for buffered cliques before sinks
  /// flush sorted FlatCliques chunks to temp files. 0 derives
  /// max(1, memory_budget_bytes / 8) when a budget is set, else disables
  /// spilling. CLI: --spill-threshold.
  uint64_t spill_threshold_bytes = 0;
  /// Directory for spill chunk files; "" = $TMPDIR, then /tmp. CLI:
  /// --spill-dir.
  std::string spill_dir;
  /// Per-task counter profiling (src/obs/perf_counters.h): every task the
  /// executors run reads its thread's perf_event_open group (or the
  /// software thread-clock fallback) around its window, attaches the delta
  /// to the task's trace span, and accumulates per-kind / per-level totals
  /// into the result's ProfileStats. Off by default — the task sites then
  /// test one plain bool. CLI: --perf-counters.
  bool profile = false;
};

/// The spill threshold a run actually uses (see spill_threshold_bytes).
inline uint64_t EffectiveSpillThreshold(const FindMaxCliquesOptions& options) {
  if (options.spill_threshold_bytes > 0) return options.spill_threshold_bytes;
  if (options.memory_budget_bytes == 0) return 0;
  return options.memory_budget_bytes / 8 > 0 ? options.memory_budget_bytes / 8
                                             : 1;
}

/// Per-recursion-level telemetry (drives Figures 7-11).
struct LevelStats {
  uint64_t num_nodes = 0;       // |G_l|
  uint64_t num_edges = 0;
  uint64_t feasible = 0;        // |N_f|
  uint64_t hubs = 0;            // |N_h|
  uint64_t blocks = 0;
  uint64_t cliques = 0;         // cliques emitted by this level's blocks
                                // (before the maximality filter)
  double decompose_seconds = 0; // CUT + BLOCKS (+ induced subgraph)
  double analyze_seconds = 0;   // BLOCK-ANALYSIS wall time over all blocks
  /// Worker utilization of the analyze phase: the serial-equivalent work
  /// (sum of per-block analysis times) vs. the busiest worker's share of
  /// it. block_seconds / busiest_worker_seconds is the achieved per-level
  /// analysis speedup; dividing that by analyze_threads gives utilization
  /// in (0, 1]. With one thread the two times coincide.
  double block_seconds = 0;
  double busiest_worker_seconds = 0;
  uint32_t analyze_threads = 1; // workers that ran this level's analysis
  /// Wall-clock time this level's decomposition ran concurrently with the
  /// analysis of earlier levels (the intersection of the decompose window
  /// with the union of all earlier levels' analysis windows). Pooled
  /// executor only; the serial executor never overlaps and reports 0.
  double overlap_seconds = 0;
  /// Aggregate work-starved worker idle time during this level's analyze
  /// phase — capacity inside the union of the level's own task spans minus
  /// the block work performed (obs::SplitIdle). Waits at level boundaries
  /// are excluded; they land in barrier_idle_seconds.
  double idle_seconds = 0;
  /// Aggregate worker capacity across the gaps of the level's analysis
  /// hull: stretches where none of the level's tasks ran because the pool
  /// was parked at a cross-level boundary (the next level's decompose, the
  /// filter plan, the delivery barrier). Kept separate from idle_seconds
  /// so inter-level waits are not charged to the level that just ended.
  double barrier_idle_seconds = 0;
  /// BlockTasks of this level the executor split into kernel-range shards
  /// (0 when splitting is disabled or nothing crossed the cost threshold).
  uint64_t block_splits = 0;
};

/// Memory-budget telemetry for one run (see
/// FindMaxCliquesOptions::memory_budget_bytes). peak_tracked_bytes is the
/// high-water mark of the engine's deliberate materializations — graphs,
/// blocks, workspaces, sink buffers — not an allocator measurement.
struct MemoryStats {
  uint64_t budget_bytes = 0;
  uint64_t peak_tracked_bytes = 0;
  uint64_t spill_chunks = 0;
  uint64_t spill_bytes = 0;
  uint64_t admission_stalls = 0;
  double admission_stall_seconds = 0;
};

struct FindMaxCliquesResult {
  /// All maximal cliques of G, canonicalized.
  CliqueSet cliques;
  /// origin_level[i]: recursion level whose blocks produced cliques()[i];
  /// level >= 1 means the clique consists of hub nodes only (w.r.t. the
  /// top-level m) — the gray bars of Figures 9-11.
  std::vector<uint32_t> origin_level;
  std::vector<LevelStats> levels;
  /// True when the sparsity precondition failed and the remaining hub core
  /// was enumerated directly.
  bool used_fallback = false;
  /// Prepass telemetry (reduction.enabled iff options.reduce was set).
  /// Trivial cliques emitted by the prepass are counted here and in the
  /// clique set, not in any LevelStats entry.
  reduce::ReductionStats reduction;
  /// Memory-budget telemetry (zeros on unbudgeted, unspilled runs except
  /// peak_tracked_bytes, which is always maintained).
  MemoryStats memory;
  /// Final progress accounting (enabled iff options.progress was set).
  obs::ProgressAccounting progress;
  /// Per-task counter attribution (enabled iff options.profile was set).
  obs::ProfileStats profile;

  /// Number of first-level decomposition iterations (Figure 7 reports 2-3).
  size_t NumLevels() const { return levels.size(); }
  uint64_t CliquesFromLevel(uint32_t min_level) const;
};

FindMaxCliquesResult FindMaxCliques(const Graph& g,
                                    const FindMaxCliquesOptions& options);

/// Streaming callback: a maximal clique (sorted, in g's node ids; only
/// valid during the call) and the recursion level that produced it.
using LeveledCliqueCallback =
    std::function<void(std::span<const NodeId>, uint32_t level)>;

struct StreamingStats {
  std::vector<LevelStats> levels;
  bool used_fallback = false;
  /// Includes the reduction prepass's trivial cliques when reduce is on.
  uint64_t cliques_emitted = 0;
  reduce::ReductionStats reduction;
  MemoryStats memory;
  /// Final progress accounting (enabled iff options.progress was set).
  obs::ProgressAccounting progress;
  /// Per-task counter attribution (enabled iff options.profile was set).
  obs::ProfileStats profile;
};

/// Streaming form of FindMaxCliques: emits each maximal clique of G
/// exactly once (the Lemma 1 filter is applied per clique before emission)
/// without materializing the collection — the memory profile stays
/// O(graph + largest block) regardless of the output size. The multiset of
/// emitted cliques equals FindMaxCliques(g, options).cliques.
StreamingStats FindMaxCliquesStreaming(const Graph& g,
                                       const FindMaxCliquesOptions& options,
                                       const LeveledCliqueCallback& emit);

}  // namespace mce::decomp

#endif  // MCE_DECOMP_FIND_MAX_CLIQUES_H_
