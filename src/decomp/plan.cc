#include "decomp/plan.h"

#include <algorithm>

#include "decomp/cut.h"
#include "graph/subgraph.h"

namespace mce::decomp {

uint64_t DecompositionPlan::TotalBlocks() const {
  uint64_t total = 0;
  for (const LevelPlan& l : levels) total += l.blocks;
  return total;
}

double DecompositionPlan::OverallReplication() const {
  double weighted = 0;
  uint64_t nodes = 0;
  for (const LevelPlan& l : levels) {
    weighted += l.replication_factor * static_cast<double>(l.num_nodes);
    nodes += l.num_nodes;
  }
  return nodes > 0 ? weighted / static_cast<double>(nodes) : 0.0;
}

DecompositionPlan ComputePlan(const Graph& g, const PlanOptions& options) {
  DecompositionPlan plan;
  Graph current = g;
  for (;;) {
    LevelPlan level;
    level.num_nodes = current.num_nodes();
    CutResult cut = Cut(current, options.max_block_size);
    level.feasible = cut.feasible.size();
    level.hubs = cut.hubs.size();

    if (cut.feasible.empty() && current.num_nodes() > 0) {
      plan.hits_fallback = true;
      plan.levels.push_back(level);
      break;
    }

    BlocksOptions blocks_options;
    blocks_options.max_block_size = options.max_block_size;
    blocks_options.min_adjacency = options.min_adjacency;
    blocks_options.seed_policy = options.seed_policy;
    std::vector<Block> blocks =
        BuildBlocks(current, cut.feasible, blocks_options);
    level.blocks = blocks.size();
    uint64_t total_nodes = 0;
    for (const Block& block : blocks) {
      const uint64_t size = block.num_nodes();
      total_nodes += size;
      level.total_block_bytes += block.EstimatedBytes();
      level.min_block_nodes = level.min_block_nodes == 0
                                  ? size
                                  : std::min(level.min_block_nodes, size);
      level.max_block_nodes = std::max(level.max_block_nodes, size);
    }
    if (!blocks.empty()) {
      level.avg_block_nodes =
          static_cast<double>(total_nodes) / static_cast<double>(blocks.size());
    }
    if (level.num_nodes > 0) {
      level.replication_factor = static_cast<double>(total_nodes) /
                                 static_cast<double>(level.num_nodes);
    }
    plan.levels.push_back(level);

    if (cut.hubs.empty()) break;
    current = Induce(current, cut.hubs).graph;
  }
  return plan;
}

}  // namespace mce::decomp
