#include "decomp/parallel_analysis.h"

#include <utility>

#include "obs/trace.h"
#include "util/timer.h"

namespace mce::decomp {

BlockTaskRecord MakeBlockTaskRecord(const Block& block,
                                    const BlockAnalysisResult& result,
                                    double seconds, uint32_t level) {
  BlockTaskRecord task;
  task.level = level;
  task.nodes = block.num_nodes();
  task.edges = block.num_edges();
  task.bytes = block.EstimatedBytes();
  task.cliques = result.num_cliques;
  task.seconds = seconds;
  task.used = result.used;
  return task;
}

std::vector<BlockRun> AnalyzeBlocksToBuffers(
    const std::vector<Block>& blocks, const BlockAnalysisOptions& options,
    ThreadPool* pool, std::vector<BlockWorkspace>* workspaces) {
  if (workspaces != nullptr) {
    // One slot per pool worker; slot 0 doubles as the inline-path slot.
    // Grow-only so a caller's workspaces persist across levels.
    const size_t slots = pool != nullptr ? pool->num_threads() : 1;
    if (workspaces->size() < slots) workspaces->resize(slots);
  }
  std::vector<BlockRun> runs(blocks.size());
  // Each block writes into its own slot; no synchronization needed beyond
  // the pool's completion barrier. Workers only ever touch the workspace
  // of their own index, so those need no synchronization either.
  auto run_block = [&blocks, &options, &runs, workspaces](size_t i) {
    BlockRun& run = runs[i];
    const size_t index = ThreadPool::CurrentWorkerIndex();
    const size_t worker = index == ThreadPool::kNotAWorker ? 0 : index;
    BlockWorkspace* ws =
        workspaces != nullptr ? &(*workspaces)[worker] : nullptr;
    run.begin_us = obs::NowMicros();
    Timer timer;
    run.result =
        AnalyzeBlock(blocks[i], options, run.cliques.Collector(), ws);
    run.seconds = timer.ElapsedSeconds();
    run.end_us = obs::NowMicros();
    run.worker = worker;
  };
  if (pool != nullptr) {
    for (size_t i = 0; i < blocks.size(); ++i) {
      pool->Submit([&run_block, i] { run_block(i); });
    }
    pool->Wait();
  } else {
    for (size_t i = 0; i < blocks.size(); ++i) run_block(i);
  }
  return runs;
}

ParallelAnalysisResult ParallelAnalyzeBlocks(
    const std::vector<Block>& blocks, const BlockAnalysisOptions& options,
    size_t num_threads,
    const std::function<void(const BlockTaskRecord&)>& block_observer,
    uint32_t level) {
  std::vector<BlockRun> runs;
  {
    ThreadPool pool(num_threads);
    std::vector<BlockWorkspace> workspaces;
    runs = AnalyzeBlocksToBuffers(blocks, options, &pool, &workspaces);
  }
  ParallelAnalysisResult result;
  result.per_block.reserve(runs.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    BlockRun& run = runs[i];
    if (block_observer) {
      block_observer(
          MakeBlockTaskRecord(blocks[i], run.result, run.seconds, level));
    }
    result.per_block.push_back(run.result);
    result.cliques.Merge(std::move(run.cliques));
  }
  return result;
}

}  // namespace mce::decomp
