#include "decomp/parallel_analysis.h"

#include <utility>

#include "util/thread_pool.h"

namespace mce::decomp {

ParallelAnalysisResult ParallelAnalyzeBlocks(
    const std::vector<Block>& blocks, const BlockAnalysisOptions& options,
    size_t num_threads) {
  ParallelAnalysisResult result;
  result.per_block.resize(blocks.size());
  // Each block writes into its own slot; no synchronization needed beyond
  // the pool's completion barrier.
  std::vector<CliqueSet> per_block_cliques(blocks.size());
  {
    ThreadPool pool(num_threads);
    for (size_t i = 0; i < blocks.size(); ++i) {
      pool.Submit([&, i] {
        result.per_block[i] = AnalyzeBlock(blocks[i], options,
                                           per_block_cliques[i].Collector());
      });
    }
    pool.Wait();
  }
  for (CliqueSet& cs : per_block_cliques) {
    result.cliques.Merge(std::move(cs));
  }
  return result;
}

}  // namespace mce::decomp
