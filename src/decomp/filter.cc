#include "decomp/filter.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/bitset.h"

namespace mce::decomp {

CliqueSet FilterContainedCliques(const CliqueSet& ch, const CliqueSet& cf) {
  // Index cf cliques by member vertex so each ch clique is only compared
  // against cliques sharing its first vertex.
  std::unordered_map<NodeId, std::vector<size_t>> by_vertex;
  NodeId max_id = 0;
  for (size_t i = 0; i < cf.size(); ++i) {
    for (NodeId v : cf.cliques()[i]) {
      by_vertex[v].push_back(i);
      max_id = std::max(max_id, v);
    }
  }
  for (const Clique& c : ch.cliques()) {
    for (NodeId v : c) max_id = std::max(max_id, v);
  }
  const size_t universe = static_cast<size_t>(max_id) + 1;

  // Each surviving comparison is a word-level Bitset::IsSubsetOf instead
  // of a per-element merge walk: the cf cliques are materialized as
  // bitsets once, and one grow-only scratch bitset holds the current ch
  // clique.
  std::vector<Bitset> cf_bits(cf.size());
  for (size_t i = 0; i < cf.size(); ++i) {
    cf_bits[i].Reinit(universe);
    for (NodeId v : cf.cliques()[i]) cf_bits[i].Set(v);
  }

  CliqueSet out;
  Bitset scratch;
  for (const Clique& c : ch.cliques()) {
    bool contained = false;
    if (!c.empty()) {
      auto it = by_vertex.find(c.front());
      if (it != by_vertex.end()) {
        scratch.Reinit(universe);
        for (NodeId v : c) scratch.Set(v);
        for (size_t candidate : it->second) {
          if (cf.cliques()[candidate].size() >= c.size() &&
              scratch.IsSubsetOf(cf_bits[candidate])) {
            contained = true;
            break;
          }
        }
      }
    }
    if (!contained) out.Add(c);
  }
  return out;
}

bool IsMaximalInGraph(const Graph& g, const Clique& clique) {
  if (clique.empty()) return g.num_nodes() == 0;
  return CommonNeighbors(g, clique).empty();
}

CliqueSet FilterNonMaximal(const Graph& g, const CliqueSet& cliques) {
  CliqueSet out;
  for (const Clique& c : cliques.cliques()) {
    if (IsMaximalInGraph(g, c)) out.Add(c);
  }
  return out;
}

void ForEachCliqueInRange(std::span<const CliqueSink* const> sinks,
                          size_t begin, size_t end, const CliqueCallback& fn) {
  size_t done = 0;  // cliques covered by sinks walked so far
  for (const CliqueSink* sink : sinks) {
    const size_t sink_begin = done;
    done += sink->size();
    if (begin >= done) continue;
    if (end <= sink_begin) break;
    const size_t lo = begin > sink_begin ? begin - sink_begin : 0;
    const size_t hi = std::min(end - sink_begin, sink->size());
    sink->ForRange(lo, hi, fn);
  }
}

}  // namespace mce::decomp
