#include "decomp/filter.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace mce::decomp {

CliqueSet FilterContainedCliques(const CliqueSet& ch, const CliqueSet& cf) {
  // Index cf cliques by member vertex so each ch clique is only compared
  // against cliques sharing its first vertex.
  std::unordered_map<NodeId, std::vector<const Clique*>> by_vertex;
  for (const Clique& c : cf.cliques()) {
    for (NodeId v : c) by_vertex[v].push_back(&c);
  }
  CliqueSet out;
  for (const Clique& c : ch.cliques()) {
    bool contained = false;
    if (!c.empty()) {
      auto it = by_vertex.find(c.front());
      if (it != by_vertex.end()) {
        for (const Clique* candidate : it->second) {
          if (candidate->size() >= c.size() &&
              std::includes(candidate->begin(), candidate->end(), c.begin(),
                            c.end())) {
            contained = true;
            break;
          }
        }
      }
    }
    if (!contained) out.Add(c);
  }
  return out;
}

bool IsMaximalInGraph(const Graph& g, const Clique& clique) {
  if (clique.empty()) return g.num_nodes() == 0;
  return CommonNeighbors(g, clique).empty();
}

CliqueSet FilterNonMaximal(const Graph& g, const CliqueSet& cliques) {
  CliqueSet out;
  for (const Clique& c : cliques.cliques()) {
    if (IsMaximalInGraph(g, c)) out.Add(c);
  }
  return out;
}

}  // namespace mce::decomp
