// The block type produced by the second-level decomposition (Section 3.2).
//
// A block consists of kernel nodes (each feasible node is kernel of exactly
// one block), border nodes (neighbors of kernels not yet used as kernels),
// and visited nodes (neighbors of kernels that were kernels of previously
// built blocks), plus *all* edges among its nodes. Blocks are self-contained
// work units: BLOCK-ANALYSIS needs nothing outside them, which is what makes
// the distributed phase embarrassingly parallel.

#ifndef MCE_DECOMP_BLOCK_H_
#define MCE_DECOMP_BLOCK_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/subgraph.h"

namespace mce::decomp {

/// Role of a node within one block.
enum class NodeRole : uint8_t {
  kKernel = 0,
  kBorder = 1,
  kVisited = 2,
};

struct Block {
  /// The materialized subgraph over kernel u border u visited nodes, with
  /// the mapping back to the ids of the graph the decomposition ran on.
  InducedSubgraph subgraph;
  /// Role of each block-local node id.
  std::vector<NodeRole> roles;
  /// Block-local ids of the kernel nodes, ascending.
  std::vector<NodeId> kernel_local;

  NodeId num_nodes() const { return subgraph.graph.num_nodes(); }
  uint64_t num_edges() const { return subgraph.graph.num_edges(); }

  size_t CountRole(NodeRole role) const;

  /// Rough serialized size in bytes (CSR arrays + roles); the distributed
  /// scheduler uses it as the shipping cost of the block.
  uint64_t EstimatedBytes() const;
};

}  // namespace mce::decomp

#endif  // MCE_DECOMP_BLOCK_H_
