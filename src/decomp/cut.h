// First-level decomposition (Algorithm 2, CUT).
//
// Splits the nodes of G into feasible nodes — whose closed neighborhood
// fits a block of m nodes, i.e. deg(v) + 1 <= m — and hub nodes
// (deg(v) >= m). Hub nodes are set aside for the recursive call of
// FIND-MAX-CLIQUES on the subgraph they induce.

#ifndef MCE_DECOMP_CUT_H_
#define MCE_DECOMP_CUT_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mce::decomp {

struct CutResult {
  std::vector<NodeId> feasible;  // N_f, ascending
  std::vector<NodeId> hubs;      // N_h, ascending
};

/// isfeasible for a single node: its closed neighborhood fits in a block.
inline bool IsFeasibleNode(const Graph& g, NodeId v, uint32_t m) {
  return static_cast<uint64_t>(g.Degree(v)) + 1 <= m;
}

/// Algorithm 2: partition the nodes of `g` by feasibility w.r.t. block
/// bound `m`.
CutResult Cut(const Graph& g, uint32_t m);

}  // namespace mce::decomp

#endif  // MCE_DECOMP_CUT_H_
