// Second-level decomposition (Algorithm 3, BLOCKS).
//
// Greedily grows blocks over the feasible nodes: starting from a seed, the
// candidate border node with the highest adjacency to the current kernel is
// promoted to kernel, as long as the block (kernels plus all their
// neighbors) stays within m nodes and the best candidate's adjacency meets
// a threshold. This yields blocks of heterogeneous size whose interiors are
// dense — the pre-processing effect Section 6.3 credits for the speedups.

#ifndef MCE_DECOMP_BLOCKS_H_
#define MCE_DECOMP_BLOCKS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "decomp/block.h"
#include "graph/graph.h"

namespace mce::decomp {

/// Seed-selection policy for select(N_f) in Algorithm 3 (the paper leaves
/// it open; the default mirrors [10]'s increasing-degree processing).
enum class SeedPolicy : uint8_t {
  kLowestDegree = 0,
  kHighestDegree = 1,
  kFirstId = 2,
};

struct BlocksOptions {
  /// Maximum number of nodes per block (m). Must be >= 1.
  uint32_t max_block_size = 1000;
  /// Candidate border nodes with fewer than this many kernel-adjacencies
  /// stop the growth of the current block.
  uint32_t min_adjacency = 1;
  SeedPolicy seed_policy = SeedPolicy::kLowestDegree;
  /// Relabel each materialized block's local ids into reverse degeneracy
  /// order (reduce::DegeneracyRelabelBlock) before emission, so the
  /// hottest rows share cache lines. Permutes ids only — the analyzed
  /// clique set is unchanged, but Block::subgraph.to_parent is no longer
  /// increasing. Driven by FindMaxCliquesOptions::reduce.
  bool degeneracy_relabel = false;
};

/// Receives each finished block as soon as it is materialized, in
/// decomposition order.
using BlockCallback = std::function<void(Block&&)>;

/// Algorithm 3: decomposes `g` into blocks whose kernels partition
/// `feasible`. Every node of `feasible` must satisfy IsFeasibleNode for
/// options.max_block_size. Node ids in the result are block-local, with
/// Block::subgraph.to_parent mapping back to `g`'s ids.
std::vector<Block> BuildBlocks(const Graph& g,
                               const std::vector<NodeId>& feasible,
                               const BlocksOptions& options);

/// Streaming variant of BuildBlocks: `emit` is invoked on the calling
/// thread for each block the moment its growth finishes, before the next
/// seed is considered. Emission order equals BuildBlocks' vector order.
/// The executors use this to dispatch block analysis while decomposition
/// of the remaining seeds is still running.
void BuildBlocksStreaming(const Graph& g, const std::vector<NodeId>& feasible,
                          const BlocksOptions& options,
                          const BlockCallback& emit);

}  // namespace mce::decomp

#endif  // MCE_DECOMP_BLOCKS_H_
