// Clique filtering (Lemma 1 and the `filter` procedure of Algorithm 1).
//
// The hub-side recursion returns cliques that are maximal in the induced
// hub graph G_h but possibly extendable by a feasible node of G. Two
// equivalent filters are provided:
//  * FilterContainedCliques — the literal Lemma 1 statement: drop every
//    clique of C_h contained in some clique of C_f (set containment);
//  * FilterNonMaximal — the graph-based form: keep a clique iff it has no
//    common neighbor in G (i.e. it is maximal in G).
// They agree whenever C_f covers all maximal cliques with a feasible node
// (property-tested in tests/decomp_filter_test.cc); the graph-based filter
// is the production path because it needs no containment joins.

#ifndef MCE_DECOMP_FILTER_H_
#define MCE_DECOMP_FILTER_H_

#include <cstddef>
#include <span>

#include "graph/graph.h"
#include "mce/clique.h"
#include "mce/clique_sink.h"

namespace mce::decomp {

/// Lemma 1 filter: cliques of `ch` not contained in (or equal to) any
/// clique of `cf`. O(|ch| * candidates) using a per-vertex index over cf.
CliqueSet FilterContainedCliques(const CliqueSet& ch, const CliqueSet& cf);

/// Keeps the cliques of `cliques` that are maximal in `g` (no vertex of g
/// is adjacent to all members). Clique node ids must be g's ids.
CliqueSet FilterNonMaximal(const Graph& g, const CliqueSet& cliques);

/// Predicate form of FilterNonMaximal for one clique.
bool IsMaximalInGraph(const Graph& g, const Clique& clique);

/// Streams cliques [begin, end) of the global concatenation of `sinks`
/// (append order within each sink, sinks in the given order) to `fn` —
/// the FilterTask's input iterator. Chunk boundaries are indices into
/// this concatenation, so the filter partitions identically whether the
/// sinks are resident or spilled; spilled sinks stream one disk chunk at
/// a time through a per-call buffer. Thread-safe for concurrent callers
/// over the same quiesced sinks.
void ForEachCliqueInRange(std::span<const CliqueSink* const> sinks,
                          size_t begin, size_t end, const CliqueCallback& fn);

}  // namespace mce::decomp

#endif  // MCE_DECOMP_FILTER_H_
