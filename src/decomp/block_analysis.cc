#include "decomp/block_analysis.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "decision/features.h"
#include "graph/views.h"
#include "mce/pivoter.h"
#include "mce/storage.h"
#include "util/check.h"

namespace mce::decomp {

namespace {

/// State shared with the local-to-parent translate callback. The callback
/// captures one pointer to this struct so it fits std::function's inline
/// buffer — a capture of the individual references would heap-allocate on
/// every block.
struct TranslateCtx {
  const Block* block;
  const CliqueCallback* emit;
  std::vector<NodeId>* parent_clique;
  uint64_t count = 0;
};

CliqueCallback MakeTranslate(TranslateCtx* ctx) {
  return [ctx](std::span<const NodeId> local) {
    std::vector<NodeId>& parent = *ctx->parent_clique;
    parent.clear();
    for (NodeId v : local) {
      parent.push_back(ctx->block->subgraph.to_parent[v]);
    }
    ++ctx->count;
    (*ctx->emit)(parent);
  };
}

/// Shared Algorithm 4 loop over vector sets; Storage is ListStorage or
/// MatrixStorage, built once per block by the caller. All buffers come
/// from `ws`, so repeated calls with the same workspace allocate nothing
/// once the buffers have grown to the largest block seen. Only kernels in
/// `range` run; kernels before the range start out visited, so the loop
/// state matches the whole-block call at range.begin exactly.
template <typename Storage>
uint64_t RunVectorLoop(const Block& block, const Storage& storage,
                       PivotRule rule, const CliqueCallback& emit,
                       BlockWorkspace& ws, KernelRange range) {
  const Graph& g = block.subgraph.graph;
  // P starts as K u H; V starts as the block's visited set plus every
  // kernel processed before the range.
  ws.in_p.assign(g.num_nodes(), 0);
  ws.in_v.assign(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (block.roles[v] == NodeRole::kVisited) {
      ws.in_v[v] = 1;
    } else {
      ws.in_p[v] = 1;
    }
  }
  for (size_t i = 0; i < range.begin; ++i) {
    const NodeId k = block.kernel_local[i];
    ws.in_p[k] = 0;
    ws.in_v[k] = 1;
  }
  // Translate local cliques to parent ids on the way out.
  TranslateCtx ctx{&block, &emit, &ws.translate};
  const CliqueCallback translate = MakeTranslate(&ctx);

  VectorMceRunner<Storage> runner(storage, rule, &ws.vector_scratch);
  std::vector<NodeId>& p = ws.p;
  std::vector<NodeId>& x = ws.x;
  for (size_t i = range.begin; i < range.end; ++i) {
    const NodeId k = block.kernel_local[i];
    p.clear();
    x.clear();
    for (NodeId u : g.Neighbors(k)) {
      if (ws.in_v[u]) {
        x.push_back(u);
      } else if (ws.in_p[u]) {
        p.push_back(u);
      }
    }
    // Neighbor lists are sorted, so p and x are sorted.
    const NodeId seed[] = {k};
    runner.Run(seed, p, x, translate);
    ws.in_p[k] = 0;
    ws.in_v[k] = 1;
  }
  return ctx.count;
}

uint64_t RunBitsetLoop(const Block& block, PivotRule rule,
                       const CliqueCallback& emit, BlockWorkspace& ws,
                       KernelRange range) {
  const Graph& g = block.subgraph.graph;
  const BitsetGraph& bg = ws.BitsetRows(g);
  ws.block_p.Reinit(g.num_nodes());
  ws.block_x.Reinit(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (block.roles[u] == NodeRole::kVisited) {
      ws.block_x.Set(u);
    } else {
      ws.block_p.Set(u);
    }
  }
  for (size_t i = 0; i < range.begin; ++i) {
    const NodeId k = block.kernel_local[i];
    ws.block_p.Clear(k);
    ws.block_x.Set(k);
  }
  TranslateCtx ctx{&block, &emit, &ws.translate};
  const CliqueCallback translate = MakeTranslate(&ctx);

  BitsetMceRunner runner(bg, rule, &ws.bitset_scratch);
  for (size_t i = range.begin; i < range.end; ++i) {
    const NodeId k = block.kernel_local[i];
    ws.seed_p = ws.block_p;
    ws.seed_p.And(bg.Row(k));
    ws.seed_x = ws.block_x;
    ws.seed_x.And(bg.Row(k));
    const NodeId seed[] = {k};
    runner.Run(seed, ws.seed_p, ws.seed_x, translate);
    ws.block_p.Clear(k);
    ws.block_x.Set(k);
  }
  return ctx.count;
}

}  // namespace

BlockAnalysisResult AnalyzeBlock(const Block& block,
                                 const BlockAnalysisOptions& options,
                                 const CliqueCallback& emit,
                                 BlockWorkspace* workspace) {
  return AnalyzeBlock(block, options, emit, workspace,
                      KernelRange{0, block.kernel_local.size()});
}

BlockAnalysisResult AnalyzeBlock(const Block& block,
                                 const BlockAnalysisOptions& options,
                                 const CliqueCallback& emit,
                                 BlockWorkspace* workspace,
                                 KernelRange range) {
  const Graph& g = block.subgraph.graph;
  MCE_CHECK_EQ(block.roles.size(), g.num_nodes());
  MCE_CHECK_LE(range.begin, range.end);
  MCE_CHECK_LE(range.end, block.kernel_local.size());

  // Only materialized for workspace-less callers: even an empty workspace
  // costs a few allocations (deque bookkeeping), which would break the
  // steady-state-allocation-free contract for callers that do pass one.
  std::optional<BlockWorkspace> transient;
  BlockWorkspace& ws =
      workspace != nullptr ? *workspace : transient.emplace();

  BlockAnalysisResult result;
  // bestfit(B): classify the block, or use the fixed combination.
  if (options.tree != nullptr) {
    result.used = options.tree->Classify(decision::ComputeFeatures(g));
  } else {
    result.used = options.fixed;
  }
  // Memory guard: dense storages are quadratic in the block size; degrade
  // to lists instead of exhausting memory on an oversized block.
  if (options.max_storage_bytes > 0 &&
      result.used.storage != StorageKind::kAdjacencyList &&
      EstimateStorageBytes(g.num_nodes(), g.num_edges(),
                           result.used.storage) > options.max_storage_bytes) {
    result.used.storage = StorageKind::kAdjacencyList;
  }
  // Seeded enumeration has no Eppstein/Naive form (see enumerator.h);
  // record the substitution in `used` so consumers (decision-tree
  // training, the Table-1 benches, block observers) attribute the run to
  // the algorithm that actually executed.
  result.used.algorithm = SeededAlgorithmFor(result.used.algorithm);
  const PivotRule rule = RuleFor(result.used.algorithm);

  switch (result.used.storage) {
    case StorageKind::kAdjacencyList: {
      ListStorage storage(g);
      result.num_cliques =
          RunVectorLoop(block, storage, rule, emit, ws, range);
      break;
    }
    case StorageKind::kMatrix: {
      result.num_cliques =
          RunVectorLoop(block, ws.Matrix(g), rule, emit, ws, range);
      break;
    }
    case StorageKind::kBitset: {
      result.num_cliques = RunBitsetLoop(block, rule, emit, ws, range);
      break;
    }
  }
  return result;
}

}  // namespace mce::decomp
