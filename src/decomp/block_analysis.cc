#include "decomp/block_analysis.h"

#include <algorithm>
#include <vector>

#include "decision/features.h"
#include "graph/views.h"
#include "mce/pivoter.h"
#include "mce/storage.h"
#include "util/check.h"

namespace mce::decomp {

namespace {

/// Shared Algorithm 4 loop over vector sets; Storage is ListStorage or
/// MatrixStorage, built once per block by the caller.
template <typename Storage>
uint64_t RunVectorLoop(const Block& block, const Storage& storage,
                       PivotRule rule, const CliqueCallback& emit) {
  const Graph& g = block.subgraph.graph;
  // P starts as K u H; V starts as the block's visited set.
  std::vector<uint8_t> in_p(g.num_nodes(), 0);
  std::vector<uint8_t> in_v(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (block.roles[v] == NodeRole::kVisited) {
      in_v[v] = 1;
    } else {
      in_p[v] = 1;
    }
  }
  // Translate local cliques to parent ids on the way out.
  std::vector<NodeId> parent_clique;
  uint64_t count = 0;
  CliqueCallback translate = [&](std::span<const NodeId> local) {
    parent_clique.clear();
    for (NodeId v : local) parent_clique.push_back(block.subgraph.to_parent[v]);
    ++count;
    emit(parent_clique);
  };

  std::vector<NodeId> p, x;
  for (NodeId k : block.kernel_local) {
    p.clear();
    x.clear();
    for (NodeId u : g.Neighbors(k)) {
      if (in_v[u]) {
        x.push_back(u);
      } else if (in_p[u]) {
        p.push_back(u);
      }
    }
    // Neighbor lists are sorted, so p and x are sorted.
    RunVectorMce(storage, rule, {k}, p, x, translate);
    in_p[k] = 0;
    in_v[k] = 1;
  }
  return count;
}

uint64_t RunBitsetLoop(const Block& block, PivotRule rule,
                       const CliqueCallback& emit) {
  const Graph& g = block.subgraph.graph;
  BitsetGraph bg(g);
  Bitset p(g.num_nodes());
  Bitset v(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (block.roles[u] == NodeRole::kVisited) {
      v.Set(u);
    } else {
      p.Set(u);
    }
  }
  std::vector<NodeId> parent_clique;
  uint64_t count = 0;
  CliqueCallback translate = [&](std::span<const NodeId> local) {
    parent_clique.clear();
    for (NodeId u : local) parent_clique.push_back(block.subgraph.to_parent[u]);
    ++count;
    emit(parent_clique);
  };
  for (NodeId k : block.kernel_local) {
    Bitset pk = p;
    pk.And(bg.Row(k));
    Bitset xk = v;
    xk.And(bg.Row(k));
    RunBitsetMce(bg, rule, {k}, std::move(pk), std::move(xk), translate);
    p.Clear(k);
    v.Set(k);
  }
  return count;
}

}  // namespace

BlockAnalysisResult AnalyzeBlock(const Block& block,
                                 const BlockAnalysisOptions& options,
                                 const CliqueCallback& emit) {
  const Graph& g = block.subgraph.graph;
  MCE_CHECK_EQ(block.roles.size(), g.num_nodes());

  BlockAnalysisResult result;
  // bestfit(B): classify the block, or use the fixed combination.
  if (options.tree != nullptr) {
    result.used = options.tree->Classify(decision::ComputeFeatures(g));
  } else {
    result.used = options.fixed;
  }
  // Memory guard: dense storages are quadratic in the block size; degrade
  // to lists instead of exhausting memory on an oversized block.
  if (options.max_storage_bytes > 0 &&
      result.used.storage != StorageKind::kAdjacencyList &&
      EstimateStorageBytes(g.num_nodes(), g.num_edges(),
                           result.used.storage) > options.max_storage_bytes) {
    result.used.storage = StorageKind::kAdjacencyList;
  }
  // Seeded enumeration has no Eppstein/Naive form (see enumerator.h);
  // record the substitution in `used` so consumers (decision-tree
  // training, the Table-1 benches, block observers) attribute the run to
  // the algorithm that actually executed.
  result.used.algorithm = SeededAlgorithmFor(result.used.algorithm);
  const PivotRule rule = RuleFor(result.used.algorithm);

  switch (result.used.storage) {
    case StorageKind::kAdjacencyList: {
      ListStorage storage(g);
      result.num_cliques = RunVectorLoop(block, storage, rule, emit);
      break;
    }
    case StorageKind::kMatrix: {
      MatrixStorage storage(g);
      result.num_cliques = RunVectorLoop(block, storage, rule, emit);
      break;
    }
    case StorageKind::kBitset: {
      result.num_cliques = RunBitsetLoop(block, rule, emit);
      break;
    }
  }
  return result;
}

}  // namespace mce::decomp
