#include "decomp/cut.h"

namespace mce::decomp {

CutResult Cut(const Graph& g, uint32_t m) {
  CutResult out;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (IsFeasibleNode(g, v, m)) {
      out.feasible.push_back(v);
    } else {
      out.hubs.push_back(v);
    }
  }
  return out;
}

}  // namespace mce::decomp
