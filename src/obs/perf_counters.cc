#include "obs/perf_counters.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "obs/trace.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#define MCE_HAVE_PERF_EVENT 1
#else
#define MCE_HAVE_PERF_EVENT 0
#endif

namespace mce::obs {

namespace {

uint64_t ThreadCpuNanos() {
  timespec ts{};
#if defined(CLOCK_THREAD_CPUTIME_ID)
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
#else
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0) return 0;
#endif
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

#if MCE_HAVE_PERF_EVENT

int PerfEventOpen(perf_event_attr* attr, int group_fd) {
  return static_cast<int>(syscall(__NR_perf_event_open, attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd,
                                  PERF_FLAG_FD_CLOEXEC));
}

perf_event_attr MakeAttr(uint32_t type, uint64_t config, bool leader) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = leader ? 1 : 0;
  // Counting user-space work only keeps the group usable under
  // perf_event_paranoid == 2 (the common distro default).
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return attr;
}

#endif  // MCE_HAVE_PERF_EVENT

/// Process-wide probe result: 0 = not probed, 1 = available, -1 = not.
std::atomic<int> g_hardware_probe{0};

}  // namespace

CounterDelta& CounterDelta::operator+=(const CounterDelta& other) {
  cycles += other.cycles;
  instructions += other.instructions;
  cache_misses += other.cache_misses;
  branch_misses += other.branch_misses;
  task_clock_ns += other.task_clock_ns;
  if (source == CounterSource::kNone) {
    source = other.source;
  } else if (other.source == CounterSource::kHardware) {
    source = CounterSource::kHardware;
  }
  return *this;
}

CounterDelta& CounterDelta::SaturatingSubtract(const CounterDelta& other) {
  auto sub = [](uint64_t a, uint64_t b) { return a > b ? a - b : 0; };
  cycles = sub(cycles, other.cycles);
  instructions = sub(instructions, other.instructions);
  cache_misses = sub(cache_misses, other.cache_misses);
  branch_misses = sub(branch_misses, other.branch_misses);
  task_clock_ns = sub(task_clock_ns, other.task_clock_ns);
  return *this;
}

bool PerfCounterSet::HardwareAvailable() {
  int probed = g_hardware_probe.load(std::memory_order_relaxed);
  if (probed != 0) return probed > 0;

  int result = -1;
#if MCE_HAVE_PERF_EVENT
  const char* force = std::getenv("MCE_FORCE_NO_PERF");
  const bool forced_off = force != nullptr && force[0] != '\0' &&
                          std::strcmp(force, "0") != 0;
  if (!forced_off) {
    // Minimal probe: can we open, enable, and read a cycles counter on
    // this thread? Any failure (ENOSYS under seccomp, EPERM/EACCES under
    // perf_event_paranoid, ENOENT without a PMU) means no.
    perf_event_attr attr =
        MakeAttr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, true);
    const int fd = PerfEventOpen(&attr, -1);
    if (fd >= 0) {
      uint64_t buf[4] = {0, 0, 0, 0};  // nr, time_enabled, time_running, v0
      if (ioctl(fd, PERF_EVENT_IOC_ENABLE, 0) == 0 &&
          read(fd, buf, sizeof(buf)) > 0) {
        result = 1;
      }
      close(fd);
    }
  }
#endif
  // Another thread may race the probe; both arrive at the same answer.
  g_hardware_probe.store(result, std::memory_order_relaxed);
  return result > 0;
}

PerfCounterSet::PerfCounterSet() {
  if (HardwareAvailable()) OpenGroup();
}

PerfCounterSet::~PerfCounterSet() { Close(); }

void PerfCounterSet::OpenGroup() {
#if MCE_HAVE_PERF_EVENT
  struct EventSpec {
    uint32_t type;
    uint64_t config;
  };
  // Logical order matches present_[]: cycles, instructions, cache-misses,
  // branch-misses, task-clock.
  const EventSpec specs[5] = {
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
      {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
  };
  perf_event_attr leader = MakeAttr(specs[0].type, specs[0].config, true);
  group_fd_ = PerfEventOpen(&leader, -1);
  if (group_fd_ < 0) return;  // probe passed but this thread cannot open
  present_[0] = 0;
  group_size_ = 1;
  int member = 0;
  for (int i = 1; i < 5; ++i) {
    perf_event_attr attr = MakeAttr(specs[i].type, specs[i].config, false);
    const int fd = PerfEventOpen(&attr, group_fd_);
    if (fd < 0) continue;  // tolerate individual events missing
    member_fds_[member++] = fd;
    present_[i] = group_size_++;
  }
  if (ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
      ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
    Close();
  }
#endif
}

void PerfCounterSet::Close() {
#if MCE_HAVE_PERF_EVENT
  for (int& fd : member_fds_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
  if (group_fd_ >= 0) close(group_fd_);
  group_fd_ = -1;
#endif
  for (int& slot : present_) slot = -1;
  group_size_ = 0;
}

PerfCounterSet::Snapshot PerfCounterSet::Read() {
  Snapshot snap;
  snap.thread_ns = ThreadCpuNanos();
#if MCE_HAVE_PERF_EVENT
  if (group_fd_ >= 0) {
    // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, values[nr].
    uint64_t buf[3 + 5] = {0};
    const ssize_t n = read(group_fd_, buf, sizeof(buf));
    if (n >= static_cast<ssize_t>((3 + group_size_) * sizeof(uint64_t))) {
      snap.time_enabled = buf[1];
      snap.time_running = buf[2];
      for (int i = 0; i < 5; ++i) {
        if (present_[i] >= 0) snap.values[i] = buf[3 + present_[i]];
      }
    } else {
      // A failing read (e.g. the PMU went away) downgrades permanently.
      Close();
    }
  }
#endif
  return snap;
}

CounterDelta PerfCounterSet::Delta(const Snapshot& begin,
                                   const Snapshot& end) const {
  CounterDelta d;
  const uint64_t thread_ns =
      end.thread_ns > begin.thread_ns ? end.thread_ns - begin.thread_ns : 0;
  if (group_fd_ < 0) {
    d.task_clock_ns = thread_ns;
    d.source = CounterSource::kSoftware;
    return d;
  }
  auto diff = [](uint64_t a, uint64_t b) { return a > b ? a - b : 0; };
  // Scale for multiplexing: when more groups are scheduled than the PMU
  // has slots, the kernel time-slices them and reports the enabled vs
  // actually-running time; extrapolate counts by enabled/running.
  const uint64_t enabled = diff(end.time_enabled, begin.time_enabled);
  const uint64_t running = diff(end.time_running, begin.time_running);
  const double scale =
      (running > 0 && enabled > running)
          ? static_cast<double>(enabled) / static_cast<double>(running)
          : 1.0;
  auto scaled = [&](int logical) -> uint64_t {
    if (present_[logical] < 0) return 0;
    const uint64_t raw = diff(end.values[logical], begin.values[logical]);
    return static_cast<uint64_t>(static_cast<double>(raw) * scale);
  };
  d.cycles = scaled(0);
  d.instructions = scaled(1);
  d.cache_misses = scaled(2);
  d.branch_misses = scaled(3);
  // Task-clock is a software event: never multiplexed, report it raw; fall
  // back to the thread CPU clock if the event failed to open.
  d.task_clock_ns =
      present_[4] >= 0 ? diff(end.values[4], begin.values[4]) : thread_ns;
  d.source = CounterSource::kHardware;
  return d;
}

PerfCounterSet& PerfCounterSet::ForCurrentThread() {
  thread_local PerfCounterSet set;
  return set;
}

void ScopedCounters::Begin() {
  begin_ = PerfCounterSet::ForCurrentThread().Read();
  active_ = true;
}

CounterDelta ScopedCounters::Finish() {
  active_ = false;
  PerfCounterSet& set = PerfCounterSet::ForCurrentThread();
  return set.Delta(begin_, set.Read());
}

double ProfileBucket::Ipc() const {
  return counters.cycles > 0 ? static_cast<double>(counters.instructions) /
                                   static_cast<double>(counters.cycles)
                             : 0.0;
}

double ProfileBucket::NsPerClique() const {
  return cliques > 0 ? static_cast<double>(counters.task_clock_ns) /
                           static_cast<double>(cliques)
                     : 0.0;
}

void ProfileAccumulator::Add(SpanKind kind, uint32_t level, double seconds,
                             uint64_t cliques, const CounterDelta& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.enabled = true;
  if (delta.source == CounterSource::kHardware) stats_.hardware = true;

  auto add_to = [&](ProfileBucket& b) {
    b.spans += 1;
    b.seconds += seconds;
    b.cliques += cliques;
    b.counters += delta;
  };
  add_to(stats_.total);

  const uint8_t kind_value = static_cast<uint8_t>(kind);
  ProfileBucket* kind_bucket = nullptr;
  for (auto& [value, bucket] : stats_.by_kind) {
    if (value == kind_value) {
      kind_bucket = &bucket;
      break;
    }
  }
  if (kind_bucket == nullptr) {
    stats_.by_kind.emplace_back(kind_value, ProfileBucket());
    kind_bucket = &stats_.by_kind.back().second;
  }
  add_to(*kind_bucket);

  if (level != kNoLevel) {
    if (stats_.by_level.size() <= level) stats_.by_level.resize(level + 1);
    add_to(stats_.by_level[level]);
  }
}

ProfileStats ProfileAccumulator::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string ProfileStats::ToString() const {
  if (!enabled) return std::string();
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line), "profile (%s counters):\n",
                hardware ? "hardware" : "software-clock");
  out += line;
  auto row = [&](const char* label, const ProfileBucket& b) {
    if (b.spans == 0) return;
    std::snprintf(line, sizeof(line),
                  "  %-14s %8" PRIu64 " spans  %8.3fs  cyc %11" PRIu64
                  "  ipc %4.2f  cache-miss %9" PRIu64 "  branch-miss %9" PRIu64
                  "\n",
                  label, b.spans, b.seconds, b.counters.cycles, b.Ipc(),
                  b.counters.cache_misses, b.counters.branch_misses);
    out += line;
  };
  row("total", total);
  for (const auto& [kind, bucket] : by_kind) {
    row(mce::obs::ToString(static_cast<SpanKind>(kind)), bucket);
  }
  return out;
}

}  // namespace mce::obs
