#include "obs/progress.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mce::obs {

namespace {

/// EWMA smoothing for the cost-throughput estimate. Heavier weight on
/// history than on the instantaneous rate: per-tick rates are noisy
/// (one monster block retiring inflates a single interval).
constexpr double kEwmaAlpha = 0.3;

/// ETA samples kept for final error accounting; beyond this the record
/// is already dense enough and a multi-day run must not grow unbounded.
constexpr size_t kMaxEtaSamples = 4096;

double FetchAdd(std::atomic<double>& a, double delta) {
  // std::atomic<double>::fetch_add exists in C++20 but CAS-looping by
  // hand keeps us working on toolchains whose libstdc++ lacks it.
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
  return cur + delta;
}

}  // namespace

ProgressEstimator::ProgressEstimator()
    : start_(std::chrono::steady_clock::now()) {}

double ProgressEstimator::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

ProgressEstimator::LevelCounters& ProgressEstimator::LevelAt(uint32_t level) {
  if (levels_.size() <= level) levels_.resize(level + 1);
  return levels_[level];
}

void ProgressEstimator::RegisterBlock(uint32_t level, double cost) {
  MCE_DCHECK(cost >= 0);
  FetchAdd(registered_cost_, cost);
  std::lock_guard<std::mutex> lock(mu_);
  ++LevelAt(level).blocks;
  ++blocks_;
}

void ProgressEstimator::RetireCost(double units) {
  MCE_DCHECK(units >= 0);
  FetchAdd(completed_cost_, units);
}

void ProgressEstimator::RetireBlock(uint32_t level, double residual) {
  MCE_DCHECK(residual >= 0);
  FetchAdd(completed_cost_, residual);
  std::lock_guard<std::mutex> lock(mu_);
  ++LevelAt(level).blocks_done;
  ++blocks_done_;
}

void ProgressEstimator::AddCliques(uint64_t n) {
  cliques_.fetch_add(n, std::memory_order_relaxed);
}

void ProgressEstimator::AddSpillChunk(uint64_t bytes) {
  spill_chunks_.fetch_add(1, std::memory_order_relaxed);
  spill_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

void ProgressEstimator::BeginLevel(uint32_t level) {
  std::lock_guard<std::mutex> lock(mu_);
  LevelAt(level).started = true;
}

void ProgressEstimator::FinishLevel(uint32_t level) {
  std::lock_guard<std::mutex> lock(mu_);
  LevelAt(level).finished = true;
}

void ProgressEstimator::MarkComplete() {
  std::lock_guard<std::mutex> lock(mu_);
  if (complete_.load(std::memory_order_relaxed)) return;
  wall_seconds_ = ElapsedSeconds();
  fraction_hwm_ = 1.0;
  complete_.store(true, std::memory_order_release);
}

void ProgressEstimator::SetGaugeSource(std::function<GaugeSample()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  gauge_source_ = std::move(fn);
}

void ProgressEstimator::ClearGaugeSource() {
  std::lock_guard<std::mutex> lock(mu_);
  gauge_source_ = nullptr;
}

ProgressSnapshot ProgressEstimator::TakeSnapshot() {
  ProgressSnapshot s;
  // Load the lock-free counters first: completed may keep moving while
  // we hold the mutex, but each successive snapshot re-loads, so the
  // reported series stays monotone.
  s.registered_cost = registered_cost_.load(std::memory_order_relaxed);
  s.completed_cost = completed_cost_.load(std::memory_order_relaxed);
  s.cliques = cliques_.load(std::memory_order_relaxed);
  s.spill_chunks = spill_chunks_.load(std::memory_order_relaxed);
  s.spill_bytes = spill_bytes_.load(std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(mu_);
  s.seq = seq_++;
  s.elapsed_seconds = ElapsedSeconds();
  s.complete = complete_.load(std::memory_order_relaxed);
  s.blocks = blocks_;
  s.blocks_done = blocks_done_;
  s.levels.reserve(levels_.size());
  for (uint32_t i = 0; i < levels_.size(); ++i) {
    const LevelCounters& lc = levels_[i];
    if (lc.started) ++s.levels_started;
    if (lc.finished) ++s.levels_finished;
    if (lc.blocks == 0 && !lc.started) continue;
    s.levels.push_back(LevelProgress{i, lc.blocks, lc.blocks_done});
  }
  if (gauge_source_) s.gauges = gauge_source_();

  // High-water fraction: raw completed/registered can dip when a new
  // level registers a burst of cost, so the reported fraction only ever
  // ratchets up. While the run is live the denominator is still growing
  // — pipelined analysis can transiently retire everything registered so
  // far — so an incomplete run is capped just below 1.0; only
  // MarkComplete reports exactly 1.0.
  double raw = s.registered_cost > 0
                   ? s.completed_cost / s.registered_cost
                   : 0.0;
  raw = std::clamp(raw, 0.0, s.complete ? 1.0 : 0.99);
  if (s.complete) raw = 1.0;
  fraction_hwm_ = std::max(fraction_hwm_, raw);
  s.fraction = fraction_hwm_;

  // EWMA throughput over retired cost; skip degenerate intervals.
  const double dt = s.elapsed_seconds - last_elapsed_;
  const double dc = s.completed_cost - last_completed_;
  if (dt > 1e-6) {
    const double inst = std::max(dc, 0.0) / dt;
    ewma_throughput_ = ewma_throughput_ > 0
                           ? kEwmaAlpha * inst +
                                 (1 - kEwmaAlpha) * ewma_throughput_
                           : inst;
    last_elapsed_ = s.elapsed_seconds;
    last_completed_ = s.completed_cost;
  }
  s.throughput = ewma_throughput_;
  if (s.complete) {
    s.eta_seconds = 0;
  } else if (ewma_throughput_ > 0 && s.registered_cost > 0) {
    const double remaining =
        std::max(s.registered_cost - s.completed_cost, 0.0);
    s.eta_seconds = remaining / ewma_throughput_;
    if (eta_samples_.size() < kMaxEtaSamples) {
      eta_samples_.push_back(EtaSample{s.elapsed_seconds, s.eta_seconds});
    }
  }
  return s;
}

ProgressAccounting ProgressEstimator::Accounting() const {
  ProgressAccounting a;
  a.enabled = true;
  a.predicted_cost = registered_cost_.load(std::memory_order_relaxed);
  a.completed_cost = completed_cost_.load(std::memory_order_relaxed);
  a.cliques = cliques_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  a.blocks = blocks_;
  a.wall_seconds = complete_.load(std::memory_order_relaxed)
                       ? wall_seconds_
                       : ElapsedSeconds();
  a.samples = eta_samples_.size();
  if (!eta_samples_.empty()) {
    double sum = 0;
    for (const EtaSample& e : eta_samples_) {
      sum += std::abs(e.elapsed_seconds + e.eta_seconds - a.wall_seconds);
    }
    a.mean_abs_eta_error_seconds = sum / static_cast<double>(a.samples);
  }
  return a;
}

}  // namespace mce::obs
