// Per-thread hardware performance counters for task attribution.
//
// A PerfCounterSet wraps one perf_event_open(2) group per thread —
// cycles (leader), instructions, cache-misses, branch-misses, and the
// software task-clock — read together in one syscall so the members are
// sampled over the same interval. When the syscall is unavailable
// (containers with a seccomp filter, perf_event_paranoid >= 3, kernels
// without PMU access) the set degrades to a software clock:
// clock_gettime(CLOCK_THREAD_CPUTIME_ID) still yields task_clock_ns, and
// the hardware fields stay zero with the delta marked kSoftware. The
// availability probe runs once per process and honors MCE_FORCE_NO_PERF=1
// (force the software path; used by the tier-1 fallback leg).
//
// Counter values are exposed only as *deltas* between Begin/Finish pairs
// (ScopedCounters), scaled for multiplexing by the group's
// time_enabled/time_running ratio. Deltas attach to TraceRecorder spans
// (Chrome-trace "E"-event args) and accumulate into a ProfileAccumulator,
// whose snapshot becomes the per-kind / per-level "profile" object in
// RunStats and the --json report.
//
// Everything here is off unless FindMaxCliquesOptions::profile is set;
// the executors test one plain bool per task when it is not.

#ifndef MCE_OBS_PERF_COUNTERS_H_
#define MCE_OBS_PERF_COUNTERS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mce::obs {

enum class SpanKind : uint8_t;

/// Where a CounterDelta's numbers came from.
enum class CounterSource : uint8_t {
  kNone = 0,      // counters were not enabled for this span
  kHardware = 1,  // perf_event_open group read (all fields meaningful)
  kSoftware = 2,  // thread-CPU-clock fallback (only task_clock_ns)
};

/// Counter increments over one task's execution window.
struct CounterDelta {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_misses = 0;
  uint64_t branch_misses = 0;
  uint64_t task_clock_ns = 0;
  CounterSource source = CounterSource::kNone;

  CounterDelta& operator+=(const CounterDelta& other);
  /// Per-field saturating subtraction (for carving a parent span's self
  /// time out of its children on the nesting serial executor). The source
  /// of *this is kept.
  CounterDelta& SaturatingSubtract(const CounterDelta& other);
};

/// One thread's counter group. Not thread-safe; use ForCurrentThread()
/// (a thread_local instance) from task code.
class PerfCounterSet {
 public:
  PerfCounterSet();
  ~PerfCounterSet();

  PerfCounterSet(const PerfCounterSet&) = delete;
  PerfCounterSet& operator=(const PerfCounterSet&) = delete;

  /// True when the process-wide probe found a usable perf_event_open.
  /// The first call performs the probe (open + read + close of a minimal
  /// group on the calling thread); later calls are one relaxed load.
  /// MCE_FORCE_NO_PERF=1 in the environment forces false.
  static bool HardwareAvailable();

  /// The calling thread's lazily-constructed counter set.
  static PerfCounterSet& ForCurrentThread();

  /// True when this set opened a hardware group; false on the software
  /// fallback.
  bool hardware() const { return group_fd_ >= 0; }

  /// Opaque snapshot of the current counter values.
  struct Snapshot {
    uint64_t values[5] = {0, 0, 0, 0, 0};  // cycles, instr, cache, branch
    uint64_t time_enabled = 0;             // ns the group was enabled
    uint64_t time_running = 0;             // ns it was actually on the PMU
    uint64_t thread_ns = 0;                // CLOCK_THREAD_CPUTIME_ID
  };

  Snapshot Read();

  /// Counter increments from `begin` to `end`, multiplex-scaled.
  CounterDelta Delta(const Snapshot& begin, const Snapshot& end) const;

 private:
  void OpenGroup();
  void Close();

  int group_fd_ = -1;        // leader (cycles); -1 = software fallback
  int member_fds_[4] = {-1, -1, -1, -1};
  /// Which of the 5 logical counters are present in the group read, in
  /// open order. present_[i] maps logical index (0 cycles, 1 instructions,
  /// 2 cache_misses, 3 branch_misses, 4 task_clock) to its slot in the
  /// read buffer, or -1 when that event failed to open.
  int present_[5] = {-1, -1, -1, -1, -1};
  int group_size_ = 0;
};

/// RAII-free begin/finish pair for one task window. Usage:
///
///   obs::ScopedCounters sc;
///   if (profile) sc.Begin();
///   ... run the task ...
///   if (sc.active()) event.prof = sc.Finish();
class ScopedCounters {
 public:
  void Begin();
  bool active() const { return active_; }
  /// Delta since Begin(). Resets the active flag.
  CounterDelta Finish();

 private:
  PerfCounterSet::Snapshot begin_;
  bool active_ = false;
};

/// Aggregated attribution for one bucket (a task kind or a level).
struct ProfileBucket {
  uint64_t spans = 0;
  double seconds = 0;      // summed span wall durations
  uint64_t cliques = 0;    // cliques emitted inside the bucket's spans
  CounterDelta counters;

  /// instructions / cycles, or 0 when cycles were not measured.
  double Ipc() const;
  /// task_clock_ns / cliques, or 0 without cliques.
  double NsPerClique() const;
};

/// Snapshot of a run's counter attribution: the grand total plus per-kind
/// and per-level breakdowns. Buckets only ever receive what the total
/// receives, so by_kind sums (and by_level sums, over spans that carry a
/// level) reproduce `total` exactly.
struct ProfileStats {
  bool enabled = false;    // options.profile was set
  bool hardware = false;   // at least one span read hardware counters
  ProfileBucket total;
  std::vector<std::pair<uint8_t, ProfileBucket>> by_kind;   // SpanKind value
  std::vector<ProfileBucket> by_level;  // index = recursion level

  std::string ToString() const;
};

/// Thread-safe sink for per-task deltas. One mutex acquisition per task —
/// tasks are milliseconds, so this never contends measurably.
class ProfileAccumulator {
 public:
  /// Sentinel level for spans outside the recursion (the reduce prepass).
  static constexpr uint32_t kNoLevel = 0xffffffffu;

  void Add(SpanKind kind, uint32_t level, double seconds, uint64_t cliques,
           const CounterDelta& delta);

  ProfileStats Snapshot() const;

 private:
  mutable std::mutex mu_;
  ProfileStats stats_;
};

}  // namespace mce::obs

#endif  // MCE_OBS_PERF_COUNTERS_H_
