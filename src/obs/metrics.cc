#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"
#include "util/logging.h"

namespace mce::obs {

std::atomic<MetricsRegistry*> MetricsRegistry::g_installed{nullptr};

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  MCE_CHECK(!bounds_.empty());
  MCE_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  MCE_CHECK_GT(start, 0.0);
  MCE_CHECK_GT(factor, 1.0);
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> LinearBuckets(double start, double width, size_t count) {
  MCE_CHECK_GT(width, 0.0);
  std::vector<double> bounds;
  bounds.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(start + width * static_cast<double>(i));
  }
  return bounds;
}

MetricsRegistry::MetricsRegistry() = default;

MetricsRegistry::~MetricsRegistry() {
  MetricsRegistry* self = this;
  g_installed.compare_exchange_strong(self, nullptr,
                                      std::memory_order_relaxed);
}

void MetricsRegistry::Install(MetricsRegistry* registry) {
  g_installed.store(registry, std::memory_order_relaxed);
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::span<const double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::vector<double>(
                          upper_bounds.begin(), upper_bounds.end())))
             .first;
  } else {
    // The original bounds win: the handle callers cached must stay
    // valid, and observability must never abort the run it is
    // observing. A mismatched re-registration is a caller bug worth one
    // warning per name, not one per lookup.
    const std::vector<double>& existing = it->second->upper_bounds();
    const bool mismatch =
        existing.size() != upper_bounds.size() ||
        !std::equal(existing.begin(), existing.end(), upper_bounds.begin());
    if (mismatch && bounds_warned_.insert(std::string(name)).second) {
      MCE_LOG(WARNING) << "histogram '" << std::string(name)
                       << "' re-registered with a different bucket layout ("
                       << upper_bounds.size() << " bounds vs the original "
                       << existing.size()
                       << "); keeping the original bounds";
    }
  }
  return *it->second;
}

namespace {

/// Shortest float form that round-trips typical bucket bounds.
std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += name + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::vector<uint64_t> buckets = histogram->BucketCounts();
    const std::vector<double>& bounds = histogram->upper_bounds();
    for (size_t i = 0; i < buckets.size(); ++i) {
      const std::string le =
          i < bounds.size() ? FormatDouble(bounds[i]) : "+Inf";
      out += name + "_bucket{le=\"" + le + "\"} " +
             std::to_string(buckets[i]) + "\n";
    }
    out += name + "_count " + std::to_string(histogram->count()) + "\n";
    out += name + "_sum " + FormatDouble(histogram->sum()) + "\n";
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(counter->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ",";
    first = false;
    const std::vector<uint64_t> buckets = histogram->BucketCounts();
    const std::vector<double>& bounds = histogram->upper_bounds();
    out += "\"" + name + "\":{\"buckets\":[";
    for (size_t i = 0; i < buckets.size(); ++i) {
      if (i > 0) out += ",";
      out += "{\"le\":";
      out += i < bounds.size() ? FormatDouble(bounds[i]) : "\"+Inf\"";
      out += ",\"count\":" + std::to_string(buckets[i]) + "}";
    }
    out += "],\"count\":" + std::to_string(histogram->count()) +
           ",\"sum\":" + FormatDouble(histogram->sum()) + "}";
  }
  out += "}}\n";
  return out;
}

namespace {

Status WriteFile(const std::string& path, const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open metrics output " + path);
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != content.size() || !close_ok) {
    return Status::IoError("short write to metrics output " + path);
  }
  return Status::OK();
}

}  // namespace

Status MetricsRegistry::WriteJson(const std::string& path) const {
  return WriteFile(path, ToJson());
}

Status MetricsRegistry::WriteText(const std::string& path) const {
  return WriteFile(path, ToText());
}

}  // namespace mce::obs
