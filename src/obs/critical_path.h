// Critical-path and attribution analysis over recorded task spans.
//
// The engine's task DAG is known by construction (DESIGN.md §7): the
// reduce prepass runs first, DecomposeTask(L) depends on DecomposeTask
// (L-1) (it is submitted right after Cut(L-1)), every BlockTask /
// BlockShardTask / FallbackTask of level L depends on DecomposeTask(L),
// and the level's FilterTask chunks depend on its analysis tasks. This
// module reconstructs that DAG from a span list — recorded TraceEvents or
// events parsed back out of a Chrome-trace file — and computes:
//
//   * the critical path: the dependency chain ending at the last task to
//     finish, walked backwards picking the latest-finishing predecessor
//     at every step. Each entry carries its *exclusive* contribution to
//     the path timeline (spans clipped where they overlap their
//     successor, e.g. DecomposeTask(L+1) starting inside DecomposeTask
//     (L)) plus the scheduling gap to its successor, so contributions +
//     waits telescope to exactly (last end − earliest path begin);
//   * stragglers: top-K spans by measured duration, and by deviation
//     from the decision::EstimateBlockCost prediction (the cost model's
//     measured error signal);
//   * per-level idle attribution via obs::SplitIdle — parallelism
//     shortfall vs. task-graph barrier waits.
//
// Pool idle, admission stalls, spill flushes, and simulated-cluster
// placements are observability spans, not DAG tasks; they are excluded
// from the DAG, the wall hull, and the path.

#ifndef MCE_OBS_CRITICAL_PATH_H_
#define MCE_OBS_CRITICAL_PATH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "obs/perf_counters.h"
#include "obs/trace.h"

namespace mce::obs {

/// One task occurrence in the analyzed run.
struct TaskSpan {
  SpanKind kind = SpanKind::kBlock;
  uint32_t level = 0;
  uint64_t index = 0;   // block / chunk index within the level
  int64_t begin_us = 0;
  int64_t end_us = 0;
  int lane_pid = 0;     // display lane the span ran on
  int lane_tid = 0;
  double cost = 0;      // EstimateBlockCost prediction; 0 = none
  uint64_t cliques = 0;
  CounterDelta prof;

  double Seconds() const {
    return end_us > begin_us
               ? static_cast<double>(end_us - begin_us) * 1e-6
               : 0.0;
  }
};

/// True for kinds that are nodes of the task DAG (decompose, block,
/// shard, fallback, filter, reduce).
bool IsDagTask(SpanKind kind);

/// Converts recorded events to TaskSpans, keeping only DAG task kinds.
/// Lane assignment mirrors ToChromeTraceJson: (0, recording-thread tid)
/// unless the event carries a synthetic lane. The per-kind clique counts
/// are lifted out of the args.
std::vector<TaskSpan> TaskSpansFromEvents(std::span<const TraceEvent> events);

struct CriticalPathEntry {
  size_t span = 0;         // index into the input span list
  double seconds = 0;      // exclusive contribution to the path timeline
  double wait_seconds = 0; // gap between this span and its successor
};

struct CriticalPathResult {
  /// Root-first (earliest task first) chain ending at the last finisher.
  std::vector<CriticalPathEntry> path;
  double span_seconds = 0;  // sum of path contributions
  double wait_seconds = 0;  // sum of dependency gaps along the path
  double wall_seconds = 0;  // hull of all DAG task spans
  /// (span_seconds + wait_seconds) / wall_seconds. 1.0 when the path
  /// reaches back to the run's first task, which the dependency rules
  /// guarantee for well-formed traces.
  double coverage = 0;
};

CriticalPathResult ComputeCriticalPath(std::span<const TaskSpan> spans);

struct Straggler {
  size_t span = 0;
  double seconds = 0;
  double predicted_cost = 0;  // 0 when the span carried no prediction
  /// seconds / (alpha * predicted_cost), where alpha calibrates cost
  /// units to seconds over the whole run; 0 without a prediction.
  double deviation = 0;
};

/// Top-`k` DAG task spans by measured duration, longest first.
std::vector<Straggler> RankStragglersBySeconds(
    std::span<const TaskSpan> spans, size_t k);

/// Top-`k` predicted spans by deviation from the cost model, worst
/// (most under-predicted) first. alpha = sum(seconds) / sum(cost) over
/// every span with a prediction, so deviation 1.0 = exactly as predicted.
std::vector<Straggler> RankStragglersByDeviation(
    std::span<const TaskSpan> spans, size_t k);

/// Idle attribution of one recursion level (see obs::SplitIdle).
struct LevelIdle {
  uint32_t level = 0;
  int workers = 0;             // distinct lanes observed run-wide
  double busy_seconds = 0;     // summed analysis+filter span durations
  double idle_seconds = 0;     // parallelism shortfall within the level
  double barrier_idle_seconds = 0;  // parked at task-graph boundaries
};

/// Splits every level's idle capacity into starvation vs. barrier waits,
/// using the level's block/shard/fallback/filter spans as the busy set
/// and the run-wide distinct lane count as the worker count.
std::vector<LevelIdle> AttributeIdle(std::span<const TaskSpan> spans);

}  // namespace mce::obs

#endif  // MCE_OBS_CRITICAL_PATH_H_
