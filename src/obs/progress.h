// ProgressEstimator — live work accounting for a FindMaxCliques run.
//
// The denominator problem: the pipeline does not know its total work up
// front. Blocks are discovered level by level, so any progress number
// must stay honest while the denominator grows. The estimator treats
// decision::EstimateBlockCost units as the work currency: decompose
// registers a block's predicted cost the moment the block is emitted,
// and block (or shard) completion retires it. The completed fraction is
// reported as a high-water mark, so it is monotone non-decreasing even
// when a new level suddenly inflates the denominator, and the ETA comes
// from an EWMA of cost-throughput rather than the raw fraction (a run
// that is 90% done by block count may have its one monster block left).
//
// Thread model: RegisterBlock/RetireBlock take a mutex (once per block —
// cheap next to analysing the block); RetireCost/AddCliques/AddSpill are
// lock-free atomics, safe on the per-shard and per-clique hot paths.
// TakeSnapshot is called from the TelemetrySampler thread concurrently
// with all of the above. Executors install a gauge-source callback for
// run-scoped readings (queue depth, memory budget) and must clear it
// before the gauges die; ClearGaugeSource blocks until any in-flight
// snapshot has finished with the callback.
//
// Layering: obs/ knows nothing about graphs or executors. The bridge is
// FindMaxCliquesOptions::progress, filled by whoever owns the run.

#ifndef MCE_OBS_PROGRESS_H_
#define MCE_OBS_PROGRESS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

namespace mce::obs {

/// Point-in-time readings sampled from the running engine (thread-pool
/// queue depth, memory budget). Produced by the gauge-source callback.
struct GaugeSample {
  uint64_t queue_depth = 0;
  uint64_t mem_charged_bytes = 0;
  uint64_t mem_peak_bytes = 0;
};

/// Per-level block counts as of a snapshot.
struct LevelProgress {
  uint32_t level = 0;
  uint64_t blocks = 0;
  uint64_t blocks_done = 0;
};

/// One heartbeat's worth of state, taken atomically enough for the
/// monotonicity contract: `completed_cost` and `fraction` never decrease
/// across successive snapshots, and `fraction` reaches exactly 1.0 once
/// MarkComplete has run.
struct ProgressSnapshot {
  uint64_t seq = 0;
  double elapsed_seconds = 0;
  double registered_cost = 0;
  double completed_cost = 0;
  double fraction = 0;        // high-water completed/registered, in [0,1]
  double throughput = 0;      // EWMA cost units per second (0 = unknown)
  double eta_seconds = -1;    // remaining/throughput; -1 when unknown
  uint64_t cliques = 0;
  uint64_t blocks = 0;
  uint64_t blocks_done = 0;
  uint64_t spill_chunks = 0;
  uint64_t spill_bytes = 0;
  uint32_t levels_started = 0;
  uint32_t levels_finished = 0;
  bool complete = false;
  std::vector<LevelProgress> levels;
  GaugeSample gauges;
};

/// Final run accounting, surfaced through RunStats/--json: how much work
/// the cost model predicted, how much was retired, and how good the live
/// ETAs were against the wall clock that actually happened.
struct ProgressAccounting {
  bool enabled = false;
  double predicted_cost = 0;   // total registered EstimateBlockCost units
  double completed_cost = 0;   // total retired units (== predicted when done)
  uint64_t blocks = 0;
  uint64_t cliques = 0;
  uint64_t samples = 0;        // snapshots that carried an ETA
  /// mean |t + eta(t) - wall| over those samples; 0 when samples == 0.
  double mean_abs_eta_error_seconds = 0;
  double wall_seconds = 0;
};

class ProgressEstimator {
 public:
  ProgressEstimator();

  /// Decompose emitted a block at `level` with predicted `cost` units.
  void RegisterBlock(uint32_t level, double cost);

  /// A partial unit of a block finished (e.g. one shard of a split
  /// block). Lock-free; `units` must be >= 0.
  void RetireCost(double units);

  /// The last piece of a block at `level` finished; `residual` is
  /// whatever cost the per-piece RetireCost calls have not yet covered,
  /// so the retired total sums exactly to the registered total no matter
  /// how the block was split.
  void RetireBlock(uint32_t level, double residual);

  void AddCliques(uint64_t n);
  void AddSpillChunk(uint64_t bytes);

  void BeginLevel(uint32_t level);
  void FinishLevel(uint32_t level);

  /// The run finished (success or not). Idempotent. Freezes the fraction
  /// at 1.0 and records the wall time used for ETA-error accounting.
  void MarkComplete();
  bool complete() const {
    return complete_.load(std::memory_order_acquire);
  }

  /// Installs/clears the engine's gauge callback. ClearGaugeSource
  /// serializes against TakeSnapshot, so once it returns no snapshot is
  /// still inside the callback.
  void SetGaugeSource(std::function<GaugeSample()> fn);
  void ClearGaugeSource();

  /// Called by the sampler thread; advances the EWMA and the high-water
  /// fraction, and appends an ETA sample for final error accounting.
  ProgressSnapshot TakeSnapshot();

  ProgressAccounting Accounting() const;

  double registered_cost() const {
    return registered_cost_.load(std::memory_order_relaxed);
  }
  double completed_cost() const {
    return completed_cost_.load(std::memory_order_relaxed);
  }
  uint64_t cliques() const {
    return cliques_.load(std::memory_order_relaxed);
  }

 private:
  struct LevelCounters {
    uint64_t blocks = 0;
    uint64_t blocks_done = 0;
    bool started = false;
    bool finished = false;
  };
  struct EtaSample {
    double elapsed_seconds = 0;
    double eta_seconds = 0;
  };

  double ElapsedSeconds() const;
  LevelCounters& LevelAt(uint32_t level);  // mu_ held

  // Hot-path counters: fetch_add of non-negative deltas only, so each is
  // monotone without the mutex.
  std::atomic<double> registered_cost_{0};
  std::atomic<double> completed_cost_{0};
  std::atomic<uint64_t> cliques_{0};
  std::atomic<uint64_t> spill_chunks_{0};
  std::atomic<uint64_t> spill_bytes_{0};
  std::atomic<bool> complete_{false};

  mutable std::mutex mu_;
  std::vector<LevelCounters> levels_;  // indexed by level
  uint64_t blocks_ = 0;
  uint64_t blocks_done_ = 0;
  std::function<GaugeSample()> gauge_source_;

  // Sampler state (only touched under mu_; single sampler expected but
  // not required).
  uint64_t seq_ = 0;
  double fraction_hwm_ = 0;
  double ewma_throughput_ = 0;
  double last_elapsed_ = 0;
  double last_completed_ = 0;
  std::vector<EtaSample> eta_samples_;
  double wall_seconds_ = 0;

  const std::chrono::steady_clock::time_point start_;
};

/// RAII detach for an installed gauge source. The executors' gauge
/// closures capture run-local state (memory budgets, queues), so the
/// source must be cleared on *every* exit from Run — including exception
/// unwinds out of a user clique callback, where a live sampler thread
/// would otherwise snapshot dangling captures.
class ScopedGaugeSource {
 public:
  ScopedGaugeSource(ProgressEstimator* progress,
                    std::function<GaugeSample()> fn)
      : progress_(progress) {
    if (progress_ != nullptr) progress_->SetGaugeSource(std::move(fn));
  }
  ~ScopedGaugeSource() {
    if (progress_ != nullptr) progress_->ClearGaugeSource();
  }
  ScopedGaugeSource(const ScopedGaugeSource&) = delete;
  ScopedGaugeSource& operator=(const ScopedGaugeSource&) = delete;

 private:
  ProgressEstimator* progress_;
};

}  // namespace mce::obs

#endif  // MCE_OBS_PROGRESS_H_
