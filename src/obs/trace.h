// TraceRecorder — task-level span tracing for the execution engine.
//
// Every task the engine runs (DecomposeTask, BlockTask, FilterTask chunks,
// the m-core fallback, thread-pool worker idle waits, and the simulated
// cluster's per-lane block placements) can record one begin/end span.
// Recording is designed so that tracing compiled in but *off* costs one
// relaxed atomic load per event site:
//
//   if (obs::TraceRecorder* t = obs::TraceRecorder::installed()) { ... }
//
// When a recorder is installed (or passed via FindMaxCliquesOptions), each
// recording thread appends completed spans to its own buffer — no locks,
// no sharing on the hot path; the registration of a thread's buffer takes
// the recorder mutex once per (thread, recorder) pair. Buffers are bounded
// (events past the cap are counted as dropped, never reallocated into).
//
// Reading a recorder (Tracks/ToChromeTraceJson/WriteChromeTrace) requires
// the writers to be quiesced: every thread that recorded must have
// finished or been joined (the engine's thread pool joins its workers
// before Run returns, so tracing a run and exporting afterwards is safe).
//
// The Chrome-trace export is loadable by chrome://tracing and Perfetto:
// one JSON object {"traceEvents": [...]} of balanced "B"/"E" duration
// events plus thread/process-name metadata, timestamps in microseconds
// rebased to the earliest recorded span.

#ifndef MCE_OBS_TRACE_H_
#define MCE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/perf_counters.h"
#include "util/status.h"

namespace mce::obs {

enum class SpanKind : uint8_t {
  kDecompose = 0,  // CUT + BLOCKS of one recursion level
  kBlock = 1,      // BLOCK-ANALYSIS of one block
  kFilter = 2,     // one chunk of the telescoped Lemma-1 filter
  kFallback = 3,   // the indivisible m-core fallback enumeration
  kWorkerIdle = 4, // a pool worker waiting for work
  kSimBlock = 5,   // a block placement on a simulated cluster lane
  kBlockShard = 6, // one kernel-range shard of a split BlockTask
  kReduce = 7,     // the graph-reduction prepass (src/reduce)
  kSpillFlush = 8, // one clique-sink chunk flushed to its spill file
  kAdmission = 9,  // a BlockTask held back by the memory budget
};

/// The span's Chrome-trace event name ("DecomposeTask", "BlockTask", ...).
const char* ToString(SpanKind kind);

/// Inverse of ToString. Returns false (and leaves *kind untouched) when
/// `name` is not a known span name. Used by the trace analyzer to map
/// Chrome-trace events back to kinds.
bool SpanKindFromName(const std::string& name, SpanKind* kind);

/// One completed span. `args` is kind-specific (see the arg names emitted
/// by ToChromeTraceJson):
///   kDecompose:  {nodes, edges, feasible, hubs}
///   kBlock:      {kernel, border, visited, cliques} + algorithm/storage
///   kFilter:     {checked, kept, 0, 0}
///   kFallback:   {nodes, edges, cliques, 0}
///   kWorkerIdle: {} (index = pool worker index)
///   kSimBlock:   {worker, lane, cliques, 0}
///   kBlockShard: {kernel_begin, kernel_end, cliques, shards} (index =
///                block index; one span per shard of a split BlockTask)
///   kReduce:     {vertices_removed, edges_removed, trivial_cliques,
///                rounds}
///   kSpillFlush: {cliques, bytes, level_resident_after, file_bytes}
///                (index = chunk index within the sink)
///   kAdmission:  {requested_bytes, charged_bytes, budget_bytes, 0}
struct TraceEvent {
  int64_t begin_us = 0;  // obs::NowMicros() timebase
  int64_t end_us = 0;
  SpanKind kind = SpanKind::kBlock;
  uint32_t level = 0;    // recursion level of the task (0 for pool spans)
  uint64_t index = 0;    // block index / chunk index / worker index
  uint64_t args[4] = {0, 0, 0, 0};
  /// MCE combination that ran a kBlock span (values of mce::Algorithm /
  /// mce::StorageKind); kNoCombo on every other kind.
  static constexpr uint8_t kNoCombo = 0xff;
  uint8_t algorithm = kNoCombo;
  uint8_t storage = kNoCombo;
  /// Synthetic-lane override: when lane_tid >= 0 the event is drawn on
  /// (lane_pid, lane_tid) instead of the recording thread's track — used
  /// for the simulated cluster's per-worker timeline lanes.
  int32_t lane_pid = 0;
  int32_t lane_tid = -1;
  /// Predicted analysis cost (decision::EstimateBlockCost) of a kBlock /
  /// kBlockShard span; 0 = not predicted. Emitted as a "cost" arg so the
  /// trace analyzer can rank spans by deviation from the cost model.
  double cost = 0;
  /// Hardware/software counter deltas over the span (see perf_counters.h).
  /// Emitted as args on the Chrome-trace "E" event when source != kNone.
  CounterDelta prof;
};

/// Microseconds on the process-wide monotonic trace clock. All spans —
/// and the executor stats derived from the same windows — share this
/// timebase.
int64_t NowMicros();

class TraceRecorder {
 public:
  /// Default per-thread buffer capacity, in events.
  static constexpr size_t kDefaultMaxEventsPerThread = 1u << 20;

  TraceRecorder() : TraceRecorder(kDefaultMaxEventsPerThread) {}
  explicit TraceRecorder(size_t max_events_per_thread);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Installs `recorder` as the process-wide span sink (nullptr
  /// uninstalls). Event sites test this with one relaxed atomic load, so
  /// an uninstalled process pays essentially nothing. The caller must
  /// uninstall before destroying the recorder and must quiesce recording
  /// threads before reading it.
  static void Install(TraceRecorder* recorder);

  /// The installed recorder, or nullptr. One relaxed atomic load.
  static TraceRecorder* installed() {
    return g_installed.load(std::memory_order_relaxed);
  }

  /// Appends one completed span to the calling thread's buffer.
  /// Thread-safe and lock-free after the thread's first event.
  void Record(const TraceEvent& event);

  /// Overrides the calling thread's track name (default "thread-N"). The
  /// name is emitted as Chrome-trace thread_name metadata — arbitrary
  /// bytes are JSON-escaped on export.
  void SetCurrentThreadName(const std::string& name);

  /// Spans of one recording thread, in recording order.
  struct ThreadTrack {
    int tid = 0;
    std::string name;
    std::vector<TraceEvent> events;
  };

  /// Snapshot of all tracks, ordered by tid. Writers must be quiesced.
  std::vector<ThreadTrack> Tracks() const;

  /// All spans flattened across tracks (test convenience, no particular
  /// inter-thread order). Writers must be quiesced.
  std::vector<TraceEvent> Events() const;

  /// Events rejected because a thread buffer hit its cap.
  uint64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Chrome trace-event JSON of every recorded span. Writers must be
  /// quiesced.
  std::string ToChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  struct Buffer {
    int tid = 0;
    std::string name;
    std::vector<TraceEvent> events;
    size_t capacity = 0;
  };

  Buffer* RegisterThisThread();

  static std::atomic<TraceRecorder*> g_installed;

  /// Distinguishes recorder instances across reuse of the same address
  /// (thread-local cache validation).
  const uint64_t generation_;
  const size_t max_events_per_thread_;
  mutable std::mutex mu_;
  std::map<std::thread::id, std::unique_ptr<Buffer>> buffers_;
  std::atomic<uint64_t> dropped_{0};

  friend struct TraceThreadSlot;
};

}  // namespace mce::obs

#endif  // MCE_OBS_TRACE_H_
