// TelemetrySampler — background heartbeat thread over a ProgressEstimator.
//
// Once started, a sampler thread wakes every interval, takes a progress
// snapshot, and appends one NDJSON record to the configured stream (a
// file path, or "-" for stdout) and/or redraws a single-line TTY status
// on stderr. Finish() marks the run complete, emits one final record
// (`"final":true`, fraction 1.0 on success), and joins the thread — so a
// heartbeat file always ends with a terminal record that trace_check
// --heartbeat can validate, even for runs shorter than one interval.
//
// The sampler owns no engine state: everything it reports flows through
// ProgressEstimator, including the engine gauges (queue depth, memory)
// via the estimator's gauge-source callback. That keeps the sampling
// thread safe to run across executor teardown: executors clear their
// gauge source before their gauges die, and ClearGaugeSource blocks
// until any in-flight snapshot is out of the callback.

#ifndef MCE_OBS_TELEMETRY_H_
#define MCE_OBS_TELEMETRY_H_

#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "obs/progress.h"

namespace mce::obs {

struct TelemetryOptions {
  /// NDJSON heartbeat destination: "" disables the stream, "-" writes
  /// to stdout, anything else is a file path (truncated on open).
  std::string out_path;
  /// Sampling period. Clamped to >= 1.
  int interval_ms = 500;
  /// Redraw a single-line progress status on stderr each tick.
  bool tty_progress = false;
};

class TelemetrySampler {
 public:
  /// `progress` must outlive the sampler.
  TelemetrySampler(ProgressEstimator* progress, TelemetryOptions options);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Opens the output and launches the sampling thread. Returns false
  /// (with a warning logged) if the heartbeat file cannot be opened;
  /// the sampler is then inert and Finish() is a no-op.
  bool Start();

  /// Marks the run complete, emits the final heartbeat record, and
  /// joins the sampler thread. Idempotent; the destructor calls
  /// Finish(false) if the caller never did.
  void Finish(bool success);

  bool running() const { return thread_.joinable(); }

 private:
  void Loop();
  void Emit(const ProgressSnapshot& s, bool final_record, bool success);
  void WriteRecord(const ProgressSnapshot& s, bool final_record,
                   bool success);
  void RenderTty(const ProgressSnapshot& s);

  ProgressEstimator* const progress_;
  const TelemetryOptions options_;
  std::FILE* out_ = nullptr;   // not owned when stdout
  bool owns_out_ = false;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool finished_ = false;
  bool tty_dirty_ = false;  // a \r status line is on screen
};

}  // namespace mce::obs

#endif  // MCE_OBS_TELEMETRY_H_
