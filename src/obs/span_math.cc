#include "obs/span_math.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace mce::obs {

TimeRange Hull(std::span<const TimeRange> ranges) {
  TimeRange hull;
  bool any = false;
  for (const TimeRange& r : ranges) {
    if (r.Empty()) continue;
    if (!any) {
      hull = r;
      any = true;
    } else {
      hull.begin = std::min(hull.begin, r.begin);
      hull.end = std::max(hull.end, r.end);
    }
  }
  return any ? hull : TimeRange{};
}

namespace {

/// Sum of the union of `clipped` ranges, which must each be non-empty.
double SortedUnionLength(std::vector<std::pair<double, double>>& clipped) {
  std::sort(clipped.begin(), clipped.end());
  double total = 0;
  double cursor = clipped.empty() ? 0.0 : clipped.front().first;
  for (const auto& [lo, hi] : clipped) {
    const double from = std::max(lo, cursor);
    if (hi > from) {
      total += hi - from;
      cursor = hi;
    }
  }
  return total;
}

}  // namespace

double UnionLength(std::span<const TimeRange> ranges) {
  std::vector<std::pair<double, double>> clipped;
  clipped.reserve(ranges.size());
  for (const TimeRange& r : ranges) {
    if (!r.Empty()) clipped.emplace_back(r.begin, r.end);
  }
  return SortedUnionLength(clipped);
}

double OverlapLength(const TimeRange& window,
                     std::span<const TimeRange> ranges) {
  if (window.Empty()) return 0;
  std::vector<std::pair<double, double>> clipped;
  clipped.reserve(ranges.size());
  for (const TimeRange& r : ranges) {
    const double lo = std::max(r.begin, window.begin);
    const double hi = std::min(r.end, window.end);
    if (hi > lo) clipped.emplace_back(lo, hi);
  }
  return SortedUnionLength(clipped);
}

double IdleLength(const TimeRange& window, double busy_seconds, int workers) {
  const double capacity = static_cast<double>(workers) * window.Length();
  return std::max(0.0, capacity - busy_seconds);
}

IdleSplit SplitIdle(std::span<const TimeRange> spans, double busy_seconds,
                    int workers) {
  IdleSplit split;
  const double covered = UnionLength(spans);
  const double gaps = std::max(0.0, Hull(spans).Length() - covered);
  const double lanes = static_cast<double>(workers);
  split.idle_seconds = std::max(0.0, lanes * covered - busy_seconds);
  split.barrier_idle_seconds = lanes * gaps;
  return split;
}

}  // namespace mce::obs
