// Interval arithmetic over measured time spans.
//
// The execution engine (src/exec) derives its pipeline statistics —
// LevelStats::overlap_seconds and idle_seconds — from the same begin/end
// spans it hands to the trace recorder, instead of keeping a second ad-hoc
// set of clocks. These helpers are the shared span math: hulls, clipped
// unions, and the decompose-vs-analysis overlap measure of DESIGN.md §7.

#ifndef MCE_OBS_SPAN_MATH_H_
#define MCE_OBS_SPAN_MATH_H_

#include <span>

namespace mce::obs {

/// A half-open wall-clock window [begin, end), in seconds on some common
/// monotonic timebase. Empty (or inverted) ranges have zero length.
struct TimeRange {
  double begin = 0;
  double end = 0;

  double Length() const { return end > begin ? end - begin : 0.0; }
  bool Empty() const { return end <= begin; }
};

/// Smallest range covering every non-empty input range; empty input (or
/// all-empty ranges) yields an empty range at 0.
TimeRange Hull(std::span<const TimeRange> ranges);

/// Total length of the union of the ranges (overlaps counted once).
double UnionLength(std::span<const TimeRange> ranges);

/// Length of `window ∩ (∪ ranges)`: how much of `window` is covered by at
/// least one of the (possibly mutually overlapping) ranges. This is the
/// overlap measure of LevelStats::overlap_seconds — a level's decompose
/// window intersected with the union of earlier levels' analysis windows.
double OverlapLength(const TimeRange& window,
                     std::span<const TimeRange> ranges);

/// Aggregate idle time of `workers` lanes across `window`: the capacity
/// workers * window.Length() minus `busy_seconds` of work performed inside
/// it, clamped at zero (LevelStats::idle_seconds).
double IdleLength(const TimeRange& window, double busy_seconds, int workers);

/// A level's idle capacity, attributed by cause (LevelStats idle_seconds /
/// barrier_idle_seconds).
struct IdleSplit {
  /// Work-starved capacity while at least one of the level's own tasks was
  /// running: workers * UnionLength(spans) - busy_seconds, clamped at 0 —
  /// the parallelism shortfall the level itself is responsible for.
  double idle_seconds = 0;
  /// Capacity across the hull's uncovered gaps — stretches where *none* of
  /// the level's tasks ran and its workers were parked at a task-graph
  /// boundary (waiting on another level's decompose, the filter plan, or
  /// the delivery barrier): workers * (hull - union). Charging these waits
  /// to idle_seconds would blame the level that just ran out of work for
  /// time its neighbors own, skewing per-level utilization.
  double barrier_idle_seconds = 0;
};

/// Splits the capacity of `workers` lanes over the hull of `spans` into
/// intra-level idle and cross-boundary barrier idle. `busy_seconds` is the
/// work performed inside the spans (their summed lengths when they never
/// overlap per worker). IdleLength(Hull(spans), busy, workers) ==
/// idle_seconds + barrier_idle_seconds whenever busy <= workers * union.
IdleSplit SplitIdle(std::span<const TimeRange> spans, double busy_seconds,
                    int workers);

}  // namespace mce::obs

#endif  // MCE_OBS_SPAN_MATH_H_
