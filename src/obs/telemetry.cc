#include "obs/telemetry.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstring>

#include "util/logging.h"

namespace mce::obs {

namespace {

/// JSON-safe double: finite values print with enough digits to round-
/// trip a heartbeat through a parser; non-finite values (which raw
/// printf would render as unparsable "inf"/"nan") degrade to -1.
void AppendDouble(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "-1";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void AppendU64(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

}  // namespace

TelemetrySampler::TelemetrySampler(ProgressEstimator* progress,
                                   TelemetryOptions options)
    : progress_(progress), options_(std::move(options)) {}

TelemetrySampler::~TelemetrySampler() {
  Finish(false);
}

bool TelemetrySampler::Start() {
  if (thread_.joinable()) return true;
  if (!options_.out_path.empty()) {
    if (options_.out_path == "-") {
      out_ = stdout;
    } else {
      out_ = std::fopen(options_.out_path.c_str(), "w");
      if (out_ == nullptr) {
        MCE_LOG(WARNING) << "heartbeat disabled: cannot open '"
                         << options_.out_path
                         << "': " << std::strerror(errno);
        return false;
      }
      owns_out_ = true;
    }
  }
  if (out_ == nullptr && !options_.tty_progress) return false;
  thread_ = std::thread([this] { Loop(); });
  return true;
}

void TelemetrySampler::Finish(bool success) {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (finished_) return;
    finished_ = true;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // Only a successful run freezes the fraction at 1.0. Error and
  // exception exits (the destructor's Finish(false)) still terminate the
  // stream with a `final:true` record — so a consumer can always tell a
  // completed stream from a truncated one — but report the honest
  // partial fraction alongside `success:false`.
  if (success) progress_->MarkComplete();
  Emit(progress_->TakeSnapshot(), /*final_record=*/true, success);
  if (tty_dirty_) {
    std::fputc('\n', stderr);
    tty_dirty_ = false;
  }
  if (owns_out_) {
    std::fclose(out_);
    owns_out_ = false;
  } else if (out_ != nullptr) {
    std::fflush(out_);
  }
  out_ = nullptr;
}

void TelemetrySampler::Loop() {
  const auto interval =
      std::chrono::milliseconds(std::max(options_.interval_ms, 1));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_; })) break;
    lock.unlock();
    Emit(progress_->TakeSnapshot(), /*final_record=*/false,
         /*success=*/false);
    lock.lock();
  }
}

void TelemetrySampler::Emit(const ProgressSnapshot& s, bool final_record,
                            bool success) {
  if (out_ != nullptr) WriteRecord(s, final_record, success);
  if (options_.tty_progress) RenderTty(s);
}

void TelemetrySampler::WriteRecord(const ProgressSnapshot& s,
                                   bool final_record, bool success) {
  std::string line;
  line.reserve(512);
  line += "{\"seq\":";
  AppendU64(line, s.seq);
  line += ",\"ts_ms\":";
  AppendDouble(line, s.elapsed_seconds * 1e3);
  line += ",\"registered_cost\":";
  AppendDouble(line, s.registered_cost);
  line += ",\"completed_cost\":";
  AppendDouble(line, s.completed_cost);
  line += ",\"fraction\":";
  AppendDouble(line, s.fraction);
  line += ",\"throughput\":";
  AppendDouble(line, s.throughput);
  line += ",\"eta_s\":";
  AppendDouble(line, s.eta_seconds);
  line += ",\"cliques\":";
  AppendU64(line, s.cliques);
  line += ",\"blocks\":";
  AppendU64(line, s.blocks);
  line += ",\"blocks_done\":";
  AppendU64(line, s.blocks_done);
  line += ",\"levels_started\":";
  AppendU64(line, s.levels_started);
  line += ",\"levels_finished\":";
  AppendU64(line, s.levels_finished);
  line += ",\"levels\":[";
  for (size_t i = 0; i < s.levels.size(); ++i) {
    if (i > 0) line += ',';
    line += "{\"level\":";
    AppendU64(line, s.levels[i].level);
    line += ",\"blocks\":";
    AppendU64(line, s.levels[i].blocks);
    line += ",\"done\":";
    AppendU64(line, s.levels[i].blocks_done);
    line += '}';
  }
  line += "],\"queue_depth\":";
  AppendU64(line, s.gauges.queue_depth);
  line += ",\"mem_charged\":";
  AppendU64(line, s.gauges.mem_charged_bytes);
  line += ",\"mem_peak\":";
  AppendU64(line, s.gauges.mem_peak_bytes);
  line += ",\"spill_chunks\":";
  AppendU64(line, s.spill_chunks);
  line += ",\"spill_bytes\":";
  AppendU64(line, s.spill_bytes);
  if (final_record) {
    line += ",\"final\":true,\"success\":";
    line += success ? "true" : "false";
  }
  line += "}\n";
  std::fwrite(line.data(), 1, line.size(), out_);
  std::fflush(out_);
}

void TelemetrySampler::RenderTty(const ProgressSnapshot& s) {
  char buf[256];
  char eta[32];
  if (s.eta_seconds >= 0) {
    std::snprintf(eta, sizeof(eta), "%.0fs", s.eta_seconds);
  } else {
    std::snprintf(eta, sizeof(eta), "--");
  }
  const int n = std::snprintf(
      buf, sizeof(buf),
      "\r[%6.1fs] %5.1f%% | blocks %" PRIu64 "/%" PRIu64
      " | cliques %" PRIu64 " | queue %" PRIu64 " | mem %.1fMiB | eta %s",
      s.elapsed_seconds, s.fraction * 100.0, s.blocks_done, s.blocks,
      s.cliques, s.gauges.queue_depth,
      static_cast<double>(s.gauges.mem_charged_bytes) / (1024.0 * 1024.0),
      eta);
  if (n > 0) {
    std::fwrite(buf, 1, static_cast<size_t>(std::min<int>(
                            n, static_cast<int>(sizeof(buf) - 1))),
                stderr);
    std::fflush(stderr);
    tty_dirty_ = true;
  }
}

}  // namespace mce::obs
