#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <utility>

#include "util/check.h"
#include "util/thread_pool.h"

namespace mce::obs {

namespace {

std::atomic<uint64_t> g_next_generation{1};

/// Per-thread cache of the last (recorder, buffer) pairing, so recording
/// after the first event is a pointer comparison plus a vector push_back.
struct Slot {
  TraceRecorder* owner = nullptr;
  uint64_t generation = 0;
  void* buffer = nullptr;
};
thread_local Slot t_slot;

}  // namespace

std::atomic<TraceRecorder*> TraceRecorder::g_installed{nullptr};

const char* ToString(SpanKind kind) {
  switch (kind) {
    case SpanKind::kDecompose:
      return "DecomposeTask";
    case SpanKind::kBlock:
      return "BlockTask";
    case SpanKind::kFilter:
      return "FilterTask";
    case SpanKind::kFallback:
      return "FallbackTask";
    case SpanKind::kWorkerIdle:
      return "idle";
    case SpanKind::kSimBlock:
      return "SimBlockTask";
    case SpanKind::kBlockShard:
      return "BlockShardTask";
    case SpanKind::kReduce:
      return "ReduceTask";
    case SpanKind::kSpillFlush:
      return "SpillFlushTask";
    case SpanKind::kAdmission:
      return "AdmissionStall";
  }
  return "?";
}

bool SpanKindFromName(const std::string& name, SpanKind* kind) {
  static constexpr SpanKind kAll[] = {
      SpanKind::kDecompose, SpanKind::kBlock,      SpanKind::kFilter,
      SpanKind::kFallback,  SpanKind::kWorkerIdle, SpanKind::kSimBlock,
      SpanKind::kBlockShard, SpanKind::kReduce,    SpanKind::kSpillFlush,
      SpanKind::kAdmission};
  for (SpanKind k : kAll) {
    if (name == ToString(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceRecorder::TraceRecorder(size_t max_events_per_thread)
    : generation_(g_next_generation.fetch_add(1, std::memory_order_relaxed)),
      max_events_per_thread_(std::max<size_t>(1, max_events_per_thread)) {}

TraceRecorder::~TraceRecorder() {
  // Defensive: a recorder must not stay installed past its lifetime.
  TraceRecorder* self = this;
  g_installed.compare_exchange_strong(self, nullptr,
                                      std::memory_order_relaxed);
}

void TraceRecorder::Install(TraceRecorder* recorder) {
  g_installed.store(recorder, std::memory_order_relaxed);
}

TraceRecorder::Buffer* TraceRecorder::RegisterThisThread() {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Buffer>& slot = buffers_[std::this_thread::get_id()];
  if (slot == nullptr) {
    slot = std::make_unique<Buffer>();
    slot->tid = static_cast<int>(buffers_.size()) - 1;
    slot->capacity = max_events_per_thread_;
    const size_t worker = ThreadPool::CurrentWorkerIndex();
    slot->name = worker != ThreadPool::kNotAWorker
                     ? "pool worker " + std::to_string(worker)
                     : "caller thread " + std::to_string(slot->tid);
    slot->events.reserve(std::min<size_t>(4096, slot->capacity));
  }
  return slot.get();
}

void TraceRecorder::Record(const TraceEvent& event) {
  Buffer* buffer;
  if (t_slot.owner == this && t_slot.generation == generation_) {
    buffer = static_cast<Buffer*>(t_slot.buffer);
  } else {
    buffer = RegisterThisThread();
    t_slot = Slot{this, generation_, buffer};
  }
  if (buffer->events.size() >= buffer->capacity) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer->events.push_back(event);
}

void TraceRecorder::SetCurrentThreadName(const std::string& name) {
  Buffer* buffer;
  if (t_slot.owner == this && t_slot.generation == generation_) {
    buffer = static_cast<Buffer*>(t_slot.buffer);
  } else {
    buffer = RegisterThisThread();
    t_slot = Slot{this, generation_, buffer};
  }
  buffer->name = name;
}

std::vector<TraceRecorder::ThreadTrack> TraceRecorder::Tracks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ThreadTrack> tracks;
  tracks.reserve(buffers_.size());
  for (const auto& [id, buffer] : buffers_) {
    (void)id;
    tracks.push_back(ThreadTrack{buffer->tid, buffer->name, buffer->events});
  }
  std::sort(tracks.begin(), tracks.end(),
            [](const ThreadTrack& a, const ThreadTrack& b) {
              return a.tid < b.tid;
            });
  return tracks;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> out;
  for (const ThreadTrack& track : Tracks()) {
    out.insert(out.end(), track.events.begin(), track.events.end());
  }
  return out;
}

namespace {

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<size_t>(static_cast<size_t>(n),
                                              sizeof(buf) - 1));
}

/// Kind-specific argument object for a "B" event.
void AppendArgs(std::string& out, const TraceEvent& e) {
  using ull = unsigned long long;
  switch (e.kind) {
    case SpanKind::kDecompose:
      AppendF(out,
              ",\"args\":{\"level\":%u,\"nodes\":%llu,\"edges\":%llu,"
              "\"feasible\":%llu,\"hubs\":%llu}",
              e.level, static_cast<ull>(e.args[0]),
              static_cast<ull>(e.args[1]), static_cast<ull>(e.args[2]),
              static_cast<ull>(e.args[3]));
      break;
    case SpanKind::kBlock:
      AppendF(out,
              ",\"args\":{\"level\":%u,\"block\":%llu,\"kernel\":%llu,"
              "\"border\":%llu,\"visited\":%llu,\"cliques\":%llu",
              e.level, static_cast<ull>(e.index), static_cast<ull>(e.args[0]),
              static_cast<ull>(e.args[1]), static_cast<ull>(e.args[2]),
              static_cast<ull>(e.args[3]));
      if (e.algorithm != TraceEvent::kNoCombo) {
        AppendF(out, ",\"algorithm\":%u,\"storage\":%u",
                static_cast<unsigned>(e.algorithm),
                static_cast<unsigned>(e.storage));
      }
      if (e.cost > 0) AppendF(out, ",\"cost\":%.6g", e.cost);
      out += "}";
      break;
    case SpanKind::kFilter:
      AppendF(out,
              ",\"args\":{\"level\":%u,\"chunk\":%llu,\"checked\":%llu,"
              "\"kept\":%llu}",
              e.level, static_cast<ull>(e.index), static_cast<ull>(e.args[0]),
              static_cast<ull>(e.args[1]));
      break;
    case SpanKind::kFallback:
      AppendF(out,
              ",\"args\":{\"level\":%u,\"nodes\":%llu,\"edges\":%llu,"
              "\"cliques\":%llu}",
              e.level, static_cast<ull>(e.args[0]),
              static_cast<ull>(e.args[1]), static_cast<ull>(e.args[2]));
      break;
    case SpanKind::kWorkerIdle:
      AppendF(out, ",\"args\":{\"worker\":%llu}", static_cast<ull>(e.index));
      break;
    case SpanKind::kSimBlock:
      AppendF(out,
              ",\"args\":{\"level\":%u,\"block\":%llu,\"worker\":%llu,"
              "\"lane\":%llu,\"cliques\":%llu}",
              e.level, static_cast<ull>(e.index), static_cast<ull>(e.args[0]),
              static_cast<ull>(e.args[1]), static_cast<ull>(e.args[2]));
      break;
    case SpanKind::kBlockShard:
      AppendF(out,
              ",\"args\":{\"level\":%u,\"block\":%llu,\"kernel_begin\":%llu,"
              "\"kernel_end\":%llu,\"cliques\":%llu,\"shards\":%llu",
              e.level, static_cast<ull>(e.index), static_cast<ull>(e.args[0]),
              static_cast<ull>(e.args[1]), static_cast<ull>(e.args[2]),
              static_cast<ull>(e.args[3]));
      if (e.algorithm != TraceEvent::kNoCombo) {
        AppendF(out, ",\"algorithm\":%u,\"storage\":%u",
                static_cast<unsigned>(e.algorithm),
                static_cast<unsigned>(e.storage));
      }
      if (e.cost > 0) AppendF(out, ",\"cost\":%.6g", e.cost);
      out += "}";
      break;
    case SpanKind::kReduce:
      AppendF(out,
              ",\"args\":{\"vertices_removed\":%llu,\"edges_removed\":%llu,"
              "\"trivial_cliques\":%llu,\"rounds\":%llu}",
              static_cast<ull>(e.args[0]), static_cast<ull>(e.args[1]),
              static_cast<ull>(e.args[2]), static_cast<ull>(e.args[3]));
      break;
    case SpanKind::kSpillFlush:
      AppendF(out,
              ",\"args\":{\"level\":%u,\"chunk\":%llu,\"cliques\":%llu,"
              "\"bytes\":%llu,\"level_resident_after\":%llu,"
              "\"file_bytes\":%llu}",
              e.level, static_cast<ull>(e.index), static_cast<ull>(e.args[0]),
              static_cast<ull>(e.args[1]), static_cast<ull>(e.args[2]),
              static_cast<ull>(e.args[3]));
      break;
    case SpanKind::kAdmission:
      AppendF(out,
              ",\"args\":{\"level\":%u,\"requested_bytes\":%llu,"
              "\"charged_bytes\":%llu,\"budget_bytes\":%llu}",
              e.level, static_cast<ull>(e.args[0]),
              static_cast<ull>(e.args[1]), static_cast<ull>(e.args[2]));
      break;
  }
}

/// JSON string-escapes `value` into `out`. Control characters and every
/// byte >= 0x7F become \u00XX (per byte, Latin-1 style) so the emitted
/// trace is pure ASCII and valid JSON whatever bytes a thread name holds.
void AppendEscaped(std::string& out, const std::string& value) {
  for (const char c : value) {
    const unsigned char byte = static_cast<unsigned char>(c);
    if (c == '"') {
      out += "\\\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (byte < 0x20 || byte >= 0x7f) {
      AppendF(out, "\\u%04x", byte);
    } else {
      out += c;
    }
  }
}

void AppendMetadata(std::string& out, int pid, int tid, const char* key,
                    const std::string& value, bool& first) {
  if (!first) out += ",\n";
  first = false;
  AppendF(out,
          "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"ts\":0,"
          "\"args\":{\"name\":\"",
          key, pid, tid);
  AppendEscaped(out, value);
  out += "\"}}";
}

}  // namespace

std::string TraceRecorder::ToChromeTraceJson() const {
  const std::vector<ThreadTrack> tracks = Tracks();

  // Group events into display lanes: a recording thread's track is
  // (pid 0, its tid); synthetic lane events override with
  // (lane_pid, lane_tid).
  std::map<std::pair<int, int>, std::vector<TraceEvent>> lanes;
  std::map<std::pair<int, int>, std::string> lane_names;
  int64_t min_ts = INT64_MAX;
  for (const ThreadTrack& track : tracks) {
    lane_names[{0, track.tid}] = track.name;
    for (const TraceEvent& e : track.events) {
      const std::pair<int, int> key =
          e.lane_tid >= 0 ? std::pair<int, int>{e.lane_pid, e.lane_tid}
                          : std::pair<int, int>{0, track.tid};
      lanes[key].push_back(e);
      min_ts = std::min(min_ts, e.begin_us);
    }
  }
  if (min_ts == INT64_MAX) min_ts = 0;
  for (const auto& [key, events] : lanes) {
    if (key.first == 0 && lane_names.count(key)) continue;
    // Synthetic lanes are named from their first event's worker/lane args.
    lane_names[key] = "worker " + std::to_string(events.front().args[0]) +
                      " lane " + std::to_string(events.front().args[1]);
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  AppendMetadata(out, 0, 0, "process_name", "mce", first);
  bool any_sim = false;
  for (const auto& [key, events] : lanes) {
    (void)events;
    if (key.first != 0) any_sim = true;
  }
  if (any_sim) AppendMetadata(out, 1, 0, "process_name", "mce cluster sim",
                              first);
  for (const auto& [key, name] : lane_names) {
    if (key.first == 0 && !lanes.count(key)) continue;  // silent thread
    AppendMetadata(out, key.first, key.second, "thread_name", name, first);
  }

  for (auto& [key, events] : lanes) {
    const int pid = key.first;
    const int tid = key.second;
    // Same-thread spans nest or are disjoint; sort outer-first and emit
    // balanced B/E pairs with a nesting stack so per-lane timestamps are
    // monotonic.
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                if (a.begin_us != b.begin_us) return a.begin_us < b.begin_us;
                return a.end_us > b.end_us;
              });
    std::vector<TraceEvent> stack;
    auto emit_end = [&](const TraceEvent& e) {
      AppendF(out,
              ",\n{\"name\":\"%s\",\"cat\":\"mce\",\"ph\":\"E\",\"pid\":%d,"
              "\"tid\":%d,\"ts\":%lld",
              ToString(e.kind), pid, tid,
              static_cast<long long>(e.end_us - min_ts));
      // Counter deltas ride on the E event (Perfetto merges B and E args
      // into one slice) so the B args stay byte-identical with profiling
      // off.
      if (e.prof.source != CounterSource::kNone) {
        using ull = unsigned long long;
        AppendF(out,
                ",\"args\":{\"cycles\":%llu,\"instructions\":%llu,"
                "\"cache_misses\":%llu,\"branch_misses\":%llu,"
                "\"task_clock_ns\":%llu,\"prof\":\"%s\"}",
                static_cast<ull>(e.prof.cycles),
                static_cast<ull>(e.prof.instructions),
                static_cast<ull>(e.prof.cache_misses),
                static_cast<ull>(e.prof.branch_misses),
                static_cast<ull>(e.prof.task_clock_ns),
                e.prof.source == CounterSource::kHardware ? "hw" : "sw");
      }
      out += "}";
    };
    for (TraceEvent e : events) {
      while (!stack.empty() && stack.back().end_us <= e.begin_us) {
        emit_end(stack.back());
        stack.pop_back();
      }
      if (!stack.empty()) {
        // Clamp a child to its enclosing span so B/E stay balanced even if
        // clock jitter produced a partial overlap.
        e.end_us = std::max(e.begin_us,
                            std::min(e.end_us, stack.back().end_us));
      }
      AppendF(out,
              ",\n{\"name\":\"%s\",\"cat\":\"mce\",\"ph\":\"B\",\"pid\":%d,"
              "\"tid\":%d,\"ts\":%lld",
              ToString(e.kind), pid, tid,
              static_cast<long long>(e.begin_us - min_ts));
      AppendArgs(out, e);
      out += "}";
      stack.push_back(e);
    }
    while (!stack.empty()) {
      emit_end(stack.back());
      stack.pop_back();
    }
  }
  AppendF(out, "\n],\"otherData\":{\"dropped_events\":%llu}}\n",
          static_cast<unsigned long long>(dropped_events()));
  return out;
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  const std::string json = ToChromeTraceJson();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace output " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::IoError("short write to trace output " + path);
  }
  return Status::OK();
}

}  // namespace mce::obs
