// MetricsRegistry — counters and fixed-bucket histograms for the pipeline.
//
// The registry complements the span tracer (obs/trace.h): spans answer
// "where did the time go", the metrics answer "what did the workload look
// like" — block density and size distributions, per-block ns/clique, queue
// depth at dispatch, clique counts. The same ≈0-cost-when-off discipline
// applies: every event site guards with one relaxed atomic load,
//
//   if (obs::MetricsRegistry* m = obs::MetricsRegistry::installed()) ...
//
// and instrument handles obtained once (GetCounter/GetHistogram take a
// mutex) are updated lock-free with relaxed atomics afterwards. Handles
// are stable for the registry's lifetime.
//
// Dumps are stable: instruments sorted by name, fixed formatting — so a
// metrics file diff across runs shows workload changes, not map-order
// noise.

#ifndef MCE_OBS_METRICS_H_
#define MCE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mce::obs {

/// Monotonically increasing integer. Thread-safe, lock-free.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], the
/// implicit last bucket counts the rest. Thread-safe, lock-free; `sum` is
/// accumulated with a relaxed atomic<double> fetch_add.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Cumulative-free per-bucket counts, bounds_.size() + 1 entries (the
  /// last is the overflow bucket).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;  // ascending
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// `count` ascending upper bounds starting at `start`, each `factor` times
/// the previous (start > 0, factor > 1).
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);
/// `count` ascending upper bounds start, start+width, ...
std::vector<double> LinearBuckets(double start, double width, size_t count);

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Installs `registry` as the process-wide metrics sink (nullptr
  /// uninstalls). Uninstall before destroying.
  static void Install(MetricsRegistry* registry);

  /// The installed registry, or nullptr. One relaxed atomic load.
  static MetricsRegistry* installed() {
    return g_installed.load(std::memory_order_relaxed);
  }

  /// Finds or creates the named instrument. The returned reference is
  /// stable for the registry's lifetime. For an existing histogram the
  /// original bounds win — a caller passing a different bucket layout
  /// gets the existing instrument back and a warning is logged once per
  /// name (observability must never abort the run it is observing).
  /// `upper_bounds` must be non-empty and ascending on first
  /// registration.
  Counter& GetCounter(std::string_view name);
  Histogram& GetHistogram(std::string_view name,
                          std::span<const double> upper_bounds);

  /// `name value` lines, sorted by name; histograms expand to
  /// `name_bucket{le=...}`, `name_count`, and `name_sum` lines.
  std::string ToText() const;
  /// One stable JSON object: {"counters": {...}, "histograms": {...}}.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;
  Status WriteText(const std::string& path) const;

 private:
  static std::atomic<MetricsRegistry*> g_installed;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  /// Names whose bucket-layout mismatch has already been warned about
  /// (guarded by mu_; one warning per name, not per lookup).
  std::set<std::string, std::less<>> bounds_warned_;
};

}  // namespace mce::obs

#endif  // MCE_OBS_METRICS_H_
