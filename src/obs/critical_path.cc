#include "obs/critical_path.h"

#include <algorithm>
#include <set>
#include <utility>

#include "obs/span_math.h"

namespace mce::obs {

namespace {

double Micros(int64_t us) { return static_cast<double>(us) * 1e-6; }

/// Dependency candidates of `cur` under the engine's DAG shape. Returns
/// indices into `spans`; empty = `cur` is a root.
std::vector<size_t> Dependencies(const TaskSpan& cur,
                                 std::span<const TaskSpan> spans) {
  std::vector<size_t> deps;
  auto collect = [&](auto&& pred) {
    for (size_t i = 0; i < spans.size(); ++i) {
      if (pred(spans[i])) deps.push_back(i);
    }
  };
  switch (cur.kind) {
    case SpanKind::kReduce:
      break;  // the prepass is the run's root
    case SpanKind::kDecompose:
      if (cur.level == 0) {
        collect([](const TaskSpan& s) { return s.kind == SpanKind::kReduce; });
      } else {
        collect([&](const TaskSpan& s) {
          return s.kind == SpanKind::kDecompose && s.level == cur.level - 1;
        });
      }
      break;
    case SpanKind::kBlock:
    case SpanKind::kBlockShard:
    case SpanKind::kFallback:
      collect([&](const TaskSpan& s) {
        return s.kind == SpanKind::kDecompose && s.level == cur.level;
      });
      break;
    case SpanKind::kFilter:
      collect([&](const TaskSpan& s) {
        return (s.kind == SpanKind::kBlock ||
                s.kind == SpanKind::kBlockShard ||
                s.kind == SpanKind::kFallback) &&
               s.level == cur.level;
      });
      if (deps.empty()) {
        // A level can produce zero blocks (everything fell to deeper
        // levels); the filter then hangs off the decompose directly.
        collect([&](const TaskSpan& s) {
          return s.kind == SpanKind::kDecompose && s.level == cur.level;
        });
      }
      break;
    default:
      break;  // non-DAG kinds never appear here
  }
  return deps;
}

}  // namespace

bool IsDagTask(SpanKind kind) {
  switch (kind) {
    case SpanKind::kDecompose:
    case SpanKind::kBlock:
    case SpanKind::kBlockShard:
    case SpanKind::kFilter:
    case SpanKind::kFallback:
    case SpanKind::kReduce:
      return true;
    default:
      return false;
  }
}

std::vector<TaskSpan> TaskSpansFromEvents(
    std::span<const TraceEvent> events) {
  std::vector<TaskSpan> out;
  // Recording-thread lanes are not identifiable from a flat event list,
  // and the DAG math never distinguishes them; bucket synthetic lanes
  // faithfully and leave the rest on lane (0, 0).
  for (const TraceEvent& e : events) {
    if (!IsDagTask(e.kind)) continue;
    TaskSpan s;
    s.kind = e.kind;
    s.level = e.level;
    s.index = e.index;
    s.begin_us = e.begin_us;
    s.end_us = e.end_us;
    s.lane_pid = e.lane_tid >= 0 ? e.lane_pid : 0;
    s.lane_tid = e.lane_tid >= 0 ? e.lane_tid : 0;
    s.cost = e.cost;
    s.prof = e.prof;
    switch (e.kind) {
      case SpanKind::kBlock:
        s.cliques = e.args[3];
        break;
      case SpanKind::kBlockShard:
      case SpanKind::kFallback:
      case SpanKind::kReduce:
        s.cliques = e.args[2];
        break;
      default:
        break;
    }
    out.push_back(s);
  }
  return out;
}

CriticalPathResult ComputeCriticalPath(std::span<const TaskSpan> spans) {
  CriticalPathResult result;
  size_t sink = spans.size();
  int64_t min_begin = 0, max_end = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (!IsDagTask(spans[i].kind)) continue;
    if (sink == spans.size()) {
      min_begin = spans[i].begin_us;
      max_end = spans[i].end_us;
      sink = i;
    } else {
      min_begin = std::min(min_begin, spans[i].begin_us);
      if (spans[i].end_us > max_end) {
        max_end = spans[i].end_us;
        sink = i;
      }
    }
  }
  if (sink == spans.size()) return result;  // no DAG tasks at all
  result.wall_seconds = Micros(max_end - min_begin);

  // Walk backwards from the sink. `frontier` is the earliest instant the
  // chain has explained so far; each predecessor contributes the part of
  // its span before the frontier (exclusive attribution — overlapping
  // pipeline stages are not double-counted) plus any scheduling gap
  // between its end and the frontier.
  std::vector<CriticalPathEntry> reverse_path;
  size_t cur = sink;
  int64_t frontier = spans[sink].begin_us;
  reverse_path.push_back(
      CriticalPathEntry{sink, spans[sink].Seconds(), 0.0});
  // Level strictly decreases along decompose edges and every other edge
  // moves toward the decompose chain, so the walk terminates; the visited
  // set is a guard against malformed (cyclic-looking) inputs.
  std::set<size_t> visited{sink};
  while (true) {
    const std::vector<size_t> deps = Dependencies(spans[cur], spans);
    size_t best = spans.size();
    for (size_t d : deps) {
      if (visited.count(d)) continue;
      if (best == spans.size() || spans[d].end_us > spans[best].end_us) {
        best = d;
      }
    }
    if (best == spans.size()) break;  // root reached
    const TaskSpan& pred = spans[best];
    const double gap =
        pred.end_us < frontier ? Micros(frontier - pred.end_us) : 0.0;
    const int64_t clipped_end = std::min(pred.end_us, frontier);
    const double contribution =
        clipped_end > pred.begin_us ? Micros(clipped_end - pred.begin_us)
                                    : 0.0;
    reverse_path.back().wait_seconds = gap;
    reverse_path.push_back(CriticalPathEntry{best, contribution, 0.0});
    frontier = std::min(frontier, pred.begin_us);
    visited.insert(best);
    cur = best;
  }

  result.path.assign(reverse_path.rbegin(), reverse_path.rend());
  for (const CriticalPathEntry& entry : result.path) {
    result.span_seconds += entry.seconds;
    result.wait_seconds += entry.wait_seconds;
  }
  result.coverage =
      result.wall_seconds > 0
          ? (result.span_seconds + result.wait_seconds) / result.wall_seconds
          : 0.0;
  return result;
}

std::vector<Straggler> RankStragglersBySeconds(
    std::span<const TaskSpan> spans, size_t k) {
  std::vector<Straggler> all;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (!IsDagTask(spans[i].kind)) continue;
    all.push_back(Straggler{i, spans[i].Seconds(), spans[i].cost, 0.0});
  }
  std::sort(all.begin(), all.end(), [](const Straggler& a,
                                       const Straggler& b) {
    if (a.seconds != b.seconds) return a.seconds > b.seconds;
    return a.span < b.span;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<Straggler> RankStragglersByDeviation(
    std::span<const TaskSpan> spans, size_t k) {
  double total_seconds = 0, total_cost = 0;
  for (const TaskSpan& s : spans) {
    if (s.cost <= 0) continue;
    total_seconds += s.Seconds();
    total_cost += s.cost;
  }
  if (total_cost <= 0 || total_seconds <= 0) return {};
  const double alpha = total_seconds / total_cost;  // seconds per cost unit

  std::vector<Straggler> all;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].cost <= 0) continue;
    Straggler s;
    s.span = i;
    s.seconds = spans[i].Seconds();
    s.predicted_cost = spans[i].cost;
    s.deviation = s.seconds / (alpha * s.predicted_cost);
    all.push_back(s);
  }
  std::sort(all.begin(), all.end(), [](const Straggler& a,
                                       const Straggler& b) {
    if (a.deviation != b.deviation) return a.deviation > b.deviation;
    return a.span < b.span;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<LevelIdle> AttributeIdle(std::span<const TaskSpan> spans) {
  std::set<std::pair<int, int>> lanes;
  uint32_t max_level = 0;
  bool any = false;
  for (const TaskSpan& s : spans) {
    if (!IsDagTask(s.kind)) continue;
    lanes.insert({s.lane_pid, s.lane_tid});
    if (s.kind != SpanKind::kReduce) {
      max_level = std::max(max_level, s.level);
      any = true;
    }
  }
  if (!any) return {};
  const int workers = static_cast<int>(lanes.size());

  std::vector<LevelIdle> out;
  for (uint32_t level = 0; level <= max_level; ++level) {
    std::vector<TimeRange> ranges;
    double busy = 0;
    for (const TaskSpan& s : spans) {
      const bool analysis = s.kind == SpanKind::kBlock ||
                            s.kind == SpanKind::kBlockShard ||
                            s.kind == SpanKind::kFallback ||
                            s.kind == SpanKind::kFilter;
      if (!analysis || s.level != level) continue;
      ranges.push_back(TimeRange{Micros(s.begin_us), Micros(s.end_us)});
      busy += s.Seconds();
    }
    LevelIdle li;
    li.level = level;
    li.workers = workers;
    li.busy_seconds = busy;
    const IdleSplit split = SplitIdle(ranges, busy, workers);
    li.idle_seconds = split.idle_seconds;
    li.barrier_idle_seconds = split.barrier_idle_seconds;
    out.push_back(li);
  }
  return out;
}

}  // namespace mce::obs
