// Maximal k-plex enumeration — the relaxed community model the paper's
// conclusions name as future work ("k-cliques, k-clubs, k-clans, and
// k-plexes" [5, 26]).
//
// A k-plex is a vertex set S where every member has at least |S| - k
// neighbors inside S (so a 1-plex is a clique; each member of a k-plex
// misses at most k - 1 others). k-plexes are hereditary (every subset of a
// k-plex is a k-plex), which this enumerator exploits: depth-first growth
// in increasing vertex order visits every k-plex exactly once, reporting
// those with no addable vertex (the maximal ones).
//
// The enumeration is exact and intended for block-sized inputs: its cost
// is proportional to the number of k-plexes, which grows quickly with k.

#ifndef MCE_MCE_KPLEX_H_
#define MCE_MCE_KPLEX_H_

#include <cstdint>

#include "graph/graph.h"
#include "mce/clique.h"

namespace mce {

struct KPlexOptions {
  /// Relaxation degree; 1 reduces to maximal clique enumeration.
  uint32_t k = 2;
  /// Maximal k-plexes smaller than this are not reported (k-plexes of
  /// size < 2k - 1 may be disconnected and are rarely meaningful
  /// communities).
  uint32_t min_size = 1;
};

/// True iff the (distinct) `nodes` form a k-plex of `g`.
bool IsKPlex(const Graph& g, std::span<const NodeId> nodes, uint32_t k);

/// True iff `nodes` is a k-plex and no vertex of g can be added while
/// keeping the k-plex property.
bool IsMaximalKPlex(const Graph& g, std::span<const NodeId> nodes,
                    uint32_t k);

/// Emits every maximal k-plex of `g` (with >= options.min_size members)
/// exactly once. options.k must be >= 1.
void EnumerateMaximalKPlexes(const Graph& g, const KPlexOptions& options,
                             const CliqueCallback& emit);

/// Convenience wrapper collecting into a canonicalized CliqueSet.
CliqueSet EnumerateMaximalKPlexesToSet(const Graph& g,
                                       const KPlexOptions& options);

}  // namespace mce

#endif  // MCE_MCE_KPLEX_H_
