#include "mce/clique_sink.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/check.h"
#include "util/logging.h"

namespace mce {

namespace {

/// Serialized chunk layout: [num_cliques u64][num_ids u64]
/// [ends u64 × num_cliques, relative to the chunk][ids u32 × num_ids].
uint64_t ChunkBytes(uint64_t num_cliques, uint64_t num_ids) {
  return 2 * sizeof(uint64_t) + num_cliques * sizeof(uint64_t) +
         num_ids * sizeof(NodeId);
}

bool PwriteAll(int fd, const void* data, size_t len, uint64_t offset) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::pwrite(fd, p, len, static_cast<off_t>(offset));
    if (n <= 0) return false;
    p += n;
    offset += static_cast<uint64_t>(n);
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool PreadAll(int fd, void* data, size_t len, uint64_t offset) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t n = ::pread(fd, p, len, static_cast<off_t>(offset));
    if (n <= 0) return false;
    p += n;
    offset += static_cast<uint64_t>(n);
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

SpillingCliqueSink::~SpillingCliqueSink() {
  if (accounted_ > 0) {
    ctx_->resident_bytes.fetch_sub(accounted_, std::memory_order_relaxed);
    if (ctx_->config->budget != nullptr) {
      ctx_->config->budget->Release(accounted_);
    }
  }
  if (fd_ >= 0) ::close(fd_);
}

void SpillingCliqueSink::Account() {
  const SpillConfig& config = *ctx_->config;
  const uint64_t now = buffer_.ByteSize();
  MCE_DCHECK(now >= accounted_);
  const uint64_t delta = now - accounted_;
  accounted_ = now;
  const uint64_t level_total =
      ctx_->resident_bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (config.budget != nullptr) config.budget->Charge(delta);
  if (config.metrics.bytes_charged != nullptr && delta > 0) {
    config.metrics.bytes_charged->Add(delta);
  }
  const uint64_t min_chunk =
      std::min(config.threshold_bytes, kMinSpillChunkBytes);
  if (config.threshold_bytes > 0 && level_total > config.threshold_bytes &&
      now >= min_chunk && buffer_.size() > 0 && !spill_failed_) {
    Flush();
  }
}

bool SpillingCliqueSink::EnsureFile() {
  if (fd_ >= 0) return true;
  std::string dir = ctx_->config->dir;
  if (dir.empty()) {
    const char* tmpdir = std::getenv("TMPDIR");
    dir = (tmpdir != nullptr && *tmpdir != '\0') ? tmpdir : "/tmp";
  }
  std::string path = dir + "/mce-spill-XXXXXX";
  fd_ = ::mkstemp(path.data());
  if (fd_ < 0) {
    MCE_LOG(WARNING) << "spill disabled: cannot create temp file in '" << dir
                     << "': " << std::strerror(errno);
    return false;
  }
  // Unlink immediately: the chunks are reachable only through fd_ and the
  // kernel reclaims the space when the sink dies, however it dies.
  ::unlink(path.c_str());
  return true;
}

void SpillingCliqueSink::Flush() {
  if (!EnsureFile()) {
    spill_failed_ = true;
    return;
  }
  const SpillConfig& config = *ctx_->config;
  const int64_t begin_us = config.trace != nullptr ? obs::NowMicros() : 0;
  const uint64_t num_cliques = buffer_.size();
  const uint64_t num_ids = buffer_.ids().size();
  const uint64_t bytes = ChunkBytes(num_cliques, num_ids);
  const uint64_t header[2] = {num_cliques, num_ids};
  uint64_t at = file_end_;
  bool ok = PwriteAll(fd_, header, sizeof(header), at);
  at += sizeof(header);
  ok = ok && PwriteAll(fd_, buffer_.ends().data(),
                       num_cliques * sizeof(uint64_t), at);
  at += num_cliques * sizeof(uint64_t);
  ok = ok &&
       PwriteAll(fd_, buffer_.ids().data(), num_ids * sizeof(NodeId), at);
  if (!ok) {
    MCE_LOG(WARNING) << "spill disabled: write failure, keeping cliques "
                        "resident";
    spill_failed_ = true;
    return;
  }
  chunks_.push_back(Chunk{file_end_, num_cliques, num_ids});
  file_end_ += bytes;
  spilled_cliques_ += num_cliques;
  spilled_bytes_ += bytes;
  // The buffer's bytes moved to disk: release the accounting and drop the
  // arena's capacity so the tracked number stays honest.
  ctx_->resident_bytes.fetch_sub(accounted_, std::memory_order_relaxed);
  if (config.budget != nullptr) config.budget->Release(accounted_);
  accounted_ = 0;
  buffer_ = FlatCliques();
  if (config.metrics.spill_chunks != nullptr) {
    config.metrics.spill_chunks->Increment();
    config.metrics.spill_bytes->Add(bytes);
    config.metrics.spill_chunk_bytes->Observe(static_cast<double>(bytes));
  }
  if (config.progress != nullptr) config.progress->AddSpillChunk(bytes);
  if (config.trace != nullptr) {
    obs::TraceEvent e;
    e.begin_us = begin_us;
    e.end_us = obs::NowMicros();
    e.kind = obs::SpanKind::kSpillFlush;
    e.level = ctx_->level;
    e.index = chunks_.size() - 1;
    e.args[0] = num_cliques;
    e.args[1] = bytes;
    e.args[2] = ctx_->resident_bytes.load(std::memory_order_relaxed);
    e.args[3] = file_end_;
    config.trace->Record(e);
  }
}

void SpillingCliqueSink::ForRange(size_t begin, size_t end,
                                  const CliqueCallback& fn) const {
  MCE_DCHECK_LE(begin, end);
  MCE_DCHECK_LE(end, size());
  size_t done = 0;  // cliques covered by chunks walked so far
  // Per-call buffers: concurrent readers (the filter's chunk tasks) must
  // not share mutable scratch, and only one spilled chunk is resident per
  // reader at a time.
  std::vector<uint64_t> ends;
  std::vector<NodeId> ids;
  for (const Chunk& chunk : chunks_) {
    const size_t chunk_begin = done;
    done += chunk.num_cliques;
    if (begin >= done || end <= chunk_begin) continue;
    ends.resize(chunk.num_cliques);
    ids.resize(chunk.num_ids);
    uint64_t at = chunk.file_offset + 2 * sizeof(uint64_t);
    MCE_CHECK(PreadAll(fd_, ends.data(), chunk.num_cliques * sizeof(uint64_t),
                       at));
    at += chunk.num_cliques * sizeof(uint64_t);
    MCE_CHECK(PreadAll(fd_, ids.data(), chunk.num_ids * sizeof(NodeId), at));
    const size_t lo = begin > chunk_begin ? begin - chunk_begin : 0;
    const size_t hi = std::min(end - chunk_begin, chunk.num_cliques);
    for (size_t i = lo; i < hi; ++i) {
      const uint64_t id_begin = i == 0 ? 0 : ends[i - 1];
      fn({ids.data() + id_begin, ends[i] - id_begin});
    }
  }
  // The resident tail covers [spilled_cliques_, size()).
  const size_t lo = begin > spilled_cliques_ ? begin - spilled_cliques_ : 0;
  const size_t hi = end > spilled_cliques_ ? end - spilled_cliques_ : 0;
  for (size_t i = lo; i < hi; ++i) fn(buffer_[i]);
}

std::unique_ptr<CliqueSink> MakeCliqueSink(SpillContext* ctx) {
  if (ctx == nullptr || ctx->config == nullptr ||
      (ctx->config->threshold_bytes == 0 && ctx->config->budget == nullptr)) {
    return std::make_unique<ResidentCliqueSink>();
  }
  return std::make_unique<SpillingCliqueSink>(ctx);
}

}  // namespace mce
