#include "mce/naive.h"

#include <vector>

namespace mce {

namespace {

void Extend(const Graph& g, std::vector<NodeId>* r, std::vector<NodeId> p,
            std::vector<NodeId> x, const CliqueCallback& emit) {
  if (p.empty() && x.empty()) {
    emit(*r);
    return;
  }
  while (!p.empty()) {
    NodeId v = p.back();
    p.pop_back();
    std::vector<NodeId> p2, x2;
    for (NodeId u : p) {
      if (g.HasEdge(u, v)) p2.push_back(u);
    }
    for (NodeId u : x) {
      if (g.HasEdge(u, v)) x2.push_back(u);
    }
    r->push_back(v);
    Extend(g, r, std::move(p2), std::move(x2), emit);
    r->pop_back();
    x.push_back(v);
  }
}

}  // namespace

void NaiveMce(const Graph& g, const CliqueCallback& emit) {
  // Like the optimized enumerators, never report the empty clique (the
  // unique maximal clique of the empty graph).
  if (g.num_nodes() == 0) return;
  std::vector<NodeId> p;
  p.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) p.push_back(v);
  std::vector<NodeId> r;
  Extend(g, &r, std::move(p), {}, emit);
}

CliqueSet NaiveMceSet(const Graph& g) {
  CliqueSet out;
  NaiveMce(g, out.Collector());
  out.Canonicalize();
  return out;
}

}  // namespace mce
