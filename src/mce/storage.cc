#include "mce/storage.h"

#include <algorithm>

namespace mce {

const char* ToString(Algorithm a) {
  switch (a) {
    case Algorithm::kBKPivot:
      return "BKPivot";
    case Algorithm::kTomita:
      return "Tomita";
    case Algorithm::kEppstein:
      return "Eppstein";
    case Algorithm::kXPivot:
      return "XPivot";
    case Algorithm::kNaive:
      return "Naive";
  }
  return "?";
}

const char* ToString(StorageKind s) {
  switch (s) {
    case StorageKind::kAdjacencyList:
      return "Lists";
    case StorageKind::kMatrix:
      return "Matrix";
    case StorageKind::kBitset:
      return "BitSets";
  }
  return "?";
}

std::string ComboName(StorageKind s, Algorithm a) {
  return std::string(ToString(s)) + "/" + ToString(a);
}

uint64_t EstimateStorageBytes(uint64_t n, uint64_t m, StorageKind storage) {
  switch (storage) {
    case StorageKind::kAdjacencyList:
      return 2 * m * sizeof(NodeId) + (n + 1) * sizeof(uint64_t);
    case StorageKind::kMatrix:
      return n * n;
    case StorageKind::kBitset:
      return n * ((n + 63) / 64) * 8;
  }
  return 0;
}

void ListStorage::IntersectNeighbors(NodeId v, const std::vector<NodeId>& set,
                                     std::vector<NodeId>* out) const {
  out->clear();
  auto nbrs = g_->Neighbors(v);
  std::set_intersection(set.begin(), set.end(), nbrs.begin(), nbrs.end(),
                        std::back_inserter(*out));
}

size_t ListStorage::CountNeighborsIn(NodeId v,
                                     const std::vector<NodeId>& set) const {
  auto nbrs = g_->Neighbors(v);
  size_t count = 0;
  auto it = set.begin();
  auto jt = nbrs.begin();
  while (it != set.end() && jt != nbrs.end()) {
    if (*it < *jt) {
      ++it;
    } else if (*jt < *it) {
      ++jt;
    } else {
      ++count;
      ++it;
      ++jt;
    }
  }
  return count;
}

MatrixStorage::MatrixStorage(const Graph& g) : matrix_(g) {
  degree_.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) degree_.push_back(g.Degree(v));
}

void MatrixStorage::IntersectNeighbors(NodeId v,
                                       const std::vector<NodeId>& set,
                                       std::vector<NodeId>* out) const {
  out->clear();
  for (NodeId u : set) {
    if (matrix_.Adjacent(v, u)) out->push_back(u);
  }
}

size_t MatrixStorage::CountNeighborsIn(NodeId v,
                                       const std::vector<NodeId>& set) const {
  size_t count = 0;
  for (NodeId u : set) {
    if (matrix_.Adjacent(v, u)) ++count;
  }
  return count;
}

}  // namespace mce
