#include "mce/storage.h"

#include <algorithm>

namespace mce {

const char* ToString(Algorithm a) {
  switch (a) {
    case Algorithm::kBKPivot:
      return "BKPivot";
    case Algorithm::kTomita:
      return "Tomita";
    case Algorithm::kEppstein:
      return "Eppstein";
    case Algorithm::kXPivot:
      return "XPivot";
    case Algorithm::kNaive:
      return "Naive";
  }
  return "?";
}

const char* ToString(StorageKind s) {
  switch (s) {
    case StorageKind::kAdjacencyList:
      return "Lists";
    case StorageKind::kMatrix:
      return "Matrix";
    case StorageKind::kBitset:
      return "BitSets";
  }
  return "?";
}

std::string ComboName(StorageKind s, Algorithm a) {
  return std::string(ToString(s)) + "/" + ToString(a);
}

uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  uint64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) return UINT64_MAX;
  return out;
}

uint64_t SaturatingMul(uint64_t a, uint64_t b) {
  uint64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) return UINT64_MAX;
  return out;
}

uint64_t EstimateStorageBytes(uint64_t n, uint64_t m, StorageKind storage) {
  switch (storage) {
    case StorageKind::kAdjacencyList:
      return SaturatingAdd(SaturatingMul(SaturatingMul(2, m), sizeof(NodeId)),
                           SaturatingMul(SaturatingAdd(n, 1),
                                         sizeof(uint64_t)));
    case StorageKind::kMatrix:
      return SaturatingMul(n, n);
    case StorageKind::kBitset:
      return SaturatingMul(n, SaturatingMul(SaturatingAdd(n, 63) / 64, 8));
  }
  return 0;
}

namespace {

/// A side is "much shorter" past this ratio; galloping then beats the
/// linear merge (O(short * log(long/short)) vs O(short + long)).
constexpr size_t kGallopRatio = 8;

/// First position in sorted [begin, end) with *pos >= key, found by
/// exponential probing followed by binary search over the bracketed run.
const NodeId* GallopLowerBound(const NodeId* begin, const NodeId* end,
                               NodeId key) {
  const size_t n = static_cast<size_t>(end - begin);
  size_t bound = 1;
  while (bound < n && begin[bound] < key) bound <<= 1;
  const size_t lo = bound >> 1;
  const size_t hi = std::min(bound + 1, n);
  return std::lower_bound(begin + lo, begin + hi, key);
}

/// out += sorted intersection of sorted `a` and sorted `b`, galloping
/// through whichever side is much longer.
void IntersectSortedInto(std::span<const NodeId> a, std::span<const NodeId> b,
                         std::vector<NodeId>* out) {
  if (a.size() > b.size()) std::swap(a, b);
  const NodeId* sa = a.data();
  const NodeId* ea = sa + a.size();
  const NodeId* sb = b.data();
  const NodeId* eb = sb + b.size();
  if (b.size() > kGallopRatio * a.size()) {
    // Iterate the short side, gallop in the long one; the cursor only
    // moves forward, so total probing is near-logarithmic per element.
    for (const NodeId* it = sa; it != ea; ++it) {
      sb = GallopLowerBound(sb, eb, *it);
      if (sb == eb) return;
      if (*sb == *it) out->push_back(*it);
    }
    return;
  }
  while (sa != ea && sb != eb) {
    if (*sa < *sb) {
      ++sa;
    } else if (*sb < *sa) {
      ++sb;
    } else {
      out->push_back(*sa);
      ++sa;
      ++sb;
    }
  }
}

/// |a n b| for sorted a and b, galloping through whichever side is much
/// longer (same shape as IntersectSortedInto, without materializing).
size_t CountSortedIntersect(std::span<const NodeId> a,
                            std::span<const NodeId> b) {
  if (a.size() > b.size()) std::swap(a, b);
  const NodeId* sa = a.data();
  const NodeId* ea = sa + a.size();
  const NodeId* sb = b.data();
  const NodeId* eb = sb + b.size();
  size_t count = 0;
  if (b.size() > kGallopRatio * a.size()) {
    for (const NodeId* it = sa; it != ea; ++it) {
      sb = GallopLowerBound(sb, eb, *it);
      if (sb == eb) return count;
      if (*sb == *it) ++count;
    }
    return count;
  }
  while (sa != ea && sb != eb) {
    if (*sa < *sb) {
      ++sa;
    } else if (*sb < *sa) {
      ++sb;
    } else {
      ++count;
      ++sa;
      ++sb;
    }
  }
  return count;
}

}  // namespace

void ListStorage::IntersectNeighbors(NodeId v, std::span<const NodeId> set,
                                     std::vector<NodeId>* out) const {
  out->clear();
  auto nbrs = g_->Neighbors(v);
  IntersectSortedInto(set, nbrs, out);
}

void ListStorage::IntersectNeighborsUnion(NodeId v, std::span<const NodeId> a,
                                          std::span<const NodeId> b,
                                          std::vector<NodeId>* out) const {
  out->clear();
  auto nbrs = g_->Neighbors(v);
  if (a.empty()) {
    IntersectSortedInto(b, nbrs, out);
    return;
  }
  if (b.empty()) {
    IntersectSortedInto(a, nbrs, out);
    return;
  }
  if (nbrs.size() > kGallopRatio * (a.size() + b.size())) {
    // The candidate pieces are much shorter than N(v) — the common shape
    // deep in the recursion, where few candidates survive but neighbor
    // lists keep their full length. Merge-walk a u b and gallop a
    // monotone cursor through the neighbor list.
    const NodeId* sa = a.data();
    const NodeId* ea = sa + a.size();
    const NodeId* sb = b.data();
    const NodeId* eb = sb + b.size();
    const NodeId* nb = nbrs.data();
    const NodeId* ne = nb + nbrs.size();
    while (sa != ea || sb != eb) {
      NodeId u;
      if (sb == eb || (sa != ea && *sa < *sb)) {
        u = *sa++;
      } else {
        u = *sb++;
      }
      nb = GallopLowerBound(nb, ne, u);
      if (nb == ne) return;
      if (*nb == u) out->push_back(u);
    }
    return;
  }
  if (a.size() + b.size() > kGallopRatio * nbrs.size()) {
    // N(v) is much shorter than the candidate pieces: walk the neighbors
    // and gallop a monotone cursor through each piece. Output follows
    // neighbor order, which is sorted; a and b are disjoint, so at most
    // one cursor matches.
    const NodeId* sa = a.data();
    const NodeId* ea = sa + a.size();
    const NodeId* sb = b.data();
    const NodeId* eb = sb + b.size();
    for (NodeId u : nbrs) {
      sa = GallopLowerBound(sa, ea, u);
      if (sa != ea && *sa == u) {
        out->push_back(u);
        continue;
      }
      sb = GallopLowerBound(sb, eb, u);
      if (sb != eb && *sb == u) out->push_back(u);
    }
    return;
  }
  // Comparable sizes: walk the neighbor list and advance a monotone
  // cursor in each piece past it. a and b are disjoint, so at most one
  // piece matches each neighbor; the skip loops are short and
  // predictable, unlike the min-select of a three-way merge.
  const NodeId* sa = a.data();
  const NodeId* ea = sa + a.size();
  const NodeId* sb = b.data();
  const NodeId* eb = sb + b.size();
  for (NodeId u : nbrs) {
    while (sa != ea && *sa < u) ++sa;
    if (sa != ea && *sa == u) {
      out->push_back(u);
      continue;
    }
    while (sb != eb && *sb < u) ++sb;
    if (sb != eb && *sb == u) {
      out->push_back(u);
    } else if (sa == ea && sb == eb) {
      return;
    }
  }
}

size_t ListStorage::CountNeighborsIn(NodeId v,
                                     std::span<const NodeId> set) const {
  return CountSortedIntersect(set, g_->Neighbors(v));
}

void ListStorage::PartitionByPivot(NodeId pivot, std::span<const NodeId> p,
                                   std::vector<NodeId>* kept,
                                   std::vector<NodeId>* ext) const {
  kept->clear();
  ext->clear();
  auto nbrs = g_->Neighbors(pivot);
  const NodeId* nb = nbrs.data();
  const NodeId* ne = nb + nbrs.size();
  for (NodeId v : p) {
    while (nb != ne && *nb < v) ++nb;
    if (nb != ne && *nb == v) {
      // The pivot is never its own neighbor, so it lands in ext.
      kept->push_back(v);
    } else {
      ext->push_back(v);
    }
  }
}

void MatrixStorage::Assign(const Graph& g) {
  matrix_.Assign(g);
  degree_.clear();
  degree_.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) degree_.push_back(g.Degree(v));
}

void MatrixStorage::IntersectNeighbors(NodeId v, std::span<const NodeId> set,
                                       std::vector<NodeId>* out) const {
  out->clear();
  for (NodeId u : set) {
    if (matrix_.Adjacent(v, u)) out->push_back(u);
  }
}

void MatrixStorage::IntersectNeighborsUnion(NodeId v,
                                            std::span<const NodeId> a,
                                            std::span<const NodeId> b,
                                            std::vector<NodeId>* out) const {
  // Merge-walk the disjoint sorted pieces so the output stays sorted.
  out->clear();
  const NodeId* sa = a.data();
  const NodeId* ea = sa + a.size();
  const NodeId* sb = b.data();
  const NodeId* eb = sb + b.size();
  while (sa != ea || sb != eb) {
    NodeId u;
    if (sb == eb || (sa != ea && *sa < *sb)) {
      u = *sa++;
    } else {
      u = *sb++;
    }
    if (matrix_.Adjacent(v, u)) out->push_back(u);
  }
}

size_t MatrixStorage::CountNeighborsIn(NodeId v,
                                       std::span<const NodeId> set) const {
  size_t count = 0;
  for (NodeId u : set) {
    if (matrix_.Adjacent(v, u)) ++count;
  }
  return count;
}

void MatrixStorage::PartitionByPivot(NodeId pivot, std::span<const NodeId> p,
                                     std::vector<NodeId>* kept,
                                     std::vector<NodeId>* ext) const {
  kept->clear();
  ext->clear();
  for (NodeId v : p) {
    if (v == pivot || !matrix_.Adjacent(pivot, v)) {
      ext->push_back(v);
    } else {
      kept->push_back(v);
    }
  }
}

}  // namespace mce
