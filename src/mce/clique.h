// Clique value types, collection, and maximality predicates.

#ifndef MCE_MCE_CLIQUE_H_
#define MCE_MCE_CLIQUE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace mce {

/// A clique as a sorted vector of node ids.
using Clique = std::vector<NodeId>;

/// Enumeration callback. The span is only valid during the call; copy it if
/// you keep it. Vertices arrive unsorted.
using CliqueCallback = std::function<void(std::span<const NodeId>)>;

/// Canonical collection of cliques: each stored sorted; the collection can
/// be canonicalized (lexicographically sorted + deduplicated) for
/// set-comparison in tests and for the Lemma 1 filter.
class CliqueSet {
 public:
  CliqueSet() = default;

  /// Copies and sorts the clique.
  void Add(std::span<const NodeId> clique);
  void Add(Clique clique);

  /// Moves all cliques out of `other` into this set.
  void Merge(CliqueSet&& other);

  /// Sorts the collection lexicographically and removes duplicates.
  void Canonicalize();

  size_t size() const { return cliques_.size(); }
  bool empty() const { return cliques_.empty(); }
  const std::vector<Clique>& cliques() const { return cliques_; }
  std::vector<Clique>& mutable_cliques() { return cliques_; }

  /// Size of the largest clique (0 when empty).
  size_t MaxCliqueSize() const;
  /// Mean clique size (0 when empty).
  double AverageCliqueSize() const;

  /// Returns a callback that Add()s into this set.
  CliqueCallback Collector();

  /// Canonical equality (both sides are canonicalized by the call).
  static bool Equal(CliqueSet& a, CliqueSet& b);

 private:
  std::vector<Clique> cliques_;
};

/// True iff `nodes` (distinct ids) induce a complete subgraph of `g`.
bool IsClique(const Graph& g, std::span<const NodeId> nodes);

/// True iff `nodes` is a clique and no vertex of `g` is adjacent to all of
/// them. The empty set is maximal only in the empty graph.
bool IsMaximalClique(const Graph& g, std::span<const NodeId> nodes);

/// Nodes adjacent to every node in `nodes` (excluding members themselves):
/// the common-neighborhood intersection used by the maximality test and the
/// Lemma 1 extension filter. `nodes` must be non-empty.
std::vector<NodeId> CommonNeighbors(const Graph& g,
                                    std::span<const NodeId> nodes);

}  // namespace mce

#endif  // MCE_MCE_CLIQUE_H_
