#include "mce/pivoter.h"

#include <algorithm>
#include <concepts>

#include "util/check.h"

namespace mce {

PivotRule RuleFor(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kBKPivot:
      return PivotRule::kMaxDegree;
    case Algorithm::kTomita:
    case Algorithm::kEppstein:
      return PivotRule::kMaxIntersection;
    case Algorithm::kXPivot:
      return PivotRule::kVisitedFirst;
    case Algorithm::kNaive:
      break;
  }
  MCE_CHECK(false);  // kNaive has no pivot rule
  return PivotRule::kMaxDegree;
}

/// True when Storage exposes neighbor lists with flag-based counting;
/// the recursion then maintains per-frame membership flags and replaces
/// sorted-range merges with probes along N(v).
template <typename Storage>
concept HasNeighborLists = requires(const Storage& s, NodeId v,
                                    const uint8_t* mark) {
  { s.Neighbors(v) } -> std::convertible_to<std::span<const NodeId>>;
  { s.CountNeighborsMarked(v, mark) } -> std::convertible_to<size_t>;
};

template <typename Storage>
NodeId VectorMceRunner<Storage>::ChoosePivot(std::span<const NodeId> p,
                                             std::span<const NodeId> x,
                                             const uint8_t* mark) const {
  switch (rule_) {
    case PivotRule::kMaxDegree: {
      NodeId best = p.front();
      for (NodeId v : p) {
        if (storage_.Degree(v) > storage_.Degree(best)) best = v;
      }
      return best;
    }
    case PivotRule::kMaxIntersection:
      return BestByIntersection(p, x, /*prefer_x_only=*/false, mark);
    case PivotRule::kVisitedFirst:
      return BestByIntersection(p, x, /*prefer_x_only=*/true, mark);
  }
  MCE_CHECK(false);
  return p.front();
}

/// Node of P u X maximizing |N(u) n P|; with prefer_x_only, only X is
/// scanned unless it is empty (XPivot falls back to P at the root).
///
/// The scan is capped at kPivotScanCap candidates per set: any node of
/// P u X is a correct pivot, and an unbounded scan makes the pivot
/// choice alone cubic in n on large sparse graphs (X grows linearly
/// while every evaluation costs |P|). The cap bounds the per-node cost
/// while keeping the choice deterministic (the first candidates in
/// sorted order are evaluated).
template <typename Storage>
NodeId VectorMceRunner<Storage>::BestByIntersection(std::span<const NodeId> p,
                                                    std::span<const NodeId> x,
                                                    bool prefer_x_only,
                                                    const uint8_t* mark) const {
  NodeId best = kInvalidNode;
  size_t best_count = 0;
  auto consider = [&](std::span<const NodeId> set) {
    const size_t limit = std::min(set.size(), kPivotScanCap);
    for (size_t i = 0; i < limit; ++i) {
      const NodeId u = set[i];
      // |N(u) n P| <= min(Degree(u), |P|), and a tie keeps the earlier
      // candidate, so skipping candidates that cannot strictly beat the
      // incumbent leaves the chosen pivot unchanged while avoiding most
      // of the counting work.
      if (best != kInvalidNode) {
        if (best_count >= p.size()) return;
        if (storage_.Degree(u) <= best_count) continue;
      }
      size_t c;
      if constexpr (HasNeighborLists<Storage>) {
        c = mark != nullptr ? storage_.CountNeighborsMarked(u, mark)
                            : storage_.CountNeighborsIn(u, p);
      } else {
        c = storage_.CountNeighborsIn(u, p);
      }
      if (best == kInvalidNode || c > best_count) {
        best = u;
        best_count = c;
      }
    }
  };
  if (prefer_x_only && !x.empty()) {
    consider(x);
    return best;
  }
  consider(p);
  if (!prefer_x_only) consider(x);
  return best;
}

template <typename Storage>
void VectorMceRunner<Storage>::Run(std::span<const NodeId> r,
                                   std::span<const NodeId> p,
                                   std::span<const NodeId> x,
                                   const CliqueCallback& emit) {
  scratch_->r.assign(r.begin(), r.end());
  emit_ = &emit;
  Recurse(0, p, x);
  emit_ = nullptr;
}

template <typename Storage>
void VectorMceRunner<Storage>::Recurse(size_t depth, std::span<const NodeId> p,
                                       std::span<const NodeId> x) {
  std::vector<NodeId>& r = scratch_->r;
  if (p.empty()) {
    if (x.empty()) (*emit_)(r);
    return;
  }
  VectorMceScratch::Frame& f = scratch_->FrameAt(depth);
  // List-backed storage: maintain node-indexed membership flags of the
  // live P and X sets for this node. Pivot counting and child-set
  // construction then walk N(v) probing flags instead of merging sorted
  // ranges — O(deg) with no branches mispredicted on set boundaries. The
  // flags are frame-local, so deeper levels cannot disturb them.
  const uint8_t* mark = nullptr;
  if constexpr (HasNeighborLists<Storage>) {
    const size_t n = storage_.num_nodes();
    if (f.in_p.size() < n) {
      f.in_p.assign(n, 0);
      f.in_x.assign(n, 0);
    }
    for (NodeId v : p) f.in_p[v] = 1;
    for (NodeId v : x) f.in_x[v] = 1;
    mark = f.in_p.data();
  }
  const NodeId pivot = ChoosePivot(p, x, mark);
  // Stable partition of P by pivot adjacency: ext holds the branch
  // candidates (P \ N(pivot), including the pivot itself if present),
  // kept the rest. Both preserve P's sorted order.
  storage_.PartitionByPivot(pivot, p, &f.kept, &f.ext);
  const std::span<const NodeId> ext(f.ext);
  for (size_t i = 0; i < ext.size(); ++i) {
    const NodeId v = ext[i];
    // Live sets at this iteration: P = kept u ext[i..), X = x u ext[0..i).
    // v itself is never its own neighbor, so dropping it from the P side
    // changes nothing — and its own stale flags are never probed.
    if constexpr (HasNeighborLists<Storage>) {
      f.p.clear();
      f.x.clear();
      for (NodeId u : storage_.Neighbors(v)) {
        if (f.in_p[u]) {
          f.p.push_back(u);
        } else if (f.in_x[u]) {
          f.x.push_back(u);
        }
      }
    } else {
      storage_.IntersectNeighborsUnion(v, f.kept, ext.subspan(i + 1), &f.p);
      storage_.IntersectNeighborsUnion(v, x, ext.first(i), &f.x);
    }
    r.push_back(v);
    Recurse(depth + 1, f.p, f.x);
    r.pop_back();
    if constexpr (HasNeighborLists<Storage>) {
      // The move of v from P to X *is* these two flag writes.
      f.in_p[v] = 0;
      f.in_x[v] = 1;
    }
  }
  if constexpr (HasNeighborLists<Storage>) {
    for (NodeId v : p) {
      f.in_p[v] = 0;
      f.in_x[v] = 0;  // branch candidates ended up flagged in X
    }
    for (NodeId v : x) f.in_x[v] = 0;
  }
}

template class VectorMceRunner<ListStorage>;
template class VectorMceRunner<MatrixStorage>;

BitsetMceRunner::BitsetMceRunner(const BitsetGraph& bg, PivotRule rule,
                                 BitsetMceScratch* scratch)
    : bg_(bg),
      rule_(rule),
      owned_(scratch != nullptr ? nullptr : new BitsetMceScratch),
      scratch_(scratch != nullptr ? scratch : owned_.get()) {
  // Degrees feed the kMaxDegree pivot rule directly and bound the capped
  // scans of the intersection rules (|N(u) n P| <= degree(u)). Computing
  // them costs O(n^2 / 64) — the same order as building the BitsetGraph
  // rows the caller already paid for — and is amortized over every seed
  // run against this runner.
  scratch_->degree.clear();
  scratch_->degree.reserve(bg.num_nodes());
  for (NodeId v = 0; v < bg.num_nodes(); ++v) {
    scratch_->degree.push_back(static_cast<uint32_t>(bg.Row(v).Count()));
  }
}

NodeId BitsetMceRunner::ChoosePivot(const Bitset& p, const Bitset& x) const {
  NodeId best = kInvalidNode;
  size_t best_score = 0;
  const size_t p_count = p.Count();
  const std::vector<uint32_t>& degree = scratch_->degree;
  auto consider_capped = [&](const Bitset& set) {
    size_t scanned = 0;
    set.ForEachUntil([&](size_t u) {
      // |N(u) n P| <= min(degree(u), |P|), and a tie keeps the earlier
      // candidate: stop once the incumbent reaches |P|, and skip the
      // row popcount for candidates that cannot strictly beat it. The
      // chosen pivot is identical to an unpruned scan.
      if (best != kInvalidNode && best_score >= p_count) return false;
      if (best == kInvalidNode || degree[u] > best_score) {
        size_t c = bg_.Row(static_cast<NodeId>(u)).AndCount(p);
        if (best == kInvalidNode || c > best_score) {
          best = static_cast<NodeId>(u);
          best_score = c;
        }
      }
      return ++scanned < kPivotScanCap;
    });
  };
  switch (rule_) {
    case PivotRule::kMaxDegree: {
      p.ForEach([&](size_t u) {
        if (best == kInvalidNode || degree[u] > best_score) {
          best = static_cast<NodeId>(u);
          best_score = degree[u];
        }
      });
      return best;
    }
    case PivotRule::kMaxIntersection: {
      consider_capped(p);
      consider_capped(x);
      return best;
    }
    case PivotRule::kVisitedFirst: {
      if (x.Any()) {
        consider_capped(x);
      } else {
        consider_capped(p);
      }
      return best;
    }
  }
  MCE_CHECK(false);
  return best;
}

void BitsetMceRunner::Run(std::span<const NodeId> r, const Bitset& p,
                          const Bitset& x, const CliqueCallback& emit) {
  scratch_->r.assign(r.begin(), r.end());
  scratch_->root_p = p;
  scratch_->root_x = x;
  emit_ = &emit;
  Recurse(0, scratch_->root_p, scratch_->root_x);
  emit_ = nullptr;
}

void BitsetMceRunner::Recurse(size_t depth, Bitset& p, Bitset& x) {
  std::vector<NodeId>& r = scratch_->r;
  if (p.None()) {
    if (x.None()) (*emit_)(r);
    return;
  }
  const NodeId pivot = ChoosePivot(p, x);
  // Branch candidates: P \ N(pivot). The pivot itself qualifies when in P
  // (it is never its own neighbor). Snapshot into a vector, since P is
  // mutated while iterating.
  BitsetMceScratch::Frame& f = scratch_->FrameAt(depth);
  f.candidates.clear();
  p.ForEachDiff(bg_.Row(pivot), [&](size_t u) {
    f.candidates.push_back(static_cast<NodeId>(u));
  });
  for (NodeId v : f.candidates) {
    // Fused copy-and-intersect into the frame's sets reuses their word
    // storage.
    const Bitset& row = bg_.Row(v);
    f.p.AssignAnd(p, row);
    f.x.AssignAnd(x, row);
    r.push_back(v);
    Recurse(depth + 1, f.p, f.x);
    r.pop_back();
    p.Clear(v);
    x.Set(v);
  }
}

template <typename Storage>
void RunVectorMce(const Storage& storage, PivotRule rule,
                  std::vector<NodeId> r, std::vector<NodeId> p,
                  std::vector<NodeId> x, const CliqueCallback& emit) {
  VectorMceRunner<Storage> runner(storage, rule);
  runner.Run(r, p, x, emit);
}

template void RunVectorMce<ListStorage>(const ListStorage&, PivotRule,
                                        std::vector<NodeId>,
                                        std::vector<NodeId>,
                                        std::vector<NodeId>,
                                        const CliqueCallback&);
template void RunVectorMce<MatrixStorage>(const MatrixStorage&, PivotRule,
                                          std::vector<NodeId>,
                                          std::vector<NodeId>,
                                          std::vector<NodeId>,
                                          const CliqueCallback&);

void RunBitsetMce(const BitsetGraph& bg, PivotRule rule, std::vector<NodeId> r,
                  Bitset p, Bitset x, const CliqueCallback& emit) {
  BitsetMceRunner runner(bg, rule);
  runner.Run(r, p, x, emit);
}

}  // namespace mce
