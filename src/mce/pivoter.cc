#include "mce/pivoter.h"

#include <algorithm>

#include "util/check.h"

namespace mce {

PivotRule RuleFor(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kBKPivot:
      return PivotRule::kMaxDegree;
    case Algorithm::kTomita:
    case Algorithm::kEppstein:
      return PivotRule::kMaxIntersection;
    case Algorithm::kXPivot:
      return PivotRule::kVisitedFirst;
    case Algorithm::kNaive:
      break;
  }
  MCE_CHECK(false);  // kNaive has no pivot rule
  return PivotRule::kMaxDegree;
}

namespace {

template <typename Storage>
class VectorMceRunner {
 public:
  VectorMceRunner(const Storage& storage, PivotRule rule,
                  const CliqueCallback& emit)
      : storage_(storage), rule_(rule), emit_(emit) {}

  void Run(std::vector<NodeId> r, std::vector<NodeId> p,
           std::vector<NodeId> x) {
    r_ = std::move(r);
    Recurse(std::move(p), std::move(x));
  }

 private:
  NodeId ChoosePivot(const std::vector<NodeId>& p,
                     const std::vector<NodeId>& x) const {
    switch (rule_) {
      case PivotRule::kMaxDegree: {
        NodeId best = p.front();
        for (NodeId v : p) {
          if (storage_.Degree(v) > storage_.Degree(best)) best = v;
        }
        return best;
      }
      case PivotRule::kMaxIntersection:
        return BestByIntersection(p, x, /*prefer_x_only=*/false);
      case PivotRule::kVisitedFirst:
        return BestByIntersection(p, x, /*prefer_x_only=*/true);
    }
    MCE_CHECK(false);
    return p.front();
  }

  /// Node of P u X maximizing |N(u) n P|; with prefer_x_only, only X is
  /// scanned unless it is empty (XPivot falls back to P at the root).
  ///
  /// The scan is capped at kPivotScanCap candidates per set: any node of
  /// P u X is a correct pivot, and an unbounded scan makes the pivot
  /// choice alone cubic in n on large sparse graphs (X grows linearly
  /// while every evaluation costs |P|). The cap bounds the per-node cost
  /// while keeping the choice deterministic (the first candidates in
  /// sorted order are evaluated).
  static constexpr size_t kPivotScanCap = 2048;

  NodeId BestByIntersection(const std::vector<NodeId>& p,
                            const std::vector<NodeId>& x,
                            bool prefer_x_only) const {
    NodeId best = kInvalidNode;
    size_t best_count = 0;
    auto consider = [&](const std::vector<NodeId>& set) {
      const size_t limit = std::min(set.size(), kPivotScanCap);
      for (size_t i = 0; i < limit; ++i) {
        const NodeId u = set[i];
        size_t c = storage_.CountNeighborsIn(u, p);
        if (best == kInvalidNode || c > best_count) {
          best = u;
          best_count = c;
        }
      }
    };
    if (prefer_x_only && !x.empty()) {
      consider(x);
      return best;
    }
    consider(p);
    if (!prefer_x_only) consider(x);
    return best;
  }

  void Recurse(std::vector<NodeId> p, std::vector<NodeId> x) {
    if (p.empty()) {
      if (x.empty()) emit_(r_);
      return;
    }
    const NodeId pivot = ChoosePivot(p, x);
    // Candidates not adjacent to the pivot (the pivot itself, if in P,
    // is one of them).
    std::vector<NodeId> ext;
    for (NodeId v : p) {
      if (v == pivot || !storage_.Adjacent(pivot, v)) ext.push_back(v);
    }
    std::vector<NodeId> p2, x2;
    for (NodeId v : ext) {
      storage_.IntersectNeighbors(v, p, &p2);
      storage_.IntersectNeighbors(v, x, &x2);
      r_.push_back(v);
      Recurse(p2, x2);
      r_.pop_back();
      // Move v from P to X, keeping both sorted.
      p.erase(std::lower_bound(p.begin(), p.end(), v));
      x.insert(std::upper_bound(x.begin(), x.end(), v), v);
    }
  }

  const Storage& storage_;
  const PivotRule rule_;
  const CliqueCallback& emit_;
  std::vector<NodeId> r_;
};

class BitsetMceRunner {
 public:
  BitsetMceRunner(const BitsetGraph& bg, PivotRule rule,
                  const CliqueCallback& emit)
      : bg_(bg), rule_(rule), emit_(emit) {
    // Degrees feed only the kMaxDegree pivot rule; computing them costs
    // O(n^2 / 64), which would dominate callers that construct a runner
    // per seed vertex (the Eppstein outer loop).
    if (rule_ == PivotRule::kMaxDegree) {
      degree_.reserve(bg.num_nodes());
      for (NodeId v = 0; v < bg.num_nodes(); ++v) {
        degree_.push_back(static_cast<uint32_t>(bg.Row(v).Count()));
      }
    }
  }

  void Run(std::vector<NodeId> r, Bitset p, Bitset x) {
    r_ = std::move(r);
    Recurse(std::move(p), std::move(x));
  }

 private:
  // Same bounded-scan rationale as the vector runner (see kPivotScanCap
  // there): pivot evaluation must not dominate the recursion on large
  // candidate sets.
  static constexpr size_t kPivotScanCap = 2048;

  NodeId ChoosePivot(const Bitset& p, const Bitset& x) const {
    NodeId best = kInvalidNode;
    size_t best_score = 0;
    size_t scanned = 0;
    auto consider_count = [&](size_t u) {
      if (scanned++ >= kPivotScanCap) return;
      size_t c = bg_.Row(static_cast<NodeId>(u)).AndCount(p);
      if (best == kInvalidNode || c > best_score) {
        best = static_cast<NodeId>(u);
        best_score = c;
      }
    };
    switch (rule_) {
      case PivotRule::kMaxDegree: {
        p.ForEach([&](size_t u) {
          if (best == kInvalidNode || degree_[u] > best_score) {
            best = static_cast<NodeId>(u);
            best_score = degree_[u];
          }
        });
        return best;
      }
      case PivotRule::kMaxIntersection: {
        p.ForEach(consider_count);
        x.ForEach(consider_count);
        return best;
      }
      case PivotRule::kVisitedFirst: {
        if (x.Any()) {
          x.ForEach(consider_count);
        } else {
          p.ForEach(consider_count);
        }
        return best;
      }
    }
    MCE_CHECK(false);
    return best;
  }

  void Recurse(Bitset p, Bitset x) {
    if (p.None()) {
      if (x.None()) emit_(r_);
      return;
    }
    const NodeId pivot = ChoosePivot(p, x);
    Bitset ext = p;
    ext.AndNot(bg_.Row(pivot));
    if (p.Test(pivot)) ext.Set(pivot);
    const std::vector<NodeId> candidates = ext.ToVector();
    for (NodeId v : candidates) {
      Bitset p2 = p;
      p2.And(bg_.Row(v));
      Bitset x2 = x;
      x2.And(bg_.Row(v));
      r_.push_back(v);
      Recurse(std::move(p2), std::move(x2));
      r_.pop_back();
      p.Clear(v);
      x.Set(v);
    }
  }

  const BitsetGraph& bg_;
  const PivotRule rule_;
  const CliqueCallback& emit_;
  std::vector<NodeId> r_;
  std::vector<uint32_t> degree_;
};

}  // namespace

template <typename Storage>
void RunVectorMce(const Storage& storage, PivotRule rule,
                  std::vector<NodeId> r, std::vector<NodeId> p,
                  std::vector<NodeId> x, const CliqueCallback& emit) {
  VectorMceRunner<Storage> runner(storage, rule, emit);
  runner.Run(std::move(r), std::move(p), std::move(x));
}

template void RunVectorMce<ListStorage>(const ListStorage&, PivotRule,
                                        std::vector<NodeId>,
                                        std::vector<NodeId>,
                                        std::vector<NodeId>,
                                        const CliqueCallback&);
template void RunVectorMce<MatrixStorage>(const MatrixStorage&, PivotRule,
                                          std::vector<NodeId>,
                                          std::vector<NodeId>,
                                          std::vector<NodeId>,
                                          const CliqueCallback&);

void RunBitsetMce(const BitsetGraph& bg, PivotRule rule, std::vector<NodeId> r,
                  Bitset p, Bitset x, const CliqueCallback& emit) {
  BitsetMceRunner runner(bg, rule, emit);
  runner.Run(std::move(r), std::move(p), std::move(x));
}

}  // namespace mce
