#include "mce/max_clique.h"

#include <algorithm>
#include <vector>

#include "graph/ordered_adjacency.h"
#include "graph/views.h"

namespace mce {

namespace {

class MaxCliqueSolver {
 public:
  MaxCliqueSolver(const Graph& g, size_t lower_bound)
      : bg_(g), best_size_(lower_bound) {}

  MaxCliqueResult Solve(const Graph& g) {
    // Degeneracy-ordered outer loop: vertex v with its later neighbors as
    // candidates — the maximum clique containing v as its order-minimal
    // member lives there, and candidate sets stay small on sparse graphs.
    OrderedAdjacency ordered(g);
    // Iterate in REVERSE degeneracy order so dense-core vertices (with
    // large later-neighborhoods already processed) establish a strong
    // bound early.
    const auto& order = ordered.cores().order;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId v = *it;
      auto later = ordered.LaterNeighbors(v);
      if (later.size() + 1 <= best_size_) continue;  // bound
      current_.assign(1, v);
      std::vector<NodeId> candidates(later.begin(), later.end());
      Expand(&candidates);
    }
    MaxCliqueResult result;
    result.clique = best_;
    std::sort(result.clique.begin(), result.clique.end());
    result.branches = branches_;
    return result;
  }

 private:
  /// Greedy coloring of `candidates` (ascending color classes); returns
  /// the candidates reordered so vertices of high color come last, with
  /// parallel `colors` giving each one's color number (an upper bound on
  /// the clique size within the prefix ending at it).
  void ColorSort(const std::vector<NodeId>& candidates,
                 std::vector<NodeId>* reordered,
                 std::vector<uint32_t>* colors) const {
    reordered->clear();
    colors->clear();
    // color_classes[c] = vertices assigned color c (independent within a
    // class w.r.t. adjacency).
    std::vector<std::vector<NodeId>> color_classes;
    for (NodeId v : candidates) {
      size_t c = 0;
      for (; c < color_classes.size(); ++c) {
        bool conflict = false;
        for (NodeId u : color_classes[c]) {
          if (bg_.Adjacent(u, v)) {
            conflict = true;
            break;
          }
        }
        if (!conflict) break;
      }
      if (c == color_classes.size()) color_classes.emplace_back();
      color_classes[c].push_back(v);
    }
    for (size_t c = 0; c < color_classes.size(); ++c) {
      for (NodeId v : color_classes[c]) {
        reordered->push_back(v);
        colors->push_back(static_cast<uint32_t>(c + 1));
      }
    }
  }

  void Expand(std::vector<NodeId>* candidates) {
    ++branches_;
    if (candidates->empty()) {
      if (current_.size() > best_size_) {
        best_size_ = current_.size();
        best_ = current_;
      }
      return;
    }
    std::vector<NodeId> reordered;
    std::vector<uint32_t> colors;
    ColorSort(*candidates, &reordered, &colors);
    // Explore from the highest color downward; the color is the bound.
    for (size_t i = reordered.size(); i-- > 0;) {
      if (current_.size() + colors[i] <= best_size_) return;  // prune
      const NodeId v = reordered[i];
      current_.push_back(v);
      std::vector<NodeId> next;
      for (size_t j = 0; j < i; ++j) {
        if (bg_.Adjacent(reordered[j], v)) next.push_back(reordered[j]);
      }
      Expand(&next);
      current_.pop_back();
    }
  }

  BitsetGraph bg_;
  size_t best_size_;
  Clique best_;
  Clique current_;
  uint64_t branches_ = 0;
};

}  // namespace

MaxCliqueResult FindMaximumClique(const Graph& g, size_t lower_bound) {
  if (g.num_nodes() == 0) return {};
  MaxCliqueSolver solver(g, lower_bound);
  return solver.Solve(g);
}

size_t CliqueNumber(const Graph& g) {
  return FindMaximumClique(g).clique.size();
}

}  // namespace mce
