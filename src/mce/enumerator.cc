#include "mce/enumerator.h"

#include <algorithm>

#include "graph/ordered_adjacency.h"
#include "graph/views.h"
#include "mce/naive.h"
#include "mce/pivoter.h"
#include "util/check.h"

namespace mce {

namespace {

/// Eppstein-Strash outer loop: process vertices in degeneracy order; for
/// each v the candidates are its later neighbors and the exclusion set its
/// earlier neighbors, bounding every subproblem by the degeneracy. The
/// later/earlier split comes precomputed from the inverted-table structure
/// (graph/ordered_adjacency.h). One runner serves every seed, so the
/// recursion scratch is allocated once, not n times.
template <typename Storage>
void EppsteinOuterVector(const Graph& g, const Storage& storage,
                         const CliqueCallback& emit) {
  const OrderedAdjacency ordered(g);
  VectorMceRunner<Storage> runner(storage, PivotRule::kMaxIntersection);
  for (NodeId v : ordered.cores().order) {
    const NodeId seed[] = {v};
    runner.Run(seed, ordered.LaterNeighbors(v), ordered.EarlierNeighbors(v),
               emit);
  }
}

void EppsteinOuterBitset(const Graph& g, const BitsetGraph& bg,
                         const CliqueCallback& emit) {
  const OrderedAdjacency ordered(g);
  BitsetMceRunner runner(bg, PivotRule::kMaxIntersection);
  Bitset p(g.num_nodes());
  Bitset x(g.num_nodes());
  for (NodeId v : ordered.cores().order) {
    p.Reset();
    x.Reset();
    for (NodeId u : ordered.LaterNeighbors(v)) p.Set(u);
    for (NodeId u : ordered.EarlierNeighbors(v)) x.Set(u);
    const NodeId seed[] = {v};
    runner.Run(seed, p, x, emit);
  }
}

std::vector<NodeId> AllNodes(const Graph& g) {
  std::vector<NodeId> nodes(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) nodes[v] = v;
  return nodes;
}

}  // namespace

void EnumerateMaximalCliques(const Graph& g, const MceOptions& options,
                             const CliqueCallback& emit) {
  if (g.num_nodes() == 0) {
    // The empty clique is the unique maximal clique of the empty graph; the
    // paper's pipeline never reports it, so neither do we.
    return;
  }
  if (options.algorithm == Algorithm::kNaive) {
    NaiveMce(g, emit);
    return;
  }
  if (options.algorithm == Algorithm::kEppstein) {
    switch (options.storage) {
      case StorageKind::kAdjacencyList: {
        ListStorage s(g);
        EppsteinOuterVector(g, s, emit);
        return;
      }
      case StorageKind::kMatrix: {
        MatrixStorage s(g);
        EppsteinOuterVector(g, s, emit);
        return;
      }
      case StorageKind::kBitset: {
        BitsetGraph bg(g);
        EppsteinOuterBitset(g, bg, emit);
        return;
      }
    }
  }
  const PivotRule rule = RuleFor(options.algorithm);
  switch (options.storage) {
    case StorageKind::kAdjacencyList: {
      ListStorage s(g);
      RunVectorMce(s, rule, {}, AllNodes(g), {}, emit);
      return;
    }
    case StorageKind::kMatrix: {
      MatrixStorage s(g);
      RunVectorMce(s, rule, {}, AllNodes(g), {}, emit);
      return;
    }
    case StorageKind::kBitset: {
      BitsetGraph bg(g);
      Bitset p(g.num_nodes());
      p.SetAll();
      RunBitsetMce(bg, rule, {}, std::move(p), Bitset(g.num_nodes()), emit);
      return;
    }
  }
}

CliqueSet EnumerateToSet(const Graph& g, const MceOptions& options) {
  CliqueSet out;
  EnumerateMaximalCliques(g, options, out.Collector());
  out.Canonicalize();
  return out;
}

Algorithm SeededAlgorithmFor(Algorithm requested) {
  if (requested == Algorithm::kEppstein || requested == Algorithm::kNaive) {
    return Algorithm::kTomita;
  }
  return requested;
}

void EnumerateSeeded(const Graph& g, const MceOptions& options, NodeId seed,
                     std::vector<NodeId> p, std::vector<NodeId> x,
                     const CliqueCallback& emit) {
  MCE_CHECK_LT(seed, g.num_nodes());
  const PivotRule rule = RuleFor(SeededAlgorithmFor(options.algorithm));
  switch (options.storage) {
    case StorageKind::kAdjacencyList: {
      ListStorage s(g);
      RunVectorMce(s, rule, {seed}, std::move(p), std::move(x), emit);
      return;
    }
    case StorageKind::kMatrix: {
      MatrixStorage s(g);
      RunVectorMce(s, rule, {seed}, std::move(p), std::move(x), emit);
      return;
    }
    case StorageKind::kBitset: {
      BitsetGraph bg(g);
      Bitset pb(g.num_nodes());
      Bitset xb(g.num_nodes());
      for (NodeId v : p) pb.Set(v);
      for (NodeId v : x) xb.Set(v);
      RunBitsetMce(bg, rule, {seed}, std::move(pb), std::move(xb), emit);
      return;
    }
  }
}

}  // namespace mce
