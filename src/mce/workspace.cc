#include "mce/workspace.h"

namespace mce {

const MatrixStorage& BlockWorkspace::Matrix(const Graph& g) {
  matrix_.Assign(g);
  return matrix_;
}

const BitsetGraph& BlockWorkspace::BitsetRows(const Graph& g) {
  bitset_graph_.Assign(g);
  return bitset_graph_;
}

}  // namespace mce
