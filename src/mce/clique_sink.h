// CliqueSink — ownership-agnostic buffering for per-level clique streams.
//
// The pooled executor buffers every clique a level produces (that is what
// makes its delivery byte-identical to the serial walk). On clique-dense
// graphs those buffers are the largest live allocation of the whole run,
// so they are the natural spill point for out-of-core execution: a sink
// either keeps its FlatCliques arena resident, or flushes it to an
// unlinked temp file in sorted chunks once the level's resident bytes
// cross a threshold, replaying the chunks in append order on read.
//
// The contract that keeps emission byte-identical with spilling on or off:
// ForRange(i, j) replays exactly the cliques appended as numbers [i, j), in
// order, regardless of where flush boundaries fell. Appends are
// single-writer per sink; reads may run concurrently from many threads
// once all appends have finished (the engine's analysis-completion token
// orders the two phases).
//
// Layering: this header knows nothing about the executors. The engine
// fills one SpillConfig per run (directory, threshold, budget, trace,
// metrics handles) and one SpillContext per level (shared resident-byte
// counter); MakeCliqueSink picks the implementation.

#ifndef MCE_MCE_CLIQUE_SINK_H_
#define MCE_MCE_CLIQUE_SINK_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/types.h"
#include "mce/clique.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/memory_budget.h"

namespace mce {

/// Append-only clique arena: ids stored back to back with end offsets,
/// preserving emission order. Buffering one heap allocation per clique
/// (vector<Clique>) made the pooled engine slower than serial on
/// clique-dense graphs; this arena is two vectors total.
class FlatCliques {
 public:
  /// Copies the clique and sorts it in place (the CliqueSet::Add
  /// contract, which the serial emission order is defined in terms of).
  void Append(std::span<const NodeId> c) {
    AppendRaw(c);
    std::sort(ids_.end() - static_cast<ptrdiff_t>(c.size()), ids_.end());
  }

  /// Copies verbatim, skipping the sort — for buffers whose reader
  /// canonicalizes anyway (level >= 1 shard buffers feed MapAndFilter-
  /// Clique, which sorts its output) or whose input already is canonical
  /// (filter and fallback survivors are MapAndFilterClique output).
  void AppendRaw(std::span<const NodeId> c) {
    if (ids_.capacity() == 0) {
      // First touch: skip the early doubling steps. Most arenas are
      // per-block buffers on graphs with thousands of small blocks, so
      // growing each one from nothing costs more allocator traffic than
      // the analysis itself saves.
      ids_.reserve(96);
      ends_.reserve(16);
    }
    ids_.insert(ids_.end(), c.begin(), c.end());
    ends_.push_back(ids_.size());
  }
  size_t size() const { return ends_.size(); }
  std::span<const NodeId> operator[](size_t i) const {
    const size_t begin = i == 0 ? 0 : ends_[i - 1];
    return {ids_.data() + begin, ends_[i] - begin};
  }

  /// Bytes of clique payload held (size-based; the spill accounting
  /// charge).
  uint64_t ByteSize() const {
    return ids_.size() * sizeof(NodeId) + ends_.size() * sizeof(uint64_t);
  }

  const std::vector<NodeId>& ids() const { return ids_; }
  const std::vector<uint64_t>& ends() const { return ends_; }

 private:
  std::vector<NodeId> ids_;
  std::vector<uint64_t> ends_;
};

/// Per-flush observability handles, bound once per run by the engine's
/// RunMetrics (null when no registry is installed).
struct SpillMetrics {
  obs::Counter* bytes_charged = nullptr;
  obs::Counter* spill_chunks = nullptr;
  obs::Counter* spill_bytes = nullptr;
  obs::Histogram* spill_chunk_bytes = nullptr;
};

/// A sink never flushes a chunk smaller than this (or than the threshold,
/// whichever is lower): once a level's aggregate sits at the ceiling,
/// flushing each sink's few-byte buffer on every append would grind the
/// run into hundreds of thousands of tiny chunks. Sinks instead let their
/// buffers grow to a useful chunk size; the extra residency is bounded by
/// one minimum chunk per sink and stays budget-accounted.
inline constexpr uint64_t kMinSpillChunkBytes = 4096;

/// Run-wide spill configuration, owned by the engine and outliving every
/// sink of the run.
struct SpillConfig {
  /// Directory for chunk files; "" uses $TMPDIR, then /tmp. Files are
  /// unlinked at creation, so nothing survives a crash.
  std::string dir;
  /// Per-level resident-byte ceiling across the level's sinks; a sink
  /// whose append pushes the level total past this flushes its own
  /// buffer. 0 disables spilling (sinks still account when `budget` is
  /// set).
  uint64_t threshold_bytes = 0;
  /// Charged/released with every resident-byte delta; never null for
  /// spilling sinks made through MakeCliqueSink.
  MemoryBudget* budget = nullptr;
  obs::TraceRecorder* trace = nullptr;
  SpillMetrics metrics;
  /// Live spill counters for heartbeat telemetry (chunk count and bytes
  /// bumped per flush); null when the run has no progress estimator.
  obs::ProgressEstimator* progress = nullptr;
};

/// Per-level spill state: the shared resident-byte counter the threshold
/// is measured against. One instance per LevelRun, addressed by every sink
/// of that level.
struct SpillContext {
  const SpillConfig* config = nullptr;
  uint32_t level = 0;
  std::atomic<uint64_t> resident_bytes{0};
};

/// Interface the executors buffer through. Append/AppendRaw mirror
/// FlatCliques; ForRange replays appends [begin, end) in order.
class CliqueSink {
 public:
  virtual ~CliqueSink() = default;

  virtual void Append(std::span<const NodeId> c) = 0;
  virtual void AppendRaw(std::span<const NodeId> c) = 0;
  virtual size_t size() const = 0;

  /// Replays cliques [begin, end) (in append order) to `fn`. Thread-safe
  /// for concurrent readers once appends have finished; spilled chunks
  /// stream through a per-call buffer one chunk at a time.
  virtual void ForRange(size_t begin, size_t end,
                        const CliqueCallback& fn) const = 0;
  void ForEach(const CliqueCallback& fn) const { ForRange(0, size(), fn); }

  virtual uint64_t spilled_chunks() const { return 0; }
  virtual uint64_t spilled_bytes() const { return 0; }
};

/// Resident sink: a FlatCliques arena, no accounting, no virtual overhead
/// beyond the dispatch itself. The default when no budget or threshold is
/// configured.
class ResidentCliqueSink final : public CliqueSink {
 public:
  void Append(std::span<const NodeId> c) override { flat_.Append(c); }
  void AppendRaw(std::span<const NodeId> c) override { flat_.AppendRaw(c); }
  size_t size() const override { return flat_.size(); }
  void ForRange(size_t begin, size_t end,
                const CliqueCallback& fn) const override {
    for (size_t i = begin; i < end; ++i) fn(flat_[i]);
  }

 private:
  FlatCliques flat_;
};

/// Accounting + spilling sink. Every append charges its resident-byte
/// delta to the budget and the level's shared counter; once the level
/// total crosses the threshold the sink flushes its own buffer as one
/// chunk ([count][ids-size][ends...][ids...]) appended to a lazily
/// created, immediately unlinked temp file. Spill I/O failure degrades to
/// resident buffering with one warning. Single writer; see CliqueSink for
/// the read contract.
class SpillingCliqueSink final : public CliqueSink {
 public:
  /// `ctx` (with ctx->config) must outlive the sink.
  explicit SpillingCliqueSink(SpillContext* ctx) : ctx_(ctx) {}
  ~SpillingCliqueSink() override;

  void Append(std::span<const NodeId> c) override {
    buffer_.Append(c);
    Account();
  }
  void AppendRaw(std::span<const NodeId> c) override {
    buffer_.AppendRaw(c);
    Account();
  }
  size_t size() const override { return spilled_cliques_ + buffer_.size(); }
  void ForRange(size_t begin, size_t end,
                const CliqueCallback& fn) const override;

  uint64_t spilled_chunks() const override { return chunks_.size(); }
  uint64_t spilled_bytes() const override { return spilled_bytes_; }

 private:
  struct Chunk {
    uint64_t file_offset = 0;
    uint64_t num_cliques = 0;
    uint64_t num_ids = 0;
  };

  void Account();
  void Flush();
  bool EnsureFile();

  SpillContext* ctx_;
  FlatCliques buffer_;
  uint64_t accounted_ = 0;  // bytes currently charged for buffer_
  std::vector<Chunk> chunks_;
  uint64_t spilled_cliques_ = 0;
  uint64_t spilled_bytes_ = 0;
  uint64_t file_end_ = 0;
  int fd_ = -1;
  bool spill_failed_ = false;
};

/// Picks the sink implementation: SpillingCliqueSink when `ctx` carries a
/// config with a threshold or a budget to account against, else the
/// zero-overhead ResidentCliqueSink (also for ctx == nullptr).
std::unique_ptr<CliqueSink> MakeCliqueSink(SpillContext* ctx);

}  // namespace mce

#endif  // MCE_MCE_CLIQUE_SINK_H_
