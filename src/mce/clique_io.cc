#include "mce/clique_io.h"

#include <fstream>
#include <sstream>

namespace mce {

Status WriteCliques(const CliqueSet& cliques, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (const Clique& c : cliques.cliques()) {
    for (size_t i = 0; i < c.size(); ++i) {
      if (i > 0) out << ' ';
      out << c[i];
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write error on " + path);
  return Status::OK();
}

Result<CliqueSet> ReadCliques(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  CliqueSet out;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    Clique clique;
    uint64_t id = 0;
    while (ss >> id) {
      if (id > kInvalidNode - 1) {
        return Status::OutOfRange(path + ":" + std::to_string(line_no) +
                                  ": node id exceeds 32-bit range");
      }
      clique.push_back(static_cast<NodeId>(id));
    }
    if (!ss.eof()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": expected whitespace-separated ids");
    }
    if (!clique.empty()) out.Add(std::move(clique));
  }
  if (in.bad()) return Status::IoError("read error on " + path);
  return out;
}

}  // namespace mce
