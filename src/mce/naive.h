// Reference maximal-clique enumerator: pivotless Bron-Kerbosch.
//
// Deliberately the simplest correct algorithm; every optimized variant and
// the whole decomposition pipeline are cross-checked against it in tests.
// Do not use it for anything large.

#ifndef MCE_MCE_NAIVE_H_
#define MCE_MCE_NAIVE_H_

#include "graph/graph.h"
#include "mce/clique.h"

namespace mce {

/// Emits every maximal clique of `g` exactly once.
void NaiveMce(const Graph& g, const CliqueCallback& emit);

/// Convenience wrapper collecting into a canonicalized CliqueSet.
CliqueSet NaiveMceSet(const Graph& g);

}  // namespace mce

#endif  // MCE_MCE_NAIVE_H_
