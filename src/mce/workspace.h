// Reusable scratch memory for the MCE kernels and for per-block analysis.
//
// The BK recursion is the innermost loop of the whole pipeline (it runs
// once per kernel node of every block), so its working sets must not be
// allocated per node. Following Eppstein-Löffler-Strash, every recursion
// level draws its buffers from a depth-indexed pool owned by the caller:
// the pool grows only when the search tree first reaches a new depth, and
// every later node at that depth reuses the same storage. One level up,
// a BlockWorkspace bundles those pools with the block-level buffers (role
// flags, id-translation scratch, and grow-only dense views) so that
// consecutive blocks processed by the same worker thread reuse all of it.
//
// Steady state — after the deepest/largest input a workspace has seen —
// performs zero heap allocations (regression-tested in mce_alloc_test).
// None of these types are thread-safe; give each worker its own. The
// pooled executor keys one workspace per pool worker, and a kernel-range
// shard of a split BlockTask is just another AnalyzeBlock call on its
// worker's workspace — shards reuse the same grown buffers as whole
// blocks, so splitting adds no steady-state allocation.

#ifndef MCE_MCE_WORKSPACE_H_
#define MCE_MCE_WORKSPACE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "graph/graph.h"
#include "graph/views.h"
#include "mce/storage.h"
#include "util/bitset.h"

namespace mce {

/// Depth-indexed frames for the sorted-vector recursion (List/Matrix
/// storages). A frame holds the buffers one recursion node needs:
///  - kept/ext: the node's candidate set P, stably partitioned into the
///    pivot's neighbors (kept) and the branch candidates (ext);
///  - p/x: the child sets handed to the next depth;
///  - in_p/in_x: node-indexed membership flags of the live P and X sets,
///    maintained only by storages with neighbor lists (they turn child-set
///    construction and pivot counting into flag probes along N(v)).
/// std::deque keeps frame references stable while deeper levels append.
struct VectorMceScratch {
  struct Frame {
    std::vector<NodeId> kept;
    std::vector<NodeId> ext;
    std::vector<NodeId> p;
    std::vector<NodeId> x;
    std::vector<uint8_t> in_p;
    std::vector<uint8_t> in_x;
  };

  std::deque<Frame> frames;
  /// The clique under construction (R of the BK recursion).
  std::vector<NodeId> r;

  Frame& FrameAt(size_t depth) {
    while (frames.size() <= depth) frames.emplace_back();
    return frames[depth];
  }
};

/// Depth-indexed frames for the bitset recursion, plus the root-set pair
/// the runner copies its inputs into (so callers can hand in transient
/// bitsets without the runner retaining them).
struct BitsetMceScratch {
  struct Frame {
    Bitset p;
    Bitset x;
    std::vector<NodeId> candidates;
  };

  std::deque<Frame> frames;
  std::vector<NodeId> r;
  Bitset root_p;
  Bitset root_x;
  /// Degree cache for the kMaxDegree pivot rule (unused by other rules).
  std::vector<uint32_t> degree;

  Frame& FrameAt(size_t depth) {
    while (frames.size() <= depth) frames.emplace_back();
    return frames[depth];
  }
};

/// Everything one worker thread needs to analyze a stream of blocks
/// without steady-state allocation: the kernel scratch pools, the
/// Algorithm-4 loop buffers, and grow-only backing for the dense graph
/// views. Plain data on purpose — it is a bag of buffers, not an
/// abstraction; ownership (one per worker) is what gives it meaning.
class BlockWorkspace {
 public:
  BlockWorkspace() = default;
  BlockWorkspace(BlockWorkspace&&) = default;
  BlockWorkspace& operator=(BlockWorkspace&&) = default;

  VectorMceScratch vector_scratch;
  BitsetMceScratch bitset_scratch;

  /// Local-to-parent id translation buffer for the emit path. The emit
  /// callback must copy the span it is handed — this buffer is overwritten
  /// by the very next clique.
  std::vector<NodeId> translate;

  /// Role flags and per-seed candidate buffers for the vector loop.
  std::vector<uint8_t> in_p;
  std::vector<uint8_t> in_v;
  std::vector<NodeId> p;
  std::vector<NodeId> x;

  /// Block-wide and per-seed set pairs for the bitset loop.
  Bitset block_p;
  Bitset block_x;
  Bitset seed_p;
  Bitset seed_x;

  /// Dense views over `g`, rebuilt in place (grow-only; see
  /// AdjacencyMatrix::Assign / BitsetGraph::Assign). The reference is valid
  /// until the next call with a different graph.
  const MatrixStorage& Matrix(const Graph& g);
  const BitsetGraph& BitsetRows(const Graph& g);

 private:
  MatrixStorage matrix_;
  BitsetGraph bitset_graph_;
};

}  // namespace mce

#endif  // MCE_MCE_WORKSPACE_H_
