// Storage backends for the MCE algorithms (Section 4).
//
// The paper evaluates each algorithm over three graph representations:
// adjacency lists, dense adjacency matrices, and bitset rows. ListStorage
// and MatrixStorage share a duck-typed interface consumed by the generic
// recursion in pivoter.h; the bitset backend has its own recursion (sets are
// Bitsets, intersections are word-parallel ANDs) in pivoter.h as well.

#ifndef MCE_MCE_STORAGE_H_
#define MCE_MCE_STORAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/views.h"

namespace mce {

/// MCE algorithm selector (the four variants of Section 4 + the reference).
enum class Algorithm : uint8_t {
  kBKPivot = 0,  // Bron-Kerbosch, pivot = highest-degree node of P
  kTomita = 1,   // pivot in P u X maximizing |N(u) n P|
  kEppstein = 2, // degeneracy-ordered outer loop, Tomita pivot inside
  kXPivot = 3,   // this paper's variant: pivot drawn from X
  kNaive = 4,    // pivotless reference (tests only)
};

/// Graph representation selector.
enum class StorageKind : uint8_t {
  kAdjacencyList = 0,
  kMatrix = 1,
  kBitset = 2,
};

const char* ToString(Algorithm a);
const char* ToString(StorageKind s);

/// "Matrix/Tomita"-style label used by the benchmark tables.
std::string ComboName(StorageKind s, Algorithm a);

/// Approximate bytes needed to materialize `storage` for an n-node graph
/// with m undirected edges. Used by benches to skip infeasible combos.
uint64_t EstimateStorageBytes(uint64_t n, uint64_t m, StorageKind storage);

/// Adjacency-list backend: a thin view over the CSR Graph (no copy).
/// Intersections run on sorted ranges; the candidate sets passed in must be
/// sorted, which the generic recursion maintains.
class ListStorage {
 public:
  explicit ListStorage(const Graph& g) : g_(&g) {}

  NodeId num_nodes() const { return g_->num_nodes(); }
  uint32_t Degree(NodeId v) const { return g_->Degree(v); }
  bool Adjacent(NodeId u, NodeId v) const { return g_->HasEdge(u, v); }

  /// out = sorted intersection of N(v) with the sorted `set`.
  void IntersectNeighbors(NodeId v, const std::vector<NodeId>& set,
                          std::vector<NodeId>* out) const;

  /// |N(v) n set| for sorted `set`.
  size_t CountNeighborsIn(NodeId v, const std::vector<NodeId>& set) const;

 private:
  const Graph* g_;
};

/// Dense-matrix backend: O(1) adjacency tests, O(|set|) intersections.
class MatrixStorage {
 public:
  explicit MatrixStorage(const Graph& g);

  NodeId num_nodes() const { return matrix_.num_nodes(); }
  uint32_t Degree(NodeId v) const { return degree_[v]; }
  bool Adjacent(NodeId u, NodeId v) const { return matrix_.Adjacent(u, v); }

  void IntersectNeighbors(NodeId v, const std::vector<NodeId>& set,
                          std::vector<NodeId>* out) const;

  size_t CountNeighborsIn(NodeId v, const std::vector<NodeId>& set) const;

 private:
  AdjacencyMatrix matrix_;
  std::vector<uint32_t> degree_;
};

}  // namespace mce

#endif  // MCE_MCE_STORAGE_H_
