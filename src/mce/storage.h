// Storage backends for the MCE algorithms (Section 4).
//
// The paper evaluates each algorithm over three graph representations:
// adjacency lists, dense adjacency matrices, and bitset rows. ListStorage
// and MatrixStorage share a duck-typed interface consumed by the generic
// recursion in pivoter.h; the bitset backend has its own recursion (sets are
// Bitsets, intersections are word-parallel ANDs) in pivoter.h as well.

#ifndef MCE_MCE_STORAGE_H_
#define MCE_MCE_STORAGE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/views.h"

namespace mce {

/// MCE algorithm selector (the four variants of Section 4 + the reference).
enum class Algorithm : uint8_t {
  kBKPivot = 0,  // Bron-Kerbosch, pivot = highest-degree node of P
  kTomita = 1,   // pivot in P u X maximizing |N(u) n P|
  kEppstein = 2, // degeneracy-ordered outer loop, Tomita pivot inside
  kXPivot = 3,   // this paper's variant: pivot drawn from X
  kNaive = 4,    // pivotless reference (tests only)
};

/// Graph representation selector.
enum class StorageKind : uint8_t {
  kAdjacencyList = 0,
  kMatrix = 1,
  kBitset = 2,
};

const char* ToString(Algorithm a);
const char* ToString(StorageKind s);

/// "Matrix/Tomita"-style label used by the benchmark tables.
std::string ComboName(StorageKind s, Algorithm a);

/// Saturating uint64 arithmetic for byte estimates: overflow clamps to
/// UINT64_MAX instead of wrapping, so a >2^32-node matrix estimate reads
/// "infeasible" rather than a small garbage number.
uint64_t SaturatingAdd(uint64_t a, uint64_t b);
uint64_t SaturatingMul(uint64_t a, uint64_t b);

/// Approximate bytes needed to materialize `storage` for an n-node graph
/// with m undirected edges. Used by benches to skip infeasible combos and
/// by the execution engine's MemoryBudget workspace charges. Saturates to
/// UINT64_MAX on overflow.
uint64_t EstimateStorageBytes(uint64_t n, uint64_t m, StorageKind storage);

/// Adjacency-list backend: a thin view over the CSR Graph (no copy).
/// Intersections run on sorted ranges; the candidate sets passed in must be
/// sorted, which the generic recursion maintains. When one side of an
/// intersection is much shorter than the other, the implementation gallops
/// (exponential + binary search) through the longer side instead of merging
/// linearly — the common case inside blocks, where N(v) is far shorter than
/// the candidate set.
class ListStorage {
 public:
  explicit ListStorage(const Graph& g) : g_(&g) {}

  NodeId num_nodes() const { return g_->num_nodes(); }
  uint32_t Degree(NodeId v) const { return g_->Degree(v); }
  bool Adjacent(NodeId u, NodeId v) const { return g_->HasEdge(u, v); }
  std::span<const NodeId> Neighbors(NodeId v) const {
    return g_->Neighbors(v);
  }

  /// |{u in N(v) : mark[u] != 0}| — the membership-flag counterpart of
  /// CountNeighborsIn, a branchless sum along the neighbor list. `mark`
  /// must be indexable by every node id. Only list-backed storage offers
  /// this; its presence is what opts the generic recursion into the
  /// flag-based fast path (see pivoter.cc).
  size_t CountNeighborsMarked(NodeId v, const uint8_t* mark) const {
    size_t count = 0;
    for (NodeId u : g_->Neighbors(v)) count += mark[u];
    return count;
  }

  /// out = sorted intersection of N(v) with the sorted `set`.
  void IntersectNeighbors(NodeId v, std::span<const NodeId> set,
                          std::vector<NodeId>* out) const;

  /// out = sorted N(v) n (a u b), where `a` and `b` are sorted and
  /// disjoint. This is the recursion's child-set primitive: the parent's
  /// candidate set lives as two sorted pieces (see pivoter.h), and the
  /// union is intersected without ever materializing it.
  void IntersectNeighborsUnion(NodeId v, std::span<const NodeId> a,
                               std::span<const NodeId> b,
                               std::vector<NodeId>* out) const;

  /// |N(v) n set| for sorted `set`.
  size_t CountNeighborsIn(NodeId v, std::span<const NodeId> set) const;

  /// Splits sorted `p` into pivot neighbors (`kept`) and non-neighbors
  /// (`ext`, which includes the pivot itself when present), preserving
  /// order. One merge-walk of p against N(pivot) instead of |p| binary
  /// searches.
  void PartitionByPivot(NodeId pivot, std::span<const NodeId> p,
                        std::vector<NodeId>* kept,
                        std::vector<NodeId>* ext) const;

 private:
  const Graph* g_;
};

/// Dense-matrix backend: O(1) adjacency tests, O(|set|) intersections.
class MatrixStorage {
 public:
  /// Empty storage; fill with Assign().
  MatrixStorage() = default;
  explicit MatrixStorage(const Graph& g) { Assign(g); }

  /// Rebuilds for `g`, reusing matrix and degree storage (grow-only; see
  /// AdjacencyMatrix::Assign).
  void Assign(const Graph& g);

  NodeId num_nodes() const { return matrix_.num_nodes(); }
  uint32_t Degree(NodeId v) const { return degree_[v]; }
  bool Adjacent(NodeId u, NodeId v) const { return matrix_.Adjacent(u, v); }

  void IntersectNeighbors(NodeId v, std::span<const NodeId> set,
                          std::vector<NodeId>* out) const;

  /// See ListStorage::IntersectNeighborsUnion.
  void IntersectNeighborsUnion(NodeId v, std::span<const NodeId> a,
                               std::span<const NodeId> b,
                               std::vector<NodeId>* out) const;

  size_t CountNeighborsIn(NodeId v, std::span<const NodeId> set) const;

  /// See ListStorage::PartitionByPivot; here each element is one O(1)
  /// adjacency test.
  void PartitionByPivot(NodeId pivot, std::span<const NodeId> p,
                        std::vector<NodeId>* kept,
                        std::vector<NodeId>* ext) const;

 private:
  AdjacencyMatrix matrix_;
  std::vector<uint32_t> degree_;
};

}  // namespace mce

#endif  // MCE_MCE_STORAGE_H_
