// Unified entry points for maximal clique enumeration.
//
// Dispatches an (algorithm, storage) combination — the unit the paper's
// decision tree selects per block — and provides the seeded form used by
// BLOCK-ANALYSIS (Algorithm 4), which enumerates cliques that contain a
// given kernel node while excluding already-visited nodes.

#ifndef MCE_MCE_ENUMERATOR_H_
#define MCE_MCE_ENUMERATOR_H_

#include <vector>

#include "graph/graph.h"
#include "mce/clique.h"
#include "mce/storage.h"

namespace mce {

/// Options selecting the data-structure/algorithm combination.
struct MceOptions {
  Algorithm algorithm = Algorithm::kTomita;
  StorageKind storage = StorageKind::kAdjacencyList;
};

/// Emits every maximal clique of `g` exactly once.
///
/// kMatrix and kBitset materialize O(n^2)-bit structures; callers are
/// responsible for keeping n within memory (the decomposition guarantees
/// this for blocks; see EstimateStorageBytes).
void EnumerateMaximalCliques(const Graph& g, const MceOptions& options,
                             const CliqueCallback& emit);

/// Convenience wrapper collecting into a canonicalized CliqueSet.
CliqueSet EnumerateToSet(const Graph& g, const MceOptions& options);

/// The algorithm EnumerateSeeded actually runs for `requested`: kEppstein
/// has no seeded form (its contribution is the outer vertex ordering,
/// which the seed fixes) and kNaive has no (P, X) recursion, so both run
/// the Tomita recursion, matching the paper's use of a generic MCE(k, P, V)
/// procedure inside blocks. All other algorithms run as requested. Callers
/// that report which combination ran (BlockAnalysisResult::used, the
/// Table-1 benches, decision-tree training) must attribute the result to
/// this algorithm, not to the requested one.
Algorithm SeededAlgorithmFor(Algorithm requested);

/// Seeded enumeration: emits every clique C with seed in C, C n X empty,
/// and C maximal within {seed} u P u X — exactly procedure MCE(k, P, V) of
/// Algorithm 4. `p` and `x` must be subsets of N(seed), sorted, disjoint.
/// Runs SeededAlgorithmFor(options.algorithm).
void EnumerateSeeded(const Graph& g, const MceOptions& options, NodeId seed,
                     std::vector<NodeId> p, std::vector<NodeId> x,
                     const CliqueCallback& emit);

}  // namespace mce

#endif  // MCE_MCE_ENUMERATOR_H_
