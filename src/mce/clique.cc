#include "mce/clique.h"

#include <algorithm>

#include "util/check.h"

namespace mce {

void CliqueSet::Add(std::span<const NodeId> clique) {
  Clique c(clique.begin(), clique.end());
  Add(std::move(c));
}

void CliqueSet::Add(Clique clique) {
  std::sort(clique.begin(), clique.end());
  cliques_.push_back(std::move(clique));
}

void CliqueSet::Merge(CliqueSet&& other) {
  cliques_.insert(cliques_.end(),
                  std::make_move_iterator(other.cliques_.begin()),
                  std::make_move_iterator(other.cliques_.end()));
  other.cliques_.clear();
}

void CliqueSet::Canonicalize() {
  std::sort(cliques_.begin(), cliques_.end());
  cliques_.erase(std::unique(cliques_.begin(), cliques_.end()),
                 cliques_.end());
}

size_t CliqueSet::MaxCliqueSize() const {
  size_t best = 0;
  for (const Clique& c : cliques_) best = std::max(best, c.size());
  return best;
}

double CliqueSet::AverageCliqueSize() const {
  if (cliques_.empty()) return 0.0;
  uint64_t total = 0;
  for (const Clique& c : cliques_) total += c.size();
  return static_cast<double>(total) / static_cast<double>(cliques_.size());
}

CliqueCallback CliqueSet::Collector() {
  return [this](std::span<const NodeId> c) { Add(c); };
}

bool CliqueSet::Equal(CliqueSet& a, CliqueSet& b) {
  a.Canonicalize();
  b.Canonicalize();
  return a.cliques() == b.cliques();
}

bool IsClique(const Graph& g, std::span<const NodeId> nodes) {
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t j = i + 1; j < nodes.size(); ++j) {
      if (!g.HasEdge(nodes[i], nodes[j])) return false;
    }
  }
  return true;
}

std::vector<NodeId> CommonNeighbors(const Graph& g,
                                    std::span<const NodeId> nodes) {
  MCE_CHECK(!nodes.empty());
  // Start from the smallest neighbor list and intersect the rest into it.
  size_t smallest = 0;
  for (size_t i = 1; i < nodes.size(); ++i) {
    if (g.Degree(nodes[i]) < g.Degree(nodes[smallest])) smallest = i;
  }
  auto seed = g.Neighbors(nodes[smallest]);
  std::vector<NodeId> common(seed.begin(), seed.end());
  std::vector<NodeId> next;
  for (size_t i = 0; i < nodes.size() && !common.empty(); ++i) {
    if (i == smallest) continue;
    auto nbrs = g.Neighbors(nodes[i]);
    next.clear();
    std::set_intersection(common.begin(), common.end(), nbrs.begin(),
                          nbrs.end(), std::back_inserter(next));
    common.swap(next);
  }
  // Drop the clique's own members (a member is never its own neighbor, but
  // it can be a common neighbor of the *other* members).
  std::vector<NodeId> members(nodes.begin(), nodes.end());
  std::sort(members.begin(), members.end());
  std::vector<NodeId> out;
  std::set_difference(common.begin(), common.end(), members.begin(),
                      members.end(), std::back_inserter(out));
  return out;
}

bool IsMaximalClique(const Graph& g, std::span<const NodeId> nodes) {
  if (nodes.empty()) return g.num_nodes() == 0;
  if (!IsClique(g, nodes)) return false;
  return CommonNeighbors(g, nodes).empty();
}

}  // namespace mce
