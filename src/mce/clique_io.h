// Clique-set persistence: the plain-text interchange format the CLI and
// downstream pipelines use — one clique per line, space-separated sorted
// node ids.

#ifndef MCE_MCE_CLIQUE_IO_H_
#define MCE_MCE_CLIQUE_IO_H_

#include <string>

#include "mce/clique.h"
#include "util/status.h"

namespace mce {

/// Writes one clique per line ("v1 v2 v3 ..."), in the set's order.
Status WriteCliques(const CliqueSet& cliques, const std::string& path);

/// Reads the format back. Blank lines and '#' comments are skipped; node
/// ids are validated to 32 bits.
Result<CliqueSet> ReadCliques(const std::string& path);

}  // namespace mce

#endif  // MCE_MCE_CLIQUE_IO_H_
