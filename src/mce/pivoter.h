// Generic Bron-Kerbosch recursion with pluggable pivot rules.
//
// All four algorithm variants of Section 4 share the BK skeleton
//   extend(R, P, X):
//     if P and X empty: report R
//     pick pivot u in P u X; for each v in P \ N(u):
//       extend(R + v, P n N(v), X n N(v)); move v from P to X
// and differ only in the pivot choice:
//   BKPivot  — highest-degree node of P (Bron-Kerbosch 1973, version 2)
//   Tomita   — node of P u X maximizing |N(u) n P| (Tomita et al. 2006)
//   XPivot   — this paper's variant: the maximizing node is drawn from the
//              set X of already-visited nodes (falling back to P when X is
//              empty). The paper prints "N(u) u P" but, as with Tomita, the
//              quantity that prunes is the intersection; we maximize
//              |N(u) n P|.
// Eppstein is an outer-loop ordering (see enumerator.cc) whose inner
// recursion is Tomita's.
//
// Two set representations are provided: sorted vectors (for the List and
// Matrix storages) and Bitsets (for the BitSets storage).

#ifndef MCE_MCE_PIVOTER_H_
#define MCE_MCE_PIVOTER_H_

#include <cstdint>
#include <vector>

#include "graph/views.h"
#include "mce/clique.h"
#include "mce/storage.h"
#include "util/bitset.h"

namespace mce {

/// Pivot selection rule implementing the algorithm variants above.
enum class PivotRule : uint8_t {
  kMaxDegree = 0,        // BKPivot
  kMaxIntersection = 1,  // Tomita (and Eppstein's inner recursion)
  kVisitedFirst = 2,     // XPivot
};

/// Maps an algorithm to its pivot rule. kEppstein maps to kMaxIntersection
/// (its outer ordering is handled by the caller); kNaive is not a pivoting
/// algorithm and must not be passed here.
PivotRule RuleFor(Algorithm algorithm);

/// Runs the BK recursion over sorted-vector sets. `r` is the clique under
/// construction (reported cliques are r + recursion additions), `p` and `x`
/// must be sorted and disjoint, and every node of `p`/`x` must be adjacent
/// to every node of `r`. Storage is ListStorage or MatrixStorage.
template <typename Storage>
void RunVectorMce(const Storage& storage, PivotRule rule,
                  std::vector<NodeId> r, std::vector<NodeId> p,
                  std::vector<NodeId> x, const CliqueCallback& emit);

extern template void RunVectorMce<ListStorage>(const ListStorage&, PivotRule,
                                               std::vector<NodeId>,
                                               std::vector<NodeId>,
                                               std::vector<NodeId>,
                                               const CliqueCallback&);
extern template void RunVectorMce<MatrixStorage>(const MatrixStorage&,
                                                 PivotRule,
                                                 std::vector<NodeId>,
                                                 std::vector<NodeId>,
                                                 std::vector<NodeId>,
                                                 const CliqueCallback&);

/// Bitset-set variant of the same recursion. `p`/`x` are node-indexed
/// bitsets of size bg.num_nodes().
void RunBitsetMce(const BitsetGraph& bg, PivotRule rule, std::vector<NodeId> r,
                  Bitset p, Bitset x, const CliqueCallback& emit);

}  // namespace mce

#endif  // MCE_MCE_PIVOTER_H_
