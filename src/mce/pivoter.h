// Generic Bron-Kerbosch recursion with pluggable pivot rules.
//
// All four algorithm variants of Section 4 share the BK skeleton
//   extend(R, P, X):
//     if P and X empty: report R
//     pick pivot u in P u X; for each v in P \ N(u):
//       extend(R + v, P n N(v), X n N(v)); move v from P to X
// and differ only in the pivot choice:
//   BKPivot  — highest-degree node of P (Bron-Kerbosch 1973, version 2)
//   Tomita   — node of P u X maximizing |N(u) n P| (Tomita et al. 2006)
//   XPivot   — this paper's variant: the maximizing node is drawn from the
//              set X of already-visited nodes (falling back to P when X is
//              empty). The paper prints "N(u) u P" but, as with Tomita, the
//              quantity that prunes is the intersection; we maximize
//              |N(u) n P|.
// Eppstein is an outer-loop ordering (see enumerator.cc) whose inner
// recursion is Tomita's.
//
// Two set representations are provided: sorted vectors (for the List and
// Matrix storages) and Bitsets (for the BitSets storage).
//
// The recursion is allocation-free in steady state. Working sets live in a
// depth-indexed scratch pool (mce/workspace.h) instead of per-call vectors,
// and the "move v from P to X" step never mutates a set: the candidate set
// is stably partitioned once per node into [kept | ext] (pivot neighbors
// vs branch candidates), and during the branch loop the live sets are
//   P = kept u ext[i..)      X = x u ext[0..i)
// so advancing the partition point i *is* the move. Child sets are built
// straight from those sorted pieces: list-backed storage walks N(v) probing
// frame-local membership flags of the live sets (one pass builds both
// children), and matrix storage merges the pieces with
// IntersectNeighborsUnion.

#ifndef MCE_MCE_PIVOTER_H_
#define MCE_MCE_PIVOTER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/views.h"
#include "mce/clique.h"
#include "mce/storage.h"
#include "mce/workspace.h"
#include "util/bitset.h"

namespace mce {

/// Pivot selection rule implementing the algorithm variants above.
enum class PivotRule : uint8_t {
  kMaxDegree = 0,        // BKPivot
  kMaxIntersection = 1,  // Tomita (and Eppstein's inner recursion)
  kVisitedFirst = 2,     // XPivot
};

/// Maps an algorithm to its pivot rule. kEppstein maps to kMaxIntersection
/// (its outer ordering is handled by the caller); kNaive is not a pivoting
/// algorithm and must not be passed here.
PivotRule RuleFor(Algorithm algorithm);

/// Reusable BK runner over sorted-vector sets; Storage is ListStorage or
/// MatrixStorage. Construct once per storage (e.g. per block) and call Run
/// once per seed: the scratch pool persists across calls, so every call
/// after the first is allocation-free. Pass an external scratch to share
/// one pool across runners (e.g. across the blocks a worker processes);
/// with the default nullptr the runner owns a private pool. Not
/// thread-safe and not reentrant (Run must not be called from the emit
/// callback).
template <typename Storage>
class VectorMceRunner {
 public:
  /// `scratch`, when non-null, must outlive the runner. Constructing with
  /// an external scratch performs no allocation (the private pool is only
  /// materialized when none is supplied).
  explicit VectorMceRunner(const Storage& storage, PivotRule rule,
                           VectorMceScratch* scratch = nullptr)
      : storage_(storage),
        rule_(rule),
        owned_(scratch != nullptr ? nullptr : new VectorMceScratch),
        scratch_(scratch != nullptr ? scratch : owned_.get()) {}

  /// Runs the recursion. `r` is the clique under construction (reported
  /// cliques are r + recursion additions), `p` and `x` must be sorted and
  /// disjoint, and every node of `p`/`x` must be adjacent to every node of
  /// `r`. The spans are only read during the call; the span passed to
  /// `emit` is owned by the scratch pool and is invalidated by the next
  /// emission — callbacks must copy what they keep.
  void Run(std::span<const NodeId> r, std::span<const NodeId> p,
           std::span<const NodeId> x, const CliqueCallback& emit);

 private:
  static constexpr size_t kPivotScanCap = 2048;

  /// `mark`, when non-null, is the membership-flag view of `p` (see
  /// VectorMceScratch::Frame::in_p); intersection counting then walks
  /// neighbor lists instead of merging sorted ranges.
  NodeId ChoosePivot(std::span<const NodeId> p, std::span<const NodeId> x,
                     const uint8_t* mark) const;
  NodeId BestByIntersection(std::span<const NodeId> p,
                            std::span<const NodeId> x, bool prefer_x_only,
                            const uint8_t* mark) const;
  void Recurse(size_t depth, std::span<const NodeId> p,
               std::span<const NodeId> x);

  const Storage& storage_;
  const PivotRule rule_;
  const std::unique_ptr<VectorMceScratch> owned_;
  VectorMceScratch* const scratch_;
  const CliqueCallback* emit_ = nullptr;
};

extern template class VectorMceRunner<ListStorage>;
extern template class VectorMceRunner<MatrixStorage>;

/// Bitset-set counterpart of VectorMceRunner, with the same reuse
/// contract. Constructing a runner is cheap (the kMaxDegree degree cache
/// is the only precompute), so hoist construction out of per-seed loops
/// and reuse it for every seed of the same BitsetGraph.
class BitsetMceRunner {
 public:
  /// `scratch`, when non-null, must outlive the runner.
  explicit BitsetMceRunner(const BitsetGraph& bg, PivotRule rule,
                           BitsetMceScratch* scratch = nullptr);

  /// `p`/`x` are node-indexed bitsets of size bg.num_nodes(); they are
  /// copied into the scratch pool, not retained. Same emit-span contract
  /// as VectorMceRunner::Run.
  void Run(std::span<const NodeId> r, const Bitset& p, const Bitset& x,
           const CliqueCallback& emit);

 private:
  // Same bounded-scan rationale as the vector runner (see DESIGN.md §6):
  // pivot evaluation must not dominate the recursion on large candidate
  // sets. The cap applies per set (P and X each), matching the vector
  // runner, and the scan short-circuits once the cap is reached.
  static constexpr size_t kPivotScanCap = 2048;

  NodeId ChoosePivot(const Bitset& p, const Bitset& x) const;
  void Recurse(size_t depth, Bitset& p, Bitset& x);

  const BitsetGraph& bg_;
  const PivotRule rule_;
  const std::unique_ptr<BitsetMceScratch> owned_;
  BitsetMceScratch* const scratch_;
  const CliqueCallback* emit_ = nullptr;
};

/// One-shot convenience wrappers over the runners (private scratch per
/// call). Prefer constructing a runner directly when calling in a loop.
template <typename Storage>
void RunVectorMce(const Storage& storage, PivotRule rule,
                  std::vector<NodeId> r, std::vector<NodeId> p,
                  std::vector<NodeId> x, const CliqueCallback& emit);

extern template void RunVectorMce<ListStorage>(const ListStorage&, PivotRule,
                                               std::vector<NodeId>,
                                               std::vector<NodeId>,
                                               std::vector<NodeId>,
                                               const CliqueCallback&);
extern template void RunVectorMce<MatrixStorage>(const MatrixStorage&,
                                                 PivotRule,
                                                 std::vector<NodeId>,
                                                 std::vector<NodeId>,
                                                 std::vector<NodeId>,
                                                 const CliqueCallback&);

/// Bitset-set variant of the same recursion. `p`/`x` are node-indexed
/// bitsets of size bg.num_nodes().
void RunBitsetMce(const BitsetGraph& bg, PivotRule rule, std::vector<NodeId> r,
                  Bitset p, Bitset x, const CliqueCallback& emit);

}  // namespace mce

#endif  // MCE_MCE_PIVOTER_H_
