// Exact maximum clique search (branch and bound with greedy coloring).
//
// Related to but distinct from enumeration: the paper cites the maximum-
// clique solvers of Ostergard [27] and Tomita & Kameda [33] among the
// classic approaches. This is an MCQ/MaxCliqueDyn-style solver: vertices
// are explored in degeneracy order and a greedy coloring of the candidate
// set provides the upper bound that prunes the search. Returns one maximum
// clique (the lexicographically determined one found first).

#ifndef MCE_MCE_MAX_CLIQUE_H_
#define MCE_MCE_MAX_CLIQUE_H_

#include <cstdint>

#include "graph/graph.h"
#include "mce/clique.h"

namespace mce {

struct MaxCliqueResult {
  Clique clique;            // sorted members of a maximum clique
  uint64_t branches = 0;    // search-tree nodes explored
};

/// Finds a maximum clique of `g`. `lower_bound` (optional) seeds the bound
/// — pass the size of any known clique to prune harder; the result is
/// empty when the graph has no clique of size > lower_bound.
MaxCliqueResult FindMaximumClique(const Graph& g, size_t lower_bound = 0);

/// The clique number omega(g) — size of the largest clique.
size_t CliqueNumber(const Graph& g);

}  // namespace mce

#endif  // MCE_MCE_MAX_CLIQUE_H_
