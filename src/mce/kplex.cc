#include "mce/kplex.h"

#include <algorithm>
#include <vector>

#include "graph/views.h"
#include "util/check.h"

namespace mce {

namespace {

/// DFS state for the increasing-order k-plex enumeration.
class KPlexEnumerator {
 public:
  KPlexEnumerator(const Graph& g, const KPlexOptions& options,
                  const CliqueCallback& emit)
      : g_(g), bg_(g), options_(options), emit_(emit),
        in_r_(g.num_nodes(), 0), nbrs_in_r_(g.num_nodes(), 0) {}

  void Run() {
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      Push(v);
      Grow();
      Pop(v);
    }
  }

 private:
  /// |R| - count of R-neighbors of v must stay <= k - 1 for v itself, and
  /// every member's in-R neighbor count must stay >= |R| + 1 - k.
  bool Addable(NodeId v) const {
    if (in_r_[v]) return false;
    const uint32_t size = static_cast<uint32_t>(r_.size());
    if (nbrs_in_r_[v] + options_.k < size + 1) return false;
    const Bitset& row = bg_.Row(v);
    for (NodeId u : r_) {
      const uint32_t adj = row.Test(u) ? 1 : 0;
      if (nbrs_in_r_[u] + adj + options_.k < size + 1) return false;
    }
    return true;
  }

  void Push(NodeId v) {
    r_.push_back(v);
    in_r_[v] = 1;
    bg_.Row(v).ForEach([this](size_t u) { ++nbrs_in_r_[u]; });
  }

  void Pop(NodeId v) {
    bg_.Row(v).ForEach([this](size_t u) { --nbrs_in_r_[u]; });
    in_r_[v] = 0;
    r_.pop_back();
  }

  void Grow() {
    // R is maximal iff no vertex is addable; canonical extensions are the
    // addable vertices greater than max(R) = r_.back() (R grows sorted).
    bool any_addable = false;
    const NodeId frontier = r_.back();
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      if (!Addable(v)) continue;
      any_addable = true;
      if (v <= frontier) continue;
      Push(v);
      Grow();
      Pop(v);
    }
    if (!any_addable && r_.size() >= options_.min_size) emit_(r_);
  }

  const Graph& g_;
  BitsetGraph bg_;
  const KPlexOptions& options_;
  const CliqueCallback& emit_;
  std::vector<NodeId> r_;
  std::vector<uint8_t> in_r_;
  std::vector<uint32_t> nbrs_in_r_;
};

}  // namespace

bool IsKPlex(const Graph& g, std::span<const NodeId> nodes, uint32_t k) {
  MCE_CHECK_GE(k, 1u);
  const size_t size = nodes.size();
  for (NodeId v : nodes) {
    size_t inside = 0;
    for (NodeId u : nodes) {
      if (u != v && g.HasEdge(u, v)) ++inside;
    }
    if (inside + k < size) return false;
  }
  return true;
}

bool IsMaximalKPlex(const Graph& g, std::span<const NodeId> nodes,
                    uint32_t k) {
  if (!IsKPlex(g, nodes, k)) return false;
  std::vector<NodeId> extended(nodes.begin(), nodes.end());
  for (NodeId w = 0; w < g.num_nodes(); ++w) {
    if (std::find(nodes.begin(), nodes.end(), w) != nodes.end()) continue;
    extended.push_back(w);
    const bool grows = IsKPlex(g, extended, k);
    extended.pop_back();
    if (grows) return false;
  }
  return true;
}

void EnumerateMaximalKPlexes(const Graph& g, const KPlexOptions& options,
                             const CliqueCallback& emit) {
  MCE_CHECK_GE(options.k, 1u);
  if (g.num_nodes() == 0) return;
  KPlexEnumerator enumerator(g, options, emit);
  enumerator.Run();
}

CliqueSet EnumerateMaximalKPlexesToSet(const Graph& g,
                                       const KPlexOptions& options) {
  CliqueSet out;
  EnumerateMaximalKPlexes(g, options, out.Collector());
  out.Canonicalize();
  return out;
}

}  // namespace mce
