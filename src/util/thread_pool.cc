#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace mce {

namespace {

thread_local size_t current_worker_index = ThreadPool::kNotAWorker;

}  // namespace

size_t ThreadPool::CurrentWorkerIndex() { return current_worker_index; }

struct ThreadPool::Completion::State {
  std::mutex mutex;
  ThreadPool* pool = nullptr;
  size_t remaining = 0;
  std::vector<std::function<void()>> deferred;
};

ThreadPool::Completion::Completion() = default;
ThreadPool::Completion::Completion(const Completion&) = default;
ThreadPool::Completion::Completion(Completion&&) noexcept = default;
ThreadPool::Completion& ThreadPool::Completion::operator=(const Completion&) =
    default;
ThreadPool::Completion& ThreadPool::Completion::operator=(
    Completion&&) noexcept = default;
ThreadPool::Completion::~Completion() = default;

void ThreadPool::Completion::Signal() {
  MCE_CHECK(state_ != nullptr);
  std::vector<std::function<void()>> ready;
  ThreadPool* pool = nullptr;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    MCE_CHECK(state_->remaining > 0);
    if (--state_->remaining > 0) return;
    ready.swap(state_->deferred);
    pool = state_->pool;
  }
  for (std::function<void()>& task : ready) pool->Submit(std::move(task));
}

bool ThreadPool::Completion::triggered() const {
  MCE_CHECK(state_ != nullptr);
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->remaining == 0;
}

ThreadPool::Completion ThreadPool::CreateCompletion(size_t signals) {
  Completion token;
  token.state_ = std::make_shared<Completion::State>();
  token.state_->pool = this;
  token.state_->remaining = signals;
  return token;
}

void ThreadPool::SubmitAfter(const Completion& token,
                             std::function<void()> task) {
  MCE_CHECK(token.state_ != nullptr);
  MCE_CHECK(token.state_->pool == this);
  MCE_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(token.state_->mutex);
    if (token.state_->remaining > 0) {
      token.state_->deferred.push_back(std::move(task));
      return;
    }
  }
  Submit(std::move(task));
}

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  MCE_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MCE_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
    if (obs::MetricsRegistry* m = obs::MetricsRegistry::installed()) {
      if (m != metrics_registry_) {
        static const double kDepthBounds[] = {1,  2,   4,   8,   16,  32,
                                              64, 128, 256, 512, 1024};
        metrics_registry_ = m;
        queue_depth_ =
            &m->GetHistogram("threadpool.queue_depth_at_dispatch",
                             kDepthBounds);
      }
      queue_depth_->Observe(static_cast<double>(queue_.size()));
    }
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  current_worker_index = worker_index;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // Trace the wait as a worker-idle span, but only when the worker
    // actually blocks and a recorder is installed for the whole wait.
    obs::TraceRecorder* recorder = nullptr;
    int64_t idle_begin_us = 0;
    if (queue_.empty() && !shutdown_) {
      recorder = obs::TraceRecorder::installed();
      if (recorder != nullptr) idle_begin_us = obs::NowMicros();
    }
    task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (recorder != nullptr && obs::TraceRecorder::installed() == recorder) {
      obs::TraceEvent idle;
      idle.begin_us = idle_begin_us;
      idle.end_us = obs::NowMicros();
      idle.kind = obs::SpanKind::kWorkerIdle;
      idle.index = worker_index;
      recorder->Record(idle);
    }
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) all_done_.notify_all();
  }
}

}  // namespace mce
