// Deterministic pseudo-random number generation.
//
// All stochastic components (graph generators, schedulers, samplers) take an
// explicit Rng so every experiment in the paper reproduction is replayable
// from a seed. The engine is xoshiro256**, seeded via SplitMix64.

#ifndef MCE_UTIL_RANDOM_H_
#define MCE_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace mce {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
uint64_t SplitMix64(uint64_t* state);

/// xoshiro256** generator. Copyable (forking a stream is deliberate and
/// cheap); identical seeds yield identical streams on every platform.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be positive. Uses rejection
  /// sampling, so there is no modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->size() < 2) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      using std::swap;
      swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (Floyd's algorithm); the result
  /// order is unspecified but deterministic. Requires k <= n.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

 private:
  uint64_t s_[4];
};

}  // namespace mce

#endif  // MCE_UTIL_RANDOM_H_
