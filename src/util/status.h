// Status / Result error-handling primitives (Arrow/RocksDB style).
//
// The library does not throw exceptions. Fallible operations (I/O, parsing,
// configuration validation) return a Status, or a Result<T> when they also
// produce a value. Algorithmic preconditions that indicate programmer error
// are enforced with MCE_CHECK (see util/check.h) and abort.

#ifndef MCE_UTIL_STATUS_H_
#define MCE_UTIL_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace mce {

// Broad error categories; the message carries the detail.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kIoError = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kOutOfRange = 5,
  kFailedPrecondition = 6,
  kResourceExhausted = 7,
  kInternal = 8,
};

/// Returns a human-readable name for `code` ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus a message for non-OK.
class Status {
 public:
  /// Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or a non-OK Status. Access to the value when
/// holding an error aborts, so callers must test ok() first (or use
/// ValueOr / MCE_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  // Implicit construction from a value or from an error Status keeps
  // `return value;` / `return Status::IoError(...);` ergonomic, mirroring
  // arrow::Result. NOLINT(google-explicit-constructor) on both.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the error status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(payload_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(payload_);
  }
  T&& value() && {
    AbortIfError();
    return std::move(std::get<T>(payload_));
  }

  /// Returns the held value, or `fallback` when holding an error.
  T ValueOr(T fallback) const& {
    if (ok()) return std::get<T>(payload_);
    return fallback;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<T, Status> payload_;
};

namespace internal {
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResultAccess(std::get<Status>(payload_));
}

/// Propagates a non-OK Status out of the enclosing function.
#define MCE_RETURN_NOT_OK(expr)                  \
  do {                                           \
    ::mce::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (false)

#define MCE_CONCAT_IMPL(a, b) a##b
#define MCE_CONCAT(a, b) MCE_CONCAT_IMPL(a, b)

/// MCE_ASSIGN_OR_RETURN(lhs, rexpr): evaluates `rexpr` (a Result<T>); on
/// error returns the Status, otherwise move-assigns the value into `lhs`.
#define MCE_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  MCE_ASSIGN_OR_RETURN_IMPL(MCE_CONCAT(_res_, __LINE__), lhs, rexpr)

#define MCE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

}  // namespace mce

#endif  // MCE_UTIL_STATUS_H_
