// MemoryBudget — lock-free byte accounting for the execution engine.
//
// The budget tracks the bytes the pipeline has deliberately materialized:
// the pipeline graph's resident CSR, per-level induced subgraphs, block
// subgraphs, MCE analysis workspaces, and clique-sink buffers. Charges and
// releases are relaxed atomics (sub-nanosecond on the hot path); `peak()`
// is maintained with a CAS loop so RunStats can report the high-water mark
// even on unlimited runs.
//
// A limit of 0 means "track only, never constrain". With a limit set,
// `WouldExceed()` answers the PooledExecutor's admission question: would
// starting work that pins `bytes` more push the tracked total past the
// budget? The budget itself never blocks — admission policy (including the
// guarantee that at least one analysis always proceeds) lives in the
// executor.

#ifndef MCE_UTIL_MEMORY_BUDGET_H_
#define MCE_UTIL_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace mce {

class MemoryBudget {
 public:
  /// `limit_bytes` of 0 disables the constraint (tracking still runs).
  explicit MemoryBudget(uint64_t limit_bytes = 0) : limit_(limit_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  uint64_t limit() const { return limit_; }
  bool limited() const { return limit_ > 0; }

  void Charge(uint64_t bytes) {
    if (bytes == 0) return;
    const uint64_t now =
        charged_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
  }

  void Release(uint64_t bytes) {
    if (bytes == 0) return;
    charged_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Whether charging `bytes` more would push the total past the limit.
  /// Always false when unlimited. Advisory: concurrent charges may still
  /// interleave past the limit; the executor serializes admission.
  bool WouldExceed(uint64_t bytes) const {
    return limit_ > 0 &&
           charged_.load(std::memory_order_relaxed) + bytes > limit_;
  }

  uint64_t charged() const { return charged_.load(std::memory_order_relaxed); }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  const uint64_t limit_;
  std::atomic<uint64_t> charged_{0};
  std::atomic<uint64_t> peak_{0};
};

/// Parses a human byte size: a non-negative integer with an optional
/// K/M/G/T suffix (case-insensitive, binary multiples, optional trailing
/// "B" or "iB" — "64K", "16MiB", "2g", "4096"). InvalidArgument on
/// malformed input, OutOfRange when the product overflows uint64.
Result<uint64_t> ParseByteSize(const std::string& text);

}  // namespace mce

#endif  // MCE_UTIL_MEMORY_BUDGET_H_
