#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace mce {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

/// Elapsed seconds since the first logging use of the process — the same
/// steady_clock timebase the trace recorder and heartbeat stream run on,
/// so interleaved executor logs correlate with those timestamps.
double ElapsedSeconds() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

/// Compact per-thread id: threads number themselves in first-log order
/// (t0, t1, ...), which reads better across an 8-thread interleave than
/// opaque pthread handles.
int ThreadLogId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    // Trim the path to the basename to keep lines short.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    // Monotonic elapsed stamp + thread id lead the line so interleaved
    // multi-worker logs sort and correlate with trace/heartbeat
    // timestamps (same steady_clock timebase).
    char stamp[48];
    std::snprintf(stamp, sizeof(stamp), "[%.3fs t%d ", ElapsedSeconds(),
                  ThreadLogId());
    stream_ << stamp << LevelName(level_) << " " << base << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << '\n';
    // One fwrite for the whole line: stdio locks the stream per call, so
    // concurrent loggers never interleave within a line.
    const std::string line = stream_.str();
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

}  // namespace internal
}  // namespace mce
