#include "util/bitset.h"

#include <algorithm>

namespace mce {

void Bitset::Reset() { std::fill(words_.begin(), words_.end(), 0); }

void Bitset::Reinit(size_t size) {
  size_ = size;
  words_.assign((size + 63) / 64, 0);  // assign never shrinks capacity
}

void Bitset::SetAll() {
  if (size_ == 0) return;
  std::fill(words_.begin(), words_.end(), ~uint64_t{0});
  // Mask off the bits past size_ in the last word so Count() stays exact.
  size_t tail = size_ & 63;
  if (tail != 0) words_.back() &= (uint64_t{1} << tail) - 1;
}

size_t Bitset::Count() const {
  size_t c = 0;
  for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
  return c;
}

bool Bitset::Any() const {
  for (uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

void Bitset::And(const Bitset& other) {
  MCE_DCHECK_EQ(size_, other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void Bitset::Or(const Bitset& other) {
  MCE_DCHECK_EQ(size_, other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void Bitset::AndNot(const Bitset& other) {
  MCE_DCHECK_EQ(size_, other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
}

void Bitset::AssignAnd(const Bitset& a, const Bitset& b) {
  MCE_DCHECK_EQ(a.size_, b.size_);
  size_ = a.size_;
  words_.resize(a.words_.size());  // grow-only: shrinking keeps capacity
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] = a.words_[i] & b.words_[i];
  }
}

size_t Bitset::AndCount(const Bitset& other) const {
  MCE_DCHECK_EQ(size_, other.size_);
  size_t c = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    c += static_cast<size_t>(__builtin_popcountll(words_[i] & other.words_[i]));
  }
  return c;
}

bool Bitset::Intersects(const Bitset& other) const {
  MCE_DCHECK_EQ(size_, other.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

bool Bitset::IsSubsetOf(const Bitset& other) const {
  MCE_DCHECK_EQ(size_, other.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

size_t Bitset::FindFirst() const { return FindNext(0); }

size_t Bitset::FindNext(size_t from) const {
  if (from >= size_) return size_;
  size_t w = from >> 6;
  uint64_t bits = words_[w] & (~uint64_t{0} << (from & 63));
  for (;;) {
    if (bits != 0) {
      size_t i = w * 64 + static_cast<size_t>(__builtin_ctzll(bits));
      return i < size_ ? i : size_;
    }
    if (++w == words_.size()) return size_;
    bits = words_[w];
  }
}

std::vector<uint32_t> Bitset::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  ForEach([&out](size_t i) { out.push_back(static_cast<uint32_t>(i)); });
  return out;
}

}  // namespace mce
