#include "util/random.h"

#include <algorithm>
#include <unordered_set>

namespace mce {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  MCE_CHECK_GT(bound, 0u);
  // Rejection sampling on the top of the range to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 random bits into the mantissa.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  MCE_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<int64_t>(Next());
  return lo + static_cast<int64_t>(NextBounded(span));
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  MCE_CHECK_LE(k, n);
  std::vector<uint64_t> out;
  out.reserve(k);
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(k * 2);
  // Floyd's algorithm: k iterations, each adding one distinct value.
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = NextBounded(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace mce
