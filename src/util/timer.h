// Wall-clock timing helpers used by the benchmark harness and RunStats.

#ifndef MCE_UTIL_TIMER_H_
#define MCE_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace mce {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mce

#endif  // MCE_UTIL_TIMER_H_
