// Fixed-size worker pool for intra-machine parallelism.
//
// The paper's cluster machines each run 4 CPUs x 8 threads and process
// their assigned blocks in parallel; the FindMaxCliques pipeline (decomp)
// uses this pool for the same purpose on the local machine. Tasks are
// opaque std::function<void()>; Wait() drains the queue. Submit is safe
// from any thread, including from inside a running task.
//
// Dependency-aware scheduling: a Completion token counts outstanding
// prerequisite signals; tasks attached with SubmitAfter are enqueued the
// moment the count reaches zero (immediately when it already has). The
// task-graph execution engine (src/exec) uses tokens to chain filter
// stages behind a level's last block task without a pool-wide barrier.

#ifndef MCE_UTIL_THREAD_POOL_H_
#define MCE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mce::obs {
class MetricsRegistry;
class Histogram;
}  // namespace mce::obs

namespace mce {

class ThreadPool {
 public:
  /// A counted completion event. Value-semantic handle; copies share the
  /// same underlying state. Created via CreateCompletion.
  class Completion {
   public:
    Completion();
    Completion(const Completion&);
    Completion(Completion&&) noexcept;
    Completion& operator=(const Completion&);
    Completion& operator=(Completion&&) noexcept;
    ~Completion();

    /// True when the handle refers to a token (default-constructed handles
    /// do not).
    explicit operator bool() const { return state_ != nullptr; }

    /// Records one prerequisite completion. When the outstanding count
    /// reaches zero, every task deferred on this token is enqueued on the
    /// pool, in SubmitAfter order. Signaling more times than the token was
    /// created with is a checked error. Thread-safe.
    void Signal();

    /// Whether all signals have arrived.
    bool triggered() const;

   private:
    friend class ThreadPool;
    struct State;
    std::shared_ptr<State> state_;
  };

  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Index of the calling pool worker in [0, num_threads()), or
  /// kNotAWorker when the caller is not one of this process's pool worker
  /// threads. Used to attribute per-task time to workers (LevelStats).
  static constexpr size_t kNotAWorker = static_cast<size_t>(-1);
  static size_t CurrentWorkerIndex();

  /// Enqueues a task. Never blocks (unbounded queue). Thread-safe.
  void Submit(std::function<void()> task);

  /// Creates a token that triggers after `signals` calls to Signal().
  /// `signals` may be 0, in which case the token is born triggered.
  Completion CreateCompletion(size_t signals);

  /// Enqueues `task` once `token` has triggered — immediately when it
  /// already has, otherwise from the Signal() call that trips it.
  /// Thread-safe. Tasks still deferred on an unsignaled token when the
  /// pool shuts down are destroyed without running; Wait() does not count
  /// deferred tasks until they are enqueued.
  void SubmitAfter(const Completion& token, std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  /// Tasks queued but not yet picked up by a worker. A point-in-time
  /// gauge (telemetry heartbeats); the depth can change before the
  /// caller looks at it.
  size_t QueueDepth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  void WorkerLoop(size_t worker_index);

  mutable std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  // Cached queue-depth histogram handle, revalidated against the installed
  // obs::MetricsRegistry on every Submit (guarded by mutex_); instrument
  // handles are stable for a registry's lifetime, so the lookup happens
  // once per (pool, registry) pair.
  obs::MetricsRegistry* metrics_registry_ = nullptr;
  obs::Histogram* queue_depth_ = nullptr;
  std::vector<std::thread> threads_;
};

}  // namespace mce

#endif  // MCE_UTIL_THREAD_POOL_H_
