// Fixed-size worker pool for intra-machine parallelism.
//
// The paper's cluster machines each run 4 CPUs x 8 threads and process
// their assigned blocks in parallel; the FindMaxCliques pipeline (decomp)
// uses this pool for the same purpose on the local machine. Tasks are
// opaque std::function<void()>; Wait() drains the queue. Submit is safe
// from any thread, including from inside a running task.

#ifndef MCE_UTIL_THREAD_POOL_H_
#define MCE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mce {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Index of the calling pool worker in [0, num_threads()), or
  /// kNotAWorker when the caller is not one of this process's pool worker
  /// threads. Used to attribute per-task time to workers (LevelStats).
  static constexpr size_t kNotAWorker = static_cast<size_t>(-1);
  static size_t CurrentWorkerIndex();

  /// Enqueues a task. Never blocks (unbounded queue). Thread-safe.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

 private:
  void WorkerLoop(size_t worker_index);

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace mce

#endif  // MCE_UTIL_THREAD_POOL_H_
