#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace mce {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Fatal: accessed value of errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace mce
