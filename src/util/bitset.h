// Dynamic fixed-capacity bitset tuned for clique enumeration.
//
// The BitSets storage backend of the MCE algorithms (Section 4 of the paper)
// represents candidate/excluded sets as bitsets and intersects them against
// bitset adjacency rows. The operations that dominate are And/AndCount and
// iteration over set bits, so those are the ones this class optimizes.

#ifndef MCE_UTIL_BITSET_H_
#define MCE_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace mce {

/// Fixed-size (set at construction) bitset over indices [0, size).
class Bitset {
 public:
  Bitset() : size_(0) {}
  explicit Bitset(size_t size) : size_(size), words_((size + 63) / 64, 0) {}

  Bitset(const Bitset&) = default;
  Bitset& operator=(const Bitset&) = default;
  Bitset(Bitset&&) = default;
  Bitset& operator=(Bitset&&) = default;

  size_t size() const { return size_; }

  void Set(size_t i) {
    MCE_DCHECK_LT(i, size_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }

  void Clear(size_t i) {
    MCE_DCHECK_LT(i, size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  bool Test(size_t i) const {
    MCE_DCHECK_LT(i, size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Sets all bits to zero without changing the capacity.
  void Reset();

  /// Re-targets this bitset to `size` indices, all zero. Backing storage is
  /// grow-only: shrinking or re-growing within a previously reached size
  /// performs no heap allocation, which is what lets per-depth scratch
  /// bitsets be recycled across blocks of different sizes.
  void Reinit(size_t size);

  /// Sets bits [0, size) to one.
  void SetAll();

  /// Number of set bits.
  size_t Count() const;

  bool Any() const;
  bool None() const { return !Any(); }

  /// this &= other. Sizes must match.
  void And(const Bitset& other);
  /// this |= other. Sizes must match.
  void Or(const Bitset& other);
  /// this &= ~other. Sizes must match.
  void AndNot(const Bitset& other);

  /// this = a & b in one pass (sizes must match; this is re-targeted).
  /// Fuses the copy-then-And idiom of child-set construction into a single
  /// sweep over the words, reusing this bitset's storage (grow-only).
  void AssignAnd(const Bitset& a, const Bitset& b);

  /// |this & other| without materializing the intersection.
  size_t AndCount(const Bitset& other) const;

  /// True iff (this & other) has at least one set bit.
  bool Intersects(const Bitset& other) const;

  /// True iff every set bit of this is also set in other.
  bool IsSubsetOf(const Bitset& other) const;

  /// Index of the first set bit, or size() when empty.
  size_t FindFirst() const;

  /// Index of the first set bit at position >= from, or size() when none.
  size_t FindNext(size_t from) const;

  /// Calls fn(i) for each set bit in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        unsigned tz = static_cast<unsigned>(__builtin_ctzll(bits));
        fn(w * 64 + tz);
        bits &= bits - 1;
      }
    }
  }

  /// Calls fn(i) for set bits in increasing order while fn returns true;
  /// stops at the first false. Lets bounded scans (e.g. capped pivot
  /// selection) short-circuit instead of walking every remaining word.
  template <typename Fn>
  void ForEachUntil(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        unsigned tz = static_cast<unsigned>(__builtin_ctzll(bits));
        if (!fn(w * 64 + tz)) return;
        bits &= bits - 1;
      }
    }
  }

  /// Calls fn(i) for each set bit of (this & ~other) in increasing order,
  /// word-parallel, without materializing the difference. Sizes must
  /// match.
  template <typename Fn>
  void ForEachDiff(const Bitset& other, Fn&& fn) const {
    MCE_DCHECK_EQ(size_, other.size_);
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w] & ~other.words_[w];
      while (bits != 0) {
        unsigned tz = static_cast<unsigned>(__builtin_ctzll(bits));
        fn(w * 64 + tz);
        bits &= bits - 1;
      }
    }
  }

  /// Materializes the set bits as a sorted vector of indices.
  std::vector<uint32_t> ToVector() const;

  bool operator==(const Bitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  size_t size_;
  std::vector<uint64_t> words_;
};

}  // namespace mce

#endif  // MCE_UTIL_BITSET_H_
