// Dynamic fixed-capacity bitset tuned for clique enumeration.
//
// The BitSets storage backend of the MCE algorithms (Section 4 of the paper)
// represents candidate/excluded sets as bitsets and intersects them against
// bitset adjacency rows. The operations that dominate are And/AndCount and
// iteration over set bits, so those are the ones this class optimizes.

#ifndef MCE_UTIL_BITSET_H_
#define MCE_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace mce {

/// Fixed-size (set at construction) bitset over indices [0, size).
class Bitset {
 public:
  Bitset() : size_(0) {}
  explicit Bitset(size_t size) : size_(size), words_((size + 63) / 64, 0) {}

  Bitset(const Bitset&) = default;
  Bitset& operator=(const Bitset&) = default;
  Bitset(Bitset&&) = default;
  Bitset& operator=(Bitset&&) = default;

  size_t size() const { return size_; }

  void Set(size_t i) {
    MCE_DCHECK_LT(i, size_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }

  void Clear(size_t i) {
    MCE_DCHECK_LT(i, size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  bool Test(size_t i) const {
    MCE_DCHECK_LT(i, size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Sets all bits to zero without changing the capacity.
  void Reset();

  /// Sets bits [0, size) to one.
  void SetAll();

  /// Number of set bits.
  size_t Count() const;

  bool Any() const;
  bool None() const { return !Any(); }

  /// this &= other. Sizes must match.
  void And(const Bitset& other);
  /// this |= other. Sizes must match.
  void Or(const Bitset& other);
  /// this &= ~other. Sizes must match.
  void AndNot(const Bitset& other);

  /// |this & other| without materializing the intersection.
  size_t AndCount(const Bitset& other) const;

  /// True iff (this & other) has at least one set bit.
  bool Intersects(const Bitset& other) const;

  /// True iff every set bit of this is also set in other.
  bool IsSubsetOf(const Bitset& other) const;

  /// Index of the first set bit, or size() when empty.
  size_t FindFirst() const;

  /// Index of the first set bit at position >= from, or size() when none.
  size_t FindNext(size_t from) const;

  /// Calls fn(i) for each set bit in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        unsigned tz = static_cast<unsigned>(__builtin_ctzll(bits));
        fn(w * 64 + tz);
        bits &= bits - 1;
      }
    }
  }

  /// Materializes the set bits as a sorted vector of indices.
  std::vector<uint32_t> ToVector() const;

  bool operator==(const Bitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  size_t size_;
  std::vector<uint64_t> words_;
};

}  // namespace mce

#endif  // MCE_UTIL_BITSET_H_
