// Precondition / invariant checking macros.
//
// MCE_CHECK* fire in all build types: they guard algorithmic invariants whose
// violation means the library has a bug (or the caller broke a documented
// precondition) — continuing would produce wrong cliques silently.
// MCE_DCHECK* compile away in NDEBUG builds and are for hot paths.

#ifndef MCE_UTIL_CHECK_H_
#define MCE_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace mce::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "Check failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace mce::internal

#define MCE_CHECK(cond)                                         \
  do {                                                          \
    if (!(cond)) {                                              \
      ::mce::internal::CheckFailed(#cond, __FILE__, __LINE__);  \
    }                                                           \
  } while (false)

#define MCE_CHECK_EQ(a, b) MCE_CHECK((a) == (b))
#define MCE_CHECK_NE(a, b) MCE_CHECK((a) != (b))
#define MCE_CHECK_LT(a, b) MCE_CHECK((a) < (b))
#define MCE_CHECK_LE(a, b) MCE_CHECK((a) <= (b))
#define MCE_CHECK_GT(a, b) MCE_CHECK((a) > (b))
#define MCE_CHECK_GE(a, b) MCE_CHECK((a) >= (b))

#ifdef NDEBUG
#define MCE_DCHECK(cond) \
  do {                   \
  } while (false)
#else
#define MCE_DCHECK(cond) MCE_CHECK(cond)
#endif

#define MCE_DCHECK_EQ(a, b) MCE_DCHECK((a) == (b))
#define MCE_DCHECK_LT(a, b) MCE_DCHECK((a) < (b))
#define MCE_DCHECK_LE(a, b) MCE_DCHECK((a) <= (b))

#endif  // MCE_UTIL_CHECK_H_
