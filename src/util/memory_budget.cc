#include "util/memory_budget.h"

#include <cctype>
#include <cstdlib>

namespace mce {

Result<uint64_t> ParseByteSize(const std::string& text) {
  size_t pos = 0;
  while (pos < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  if (pos == 0) {
    return Status::InvalidArgument("byte size must start with a digit: '" +
                                   text + "'");
  }
  uint64_t value = 0;
  for (size_t i = 0; i < pos; ++i) {
    const uint64_t digit = static_cast<uint64_t>(text[i] - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::OutOfRange("byte size overflows uint64: '" + text + "'");
    }
    value = value * 10 + digit;
  }
  std::string suffix = text.substr(pos);
  for (char& c : suffix) c = static_cast<char>(std::tolower(c));
  uint64_t shift = 0;
  if (!suffix.empty()) {
    switch (suffix[0]) {
      case 'k': shift = 10; break;
      case 'm': shift = 20; break;
      case 'g': shift = 30; break;
      case 't': shift = 40; break;
      case 'b': shift = 0; break;
      default:
        return Status::InvalidArgument("unknown byte-size suffix: '" + text +
                                       "'");
    }
    const std::string rest = suffix.substr(1);
    const bool ok = shift == 0 ? rest.empty()
                               : (rest.empty() || rest == "b" || rest == "ib");
    if (!ok) {
      return Status::InvalidArgument("unknown byte-size suffix: '" + text +
                                     "'");
    }
  }
  if (shift > 0 && value > (UINT64_MAX >> shift)) {
    return Status::OutOfRange("byte size overflows uint64: '" + text + "'");
  }
  return value << shift;
}

}  // namespace mce
