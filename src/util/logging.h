// Minimal leveled logger.
//
// Usage: MCE_LOG(INFO) << "built " << n << " blocks";
// Severity below the global threshold is compiled to a no-op stream.

#ifndef MCE_UTIL_LOGGING_H_
#define MCE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace mce {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the minimum severity that is emitted. Default: kWarning, so library
/// consumers are quiet unless they opt in.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and flushes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define MCE_LOG_DEBUG \
  ::mce::internal::LogMessage(::mce::LogLevel::kDebug, __FILE__, __LINE__)
#define MCE_LOG_INFO \
  ::mce::internal::LogMessage(::mce::LogLevel::kInfo, __FILE__, __LINE__)
#define MCE_LOG_WARNING \
  ::mce::internal::LogMessage(::mce::LogLevel::kWarning, __FILE__, __LINE__)
#define MCE_LOG_ERROR \
  ::mce::internal::LogMessage(::mce::LogLevel::kError, __FILE__, __LINE__)

#define MCE_LOG(severity) MCE_LOG_##severity

}  // namespace mce

#endif  // MCE_UTIL_LOGGING_H_
