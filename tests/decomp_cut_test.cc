#include "decomp/cut.h"

#include <gtest/gtest.h>

#include "gen/special.h"
#include "test_util.h"

namespace mce::decomp {
namespace {

TEST(CutTest, Figure1ExampleWithMFive) {
  // Section 2: with m = 5 the hub set of the running example is {D, S, E}
  // (degrees 7, 5, 5); everything else is feasible.
  using namespace mce::test;
  Graph g = Figure1Graph();
  CutResult cut = Cut(g, 5);
  EXPECT_EQ(cut.hubs, (std::vector<NodeId>{D, E, S}));
  EXPECT_EQ(cut.feasible.size(), g.num_nodes() - 3);
}

TEST(CutTest, FeasibilityBoundaryIsClosedNeighborhood) {
  // A node of degree d is feasible iff d + 1 <= m.
  Graph g = test::StarGraph(6);  // center degree 5
  EXPECT_TRUE(IsFeasibleNode(g, 0, 6));
  EXPECT_FALSE(IsFeasibleNode(g, 0, 5));
  CutResult at5 = Cut(g, 5);
  EXPECT_EQ(at5.hubs, (std::vector<NodeId>{0}));
  CutResult at6 = Cut(g, 6);
  EXPECT_TRUE(at6.hubs.empty());
}

TEST(CutTest, PartitionIsCompleteAndDisjoint) {
  Graph g = test::Figure1Graph();
  for (uint32_t m : {2u, 3u, 5u, 8u, 100u}) {
    CutResult cut = Cut(g, m);
    EXPECT_EQ(cut.feasible.size() + cut.hubs.size(), g.num_nodes());
    // Ascending and disjoint.
    std::vector<NodeId> all = cut.feasible;
    all.insert(all.end(), cut.hubs.begin(), cut.hubs.end());
    std::sort(all.begin(), all.end());
    for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(all[v], v);
  }
}

TEST(CutTest, LargeMMakesEverythingFeasible) {
  Graph g = gen::Complete(10);
  CutResult cut = Cut(g, 10);  // degree 9, closed neighborhood 10 <= 10
  EXPECT_TRUE(cut.hubs.empty());
}

TEST(CutTest, TinyMMakesEverythingHub) {
  Graph g = gen::Complete(10);
  CutResult cut = Cut(g, 5);
  EXPECT_TRUE(cut.feasible.empty());
  EXPECT_EQ(cut.hubs.size(), 10u);
}

TEST(CutTest, EmptyGraph) {
  CutResult cut = Cut(Graph(), 5);
  EXPECT_TRUE(cut.feasible.empty());
  EXPECT_TRUE(cut.hubs.empty());
}

TEST(CutTest, IsolatedNodesAreAlwaysFeasibleForMGe1) {
  GraphBuilder b;
  b.ReserveNodes(3);
  Graph g = b.Build();
  CutResult cut = Cut(g, 1);
  EXPECT_EQ(cut.feasible.size(), 3u);
}

}  // namespace
}  // namespace mce::decomp
