#include "decomp/blocks.h"

#include <set>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "decomp/cut.h"
#include "gen/generators.h"
#include "gen/special.h"
#include "mce/naive.h"
#include "test_util.h"
#include "util/random.h"

namespace mce::decomp {
namespace {

/// Structural invariants of Algorithm 3, checked for any decomposition.
void CheckBlockInvariants(const Graph& g, const std::vector<NodeId>& feasible,
                          const std::vector<Block>& blocks, uint32_t m) {
  std::unordered_set<NodeId> feasible_set(feasible.begin(), feasible.end());
  std::unordered_map<NodeId, int> kernel_block;  // node -> block index

  for (size_t bi = 0; bi < blocks.size(); ++bi) {
    const Block& block = blocks[bi];
    // Block size bound.
    EXPECT_LE(block.num_nodes(), m) << "block " << bi;
    ASSERT_EQ(block.roles.size(), block.subgraph.to_parent.size());
    ASSERT_FALSE(block.kernel_local.empty());

    std::unordered_set<NodeId> block_parents(block.subgraph.to_parent.begin(),
                                             block.subgraph.to_parent.end());
    for (NodeId local : block.kernel_local) {
      EXPECT_EQ(block.roles[local], NodeRole::kKernel);
      const NodeId parent = block.subgraph.to_parent[local];
      // Kernels are feasible and belong to exactly one block.
      EXPECT_TRUE(feasible_set.count(parent));
      EXPECT_EQ(kernel_block.count(parent), 0u)
          << "node " << parent << " kernel twice";
      kernel_block[parent] = static_cast<int>(bi);
      // All neighbors of a kernel are inside the block.
      for (NodeId nbr : g.Neighbors(parent)) {
        EXPECT_TRUE(block_parents.count(nbr))
            << "neighbor " << nbr << " of kernel " << parent
            << " missing from block " << bi;
      }
    }
  }
  // Kernels form a partition of the feasible set.
  EXPECT_EQ(kernel_block.size(), feasible.size());

  // Visited nodes are exactly the block members that were kernels of
  // earlier blocks; border nodes were never kernels before this block.
  for (size_t bi = 0; bi < blocks.size(); ++bi) {
    const Block& block = blocks[bi];
    for (NodeId local = 0; local < block.roles.size(); ++local) {
      const NodeId parent = block.subgraph.to_parent[local];
      auto it = kernel_block.find(parent);
      switch (block.roles[local]) {
        case NodeRole::kKernel:
          ASSERT_NE(it, kernel_block.end());
          EXPECT_EQ(it->second, static_cast<int>(bi));
          break;
        case NodeRole::kVisited:
          ASSERT_NE(it, kernel_block.end());
          EXPECT_LT(it->second, static_cast<int>(bi));
          break;
        case NodeRole::kBorder:
          if (it != kernel_block.end()) {
            EXPECT_GT(it->second, static_cast<int>(bi));
          }
          break;
      }
    }
  }
}

TEST(BlocksTest, Figure1DecompositionInvariants) {
  Graph g = mce::test::Figure1Graph();
  const uint32_t m = 5;
  CutResult cut = Cut(g, m);
  BlocksOptions options;
  options.max_block_size = m;
  std::vector<Block> blocks = BuildBlocks(g, cut.feasible, options);
  CheckBlockInvariants(g, cut.feasible, blocks, m);
  // Hubs never appear as kernels but do appear as borders somewhere (their
  // neighborhoods are distributed among the blocks).
  using namespace mce::test;
  bool hub_seen_as_border = false;
  for (const Block& block : blocks) {
    for (NodeId local = 0; local < block.roles.size(); ++local) {
      NodeId parent = block.subgraph.to_parent[local];
      if (parent == D || parent == S || parent == E) {
        EXPECT_NE(block.roles[local], NodeRole::kKernel);
        if (block.roles[local] == NodeRole::kBorder) {
          hub_seen_as_border = true;
        }
      }
    }
  }
  EXPECT_TRUE(hub_seen_as_border);
}

// Section 3.2: "every maximal clique occurs in at least one block" — every
// maximal clique with at least one feasible node must be fully contained in
// the block where some member is a kernel and, in the first such block (by
// build order), contain no visited node.
void CheckCliqueCoverage(const Graph& g, const std::vector<NodeId>& feasible,
                         const std::vector<Block>& blocks) {
  std::unordered_set<NodeId> feasible_set(feasible.begin(), feasible.end());
  CliqueSet all = NaiveMceSet(g);
  for (const Clique& clique : all.cliques()) {
    bool has_feasible = false;
    for (NodeId v : clique) {
      if (feasible_set.count(v)) has_feasible = true;
    }
    if (!has_feasible) continue;
    // Find a block containing the whole clique with >= 1 kernel member and
    // no visited member.
    bool covered = false;
    for (const Block& block : blocks) {
      std::unordered_map<NodeId, NodeId> to_local;
      for (NodeId local = 0; local < block.subgraph.to_parent.size();
           ++local) {
        to_local[block.subgraph.to_parent[local]] = local;
      }
      bool whole = true, has_kernel = false, has_visited = false;
      for (NodeId v : clique) {
        auto it = to_local.find(v);
        if (it == to_local.end()) {
          whole = false;
          break;
        }
        if (block.roles[it->second] == NodeRole::kKernel) has_kernel = true;
        if (block.roles[it->second] == NodeRole::kVisited) has_visited = true;
      }
      if (whole && has_kernel && !has_visited) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "clique of size " << clique.size()
                         << " not covered without visited nodes";
  }
}

TEST(BlocksTest, EveryCliqueCoveredOnRandomGraphs) {
  Rng rng(31);
  for (int trial = 0; trial < 6; ++trial) {
    Graph g = gen::ErdosRenyiGnp(40, 0.1 + 0.05 * trial, &rng);
    const uint32_t m = 12;
    CutResult cut = Cut(g, m);
    BlocksOptions options;
    options.max_block_size = m;
    std::vector<Block> blocks = BuildBlocks(g, cut.feasible, options);
    CheckBlockInvariants(g, cut.feasible, blocks, m);
    CheckCliqueCoverage(g, cut.feasible, blocks);
  }
}

TEST(BlocksTest, SeedPoliciesAllSatisfyInvariants) {
  Rng rng(33);
  Graph g = gen::BarabasiAlbert(120, 3, &rng);
  const uint32_t m = 30;
  CutResult cut = Cut(g, m);
  for (SeedPolicy policy : {SeedPolicy::kLowestDegree,
                            SeedPolicy::kHighestDegree,
                            SeedPolicy::kFirstId}) {
    BlocksOptions options;
    options.max_block_size = m;
    options.seed_policy = policy;
    std::vector<Block> blocks = BuildBlocks(g, cut.feasible, options);
    CheckBlockInvariants(g, cut.feasible, blocks, m);
  }
}

TEST(BlocksTest, HighThresholdProducesMoreBlocks) {
  Rng rng(35);
  Graph g = gen::ErdosRenyiGnp(80, 0.15, &rng);
  const uint32_t m = 40;
  CutResult cut = Cut(g, m);
  BlocksOptions loose;
  loose.max_block_size = m;
  loose.min_adjacency = 1;
  BlocksOptions strict;
  strict.max_block_size = m;
  strict.min_adjacency = 4;  // only strongly-attached candidates join
  std::vector<Block> loose_blocks = BuildBlocks(g, cut.feasible, loose);
  std::vector<Block> strict_blocks = BuildBlocks(g, cut.feasible, strict);
  EXPECT_GE(strict_blocks.size(), loose_blocks.size());
  CheckBlockInvariants(g, cut.feasible, strict_blocks, m);
}

TEST(BlocksTest, InfeasibleCandidateDoesNotStopAbsorption) {
  // Regression: growth used to `break` at the first candidate whose
  // un-absorbed neighborhood overflows m, even though a later candidate
  // with a smaller neighborhood still fits (Algorithm 3 guards
  // feasibility per absorption, not per block).
  //
  //   s(0) - A(1), s - B(2); A - {3,4,5}; B - 6.
  //
  // From seed s with m = 5: A wins the adjacency tie (smaller id) but
  // absorbing it needs |{0,1,2,3,4,5}| = 6 > 5. B (and then b1 = 6) still
  // fit, so the first block must keep absorbing past A.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(1, 4);
  b.AddEdge(1, 5);
  b.AddEdge(2, 6);
  Graph g = b.Build();
  const uint32_t m = 5;
  CutResult cut = Cut(g, m);
  // Everyone is feasible (max degree 4 < m).
  ASSERT_EQ(cut.feasible.size(), g.num_nodes());
  BlocksOptions options;
  options.max_block_size = m;
  options.seed_policy = SeedPolicy::kFirstId;
  std::vector<Block> blocks = BuildBlocks(g, cut.feasible, options);
  CheckBlockInvariants(g, cut.feasible, blocks, m);
  CheckCliqueCoverage(g, cut.feasible, blocks);
  ASSERT_FALSE(blocks.empty());
  // The seed block absorbs B and b1 as kernels despite A's infeasibility
  // (the old break produced a single-kernel block {s}).
  EXPECT_EQ(blocks[0].kernel_local.size(), 3u);
  std::set<NodeId> kernels;
  for (NodeId local : blocks[0].kernel_local) {
    kernels.insert(blocks[0].subgraph.to_parent[local]);
  }
  EXPECT_EQ(kernels, (std::set<NodeId>{0, 2, 6}));
}

TEST(BlocksTest, IsolatedNodesGetSingletonBlocks) {
  GraphBuilder b;
  b.ReserveNodes(3);
  Graph g = b.Build();
  std::vector<NodeId> feasible{0, 1, 2};
  BlocksOptions options;
  options.max_block_size = 4;
  std::vector<Block> blocks = BuildBlocks(g, feasible, options);
  ASSERT_EQ(blocks.size(), 3u);
  for (const Block& block : blocks) {
    EXPECT_EQ(block.num_nodes(), 1u);
    EXPECT_EQ(block.kernel_local.size(), 1u);
  }
}

TEST(BlocksTest, EmptyFeasibleSetYieldsNoBlocks) {
  Graph g = gen::Complete(6);
  BlocksOptions options;
  options.max_block_size = 3;
  EXPECT_TRUE(BuildBlocks(g, {}, options).empty());
}

TEST(BlocksTest, DeterministicAcrossRuns) {
  Rng rng(37);
  Graph g = gen::BarabasiAlbert(100, 3, &rng);
  const uint32_t m = 25;
  CutResult cut = Cut(g, m);
  BlocksOptions options;
  options.max_block_size = m;
  std::vector<Block> b1 = BuildBlocks(g, cut.feasible, options);
  std::vector<Block> b2 = BuildBlocks(g, cut.feasible, options);
  ASSERT_EQ(b1.size(), b2.size());
  for (size_t i = 0; i < b1.size(); ++i) {
    EXPECT_EQ(b1[i].subgraph.to_parent, b2[i].subgraph.to_parent);
    EXPECT_EQ(b1[i].kernel_local, b2[i].kernel_local);
  }
}

TEST(BlockTest, RoleCountsAndBytes) {
  Graph g = mce::test::Figure1Graph();
  const uint32_t m = 5;
  CutResult cut = Cut(g, m);
  BlocksOptions options;
  options.max_block_size = m;
  std::vector<Block> blocks = BuildBlocks(g, cut.feasible, options);
  for (const Block& block : blocks) {
    EXPECT_EQ(block.CountRole(NodeRole::kKernel) +
                  block.CountRole(NodeRole::kBorder) +
                  block.CountRole(NodeRole::kVisited),
              block.num_nodes());
    EXPECT_GT(block.EstimatedBytes(), 0u);
  }
}

}  // namespace
}  // namespace mce::decomp
