#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/timer.h"

namespace mce {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, DefaultLevelIsWarning) {
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST(LoggingTest, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarning, LogLevel::kError,
                         LogLevel::kOff}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kOff);
  // All of these are filtered; the test asserts they are safe to evaluate.
  MCE_LOG(DEBUG) << "debug " << 1;
  MCE_LOG(INFO) << "info " << 2.5;
  MCE_LOG(WARNING) << "warning " << "text";
  MCE_LOG(ERROR) << "error " << -1;
}

TEST(LoggingTest, EnabledMessagesDoNotCrash) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  MCE_LOG(DEBUG) << "visible debug line from the logging test";
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  // Busy-wait a tiny amount.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  double s1 = t.ElapsedSeconds();
  EXPECT_GT(s1, 0.0);
  EXPECT_GE(t.ElapsedMicros(), 0);
  t.Reset();
  double s2 = t.ElapsedSeconds();
  EXPECT_LT(s2, s1 + 1.0);  // sanity: reset re-bases the clock
}

}  // namespace
}  // namespace mce
