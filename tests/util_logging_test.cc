#include "util/logging.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/timer.h"

namespace mce {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, DefaultLevelIsWarning) {
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST(LoggingTest, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarning, LogLevel::kError,
                         LogLevel::kOff}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kOff);
  // All of these are filtered; the test asserts they are safe to evaluate.
  MCE_LOG(DEBUG) << "debug " << 1;
  MCE_LOG(INFO) << "info " << 2.5;
  MCE_LOG(WARNING) << "warning " << "text";
  MCE_LOG(ERROR) << "error " << -1;
}

TEST(LoggingTest, EnabledMessagesDoNotCrash) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  MCE_LOG(DEBUG) << "visible debug line from the logging test";
}

// Redirects stderr (fd 2) to a file for the lifetime of the object so the
// test can inspect what the logger actually wrote.
class StderrCapture {
 public:
  explicit StderrCapture(const std::string& path) {
    std::fflush(stderr);
    saved_fd_ = dup(2);
    FILE* f = std::fopen(path.c_str(), "wb");
    dup2(fileno(f), 2);
    std::fclose(f);
  }
  ~StderrCapture() {
    std::fflush(stderr);
    dup2(saved_fd_, 2);
    close(saved_fd_);
  }

 private:
  int saved_fd_ = -1;
};

TEST(LoggingTest, ConcurrentWritersEmitWholeLines) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  const std::string path =
      ::testing::TempDir() + "logging_interleave_test.log";
  // A long payload makes torn writes likely if emission is not atomic.
  const std::string filler(160, 'x');
  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 200;
  {
    StderrCapture capture(path);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t, &filler] {
        for (int s = 0; s < kLinesPerThread; ++s) {
          MCE_LOG(INFO) << "thread=" << t << " seq=" << s << " " << filler;
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  const std::regex prefix_re(
      R"(^\[[0-9]+\.[0-9]{3}s t[0-9]+ INFO util_logging_test\.cc:[0-9]+\] )");
  int matched = 0;
  for (std::string line; std::getline(in, line);) {
    if (line.empty()) continue;
    // Every line must be one complete log record: prefix, marker, and the
    // full filler, with nothing from another record spliced in. The
    // prefix is "[<elapsed>s t<thread> INFO <file>:<line>] ".
    EXPECT_TRUE(std::regex_search(line, prefix_re)) << line;
    const size_t marker = line.find("thread=");
    ASSERT_NE(marker, std::string::npos) << line;
    std::istringstream fields(line.substr(marker));
    std::string thread_field, seq_field, payload;
    fields >> thread_field >> seq_field >> payload;
    EXPECT_EQ(thread_field.rfind("thread=", 0), 0u) << line;
    EXPECT_EQ(seq_field.rfind("seq=", 0), 0u) << line;
    EXPECT_EQ(payload, filler) << line;
    std::string trailing;
    fields >> trailing;
    EXPECT_TRUE(trailing.empty()) << line;
    ++matched;
  }
  EXPECT_EQ(matched, kThreads * kLinesPerThread);
  std::remove(path.c_str());
}

TEST(LoggingTest, PrefixCarriesMonotonicStampAndThreadId) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  const std::string path = ::testing::TempDir() + "logging_prefix_test.log";
  {
    StderrCapture capture(path);
    MCE_LOG(INFO) << "first";
    MCE_LOG(INFO) << "second";
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  const std::regex prefix_re(
      R"(^\[([0-9]+\.[0-9]{3})s t([0-9]+) INFO util_logging_test\.cc:[0-9]+\] )");
  double last_stamp = -1;
  int last_tid = -1;
  int lines = 0;
  for (std::string line; std::getline(in, line);) {
    if (line.empty()) continue;
    std::smatch m;
    ASSERT_TRUE(std::regex_search(line, m, prefix_re)) << line;
    const double stamp = std::stod(m[1].str());
    const int tid = std::stoi(m[2].str());
    // Same thread logged both lines: the elapsed stamp must not go
    // backwards and the compact thread id must be stable.
    EXPECT_GE(stamp, last_stamp) << line;
    if (last_tid >= 0) {
      EXPECT_EQ(tid, last_tid) << line;
    }
    last_stamp = stamp;
    last_tid = tid;
    ++lines;
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  // Busy-wait a tiny amount.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  double s1 = t.ElapsedSeconds();
  EXPECT_GT(s1, 0.0);
  EXPECT_GE(t.ElapsedMicros(), 0);
  t.Reset();
  double s2 = t.ElapsedSeconds();
  EXPECT_LT(s2, s1 + 1.0);  // sanity: reset re-bases the clock
}

}  // namespace
}  // namespace mce
