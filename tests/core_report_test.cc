#include "core/report.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "test_util.h"
#include "util/random.h"

namespace mce {
namespace {

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(RunReportJsonTest, SerializesSerialRun) {
  Rng rng(5);
  Graph g = gen::BarabasiAlbert(60, 3, &rng);
  MaxCliqueFinder::Options options;
  options.block_size = 15;
  MaxCliqueFinder finder(options);
  Result<FindResult> result = finder.Find(g);
  ASSERT_TRUE(result.ok());
  std::string json = RunReportJson(*result);
  // Spot-check the schema (no JSON parser in the toolchain; the format is
  // machine-generated and flat).
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"block_size\":15"), std::string::npos);
  EXPECT_NE(json.find("\"total_cliques\":" +
                      std::to_string(result->stats.total_cliques)),
            std::string::npos);
  EXPECT_NE(json.find("\"levels\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"cluster\":null"), std::string::npos);
  EXPECT_NE(json.find("\"used_fallback\":false"), std::string::npos);
  // Balanced braces/brackets.
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(RunReportJsonTest, ReductionObjectReflectsThePrepass) {
  // Satellite regression: --json carries a `reduction` object whose
  // counters match the run. A path graph reduces to empty, so every
  // clique is a trivial one.
  GraphBuilder b(20);
  for (NodeId v = 0; v + 1 < 20; ++v) b.AddEdge(v, v + 1);
  Graph g = b.Build();
  MaxCliqueFinder::Options options;
  options.block_size = 8;
  options.reduce = true;
  MaxCliqueFinder finder(options);
  Result<FindResult> result = finder.Find(g);
  ASSERT_TRUE(result.ok());
  std::string json = RunReportJson(*result);
  EXPECT_NE(json.find("\"reduction\":{\"enabled\":true"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"vertices_removed\":20"), std::string::npos) << json;
  EXPECT_NE(json.find("\"trivial_cliques\":19"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rounds\":"), std::string::npos) << json;
  // And with the prepass off, the object is present but disabled — the
  // schema is stable for consumers either way.
  options.reduce = false;
  Result<FindResult> off = MaxCliqueFinder(options).Find(g);
  ASSERT_TRUE(off.ok());
  EXPECT_NE(RunReportJson(*off).find("\"reduction\":{\"enabled\":false"),
            std::string::npos);
}

TEST(RunReportJsonTest, SerialRunReportsOneAnalyzeThread) {
  // Satellite regression: the serial path must report analyze_threads = 1,
  // never 0 — consumers divide by it for utilization.
  Rng rng(11);
  Graph g = gen::BarabasiAlbert(60, 3, &rng);
  MaxCliqueFinder::Options options;
  options.block_size = 15;
  options.num_threads = 1;
  options.executor = decomp::ExecutorKind::kSerial;
  MaxCliqueFinder finder(options);
  Result<FindResult> result = finder.Find(g);
  ASSERT_TRUE(result.ok());
  std::string json = RunReportJson(*result);
  EXPECT_NE(json.find("\"analyze_threads\":1"), std::string::npos);
  EXPECT_EQ(json.find("\"analyze_threads\":0"), std::string::npos);
  // The pipelining telemetry is present at both the run and level scope,
  // and a serial run never overlaps.
  EXPECT_NE(json.find("\"overlap_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"idle_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"overlap_seconds\":0"), std::string::npos);
}

TEST(RunReportJsonTest, SerializesClusterRun) {
  Rng rng(7);
  Graph g = gen::BarabasiAlbert(60, 3, &rng);
  MaxCliqueFinder::Options options;
  options.block_size = 15;
  options.simulate_cluster = true;
  options.cluster.num_workers = 4;
  MaxCliqueFinder finder(options);
  Result<FindResult> result = finder.Find(g);
  ASSERT_TRUE(result.ok());
  std::string json = RunReportJson(*result);
  EXPECT_NE(json.find("\"cluster\":{\"workers\":4"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_shipped\":"), std::string::npos);
  EXPECT_EQ(json.find("\"cluster\":null"), std::string::npos);
}

}  // namespace
}  // namespace mce
