// Property suite: every (algorithm x storage) combination must produce the
// exact maximal-clique set of the pivotless reference on randomized inputs
// spanning the graph families of Section 4's training collection.

#include <numeric>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/special.h"
#include "graph/subgraph.h"
#include "mce/enumerator.h"
#include "mce/naive.h"
#include "mce/pivoter.h"
#include "test_util.h"
#include "util/random.h"

namespace mce {
namespace {

struct GraphCase {
  std::string name;
  Graph graph;
};

std::vector<GraphCase> CrossCheckGraphs() {
  std::vector<GraphCase> cases;
  Rng rng(2024);
  // Erdos-Renyi across the density spectrum.
  for (double p : {0.05, 0.15, 0.3, 0.5, 0.8}) {
    cases.push_back({"er_p" + std::to_string(p),
                     gen::ErdosRenyiGnp(28, p, &rng)});
  }
  // Barabasi-Albert (scale-free).
  for (uint32_t attach : {1u, 2u, 4u}) {
    cases.push_back({"ba_a" + std::to_string(attach),
                     gen::BarabasiAlbert(40, attach, &rng)});
  }
  // Watts-Strogatz (small world).
  for (double beta : {0.0, 0.2, 0.9}) {
    cases.push_back({"ws_b" + std::to_string(beta),
                     gen::WattsStrogatz(30, 4, beta, &rng)});
  }
  // Dense sparse ER with planted cliques (hub-like dense pockets).
  Graph planted = gen::ErdosRenyiGnp(35, 0.08, &rng);
  planted = gen::OverlayRandomCliques(planted, 4, 5, 9, false, &rng);
  cases.push_back({"planted", std::move(planted)});
  // Structured families.
  cases.push_back({"moon_moser", gen::MoonMoser(3)});
  cases.push_back({"complete", gen::Complete(9)});
  cases.push_back(
      {"powerlaw", gen::PowerLawConfigurationModel(45, 2.3, 1, 15, &rng)});
  cases.push_back({"path", test::PathGraph(15)});
  cases.push_back({"cycle", test::CycleGraph(12)});
  cases.push_back({"star", test::StarGraph(12)});
  cases.push_back({"hn", gen::HnWorstCase(25, 4)});
  cases.push_back({"empty", Graph()});
  return cases;
}

using ComboParam = std::tuple<Algorithm, StorageKind>;

class CrossCheckTest : public ::testing::TestWithParam<ComboParam> {};

TEST_P(CrossCheckTest, MatchesNaiveOnAllFamilies) {
  const auto [algorithm, storage] = GetParam();
  const MceOptions options{algorithm, storage};
  for (const GraphCase& c : CrossCheckGraphs()) {
    CliqueSet actual = EnumerateToSet(c.graph, options);
    CliqueSet expected = NaiveMceSet(c.graph);
    EXPECT_TRUE(CliqueSet::Equal(actual, expected))
        << c.name << " with " << ComboName(storage, algorithm) << ": got "
        << actual.size() << " cliques, want " << expected.size();
  }
}

TEST_P(CrossCheckTest, EveryOutputIsAMaximalClique) {
  const auto [algorithm, storage] = GetParam();
  const MceOptions options{algorithm, storage};
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = gen::ErdosRenyiGnp(24, 0.25 + 0.1 * trial, &rng);
    CliqueSet cs = EnumerateToSet(g, options);
    for (const Clique& c : cs.cliques()) {
      EXPECT_TRUE(IsMaximalClique(g, c))
          << ComboName(storage, algorithm) << " trial " << trial;
    }
  }
}

TEST_P(CrossCheckTest, NoDuplicateCliques) {
  const auto [algorithm, storage] = GetParam();
  const MceOptions options{algorithm, storage};
  Rng rng(123);
  Graph g = gen::ErdosRenyiGnp(30, 0.3, &rng);
  CliqueSet cs = EnumerateToSet(g, options);  // canonicalized (dedups)
  CliqueSet raw;
  EnumerateMaximalCliques(g, options, raw.Collector());
  EXPECT_EQ(raw.size(), cs.size())
      << ComboName(storage, algorithm) << " emitted duplicates";
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, CrossCheckTest,
    ::testing::Combine(::testing::Values(Algorithm::kBKPivot,
                                         Algorithm::kTomita,
                                         Algorithm::kEppstein,
                                         Algorithm::kXPivot),
                       ::testing::Values(StorageKind::kAdjacencyList,
                                         StorageKind::kMatrix,
                                         StorageKind::kBitset)),
    [](const ::testing::TestParamInfo<ComboParam>& info) {
      return std::string(ToString(std::get<0>(info.param))) + "_" +
             ToString(std::get<1>(info.param));
    });

// A runner whose scratch pool is shared across many inputs must emit the
// exact byte sequence of a fresh one-shot run: reuse may only change where
// the buffers live, never what comes out. This is the contract that lets
// per-worker workspaces persist across blocks.
TEST(ScratchReuseTest, ReusedRunnersAreByteIdentical) {
  const std::vector<GraphCase> cases = CrossCheckGraphs();
  for (PivotRule rule :
       {PivotRule::kMaxDegree, PivotRule::kMaxIntersection,
        PivotRule::kVisitedFirst}) {
    // One scratch of each kind, shared across every graph in the sweep.
    VectorMceScratch list_scratch;
    VectorMceScratch matrix_scratch;
    BitsetMceScratch bitset_scratch;
    for (const GraphCase& c : cases) {
      const Graph& g = c.graph;
      if (g.num_nodes() == 0) continue;
      std::vector<NodeId> all(g.num_nodes());
      std::iota(all.begin(), all.end(), NodeId{0});

      std::vector<Clique> fresh, reused;
      const CliqueCallback collect_fresh =
          [&fresh](std::span<const NodeId> cl) {
            fresh.emplace_back(cl.begin(), cl.end());
          };
      const CliqueCallback collect_reused =
          [&reused](std::span<const NodeId> cl) {
            reused.emplace_back(cl.begin(), cl.end());
          };

      {
        const ListStorage s(g);
        fresh.clear();
        reused.clear();
        RunVectorMce(s, rule, {}, all, {}, collect_fresh);
        VectorMceRunner<ListStorage> runner(s, rule, &list_scratch);
        runner.Run({}, all, {}, collect_reused);
        EXPECT_EQ(fresh, reused) << c.name << " lists";
      }
      {
        const MatrixStorage s(g);
        fresh.clear();
        reused.clear();
        RunVectorMce(s, rule, {}, all, {}, collect_fresh);
        VectorMceRunner<MatrixStorage> runner(s, rule, &matrix_scratch);
        runner.Run({}, all, {}, collect_reused);
        EXPECT_EQ(fresh, reused) << c.name << " matrix";
      }
      {
        const BitsetGraph bg(g);
        Bitset p(g.num_nodes());
        p.SetAll();
        const Bitset x(g.num_nodes());
        fresh.clear();
        reused.clear();
        RunBitsetMce(bg, rule, {}, p, x, collect_fresh);
        BitsetMceRunner runner(bg, rule, &bitset_scratch);
        runner.Run({}, p, x, collect_reused);
        EXPECT_EQ(fresh, reused) << c.name << " bitsets";
      }
    }
  }
}

// Seeded enumeration must match a filtered full enumeration: the cliques
// through `seed` avoiding X, on random instances.
class SeededCrossCheckTest : public ::testing::TestWithParam<ComboParam> {};

TEST_P(SeededCrossCheckTest, SeededMatchesFilteredFullEnumeration) {
  const auto [algorithm, storage] = GetParam();
  const MceOptions options{algorithm, storage};
  Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = gen::ErdosRenyiGnp(22, 0.35, &rng);
    if (g.num_nodes() == 0) continue;
    const NodeId seed = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    // Split N(seed) into P (kept) and X (excluded) at random.
    std::vector<NodeId> p, x;
    for (NodeId u : g.Neighbors(seed)) {
      (rng.NextBool(0.3) ? x : p).push_back(u);
    }
    CliqueSet actual;
    EnumerateSeeded(g, options, seed, p, x, actual.Collector());

    // Reference: maximal cliques of the subgraph induced by {seed} u P u X
    // that contain seed and no X node.
    std::vector<NodeId> members = p;
    members.insert(members.end(), x.begin(), x.end());
    members.push_back(seed);
    InducedSubgraph sub = Induce(g, members);
    CliqueSet expected;
    NaiveMce(sub.graph, [&](std::span<const NodeId> local) {
      std::vector<NodeId> parent = ToParentIds(sub, local);
      bool has_seed = false, has_x = false;
      for (NodeId v : parent) {
        if (v == seed) has_seed = true;
        for (NodeId xv : x) {
          if (v == xv) has_x = true;
        }
      }
      if (has_seed && !has_x) expected.Add(parent);
    });
    EXPECT_TRUE(CliqueSet::Equal(actual, expected))
        << ComboName(storage, algorithm) << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SeededCrossCheckTest,
    ::testing::Combine(::testing::Values(Algorithm::kBKPivot,
                                         Algorithm::kTomita,
                                         Algorithm::kXPivot),
                       ::testing::Values(StorageKind::kAdjacencyList,
                                         StorageKind::kMatrix,
                                         StorageKind::kBitset)),
    [](const ::testing::TestParamInfo<ComboParam>& info) {
      return std::string(ToString(std::get<0>(info.param))) + "_" +
             ToString(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mce
