#include "obs/trace.h"

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "json_lite.h"

namespace mce::obs {
namespace {

TraceEvent Span(int64_t begin_us, int64_t end_us,
                SpanKind kind = SpanKind::kBlock) {
  TraceEvent e;
  e.begin_us = begin_us;
  e.end_us = end_us;
  e.kind = kind;
  return e;
}

size_t Count(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(TraceRecorderTest, SpanKindNames) {
  EXPECT_STREQ(ToString(SpanKind::kDecompose), "DecomposeTask");
  EXPECT_STREQ(ToString(SpanKind::kBlock), "BlockTask");
  EXPECT_STREQ(ToString(SpanKind::kFilter), "FilterTask");
  EXPECT_STREQ(ToString(SpanKind::kFallback), "FallbackTask");
  EXPECT_STREQ(ToString(SpanKind::kWorkerIdle), "idle");
  EXPECT_STREQ(ToString(SpanKind::kSimBlock), "SimBlockTask");
}

TEST(TraceRecorderTest, RecordsInOrderPerThread) {
  TraceRecorder recorder;
  recorder.Record(Span(10, 20));
  recorder.Record(Span(30, 40, SpanKind::kFilter));
  std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].begin_us, 10);
  EXPECT_EQ(events[0].kind, SpanKind::kBlock);
  EXPECT_EQ(events[1].begin_us, 30);
  EXPECT_EQ(events[1].kind, SpanKind::kFilter);
  EXPECT_EQ(recorder.dropped_events(), 0u);
}

TEST(TraceRecorderTest, EachThreadGetsItsOwnTrack) {
  TraceRecorder recorder;
  recorder.Record(Span(1, 2));
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < 10 + t; ++i) {
        recorder.Record(Span(100 * t + i, 100 * t + i + 1));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  std::vector<TraceRecorder::ThreadTrack> tracks = recorder.Tracks();
  ASSERT_EQ(tracks.size(), static_cast<size_t>(kThreads) + 1);
  size_t total = 0;
  for (size_t i = 0; i < tracks.size(); ++i) {
    EXPECT_EQ(tracks[i].tid, static_cast<int>(i));  // sorted, dense tids
    total += tracks[i].events.size();
  }
  EXPECT_EQ(total, 1u + 10 + 11 + 12 + 13);
}

TEST(TraceRecorderTest, BoundedBuffersCountDrops) {
  TraceRecorder recorder(/*max_events_per_thread=*/3);
  for (int i = 0; i < 10; ++i) recorder.Record(Span(i, i + 1));
  EXPECT_EQ(recorder.Events().size(), 3u);
  EXPECT_EQ(recorder.dropped_events(), 7u);
  std::string json = recorder.ToChromeTraceJson();
  EXPECT_NE(json.find("\"dropped_events\":7"), std::string::npos);
}

TEST(TraceRecorderTest, InstallRoundTripAndAutoUninstallOnDestroy) {
  ASSERT_EQ(TraceRecorder::installed(), nullptr);
  {
    TraceRecorder recorder;
    TraceRecorder::Install(&recorder);
    EXPECT_EQ(TraceRecorder::installed(), &recorder);
    TraceRecorder::Install(nullptr);
    EXPECT_EQ(TraceRecorder::installed(), nullptr);
    TraceRecorder::Install(&recorder);
    // Destruction must not leave a dangling installed pointer even if the
    // caller forgot to uninstall.
  }
  EXPECT_EQ(TraceRecorder::installed(), nullptr);
}

TEST(TraceRecorderTest, ThreadCacheSurvivesRecorderTurnover) {
  // The same thread records into recorder A, then A dies and B is created
  // (possibly at the same address); events must land in B, never in a
  // stale buffer.
  auto a = std::make_unique<TraceRecorder>();
  a->Record(Span(1, 2));
  EXPECT_EQ(a->Events().size(), 1u);
  a.reset();
  TraceRecorder b;
  b.Record(Span(3, 4));
  b.Record(Span(5, 6));
  EXPECT_EQ(b.Events().size(), 2u);
}

TEST(TraceRecorderTest, ChromeJsonIsBalancedAndRebased) {
  TraceRecorder recorder;
  recorder.Record(Span(1000, 5000, SpanKind::kDecompose));
  recorder.Record(Span(2000, 3000));  // nested inside the decompose span
  recorder.Record(Span(6000, 7000, SpanKind::kFilter));
  std::string json = recorder.ToChromeTraceJson();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(Count(json, "\"ph\":\"B\""), 3u);
  EXPECT_EQ(Count(json, "\"ph\":\"E\""), 3u);
  // Timestamps are rebased to the earliest span begin.
  EXPECT_NE(json.find("\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":0"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"DecomposeTask\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"BlockTask\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"FilterTask\""), std::string::npos);
  // Track metadata for the recording thread.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
}

TEST(TraceRecorderTest, BlockArgsCarryCompositionAndCombo) {
  TraceRecorder recorder;
  TraceEvent e = Span(10, 20);
  e.level = 1;
  e.index = 7;
  e.args[0] = 3;   // kernel
  e.args[1] = 4;   // border
  e.args[2] = 5;   // visited
  e.args[3] = 21;  // cliques
  e.algorithm = 2;
  e.storage = 1;
  recorder.Record(e);
  std::string json = recorder.ToChromeTraceJson();
  EXPECT_NE(json.find("\"level\":1,\"block\":7,\"kernel\":3,\"border\":4,"
                      "\"visited\":5,\"cliques\":21"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"algorithm\":2,\"storage\":1"), std::string::npos);
}

TEST(TraceRecorderTest, SyntheticLanesGetTheirOwnProcess) {
  TraceRecorder recorder;
  recorder.Record(Span(0, 10));
  TraceEvent sim = Span(5, 9, SpanKind::kSimBlock);
  sim.args[0] = 2;  // worker
  sim.args[1] = 6;  // lane
  sim.lane_pid = 1;
  sim.lane_tid = 6;
  recorder.Record(sim);
  std::string json = recorder.ToChromeTraceJson();
  EXPECT_NE(json.find("mce cluster sim"), std::string::npos);
  EXPECT_NE(json.find("worker 2 lane 6"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"SimBlockTask\""), std::string::npos);
  // The synthetic event draws on (pid 1, tid 6), not the caller's track.
  EXPECT_NE(json.find("\"ph\":\"B\",\"pid\":1,\"tid\":6"), std::string::npos);
}

TEST(TraceRecorderTest, HostileNamesAreEscapedIntoParseableJson) {
  // Thread names come from user-controllable places (pool labels, the
  // simulated cluster's lane names); quotes, backslashes, control bytes
  // and non-ASCII must all leave the export as valid JSON — this is the
  // same json_lite parser trace_check validates real traces with.
  TraceRecorder recorder;
  const std::string hostile = "evil\"\\\x01\x7f\xc3\xa9\nname";
  recorder.SetCurrentThreadName(hostile);
  recorder.Record(Span(10, 20));
  const std::string json = recorder.ToChromeTraceJson();

  // No raw control byte may survive into the file beyond the exporter's
  // own inter-event newlines.
  for (const char c : json) {
    if (c == '\n') continue;
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
  EXPECT_NE(json.find("evil\\\"\\\\\\u0001\\u007f\\u00c3\\u00a9\\u000aname"),
            std::string::npos)
      << json;

  json_lite::JsonValue root;
  std::string error;
  ASSERT_TRUE(json_lite::JsonParser(json).Parse(&root, &error)) << error;
  ASSERT_TRUE(root.IsObject());
  const json_lite::JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());
  // The thread_name metadata record carries the (escaped) hostile name.
  bool found_name = false;
  for (const json_lite::JsonValue& e : events->array) {
    const json_lite::JsonValue* name = e.Find("name");
    if (name == nullptr || !name->IsString() ||
        name->string != "thread_name") {
      continue;
    }
    const json_lite::JsonValue* args = e.Find("args");
    ASSERT_NE(args, nullptr);
    const json_lite::JsonValue* value = args->Find("name");
    ASSERT_NE(value, nullptr);
    ASSERT_TRUE(value->IsString());
    // json_lite decodes \" and \\ but keeps \uXXXX escapes verbatim.
    EXPECT_EQ(value->string,
              "evil\"\\\\u0001\\u007f\\u00c3\\u00a9\\u000aname");
    found_name = true;
  }
  EXPECT_TRUE(found_name) << json;
}

TEST(TraceRecorderTest, PartialOverlapIsClampedToKeepPairsBalanced) {
  TraceRecorder recorder;
  // Child begins inside the parent but "ends" after it (clock jitter);
  // export must clamp instead of emitting crossed B/E pairs.
  recorder.Record(Span(0, 100, SpanKind::kDecompose));
  recorder.Record(Span(50, 150));
  std::string json = recorder.ToChromeTraceJson();
  EXPECT_EQ(Count(json, "\"ph\":\"B\""), 2u);
  EXPECT_EQ(Count(json, "\"ph\":\"E\""), 2u);
  // The clamped child closes at ts=100 together with its parent.
  EXPECT_EQ(Count(json, "\"ph\":\"E\",\"pid\":0,\"tid\":0,\"ts\":100"), 2u);
}

}  // namespace
}  // namespace mce::obs
