#include "gen/generators.h"

#include <gtest/gtest.h>

#include "gen/special.h"
#include "graph/core_decomposition.h"
#include "util/random.h"

namespace mce::gen {
namespace {

TEST(ErdosRenyiTest, ZeroProbabilityMeansNoEdges) {
  Rng rng(1);
  Graph g = ErdosRenyiGnp(50, 0.0, &rng);
  EXPECT_EQ(g.num_nodes(), 50u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(ErdosRenyiTest, FullProbabilityMeansComplete) {
  Rng rng(2);
  Graph g = ErdosRenyiGnp(20, 1.0, &rng);
  EXPECT_EQ(g.num_edges(), 20u * 19 / 2);
}

TEST(ErdosRenyiTest, EdgeCountNearExpectation) {
  Rng rng(3);
  const NodeId n = 200;
  const double p = 0.1;
  const double expected = p * n * (n - 1) / 2.0;  // 1990
  double total = 0;
  for (int t = 0; t < 5; ++t) {
    total += static_cast<double>(ErdosRenyiGnp(n, p, &rng).num_edges());
  }
  double mean = total / 5.0;
  EXPECT_NEAR(mean, expected, expected * 0.1);
}

TEST(ErdosRenyiTest, DeterministicGivenSeed) {
  Rng a(77), b(77);
  Graph g1 = ErdosRenyiGnp(60, 0.2, &a);
  Graph g2 = ErdosRenyiGnp(60, 0.2, &b);
  EXPECT_TRUE(g1 == g2);
}

TEST(ErdosRenyiTest, SmallPStillProducesValidGraph) {
  Rng rng(4);
  Graph g = ErdosRenyiGnp(1000, 0.001, &rng);
  EXPECT_EQ(g.num_nodes(), 1000u);
  // Expected ~500 edges; verify sane bounds rather than exact values.
  EXPECT_GT(g.num_edges(), 300u);
  EXPECT_LT(g.num_edges(), 800u);
}

TEST(ErdosRenyiGnmTest, ExactEdgeCount) {
  Rng rng(5);
  Graph g = ErdosRenyiGnm(40, 100, &rng);
  EXPECT_EQ(g.num_nodes(), 40u);
  EXPECT_EQ(g.num_edges(), 100u);
}

TEST(ErdosRenyiGnmTest, MaxEdges) {
  Rng rng(6);
  Graph g = ErdosRenyiGnm(10, 45, &rng);
  EXPECT_EQ(g.num_edges(), 45u);
  EXPECT_DOUBLE_EQ(g.Density(), 1.0);
}

TEST(ErdosRenyiGnmTest, ZeroEdges) {
  Rng rng(7);
  Graph g = ErdosRenyiGnm(10, 0, &rng);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(BarabasiAlbertTest, SizeAndMinimumDegree) {
  Rng rng(8);
  const NodeId n = 300;
  const uint32_t attach = 4;
  Graph g = BarabasiAlbert(n, attach, &rng);
  EXPECT_EQ(g.num_nodes(), n);
  // Every node attaches with `attach` edges (the seed clique has more).
  for (NodeId v = 0; v < n; ++v) EXPECT_GE(g.Degree(v), attach);
  // Edge count: seed clique + attach per added node.
  const uint64_t seed_edges = static_cast<uint64_t>(attach + 1) * attach / 2;
  EXPECT_EQ(g.num_edges(), seed_edges + static_cast<uint64_t>(n - attach - 1) * attach);
}

TEST(BarabasiAlbertTest, ProducesSkewedDegrees) {
  Rng rng(9);
  Graph g = BarabasiAlbert(2000, 3, &rng);
  // Scale-free: the hub should greatly exceed the median degree (3-6).
  EXPECT_GT(g.MaxDegree(), 40u);
}

TEST(BarabasiAlbertTest, Deterministic) {
  Rng a(10), b(10);
  EXPECT_TRUE(BarabasiAlbert(100, 2, &a) == BarabasiAlbert(100, 2, &b));
}

TEST(WattsStrogatzTest, ZeroBetaIsRingLattice) {
  Rng rng(11);
  Graph g = WattsStrogatz(20, 4, 0.0, &rng);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_EQ(g.num_edges(), 40u);  // n * k/2
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(g.Degree(v), 4u);
}

TEST(WattsStrogatzTest, RewiringPreservesEdgeCount) {
  Rng rng(12);
  Graph g = WattsStrogatz(50, 6, 0.3, &rng);
  EXPECT_EQ(g.num_edges(), 50u * 3);
}

TEST(WattsStrogatzTest, FullRewiringStillValid) {
  Rng rng(13);
  Graph g = WattsStrogatz(40, 4, 1.0, &rng);
  EXPECT_EQ(g.num_nodes(), 40u);
  EXPECT_EQ(g.num_edges(), 80u);
}

TEST(ConfigurationModelTest, DegreesRespectBounds) {
  Rng rng(31);
  Graph g = PowerLawConfigurationModel(1000, 2.5, 2, 100, &rng);
  EXPECT_EQ(g.num_nodes(), 1000u);
  // Stub matching drops self-loops/duplicates, so degrees can fall below
  // the drawn value but never above max_degree (+ nothing is added).
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(g.Degree(v), 100u);
  }
  EXPECT_GT(g.num_edges(), 500u);
}

TEST(ConfigurationModelTest, HeavyTailShape) {
  Rng rng(33);
  Graph g = PowerLawConfigurationModel(3000, 2.2, 1, 400, &rng);
  // Power law: the bulk of the nodes sits at low degree...
  uint64_t low = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.Degree(v) <= 5) ++low;
  }
  EXPECT_GT(static_cast<double>(low) / g.num_nodes(), 0.6);
  // ...but the tail reaches far out.
  EXPECT_GT(g.MaxDegree(), 50u);
}

TEST(ConfigurationModelTest, Deterministic) {
  Rng a(35), b(35);
  Graph g1 = PowerLawConfigurationModel(300, 2.5, 1, 50, &a);
  Graph g2 = PowerLawConfigurationModel(300, 2.5, 1, 50, &b);
  EXPECT_TRUE(g1 == g2);
}

TEST(ConfigurationModelTest, SteeperGammaMeansThinnerTail) {
  Rng a(37), b(39);
  Graph shallow = PowerLawConfigurationModel(2000, 2.0, 1, 300, &a);
  Graph steep = PowerLawConfigurationModel(2000, 3.5, 1, 300, &b);
  EXPECT_GT(shallow.num_edges(), steep.num_edges());
}

TEST(CompleteTest, AllPairsConnected) {
  Graph g = Complete(7);
  EXPECT_EQ(g.num_edges(), 21u);
  EXPECT_DOUBLE_EQ(g.Density(), 1.0);
}

TEST(MoonMoserTest, StructureAndDegeneracy) {
  Graph g = MoonMoser(3);  // 9 nodes, complete 3-partite
  EXPECT_EQ(g.num_nodes(), 9u);
  // Each node adjacent to all 6 nodes of the other parts.
  for (NodeId v = 0; v < 9; ++v) EXPECT_EQ(g.Degree(v), 6u);
  // Nodes in the same part are non-adjacent.
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 3));
}

TEST(HnWorstCaseTest, PrefixIsComplete) {
  Graph h = HnWorstCase(10, 4);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) EXPECT_TRUE(h.HasEdge(u, v));
  }
}

TEST(HnWorstCaseTest, LastNodeHasDegreeM) {
  // Property (a) of the Theorem 1 proof: v_j has degree m in H_j.
  for (uint32_t m : {2u, 4u}) {
    for (NodeId n : {static_cast<NodeId>(m + 5), static_cast<NodeId>(20)}) {
      Graph h = HnWorstCase(n, m);
      EXPECT_EQ(h.Degree(n - 1), m) << "n=" << n << " m=" << m;
    }
  }
}

TEST(HnWorstCaseTest, PeelingRemovesOneNodePerRound) {
  // Properties (a)-(c): for j > m+3, removing all nodes of degree <= m
  // from H_j removes exactly v_j. This is what forces Omega(n) rounds.
  const uint32_t m = 4;
  const NodeId n = 16;
  Graph h = HnWorstCase(n, m);
  // Count nodes of degree <= m: should be exactly the last node (v_n) plus
  // none others once n > m+3.
  uint32_t low_degree = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (h.Degree(v) <= m) ++low_degree;
  }
  EXPECT_EQ(low_degree, 1u);
}

TEST(OverlayCliquesTest, PlantsClique) {
  Rng rng(14);
  Graph base = ErdosRenyiGnp(20, 0.0, &rng);
  Graph g = OverlayCliques(base, {{2, 5, 7, 11}});
  EXPECT_TRUE(g.HasEdge(2, 5));
  EXPECT_TRUE(g.HasEdge(5, 11));
  EXPECT_TRUE(g.HasEdge(7, 11));
  EXPECT_EQ(g.num_edges(), 6u);
}

TEST(OverlayRandomCliquesTest, RespectsSizesAndDeterminism) {
  Rng rng1(15), rng2(15);
  Graph base = BarabasiAlbert(200, 2, &rng1);
  Rng base_rng(16), base_rng2(16);
  Graph g1 = OverlayRandomCliques(base, 5, 4, 8, false, &base_rng);
  Graph g2 = OverlayRandomCliques(base, 5, 4, 8, false, &base_rng2);
  EXPECT_TRUE(g1 == g2);
  EXPECT_GE(g1.num_edges(), base.num_edges());
}

TEST(OverlayRandomCliquesTest, HighDegreeBiasTargetsHubs) {
  Rng rng(17);
  Graph base = BarabasiAlbert(500, 2, &rng);
  Rng orng(18);
  Graph g = OverlayRandomCliques(base, 10, 5, 10, true, &orng);
  // The planted edges should concentrate on high-degree nodes: total new
  // degree at the top decile should grow.
  uint64_t added = g.num_edges() - base.num_edges();
  EXPECT_GT(added, 0u);
}

}  // namespace
}  // namespace mce::gen
