// MemoryBudget charge/release/peak semantics and ParseByteSize.

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/memory_budget.h"
#include "util/status.h"

namespace mce {
namespace {

TEST(MemoryBudgetTest, UnlimitedNeverExceeds) {
  MemoryBudget budget;  // limit 0 = unlimited
  EXPECT_FALSE(budget.limited());
  budget.Charge(1ull << 40);
  EXPECT_FALSE(budget.WouldExceed(1ull << 40));
  EXPECT_EQ(budget.charged(), 1ull << 40);
}

TEST(MemoryBudgetTest, ChargeReleaseAndPeak) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.limited());
  budget.Charge(600);
  EXPECT_FALSE(budget.WouldExceed(400));
  EXPECT_TRUE(budget.WouldExceed(401));
  budget.Charge(300);
  budget.Release(700);
  EXPECT_EQ(budget.charged(), 200u);
  // Peak is the high-water mark, not the current value.
  EXPECT_EQ(budget.peak(), 900u);
  EXPECT_EQ(budget.limit(), 1000u);
}

TEST(MemoryBudgetTest, PeakIsRaceFreeUnderConcurrentCharges) {
  MemoryBudget budget(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&budget] {
      for (int i = 0; i < 1000; ++i) {
        budget.Charge(3);
        budget.Release(3);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(budget.charged(), 0u);
  EXPECT_GE(budget.peak(), 3u);
  EXPECT_LE(budget.peak(), 12u);
}

TEST(ParseByteSizeTest, PlainAndSuffixedValues) {
  EXPECT_EQ(*ParseByteSize("0"), 0u);
  EXPECT_EQ(*ParseByteSize("12345"), 12345u);
  EXPECT_EQ(*ParseByteSize("64k"), 64u << 10);
  EXPECT_EQ(*ParseByteSize("64K"), 64u << 10);
  EXPECT_EQ(*ParseByteSize("64KB"), 64u << 10);
  EXPECT_EQ(*ParseByteSize("64KiB"), 64u << 10);
  EXPECT_EQ(*ParseByteSize("2m"), 2ull << 20);
  EXPECT_EQ(*ParseByteSize("3G"), 3ull << 30);
  EXPECT_EQ(*ParseByteSize("1T"), 1ull << 40);
  EXPECT_EQ(*ParseByteSize("512b"), 512u);
}

TEST(ParseByteSizeTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseByteSize("").ok());
  EXPECT_FALSE(ParseByteSize("abc").ok());
  EXPECT_FALSE(ParseByteSize("12Q").ok());
  EXPECT_FALSE(ParseByteSize("12kk").ok());
  EXPECT_FALSE(ParseByteSize("-5").ok());
  EXPECT_FALSE(ParseByteSize("1.5G").ok());
}

TEST(ParseByteSizeTest, OverflowIsOutOfRange) {
  Result<uint64_t> r = ParseByteSize("99999999999999999999");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  // 2^64 bytes expressed via suffix shift.
  Result<uint64_t> shifted = ParseByteSize("16777216T");
  ASSERT_FALSE(shifted.ok());
  EXPECT_EQ(shifted.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace mce
