#include "graph/connectivity.h"

#include <cstdio>
#include <fstream>
#include <iterator>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/io.h"
#include "test_util.h"
#include "util/random.h"

namespace mce {
namespace {

TEST(ConnectivityTest, SingleComponent) {
  Graph g = test::PathGraph(6);
  ComponentLabels c = ConnectedComponents(g);
  EXPECT_EQ(c.count, 1u);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(LargestComponentSize(g), 6u);
}

TEST(ConnectivityTest, MultipleComponents) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  b.ReserveNodes(6);  // node 5 isolated
  Graph g = b.Build();
  ComponentLabels c = ConnectedComponents(g);
  EXPECT_EQ(c.count, 3u);
  EXPECT_FALSE(IsConnected(g));
  EXPECT_EQ(LargestComponentSize(g), 3u);
  // Labels numbered by smallest member: {0,1}=0, {2,3,4}=1, {5}=2.
  EXPECT_EQ(c.label[0], 0u);
  EXPECT_EQ(c.label[1], 0u);
  EXPECT_EQ(c.label[2], 1u);
  EXPECT_EQ(c.label[4], 1u);
  EXPECT_EQ(c.label[5], 2u);
  EXPECT_EQ(c.Members(1), (std::vector<NodeId>{2, 3, 4}));
}

TEST(ConnectivityTest, EmptyGraphIsConnected) {
  EXPECT_TRUE(IsConnected(Graph()));
  EXPECT_EQ(LargestComponentSize(Graph()), 0u);
  EXPECT_EQ(ConnectedComponents(Graph()).count, 0u);
}

TEST(ConnectivityTest, ComponentLabelsAreConsistentWithEdges) {
  Rng rng(3);
  Graph g = gen::ErdosRenyiGnp(80, 0.02, &rng);
  ComponentLabels c = ConnectedComponents(g);
  // Every edge stays within one component.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      EXPECT_EQ(c.label[u], c.label[v]);
    }
  }
  // Component sizes sum to n.
  uint64_t total = 0;
  for (uint32_t i = 0; i < c.count; ++i) total += c.Members(i).size();
  EXPECT_EQ(total, g.num_nodes());
}

TEST(WriteDotTest, ProducesParsableOutput) {
  Graph g = test::PathGraph(3);
  std::string path = testing::TempDir() + "/mce_dot_test.dot";
  ASSERT_TRUE(WriteDot(g, path, {"a", "b", "c"}, {1}).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("graph mce {"), std::string::npos);
  EXPECT_NE(content.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(content.find("label=\"b\""), std::string::npos);
  EXPECT_NE(content.find("fillcolor=lightblue"), std::string::npos);
  std::remove(path.c_str());
}

TEST(WriteDotTest, ValidatesInputs) {
  Graph g = test::PathGraph(3);
  std::string path = testing::TempDir() + "/mce_dot_invalid.dot";
  EXPECT_EQ(WriteDot(g, path, {"only-one"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(WriteDot(g, path, {}, {99}).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace mce
