#include "dist/cluster.h"

#include <gtest/gtest.h>

namespace mce::dist {
namespace {

Task MakeTask(double est, double compute, uint64_t bytes) {
  Task t;
  t.estimated_cost = est;
  t.compute_seconds = compute;
  t.bytes = bytes;
  return t;
}

TEST(CostModelTest, ShipAndDiskCosts) {
  CostModel cost;
  cost.network_latency_s = 0.001;
  cost.network_bandwidth_bytes_per_s = 1000.0;
  cost.disk_bandwidth_bytes_per_s = 500.0;
  EXPECT_DOUBLE_EQ(cost.ShipSeconds(2000), 0.001 + 2.0);
  EXPECT_DOUBLE_EQ(cost.DiskSeconds(1000), 2.0);
  cost.cpu_speed_factor = 2.0;
  EXPECT_DOUBLE_EQ(cost.ComputeSeconds(3.0), 6.0);
}

TEST(ClusterTest, MakespanIsBusiestWorker) {
  ClusterConfig config;
  config.num_workers = 2;
  config.cost.network_latency_s = 0;
  config.cost.network_bandwidth_bytes_per_s = 1e18;  // comm ~ 0
  std::vector<Task> tasks{MakeTask(3, 3.0, 0), MakeTask(2, 2.0, 0),
                          MakeTask(2, 2.0, 0)};
  SimulationResult r = SimulateCluster(tasks, config);
  // LPT: worker A gets 3.0, worker B gets 2+2 = 4.0.
  EXPECT_NEAR(r.makespan_seconds, 4.0, 1e-9);
  EXPECT_NEAR(r.total_compute_seconds, 7.0, 1e-9);
  EXPECT_GT(r.Speedup(), 1.0);
}

TEST(ClusterTest, CommunicationCountsTowardMakespan) {
  ClusterConfig config;
  config.num_workers = 1;
  config.cost.network_latency_s = 0.5;
  config.cost.network_bandwidth_bytes_per_s = 100.0;
  std::vector<Task> tasks{MakeTask(1, 1.0, 200)};  // ship = 0.5 + 2.0
  SimulationResult r = SimulateCluster(tasks, config);
  EXPECT_NEAR(r.makespan_seconds, 3.5, 1e-9);
  EXPECT_NEAR(r.total_comm_seconds, 2.5, 1e-9);
  EXPECT_EQ(r.workers[0].bytes_received, 200u);
  EXPECT_EQ(r.workers[0].tasks, 1u);
}

TEST(ClusterTest, SkewOfPerfectBalanceIsOne) {
  ClusterConfig config;
  config.num_workers = 4;
  config.cost.network_latency_s = 0;
  config.cost.network_bandwidth_bytes_per_s = 1e18;
  std::vector<Task> tasks(8, MakeTask(1, 1.0, 0));
  SimulationResult r = SimulateCluster(tasks, config);
  EXPECT_NEAR(r.Skew(), 1.0, 1e-9);
}

TEST(ClusterTest, SkewDetectsImbalance) {
  ClusterConfig config;
  config.num_workers = 2;
  config.strategy = PartitionStrategy::kRoundRobin;
  config.cost.network_latency_s = 0;
  config.cost.network_bandwidth_bytes_per_s = 1e18;
  // Round robin sends the giant task and a small one to worker 0.
  std::vector<Task> tasks{MakeTask(10, 10.0, 0), MakeTask(1, 1.0, 0),
                          MakeTask(1, 1.0, 0)};
  SimulationResult r = SimulateCluster(tasks, config);
  EXPECT_GT(r.Skew(), 1.5);
}

TEST(ClusterTest, CpuFactorScalesCompute) {
  ClusterConfig config;
  config.num_workers = 1;
  config.cost.cpu_speed_factor = 3.0;
  config.cost.network_latency_s = 0;
  config.cost.network_bandwidth_bytes_per_s = 1e18;
  std::vector<Task> tasks{MakeTask(1, 2.0, 0)};
  SimulationResult r = SimulateCluster(tasks, config);
  EXPECT_NEAR(r.makespan_seconds, 6.0, 1e-9);
}

TEST(ClusterTest, EmptyTaskListIsZero) {
  ClusterConfig config;
  SimulationResult r = SimulateCluster({}, config);
  EXPECT_EQ(r.makespan_seconds, 0.0);
  EXPECT_EQ(r.Skew(), 1.0);
  EXPECT_EQ(r.workers.size(), 10u);  // default worker count
}

TEST(ClusterTest, StragglerSlowsItsOwnTasksOnly) {
  ClusterConfig config;
  config.num_workers = 2;
  config.strategy = PartitionStrategy::kRoundRobin;
  config.cost.network_latency_s = 0;
  config.cost.network_bandwidth_bytes_per_s = 1e18;
  config.worker_slowdown = {1.0, 4.0};  // worker 1 is 4x slower
  std::vector<Task> tasks{MakeTask(1, 1.0, 0), MakeTask(1, 1.0, 0)};
  SimulationResult r = SimulateCluster(tasks, config);
  EXPECT_NEAR(r.workers[0].compute_seconds, 1.0, 1e-9);
  EXPECT_NEAR(r.workers[1].compute_seconds, 4.0, 1e-9);
  EXPECT_NEAR(r.makespan_seconds, 4.0, 1e-9);
  EXPECT_GT(r.Skew(), 1.5);
}

TEST(ClusterTest, HomogeneousSlowdownVectorMatchesEmpty) {
  ClusterConfig with, without;
  with.num_workers = without.num_workers = 3;
  with.worker_slowdown = {1.0, 1.0, 1.0};
  std::vector<Task> tasks(9, MakeTask(2, 2.0, 50));
  SimulationResult a = SimulateCluster(tasks, with);
  SimulationResult b = SimulateCluster(tasks, without);
  EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_DOUBLE_EQ(a.total_compute_seconds, b.total_compute_seconds);
}

TEST(ClusterTest, SlowdownVectorMustMatchWorkerCount) {
  ClusterConfig config;
  config.num_workers = 3;
  config.worker_slowdown = {1.0, 2.0};  // wrong size
  EXPECT_DEATH(SimulateCluster({MakeTask(1, 1, 0)}, config),
               "Check failed");
}

TEST(ClusterTest, ThreadsPerWorkerOverlapTasksWithinWorker) {
  // One worker, two equal tasks: serially 2s of compute, on two lanes 1s
  // (worker compute = busiest lane).
  ClusterConfig config;
  config.num_workers = 1;
  config.cost.network_latency_s = 0;
  config.cost.network_bandwidth_bytes_per_s = 1e18;
  std::vector<Task> tasks{MakeTask(1, 1.0, 0), MakeTask(1, 1.0, 0)};
  config.threads_per_worker = 1;
  SimulationResult serial = SimulateCluster(tasks, config);
  EXPECT_NEAR(serial.makespan_seconds, 2.0, 1e-9);
  config.threads_per_worker = 2;
  SimulationResult threaded = SimulateCluster(tasks, config);
  EXPECT_NEAR(threaded.makespan_seconds, 1.0, 1e-9);
  // The serial-equivalent total is unchanged: lanes overlap work, they
  // don't erase it.
  EXPECT_NEAR(threaded.total_compute_seconds, 2.0, 1e-9);
  // Uneven tasks: {3, 2, 2} on two lanes -> lanes get 3 and 2+2.
  std::vector<Task> uneven{MakeTask(3, 3.0, 0), MakeTask(2, 2.0, 0),
                           MakeTask(2, 2.0, 0)};
  SimulationResult r = SimulateCluster(uneven, config);
  EXPECT_NEAR(r.makespan_seconds, 4.0, 1e-9);
}

TEST(ClusterTest, MoreThreadsNeverIncreaseMakespan) {
  std::vector<Task> tasks;
  for (int i = 0; i < 40; ++i) {
    tasks.push_back(MakeTask(1.0 + i % 5, 1.0 + i % 5, 0));
  }
  ClusterConfig config;
  config.num_workers = 4;
  config.cost.network_latency_s = 0;
  config.cost.network_bandwidth_bytes_per_s = 1e18;
  double prev = 1e300;
  for (int threads : {1, 2, 4, 8}) {
    config.threads_per_worker = threads;
    SimulationResult r = SimulateCluster(tasks, config);
    EXPECT_LE(r.makespan_seconds, prev + 1e-9);
    prev = r.makespan_seconds;
  }
}

TEST(ClusterTest, MoreWorkersNeverIncreaseMakespan) {
  std::vector<Task> tasks;
  for (int i = 0; i < 50; ++i) {
    tasks.push_back(MakeTask(1.0 + i % 7, 1.0 + i % 7, 100));
  }
  double prev = 1e300;
  for (int workers : {1, 2, 4, 8, 16}) {
    ClusterConfig config;
    config.num_workers = workers;
    SimulationResult r = SimulateCluster(tasks, config);
    EXPECT_LE(r.makespan_seconds, prev + 1e-9);
    prev = r.makespan_seconds;
  }
}

}  // namespace
}  // namespace mce::dist
