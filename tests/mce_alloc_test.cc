// Zero-allocation regression tests for the MCE kernels and block
// analysis: after a warm-up pass has grown every scratch pool, repeating
// the same work must perform zero heap allocations. Guards the core
// property of the workspace design (mce/workspace.h) — without it, a
// stray by-value copy or per-node vector silently reintroduces
// allocator traffic in the innermost loop.

#define MCE_TEST_COUNT_ALLOCATIONS 1
#include "test_util.h"

#include <numeric>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "decomp/block_analysis.h"
#include "decomp/blocks.h"
#include "decomp/cut.h"
#include "gen/generators.h"
#include "mce/pivoter.h"
#include "mce/workspace.h"
#include "util/random.h"

namespace mce {
namespace {

constexpr PivotRule kRules[] = {PivotRule::kMaxDegree,
                                PivotRule::kMaxIntersection,
                                PivotRule::kVisitedFirst};

/// Dense enough that the recursion has real depth and clique volume.
Graph DenseGraph() {
  Rng rng(1);
  return gen::ErdosRenyiGnp(64, 0.4, &rng);
}

std::vector<NodeId> AllNodes(const Graph& g) {
  std::vector<NodeId> nodes(g.num_nodes());
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  return nodes;
}

/// Runs `fn` once to warm the scratch, then asserts a second identical run
/// allocates nothing.
template <typename Fn>
void ExpectSecondRunAllocFree(const char* what, Fn&& fn) {
  fn();
  const uint64_t before = test::NewCalls();
  test::g_trap_on_alloc.store(true);
  fn();
  test::g_trap_on_alloc.store(false);
  EXPECT_EQ(test::NewCalls() - before, 0u)
      << what << " allocated in steady state";
}

TEST(AllocFreeTest, ListRunnerSteadyState) {
  const Graph g = DenseGraph();
  const ListStorage storage(g);
  const std::vector<NodeId> all = AllNodes(g);
  uint64_t total = 0;
  const CliqueCallback emit = [&total](std::span<const NodeId> c) {
    total += c.size();
  };
  for (PivotRule rule : kRules) {
    VectorMceRunner<ListStorage> runner(storage, rule);
    ExpectSecondRunAllocFree("list runner", [&] {
      runner.Run({}, all, {}, emit);
    });
  }
  EXPECT_GT(total, 0u);
}

TEST(AllocFreeTest, MatrixRunnerSteadyState) {
  const Graph g = DenseGraph();
  const MatrixStorage storage(g);
  const std::vector<NodeId> all = AllNodes(g);
  uint64_t total = 0;
  const CliqueCallback emit = [&total](std::span<const NodeId> c) {
    total += c.size();
  };
  for (PivotRule rule : kRules) {
    VectorMceRunner<MatrixStorage> runner(storage, rule);
    ExpectSecondRunAllocFree("matrix runner", [&] {
      runner.Run({}, all, {}, emit);
    });
  }
  EXPECT_GT(total, 0u);
}

TEST(AllocFreeTest, BitsetRunnerSteadyState) {
  const Graph g = DenseGraph();
  const BitsetGraph bg(g);
  Bitset p(g.num_nodes());
  p.SetAll();
  const Bitset x(g.num_nodes());
  uint64_t total = 0;
  const CliqueCallback emit = [&total](std::span<const NodeId> c) {
    total += c.size();
  };
  for (PivotRule rule : kRules) {
    BitsetMceRunner runner(bg, rule);
    ExpectSecondRunAllocFree("bitset runner", [&] {
      runner.Run({}, p, x, emit);
    });
  }
  EXPECT_GT(total, 0u);
}

class AnalyzeBlockAllocTest : public ::testing::TestWithParam<StorageKind> {};

TEST_P(AnalyzeBlockAllocTest, BlockStreamSteadyState) {
  // A workspace reused across a stream of blocks (as each pool worker does)
  // must stop allocating once it has seen the stream once.
  Rng rng(47);
  const Graph g = gen::BarabasiAlbert(150, 4, &rng);
  const uint32_t m = 25;
  const decomp::CutResult cut = decomp::Cut(g, m);
  decomp::BlocksOptions boptions;
  boptions.max_block_size = m;
  const std::vector<decomp::Block> blocks =
      decomp::BuildBlocks(g, cut.feasible, boptions);
  ASSERT_GT(blocks.size(), 1u);

  decomp::BlockAnalysisOptions aoptions;
  aoptions.fixed = {Algorithm::kTomita, GetParam()};
  BlockWorkspace workspace;
  uint64_t total = 0;
  const CliqueCallback emit = [&total](std::span<const NodeId> c) {
    total += c.size();
  };
  ExpectSecondRunAllocFree("AnalyzeBlock stream", [&] {
    for (const decomp::Block& block : blocks) {
      decomp::AnalyzeBlock(block, aoptions, emit, &workspace);
    }
  });
  EXPECT_GT(total, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllStorages, AnalyzeBlockAllocTest,
                         ::testing::Values(StorageKind::kAdjacencyList,
                                           StorageKind::kMatrix,
                                           StorageKind::kBitset),
                         [](const ::testing::TestParamInfo<StorageKind>& info) {
                           return std::string(ToString(info.param));
                         });

}  // namespace
}  // namespace mce
