#include "obs/progress.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "decomp/find_max_cliques.h"
#include "obs/telemetry.h"
#include "gen/generators.h"
#include "gen/special.h"
#include "util/random.h"

namespace mce::obs {
namespace {

// The TSan-visible contract: 8 threads register and retire blocks while a
// sampler thread snapshots, and every successive snapshot reports
// monotone non-decreasing completed_cost and fraction.
TEST(ProgressEstimatorTest, ConcurrentRegisterRetireStaysMonotone) {
  ProgressEstimator progress;
  constexpr int kThreads = 8;
  constexpr int kBlocksPerThread = 400;
  std::atomic<bool> done{false};

  std::thread sampler([&] {
    double last_completed = -1;
    double last_fraction = -1;
    while (!done.load(std::memory_order_acquire)) {
      const ProgressSnapshot s = progress.TakeSnapshot();
      EXPECT_GE(s.completed_cost, last_completed);
      EXPECT_GE(s.fraction, last_fraction);
      EXPECT_GE(s.fraction, 0.0);
      EXPECT_LE(s.fraction, 1.0);
      last_completed = s.completed_cost;
      last_fraction = s.fraction;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&progress, t] {
      const uint32_t level = static_cast<uint32_t>(t % 3);
      for (int b = 0; b < kBlocksPerThread; ++b) {
        const double cost = 1.0 + (b % 7);
        progress.RegisterBlock(level, cost);
        // Retire in two pieces to exercise the shard path: a partial
        // RetireCost plus the residual on RetireBlock.
        progress.RetireCost(cost / 2);
        progress.RetireBlock(level, cost - cost / 2);
        progress.AddCliques(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  progress.MarkComplete();
  done.store(true, std::memory_order_release);
  sampler.join();

  // Every registered unit was retired, exactly.
  EXPECT_DOUBLE_EQ(progress.registered_cost(), progress.completed_cost());
  EXPECT_EQ(progress.cliques(),
            static_cast<uint64_t>(kThreads) * kBlocksPerThread);

  const ProgressSnapshot final_snapshot = progress.TakeSnapshot();
  EXPECT_TRUE(final_snapshot.complete);
  EXPECT_EQ(final_snapshot.fraction, 1.0);
  EXPECT_EQ(final_snapshot.blocks, final_snapshot.blocks_done);
  EXPECT_EQ(final_snapshot.blocks,
            static_cast<uint64_t>(kThreads) * kBlocksPerThread);

  const ProgressAccounting accounting = progress.Accounting();
  EXPECT_TRUE(accounting.enabled);
  EXPECT_DOUBLE_EQ(accounting.predicted_cost, accounting.completed_cost);
}

// The denominator grows mid-run: registering a new burst of cost must not
// push the reported fraction backwards, and the ETA must stay sane.
TEST(ProgressEstimatorTest, EtaSurvivesGrowingDenominator) {
  ProgressEstimator progress;
  progress.BeginLevel(0);
  progress.RegisterBlock(0, 100.0);
  progress.TakeSnapshot();  // establish an EWMA baseline interval

  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  progress.RetireCost(50.0);
  const ProgressSnapshot mid = progress.TakeSnapshot();
  EXPECT_GT(mid.throughput, 0.0);
  EXPECT_GE(mid.eta_seconds, 0.0);
  EXPECT_GT(mid.fraction, 0.0);

  // A new level doubles the outstanding work. Raw completed/registered
  // halves, but the reported fraction is a high-water mark.
  progress.BeginLevel(1);
  progress.RegisterBlock(1, 100.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const ProgressSnapshot grown = progress.TakeSnapshot();
  EXPECT_GE(grown.fraction, mid.fraction);
  EXPECT_GE(grown.eta_seconds, 0.0);
  // More work outstanding than before the burst.
  EXPECT_GT(grown.registered_cost - grown.completed_cost,
            mid.registered_cost - mid.completed_cost);

  progress.RetireBlock(0, 50.0);
  progress.RetireBlock(1, 100.0);
  progress.MarkComplete();
  const ProgressSnapshot final_snapshot = progress.TakeSnapshot();
  EXPECT_EQ(final_snapshot.fraction, 1.0);
  EXPECT_EQ(final_snapshot.eta_seconds, 0.0);

  const ProgressAccounting accounting = progress.Accounting();
  EXPECT_GT(accounting.samples, 0u);
  EXPECT_GE(accounting.mean_abs_eta_error_seconds, 0.0);
}

// A live run must never claim exactly 1.0 — pipelined analysis can
// transiently retire everything registered so far while decompose is
// still producing. Only MarkComplete reports 1.0.
TEST(ProgressEstimatorTest, IncompleteRunNeverReportsFractionOne) {
  ProgressEstimator progress;
  progress.RegisterBlock(0, 10.0);
  progress.RetireBlock(0, 10.0);
  const ProgressSnapshot live = progress.TakeSnapshot();
  EXPECT_LT(live.fraction, 1.0);
  progress.MarkComplete();
  EXPECT_EQ(progress.TakeSnapshot().fraction, 1.0);
}

TEST(ProgressEstimatorTest, ZeroBlockRunCompletesCleanly) {
  ProgressEstimator progress;
  progress.MarkComplete();
  const ProgressSnapshot s = progress.TakeSnapshot();
  EXPECT_TRUE(s.complete);
  EXPECT_EQ(s.fraction, 1.0);
  EXPECT_EQ(s.eta_seconds, 0.0);
  EXPECT_EQ(s.blocks, 0u);

  const ProgressAccounting accounting = progress.Accounting();
  EXPECT_TRUE(accounting.enabled);
  EXPECT_EQ(accounting.predicted_cost, 0.0);
  EXPECT_EQ(accounting.blocks, 0u);
  EXPECT_EQ(accounting.samples, 0u);
}

TEST(ProgressEstimatorTest, MarkCompleteIsIdempotent) {
  ProgressEstimator progress;
  progress.MarkComplete();
  const double wall = progress.Accounting().wall_seconds;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  progress.MarkComplete();
  EXPECT_EQ(progress.Accounting().wall_seconds, wall);
}

// End-to-end: both executors drive the same estimator contract — every
// registered unit retired, clique counts matching the actual result —
// and they register the same predicted cost for the same input (the
// block streams are identical by the emission contract).
TEST(ProgressEstimatorTest, SerialAndPooledFinalAccountingAgree) {
  Rng rng(171);
  const Graph g = gen::BarabasiAlbert(80, 4, &rng);

  auto run = [&](decomp::ExecutorKind kind, uint32_t threads) {
    ProgressEstimator progress;
    decomp::FindMaxCliquesOptions options;
    options.max_block_size = 12;
    options.executor = kind;
    options.num_threads = threads;
    options.progress = &progress;
    decomp::FindMaxCliquesResult result = decomp::FindMaxCliques(g, options);
    EXPECT_GT(result.cliques.size(), 0u);
    EXPECT_EQ(progress.cliques(), result.cliques.size());
    EXPECT_TRUE(progress.complete());
    return result;
  };

  const decomp::FindMaxCliquesResult serial =
      run(decomp::ExecutorKind::kSerial, 1);
  const decomp::FindMaxCliquesResult pooled =
      run(decomp::ExecutorKind::kPooled, 4);

  for (const decomp::FindMaxCliquesResult* r : {&serial, &pooled}) {
    EXPECT_TRUE(r->progress.enabled);
    EXPECT_GT(r->progress.predicted_cost, 0.0);
    EXPECT_GT(r->progress.blocks, 0u);
    // Retired must equal registered to within float-sum noise.
    EXPECT_NEAR(r->progress.completed_cost, r->progress.predicted_cost,
                1e-9 * r->progress.predicted_cost);
  }
  EXPECT_NEAR(serial.progress.predicted_cost, pooled.progress.predicted_cost,
              1e-9 * serial.progress.predicted_cost);
  EXPECT_EQ(serial.progress.blocks, pooled.progress.blocks);
  EXPECT_EQ(serial.progress.cliques, pooled.progress.cliques);
}

// The m-core fallback path registers and retires its cost like any other
// block, so a fallback run still ends complete with balanced books.
TEST(ProgressEstimatorTest, FallbackRunBalancesItsBooks) {
  const Graph g = gen::Complete(10);  // K10 with m=5: immediate fallback
  for (const decomp::ExecutorKind kind :
       {decomp::ExecutorKind::kSerial, decomp::ExecutorKind::kPooled}) {
    ProgressEstimator progress;
    decomp::FindMaxCliquesOptions options;
    options.max_block_size = 5;
    options.executor = kind;
    options.num_threads = 2;
    options.progress = &progress;
    decomp::FindMaxCliquesResult result = decomp::FindMaxCliques(g, options);
    EXPECT_TRUE(result.used_fallback);
    EXPECT_EQ(result.cliques.size(), 1u);

    const ProgressAccounting accounting = progress.Accounting();
    EXPECT_TRUE(accounting.enabled);
    EXPECT_GT(accounting.predicted_cost, 0.0);
    EXPECT_NEAR(accounting.completed_cost, accounting.predicted_cost,
                1e-9 * accounting.predicted_cost);
    EXPECT_EQ(accounting.cliques, 1u);
    EXPECT_EQ(progress.TakeSnapshot().fraction, 1.0);
  }
}

// The sampler end of the contract: a short run produces a parseable
// NDJSON file whose last record is final and whose fraction is 1.0.
TEST(TelemetrySamplerTest, WritesFinalRecordOnFinish) {
  const std::string path = ::testing::TempDir() + "telemetry_sampler_test.ndjson";
  ProgressEstimator progress;
  TelemetryOptions options;
  options.out_path = path;
  options.interval_ms = 1;
  {
    TelemetrySampler sampler(&progress, options);
    ASSERT_TRUE(sampler.Start());
    progress.RegisterBlock(0, 4.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    progress.RetireBlock(0, 4.0);
    sampler.Finish(/*success=*/true);
  }
  EXPECT_TRUE(progress.complete());

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::string last;
  size_t records = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    last = line;
    ++records;
  }
  ASSERT_GE(records, 1u);
  EXPECT_NE(last.find("\"final\":true"), std::string::npos) << last;
  EXPECT_NE(last.find("\"success\":true"), std::string::npos) << last;
  EXPECT_NE(last.find("\"fraction\":1"), std::string::npos) << last;
  std::remove(path.c_str());
}

// The error-exit half of the contract: a run that dies mid-flight (the
// sink failed, an exception unwound through the sampler's destructor)
// must still terminate the stream with a `final:true` record — so a
// consumer can tell "completed with an error" from "truncated file" —
// but carry `success:false` and the honest partial fraction, never a
// fabricated 1.0.
TEST(TelemetrySamplerTest, FailedRunEmitsFinalRecordWithPartialFraction) {
  for (const bool explicit_finish : {true, false}) {
    const std::string path =
        ::testing::TempDir() + "telemetry_sampler_fail_test.ndjson";
    ProgressEstimator progress;
    TelemetryOptions options;
    options.out_path = path;
    options.interval_ms = 1;
    {
      TelemetrySampler sampler(&progress, options);
      ASSERT_TRUE(sampler.Start());
      // Half the registered cost retires, then the run "fails": either
      // an explicit error exit or the destructor's Finish(false) on
      // exception unwind.
      progress.RegisterBlock(0, 4.0);
      progress.RegisterBlock(0, 4.0);
      progress.RetireBlock(0, 4.0);
      if (explicit_finish) sampler.Finish(/*success=*/false);
    }
    EXPECT_FALSE(progress.complete());

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    std::string last;
    while (std::getline(in, line)) {
      if (!line.empty()) last = line;
    }
    ASSERT_FALSE(last.empty());
    EXPECT_NE(last.find("\"final\":true"), std::string::npos) << last;
    EXPECT_NE(last.find("\"success\":false"), std::string::npos) << last;
    EXPECT_EQ(last.find("\"fraction\":1,"), std::string::npos) << last;
    EXPECT_NE(last.find("\"fraction\":0.5"), std::string::npos) << last;
    std::remove(path.c_str());
  }
}

TEST(TelemetrySamplerTest, UnopenableOutputFailsStartAndStaysInert) {
  ProgressEstimator progress;
  TelemetryOptions options;
  options.out_path = ::testing::TempDir() + "no/such/dir/heartbeat.ndjson";
  TelemetrySampler sampler(&progress, options);
  EXPECT_FALSE(sampler.Start());
  sampler.Finish(true);  // must be safe even though Start failed
}

}  // namespace
}  // namespace mce::obs
