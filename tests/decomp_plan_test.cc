#include "decomp/plan.h"

#include <gtest/gtest.h>

#include "decomp/find_max_cliques.h"
#include "gen/generators.h"
#include "gen/special.h"
#include "test_util.h"
#include "util/random.h"

namespace mce::decomp {
namespace {

TEST(PlanTest, MatchesPipelineLevelStructure) {
  Rng rng(3);
  Graph g = gen::BarabasiAlbert(150, 3, &rng);
  PlanOptions options;
  options.max_block_size = 15;
  DecompositionPlan plan = ComputePlan(g, options);

  FindMaxCliquesOptions pipeline_options;
  pipeline_options.max_block_size = 15;
  FindMaxCliquesResult result = FindMaxCliques(g, pipeline_options);
  ASSERT_EQ(plan.levels.size(), result.levels.size());
  for (size_t l = 0; l < plan.levels.size(); ++l) {
    EXPECT_EQ(plan.levels[l].num_nodes, result.levels[l].num_nodes);
    EXPECT_EQ(plan.levels[l].feasible, result.levels[l].feasible);
    EXPECT_EQ(plan.levels[l].hubs, result.levels[l].hubs);
    EXPECT_EQ(plan.levels[l].blocks, result.levels[l].blocks);
  }
  EXPECT_EQ(plan.hits_fallback, result.used_fallback);
}

TEST(PlanTest, ReplicationAtLeastOne) {
  Rng rng(5);
  Graph g = gen::ErdosRenyiGnp(100, 0.08, &rng);
  PlanOptions options;
  options.max_block_size = 20;
  DecompositionPlan plan = ComputePlan(g, options);
  for (const LevelPlan& level : plan.levels) {
    if (level.blocks == 0) continue;
    EXPECT_GE(level.replication_factor, 1.0 - 1e-9);
    EXPECT_GE(level.max_block_nodes, level.min_block_nodes);
    EXPECT_LE(level.max_block_nodes, 20u);
    EXPECT_GT(level.total_block_bytes, 0u);
  }
  EXPECT_GE(plan.OverallReplication(), 1.0 - 1e-9);
}

TEST(PlanTest, SmallerBlocksFragmentButHubRecursionBoundsReplication) {
  Rng rng(7);
  Graph g = gen::OverlayRandomCliques(gen::BarabasiAlbert(200, 3, &rng), 10,
                                      4, 10, true, &rng);
  PlanOptions big;
  big.max_block_size = 80;
  PlanOptions small;
  small.max_block_size = 12;
  DecompositionPlan plan_big = ComputePlan(g, big);
  DecompositionPlan plan_small = ComputePlan(g, small);
  // Smaller blocks fragment the feasible side...
  EXPECT_GT(plan_small.TotalBlocks(), plan_big.TotalBlocks());
  // ...but replication does NOT explode: shrinking m reclassifies the
  // high-degree nodes as hubs, so their neighborhoods move into the
  // recursion instead of being copied into every block — the whole point
  // of the two-level decomposition. (A single-level scheme would copy a
  // hub's neighborhood wherever it appears; see baseline tests.)
  EXPECT_LT(plan_small.OverallReplication(),
            2.0 * plan_big.OverallReplication());
  EXPECT_GT(plan_small.levels.front().hubs, plan_big.levels.front().hubs);
}

TEST(PlanTest, FallbackDetected) {
  Graph g = gen::Complete(12);
  PlanOptions options;
  options.max_block_size = 6;
  DecompositionPlan plan = ComputePlan(g, options);
  EXPECT_TRUE(plan.hits_fallback);
}

TEST(PlanTest, EmptyGraph) {
  DecompositionPlan plan = ComputePlan(Graph(), PlanOptions{});
  ASSERT_EQ(plan.levels.size(), 1u);
  EXPECT_EQ(plan.levels[0].blocks, 0u);
  EXPECT_FALSE(plan.hits_fallback);
  EXPECT_EQ(plan.OverallReplication(), 0.0);
}

}  // namespace
}  // namespace mce::decomp
