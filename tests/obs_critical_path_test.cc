// Critical-path / attribution math on synthetic task DAGs with known
// answers, plus a live cross-check: traces recorded by the serial and
// pooled executors must both yield a critical path that explains the
// whole wall clock (the analyzer's --require-critical-path gate).

#include "obs/critical_path.h"

#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "decomp/find_max_cliques.h"
#include "gen/social.h"
#include "obs/trace.h"

namespace mce::obs {
namespace {

TaskSpan Task(SpanKind kind, uint32_t level, int64_t begin_us,
              int64_t end_us, double cost = 0) {
  TaskSpan s;
  s.kind = kind;
  s.level = level;
  s.begin_us = begin_us;
  s.end_us = end_us;
  s.cost = cost;
  return s;
}

// decompose -> {fast block, slow block} -> filter. The path must route
// through the slow branch and cover the wall exactly.
TEST(CriticalPathTest, DiamondRoutesThroughTheSlowBranch) {
  std::vector<TaskSpan> spans = {
      Task(SpanKind::kDecompose, 0, 0, 100),
      Task(SpanKind::kBlock, 0, 100, 300),   // fast branch
      Task(SpanKind::kBlock, 0, 100, 500),   // slow branch
      Task(SpanKind::kFilter, 0, 500, 600),
  };
  const CriticalPathResult r = ComputeCriticalPath(spans);
  ASSERT_EQ(r.path.size(), 3u);
  EXPECT_EQ(r.path[0].span, 0u);  // decompose
  EXPECT_EQ(r.path[1].span, 2u);  // the slow block, not the fast one
  EXPECT_EQ(r.path[2].span, 3u);  // filter
  EXPECT_DOUBLE_EQ(r.path[0].seconds, 100e-6);
  EXPECT_DOUBLE_EQ(r.path[1].seconds, 400e-6);
  EXPECT_DOUBLE_EQ(r.path[2].seconds, 100e-6);
  EXPECT_DOUBLE_EQ(r.span_seconds, 600e-6);
  EXPECT_DOUBLE_EQ(r.wait_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.wall_seconds, 600e-6);
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
}

// The serial executor nests DecomposeTask(L+1) inside DecomposeTask(L);
// exclusive attribution must clip the parent where the child overlaps so
// the chain still telescopes to exactly the wall.
TEST(CriticalPathTest, NestedChainClipsOverlapExactly) {
  std::vector<TaskSpan> spans = {
      Task(SpanKind::kDecompose, 0, 0, 1000),
      Task(SpanKind::kDecompose, 1, 200, 800),  // nested in level 0
      Task(SpanKind::kBlock, 1, 800, 1200),
  };
  const CriticalPathResult r = ComputeCriticalPath(spans);
  ASSERT_EQ(r.path.size(), 3u);
  EXPECT_EQ(r.path[0].span, 0u);
  EXPECT_EQ(r.path[1].span, 1u);
  EXPECT_EQ(r.path[2].span, 2u);
  EXPECT_DOUBLE_EQ(r.path[0].seconds, 200e-6);  // clipped: [0, 200)
  EXPECT_DOUBLE_EQ(r.path[1].seconds, 600e-6);
  EXPECT_DOUBLE_EQ(r.path[2].seconds, 400e-6);
  EXPECT_DOUBLE_EQ(r.span_seconds, 1200e-6);
  EXPECT_DOUBLE_EQ(r.wall_seconds, 1200e-6);
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
}

// All-parallel level with a scheduling gap: the gap between the
// decompose finishing and the blocks starting shows up as wait time on
// the successor, and contributions + waits still cover the wall.
TEST(CriticalPathTest, SchedulingGapBecomesWaitTime) {
  std::vector<TaskSpan> spans = {
      Task(SpanKind::kDecompose, 0, 0, 100),
      Task(SpanKind::kBlock, 0, 150, 250),
      Task(SpanKind::kBlock, 0, 150, 350),  // last finisher
      Task(SpanKind::kBlock, 0, 150, 300),
  };
  const CriticalPathResult r = ComputeCriticalPath(spans);
  ASSERT_EQ(r.path.size(), 2u);
  EXPECT_EQ(r.path[0].span, 0u);
  EXPECT_EQ(r.path[1].span, 2u);
  EXPECT_DOUBLE_EQ(r.path[0].wait_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.path[1].wait_seconds, 50e-6);  // 100 -> 150 gap
  EXPECT_DOUBLE_EQ(r.span_seconds, 300e-6);
  EXPECT_DOUBLE_EQ(r.wait_seconds, 50e-6);
  EXPECT_DOUBLE_EQ(r.wall_seconds, 350e-6);
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
}

TEST(CriticalPathTest, ReducePrepassIsTheRoot) {
  std::vector<TaskSpan> spans = {
      Task(SpanKind::kDecompose, 0, 50, 100),
      Task(SpanKind::kReduce, 0, 0, 50),
      Task(SpanKind::kBlock, 0, 100, 200),
  };
  const CriticalPathResult r = ComputeCriticalPath(spans);
  ASSERT_EQ(r.path.size(), 3u);
  EXPECT_EQ(spans[r.path[0].span].kind, SpanKind::kReduce);
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
}

TEST(CriticalPathTest, EmptyAndNonDagInputsYieldNoPath) {
  EXPECT_TRUE(ComputeCriticalPath({}).path.empty());
  std::vector<TaskSpan> spans = {Task(SpanKind::kWorkerIdle, 0, 0, 100)};
  const CriticalPathResult r = ComputeCriticalPath(spans);
  EXPECT_TRUE(r.path.empty());
  EXPECT_DOUBLE_EQ(r.wall_seconds, 0.0);  // idle spans are not wall hull
}

TEST(StragglerTest, RankBySecondsOrdersAndTruncates) {
  std::vector<TaskSpan> spans = {
      Task(SpanKind::kBlock, 0, 0, 100),
      Task(SpanKind::kBlock, 0, 0, 400),
      Task(SpanKind::kWorkerIdle, 0, 0, 900),  // never a straggler
      Task(SpanKind::kBlock, 0, 0, 250),
  };
  const std::vector<Straggler> top = RankStragglersBySeconds(spans, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].span, 1u);
  EXPECT_DOUBLE_EQ(top[0].seconds, 400e-6);
  EXPECT_EQ(top[1].span, 3u);
}

// Deviation is calibrated so that 1.0 means "exactly as the cost model
// predicted" over this run; a block taking 3x its fair share ranks first.
TEST(StragglerTest, RankByDeviationFlagsUnderPredictedBlocks) {
  std::vector<TaskSpan> spans = {
      Task(SpanKind::kBlock, 0, 0, 100, /*cost=*/10),
      Task(SpanKind::kBlock, 0, 0, 300, /*cost=*/10),
      Task(SpanKind::kBlock, 0, 0, 200, /*cost=*/20),
      Task(SpanKind::kBlock, 0, 0, 999, /*cost=*/0),  // unpredicted: skipped
  };
  // alpha = 600us / 40 cost units; block 1 ran at 2x its prediction.
  const std::vector<Straggler> top = RankStragglersByDeviation(spans, 4);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].span, 1u);
  EXPECT_NEAR(top[0].deviation, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(top[0].predicted_cost, 10.0);
  EXPECT_NEAR(top[1].deviation, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(top[2].deviation, 2.0 / 3.0, 1e-9);

  // No predictions anywhere -> no deviation ranking at all.
  std::vector<TaskSpan> bare = {Task(SpanKind::kBlock, 0, 0, 100)};
  EXPECT_TRUE(RankStragglersByDeviation(bare, 4).empty());
}

TEST(TaskSpanTest, FromEventsKeepsDagKindsAndLiftsArgs) {
  std::vector<TraceEvent> events(4);
  events[0].kind = SpanKind::kBlock;
  events[0].level = 2;
  events[0].index = 5;
  events[0].begin_us = 10;
  events[0].end_us = 40;
  events[0].args[3] = 7;  // cliques
  events[0].cost = 2.5;
  events[0].prof.task_clock_ns = 123;
  events[0].prof.source = CounterSource::kSoftware;
  events[1].kind = SpanKind::kWorkerIdle;  // observability, not DAG
  events[2].kind = SpanKind::kFallback;
  events[2].args[2] = 4;  // cliques
  events[3].kind = SpanKind::kAdmission;   // observability, not DAG

  const std::vector<TaskSpan> spans = TaskSpansFromEvents(events);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].kind, SpanKind::kBlock);
  EXPECT_EQ(spans[0].level, 2u);
  EXPECT_EQ(spans[0].index, 5u);
  EXPECT_EQ(spans[0].cliques, 7u);
  EXPECT_DOUBLE_EQ(spans[0].cost, 2.5);
  EXPECT_EQ(spans[0].prof.task_clock_ns, 123u);
  EXPECT_EQ(spans[1].kind, SpanKind::kFallback);
  EXPECT_EQ(spans[1].cliques, 4u);
}

TEST(IdleAttributionTest, SplitsLevelCapacityAcrossLanes) {
  std::vector<TaskSpan> spans = {
      Task(SpanKind::kDecompose, 0, 0, 100),
      Task(SpanKind::kBlock, 0, 100, 300),
      Task(SpanKind::kBlock, 0, 100, 200),
  };
  spans[2].lane_tid = 1;  // second worker lane
  const std::vector<LevelIdle> idle = AttributeIdle(spans);
  ASSERT_EQ(idle.size(), 1u);
  EXPECT_EQ(idle[0].level, 0u);
  EXPECT_EQ(idle[0].workers, 2);
  EXPECT_DOUBLE_EQ(idle[0].busy_seconds, 300e-6);
  EXPECT_GE(idle[0].idle_seconds, 0.0);
  EXPECT_GE(idle[0].barrier_idle_seconds, 0.0);
}

// The live contract behind `mce_trace_analyze --require-critical-path`:
// a trace from either executor reconstructs into a DAG whose critical
// path (contributions + waits) explains the run's wall clock, and every
// DAG span of a profiled run carries counter attribution.
TEST(CriticalPathIntegrationTest, SerialAndPooledTracesCoverTheWall) {
  const Graph g = gen::GenerateSocialNetwork(gen::FacebookConfig(0.02));
  uint64_t serial_cliques = 0;
  for (const decomp::ExecutorKind kind :
       {decomp::ExecutorKind::kSerial, decomp::ExecutorKind::kPooled}) {
    TraceRecorder recorder;
    decomp::FindMaxCliquesOptions options;
    options.max_block_size = 10;
    options.executor = kind;
    options.num_threads = 4;
    options.trace = &recorder;
    options.profile = true;
    uint64_t cliques = 0;
    const decomp::StreamingStats stats = decomp::FindMaxCliquesStreaming(
        g, options,
        [&cliques](std::span<const NodeId>, uint32_t) { ++cliques; });

    const std::vector<TaskSpan> spans =
        TaskSpansFromEvents(recorder.Events());
    ASSERT_FALSE(spans.empty());
    for (const TaskSpan& s : spans) {
      EXPECT_NE(s.prof.source, CounterSource::kNone)
          << "unprofiled DAG span of kind "
          << ToString(s.kind);
    }
    const CriticalPathResult r = ComputeCriticalPath(spans);
    ASSERT_FALSE(r.path.empty());
    EXPECT_NEAR(r.coverage, 1.0, 0.05)
        << (kind == decomp::ExecutorKind::kSerial ? "serial" : "pooled");
    EXPECT_GT(r.span_seconds, 0.0);

    // The accumulator the executors fed must agree with the spans the
    // recorder captured: same span population.
    EXPECT_TRUE(stats.profile.enabled);
    EXPECT_EQ(stats.profile.total.spans, spans.size());

    if (kind == decomp::ExecutorKind::kSerial) {
      serial_cliques = cliques;
    } else {
      EXPECT_EQ(cliques, serial_cliques);  // executors agree on the answer
    }
  }
}

}  // namespace
}  // namespace mce::obs
