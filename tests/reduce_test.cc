// Tests for the graph-reduction prepass (src/reduce): rule-level unit
// tests on hand-built graphs, the re-expansion leak check, workspace
// reuse, the degeneracy relabeling of blocks, and the end-to-end property
// that the reduced pipeline emits exactly the unreduced clique set across
// generators, block bounds, executors, and thread counts.

#include "reduce/reduction.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "decomp/blocks.h"
#include "decomp/cut.h"
#include "decomp/find_max_cliques.h"
#include "gen/generators.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "mce/clique.h"
#include "mce/enumerator.h"
#include "reduce/relabel.h"
#include "util/random.h"

namespace mce::reduce {
namespace {

Graph FromEdges(NodeId n, std::vector<std::pair<NodeId, NodeId>> edges) {
  GraphBuilder b(n);
  for (auto [u, v] : edges) b.AddEdge(u, v);
  return b.Build();
}

/// Reference clique set via the baseline enumerator.
CliqueSet Reference(const Graph& g) {
  CliqueSet out;
  EnumerateMaximalCliques(g, MceOptions{}, out.Collector());
  out.Canonicalize();
  return out;
}

/// Trivial cliques plus the surviving expansions of R's maximal cliques —
/// per the ReduceGraph contract this must equal the cliques of `g`.
CliqueSet ReassembledCliques(const Graph& g, const ReductionResult& r,
                             size_t* dropped = nullptr) {
  CliqueSet out;
  for (size_t i = 0; i < r.map.num_trivial_cliques(); ++i) {
    out.Add(r.map.TrivialClique(i));
  }
  size_t leaks = 0;
  Clique expanded;
  EnumerateMaximalCliques(r.graph, MceOptions{},
                          [&](std::span<const NodeId> c) {
                            if (r.map.ExpandClique(c, &expanded)) {
                              out.Add(expanded);
                            } else {
                              ++leaks;
                            }
                          });
  if (dropped != nullptr) *dropped = leaks;
  out.Canonicalize();
  (void)g;
  return out;
}

TEST(ReduceGraphTest, PathCollapsesToEmpty) {
  const Graph g = FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  ReductionResult r = ReduceGraph(g, ReduceOptions{});
  EXPECT_FALSE(r.unchanged);
  EXPECT_EQ(r.graph.num_nodes(), 0u);
  EXPECT_EQ(r.stats.vertices_removed, 4u);
  EXPECT_EQ(r.stats.edges_removed, 3u);
  EXPECT_EQ(r.stats.trivial_cliques, 3u);
  EXPECT_GE(r.stats.rounds, 1u);
  CliqueSet got = ReassembledCliques(g, r);
  CliqueSet want = Reference(g);
  EXPECT_TRUE(CliqueSet::Equal(got, want));
}

TEST(ReduceGraphTest, StarSuppressesTheCoveredCenter) {
  // K1,4: the four leaves emit their edges; the then-isolated center's
  // {center} candidate is covered and must be suppressed, not emitted.
  const Graph g = FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  ReductionResult r = ReduceGraph(g, ReduceOptions{});
  EXPECT_EQ(r.graph.num_nodes(), 0u);
  EXPECT_EQ(r.stats.degree1_removed, 4u);
  EXPECT_EQ(r.stats.isolated_removed, 1u);
  EXPECT_EQ(r.stats.trivial_cliques, 4u);
  EXPECT_EQ(r.stats.suppressed_cliques, 1u);
  CliqueSet got = ReassembledCliques(g, r);
  CliqueSet want = Reference(g);
  EXPECT_TRUE(CliqueSet::Equal(got, want));
}

TEST(ReduceGraphTest, IsolatedVerticesEmitSingletons) {
  GraphBuilder b(3);  // no edges at all
  const Graph g = b.Build();
  ReductionResult r = ReduceGraph(g, ReduceOptions{});
  EXPECT_EQ(r.stats.isolated_removed, 3u);
  EXPECT_EQ(r.stats.trivial_cliques, 3u);
  CliqueSet got = ReassembledCliques(g, r);
  CliqueSet want = Reference(g);
  EXPECT_TRUE(CliqueSet::Equal(got, want));
}

TEST(ReduceGraphTest, CliqueCollapsesViaSimplicialChain) {
  // K5: the first simplicial elimination emits the whole clique; every
  // later candidate is covered by it.
  GraphBuilder b(5);
  for (NodeId i = 0; i < 5; ++i)
    for (NodeId j = i + 1; j < 5; ++j) b.AddEdge(i, j);
  const Graph g = b.Build();
  ReductionResult r = ReduceGraph(g, ReduceOptions{});
  EXPECT_EQ(r.graph.num_nodes(), 0u);
  EXPECT_EQ(r.stats.trivial_cliques, 1u);
  EXPECT_EQ(r.stats.suppressed_cliques, 4u);
  ASSERT_EQ(r.map.num_trivial_cliques(), 1u);
  EXPECT_EQ(r.map.TrivialClique(0).size(), 5u);
}

TEST(ReduceGraphTest, TrueTwinsMergeIntoSuperVertices) {
  // C5 blown up by K2s: each cycle position holds an adjacent twin pair,
  // consecutive pairs fully connected. The pairs merge (degree-5 vertices
  // with non-clique neighborhoods are otherwise untouchable) and R is
  // exactly C5; its 5 edges re-expand to the 5 maximal K4s.
  GraphBuilder b(10);
  auto a = [](NodeId pos) { return static_cast<NodeId>(2 * pos); };
  for (NodeId pos = 0; pos < 5; ++pos) {
    b.AddEdge(a(pos), a(pos) + 1);
    const NodeId next = a((pos + 1) % 5);
    for (NodeId x : {a(pos), static_cast<NodeId>(a(pos) + 1)})
      for (NodeId y : {next, static_cast<NodeId>(next + 1)}) b.AddEdge(x, y);
  }
  const Graph g = b.Build();
  ReductionResult r = ReduceGraph(g, ReduceOptions{});
  EXPECT_EQ(r.stats.twins_merged, 5u);
  EXPECT_EQ(r.graph.num_nodes(), 5u);
  EXPECT_EQ(r.graph.num_edges(), 5u);
  for (NodeId v = 0; v < r.graph.num_nodes(); ++v) {
    EXPECT_EQ(r.map.ClassOf(v).size(), 2u);
  }
  CliqueSet got = ReassembledCliques(g, r);
  CliqueSet want = Reference(g);
  EXPECT_EQ(want.size(), 5u);
  EXPECT_TRUE(CliqueSet::Equal(got, want));
}

TEST(ReduceGraphTest, DominationCounterexampleStaysExact) {
  // Edges u-v, u-b, v-b, v-x: naive dominated-vertex deletion (u is
  // dominated by v) would lose {u,v,b} or leak {v,b}. The simplicial rule
  // plus the cover index must keep the set exact: {u,v,b} and {v,x}.
  const Graph g = FromEdges(4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}});
  ReductionResult r = ReduceGraph(g, ReduceOptions{});
  CliqueSet got = ReassembledCliques(g, r);
  CliqueSet want = Reference(g);
  ASSERT_EQ(want.size(), 2u);
  EXPECT_TRUE(CliqueSet::Equal(got, want));
}

TEST(ReduceGraphTest, ExpandCliqueDropsLeakedCliques) {
  // u={0} is simplicial over the edge v-w = {1}-{2}; v and w survive in R
  // (each pinned by a C5 that no rule touches), so {v,w} is a maximal
  // clique OF R whose expansion is contained in the emitted {u,v,w} —
  // ExpandClique must drop it.
  GraphBuilder b(13);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  for (NodeId i = 0; i < 5; ++i) {  // ring A: 3..7, ring B: 8..12
    b.AddEdge(3 + i, 3 + (i + 1) % 5);
    b.AddEdge(8 + i, 8 + (i + 1) % 5);
  }
  b.AddEdge(1, 3);
  b.AddEdge(2, 8);
  const Graph g = b.Build();
  ReductionResult r = ReduceGraph(g, ReduceOptions{});
  EXPECT_EQ(r.stats.dominated_removed, 1u);
  ASSERT_EQ(r.map.num_trivial_cliques(), 1u);
  EXPECT_EQ(r.map.TrivialClique(0).size(), 3u);
  size_t dropped = 0;
  CliqueSet got = ReassembledCliques(g, r, &dropped);
  EXPECT_EQ(dropped, 1u);  // exactly the leaked {v,w}
  CliqueSet want = Reference(g);
  EXPECT_TRUE(CliqueSet::Equal(got, want));
}

TEST(ReduceGraphTest, NothingFiresOnARegularRingLattice) {
  // Watts-Strogatz beta=0 (k=6 ring lattice): 6-regular, every
  // neighborhood non-clique, all closed neighborhoods distinct — the
  // fixed point is reached in zero firing rounds and R == G.
  Rng rng(3);
  const Graph g = gen::WattsStrogatz(200, 6, 0.0, &rng);
  ReductionResult r = ReduceGraph(g, ReduceOptions{});
  EXPECT_EQ(r.stats.rounds, 0u);
  EXPECT_EQ(r.stats.vertices_removed, 0u);
  // The pre-scan takes the irreducible fast path: no reduced copy is
  // built, the map stays inactive, callers keep the input graph.
  EXPECT_TRUE(r.unchanged);
  EXPECT_FALSE(r.map.active());
  EXPECT_EQ(r.graph.num_nodes(), 0u);
}

TEST(ReduceGraphTest, WorkspaceReuseIsDeterministic) {
  Rng rng(11);
  const Graph g1 =
      gen::PowerLawConfigurationModel(400, 2.5, 1, 30, &rng);
  const Graph g2 = gen::BarabasiAlbert(300, 2, &rng);
  ReduceWorkspace ws;
  ReductionResult first = ReduceGraph(g1, ReduceOptions{}, &ws);
  ReduceGraph(g2, ReduceOptions{}, &ws);  // dirty the workspace
  ReductionResult again = ReduceGraph(g1, ReduceOptions{}, &ws);
  EXPECT_EQ(first.graph.num_nodes(), again.graph.num_nodes());
  EXPECT_EQ(first.graph.num_edges(), again.graph.num_edges());
  EXPECT_EQ(first.stats.vertices_removed, again.stats.vertices_removed);
  EXPECT_EQ(first.stats.trivial_cliques, again.stats.trivial_cliques);
  ASSERT_EQ(first.map.num_trivial_cliques(), again.map.num_trivial_cliques());
  for (size_t i = 0; i < first.map.num_trivial_cliques(); ++i) {
    const auto a = first.map.TrivialClique(i);
    const auto b = again.map.TrivialClique(i);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(DegeneracyRelabelTest, PermutationPreservesBlockSemantics) {
  // Dense enough that blocks clear the relabel cost gate (>= 32 nodes,
  // average degree >= 16) — a sparse graph would make this test vacuous.
  Rng rng(5);
  const Graph g = gen::ErdosRenyiGnp(150, 0.35, &rng);
  const uint32_t m = 80;
  decomp::CutResult cut = decomp::Cut(g, m);
  ASSERT_FALSE(cut.feasible.empty());
  decomp::BlocksOptions opts;
  opts.max_block_size = m;
  std::vector<decomp::Block> blocks = decomp::BuildBlocks(g, cut.feasible, opts);
  ASSERT_FALSE(blocks.empty());
  bool any_permuted = false;
  for (decomp::Block& block : blocks) {
    // Snapshot parent-id facts before relabeling in place.
    CliqueSet before;
    EnumerateMaximalCliques(block.subgraph.graph, MceOptions{},
                            [&](std::span<const NodeId> c) {
                              Clique mapped;
                              for (NodeId v : c)
                                mapped.push_back(block.subgraph.to_parent[v]);
                              before.Add(mapped);
                            });
    std::vector<std::pair<NodeId, decomp::NodeRole>> roles_before;
    for (NodeId v = 0; v < block.num_nodes(); ++v)
      roles_before.emplace_back(block.subgraph.to_parent[v], block.roles[v]);
    std::sort(roles_before.begin(), roles_before.end());
    const NodeId nodes = block.num_nodes();
    const uint64_t edges = block.num_edges();
    const size_t kernels = block.kernel_local.size();

    DegeneracyRelabelBlock(&block);

    EXPECT_EQ(block.num_nodes(), nodes);
    EXPECT_EQ(block.num_edges(), edges);
    ASSERT_EQ(block.kernel_local.size(), kernels);
    EXPECT_TRUE(std::is_sorted(block.kernel_local.begin(),
                               block.kernel_local.end()));
    std::vector<std::pair<NodeId, decomp::NodeRole>> roles_after;
    for (NodeId v = 0; v < block.num_nodes(); ++v)
      roles_after.emplace_back(block.subgraph.to_parent[v], block.roles[v]);
    std::sort(roles_after.begin(), roles_after.end());
    EXPECT_EQ(roles_before, roles_after);
    CliqueSet after;
    EnumerateMaximalCliques(block.subgraph.graph, MceOptions{},
                            [&](std::span<const NodeId> c) {
                              Clique mapped;
                              for (NodeId v : c)
                                mapped.push_back(block.subgraph.to_parent[v]);
                              after.Add(mapped);
                            });
    EXPECT_TRUE(CliqueSet::Equal(before, after));
    if (!std::is_sorted(block.subgraph.to_parent.begin(),
                        block.subgraph.to_parent.end())) {
      any_permuted = true;
    }
  }
  // Induce assigns local ids in ascending parent order, so a
  // non-increasing to_parent proves the relabeling actually ran on at
  // least one block (the gate did not skip everything).
  EXPECT_TRUE(any_permuted);
}

// ---------------------------------------------------------------------------
// End-to-end property: with options.reduce the pipeline emits exactly the
// unreduced canonical clique set, across graph families, block bounds,
// executors, and thread counts — including the m-core fallback and a
// graph the prepass reduces to empty.

struct SweepGraph {
  std::string name;
  Graph graph;
};

std::vector<SweepGraph> SweepGraphs() {
  std::vector<SweepGraph> out;
  Rng rng(17);
  out.push_back({"er", gen::ErdosRenyiGnp(250, 0.03, &rng)});
  out.push_back({"ba", gen::BarabasiAlbert(300, 2, &rng)});
  out.push_back({"ws", gen::WattsStrogatz(300, 6, 0.1, &rng)});
  out.push_back(
      {"social", gen::PowerLawConfigurationModel(400, 2.5, 1, 40, &rng)});
  // Reduces to empty: a tree has only simplicial eliminations.
  GraphBuilder path(60);
  for (NodeId v = 0; v + 1 < 60; ++v) path.AddEdge(v, v + 1);
  out.push_back({"path", path.Build()});
  return out;
}

TEST(ReducePropertyTest, ReducedMatchesUnreducedAcrossTheSweep) {
  for (SweepGraph& sg : SweepGraphs()) {
    for (uint32_t m : {8u, 48u}) {
      decomp::FindMaxCliquesOptions base;
      base.max_block_size = m;
      base.executor = decomp::ExecutorKind::kSerial;
      base.num_threads = 1;
      base.reduce = false;
      decomp::FindMaxCliquesResult want = decomp::FindMaxCliques(sg.graph, base);
      for (decomp::ExecutorKind kind :
           {decomp::ExecutorKind::kSerial, decomp::ExecutorKind::kPooled}) {
        for (uint32_t threads : {1u, 4u}) {
          decomp::FindMaxCliquesOptions options = base;
          options.reduce = true;
          options.executor = kind;
          options.num_threads = threads;
          decomp::FindMaxCliquesResult got =
              decomp::FindMaxCliques(sg.graph, options);
          EXPECT_TRUE(got.reduction.enabled);
          EXPECT_TRUE(CliqueSet::Equal(got.cliques, want.cliques))
              << sg.name << " m=" << m << " kind=" << static_cast<int>(kind)
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST(ReducePropertyTest, PathReducesToEmptyPipeline) {
  GraphBuilder b(40);
  for (NodeId v = 0; v + 1 < 40; ++v) b.AddEdge(v, v + 1);
  const Graph g = b.Build();
  decomp::FindMaxCliquesOptions options;
  options.max_block_size = 8;
  options.reduce = true;
  decomp::FindMaxCliquesResult got = decomp::FindMaxCliques(g, options);
  EXPECT_EQ(got.reduction.vertices_removed, 40u);
  EXPECT_EQ(got.cliques.size(), 39u);  // the 39 edges
  CliqueSet want = Reference(g);
  EXPECT_TRUE(CliqueSet::Equal(got.cliques, want));
}

TEST(ReducePropertyTest, McoreFallbackStillExact) {
  // Dense ER core with m=4: the reduced graph is its own m-core (no
  // feasible vertices), so the pipeline falls back to direct enumeration
  // of R — after the prepass has already stripped the pendant. A complete
  // graph would not do here: its vertices are all true twins and the
  // prepass would collapse it outright.
  Rng rng(23);
  Graph core = gen::ErdosRenyiGnp(30, 0.6, &rng);
  GraphBuilder b(31);
  for (NodeId u = 0; u < core.num_nodes(); ++u)
    for (NodeId v : core.Neighbors(u))
      if (u < v) b.AddEdge(u, v);
  b.AddEdge(0, 30);  // pendant: guarantees the prepass fires
  const Graph g = b.Build();
  CliqueSet want = Reference(g);
  for (decomp::ExecutorKind kind :
       {decomp::ExecutorKind::kSerial, decomp::ExecutorKind::kPooled}) {
    decomp::FindMaxCliquesOptions options;
    options.max_block_size = 4;
    options.reduce = true;
    options.executor = kind;
    options.num_threads = kind == decomp::ExecutorKind::kPooled ? 4 : 1;
    decomp::FindMaxCliquesResult got = decomp::FindMaxCliques(g, options);
    // The pendant {0,12} goes to the prepass; K12 survives reduction
    // (degree 11 > max_fold_degree) and lands in the fallback.
    EXPECT_TRUE(got.used_fallback) << static_cast<int>(kind);
    EXPECT_GE(got.reduction.degree1_removed, 1u);
    EXPECT_TRUE(CliqueSet::Equal(got.cliques, want)) << static_cast<int>(kind);
  }
}

}  // namespace
}  // namespace mce::reduce
