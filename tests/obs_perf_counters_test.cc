// Per-thread counter plumbing: delta arithmetic, the Begin/Finish window,
// and the accumulator invariant the --json "profile" object relies on —
// per-kind and per-level buckets only ever receive what the total
// receives, so their sums reproduce the total exactly.

#include "obs/perf_counters.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace mce::obs {
namespace {

CounterDelta MakeDelta(uint64_t cycles, uint64_t instructions,
                       uint64_t clock_ns,
                       CounterSource source = CounterSource::kSoftware) {
  CounterDelta d;
  d.cycles = cycles;
  d.instructions = instructions;
  d.cache_misses = cycles / 10;
  d.branch_misses = cycles / 100;
  d.task_clock_ns = clock_ns;
  d.source = source;
  return d;
}

TEST(CounterDeltaTest, AccumulateSumsFieldsAndPromotesSource) {
  CounterDelta sum;
  EXPECT_EQ(sum.source, CounterSource::kNone);
  sum += MakeDelta(100, 200, 50, CounterSource::kSoftware);
  EXPECT_EQ(sum.cycles, 100u);
  EXPECT_EQ(sum.instructions, 200u);
  EXPECT_EQ(sum.source, CounterSource::kSoftware);  // kNone adopts
  sum += MakeDelta(10, 20, 5, CounterSource::kHardware);
  EXPECT_EQ(sum.cycles, 110u);
  EXPECT_EQ(sum.instructions, 220u);
  EXPECT_EQ(sum.task_clock_ns, 55u);
  // Any hardware contribution marks the aggregate as hardware-backed.
  EXPECT_EQ(sum.source, CounterSource::kHardware);
  sum += MakeDelta(1, 1, 1, CounterSource::kSoftware);
  EXPECT_EQ(sum.source, CounterSource::kHardware);
}

TEST(CounterDeltaTest, SaturatingSubtractClampsAtZero) {
  CounterDelta parent = MakeDelta(1000, 500, 300);
  CounterDelta children = MakeDelta(400, 100, 80);
  parent.SaturatingSubtract(children);
  EXPECT_EQ(parent.cycles, 600u);
  EXPECT_EQ(parent.instructions, 400u);
  EXPECT_EQ(parent.task_clock_ns, 220u);
  EXPECT_EQ(parent.source, CounterSource::kSoftware);  // kept

  // Children can over-count the parent window (multiplex scaling jitter);
  // self time must clamp to zero instead of wrapping.
  CounterDelta small = MakeDelta(10, 10, 10);
  small.SaturatingSubtract(MakeDelta(1000, 1000, 1000));
  EXPECT_EQ(small.cycles, 0u);
  EXPECT_EQ(small.instructions, 0u);
  EXPECT_EQ(small.task_clock_ns, 0u);
}

TEST(ScopedCountersTest, WindowMeasuresBusyWork) {
  ScopedCounters sc;
  EXPECT_FALSE(sc.active());
  sc.Begin();
  EXPECT_TRUE(sc.active());
  // Burn enough CPU that CLOCK_THREAD_CPUTIME_ID must advance even at
  // coarse clock granularity.
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 20'000'000; ++i) sink = sink + i * i;
  const CounterDelta d = sc.Finish();
  EXPECT_FALSE(sc.active());
  EXPECT_GT(d.task_clock_ns, 0u);
  if (PerfCounterSet::HardwareAvailable()) {
    EXPECT_EQ(d.source, CounterSource::kHardware);
    EXPECT_GT(d.cycles, 0u);
    EXPECT_GT(d.instructions, 0u);
  } else {
    // Container / seccomp degradation: only the software clock, and the
    // hardware fields stay zero rather than reporting garbage.
    EXPECT_EQ(d.source, CounterSource::kSoftware);
    EXPECT_EQ(d.cycles, 0u);
    EXPECT_EQ(d.instructions, 0u);
  }
}

TEST(ScopedCountersTest, HardwareProbeIsStable) {
  const bool first = PerfCounterSet::HardwareAvailable();
  EXPECT_EQ(PerfCounterSet::HardwareAvailable(), first);  // cached probe
  EXPECT_EQ(PerfCounterSet::ForCurrentThread().hardware(), first);
}

TEST(ProfileBucketTest, DerivedMetricsGuardZeroDenominators) {
  ProfileBucket b;
  EXPECT_EQ(b.Ipc(), 0.0);
  EXPECT_EQ(b.NsPerClique(), 0.0);
  b.counters = MakeDelta(1000, 2500, 4000);
  b.cliques = 8;
  EXPECT_DOUBLE_EQ(b.Ipc(), 2.5);
  EXPECT_DOUBLE_EQ(b.NsPerClique(), 500.0);
}

TEST(ProfileAccumulatorTest, BucketSumsReproduceTheTotalExactly) {
  ProfileAccumulator acc;
  // A miniature run: reduce prepass (no level), two decompose levels,
  // blocks on both, a filter on level 0.
  acc.Add(SpanKind::kReduce, ProfileAccumulator::kNoLevel, 0.010, 2,
          MakeDelta(500, 900, 10'000'000));
  acc.Add(SpanKind::kDecompose, 0, 0.020, 0, MakeDelta(100, 150, 20'000'000));
  acc.Add(SpanKind::kBlock, 0, 0.030, 5, MakeDelta(300, 600, 30'000'000));
  acc.Add(SpanKind::kBlock, 0, 0.040, 7, MakeDelta(400, 800, 40'000'000));
  acc.Add(SpanKind::kFilter, 0, 0.005, 3, MakeDelta(50, 60, 5'000'000));
  acc.Add(SpanKind::kDecompose, 1, 0.015, 0, MakeDelta(80, 90, 15'000'000));
  acc.Add(SpanKind::kBlock, 1, 0.025, 11, MakeDelta(200, 220, 25'000'000));

  const ProfileStats stats = acc.Snapshot();
  EXPECT_TRUE(stats.enabled);
  EXPECT_FALSE(stats.hardware);  // every delta above is software-sourced
  EXPECT_EQ(stats.total.spans, 7u);
  EXPECT_EQ(stats.total.cliques, 2u + 5 + 7 + 3 + 11);
  EXPECT_DOUBLE_EQ(stats.total.seconds, 0.145);

  // by_kind partitions the total.
  ProfileBucket kind_sum;
  for (const auto& [kind, bucket] : stats.by_kind) {
    (void)kind;
    kind_sum.spans += bucket.spans;
    kind_sum.seconds += bucket.seconds;
    kind_sum.cliques += bucket.cliques;
    kind_sum.counters += bucket.counters;
  }
  EXPECT_EQ(kind_sum.spans, stats.total.spans);
  EXPECT_EQ(kind_sum.cliques, stats.total.cliques);
  EXPECT_DOUBLE_EQ(kind_sum.seconds, stats.total.seconds);
  EXPECT_EQ(kind_sum.counters.cycles, stats.total.counters.cycles);
  EXPECT_EQ(kind_sum.counters.instructions,
            stats.total.counters.instructions);
  EXPECT_EQ(kind_sum.counters.task_clock_ns,
            stats.total.counters.task_clock_ns);

  // by_level partitions everything except the kNoLevel reduce span.
  ASSERT_EQ(stats.by_level.size(), 2u);
  ProfileBucket level_sum;
  for (const ProfileBucket& bucket : stats.by_level) {
    level_sum.spans += bucket.spans;
    level_sum.cliques += bucket.cliques;
    level_sum.counters += bucket.counters;
  }
  EXPECT_EQ(level_sum.spans, stats.total.spans - 1);
  EXPECT_EQ(level_sum.cliques, stats.total.cliques - 2);
  EXPECT_EQ(level_sum.counters.cycles, stats.total.counters.cycles - 500);
  EXPECT_EQ(level_sum.counters.task_clock_ns,
            stats.total.counters.task_clock_ns - 10'000'000);

  // A hardware delta anywhere flips the run-level flag.
  acc.Add(SpanKind::kBlock, 0, 0.001, 0,
          MakeDelta(10, 10, 1000, CounterSource::kHardware));
  EXPECT_TRUE(acc.Snapshot().hardware);

  // The human-readable summary mentions the source and span count.
  const std::string text = acc.Snapshot().ToString();
  EXPECT_NE(text.find("spans"), std::string::npos) << text;
}

}  // namespace
}  // namespace mce::obs
