#include "graph/graph.h"

#include <vector>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/subgraph.h"
#include "graph/views.h"
#include "test_util.h"

namespace mce {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
  EXPECT_EQ(g.Density(), 0.0);
}

TEST(GraphBuilderTest, BuildsTriangle) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  Graph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(2), 2u);
}

TEST(GraphBuilderTest, DropsSelfLoopsAndDuplicates) {
  GraphBuilder b;
  b.AddEdge(0, 0);  // self-loop dropped
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);  // duplicate (reversed)
  b.AddEdge(0, 1);  // duplicate
  Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphBuilderTest, ReserveNodesCreatesIsolatedNodes) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.ReserveNodes(5);
  Graph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.Degree(4), 0u);
  EXPECT_TRUE(g.Neighbors(4).empty());
}

TEST(GraphBuilderTest, NodeCountCoversLargestEndpoint) {
  GraphBuilder b;
  b.AddEdge(2, 9);
  Graph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.Degree(0), 0u);
}

TEST(GraphBuilderTest, BuilderIsReusableAfterBuild) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  Graph g1 = b.Build();
  EXPECT_EQ(g1.num_edges(), 1u);
  b.AddEdge(0, 2);
  Graph g2 = b.Build();
  EXPECT_EQ(g2.num_edges(), 1u);
  EXPECT_EQ(g2.num_nodes(), 3u);
  EXPECT_TRUE(g2.HasEdge(0, 2));
  EXPECT_FALSE(g2.HasEdge(0, 1));
}

TEST(GraphTest, NeighborsAreSortedAndDuplicateFree) {
  GraphBuilder b;
  b.AddEdge(3, 1);
  b.AddEdge(3, 7);
  b.AddEdge(3, 0);
  b.AddEdge(3, 5);
  Graph g = b.Build();
  auto nbrs = g.Neighbors(3);
  std::vector<NodeId> v(nbrs.begin(), nbrs.end());
  EXPECT_EQ(v, (std::vector<NodeId>{0, 1, 5, 7}));
}

TEST(GraphTest, DensityOfCompleteGraphIsOne) {
  GraphBuilder b;
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = i + 1; j < 5; ++j) b.AddEdge(i, j);
  }
  Graph g = b.Build();
  EXPECT_DOUBLE_EQ(g.Density(), 1.0);
}

TEST(GraphTest, Figure1Degrees) {
  using namespace mce::test;
  Graph g = Figure1Graph();
  EXPECT_EQ(g.num_nodes(), static_cast<NodeId>(kFig1Nodes));
  EXPECT_EQ(g.Degree(D), 7u);
  EXPECT_EQ(g.Degree(S), 5u);
  EXPECT_EQ(g.Degree(E), 5u);
  EXPECT_EQ(g.Degree(H), 4u);
  EXPECT_EQ(g.MaxDegree(), 7u);
}

TEST(InduceTest, MapsIdsAndKeepsEdges) {
  using namespace mce::test;
  Graph g = Figure1Graph();
  // Induce on the hub nodes {D, S, E}: should be the triangle.
  InducedSubgraph sub = Induce(g, std::vector<NodeId>{S, D, E});
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);
  // to_parent is ascending.
  EXPECT_EQ(sub.to_parent, (std::vector<NodeId>{D, E, S}));
  // Translate back.
  std::vector<NodeId> parents = ToParentIds(sub, std::vector<NodeId>{0, 2});
  EXPECT_EQ(parents, (std::vector<NodeId>{D, S}));
}

TEST(InduceTest, DeduplicatesInputNodes) {
  Graph g = test::PathGraph(4);
  InducedSubgraph sub = Induce(g, std::vector<NodeId>{2, 1, 2, 1});
  EXPECT_EQ(sub.graph.num_nodes(), 2u);
  EXPECT_EQ(sub.graph.num_edges(), 1u);
}

TEST(InduceTest, EmptySelection) {
  Graph g = test::PathGraph(4);
  InducedSubgraph sub = Induce(g, std::vector<NodeId>{});
  EXPECT_EQ(sub.graph.num_nodes(), 0u);
  EXPECT_TRUE(sub.to_parent.empty());
}

TEST(InduceTest, DropsEdgesToOutsiders) {
  Graph g = test::StarGraph(5);
  InducedSubgraph sub = Induce(g, std::vector<NodeId>{1, 2, 3});
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 0u);  // leaves are pairwise non-adjacent
}

TEST(ViewsTest, MatrixMatchesGraph) {
  Graph g = test::Figure1Graph();
  AdjacencyMatrix m(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(m.Adjacent(u, v), g.HasEdge(u, v)) << u << "," << v;
    }
  }
}

TEST(ViewsTest, BitsetGraphMatchesGraph) {
  Graph g = test::Figure1Graph();
  BitsetGraph bg(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(bg.Row(u).Count(), g.Degree(u));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(bg.Adjacent(u, v), g.HasEdge(u, v)) << u << "," << v;
    }
  }
}

TEST(GraphTest, EqualityOperator) {
  Graph a = test::PathGraph(4);
  Graph b = test::PathGraph(4);
  Graph c = test::CycleGraph(4);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace mce
