// The executors and the trace recorder must agree: LevelStats'
// span-derived timings (decompose/analyze/overlap/idle) are recomputable
// from the exported spans, and the metrics registry reflects the workload.

#include <algorithm>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "gen/generators.h"
#include "gen/social.h"
#include "obs/metrics.h"
#include "obs/span_math.h"
#include "obs/trace.h"
#include "util/random.h"

namespace mce::exec {
namespace {

struct TracedRun {
  decomp::StreamingStats stats;
  std::vector<obs::TraceEvent> events;
  uint64_t counter(obs::MetricsRegistry& registry, const char* name) {
    return registry.GetCounter(name).value();
  }
};

TracedRun RunTraced(const Graph& g, decomp::ExecutorKind kind,
                    uint32_t threads, obs::TraceRecorder* recorder,
                    obs::MetricsRegistry* registry, uint32_t m = 10) {
  decomp::FindMaxCliquesOptions options;
  options.max_block_size = m;
  options.executor = kind;
  options.num_threads = threads;
  options.trace = recorder;
  options.metrics = registry;
  TracedRun out;
  out.stats = decomp::FindMaxCliquesStreaming(
      g, options, [](std::span<const NodeId>, uint32_t) {});
  if (recorder != nullptr) out.events = recorder->Events();
  return out;
}

/// The spans of one recursion level, split by kind.
struct LevelSpans {
  std::vector<obs::TimeRange> decompose;
  std::vector<obs::TimeRange> analyze;  // block + filter (+ fallback)
  double block_seconds = 0;
};

std::map<uint32_t, LevelSpans> SplitByLevel(
    const std::vector<obs::TraceEvent>& events) {
  std::map<uint32_t, LevelSpans> levels;
  for (const obs::TraceEvent& e : events) {
    const obs::TimeRange r{static_cast<double>(e.begin_us) * 1e-6,
                           static_cast<double>(e.end_us) * 1e-6};
    LevelSpans& ls = levels[e.level];
    switch (e.kind) {
      case obs::SpanKind::kDecompose:
        ls.decompose.push_back(r);
        break;
      case obs::SpanKind::kBlock:
      case obs::SpanKind::kBlockShard:
      case obs::SpanKind::kFallback:
        ls.analyze.push_back(r);
        ls.block_seconds += r.Length();
        break;
      case obs::SpanKind::kFilter:
        ls.analyze.push_back(r);
        break;
      default:
        break;  // pool idle / sim lanes carry no level timing
    }
  }
  return levels;
}

TEST(ExecTraceTest, SerialExecutorRecordsEveryTask) {
  Rng rng(7);
  const Graph g = gen::BarabasiAlbert(80, 5, &rng);
  obs::TraceRecorder recorder;
  obs::MetricsRegistry registry;
  TracedRun run =
      RunTraced(g, decomp::ExecutorKind::kSerial, 1, &recorder, &registry);

  uint64_t decompose_spans = 0, block_spans = 0;
  for (const obs::TraceEvent& e : run.events) {
    EXPECT_GE(e.end_us, e.begin_us);
    if (e.kind == obs::SpanKind::kDecompose) ++decompose_spans;
    if (e.kind == obs::SpanKind::kBlock) ++block_spans;
  }
  uint64_t total_blocks = 0;
  for (const decomp::LevelStats& level : run.stats.levels) {
    total_blocks += level.blocks;
  }
  EXPECT_EQ(decompose_spans, run.stats.levels.size());
  EXPECT_EQ(block_spans, total_blocks);
  EXPECT_GT(block_spans, 0u);

  // The metrics registry saw the same workload the stats report.
  EXPECT_EQ(run.counter(registry, "exec.blocks_analyzed"), total_blocks);
  EXPECT_EQ(run.counter(registry, "pipeline.cliques_emitted"),
            run.stats.cliques_emitted);
  EXPECT_EQ(run.counter(registry, "pipeline.levels"),
            run.stats.levels.size());
}

TEST(ExecTraceTest, PooledStatsAreRecomputableFromSpans) {
  const Graph g = gen::GenerateSocialNetwork(gen::FacebookConfig(0.02));
  for (uint32_t threads : {2u, 4u}) {
    SCOPED_TRACE(testing::Message() << "threads " << threads);
    obs::TraceRecorder recorder;
    obs::MetricsRegistry registry;
    TracedRun run = RunTraced(g, decomp::ExecutorKind::kPooled, threads,
                              &recorder, &registry, /*m=*/40);
    ASSERT_GE(run.stats.levels.size(), 2u);

    std::map<uint32_t, LevelSpans> levels = SplitByLevel(run.events);
    // Overlap is defined against the union of earlier levels' analysis
    // hulls — rebuild it in delivery (= level) order, exactly as the
    // engine does.
    std::vector<obs::TimeRange> earlier_hulls;
    for (uint32_t l = 0; l < run.stats.levels.size(); ++l) {
      SCOPED_TRACE(testing::Message() << "level " << l);
      const decomp::LevelStats& stats = run.stats.levels[l];
      const LevelSpans& spans = levels[l];

      ASSERT_EQ(spans.decompose.size(), 1u);
      const obs::TimeRange decompose_window = spans.decompose.front();
      EXPECT_NEAR(stats.decompose_seconds, decompose_window.Length(), 1e-6);

      const obs::TimeRange analyze_hull = obs::Hull(spans.analyze);
      EXPECT_NEAR(stats.analyze_seconds, analyze_hull.Length(), 1e-6);
      EXPECT_NEAR(stats.block_seconds, spans.block_seconds, 1e-6);
      EXPECT_NEAR(stats.overlap_seconds,
                  obs::OverlapLength(decompose_window, earlier_hulls), 1e-6);
      const obs::IdleSplit idle =
          obs::SplitIdle(spans.analyze, spans.block_seconds,
                         static_cast<int>(stats.analyze_threads));
      EXPECT_NEAR(stats.idle_seconds, idle.idle_seconds, 1e-6);
      EXPECT_NEAR(stats.barrier_idle_seconds, idle.barrier_idle_seconds,
                  1e-6);
      if (!analyze_hull.Empty()) earlier_hulls.push_back(analyze_hull);
    }

    uint64_t total_blocks = 0;
    for (const decomp::LevelStats& level : run.stats.levels) {
      total_blocks += level.blocks;
    }
    EXPECT_EQ(run.counter(registry, "exec.blocks_analyzed"), total_blocks);
    EXPECT_EQ(run.counter(registry, "pipeline.cliques_emitted"),
              run.stats.cliques_emitted);
  }
}

TEST(ExecTraceTest, PooledRecordsFilterChunkSpans) {
  const Graph g = gen::GenerateSocialNetwork(gen::FacebookConfig(0.02));
  obs::TraceRecorder recorder;
  TracedRun run = RunTraced(g, decomp::ExecutorKind::kPooled, 4, &recorder,
                            nullptr, /*m=*/40);
  ASSERT_GE(run.stats.levels.size(), 2u);
  uint64_t hub_cliques = 0;
  for (size_t l = 1; l < run.stats.levels.size(); ++l) {
    hub_cliques += run.stats.levels[l].cliques;
  }
  ASSERT_GT(hub_cliques, 0u) << "corpus must exercise the Lemma-1 filter";
  uint64_t filter_spans = 0, filter_checked = 0;
  for (const obs::TraceEvent& e : run.events) {
    if (e.kind != obs::SpanKind::kFilter) continue;
    ++filter_spans;
    filter_checked += e.args[0];
  }
  EXPECT_GT(filter_spans, 0u);
  EXPECT_EQ(filter_checked, hub_cliques);
}

TEST(ExecTraceTest, TracedRunsKeepEmissionIdentical) {
  Rng rng(31);
  const Graph g = gen::BarabasiAlbert(60, 4, &rng);
  auto run_cliques = [&g](obs::TraceRecorder* recorder) {
    decomp::FindMaxCliquesOptions options;
    options.max_block_size = 8;
    options.executor = decomp::ExecutorKind::kPooled;
    options.num_threads = 4;
    options.trace = recorder;
    std::vector<std::pair<Clique, uint32_t>> out;
    decomp::FindMaxCliquesStreaming(
        g, options, [&out](std::span<const NodeId> c, uint32_t level) {
          out.emplace_back(Clique(c.begin(), c.end()), level);
        });
    return out;
  };
  obs::TraceRecorder recorder;
  EXPECT_EQ(run_cliques(&recorder), run_cliques(nullptr));
  EXPECT_FALSE(recorder.Events().empty());
}

}  // namespace
}  // namespace mce::exec
