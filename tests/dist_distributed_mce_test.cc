#include "dist/distributed_mce.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/social.h"
#include "gen/special.h"
#include "mce/naive.h"
#include "test_util.h"
#include "util/random.h"

namespace mce::dist {
namespace {

decomp::FindMaxCliquesOptions OptionsWithM(uint32_t m) {
  decomp::FindMaxCliquesOptions options;
  options.max_block_size = m;
  return options;
}

TEST(DistributedMceTest, CliquesIdenticalToSerialRun) {
  Rng rng(81);
  Graph g = gen::BarabasiAlbert(80, 3, &rng);
  ClusterConfig cluster;
  cluster.num_workers = 4;
  DistributedResult dist = RunDistributedMce(g, OptionsWithM(12), cluster);
  decomp::FindMaxCliquesResult serial =
      decomp::FindMaxCliques(g, OptionsWithM(12));
  mce::test::ExpectSameCliques(dist.algorithm.cliques, serial.cliques);
  EXPECT_EQ(dist.algorithm.origin_level, serial.origin_level);
}

TEST(DistributedMceTest, MatchesNaiveReference) {
  Rng rng(83);
  Graph g = gen::ErdosRenyiGnp(35, 0.2, &rng);
  ClusterConfig cluster;
  DistributedResult dist = RunDistributedMce(g, OptionsWithM(10), cluster);
  mce::test::ExpectMatchesNaive(g, dist.algorithm.cliques);
}

TEST(DistributedMceTest, OneSimulationPerLevel) {
  Rng rng(85);
  Graph g = gen::BarabasiAlbert(100, 4, &rng);
  ClusterConfig cluster;
  DistributedResult dist = RunDistributedMce(g, OptionsWithM(15), cluster);
  EXPECT_EQ(dist.levels.size(), dist.algorithm.levels.size());
  // Task counts per level match the level's block counts.
  for (size_t l = 0; l < dist.levels.size(); ++l) {
    uint64_t tasks = 0;
    for (const WorkerTimeline& w : dist.levels[l].simulation.workers) {
      tasks += w.tasks;
    }
    EXPECT_EQ(tasks, dist.algorithm.levels[l].blocks);
  }
}

TEST(DistributedMceTest, TimingAggregatesArePlausible) {
  Rng rng(87);
  Graph g = gen::GenerateSocialNetwork(gen::Twitter1Config(0.02));
  ClusterConfig cluster;
  cluster.num_workers = 10;
  DistributedResult dist = RunDistributedMce(g, OptionsWithM(40), cluster);
  EXPECT_GT(dist.TotalSeconds(), 0.0);
  EXPECT_GE(dist.SerialAnalysisSeconds(), 0.0);
  // Including communication the speedup is positive and bounded by the
  // worker count (it can be < 1 when latency dominates tiny tasks).
  EXPECT_GT(dist.AnalysisSpeedup(), 0.0);
  EXPECT_LE(dist.AnalysisSpeedup(), cluster.num_workers + 1e-9);
  // The placement itself must always be within [1, workers].
  EXPECT_GE(dist.AnalysisComputeSpeedup(), 1.0 - 1e-9);
  EXPECT_LE(dist.AnalysisComputeSpeedup(), cluster.num_workers + 1e-9);
}

TEST(DistributedMceTest, FallbackPropagatesUnderMultipleThreads) {
  // Satellite regression: when the sparsity precondition fails, the m-core
  // fallback must stay byte-identical under num_threads > 1 and the
  // used_fallback flag must survive the trip through DistributedResult.
  const Graph g = gen::Complete(12);
  decomp::FindMaxCliquesOptions options = OptionsWithM(6);
  options.num_threads = 4;
  ClusterConfig cluster;
  cluster.num_workers = 4;
  DistributedResult dist = RunDistributedMce(g, options, cluster);
  EXPECT_TRUE(dist.algorithm.used_fallback);
  decomp::FindMaxCliquesResult serial =
      decomp::FindMaxCliques(g, OptionsWithM(6));
  EXPECT_TRUE(serial.used_fallback);
  mce::test::ExpectSameCliques(dist.algorithm.cliques, serial.cliques);
  EXPECT_EQ(dist.algorithm.origin_level, serial.origin_level);
  // The fallback is one indivisible serial task.
  ASSERT_FALSE(dist.algorithm.levels.empty());
  EXPECT_EQ(dist.algorithm.levels.back().analyze_threads, 1u);
  EXPECT_EQ(dist.levels.size(), dist.algorithm.levels.size());
}

TEST(DistributedMceTest, HashPartitioningStillCorrect) {
  Rng rng(89);
  Graph g = gen::BarabasiAlbert(60, 3, &rng);
  ClusterConfig cluster;
  cluster.strategy = PartitionStrategy::kHash;
  DistributedResult dist = RunDistributedMce(g, OptionsWithM(12), cluster);
  mce::test::ExpectMatchesNaive(g, dist.algorithm.cliques);
}

}  // namespace
}  // namespace mce::dist
