#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "test_util.h"
#include "util/random.h"

namespace mce {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/mce_io_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(IoTest, EdgeListRoundTrip) {
  Rng rng(5);
  Graph g = gen::ErdosRenyiGnp(30, 0.2, &rng);
  std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  Result<Graph> back = ReadEdgeList(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(*back == g);
  std::remove(path.c_str());
}

TEST_F(IoTest, EdgeListSkipsCommentsAndBlanks) {
  std::string path = TempPath("comments.txt");
  WriteFile(path,
            "# a comment\n"
            "% another comment\n"
            "\n"
            "0 1\n"
            "  \t\n"
            "1 2\n");
  Result<Graph> g = ReadEdgeList(path);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->num_nodes(), 3u);
  EXPECT_EQ(g->num_edges(), 2u);
  std::remove(path.c_str());
}

TEST_F(IoTest, EdgeListRejectsGarbage) {
  std::string path = TempPath("garbage.txt");
  WriteFile(path, "0 1\nnot numbers\n");
  Result<Graph> g = ReadEdgeList(path);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(IoTest, EdgeListMissingFile) {
  Result<Graph> g = ReadEdgeList(TempPath("does_not_exist.txt"));
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, TriplesInternLabelsInFirstSeenOrder) {
  std::string path = TempPath("triples.txt");
  WriteFile(path,
            "alice follows bob\n"
            "bob follows carol\n"
            "alice follows carol\n");
  Result<LabeledGraph> lg = ReadTriples(path);
  ASSERT_TRUE(lg.ok()) << lg.status();
  EXPECT_EQ(lg->graph.num_nodes(), 3u);
  EXPECT_EQ(lg->graph.num_edges(), 3u);
  EXPECT_EQ(lg->labels,
            (std::vector<std::string>{"alice", "bob", "carol"}));
  EXPECT_EQ(lg->edge_labels, (std::vector<std::string>{"follows"}));
  std::remove(path.c_str());
}

TEST_F(IoTest, TriplesRejectsShortLines) {
  std::string path = TempPath("bad_triples.txt");
  WriteFile(path, "only two\n");
  Result<LabeledGraph> lg = ReadTriples(path);
  EXPECT_FALSE(lg.ok());
  EXPECT_EQ(lg.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(IoTest, TriplesRoundTrip) {
  std::string path = TempPath("triples_rt.txt");
  WriteFile(path,
            "x knows y\n"
            "y knows z\n");
  Result<LabeledGraph> lg = ReadTriples(path);
  ASSERT_TRUE(lg.ok());
  std::string path2 = TempPath("triples_rt2.txt");
  ASSERT_TRUE(WriteTriples(*lg, path2).ok());
  Result<LabeledGraph> lg2 = ReadTriples(path2);
  ASSERT_TRUE(lg2.ok());
  EXPECT_TRUE(lg->graph == lg2->graph);
  EXPECT_EQ(lg->labels, lg2->labels);
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST_F(IoTest, WriteTriplesValidatesLabelCount) {
  LabeledGraph lg;
  lg.graph = test::PathGraph(3);
  lg.labels = {"a"};  // wrong size
  Status s = WriteTriples(lg, TempPath("invalid.txt"));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(IoTest, BinaryRoundTrip) {
  Rng rng(9);
  Graph g = gen::BarabasiAlbert(100, 3, &rng);
  std::string path = TempPath("graph.bin");
  ASSERT_TRUE(WriteBinary(g, path).ok());
  Result<Graph> back = ReadBinary(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(*back == g);
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryRejectsWrongMagic) {
  std::string path = TempPath("not_binary.bin");
  WriteFile(path, "this is definitely not the binary format header");
  Result<Graph> g = ReadBinary(path);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryRejectsTruncation) {
  Graph g = test::PathGraph(5);
  std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(WriteBinary(g, path).ok());
  // Truncate the file to cut into the edge section.
  {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() - 4));
  }
  Result<Graph> back = ReadBinary(path);
  EXPECT_FALSE(back.ok());
  std::remove(path.c_str());
}

TEST_F(IoTest, TriplesToleratesSelfLoopsAndDuplicates) {
  std::string path = TempPath("loops.txt");
  WriteFile(path,
            "a knows a\n"   // self-loop: label interned, edge dropped
            "a knows b\n"
            "b knows a\n"   // duplicate (reversed)
            "a knows b\n");  // duplicate
  Result<LabeledGraph> lg = ReadTriples(path);
  ASSERT_TRUE(lg.ok()) << lg.status();
  EXPECT_EQ(lg->graph.num_nodes(), 2u);
  EXPECT_EQ(lg->graph.num_edges(), 1u);
  EXPECT_FALSE(lg->graph.HasEdge(0, 0));
  std::remove(path.c_str());
}

TEST_F(IoTest, TriplesRejectsExtraTokens) {
  // A fourth column means the line is not a <n1, e, n2> triple: silently
  // taking the first three tokens used to hide truncated/corrupt exports,
  // so trailing garbage is now a parse error naming the line.
  std::string path = TempPath("extra.txt");
  WriteFile(path, "a knows b 2016-03-15 extra\n");
  Result<LabeledGraph> lg = ReadTriples(path);
  ASSERT_FALSE(lg.ok());
  EXPECT_EQ(lg.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(lg.status().message().find(":1: trailing tokens"),
            std::string::npos)
      << lg.status();
  std::remove(path.c_str());
}

TEST_F(IoTest, EdgeListRejectsTrailingTokens) {
  // Regression fixture for corrupt edge lists: a weight column (or any
  // third token) on a "u v" line is rejected rather than ignored.
  std::string path = TempPath("trailing.txt");
  WriteFile(path,
            "0 1\n"
            "1 2 0.75\n");
  Result<Graph> g = ReadEdgeList(path);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(g.status().message().find(":2: trailing tokens"),
            std::string::npos)
      << g.status();
  std::remove(path.c_str());
}

TEST_F(IoTest, EdgeListRejectsHugeIds) {
  std::string path = TempPath("huge.txt");
  WriteFile(path, "0 99999999999\n");
  Result<Graph> g = ReadEdgeList(path);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST_F(IoTest, WriteToUnwritablePathFails) {
  Graph g = test::PathGraph(3);
  EXPECT_EQ(WriteEdgeList(g, "/nonexistent_dir_zzz/out.txt").code(),
            StatusCode::kIoError);
  EXPECT_EQ(WriteBinary(g, "/nonexistent_dir_zzz/out.bin").code(),
            StatusCode::kIoError);
  LabeledGraph lg;
  lg.graph = g;
  lg.labels = {"a", "b", "c"};
  EXPECT_EQ(WriteTriples(lg, "/nonexistent_dir_zzz/out.triples").code(),
            StatusCode::kIoError);
}

TEST_F(IoTest, LabelInternerBasics) {
  LabelInterner interner;
  EXPECT_EQ(interner.Intern("a"), 0u);
  EXPECT_EQ(interner.Intern("b"), 1u);
  EXPECT_EQ(interner.Intern("a"), 0u);
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.Lookup("b"), 1u);
  EXPECT_EQ(interner.Lookup("zzz"), kInvalidNode);
}

TEST_F(IoTest, EmptyGraphRoundTrips) {
  Graph g;
  std::string path = TempPath("empty.bin");
  ASSERT_TRUE(WriteBinary(g, path).ok());
  Result<Graph> back = ReadBinary(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_nodes(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mce
