#include "exec/task_graph.h"

#include <cstddef>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "decision/block_cost.h"
#include "decomp/cut.h"
#include "decomp/parallel_analysis.h"
#include "gen/generators.h"
#include "gen/special.h"
#include "test_util.h"
#include "util/random.h"

namespace mce::exec {
namespace {

TEST(FilterChunksTest, EmptyPendingProducesNoChunks) {
  EXPECT_TRUE(FilterChunks(0, 1).empty());
  EXPECT_TRUE(FilterChunks(0, 8).empty());
  EXPECT_TRUE(FilterChunks(0, 0).empty());
}

TEST(FilterChunksTest, TinyLevelsNeverExceedItemCount) {
  // A tiny pending set with many workers must not be split into empty or
  // degenerate chunks (the num_threads * 4 sizing guard).
  for (size_t items : {1, 2, 3, 7}) {
    for (size_t workers : {1, 4, 8, 64}) {
      const auto chunks = FilterChunks(items, workers);
      EXPECT_LE(chunks.size(), items);
      size_t expected_begin = 0;
      for (const auto& [begin, end] : chunks) {
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LT(begin, end);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, items);
    }
  }
}

TEST(FilterChunksTest, LargeLevelsUseFourChunksPerWorker) {
  const auto chunks = FilterChunks(1000, 4);
  EXPECT_EQ(chunks.size(), 16u);
  EXPECT_EQ(chunks.front().first, 0u);
  EXPECT_EQ(chunks.back().second, 1000u);
  size_t expected_begin = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin, expected_begin);
    expected_begin = end;
  }
}

TEST(FilterChunksTest, ZeroWorkersAreClampedToOne) {
  const auto chunks = FilterChunks(100, 0);
  EXPECT_EQ(chunks.size(), 4u);
}

TEST(ComposeToOriginalTest, EmptyBaseIsIdentity) {
  const std::vector<NodeId> to_parent = {4, 2, 9};
  EXPECT_EQ(ComposeToOriginal({}, to_parent), to_parent);
}

TEST(ComposeToOriginalTest, ComposesThroughParentIds) {
  // Parent node i is original node base[i]; composing maps level ids all
  // the way back to original ids.
  const std::vector<NodeId> base = {10, 20, 30, 40};
  const std::vector<NodeId> to_parent = {3, 1};
  EXPECT_EQ(ComposeToOriginal(base, to_parent), (std::vector<NodeId>{40, 20}));
}

TEST(MapAndFilterCliqueTest, LevelZeroSortsAndAlwaysKeeps) {
  Graph triangle = gen::Complete(3);
  Clique out;
  const std::vector<NodeId> ids = {2, 0};
  // {0, 2} is not maximal in the triangle, but level-0 cliques are maximal
  // by construction and must not be re-filtered.
  EXPECT_TRUE(MapAndFilterClique(triangle, ids, {}, 0, &out));
  EXPECT_EQ(out, (Clique{0, 2}));
}

TEST(MapAndFilterCliqueTest, DeeperLevelsApplyLemmaOne) {
  Graph triangle = gen::Complete(3);
  const std::vector<NodeId> to_original = {2, 0, 1};
  Clique out;
  // Level ids {0, 1} -> original {2, 0}: extendable by node 1 -> dropped.
  EXPECT_FALSE(MapAndFilterClique(triangle, std::vector<NodeId>{0, 1},
                                  to_original, 1, &out));
  // The full triangle survives, translated and sorted.
  EXPECT_TRUE(MapAndFilterClique(triangle, std::vector<NodeId>{1, 2, 0},
                                 to_original, 1, &out));
  EXPECT_EQ(out, (Clique{0, 1, 2}));
}

TEST(BuildBlocksStreamingTest, EmissionOrderMatchesBatchBuild) {
  Rng rng(41);
  Graph g = gen::BarabasiAlbert(80, 3, &rng);
  decomp::CutResult cut = decomp::Cut(g, 12);
  ASSERT_FALSE(cut.feasible.empty());
  decomp::BlocksOptions options;
  options.max_block_size = 12;
  const std::vector<decomp::Block> batch =
      decomp::BuildBlocks(g, cut.feasible, options);
  std::vector<decomp::Block> streamed;
  decomp::BuildBlocksStreaming(
      g, cut.feasible, options,
      [&streamed](decomp::Block&& b) { streamed.push_back(std::move(b)); });
  ASSERT_EQ(streamed.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(streamed[i].subgraph.to_parent, batch[i].subgraph.to_parent);
    EXPECT_EQ(streamed[i].roles, batch[i].roles);
    EXPECT_EQ(streamed[i].kernel_local, batch[i].kernel_local);
    EXPECT_EQ(streamed[i].num_edges(), batch[i].num_edges());
  }
}

TEST(BlockTaskDescriptorTest, CarriesBlockShapeAndCostEstimate) {
  Rng rng(43);
  Graph g = gen::BarabasiAlbert(40, 3, &rng);
  decomp::CutResult cut = decomp::Cut(g, 10);
  decomp::BlocksOptions options;
  options.max_block_size = 10;
  std::vector<decomp::Block> blocks =
      decomp::BuildBlocks(g, cut.feasible, options);
  ASSERT_FALSE(blocks.empty());
  decomp::BlockAnalysisResult result;
  result.num_cliques = 7;
  result.used = {Algorithm::kTomita, StorageKind::kMatrix};
  const double cost = decision::EstimateBlockCost(blocks[0].subgraph.graph);
  const BlockTaskDescriptor d =
      MakeBlockTaskDescriptor(blocks[0], result, 0.5, 2, 3, cost);
  EXPECT_EQ(d.level, 2u);
  EXPECT_EQ(d.index, 3u);
  EXPECT_EQ(d.nodes, blocks[0].num_nodes());
  EXPECT_EQ(d.edges, blocks[0].num_edges());
  EXPECT_EQ(d.bytes, blocks[0].EstimatedBytes());
  EXPECT_DOUBLE_EQ(d.estimated_cost, cost);
  EXPECT_DOUBLE_EQ(d.compute_seconds, 0.5);
  EXPECT_EQ(d.cliques, 7u);
  EXPECT_EQ(d.used.storage, StorageKind::kMatrix);

  // The observer record shares the one construction site with the engine.
  const decomp::BlockTaskRecord r =
      decomp::MakeBlockTaskRecord(blocks[0], result, 0.5, 2);
  EXPECT_EQ(r.level, 2u);
  EXPECT_EQ(r.nodes, d.nodes);
  EXPECT_EQ(r.edges, d.edges);
  EXPECT_EQ(r.bytes, d.bytes);
  EXPECT_EQ(r.cliques, d.cliques);
  EXPECT_DOUBLE_EQ(r.seconds, d.compute_seconds);
}

}  // namespace
}  // namespace mce::exec
