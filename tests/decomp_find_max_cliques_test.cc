#include "decomp/find_max_cliques.h"

#include <thread>
#include <unordered_set>
#include <utility>

#include "decomp/block_analysis.h"
#include "decomp/cut.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/special.h"
#include "graph/core_decomposition.h"
#include "mce/naive.h"
#include "test_util.h"
#include "util/random.h"

namespace mce::decomp {
namespace {

FindMaxCliquesOptions OptionsWithM(uint32_t m) {
  FindMaxCliquesOptions options;
  options.max_block_size = m;
  return options;
}

TEST(FindMaxCliquesTest, Figure1WithPaperBlockSize) {
  Graph g = mce::test::Figure1Graph();
  FindMaxCliquesResult result = FindMaxCliques(g, OptionsWithM(5));
  CliqueSet expected = mce::test::Figure1Cliques();
  mce::test::ExpectSameCliques(result.cliques, expected);
  EXPECT_FALSE(result.used_fallback);
  // The hub triangle {D,S,E} must originate from level >= 1.
  using namespace mce::test;
  bool found_hub_clique = false;
  for (size_t i = 0; i < result.cliques.size(); ++i) {
    if (result.cliques.cliques()[i] ==
        Clique{static_cast<NodeId>(D), static_cast<NodeId>(E),
               static_cast<NodeId>(S)}) {
      EXPECT_GE(result.origin_level[i], 1u);
      found_hub_clique = true;
    } else {
      EXPECT_EQ(result.origin_level[i], 0u);
    }
  }
  EXPECT_TRUE(found_hub_clique);
  EXPECT_GE(result.NumLevels(), 2u);
}

// The central completeness property across families and block sizes.
class FindMaxCliquesSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FindMaxCliquesSweepTest, MatchesNaiveAcrossFamilies) {
  const uint32_t m = GetParam();
  Rng rng(61);
  std::vector<Graph> graphs;
  graphs.push_back(gen::ErdosRenyiGnp(30, 0.15, &rng));
  graphs.push_back(gen::ErdosRenyiGnp(30, 0.4, &rng));
  graphs.push_back(gen::BarabasiAlbert(50, 3, &rng));
  graphs.push_back(gen::WattsStrogatz(40, 4, 0.2, &rng));
  graphs.push_back(gen::OverlayRandomCliques(
      gen::BarabasiAlbert(45, 2, &rng), 4, 4, 8, true, &rng));
  graphs.push_back(mce::test::StarGraph(20));
  graphs.push_back(gen::MoonMoser(3));
  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    const Graph& g = graphs[gi];
    FindMaxCliquesResult result = FindMaxCliques(g, OptionsWithM(m));
    mce::test::ExpectMatchesNaive(g, result.cliques);
    EXPECT_EQ(result.cliques.size(), result.origin_level.size());
  }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, FindMaxCliquesSweepTest,
                         ::testing::Values(3u, 5u, 8u, 12u, 20u, 64u),
                         [](const auto& info) {
                           // Built via append: `"m" + std::to_string(...)`
                           // trips GCC 12's -Werror=restrict false positive
                           // at -O3.
                           std::string name = "m";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(FindMaxCliquesTest, DecisionTreeDrivenRunIsCorrect) {
  Rng rng(63);
  Graph g = gen::BarabasiAlbert(60, 4, &rng);
  decision::DecisionTree tree = decision::PaperDecisionTree();
  FindMaxCliquesOptions options = OptionsWithM(15);
  options.tree = &tree;
  FindMaxCliquesResult result = FindMaxCliques(g, options);
  mce::test::ExpectMatchesNaive(g, result.cliques);
}

TEST(FindMaxCliquesTest, FallbackOnDenseCore) {
  // K10 with m = 5: no feasible nodes at all -> fallback, still complete.
  Graph g = gen::Complete(10);
  FindMaxCliquesResult result = FindMaxCliques(g, OptionsWithM(5));
  EXPECT_TRUE(result.used_fallback);
  ASSERT_EQ(result.cliques.size(), 1u);
  EXPECT_EQ(result.cliques.cliques()[0].size(), 10u);
  EXPECT_GE(result.origin_level[0], 0u);
}

TEST(FindMaxCliquesTest, FallbackAfterSomeLevels) {
  // A K8 core plus pendant nodes: with m = 6 the pendants peel off over
  // levels, then the K8 core (its own 6-core) triggers the fallback.
  GraphBuilder b;
  for (NodeId i = 0; i < 8; ++i) {
    for (NodeId j = i + 1; j < 8; ++j) b.AddEdge(i, j);
  }
  b.AddEdge(0, 8);
  b.AddEdge(1, 9);
  Graph g = b.Build();
  FindMaxCliquesResult result = FindMaxCliques(g, OptionsWithM(6));
  EXPECT_TRUE(result.used_fallback);
  mce::test::ExpectMatchesNaive(g, result.cliques);
}

TEST(FindMaxCliquesTest, NoFallbackWhenMExceedsDegeneracy) {
  // Theorem 1: m > degeneracy guarantees the recursion empties out.
  Rng rng(65);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = gen::BarabasiAlbert(80, 3, &rng);
    const uint32_t m = Degeneracy(g) + 1;
    FindMaxCliquesResult result = FindMaxCliques(g, OptionsWithM(m));
    EXPECT_FALSE(result.used_fallback) << "trial " << trial;
    mce::test::ExpectMatchesNaive(g, result.cliques);
  }
}

TEST(FindMaxCliquesTest, HnWorstCaseNeedsManyLevels) {
  // Theorem 1, Statement 2: on H_n each first-level iteration peels only
  // the tail node, so the number of levels grows with n (Omega(n)).
  const uint32_t m_construct = 4;
  const NodeId n = 24;
  Graph h = gen::HnWorstCase(n, m_construct);
  // CUT keeps nodes of degree >= m_cut; use m_cut = m_construct + 1 so
  // v_j (degree m) is feasible but v_{j-1} (degree m+1) is not.
  FindMaxCliquesResult result = FindMaxCliques(h, OptionsWithM(m_construct + 1));
  EXPECT_FALSE(result.used_fallback);
  mce::test::ExpectMatchesNaive(h, result.cliques);
  // Levels scale linearly: at least n - (m + 3) rounds.
  EXPECT_GE(result.NumLevels(), static_cast<size_t>(n - m_construct - 4));
}

TEST(FindMaxCliquesTest, LevelStatsAreConsistent) {
  Rng rng(67);
  Graph g = gen::BarabasiAlbert(100, 4, &rng);
  FindMaxCliquesResult result = FindMaxCliques(g, OptionsWithM(12));
  ASSERT_GE(result.levels.size(), 1u);
  // Level 0 covers the whole graph.
  EXPECT_EQ(result.levels[0].num_nodes, g.num_nodes());
  EXPECT_EQ(result.levels[0].num_edges, g.num_edges());
  for (size_t l = 0; l < result.levels.size(); ++l) {
    const LevelStats& s = result.levels[l];
    EXPECT_EQ(s.feasible + s.hubs, s.num_nodes);
    if (l + 1 < result.levels.size()) {
      // Next level is the induced hub graph.
      EXPECT_EQ(result.levels[l + 1].num_nodes, s.hubs);
      EXPECT_LT(result.levels[l + 1].num_nodes, s.num_nodes);
    }
  }
  // origin_level values must be < NumLevels.
  for (uint32_t l : result.origin_level) {
    EXPECT_LT(l, result.NumLevels());
  }
}

TEST(FindMaxCliquesTest, SmallerMMeansMoreHubCliques) {
  // The paper's effectiveness claim: shrinking m reclassifies more nodes
  // as hubs, so more (and larger) cliques originate from the hub side.
  Rng rng(69);
  Graph g = gen::OverlayRandomCliques(gen::BarabasiAlbert(120, 3, &rng), 8, 5,
                                      10, true, &rng);
  FindMaxCliquesResult big = FindMaxCliques(g, OptionsWithM(60));
  FindMaxCliquesResult small = FindMaxCliques(g, OptionsWithM(10));
  mce::test::ExpectMatchesNaive(g, big.cliques);
  {
    CliqueSet expected = NaiveMceSet(g);
    mce::test::ExpectSameCliques(small.cliques, expected);
  }
  EXPECT_GE(small.CliquesFromLevel(1), big.CliquesFromLevel(1));
}

TEST(FindMaxCliquesTest, EmptyGraph) {
  FindMaxCliquesResult result = FindMaxCliques(Graph(), OptionsWithM(5));
  EXPECT_EQ(result.cliques.size(), 0u);
  EXPECT_FALSE(result.used_fallback);
  EXPECT_EQ(result.NumLevels(), 1u);
}

TEST(FindMaxCliquesTest, BlockObserverSeesEveryBlock) {
  Rng rng(71);
  Graph g = gen::BarabasiAlbert(60, 3, &rng);
  FindMaxCliquesOptions options = OptionsWithM(12);
  uint64_t observed_blocks = 0;
  uint64_t observed_cliques = 0;
  options.block_observer = [&](const BlockTaskRecord& r) {
    ++observed_blocks;
    observed_cliques += r.cliques;
    EXPECT_GT(r.nodes, 0u);
    EXPECT_GT(r.bytes, 0u);
  };
  FindMaxCliquesResult result = FindMaxCliques(g, options);
  uint64_t stat_blocks = 0, stat_cliques = 0;
  for (const LevelStats& s : result.levels) {
    stat_blocks += s.blocks;
    stat_cliques += s.cliques;
  }
  EXPECT_EQ(observed_blocks, stat_blocks);
  EXPECT_EQ(observed_cliques, stat_cliques);
}

// The tentpole guarantee: thread count never changes the result. Same
// graphs as the sweep family plus the fallback shapes, byte-identical
// CliqueSet and origin_level for num_threads in {1, 2, 8}.
TEST(ParallelPipelineTest, ThreadCountsProduceIdenticalResults) {
  Rng rng(91);
  std::vector<Graph> graphs;
  graphs.push_back(gen::ErdosRenyiGnp(30, 0.15, &rng));
  graphs.push_back(gen::ErdosRenyiGnp(30, 0.4, &rng));
  graphs.push_back(gen::BarabasiAlbert(50, 3, &rng));
  graphs.push_back(gen::WattsStrogatz(40, 4, 0.2, &rng));
  graphs.push_back(gen::OverlayRandomCliques(
      gen::BarabasiAlbert(45, 2, &rng), 4, 4, 8, true, &rng));
  graphs.push_back(mce::test::StarGraph(20));
  graphs.push_back(gen::MoonMoser(3));
  graphs.push_back(gen::Complete(10));  // fallback path
  for (uint32_t m : {3u, 8u, 20u}) {
    for (size_t gi = 0; gi < graphs.size(); ++gi) {
      FindMaxCliquesOptions serial_options = OptionsWithM(m);
      FindMaxCliquesResult serial = FindMaxCliques(graphs[gi], serial_options);
      for (uint32_t threads : {2u, 8u}) {
        FindMaxCliquesOptions options = OptionsWithM(m);
        options.num_threads = threads;
        FindMaxCliquesResult parallel = FindMaxCliques(graphs[gi], options);
        EXPECT_EQ(parallel.cliques.cliques(), serial.cliques.cliques())
            << "graph " << gi << " m=" << m << " threads=" << threads;
        EXPECT_EQ(parallel.origin_level, serial.origin_level)
            << "graph " << gi << " m=" << m << " threads=" << threads;
        EXPECT_EQ(parallel.used_fallback, serial.used_fallback);
      }
    }
  }
}

TEST(ParallelPipelineTest, StreamingEmissionOrderMatchesSerial) {
  Rng rng(93);
  Graph g = gen::OverlayRandomCliques(gen::BarabasiAlbert(80, 3, &rng), 6, 4,
                                      9, true, &rng);
  auto run = [&g](uint32_t threads) {
    std::vector<std::pair<Clique, uint32_t>> emitted;
    FindMaxCliquesOptions options = OptionsWithM(10);
    options.num_threads = threads;
    FindMaxCliquesStreaming(g, options,
                            [&](std::span<const NodeId> c, uint32_t level) {
                              emitted.emplace_back(Clique(c.begin(), c.end()),
                                                   level);
                            });
    return emitted;
  };
  const auto serial = run(1);
  // Buffer-and-merge preserves the serial emission order exactly, not just
  // the multiset of cliques.
  EXPECT_EQ(run(4), serial);
}

TEST(ParallelPipelineTest, ObserverRunsOnCallingThreadInBlockOrder) {
  Rng rng(95);
  Graph g = gen::BarabasiAlbert(60, 3, &rng);
  auto collect = [&g](uint32_t threads) {
    std::vector<BlockTaskRecord> records;
    FindMaxCliquesOptions options = OptionsWithM(12);
    options.num_threads = threads;
    const std::thread::id caller = std::this_thread::get_id();
    options.block_observer = [&](const BlockTaskRecord& r) {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      records.push_back(r);
    };
    FindMaxCliques(g, options);
    return records;
  };
  const auto serial = collect(1);
  const auto parallel = collect(4);
  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].level, serial[i].level);
    EXPECT_EQ(parallel[i].nodes, serial[i].nodes);
    EXPECT_EQ(parallel[i].edges, serial[i].edges);
    EXPECT_EQ(parallel[i].bytes, serial[i].bytes);
    EXPECT_EQ(parallel[i].cliques, serial[i].cliques);
    EXPECT_GE(parallel[i].seconds, 0.0);
  }
}

TEST(ParallelPipelineTest, LevelStatsReportWorkerUtilization) {
  Rng rng(97);
  Graph g = gen::BarabasiAlbert(120, 4, &rng);
  FindMaxCliquesOptions options = OptionsWithM(15);
  options.num_threads = 4;
  FindMaxCliquesResult result = FindMaxCliques(g, options);
  for (const LevelStats& l : result.levels) {
    EXPECT_EQ(l.analyze_threads, result.used_fallback ? 1u : 4u);
    // The busiest worker carries between 1/threads and all of the work.
    EXPECT_GE(l.block_seconds, l.busiest_worker_seconds);
    if (l.blocks > 0) {
      EXPECT_LE(l.block_seconds,
                l.busiest_worker_seconds * l.analyze_threads + 1e-12);
    }
  }
  // Serial runs report busiest == total.
  FindMaxCliquesResult serial = FindMaxCliques(g, OptionsWithM(15));
  for (const LevelStats& l : serial.levels) {
    EXPECT_EQ(l.analyze_threads, 1u);
    EXPECT_DOUBLE_EQ(l.block_seconds, l.busiest_worker_seconds);
  }
}

TEST(StreamingTest, MatchesMaterializedResult) {
  Rng rng(75);
  Graph g = gen::OverlayRandomCliques(gen::BarabasiAlbert(80, 3, &rng), 6, 4,
                                      9, true, &rng);
  FindMaxCliquesOptions options = OptionsWithM(10);
  FindMaxCliquesResult batch = FindMaxCliques(g, options);

  CliqueSet streamed;
  std::vector<uint32_t> levels_seen;
  StreamingStats stats = FindMaxCliquesStreaming(
      g, options, [&](std::span<const NodeId> c, uint32_t level) {
        streamed.Add(c);
        levels_seen.push_back(level);
      });
  mce::test::ExpectSameCliques(streamed, batch.cliques);
  EXPECT_EQ(stats.cliques_emitted, batch.cliques.size());
  EXPECT_EQ(stats.levels.size(), batch.levels.size());
  EXPECT_EQ(stats.used_fallback, batch.used_fallback);
  // Same multiset of origin levels.
  std::sort(levels_seen.begin(), levels_seen.end());
  std::vector<uint32_t> batch_levels = batch.origin_level;
  std::sort(batch_levels.begin(), batch_levels.end());
  EXPECT_EQ(levels_seen, batch_levels);
}

TEST(StreamingTest, EmitsEachCliqueOnce) {
  Rng rng(77);
  Graph g = gen::ErdosRenyiGnp(50, 0.2, &rng);
  CliqueSet streamed;
  FindMaxCliquesStreaming(g, OptionsWithM(8),
                          [&](std::span<const NodeId> c, uint32_t) {
                            streamed.Add(c);
                          });
  const size_t raw = streamed.size();
  streamed.Canonicalize();
  EXPECT_EQ(raw, streamed.size());
  mce::test::ExpectMatchesNaive(g, streamed);
}

TEST(StreamingTest, FallbackStreamsToo) {
  Graph g = gen::Complete(9);
  CliqueSet streamed;
  StreamingStats stats = FindMaxCliquesStreaming(
      g, OptionsWithM(4),
      [&](std::span<const NodeId> c, uint32_t) { streamed.Add(c); });
  EXPECT_TRUE(stats.used_fallback);
  ASSERT_EQ(streamed.size(), 1u);
  EXPECT_EQ(streamed.cliques()[0].size(), 9u);
}

TEST(BlockAnalysisGuardTest, OversizedBlockFallsBackToLists) {
  // Force a bitset choice but set the budget below the block's bitset
  // size: the analysis must degrade to lists and stay correct.
  Rng rng(79);
  Graph g = gen::ErdosRenyiGnp(60, 0.2, &rng);
  FindMaxCliquesOptions options = OptionsWithM(60);
  options.fixed = {Algorithm::kTomita, StorageKind::kBitset};
  FindMaxCliquesResult normal = FindMaxCliques(g, options);
  mce::test::ExpectMatchesNaive(g, normal.cliques);
  // Now run block analysis directly with a tiny budget.
  CutResult cut = Cut(g, 60);
  BlocksOptions boptions;
  boptions.max_block_size = 60;
  std::vector<Block> blocks = BuildBlocks(g, cut.feasible, boptions);
  BlockAnalysisOptions aoptions;
  aoptions.fixed = {Algorithm::kTomita, StorageKind::kBitset};
  aoptions.max_storage_bytes = 8;  // nothing dense fits
  CliqueSet got;
  for (const Block& block : blocks) {
    BlockAnalysisResult r = AnalyzeBlock(block, aoptions, got.Collector());
    EXPECT_EQ(r.used.storage, StorageKind::kAdjacencyList);
  }
  mce::test::ExpectMatchesNaive(g, got);
}

TEST(FindMaxCliquesTest, AllReportedCliquesAreMaximal) {
  Rng rng(73);
  Graph g = gen::ErdosRenyiGnp(40, 0.25, &rng);
  FindMaxCliquesResult result = FindMaxCliques(g, OptionsWithM(8));
  for (const Clique& c : result.cliques.cliques()) {
    EXPECT_TRUE(IsMaximalClique(g, c));
  }
}

}  // namespace
}  // namespace mce::decomp
