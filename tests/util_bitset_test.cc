#include "util/bitset.h"

#include <vector>

#include <gtest/gtest.h>

namespace mce {
namespace {

TEST(BitsetTest, StartsEmpty) {
  Bitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
  EXPECT_FALSE(b.Any());
  for (size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.Test(i));
}

TEST(BitsetTest, SetClearTest) {
  Bitset b(70);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(69);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(69));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitsetTest, SetAllMasksTailBits) {
  Bitset b(70);
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);  // exactly 70, not 128
  Bitset b64(64);
  b64.SetAll();
  EXPECT_EQ(b64.Count(), 64u);
  Bitset b0(0);
  b0.SetAll();
  EXPECT_EQ(b0.Count(), 0u);
}

TEST(BitsetTest, ResetClearsEverything) {
  Bitset b(100);
  b.SetAll();
  b.Reset();
  EXPECT_TRUE(b.None());
  EXPECT_EQ(b.size(), 100u);
}

TEST(BitsetTest, AndOrAndNot) {
  Bitset a(130), b(130);
  a.Set(1);
  a.Set(64);
  a.Set(128);
  b.Set(64);
  b.Set(128);
  b.Set(129);

  Bitset a_and = a;
  a_and.And(b);
  EXPECT_EQ(a_and.ToVector(), (std::vector<uint32_t>{64, 128}));

  Bitset a_or = a;
  a_or.Or(b);
  EXPECT_EQ(a_or.ToVector(), (std::vector<uint32_t>{1, 64, 128, 129}));

  Bitset a_andnot = a;
  a_andnot.AndNot(b);
  EXPECT_EQ(a_andnot.ToVector(), (std::vector<uint32_t>{1}));
}

TEST(BitsetTest, AndCountMatchesMaterializedAnd) {
  Bitset a(200), b(200);
  for (size_t i = 0; i < 200; i += 3) a.Set(i);
  for (size_t i = 0; i < 200; i += 5) b.Set(i);
  Bitset both = a;
  both.And(b);
  EXPECT_EQ(a.AndCount(b), both.Count());
  EXPECT_EQ(a.AndCount(b), 14u);  // multiples of 15 below 200: 0..195
}

TEST(BitsetTest, IntersectsAndSubset) {
  Bitset a(80), b(80), c(80);
  a.Set(10);
  a.Set(70);
  b.Set(70);
  c.Set(5);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(b.IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  Bitset empty(80);
  EXPECT_TRUE(empty.IsSubsetOf(a));
  EXPECT_FALSE(empty.Intersects(a));
}

TEST(BitsetTest, FindFirstAndNext) {
  Bitset b(150);
  EXPECT_EQ(b.FindFirst(), 150u);
  b.Set(3);
  b.Set(64);
  b.Set(149);
  EXPECT_EQ(b.FindFirst(), 3u);
  EXPECT_EQ(b.FindNext(4), 64u);
  EXPECT_EQ(b.FindNext(64), 64u);
  EXPECT_EQ(b.FindNext(65), 149u);
  EXPECT_EQ(b.FindNext(150), 150u);
}

TEST(BitsetTest, ForEachVisitsInOrder) {
  Bitset b(100);
  std::vector<size_t> expected{0, 31, 32, 63, 64, 99};
  for (size_t i : expected) b.Set(i);
  std::vector<size_t> seen;
  b.ForEach([&seen](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(BitsetTest, ToVectorEmpty) {
  Bitset b(10);
  EXPECT_TRUE(b.ToVector().empty());
}

TEST(BitsetTest, Equality) {
  Bitset a(64), b(64), c(65);
  a.Set(5);
  b.Set(5);
  EXPECT_TRUE(a == b);
  b.Set(6);
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == c);  // different size
}

TEST(BitsetTest, DefaultConstructedIsEmpty) {
  Bitset b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
  EXPECT_EQ(b.FindFirst(), 0u);
}

TEST(BitsetTest, CopyIsIndependent) {
  Bitset a(64);
  a.Set(1);
  Bitset b = a;
  b.Set(2);
  EXPECT_FALSE(a.Test(2));
  EXPECT_TRUE(b.Test(1));
}

TEST(BitsetTest, ForEachUntilStopsAtFirstFalse) {
  Bitset b(200);
  const std::vector<size_t> set = {0, 3, 63, 64, 130, 199};
  for (size_t i : set) b.Set(i);
  std::vector<size_t> seen;
  b.ForEachUntil([&seen](size_t i) {
    seen.push_back(i);
    return seen.size() < 3;
  });
  EXPECT_EQ(seen, (std::vector<size_t>{0, 3, 63}));
  // A tolerant visitor sees everything, like ForEach.
  seen.clear();
  b.ForEachUntil([&seen](size_t i) {
    seen.push_back(i);
    return true;
  });
  EXPECT_EQ(seen, set);
}

TEST(BitsetTest, ReinitRetargetsAndZeroes) {
  Bitset b(130);
  b.SetAll();
  b.Reinit(70);
  EXPECT_EQ(b.size(), 70u);
  EXPECT_EQ(b.Count(), 0u);
  b.Set(69);
  EXPECT_TRUE(b.Test(69));
  // Growing back within the previously reached size starts all-zero too.
  b.Reinit(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.Count(), 0u);
  b.Set(129);
  EXPECT_EQ(b.ToVector(), std::vector<uint32_t>{129});
}

}  // namespace
}  // namespace mce
