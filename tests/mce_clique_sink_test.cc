// CliqueSink: spilled-vs-resident replay identity, ForRange partitioning
// across chunk boundaries, and budget accounting. Plus the saturating
// storage estimates the MemoryBudget charges are built from.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mce/clique_sink.h"
#include "mce/storage.h"
#include "util/memory_budget.h"

namespace mce {
namespace {

/// Deterministic pseudo-random clique stream (no RNG dependency).
std::vector<std::vector<NodeId>> TestCliques(size_t count) {
  std::vector<std::vector<NodeId>> out;
  out.reserve(count);
  uint64_t state = 12345;
  for (size_t i = 0; i < count; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const size_t len = 1 + (state >> 33) % 7;
    std::vector<NodeId> c;
    for (size_t j = 0; j < len; ++j) {
      c.push_back(static_cast<NodeId>((i * 31 + j * 7 + (state & 0xff))));
    }
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<std::vector<NodeId>> Replay(const CliqueSink& sink, size_t begin,
                                        size_t end) {
  std::vector<std::vector<NodeId>> got;
  sink.ForRange(begin, end, [&](std::span<const NodeId> c) {
    got.emplace_back(c.begin(), c.end());
  });
  return got;
}

TEST(CliqueSinkTest, MakeCliqueSinkPicksImplementation) {
  EXPECT_NE(dynamic_cast<ResidentCliqueSink*>(MakeCliqueSink(nullptr).get()),
            nullptr);
  SpillConfig config;  // no threshold, no budget
  SpillContext ctx;
  ctx.config = &config;
  EXPECT_NE(dynamic_cast<ResidentCliqueSink*>(MakeCliqueSink(&ctx).get()),
            nullptr);
  MemoryBudget budget(1 << 20);
  config.budget = &budget;
  EXPECT_NE(dynamic_cast<SpillingCliqueSink*>(MakeCliqueSink(&ctx).get()),
            nullptr);
}

TEST(CliqueSinkTest, SpilledReplayIsIdenticalToResident) {
  const auto cliques = TestCliques(500);

  ResidentCliqueSink resident;
  for (const auto& c : cliques) resident.AppendRaw(c);

  MemoryBudget budget;
  SpillConfig config;
  config.threshold_bytes = 256;  // forces many flushes
  config.budget = &budget;
  SpillContext ctx;
  ctx.config = &config;
  SpillingCliqueSink spilling(&ctx);
  for (const auto& c : cliques) spilling.AppendRaw(c);

  ASSERT_EQ(spilling.size(), resident.size());
  EXPECT_GT(spilling.spilled_chunks(), 1u);
  EXPECT_GT(spilling.spilled_bytes(), 0u);
  EXPECT_EQ(Replay(spilling, 0, spilling.size()),
            Replay(resident, 0, resident.size()));
}

TEST(CliqueSinkTest, ForRangePartitionsConcatenateToFullStream) {
  const auto cliques = TestCliques(257);  // prime-ish, odd chunk splits
  MemoryBudget budget;
  SpillConfig config;
  config.threshold_bytes = 200;
  config.budget = &budget;
  SpillContext ctx;
  ctx.config = &config;
  SpillingCliqueSink sink(&ctx);
  for (const auto& c : cliques) sink.AppendRaw(c);
  ASSERT_GT(sink.spilled_chunks(), 0u);

  const auto whole = Replay(sink, 0, sink.size());
  // Any partition of [0, n) must concatenate byte-identically, whatever
  // relation its cut points have to the spill-chunk boundaries.
  for (size_t step : {1u, 3u, 50u, 256u}) {
    std::vector<std::vector<NodeId>> stitched;
    for (size_t b = 0; b < sink.size(); b += step) {
      const size_t e = std::min(b + step, sink.size());
      auto part = Replay(sink, b, e);
      stitched.insert(stitched.end(), part.begin(), part.end());
    }
    EXPECT_EQ(stitched, whole) << "step " << step;
  }
}

TEST(CliqueSinkTest, AppendSortsLikeResidentSink) {
  MemoryBudget budget;
  SpillConfig config;
  config.threshold_bytes = 64;
  config.budget = &budget;
  SpillContext ctx;
  ctx.config = &config;
  SpillingCliqueSink spilling(&ctx);
  ResidentCliqueSink resident;
  const std::vector<NodeId> unsorted = {9, 2, 7, 1};
  for (int i = 0; i < 50; ++i) {
    spilling.Append(unsorted);
    resident.Append(unsorted);
  }
  EXPECT_EQ(Replay(spilling, 0, spilling.size()),
            Replay(resident, 0, resident.size()));
  EXPECT_EQ(Replay(spilling, 0, 1)[0], (std::vector<NodeId>{1, 2, 7, 9}));
}

TEST(CliqueSinkTest, AccountingReleasesOnFlushAndDestruction) {
  MemoryBudget budget;
  SpillConfig config;
  config.threshold_bytes = 128;
  config.budget = &budget;
  SpillContext ctx;
  ctx.config = &config;
  {
    SpillingCliqueSink sink(&ctx);
    const auto cliques = TestCliques(300);
    for (const auto& c : cliques) sink.AppendRaw(c);
    // Flushes released the spilled bytes: the residual charge is at most
    // one buffered (unflushed) tail, far below the total appended.
    EXPECT_GT(sink.spilled_bytes(), budget.charged());
  }
  // Destruction releases the tail charge from budget and level counter.
  EXPECT_EQ(budget.charged(), 0u);
  EXPECT_EQ(ctx.resident_bytes.load(), 0u);
  EXPECT_GT(budget.peak(), 0u);
}

TEST(CliqueSinkTest, EmptyCliquesSurviveSpilling) {
  MemoryBudget budget;
  SpillConfig config;
  config.threshold_bytes = 64;
  config.budget = &budget;
  SpillContext ctx;
  ctx.config = &config;
  SpillingCliqueSink sink(&ctx);
  const std::vector<NodeId> empty;
  const std::vector<NodeId> one = {42};
  for (int i = 0; i < 40; ++i) {
    sink.AppendRaw(empty);
    sink.AppendRaw(one);
  }
  ASSERT_EQ(sink.size(), 80u);
  const auto got = Replay(sink, 0, sink.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], (i % 2 == 0 ? empty : one)) << i;
  }
}

// --- Saturating storage estimates (uint64 end-to-end, satellite of the
// out-of-core work: budget math must clamp instead of wrapping). ---

TEST(StorageEstimateTest, SaturatingOpsClampAtMax) {
  EXPECT_EQ(SaturatingAdd(1, 2), 3u);
  EXPECT_EQ(SaturatingAdd(UINT64_MAX, 1), UINT64_MAX);
  EXPECT_EQ(SaturatingAdd(UINT64_MAX, UINT64_MAX), UINT64_MAX);
  EXPECT_EQ(SaturatingMul(3, 7), 21u);
  EXPECT_EQ(SaturatingMul(UINT64_MAX, 2), UINT64_MAX);
  EXPECT_EQ(SaturatingMul(1ull << 40, 1ull << 40), UINT64_MAX);
  EXPECT_EQ(SaturatingMul(0, UINT64_MAX), 0u);
}

TEST(StorageEstimateTest, EstimateStorageBytesMatchesSmallGraphMath) {
  // Adjacency list: 2m neighbor ids (4 bytes) + n+1 offsets (8 bytes).
  EXPECT_EQ(EstimateStorageBytes(10, 20, StorageKind::kAdjacencyList),
            2 * 20 * 4 + 11 * 8u);
  // Matrix: n^2 bytes.
  EXPECT_EQ(EstimateStorageBytes(100, 0, StorageKind::kMatrix),
            100u * 100u);
  // Bitset: n rows of ceil(n/64) words.
  EXPECT_EQ(EstimateStorageBytes(100, 0, StorageKind::kBitset),
            100u * 2u * 8u);
}

TEST(StorageEstimateTest, HugeGraphEstimatesClampInsteadOfWrapping) {
  const uint64_t huge = 1ull << 40;
  EXPECT_EQ(EstimateStorageBytes(huge, huge, StorageKind::kMatrix),
            UINT64_MAX);
  EXPECT_EQ(EstimateStorageBytes(huge, huge, StorageKind::kBitset),
            UINT64_MAX);
  // The list estimate at 2^40 nodes/edges is large but representable; it
  // must be the exact unsaturated value, not a clamp.
  EXPECT_EQ(EstimateStorageBytes(huge, huge, StorageKind::kAdjacencyList),
            2 * huge * 4 + (huge + 1) * 8);
}

}  // namespace
}  // namespace mce
