#include "decision/trainer.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace mce::decision {
namespace {

std::vector<MceOptions> TwoLabelSpace() {
  return {{Algorithm::kTomita, StorageKind::kBitset},
          {Algorithm::kEppstein, StorageKind::kAdjacencyList}};
}

TrainingExample Example(double nodes, double degeneracy, int label) {
  TrainingExample e;
  e.features.num_nodes = nodes;
  e.features.degeneracy = degeneracy;
  e.label = label;
  return e;
}

TEST(TrainerTest, LearnsAxisAlignedSplit) {
  // degeneracy > 20 -> label 0 (bitset/tomita), else label 1.
  std::vector<TrainingExample> examples;
  for (int i = 0; i < 20; ++i) {
    examples.push_back(Example(100 + i, 30 + i, 0));
    examples.push_back(Example(100 + i, 5 + (i % 10), 1));
  }
  DecisionTree tree = TrainDecisionTree(examples, TwoLabelSpace());
  EXPECT_DOUBLE_EQ(Accuracy(tree, examples, TwoLabelSpace()), 1.0);
  // Generalizes to unseen points on either side.
  EXPECT_EQ(tree.Classify(Example(500, 100, 0).features).storage,
            StorageKind::kBitset);
  EXPECT_EQ(tree.Classify(Example(500, 1, 0).features).storage,
            StorageKind::kAdjacencyList);
}

TEST(TrainerTest, PureInputYieldsSingleLeaf) {
  std::vector<TrainingExample> examples;
  for (int i = 0; i < 10; ++i) examples.push_back(Example(i, i, 0));
  DecisionTree tree = TrainDecisionTree(examples, TwoLabelSpace());
  EXPECT_EQ(tree.NumLeaves(), 1u);
  EXPECT_EQ(tree.Classify(examples[0].features).algorithm,
            Algorithm::kTomita);
}

TEST(TrainerTest, RespectsMaxDepth) {
  // label 1 iff degeneracy > 10 or nodes > 10: greedy CART needs depth 2
  // (first split is pure on one side, the other needs a second cut).
  std::vector<TrainingExample> examples;
  for (int i = 0; i < 10; ++i) {
    examples.push_back(Example(1, 1, 0));
    examples.push_back(Example(1, 20, 1));
    examples.push_back(Example(20, 1, 1));
    examples.push_back(Example(20, 20, 1));
  }
  TrainerOptions options;
  options.max_depth = 1;
  options.min_samples_leaf = 1;
  DecisionTree shallow =
      TrainDecisionTree(examples, TwoLabelSpace(), options);
  EXPECT_LE(shallow.Depth(), 1);
  EXPECT_LT(Accuracy(shallow, examples, TwoLabelSpace()), 1.0);

  options.max_depth = 4;
  DecisionTree deep = TrainDecisionTree(examples, TwoLabelSpace(), options);
  EXPECT_DOUBLE_EQ(Accuracy(deep, examples, TwoLabelSpace()), 1.0);
  EXPECT_GE(deep.Depth(), 2);
}

TEST(TrainerTest, MinSamplesLeafBlocksTinySplits) {
  // One outlier among 20: min_samples_leaf = 5 forbids isolating it, so
  // whatever the tree does, the outlier lands in a majority-0 leaf.
  std::vector<TrainingExample> examples;
  for (int i = 0; i < 20; ++i) examples.push_back(Example(i, 5, 0));
  TrainingExample outlier = Example(100, 50, 1);
  examples.push_back(outlier);
  TrainerOptions options;
  options.min_samples_leaf = 5;
  DecisionTree tree = TrainDecisionTree(examples, TwoLabelSpace(), options);
  // Label 0's combo is BitSets/Tomita; the outlier (label 1) cannot be
  // isolated, so it is misclassified into the majority.
  EXPECT_EQ(tree.Classify(outlier.features).storage, StorageKind::kBitset);
  // With min_samples_leaf = 1 the outlier IS isolated and classified as
  // its own label (Lists/Eppstein).
  options.min_samples_leaf = 1;
  DecisionTree greedy = TrainDecisionTree(examples, TwoLabelSpace(), options);
  EXPECT_EQ(greedy.Classify(outlier.features).storage,
            StorageKind::kAdjacencyList);
}

TEST(TrainerTest, MultiClassSplit) {
  std::vector<MceOptions> labels = {
      {Algorithm::kBKPivot, StorageKind::kMatrix},
      {Algorithm::kTomita, StorageKind::kBitset},
      {Algorithm::kXPivot, StorageKind::kAdjacencyList},
  };
  std::vector<TrainingExample> examples;
  for (int i = 0; i < 15; ++i) {
    examples.push_back(Example(10, 5 + (i % 3), 0));
    examples.push_back(Example(1000, 40 + (i % 3), 1));
    examples.push_back(Example(100000, 8 + (i % 3), 2));
  }
  DecisionTree tree = TrainDecisionTree(examples, labels);
  EXPECT_DOUBLE_EQ(Accuracy(tree, examples, labels), 1.0);
  EXPECT_GE(tree.NumLeaves(), 3u);
}

TEST(TrainerTest, AccuracyOnHeldOut) {
  // Noisy but separable data: train/test split should still score > 0.8.
  Rng rng(3);
  std::vector<TrainingExample> train, test;
  for (int i = 0; i < 200; ++i) {
    double degeneracy = rng.NextDouble() * 60;
    int label = degeneracy > 30 ? 0 : 1;
    if (rng.NextBool(0.05)) label = 1 - label;  // 5% label noise
    TrainingExample e = Example(rng.NextDouble() * 1000, degeneracy, label);
    (i % 5 == 0 ? test : train).push_back(e);
  }
  TrainerOptions options;
  options.max_depth = 3;
  options.min_samples_leaf = 8;
  DecisionTree tree = TrainDecisionTree(train, TwoLabelSpace(), options);
  EXPECT_GT(Accuracy(tree, test, TwoLabelSpace()), 0.8);
}

TEST(TrainerTest, EmptyExamplesDie) {
  std::vector<TrainingExample> none;
  EXPECT_DEATH(TrainDecisionTree(none, TwoLabelSpace()), "Check failed");
}

TEST(TrainerTest, OutOfRangeLabelDies) {
  std::vector<TrainingExample> examples{Example(1, 1, 7)};
  EXPECT_DEATH(TrainDecisionTree(examples, TwoLabelSpace()), "Check failed");
}

}  // namespace
}  // namespace mce::decision
