// End-to-end tests over realistic (scaled-down) social-network stand-ins:
// full pipeline vs a reference enumerator, hub-clique effects, file-based
// ingestion, and the distributed execution path.

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/max_clique_finder.h"
#include "gen/social.h"
#include "graph/core_decomposition.h"
#include "graph/io.h"
#include "mce/enumerator.h"
#include "test_util.h"

namespace mce {
namespace {

/// Reference clique set via a single whole-graph Eppstein run (itself
/// cross-checked against the naive algorithm in mce_cross_check_test).
CliqueSet Reference(const Graph& g) {
  return EnumerateToSet(
      g, MceOptions{Algorithm::kEppstein, StorageKind::kAdjacencyList});
}

TEST(EndToEndTest, SocialStandInFullPipelineMatchesReference) {
  Graph g = gen::GenerateSocialNetwork(gen::Twitter1Config(0.03));
  MaxCliqueFinder::Options options;
  options.block_size_ratio = 0.5;
  MaxCliqueFinder finder(options);
  Result<FindResult> result = finder.Find(g);
  ASSERT_TRUE(result.ok()) << result.status();
  CliqueSet expected = Reference(g);
  mce::test::ExpectSameCliques(result->cliques, expected);
}

TEST(EndToEndTest, SmallRatiosProduceHubCliques) {
  // The headline effectiveness result: with small m/d there are cliques
  // made of hub nodes only, and they are comparatively large.
  Graph g = gen::GenerateSocialNetwork(gen::Twitter2Config(0.03));
  MaxCliqueFinder::Options options;
  options.block_size_ratio = 0.1;
  MaxCliqueFinder finder(options);
  Result<FindResult> result = finder.Find(g);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->stats.hub_cliques, 0u);
  // Hub cliques rival the overall sizes (Figures 9-10b).
  EXPECT_GE(result->stats.avg_hub_clique_size,
            0.5 * result->stats.avg_clique_size);
  // And the result is still complete.
  CliqueSet expected = Reference(g);
  mce::test::ExpectSameCliques(result->cliques, expected);
}

TEST(EndToEndTest, RatioSweepIsAlwaysComplete) {
  Graph g = gen::GenerateSocialNetwork(gen::GooglePlusConfig(0.02));
  CliqueSet expected = Reference(g);
  for (double ratio : {0.9, 0.5, 0.1}) {
    MaxCliqueFinder::Options options;
    options.block_size_ratio = ratio;
    MaxCliqueFinder finder(options);
    Result<FindResult> result = finder.Find(g);
    ASSERT_TRUE(result.ok()) << "ratio " << ratio;
    mce::test::ExpectSameCliques(result->cliques, expected);
  }
}

TEST(EndToEndTest, FewRecursionLevelsOnRealisticGraphs) {
  // Section 6.2: real datasets needed 2 iterations for m/d in {0.5, 0.9}
  // and 3 for {0.1, 0.3}. Our stand-ins plant a denser boosted hub core
  // relative to their size, so a few more peels can occur — the property
  // under test is "a handful of rounds, nothing like the Omega(n) worst
  // case" (at this scale n is ~500, so Omega(n) would be hundreds).
  Graph g = gen::GenerateSocialNetwork(gen::FacebookConfig(0.03));
  for (double ratio : {0.9, 0.5, 0.1}) {
    MaxCliqueFinder::Options options;
    options.block_size_ratio = ratio;
    MaxCliqueFinder finder(options);
    Result<FindResult> result = finder.Find(g);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->levels.size(), 16u) << "ratio " << ratio;
    EXPECT_GE(result->levels.size(), 1u);
  }
}

TEST(EndToEndTest, TriplesFileToCliques) {
  // Ingest the Section 6.2 triple format, run the pipeline, and report
  // cliques in the original label vocabulary.
  std::string path = testing::TempDir() + "/mce_e2e_triples.txt";
  {
    std::ofstream out(path);
    out << "ann follows bob\n"
           "bob follows cat\n"
           "ann follows cat\n"   // triangle ann-bob-cat
           "cat follows dan\n"
           "dan follows eve\n";
  }
  Result<LabeledGraph> lg = ReadTriples(path);
  ASSERT_TRUE(lg.ok()) << lg.status();
  MaxCliqueFinder::Options options;
  options.block_size = 3;
  MaxCliqueFinder finder(options);
  Result<FindResult> result = finder.Find(lg->graph);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->cliques.size(), 3u);
  // Largest clique is the triangle; translate to labels.
  const Clique* triangle = nullptr;
  for (const Clique& c : result->cliques.cliques()) {
    if (c.size() == 3) triangle = &c;
  }
  ASSERT_NE(triangle, nullptr);
  std::vector<std::string> labels;
  for (NodeId v : *triangle) labels.push_back(lg->labels[v]);
  std::sort(labels.begin(), labels.end());
  EXPECT_EQ(labels, (std::vector<std::string>{"ann", "bob", "cat"}));
  std::remove(path.c_str());
}

TEST(EndToEndTest, DistributedRunOnStandIn) {
  Graph g = gen::GenerateSocialNetwork(gen::Twitter1Config(0.02));
  MaxCliqueFinder::Options options;
  options.block_size_ratio = 0.3;
  options.simulate_cluster = true;
  options.cluster.num_workers = 10;
  MaxCliqueFinder finder(options);
  Result<FindResult> result = finder.Find(g);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->cluster.has_value());
  EXPECT_GT(result->cluster->analysis_speedup, 0.0);
  EXPECT_GT(result->cluster->compute_speedup, 1.0);
  CliqueSet expected = Reference(g);
  mce::test::ExpectSameCliques(result->cliques, expected);
}

TEST(EndToEndTest, DegeneracyBoundHolds) {
  // Theorem 1's practical reading: choosing m above the degeneracy avoids
  // the fallback on every stand-in.
  for (const auto& config : gen::AllDatasetConfigs(0.015)) {
    Graph g = gen::GenerateSocialNetwork(config);
    MaxCliqueFinder::Options options;
    options.block_size = Degeneracy(g) + 1;
    MaxCliqueFinder finder(options);
    Result<FindResult> result = finder.Find(g);
    ASSERT_TRUE(result.ok()) << config.name;
    EXPECT_FALSE(result->stats.used_fallback) << config.name;
  }
}

}  // namespace
}  // namespace mce
