// End-to-end exercises of the mce_cli binary (path injected by CMake as
// MCE_CLI_PATH): generate -> stats -> enumerate -> top -> communities ->
// convert, plus error handling for bad invocations.

#include <array>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#ifndef MCE_CLI_PATH
#error "MCE_CLI_PATH must be defined by the build"
#endif

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult RunCli(const std::string& args) {
  const std::string command =
      std::string(MCE_CLI_PATH) + " " + args + " 2>&1";
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  size_t n;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), n);
  }
  int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string TempFile(const std::string& name) {
  return testing::TempDir() + "/mce_cli_test_" + name;
}

class CliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_path_ = new std::string(TempFile("g.txt"));
    CommandResult r = RunCli("generate --model twitter1 --scale 0.02 --output " + *graph_path_);
    ASSERT_EQ(r.exit_code, 0) << r.output;
  }
  static void TearDownTestSuite() {
    std::remove(graph_path_->c_str());
    delete graph_path_;
    graph_path_ = nullptr;
  }

  static std::string* graph_path_;
};

std::string* CliTest::graph_path_ = nullptr;

TEST_F(CliTest, StatsPrintsMetrics) {
  CommandResult r = RunCli("stats --input " + *graph_path_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("nodes:"), std::string::npos);
  EXPECT_NE(r.output.find("degeneracy:"), std::string::npos);
  EXPECT_NE(r.output.find("d*:"), std::string::npos);
}

TEST_F(CliTest, EnumerateHumanReadable) {
  CommandResult r = RunCli("enumerate --input " + *graph_path_ +
                        " --ratio 0.5 --top 2");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("cliques="), std::string::npos);
  EXPECT_NE(r.output.find("clique["), std::string::npos);
}

TEST_F(CliTest, EnumerateJson) {
  CommandResult r =
      RunCli("enumerate --input " + *graph_path_ + " --ratio 0.5 --json true");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.front(), '{');
  EXPECT_NE(r.output.find("\"total_cliques\":"), std::string::npos);
  EXPECT_NE(r.output.find("\"levels\":["), std::string::npos);
}

TEST_F(CliTest, EnumerateReduceFlagMatchesBaselineAndReportsJson) {
  // --reduce must not change the clique count, and --json must carry the
  // reduction object with the prepass marked enabled.
  CommandResult off =
      RunCli("enumerate --input " + *graph_path_ + " --ratio 0.5 --json true");
  EXPECT_EQ(off.exit_code, 0) << off.output;
  EXPECT_NE(off.output.find("\"reduction\":{\"enabled\":false"),
            std::string::npos)
      << off.output;
  CommandResult on = RunCli("enumerate --input " + *graph_path_ +
                            " --ratio 0.5 --reduce --json true");
  EXPECT_EQ(on.exit_code, 0) << on.output;
  EXPECT_NE(on.output.find("\"reduction\":{\"enabled\":true"),
            std::string::npos)
      << on.output;
  const auto count_of = [](const std::string& json) {
    const size_t at = json.find("\"total_cliques\":");
    return json.substr(at, json.find(',', at) - at);
  };
  EXPECT_EQ(count_of(off.output), count_of(on.output));
  // --no-reduce wins over --reduce, and the human-readable line carries
  // the reduce summary only when the prepass ran.
  CommandResult human =
      RunCli("enumerate --input " + *graph_path_ + " --ratio 0.5 --reduce");
  EXPECT_EQ(human.exit_code, 0) << human.output;
  EXPECT_NE(human.output.find("reduce[v="), std::string::npos) << human.output;
  CommandResult negated = RunCli("enumerate --input " + *graph_path_ +
                                 " --ratio 0.5 --reduce --no-reduce");
  EXPECT_EQ(negated.exit_code, 0) << negated.output;
  EXPECT_EQ(negated.output.find("reduce[v="), std::string::npos)
      << negated.output;
}

TEST_F(CliTest, EnumerateWritesCliqueFile) {
  const std::string out = TempFile("cliques.txt");
  CommandResult r = RunCli("enumerate --input " + *graph_path_ +
                        " --ratio 0.5 --output " + out);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("wrote"), std::string::npos);
  FILE* f = fopen(out.c_str(), "r");
  ASSERT_NE(f, nullptr);
  fclose(f);
  std::remove(out.c_str());
}

TEST_F(CliTest, EnumerateExecutorFlagSelectsEngine) {
  // Every engine produces identical clique counts; "cluster" also reports
  // the simulated cluster block.
  CommandResult serial = RunCli("enumerate --input " + *graph_path_ +
                                " --ratio 0.5 --executor serial --json true");
  EXPECT_EQ(serial.exit_code, 0) << serial.output;
  CommandResult pooled =
      RunCli("enumerate --input " + *graph_path_ +
             " --ratio 0.5 --executor pooled --threads 4 --json true");
  EXPECT_EQ(pooled.exit_code, 0) << pooled.output;
  const auto count_of = [](const std::string& json) {
    const size_t at = json.find("\"total_cliques\":");
    return json.substr(at, json.find(',', at) - at);
  };
  ASSERT_NE(serial.output.find("\"total_cliques\":"), std::string::npos);
  EXPECT_EQ(count_of(serial.output), count_of(pooled.output));
  EXPECT_NE(serial.output.find("\"analyze_threads\":1"), std::string::npos);
  CommandResult cluster = RunCli("enumerate --input " + *graph_path_ +
                                 " --ratio 0.5 --executor cluster --json true");
  EXPECT_EQ(cluster.exit_code, 0) << cluster.output;
  EXPECT_NE(cluster.output.find("\"cluster\":{"), std::string::npos);
}

TEST_F(CliTest, EnumerateRejectsUnknownExecutor) {
  CommandResult r = RunCli("enumerate --input " + *graph_path_ +
                           " --ratio 0.5 --executor warp");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("error"), std::string::npos);
}

TEST_F(CliTest, TopPrintsLargest) {
  CommandResult r = RunCli("top --input " + *graph_path_ + " --k 3");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("clique["), std::string::npos);
}

TEST_F(CliTest, CommunitiesRuns) {
  CommandResult r = RunCli("communities --input " + *graph_path_ + " --k 3");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("k-clique communities"), std::string::npos);
}

TEST_F(CliTest, ConvertToBinaryAndBack) {
  const std::string bin = TempFile("g.bin");
  CommandResult r1 =
      RunCli("convert --input " + *graph_path_ + " --output " + bin +
          " --to binary");
  EXPECT_EQ(r1.exit_code, 0) << r1.output;
  CommandResult r2 = RunCli("stats --input " + bin);
  EXPECT_EQ(r2.exit_code, 0) << r2.output;
  std::remove(bin.c_str());
}

TEST_F(CliTest, ConvertToDot) {
  const std::string dot = TempFile("g.dot");
  CommandResult r = RunCli("convert --input " + *graph_path_ + " --output " +
                        dot + " --to dot");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::remove(dot.c_str());
}

TEST_F(CliTest, UnknownCommandFails) {
  CommandResult r = RunCli("frobnicate");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, MissingInputFails) {
  CommandResult r = RunCli("stats --input /nonexistent/zzz.txt");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("error"), std::string::npos);
}

TEST_F(CliTest, BadRatioFails) {
  CommandResult r =
      RunCli("enumerate --input " + *graph_path_ + " --ratio 5.0");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("error"), std::string::npos);
}

}  // namespace
