#include "mce/enumerator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "gen/special.h"
#include "mce/naive.h"
#include "test_util.h"

namespace mce {
namespace {

// The combos exercised on the small named graphs (all 4 algorithms x 3
// storages).
std::vector<MceOptions> AllCombos() {
  std::vector<MceOptions> combos;
  for (Algorithm a : {Algorithm::kBKPivot, Algorithm::kTomita,
                      Algorithm::kEppstein, Algorithm::kXPivot}) {
    for (StorageKind s : {StorageKind::kAdjacencyList, StorageKind::kMatrix,
                          StorageKind::kBitset}) {
      combos.push_back({a, s});
    }
  }
  return combos;
}

TEST(EnumeratorTest, TriangleHasOneClique) {
  Graph g = gen::Complete(3);
  for (const MceOptions& combo : AllCombos()) {
    CliqueSet cs = EnumerateToSet(g, combo);
    ASSERT_EQ(cs.size(), 1u) << ComboName(combo.storage, combo.algorithm);
    EXPECT_EQ(cs.cliques()[0], (Clique{0, 1, 2}));
  }
}

TEST(EnumeratorTest, PathCliquesAreEdges) {
  Graph g = test::PathGraph(6);
  for (const MceOptions& combo : AllCombos()) {
    CliqueSet cs = EnumerateToSet(g, combo);
    EXPECT_EQ(cs.size(), 5u) << ComboName(combo.storage, combo.algorithm);
    for (const Clique& c : cs.cliques()) EXPECT_EQ(c.size(), 2u);
  }
}

TEST(EnumeratorTest, IsolatedNodesAreSingletonCliques) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.ReserveNodes(4);  // nodes 2, 3 isolated
  Graph g = b.Build();
  for (const MceOptions& combo : AllCombos()) {
    CliqueSet cs = EnumerateToSet(g, combo);
    ASSERT_EQ(cs.size(), 3u) << ComboName(combo.storage, combo.algorithm);
    EXPECT_EQ(cs.cliques()[0], (Clique{0, 1}));
    EXPECT_EQ(cs.cliques()[1], (Clique{2}));
    EXPECT_EQ(cs.cliques()[2], (Clique{3}));
  }
}

TEST(EnumeratorTest, MoonMoserCount) {
  // The Moon-Moser graph with k parts has exactly 3^k maximal cliques.
  for (uint32_t parts : {2u, 3u, 4u}) {
    Graph g = gen::MoonMoser(parts);
    const size_t expected = static_cast<size_t>(std::pow(3, parts));
    for (const MceOptions& combo : AllCombos()) {
      CliqueSet cs = EnumerateToSet(g, combo);
      EXPECT_EQ(cs.size(), expected)
          << "parts=" << parts << " "
          << ComboName(combo.storage, combo.algorithm);
    }
  }
}

TEST(EnumeratorTest, Figure1AllCombosMatchPaper) {
  Graph g = test::Figure1Graph();
  CliqueSet expected = test::Figure1Cliques();
  for (const MceOptions& combo : AllCombos()) {
    CliqueSet cs = EnumerateToSet(g, combo);
    EXPECT_TRUE(CliqueSet::Equal(cs, expected))
        << ComboName(combo.storage, combo.algorithm);
  }
}

TEST(EnumeratorTest, EmptyGraphEmitsNothing) {
  Graph g;
  for (const MceOptions& combo : AllCombos()) {
    CliqueSet cs = EnumerateToSet(g, combo);
    EXPECT_EQ(cs.size(), 0u);
  }
}

TEST(EnumeratorTest, NaiveAlgorithmDispatch) {
  Graph g = test::Figure1Graph();
  MceOptions options{Algorithm::kNaive, StorageKind::kAdjacencyList};
  CliqueSet cs = EnumerateToSet(g, options);
  CliqueSet expected = test::Figure1Cliques();
  EXPECT_TRUE(CliqueSet::Equal(cs, expected));
}

TEST(SeededTest, EnumeratesCliquesThroughSeed) {
  using namespace mce::test;
  Graph g = Figure1Graph();
  // Seed H with all its neighbors as candidates: cliques containing H.
  std::vector<NodeId> p(g.Neighbors(H).begin(), g.Neighbors(H).end());
  for (const MceOptions& combo : AllCombos()) {
    CliqueSet cs;
    EnumerateSeeded(g, combo, H, p, {}, cs.Collector());
    CliqueSet expected;
    expected.Add(Clique{A, J, H});
    expected.Add(Clique{H, F, D});
    EXPECT_TRUE(CliqueSet::Equal(cs, expected))
        << ComboName(combo.storage, combo.algorithm);
  }
}

TEST(SeededTest, ExclusionSetSuppressesCliques) {
  using namespace mce::test;
  Graph g = Figure1Graph();
  // Exclude A: cliques containing H but not A, maximal w.r.t. P u X.
  // {J,H} is NOT emitted because A in X extends it; {H,F,D} survives.
  std::vector<NodeId> nbrs(g.Neighbors(H).begin(), g.Neighbors(H).end());
  std::vector<NodeId> p, x;
  for (NodeId v : nbrs) {
    if (v == A) {
      x.push_back(v);
    } else {
      p.push_back(v);
    }
  }
  for (const MceOptions& combo : AllCombos()) {
    CliqueSet cs;
    EnumerateSeeded(g, combo, H, p, x, cs.Collector());
    CliqueSet expected;
    expected.Add(Clique{H, F, D});
    EXPECT_TRUE(CliqueSet::Equal(cs, expected))
        << ComboName(combo.storage, combo.algorithm);
  }
}

TEST(SeededTest, EmptyCandidatesYieldSeedSingleton) {
  Graph g = test::StarGraph(4);
  for (const MceOptions& combo : AllCombos()) {
    CliqueSet cs;
    EnumerateSeeded(g, combo, 1, {}, {}, cs.Collector());
    ASSERT_EQ(cs.size(), 1u);
    EXPECT_EQ(cs.cliques()[0], (Clique{1}));
  }
}

TEST(SeededTest, SeededAlgorithmForSubstitutesOrderingAlgorithms) {
  // The seeded loop cannot honor degeneracy ordering (kEppstein) or the
  // pivotless naive expansion, so both map to the Tomita pivot; pivoting
  // algorithms pass through unchanged.
  EXPECT_EQ(SeededAlgorithmFor(Algorithm::kEppstein), Algorithm::kTomita);
  EXPECT_EQ(SeededAlgorithmFor(Algorithm::kNaive), Algorithm::kTomita);
  EXPECT_EQ(SeededAlgorithmFor(Algorithm::kTomita), Algorithm::kTomita);
  EXPECT_EQ(SeededAlgorithmFor(Algorithm::kBKPivot), Algorithm::kBKPivot);
  EXPECT_EQ(SeededAlgorithmFor(Algorithm::kXPivot), Algorithm::kXPivot);
}

TEST(ComboNameTest, Formatting) {
  EXPECT_EQ(ComboName(StorageKind::kMatrix, Algorithm::kBKPivot),
            "Matrix/BKPivot");
  EXPECT_EQ(ComboName(StorageKind::kBitset, Algorithm::kTomita),
            "BitSets/Tomita");
  EXPECT_EQ(ComboName(StorageKind::kAdjacencyList, Algorithm::kXPivot),
            "Lists/XPivot");
}

TEST(EstimateStorageBytesTest, MatrixIsQuadratic) {
  EXPECT_EQ(EstimateStorageBytes(100, 0, StorageKind::kMatrix), 10000u);
  EXPECT_EQ(EstimateStorageBytes(128, 0, StorageKind::kBitset),
            128u * 2 * 8);
  EXPECT_GT(EstimateStorageBytes(100, 1000, StorageKind::kAdjacencyList),
            8000u);
}

}  // namespace
}  // namespace mce
