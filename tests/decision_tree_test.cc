#include "decision/decision_tree.h"

#include <gtest/gtest.h>

#include "decision/features.h"
#include "gen/special.h"
#include "test_util.h"

namespace mce::decision {
namespace {

BlockFeatures MakeFeatures(double nodes, double degeneracy) {
  BlockFeatures f;
  f.num_nodes = nodes;
  f.degeneracy = degeneracy;
  return f;
}

TEST(PaperTreeTest, MatchesFigure3Leaves) {
  DecisionTree tree = PaperDecisionTree();
  // Sparse block (degeneracy <= 25) -> Lists/XPivot.
  {
    MceOptions o = tree.Classify(MakeFeatures(100000, 10));
    EXPECT_EQ(o.storage, StorageKind::kAdjacencyList);
    EXPECT_EQ(o.algorithm, Algorithm::kXPivot);
  }
  // Dense small block -> Matrix/XPivot.
  {
    MceOptions o = tree.Classify(MakeFeatures(500, 30));
    EXPECT_EQ(o.storage, StorageKind::kMatrix);
    EXPECT_EQ(o.algorithm, Algorithm::kXPivot);
  }
  // Large block, degeneracy in (25, 52] -> Matrix/BKPivot.
  {
    MceOptions o = tree.Classify(MakeFeatures(20000, 40));
    EXPECT_EQ(o.storage, StorageKind::kMatrix);
    EXPECT_EQ(o.algorithm, Algorithm::kBKPivot);
  }
  // Large block, very dense (degeneracy > 52) -> BitSets/Tomita.
  {
    MceOptions o = tree.Classify(MakeFeatures(20000, 80));
    EXPECT_EQ(o.storage, StorageKind::kBitset);
    EXPECT_EQ(o.algorithm, Algorithm::kTomita);
  }
}

TEST(PaperTreeTest, BoundaryValues) {
  DecisionTree tree = PaperDecisionTree();
  // degeneracy exactly 25 is NOT > 25: sparse leaf.
  EXPECT_EQ(tree.Classify(MakeFeatures(10, 25)).storage,
            StorageKind::kAdjacencyList);
  // #nodes = 8558 is not < 8558: goes to the large-block side.
  MceOptions o = tree.Classify(MakeFeatures(8558, 30));
  EXPECT_EQ(o.algorithm, Algorithm::kBKPivot);
  // #nodes = 8557 takes the small side.
  EXPECT_EQ(tree.Classify(MakeFeatures(8557, 30)).algorithm,
            Algorithm::kXPivot);
  // degeneracy exactly 52: Matrix/BKPivot (not > 52).
  EXPECT_EQ(tree.Classify(MakeFeatures(9000, 52)).storage,
            StorageKind::kMatrix);
}

TEST(PaperTreeTest, ShapeStats) {
  DecisionTree tree = PaperDecisionTree();
  EXPECT_EQ(tree.NumLeaves(), 4u);
  EXPECT_EQ(tree.Depth(), 3);
  std::string rendered = tree.ToString();
  EXPECT_NE(rendered.find("degeneracy > 25"), std::string::npos);
  EXPECT_NE(rendered.find("Lists/XPivot"), std::string::npos);
  EXPECT_NE(rendered.find("BitSets/Tomita"), std::string::npos);
}

TEST(DecisionTreeTest, SingleLeafAlwaysReturnsSame) {
  DecisionTree tree(MceOptions{Algorithm::kEppstein,
                               StorageKind::kAdjacencyList});
  for (double d : {0.0, 10.0, 1000.0}) {
    MceOptions o = tree.Classify(MakeFeatures(d, d));
    EXPECT_EQ(o.algorithm, Algorithm::kEppstein);
  }
  EXPECT_EQ(tree.NumLeaves(), 1u);
  EXPECT_EQ(tree.Depth(), 0);
}

TEST(DecisionTreeTest, ValidationRejectsCycles) {
  std::vector<DecisionTree::Node> nodes(1);
  nodes[0].is_leaf = false;
  nodes[0].feature = FeatureId::kDensity;
  nodes[0].threshold = 0.5;
  nodes[0].true_child = 0;  // self-cycle
  nodes[0].false_child = 0;
  EXPECT_DEATH(DecisionTree tree(std::move(nodes)), "Check failed");
}

TEST(DecisionTreeTest, ValidationRejectsOutOfRangeChild) {
  std::vector<DecisionTree::Node> nodes(1);
  nodes[0].is_leaf = false;
  nodes[0].true_child = 5;
  nodes[0].false_child = 6;
  EXPECT_DEATH(DecisionTree tree(std::move(nodes)), "Check failed");
}

TEST(FeaturesTest, ComputeFeaturesOnFigure1) {
  Graph g = mce::test::Figure1Graph();
  BlockFeatures f = ComputeFeatures(g);
  EXPECT_EQ(f.num_nodes, 16);
  EXPECT_EQ(f.num_edges, 18);
  EXPECT_GT(f.density, 0.0);
  EXPECT_EQ(f.degeneracy, 2);  // triangles are the densest substructures
  EXPECT_GT(f.d_star, 0.0);
}

TEST(FeaturesTest, GetAndArrayAgree) {
  BlockFeatures f;
  f.num_nodes = 1;
  f.num_edges = 2;
  f.density = 3;
  f.degeneracy = 4;
  f.d_star = 5;
  auto arr = f.AsArray();
  for (int i = 0; i < kNumFeatures; ++i) {
    EXPECT_EQ(arr[i], f.Get(static_cast<FeatureId>(i)));
    EXPECT_EQ(arr[i], i + 1);
  }
  EXPECT_NE(f.ToString().find("degeneracy=4"), std::string::npos);
}

TEST(FeaturesTest, FeatureNames) {
  EXPECT_STREQ(FeatureName(FeatureId::kNumNodes), "#nodes");
  EXPECT_STREQ(FeatureName(FeatureId::kDStar), "d*");
}

}  // namespace
}  // namespace mce::decision
