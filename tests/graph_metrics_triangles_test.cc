#include "graph/metrics.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/social.h"
#include "gen/special.h"
#include "test_util.h"
#include "util/random.h"

namespace mce {
namespace {

/// O(n^3) reference triangle counter.
uint64_t NaiveTriangles(const Graph& g) {
  uint64_t t = 0;
  for (NodeId a = 0; a < g.num_nodes(); ++a) {
    for (NodeId b = a + 1; b < g.num_nodes(); ++b) {
      if (!g.HasEdge(a, b)) continue;
      for (NodeId c = b + 1; c < g.num_nodes(); ++c) {
        if (g.HasEdge(a, c) && g.HasEdge(b, c)) ++t;
      }
    }
  }
  return t;
}

TEST(TrianglesTest, KnownCounts) {
  EXPECT_EQ(CountTriangles(gen::Complete(4)), 4u);
  EXPECT_EQ(CountTriangles(gen::Complete(6)), 20u);  // C(6,3)
  EXPECT_EQ(CountTriangles(test::PathGraph(10)), 0u);
  EXPECT_EQ(CountTriangles(test::CycleGraph(3)), 1u);
  EXPECT_EQ(CountTriangles(test::CycleGraph(6)), 0u);
  EXPECT_EQ(CountTriangles(test::StarGraph(10)), 0u);
  EXPECT_EQ(CountTriangles(Graph()), 0u);
}

TEST(TrianglesTest, MatchesNaiveOnRandomGraphs) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = gen::ErdosRenyiGnp(45, 0.05 + 0.06 * trial, &rng);
    EXPECT_EQ(CountTriangles(g), NaiveTriangles(g)) << "trial " << trial;
  }
}

TEST(ClusteringTest, ExtremeValues) {
  // Complete graph: every wedge closes.
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(gen::Complete(6)), 1.0);
  // Star: wedges everywhere, no triangle.
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(test::StarGraph(10)), 0.0);
  // No wedges at all.
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(test::PathGraph(2)), 0.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(Graph()), 0.0);
}

TEST(ClusteringTest, TriangleWithPendant) {
  // Triangle {0,1,2} + pendant 2-3: 1 triangle; wedges: deg 2,2,3,1 ->
  // 1+1+3+0 = 5 wedges -> transitivity 3/5.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(2, 3);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(b.Build()), 0.6);
}

TEST(ClusteringTest, SocialStandInIsClustered) {
  // Planted communities push transitivity well above the ER baseline at
  // equal density.
  Graph social = gen::GenerateSocialNetwork(gen::Twitter1Config(0.05));
  Rng rng(11);
  Graph er = gen::ErdosRenyiGnm(social.num_nodes(), social.num_edges(),
                                &rng);
  EXPECT_GT(GlobalClusteringCoefficient(social),
            3 * GlobalClusteringCoefficient(er));
}

}  // namespace
}  // namespace mce
