#include "gen/social.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/core_decomposition.h"
#include "graph/metrics.h"

namespace mce::gen {
namespace {

TEST(SocialTest, AllDatasetConfigsGenerate) {
  for (const SocialNetworkConfig& config : AllDatasetConfigs(0.05)) {
    Graph g = GenerateSocialNetwork(config);
    EXPECT_EQ(g.num_nodes(), config.num_nodes) << config.name;
    EXPECT_GT(g.num_edges(), 0u) << config.name;
  }
}

TEST(SocialTest, DeterministicInSeed) {
  SocialNetworkConfig c = Twitter1Config(0.05);
  Graph g1 = GenerateSocialNetwork(c);
  Graph g2 = GenerateSocialNetwork(c);
  EXPECT_TRUE(g1 == g2);
  c.seed += 1;
  Graph g3 = GenerateSocialNetwork(c);
  EXPECT_FALSE(g1 == g3);
}

TEST(SocialTest, ScaleFreeShape) {
  // The stand-ins must reproduce the shape Figure 6 shows: the bulk of the
  // nodes at low degree, with a heavy tail.
  SocialNetworkConfig c = Twitter1Config(0.2);
  Graph g = GenerateSocialNetwork(c);
  const double low_degree_fraction = DegreeRangeFraction(g, 1, 20);
  EXPECT_GT(low_degree_fraction, 0.6);
  // And a far-out hub (super-hub reach ~4% of n).
  EXPECT_GT(g.MaxDegree(), g.num_nodes() / 50);
}

TEST(SocialTest, FacebookHasExtremeHub) {
  // Table 3: facebook's maximum degree is more than half its node count;
  // the stand-in mirrors that with super_hub_reach = 0.3 plus organic
  // degree.
  Graph g = GenerateSocialNetwork(FacebookConfig(0.1));
  EXPECT_GT(g.MaxDegree(), g.num_nodes() / 4);
}

TEST(SocialTest, DatasetOrderingMatchesTable3) {
  // twitter1 < twitter2 < twitter3 in nodes and edges.
  auto configs = AllDatasetConfigs(0.05);
  Graph t1 = GenerateSocialNetwork(configs[0]);
  Graph t2 = GenerateSocialNetwork(configs[1]);
  Graph t3 = GenerateSocialNetwork(configs[2]);
  EXPECT_LT(t1.num_nodes(), t2.num_nodes());
  EXPECT_LT(t2.num_nodes(), t3.num_nodes());
  EXPECT_LT(t1.num_edges(), t2.num_edges());
  EXPECT_LT(t2.num_edges(), t3.num_edges());
}

TEST(SocialTest, PlantedCliquesRaiseDegeneracy) {
  // Without planted cliques the BA degeneracy is ~attach; with them the
  // degeneracy reflects the largest planted community.
  SocialNetworkConfig with = Twitter1Config(0.1);
  SocialNetworkConfig without = with;
  without.community_cliques = 0;
  without.hub_cliques = 0;
  Graph g_with = GenerateSocialNetwork(with);
  Graph g_without = GenerateSocialNetwork(without);
  EXPECT_GT(Degeneracy(g_with), Degeneracy(g_without));
}

TEST(SocialTest, HubCliquesExistAmongTopDegreeNodes) {
  // The hub-clique overlay must create dense structure among high-degree
  // nodes — that is the structure Figures 9-11 measure. Verify the top
  // decile's induced density is noticeably above the global density.
  Graph g = GenerateSocialNetwork(Twitter2Config(0.1));
  std::vector<NodeId> by_degree(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) by_degree[v] = v;
  std::sort(by_degree.begin(), by_degree.end(), [&g](NodeId a, NodeId b) {
    return g.Degree(a) > g.Degree(b);
  });
  const size_t top = g.num_nodes() / 10;
  uint64_t top_edges = 0;
  for (size_t i = 0; i < top; ++i) {
    for (size_t j = i + 1; j < top; ++j) {
      if (g.HasEdge(by_degree[i], by_degree[j])) ++top_edges;
    }
  }
  const double top_density =
      2.0 * static_cast<double>(top_edges) / (top * (top - 1.0));
  EXPECT_GT(top_density, 5 * g.Density());
}

TEST(SocialTest, TopHubCliqueClearsEveryRatioThreshold) {
  // The property Figures 9-11 rely on: at least one planted clique whose
  // members ALL have degree >= 0.9 * max degree, so hub-only cliques exist
  // even at m/d = 0.9.
  Graph g = GenerateSocialNetwork(Twitter1Config(0.1));
  const uint32_t d = g.MaxDegree();
  const uint32_t threshold = static_cast<uint32_t>(0.9 * d);
  // Count nodes above the 0.9 threshold: must be at least a clique's worth.
  uint32_t above = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.Degree(v) >= threshold) ++above;
  }
  EXPECT_GE(above, Twitter1Config(0.1).hub_clique_size_lo);
}

TEST(SocialTest, BoostedDegreesSpreadAcrossRatios) {
  // The hub-clique boost fractions are spread over [frac_lo, 1.0]: the
  // degree sequence should populate mid-range degrees (0.2..0.8 of max),
  // not just the BA bulk and the super hubs.
  Graph g = GenerateSocialNetwork(Twitter2Config(0.1));
  const uint32_t d = g.MaxDegree();
  uint32_t mid_range = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const uint32_t deg = g.Degree(v);
    if (deg >= d / 5 && deg <= 4 * d / 5) ++mid_range;
  }
  EXPECT_GT(mid_range, 20u);
}

TEST(SocialTest, NamesAreStable) {
  auto configs = AllDatasetConfigs();
  ASSERT_EQ(configs.size(), 5u);
  EXPECT_EQ(configs[0].name, "twitter1");
  EXPECT_EQ(configs[1].name, "twitter2");
  EXPECT_EQ(configs[2].name, "twitter3");
  EXPECT_EQ(configs[3].name, "facebook");
  EXPECT_EQ(configs[4].name, "google+");
}

}  // namespace
}  // namespace mce::gen
