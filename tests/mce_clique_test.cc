#include "mce/clique.h"

#include <gtest/gtest.h>

#include "gen/special.h"
#include "test_util.h"

namespace mce {
namespace {

TEST(IsCliqueTest, RecognizesCliques) {
  Graph g = test::Figure1Graph();
  using namespace mce::test;
  EXPECT_TRUE(IsClique(g, Clique{A, J, H}));
  EXPECT_TRUE(IsClique(g, Clique{D, S, E}));
  EXPECT_TRUE(IsClique(g, Clique{D, S}));
  EXPECT_TRUE(IsClique(g, Clique{A}));
  EXPECT_TRUE(IsClique(g, Clique{}));
  EXPECT_FALSE(IsClique(g, Clique{A, D}));
  EXPECT_FALSE(IsClique(g, Clique{A, J, H, D}));
}

TEST(IsMaximalCliqueTest, DistinguishesMaximal) {
  Graph g = test::Figure1Graph();
  using namespace mce::test;
  EXPECT_TRUE(IsMaximalClique(g, Clique{A, J, H}));
  EXPECT_TRUE(IsMaximalClique(g, Clique{D, S, E}));
  EXPECT_FALSE(IsMaximalClique(g, Clique{A, J}));    // extendable by H
  EXPECT_FALSE(IsMaximalClique(g, Clique{D, S}));    // extendable by E
  EXPECT_FALSE(IsMaximalClique(g, Clique{A, D}));    // not a clique
  EXPECT_TRUE(IsMaximalClique(g, Clique{D, P}));
}

TEST(IsMaximalCliqueTest, EmptyCliqueOnlyInEmptyGraph) {
  EXPECT_TRUE(IsMaximalClique(Graph(), Clique{}));
  EXPECT_FALSE(IsMaximalClique(test::PathGraph(2), Clique{}));
}

TEST(CommonNeighborsTest, IntersectsNeighborhoods) {
  Graph g = test::Figure1Graph();
  using namespace mce::test;
  EXPECT_EQ(CommonNeighbors(g, Clique{A, J}), (std::vector<NodeId>{H}));
  EXPECT_EQ(CommonNeighbors(g, Clique{D, S}), (std::vector<NodeId>{E}));
  EXPECT_TRUE(CommonNeighbors(g, Clique{D, S, E}).empty());
  // Single node: its whole neighborhood.
  EXPECT_EQ(CommonNeighbors(g, Clique{A}).size(), 2u);
}

TEST(CommonNeighborsTest, ExcludesMembers) {
  Graph g = gen::Complete(4);
  // In K4, common neighbors of {0,1} are {2,3}, not including 0 or 1.
  EXPECT_EQ(CommonNeighbors(g, Clique{0, 1}), (std::vector<NodeId>{2, 3}));
}

TEST(CliqueSetTest, AddSortsMembers) {
  CliqueSet cs;
  cs.Add(Clique{3, 1, 2});
  EXPECT_EQ(cs.cliques()[0], (Clique{1, 2, 3}));
}

TEST(CliqueSetTest, CanonicalizeSortsAndDedups) {
  CliqueSet cs;
  cs.Add(Clique{2, 1});
  cs.Add(Clique{0});
  cs.Add(Clique{1, 2});
  cs.Canonicalize();
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs.cliques()[0], (Clique{0}));
  EXPECT_EQ(cs.cliques()[1], (Clique{1, 2}));
}

TEST(CliqueSetTest, MergeMovesAll) {
  CliqueSet a, b;
  a.Add(Clique{0});
  b.Add(Clique{1});
  b.Add(Clique{2});
  a.Merge(std::move(b));
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 0u);
}

TEST(CliqueSetTest, SizeStats) {
  CliqueSet cs;
  EXPECT_EQ(cs.MaxCliqueSize(), 0u);
  EXPECT_EQ(cs.AverageCliqueSize(), 0.0);
  cs.Add(Clique{0, 1});
  cs.Add(Clique{2, 3, 4, 5});
  EXPECT_EQ(cs.MaxCliqueSize(), 4u);
  EXPECT_DOUBLE_EQ(cs.AverageCliqueSize(), 3.0);
}

TEST(CliqueSetTest, EqualIsSetEquality) {
  CliqueSet a, b;
  a.Add(Clique{0, 1});
  a.Add(Clique{2});
  b.Add(Clique{2});
  b.Add(Clique{1, 0});
  EXPECT_TRUE(CliqueSet::Equal(a, b));
  b.Add(Clique{3});
  EXPECT_FALSE(CliqueSet::Equal(a, b));
}

TEST(CliqueSetTest, CollectorAppends) {
  CliqueSet cs;
  CliqueCallback cb = cs.Collector();
  std::vector<NodeId> c1{5, 2};
  cb(c1);
  EXPECT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs.cliques()[0], (Clique{2, 5}));
}

}  // namespace
}  // namespace mce
