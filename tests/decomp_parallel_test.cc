#include "decomp/parallel_analysis.h"

#include <gtest/gtest.h>

#include "decomp/blocks.h"
#include "decomp/cut.h"
#include "gen/generators.h"
#include "mce/naive.h"
#include "test_util.h"
#include "util/random.h"

namespace mce::decomp {
namespace {

TEST(ParallelAnalysisTest, MatchesSerialLoop) {
  Rng rng(31);
  Graph g = gen::BarabasiAlbert(120, 3, &rng);
  const uint32_t m = 20;
  CutResult cut = Cut(g, m);
  BlocksOptions boptions;
  boptions.max_block_size = m;
  std::vector<Block> blocks = BuildBlocks(g, cut.feasible, boptions);
  BlockAnalysisOptions aoptions;

  CliqueSet serial;
  std::vector<BlockAnalysisResult> serial_results;
  for (const Block& block : blocks) {
    serial_results.push_back(
        AnalyzeBlock(block, aoptions, serial.Collector()));
  }

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ParallelAnalysisResult parallel =
        ParallelAnalyzeBlocks(blocks, aoptions, threads);
    mce::test::ExpectSameCliques(parallel.cliques, serial);
    ASSERT_EQ(parallel.per_block.size(), serial_results.size());
    for (size_t i = 0; i < blocks.size(); ++i) {
      EXPECT_EQ(parallel.per_block[i].num_cliques,
                serial_results[i].num_cliques);
    }
  }
}

TEST(ParallelAnalysisTest, EmptyBlockList) {
  ParallelAnalysisResult r = ParallelAnalyzeBlocks({}, {}, 4);
  EXPECT_EQ(r.cliques.size(), 0u);
  EXPECT_TRUE(r.per_block.empty());
}

TEST(ParallelAnalysisTest, DeterministicAcrossRuns) {
  Rng rng(33);
  Graph g = gen::ErdosRenyiGnp(60, 0.15, &rng);
  const uint32_t m = 15;
  CutResult cut = Cut(g, m);
  BlocksOptions boptions;
  boptions.max_block_size = m;
  std::vector<Block> blocks = BuildBlocks(g, cut.feasible, boptions);
  ParallelAnalysisResult r1 = ParallelAnalyzeBlocks(blocks, {}, 4);
  ParallelAnalysisResult r2 = ParallelAnalyzeBlocks(blocks, {}, 4);
  // Block-ordered merge makes even the raw order deterministic.
  EXPECT_EQ(r1.cliques.cliques(), r2.cliques.cliques());
}

}  // namespace
}  // namespace mce::decomp
