#include "decomp/parallel_analysis.h"

#include <thread>

#include <gtest/gtest.h>

#include "decomp/blocks.h"
#include "decomp/cut.h"
#include "gen/generators.h"
#include "mce/naive.h"
#include "test_util.h"
#include "util/random.h"

namespace mce::decomp {
namespace {

TEST(ParallelAnalysisTest, MatchesSerialLoop) {
  Rng rng(31);
  Graph g = gen::BarabasiAlbert(120, 3, &rng);
  const uint32_t m = 20;
  CutResult cut = Cut(g, m);
  BlocksOptions boptions;
  boptions.max_block_size = m;
  std::vector<Block> blocks = BuildBlocks(g, cut.feasible, boptions);
  BlockAnalysisOptions aoptions;

  CliqueSet serial;
  std::vector<BlockAnalysisResult> serial_results;
  for (const Block& block : blocks) {
    serial_results.push_back(
        AnalyzeBlock(block, aoptions, serial.Collector()));
  }

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ParallelAnalysisResult parallel =
        ParallelAnalyzeBlocks(blocks, aoptions, threads);
    mce::test::ExpectSameCliques(parallel.cliques, serial);
    ASSERT_EQ(parallel.per_block.size(), serial_results.size());
    for (size_t i = 0; i < blocks.size(); ++i) {
      EXPECT_EQ(parallel.per_block[i].num_cliques,
                serial_results[i].num_cliques);
    }
  }
}

TEST(ParallelAnalysisTest, ObserverReceivesEveryBlockInOrder) {
  // Regression: the parallel path used to drop block_observer records
  // entirely. Records must arrive once per block, in block order, on the
  // calling thread, with per-block timing filled in.
  Rng rng(35);
  Graph g = gen::BarabasiAlbert(100, 3, &rng);
  const uint32_t m = 18;
  CutResult cut = Cut(g, m);
  BlocksOptions boptions;
  boptions.max_block_size = m;
  std::vector<Block> blocks = BuildBlocks(g, cut.feasible, boptions);
  ASSERT_GT(blocks.size(), 1u);
  for (size_t threads : {1u, 4u}) {
    std::vector<BlockTaskRecord> records;
    const std::thread::id caller = std::this_thread::get_id();
    ParallelAnalysisResult r = ParallelAnalyzeBlocks(
        blocks, {}, threads,
        [&](const BlockTaskRecord& record) {
          EXPECT_EQ(std::this_thread::get_id(), caller);
          records.push_back(record);
        },
        /*level=*/3);
    ASSERT_EQ(records.size(), blocks.size());
    uint64_t observed_cliques = 0;
    for (size_t i = 0; i < blocks.size(); ++i) {
      EXPECT_EQ(records[i].level, 3u);
      EXPECT_EQ(records[i].nodes, blocks[i].num_nodes());
      EXPECT_EQ(records[i].bytes, blocks[i].EstimatedBytes());
      EXPECT_EQ(records[i].cliques, r.per_block[i].num_cliques);
      EXPECT_GE(records[i].seconds, 0.0);
      observed_cliques += records[i].cliques;
    }
    EXPECT_EQ(observed_cliques, r.cliques.size());
  }
}

TEST(ParallelAnalysisTest, AllCombosThreadSweepRawIdentical) {
  // Parallel == serial must hold to the byte for every storage x algorithm
  // combination at every thread count: per-worker workspace reuse may not
  // perturb emission order or content.
  Rng rng(37);
  Graph g = gen::BarabasiAlbert(90, 3, &rng);
  const uint32_t m = 18;
  CutResult cut = Cut(g, m);
  BlocksOptions boptions;
  boptions.max_block_size = m;
  std::vector<Block> blocks = BuildBlocks(g, cut.feasible, boptions);
  ASSERT_GT(blocks.size(), 1u);
  for (Algorithm algorithm :
       {Algorithm::kBKPivot, Algorithm::kTomita, Algorithm::kXPivot}) {
    for (StorageKind storage :
         {StorageKind::kAdjacencyList, StorageKind::kMatrix,
          StorageKind::kBitset}) {
      BlockAnalysisOptions aoptions;
      aoptions.fixed = {algorithm, storage};
      CliqueSet serial;
      for (const Block& block : blocks) {
        AnalyzeBlock(block, aoptions, serial.Collector());
      }
      for (size_t threads : {1u, 2u, 4u, 8u}) {
        ParallelAnalysisResult r =
            ParallelAnalyzeBlocks(blocks, aoptions, threads);
        EXPECT_EQ(r.cliques.cliques(), serial.cliques())
            << ComboName(storage, algorithm) << " with " << threads
            << " threads";
      }
    }
  }
}

TEST(ParallelAnalysisTest, EmptyBlockList) {
  ParallelAnalysisResult r = ParallelAnalyzeBlocks({}, {}, 4);
  EXPECT_EQ(r.cliques.size(), 0u);
  EXPECT_TRUE(r.per_block.empty());
}

TEST(ParallelAnalysisTest, DeterministicAcrossRuns) {
  Rng rng(33);
  Graph g = gen::ErdosRenyiGnp(60, 0.15, &rng);
  const uint32_t m = 15;
  CutResult cut = Cut(g, m);
  BlocksOptions boptions;
  boptions.max_block_size = m;
  std::vector<Block> blocks = BuildBlocks(g, cut.feasible, boptions);
  ParallelAnalysisResult r1 = ParallelAnalyzeBlocks(blocks, {}, 4);
  ParallelAnalysisResult r2 = ParallelAnalyzeBlocks(blocks, {}, 4);
  // Block-ordered merge makes even the raw order deterministic.
  EXPECT_EQ(r1.cliques.cliques(), r2.cliques.cliques());
}

}  // namespace
}  // namespace mce::decomp
