#include "util/thread_pool.h"

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mce {
namespace {

// Keeps busy-work loops from being optimized away.
std::atomic<int> benchmark_sink_{0};

TEST(ThreadPoolTest, RunsAllTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPoolTest, WaitBlocksUntilDone) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&counter] {
      // Small busy work so Wait actually has something to wait for.
      int x = 0;
      for (int j = 0; j < 10000; ++j) x += j;
      benchmark_sink_.store(x, std::memory_order_relaxed);
      counter.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 20);
  // Pool is reusable after Wait.
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 21);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);  // clamped to 1
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No explicit Wait: the destructor must finish the work.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, StressSubmitFromManyThreads) {
  // Satellite regression: Submit must be safe from any thread, including
  // concurrent external submitters and tasks that submit follow-up work
  // from inside the pool.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kSubmitters = 8;
  constexpr int kTasksPerSubmitter = 200;
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < kTasksPerSubmitter; ++i) {
        pool.Submit([&pool, &counter] {
          counter.fetch_add(1);
          // Every 4th task fans out a nested task.
          if (counter.load(std::memory_order_relaxed) % 4 == 0) {
            pool.Submit([&counter] { counter.fetch_add(1); });
          }
        });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  pool.Wait();
  EXPECT_GE(counter.load(), kSubmitters * kTasksPerSubmitter);
  // Wait drained everything, nested tasks included: the count is stable.
  const int settled = counter.load();
  pool.Wait();
  EXPECT_EQ(counter.load(), settled);
}

TEST(ThreadPoolTest, CurrentWorkerIndexIdentifiesWorkers) {
  // Off-pool threads are not workers.
  EXPECT_EQ(ThreadPool::CurrentWorkerIndex(), ThreadPool::kNotAWorker);
  ThreadPool pool(3);
  std::mutex mu;
  std::set<size_t> seen;
  for (int i = 0; i < 300; ++i) {
    pool.Submit([&mu, &seen] {
      const size_t index = ThreadPool::CurrentWorkerIndex();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(index);
    });
  }
  pool.Wait();
  EXPECT_EQ(ThreadPool::CurrentWorkerIndex(), ThreadPool::kNotAWorker);
  ASSERT_FALSE(seen.empty());
  for (size_t index : seen) EXPECT_LT(index, pool.num_threads());
}

TEST(ThreadPoolTest, TasksCanSubmitResults) {
  ThreadPool pool(4);
  std::vector<int> results(64, 0);
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&results, i] { results[i] = i * i; });
  }
  pool.Wait();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ThreadPoolCompletionTest, ZeroSignalTokenIsBornTriggered) {
  ThreadPool pool(2);
  ThreadPool::Completion token = pool.CreateCompletion(0);
  EXPECT_TRUE(token.triggered());
  std::atomic<bool> ran{false};
  pool.SubmitAfter(token, [&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolCompletionTest, DefaultConstructedHandleIsEmpty) {
  ThreadPool::Completion empty;
  EXPECT_FALSE(static_cast<bool>(empty));
  ThreadPool pool(1);
  ThreadPool::Completion token = pool.CreateCompletion(1);
  EXPECT_TRUE(static_cast<bool>(token));
  token.Signal();
}

TEST(ThreadPoolCompletionTest, DeferredTasksWaitForEverySignal) {
  ThreadPool pool(2);
  ThreadPool::Completion token = pool.CreateCompletion(3);
  std::atomic<int> order{0};
  std::atomic<int> deferred_saw{-1};
  pool.SubmitAfter(token, [&] { deferred_saw = order.load(); });
  EXPECT_FALSE(token.triggered());
  order = 1;
  token.Signal();
  EXPECT_FALSE(token.triggered());
  order = 2;
  token.Signal();
  EXPECT_FALSE(token.triggered());
  order = 3;
  token.Signal();
  EXPECT_TRUE(token.triggered());
  pool.Wait();
  // The deferred task ran only after the third signal.
  EXPECT_EQ(deferred_saw.load(), 3);
}

TEST(ThreadPoolCompletionTest, SubmitAfterTriggeredRunsImmediately) {
  ThreadPool pool(2);
  ThreadPool::Completion token = pool.CreateCompletion(1);
  token.Signal();
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.SubmitAfter(token, [&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolCompletionTest, DeferredTasksRunInSubmitAfterOrder) {
  ThreadPool pool(1);  // one worker => pool order is execution order
  ThreadPool::Completion token = pool.CreateCompletion(1);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    pool.SubmitAfter(token, [&order, i] { order.push_back(i); });
  }
  token.Signal();
  pool.Wait();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolCompletionTest, SignalsFromPoolTasksChainStages) {
  // The exec-engine shape: N block tasks signal a token; the filter stage
  // chained behind it runs exactly once, after all of them.
  ThreadPool pool(4);
  constexpr int kBlocks = 32;
  ThreadPool::Completion token = pool.CreateCompletion(kBlocks);
  std::atomic<int> blocks_done{0};
  std::atomic<int> filter_runs{0};
  std::atomic<int> filter_saw{-1};
  pool.SubmitAfter(token, [&] {
    filter_runs.fetch_add(1);
    filter_saw = blocks_done.load();
  });
  for (int i = 0; i < kBlocks; ++i) {
    pool.Submit([&blocks_done, token]() mutable {
      blocks_done.fetch_add(1);
      token.Signal();
    });
  }
  pool.Wait();
  EXPECT_EQ(filter_runs.load(), 1);
  EXPECT_EQ(filter_saw.load(), kBlocks);
  EXPECT_TRUE(token.triggered());
}

TEST(ThreadPoolCompletionTest, CopiesShareState) {
  ThreadPool pool(2);
  ThreadPool::Completion token = pool.CreateCompletion(2);
  ThreadPool::Completion copy = token;
  copy.Signal();
  token.Signal();
  EXPECT_TRUE(token.triggered());
  EXPECT_TRUE(copy.triggered());
}

}  // namespace
}  // namespace mce
