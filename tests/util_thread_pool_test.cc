#include "util/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace mce {
namespace {

// Keeps busy-work loops from being optimized away.
std::atomic<int> benchmark_sink_{0};

TEST(ThreadPoolTest, RunsAllTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPoolTest, WaitBlocksUntilDone) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&counter] {
      // Small busy work so Wait actually has something to wait for.
      int x = 0;
      for (int j = 0; j < 10000; ++j) x += j;
      benchmark_sink_.store(x, std::memory_order_relaxed);
      counter.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 20);
  // Pool is reusable after Wait.
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 21);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);  // clamped to 1
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No explicit Wait: the destructor must finish the work.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TasksCanSubmitResults) {
  ThreadPool pool(4);
  std::vector<int> results(64, 0);
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&results, i] { results[i] = i * i; });
  }
  pool.Wait();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[i], i * i);
}

}  // namespace
}  // namespace mce
