#include "util/thread_pool.h"

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mce {
namespace {

// Keeps busy-work loops from being optimized away.
std::atomic<int> benchmark_sink_{0};

TEST(ThreadPoolTest, RunsAllTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPoolTest, WaitBlocksUntilDone) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&counter] {
      // Small busy work so Wait actually has something to wait for.
      int x = 0;
      for (int j = 0; j < 10000; ++j) x += j;
      benchmark_sink_.store(x, std::memory_order_relaxed);
      counter.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 20);
  // Pool is reusable after Wait.
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 21);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);  // clamped to 1
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No explicit Wait: the destructor must finish the work.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, StressSubmitFromManyThreads) {
  // Satellite regression: Submit must be safe from any thread, including
  // concurrent external submitters and tasks that submit follow-up work
  // from inside the pool.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kSubmitters = 8;
  constexpr int kTasksPerSubmitter = 200;
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < kTasksPerSubmitter; ++i) {
        pool.Submit([&pool, &counter] {
          counter.fetch_add(1);
          // Every 4th task fans out a nested task.
          if (counter.load(std::memory_order_relaxed) % 4 == 0) {
            pool.Submit([&counter] { counter.fetch_add(1); });
          }
        });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  pool.Wait();
  EXPECT_GE(counter.load(), kSubmitters * kTasksPerSubmitter);
  // Wait drained everything, nested tasks included: the count is stable.
  const int settled = counter.load();
  pool.Wait();
  EXPECT_EQ(counter.load(), settled);
}

TEST(ThreadPoolTest, CurrentWorkerIndexIdentifiesWorkers) {
  // Off-pool threads are not workers.
  EXPECT_EQ(ThreadPool::CurrentWorkerIndex(), ThreadPool::kNotAWorker);
  ThreadPool pool(3);
  std::mutex mu;
  std::set<size_t> seen;
  for (int i = 0; i < 300; ++i) {
    pool.Submit([&mu, &seen] {
      const size_t index = ThreadPool::CurrentWorkerIndex();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(index);
    });
  }
  pool.Wait();
  EXPECT_EQ(ThreadPool::CurrentWorkerIndex(), ThreadPool::kNotAWorker);
  ASSERT_FALSE(seen.empty());
  for (size_t index : seen) EXPECT_LT(index, pool.num_threads());
}

TEST(ThreadPoolTest, TasksCanSubmitResults) {
  ThreadPool pool(4);
  std::vector<int> results(64, 0);
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&results, i] { results[i] = i * i; });
  }
  pool.Wait();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[i], i * i);
}

}  // namespace
}  // namespace mce
