#include "core/run_stats.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "test_util.h"
#include "util/random.h"

namespace mce {
namespace {

decomp::FindMaxCliquesResult MakeResult(
    std::vector<std::pair<Clique, uint32_t>> cliques) {
  decomp::FindMaxCliquesResult r;
  std::sort(cliques.begin(), cliques.end());
  for (auto& [c, level] : cliques) {
    r.cliques.Add(std::move(c));
    r.origin_level.push_back(level);
  }
  r.levels.resize(2);
  return r;
}

TEST(RunStatsTest, CountsAndAveragesByOrigin) {
  decomp::FindMaxCliquesResult r = MakeResult({
      {{0, 1}, 0},           // feasible, size 2
      {{2, 3, 4, 5}, 0},     // feasible, size 4
      {{6, 7, 8}, 1},        // hub, size 3
  });
  RunStats s = ComputeRunStats(r);
  EXPECT_EQ(s.total_cliques, 3u);
  EXPECT_EQ(s.feasible_cliques, 2u);
  EXPECT_EQ(s.hub_cliques, 1u);
  EXPECT_EQ(s.max_clique_size, 4u);
  EXPECT_DOUBLE_EQ(s.avg_clique_size, 3.0);
  EXPECT_DOUBLE_EQ(s.avg_feasible_clique_size, 3.0);
  EXPECT_DOUBLE_EQ(s.avg_hub_clique_size, 3.0);
  EXPECT_EQ(s.num_levels, 2u);
}

TEST(RunStatsTest, EmptyResult) {
  decomp::FindMaxCliquesResult r;
  r.levels.resize(1);
  RunStats s = ComputeRunStats(r);
  EXPECT_EQ(s.total_cliques, 0u);
  EXPECT_EQ(s.max_clique_size, 0u);
  EXPECT_DOUBLE_EQ(s.avg_clique_size, 0.0);
}

TEST(RunStatsTest, ToStringMentionsKeyNumbers) {
  decomp::FindMaxCliquesResult r = MakeResult({{{0, 1, 2}, 1}});
  r.used_fallback = true;
  RunStats s = ComputeRunStats(r);
  std::string str = s.ToString();
  EXPECT_NE(str.find("cliques=1"), std::string::npos);
  EXPECT_NE(str.find("hub-only=1"), std::string::npos);
  EXPECT_NE(str.find("[fallback]"), std::string::npos);
}

TEST(RunStatsTest, ToStringCarriesEveryTimingField) {
  decomp::FindMaxCliquesResult r = MakeResult({{{0, 1}, 0}});
  r.levels[0].decompose_seconds = 0.25;
  r.levels[0].analyze_seconds = 1.5;
  r.levels[0].overlap_seconds = 0.125;
  r.levels[0].idle_seconds = 0.75;
  r.levels[1].overlap_seconds = 0.375;
  RunStats s = ComputeRunStats(r);
  EXPECT_DOUBLE_EQ(s.overlap_seconds, 0.5);
  EXPECT_DOUBLE_EQ(s.idle_seconds, 0.75);
  std::string str = s.ToString();
  EXPECT_NE(str.find("decompose_s=0.25"), std::string::npos) << str;
  EXPECT_NE(str.find("analyze_s=1.5"), std::string::npos) << str;
  EXPECT_NE(str.find("overlap_s=0.5"), std::string::npos) << str;
  EXPECT_NE(str.find("idle_s=0.75"), std::string::npos) << str;
  EXPECT_EQ(str.find("[fallback]"), std::string::npos) << str;
}

TEST(RunStatsTest, ToStringSummarizesReductionWhenEnabled) {
  decomp::FindMaxCliquesResult r = MakeResult({{{0, 1}, 0}});
  // Off by default: no reduce segment in the line.
  EXPECT_EQ(ComputeRunStats(r).ToString().find("reduce["), std::string::npos);
  r.reduction.enabled = true;
  r.reduction.vertices_removed = 12;
  r.reduction.edges_removed = 34;
  r.reduction.trivial_cliques = 5;
  r.reduction.rounds = 2;
  RunStats s = ComputeRunStats(r);
  std::string str = s.ToString();
  EXPECT_NE(str.find("reduce[v=12 e=34 trivial=5 rounds=2]"),
            std::string::npos)
      << str;
}

TEST(HubShareTest, AllFeasibleIsZero) {
  decomp::FindMaxCliquesResult r = MakeResult({
      {{0, 1}, 0},
      {{2, 3}, 0},
  });
  EXPECT_DOUBLE_EQ(HubShareOfLargestCliques(r, 10), 0.0);
}

TEST(HubShareTest, LargestCliquesDominatedByHubs) {
  // Two big hub cliques and many small feasible ones: top-2 share = 1.0.
  decomp::FindMaxCliquesResult r = MakeResult({
      {{0, 1, 2, 3, 4}, 1},
      {{5, 6, 7, 8, 9, 10}, 2},
      {{11, 12}, 0},
      {{13, 14}, 0},
      {{15, 16}, 0},
  });
  EXPECT_DOUBLE_EQ(HubShareOfLargestCliques(r, 2), 1.0);
  // Top-5: 2 hub of 5.
  EXPECT_DOUBLE_EQ(HubShareOfLargestCliques(r, 5), 0.4);
}

TEST(HubShareTest, KLargerThanCollection) {
  decomp::FindMaxCliquesResult r = MakeResult({{{0, 1}, 1}});
  EXPECT_DOUBLE_EQ(HubShareOfLargestCliques(r, 200), 1.0);
}

TEST(HubShareTest, EmptyAndZeroK) {
  decomp::FindMaxCliquesResult r;
  EXPECT_DOUBLE_EQ(HubShareOfLargestCliques(r, 10), 0.0);
  decomp::FindMaxCliquesResult r2 = MakeResult({{{0, 1}, 1}});
  EXPECT_DOUBLE_EQ(HubShareOfLargestCliques(r2, 0), 0.0);
}

TEST(RunStatsTest, AggregatesLevelTimings) {
  decomp::FindMaxCliquesResult r;
  r.levels.resize(3);
  r.levels[0].blocks = 5;
  r.levels[0].decompose_seconds = 0.5;
  r.levels[0].analyze_seconds = 1.0;
  r.levels[1].blocks = 2;
  r.levels[1].decompose_seconds = 0.25;
  r.levels[2].blocks = 1;
  r.levels[2].analyze_seconds = 0.125;
  RunStats s = ComputeRunStats(r);
  EXPECT_EQ(s.total_blocks, 8u);
  EXPECT_DOUBLE_EQ(s.decompose_seconds, 0.75);
  EXPECT_DOUBLE_EQ(s.analyze_seconds, 1.125);
}

}  // namespace
}  // namespace mce
