#include "graph/dynamic_graph.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "test_util.h"
#include "util/random.h"

namespace mce {
namespace {

TEST(DynamicGraphTest, StartsEmpty) {
  DynamicGraph g(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(DynamicGraphTest, AddAndRemoveEdges) {
  DynamicGraph g(4);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_TRUE(g.AddEdge(1, 2));
  EXPECT_FALSE(g.AddEdge(0, 1));  // duplicate
  EXPECT_FALSE(g.AddEdge(1, 0));  // reversed duplicate
  EXPECT_FALSE(g.AddEdge(2, 2));  // self-loop
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.RemoveEdge(0, 1));
  EXPECT_FALSE(g.RemoveEdge(0, 1));  // already gone
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(DynamicGraphTest, NeighborsStaySorted) {
  DynamicGraph g(6);
  g.AddEdge(3, 5);
  g.AddEdge(3, 1);
  g.AddEdge(3, 4);
  g.AddEdge(3, 0);
  EXPECT_EQ(g.Neighbors(3), (std::vector<NodeId>{0, 1, 4, 5}));
  g.RemoveEdge(3, 4);
  EXPECT_EQ(g.Neighbors(3), (std::vector<NodeId>{0, 1, 5}));
  EXPECT_EQ(g.Degree(3), 3u);
}

TEST(DynamicGraphTest, RoundTripsThroughGraph) {
  Rng rng(5);
  Graph source = gen::ErdosRenyiGnp(40, 0.2, &rng);
  DynamicGraph dynamic(source);
  EXPECT_EQ(dynamic.num_nodes(), source.num_nodes());
  EXPECT_EQ(dynamic.num_edges(), source.num_edges());
  Graph back = dynamic.ToGraph();
  EXPECT_TRUE(back == source);
}

TEST(DynamicGraphTest, AddNodeGrows) {
  DynamicGraph g(2);
  NodeId v = g.AddNode();
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_TRUE(g.AddEdge(v, 0));
  EXPECT_TRUE(g.HasEdge(2, 0));
}

TEST(DynamicGraphTest, EnsureNodesNeverShrinks) {
  DynamicGraph g(3);
  g.EnsureNodes(6);
  EXPECT_EQ(g.num_nodes(), 6u);
  g.EnsureNodes(2);
  EXPECT_EQ(g.num_nodes(), 6u);
}

TEST(DynamicGraphTest, CommonNeighbors) {
  DynamicGraph g(5);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(1, 4);
  EXPECT_EQ(g.CommonNeighbors(0, 1), (std::vector<NodeId>{2, 3}));
  EXPECT_TRUE(g.CommonNeighbors(2, 3).empty() ||
              g.CommonNeighbors(2, 3) == (std::vector<NodeId>{0, 1}));
  // 2 and 3 share exactly {0, 1}.
  EXPECT_EQ(g.CommonNeighbors(2, 3), (std::vector<NodeId>{0, 1}));
}

TEST(DynamicGraphTest, RandomEditScriptMatchesRebuild) {
  // Property: after any script of inserts/removals, ToGraph() equals a
  // graph built from the surviving edge set.
  Rng rng(7);
  const NodeId n = 25;
  DynamicGraph dynamic(n);
  std::set<std::pair<NodeId, NodeId>> truth;
  for (int step = 0; step < 600; ++step) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) continue;
    auto key = std::minmax(u, v);
    if (rng.NextBool(0.6)) {
      EXPECT_EQ(dynamic.AddEdge(u, v), truth.insert(key).second);
    } else {
      EXPECT_EQ(dynamic.RemoveEdge(u, v), truth.erase(key) > 0);
    }
  }
  GraphBuilder builder(n);
  for (const auto& [u, v] : truth) builder.AddEdge(u, v);
  Graph expected = builder.Build();
  EXPECT_TRUE(dynamic.ToGraph() == expected);
  EXPECT_EQ(dynamic.num_edges(), truth.size());
}

}  // namespace
}  // namespace mce
