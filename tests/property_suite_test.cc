// Wide property sweeps: the pipeline's completeness invariant checked over
// the cross product of its configuration space, at sizes where the naive
// reference is too slow — the Eppstein enumerator (itself cross-checked
// against the naive one in mce_cross_check_test) serves as the oracle.

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/max_clique_finder.h"
#include "decomp/find_max_cliques.h"
#include "gen/generators.h"
#include "gen/social.h"
#include "gen/special.h"
#include "mce/enumerator.h"
#include "test_util.h"
#include "util/random.h"

namespace mce {
namespace {

CliqueSet Oracle(const Graph& g) {
  return EnumerateToSet(
      g, MceOptions{Algorithm::kEppstein, StorageKind::kAdjacencyList});
}

// ---------------------------------------------------------------------
// Sweep 1: ratio x seed policy, decision-tree-driven pipeline.
using RatioPolicyParam = std::tuple<double, decomp::SeedPolicy>;

class PipelineRatioPolicyTest
    : public ::testing::TestWithParam<RatioPolicyParam> {};

TEST_P(PipelineRatioPolicyTest, CompleteOnScaleFreeGraph) {
  const auto [ratio, policy] = GetParam();
  Rng rng(555);
  Graph g = gen::OverlayRandomCliques(gen::BarabasiAlbert(300, 3, &rng), 15,
                                      4, 12, true, &rng);
  MaxCliqueFinder::Options options;
  options.block_size_ratio = ratio;
  options.seed_policy = policy;
  MaxCliqueFinder finder(options);
  Result<FindResult> result = finder.Find(g);
  ASSERT_TRUE(result.ok());
  CliqueSet expected = Oracle(g);
  mce::test::ExpectSameCliques(result->cliques, expected);
}

std::string RatioPolicyName(
    const ::testing::TestParamInfo<RatioPolicyParam>& info) {
  // Built via append: `const char* + std::string&&` concatenation trips
  // GCC 12's -Werror=restrict false positive at -O3.
  static const char* const kPolicies[] = {"low", "high", "first"};
  std::string name = "r";
  name += std::to_string(static_cast<int>(std::get<0>(info.param) * 100));
  name += "_";
  name += kPolicies[static_cast<int>(std::get<1>(info.param))];
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineRatioPolicyTest,
    ::testing::Combine(::testing::Values(0.9, 0.5, 0.2, 0.05),
                       ::testing::Values(decomp::SeedPolicy::kLowestDegree,
                                         decomp::SeedPolicy::kHighestDegree,
                                         decomp::SeedPolicy::kFirstId)),
    RatioPolicyName);

// ---------------------------------------------------------------------
// Sweep 2: fixed combos through the whole pipeline (no decision tree).
using ComboParam = std::tuple<Algorithm, StorageKind>;

class PipelineFixedComboTest : public ::testing::TestWithParam<ComboParam> {
};

TEST_P(PipelineFixedComboTest, CompleteAtSmallBlockSize) {
  const auto [algorithm, storage] = GetParam();
  Rng rng(777);
  Graph g = gen::OverlayRandomCliques(
      gen::WattsStrogatz(200, 6, 0.2, &rng), 10, 4, 9, false, &rng);
  MaxCliqueFinder::Options options;
  options.block_size = 16;
  options.use_decision_tree = false;
  options.fixed_combo = {algorithm, storage};
  MaxCliqueFinder finder(options);
  Result<FindResult> result = finder.Find(g);
  ASSERT_TRUE(result.ok());
  CliqueSet expected = Oracle(g);
  mce::test::ExpectSameCliques(result->cliques, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineFixedComboTest,
    ::testing::Combine(::testing::Values(Algorithm::kBKPivot,
                                         Algorithm::kTomita,
                                         Algorithm::kEppstein,
                                         Algorithm::kXPivot),
                       ::testing::Values(StorageKind::kAdjacencyList,
                                         StorageKind::kMatrix,
                                         StorageKind::kBitset)),
    [](const ::testing::TestParamInfo<ComboParam>& info) {
      return std::string(ToString(std::get<0>(info.param))) + "_" +
             ToString(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Sweep 3: randomized instances across seeds — every reported clique is
// maximal, none is missed, hub cliques are disjoint from feasible ones.
class PipelineSeedSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PipelineSeedSweepTest, InvariantsHoldOnRandomInstance) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  // Random family mix per seed.
  Graph g;
  switch (GetParam() % 4) {
    case 0:
      g = gen::ErdosRenyiGnp(150, 0.05 + 0.02 * (GetParam() % 5), &rng);
      break;
    case 1:
      g = gen::BarabasiAlbert(200, 2 + GetParam() % 4, &rng);
      break;
    case 2:
      g = gen::WattsStrogatz(150, 6, 0.3, &rng);
      break;
    default:
      g = gen::OverlayRandomCliques(gen::BarabasiAlbert(150, 2, &rng), 8, 4,
                                    10, true, &rng);
  }
  const uint32_t m = 5 + static_cast<uint32_t>(rng.NextBounded(30));
  decomp::FindMaxCliquesOptions options;
  options.max_block_size = m;
  decomp::FindMaxCliquesResult result = decomp::FindMaxCliques(g, options);

  // Completeness against the oracle.
  CliqueSet expected = Oracle(g);
  mce::test::ExpectSameCliques(result.cliques, expected);

  // Every clique from level >= 1 consists purely of nodes that were hubs
  // at level 0 (degree >= m).
  for (size_t i = 0; i < result.cliques.size(); ++i) {
    if (result.origin_level[i] == 0) continue;
    for (NodeId v : result.cliques.cliques()[i]) {
      EXPECT_GE(g.Degree(v) + 1, m)
          << "hub-origin clique contains feasible node " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSeedSweepTest,
                         ::testing::Range(0, 16));

// ---------------------------------------------------------------------
// Sweep 4: the social stand-ins, full facade, across scales and ratios.
class StandInSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(StandInSweepTest, PipelineCompleteOnDataset) {
  auto configs = gen::AllDatasetConfigs(0.012);
  const auto& config = configs[GetParam() % configs.size()];
  Graph g = gen::GenerateSocialNetwork(config);
  const double ratio = GetParam() < 5 ? 0.5 : 0.15;
  MaxCliqueFinder::Options options;
  options.block_size_ratio = ratio;
  MaxCliqueFinder finder(options);
  Result<FindResult> result = finder.Find(g);
  ASSERT_TRUE(result.ok()) << config.name;
  CliqueSet expected = Oracle(g);
  mce::test::ExpectSameCliques(result->cliques, expected);
}

INSTANTIATE_TEST_SUITE_P(Datasets, StandInSweepTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace mce
