#include "util/status.h"

#include <gtest/gtest.h>

namespace mce {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad m");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad m");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad m");

  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::IoError("a"), Status::IoError("a"));
  EXPECT_FALSE(Status::IoError("a") == Status::IoError("b"));
  EXPECT_FALSE(Status::IoError("a") == Status::Internal("a"));
}

TEST(StatusTest, StreamOperatorMatchesToString) {
  std::ostringstream os;
  os << Status::NotFound("thing");
  EXPECT_EQ(os.str(), "Not found: thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r = 7;
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, MoveValueOut) {
  Result<std::string> r = std::string("hello");
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  MCE_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(MacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_EQ(UsesReturnNotOk(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  MCE_ASSIGN_OR_RETURN(int half, HalfOf(x));
  MCE_ASSIGN_OR_RETURN(int quarter, HalfOf(half));
  return quarter;
}

TEST(MacrosTest, AssignOrReturnChains) {
  Result<int> ok = QuarterOf(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);

  Result<int> odd = QuarterOf(6);  // 6/2=3 is odd at the second step
  EXPECT_FALSE(odd.ok());
  EXPECT_EQ(odd.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, DeathOnBadAccess) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH(r.value(), "errored Result");
}

}  // namespace
}  // namespace mce
