#include "core/top_cliques.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/special.h"
#include "mce/naive.h"
#include "test_util.h"
#include "util/random.h"

namespace mce {
namespace {

/// Reference: filter a full naive enumeration by size.
CliqueSet NaiveAtLeast(const Graph& g, uint32_t min_size) {
  CliqueSet out;
  NaiveMce(g, [&](std::span<const NodeId> c) {
    if (c.size() >= min_size) out.Add(c);
  });
  out.Canonicalize();
  return out;
}

TEST(MaximalCliquesAtLeastTest, MatchesFilteredFullEnumeration) {
  Rng rng(41);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = gen::OverlayRandomCliques(
        gen::ErdosRenyiGnp(40, 0.08, &rng), 4, 4, 8, false, &rng);
    for (uint32_t min_size : {1u, 2u, 3u, 5u, 8u}) {
      CliqueSet actual = MaximalCliquesAtLeast(g, min_size);
      CliqueSet expected = NaiveAtLeast(g, min_size);
      mce::test::ExpectSameCliques(actual, expected);
    }
  }
}

TEST(MaximalCliquesAtLeastTest, ThresholdAboveMaxCliqueIsEmpty) {
  Graph g = test::PathGraph(10);  // max clique size 2
  EXPECT_EQ(MaximalCliquesAtLeast(g, 3).size(), 0u);
  EXPECT_EQ(MaximalCliquesAtLeast(g, 100).size(), 0u);
}

TEST(MaximalCliquesAtLeastTest, EmptyGraph) {
  EXPECT_EQ(MaximalCliquesAtLeast(Graph(), 2).size(), 0u);
}

TEST(TopKMaximalCliquesTest, ReturnsLargestFirst) {
  // K5 on {0..4}, triangle {5,6,7}, edge {8,9}.
  GraphBuilder b;
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = i + 1; j < 5; ++j) b.AddEdge(i, j);
  }
  b.AddEdge(5, 6);
  b.AddEdge(6, 7);
  b.AddEdge(5, 7);
  b.AddEdge(8, 9);
  Graph g = b.Build();
  std::vector<Clique> top = TopKMaximalCliques(g, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].size(), 5u);
  EXPECT_EQ(top[1].size(), 3u);
}

TEST(TopKMaximalCliquesTest, MatchesSortOfFullEnumeration) {
  Rng rng(43);
  Graph g = gen::OverlayRandomCliques(gen::BarabasiAlbert(80, 2, &rng), 6, 4,
                                      9, true, &rng);
  CliqueSet all = NaiveMceSet(g);
  for (size_t k : {1u, 5u, 20u, 10000u}) {
    std::vector<Clique> top = TopKMaximalCliques(g, k);
    EXPECT_EQ(top.size(), std::min<size_t>(k, all.size()));
    // Sizes must be non-increasing and match the k largest sizes overall.
    std::vector<size_t> all_sizes;
    for (const Clique& c : all.cliques()) all_sizes.push_back(c.size());
    std::sort(all_sizes.rbegin(), all_sizes.rend());
    for (size_t i = 0; i < top.size(); ++i) {
      EXPECT_EQ(top[i].size(), all_sizes[i]) << "k=" << k << " i=" << i;
      EXPECT_TRUE(IsMaximalClique(g, top[i]));
    }
  }
}

TEST(TopKMaximalCliquesTest, KZero) {
  EXPECT_TRUE(TopKMaximalCliques(test::PathGraph(4), 0).empty());
}

TEST(TopKMaximalCliquesTest, WorksOnCompleteGraph) {
  Graph g = gen::Complete(8);
  std::vector<Clique> top = TopKMaximalCliques(g, 3);
  ASSERT_EQ(top.size(), 1u);  // only one maximal clique exists
  EXPECT_EQ(top[0].size(), 8u);
}

}  // namespace
}  // namespace mce
