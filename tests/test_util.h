// Shared test fixtures: small named graphs, including a reconstruction of
// the paper's running example (Figure 1), and clique-set matchers.

#ifndef MCE_TESTS_TEST_UTIL_H_
#define MCE_TESTS_TEST_UTIL_H_

#include <vector>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/graph.h"
#include "mce/clique.h"
#include "mce/naive.h"

namespace mce::test {

inline Graph PathGraph(NodeId n) {
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.AddEdge(i, i + 1);
  return b.Build();
}

inline Graph CycleGraph(NodeId n) {
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) b.AddEdge(i, (i + 1) % n);
  return b.Build();
}

/// Star: center 0 connected to 1..n-1.
inline Graph StarGraph(NodeId n) {
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) b.AddEdge(0, i);
  return b.Build();
}

/// Node names of the Figure 1 network.
enum Fig1Node : NodeId {
  A = 0, J, H, D, E, F, G, S, X, L, Z, R, P, Y, W, U, kFig1Nodes
};

/// The running example of the paper (Figure 1): with block size m = 5 the
/// hub nodes are D (degree 7), S and E (degree 5); maximal cliques include
/// {A,J,H}, {H,F,D} (feasible-side) and the hub-only triangle {D,S,E}.
inline Graph Figure1Graph() {
  GraphBuilder b(kFig1Nodes);
  // Feasible-side cliques.
  b.AddEdge(A, J);
  b.AddEdge(A, H);
  b.AddEdge(J, H);
  b.AddEdge(H, F);
  b.AddEdge(H, D);
  b.AddEdge(F, D);
  // The hub triangle.
  b.AddEdge(D, S);
  b.AddEdge(S, E);
  b.AddEdge(E, D);
  // Pendant neighborhoods raising the hub degrees to 7 / 5 / 5.
  b.AddEdge(D, P);
  b.AddEdge(D, R);
  b.AddEdge(D, Z);
  b.AddEdge(S, L);
  b.AddEdge(S, U);
  b.AddEdge(S, W);
  b.AddEdge(E, G);
  b.AddEdge(E, X);
  b.AddEdge(E, Y);
  return b.Build();
}

/// All 12 maximal cliques of Figure1Graph(), canonicalized.
inline CliqueSet Figure1Cliques() {
  CliqueSet cs;
  cs.Add(Clique{A, J, H});
  cs.Add(Clique{H, F, D});
  cs.Add(Clique{D, S, E});
  cs.Add(Clique{D, P});
  cs.Add(Clique{D, R});
  cs.Add(Clique{D, Z});
  cs.Add(Clique{S, L});
  cs.Add(Clique{S, U});
  cs.Add(Clique{S, W});
  cs.Add(Clique{E, G});
  cs.Add(Clique{E, X});
  cs.Add(Clique{E, Y});
  cs.Canonicalize();
  return cs;
}

/// Asserts two clique collections are equal as sets, with a readable diff.
inline void ExpectSameCliques(CliqueSet& actual, CliqueSet& expected) {
  actual.Canonicalize();
  expected.Canonicalize();
  EXPECT_EQ(actual.size(), expected.size());
  ASSERT_TRUE(CliqueSet::Equal(actual, expected))
      << "clique sets differ: actual has " << actual.size()
      << ", expected has " << expected.size();
}

/// Asserts `actual` equals the reference (naive) enumeration of `g`.
inline void ExpectMatchesNaive(const Graph& g, CliqueSet& actual) {
  CliqueSet expected = NaiveMceSet(g);
  ExpectSameCliques(actual, expected);
}

}  // namespace mce::test

#ifdef MCE_TEST_COUNT_ALLOCATIONS
// Process-wide operator-new counting, for zero-allocation regression tests
// (mce_alloc_test). Define MCE_TEST_COUNT_ALLOCATIONS before including
// this header in EXACTLY ONE translation unit of a test binary: the
// replaceable global operator new/delete must have a single non-inline
// definition per program, so this block intentionally does not use
// `inline`.

#include <execinfo.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace mce::test {

std::atomic<uint64_t> g_new_calls{0};

/// When true, any operator-new call aborts the process. Debugging aid:
/// flip it around a supposedly allocation-free region and run under a
/// debugger to get a backtrace of the offending allocation.
std::atomic<bool> g_trap_on_alloc{false};

/// Number of successful global operator-new calls so far. Take a snapshot
/// before and after the code under test; the difference is its allocation
/// count.
uint64_t NewCalls() { return g_new_calls.load(std::memory_order_relaxed); }

void* CountedAlloc(std::size_t size) {
  if (g_trap_on_alloc.load(std::memory_order_relaxed)) {
    g_trap_on_alloc.store(false);  // the reporting below allocates
    void* frames[32];
    const int depth = backtrace(frames, 32);
    backtrace_symbols_fd(frames, depth, 2);
    std::abort();
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t padded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, padded == 0 ? align : padded);
  if (p == nullptr) throw std::bad_alloc();
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return p;
}

}  // namespace mce::test

void* operator new(std::size_t size) { return mce::test::CountedAlloc(size); }
void* operator new[](std::size_t size) {
  return mce::test::CountedAlloc(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return mce::test::CountedAlloc(size);
  } catch (const std::bad_alloc&) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return operator new(size, std::nothrow);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return mce::test::CountedAlignedAlloc(size,
                                        static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return mce::test::CountedAlignedAlloc(size,
                                        static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#endif  // MCE_TEST_COUNT_ALLOCATIONS

#endif  // MCE_TESTS_TEST_UTIL_H_
