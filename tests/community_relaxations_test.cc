#include "community/relaxations.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/special.h"
#include "graph/builder.h"
#include "mce/naive.h"
#include "test_util.h"
#include "util/random.h"

namespace mce::community {
namespace {

TEST(PowerGraphTest, KOneIsIdentity) {
  Graph g = mce::test::PathGraph(5);
  EXPECT_TRUE(PowerGraph(g, 1) == g);
}

TEST(PowerGraphTest, PathSquared) {
  // P5 squared: i ~ j iff |i - j| <= 2.
  Graph g2 = PowerGraph(mce::test::PathGraph(5), 2);
  EXPECT_TRUE(g2.HasEdge(0, 2));
  EXPECT_TRUE(g2.HasEdge(1, 3));
  EXPECT_FALSE(g2.HasEdge(0, 3));
  EXPECT_EQ(g2.num_edges(), 4u + 3u);
}

TEST(PowerGraphTest, LargeKConnectsComponents) {
  Graph g = mce::test::PathGraph(6);
  Graph g5 = PowerGraph(g, 5);
  EXPECT_DOUBLE_EQ(g5.Density(), 1.0);  // diameter 5 path -> complete
  // Disconnected parts never connect, no matter k.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  Graph disconnected = PowerGraph(b.Build(), 10);
  EXPECT_FALSE(disconnected.HasEdge(1, 2));
}

TEST(PowerGraphTest, MatchesPairwiseDistances) {
  Rng rng(3);
  Graph g = gen::ErdosRenyiGnp(30, 0.08, &rng);
  Graph g2 = PowerGraph(g, 2);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
      // distance <= 2 <=> adjacent or sharing a neighbor.
      bool within2 = g.HasEdge(u, v) ||
                     !CommonNeighbors(g, Clique{u, v}).empty();
      EXPECT_EQ(g2.HasEdge(u, v), within2) << u << "," << v;
    }
  }
}

TEST(DistanceKCliquesTest, KOneIsPlainMce) {
  Rng rng(5);
  Graph g = gen::ErdosRenyiGnp(25, 0.25, &rng);
  CliqueSet kcliques = MaximalDistanceKCliques(g, 1);
  mce::test::ExpectMatchesNaive(g, kcliques);
}

TEST(DistanceKCliquesTest, StarIsATwoClique) {
  // Every pair of leaves is within distance 2 through the center: the
  // whole star is one maximal 2-clique.
  Graph g = mce::test::StarGraph(8);
  CliqueSet kcliques = MaximalDistanceKCliques(g, 2);
  ASSERT_EQ(kcliques.size(), 1u);
  EXPECT_EQ(kcliques.cliques()[0].size(), 8u);
}

TEST(InducedDiameterTest, Definition) {
  Graph g = mce::test::PathGraph(5);
  EXPECT_TRUE(InducedDiameterAtMost(g, Clique{0, 1, 2}, 2));
  EXPECT_FALSE(InducedDiameterAtMost(g, Clique{0, 1, 2, 3}, 2));
  EXPECT_TRUE(InducedDiameterAtMost(g, Clique{0, 1, 2, 3}, 3));
  // Disconnected induced set: infinite diameter.
  EXPECT_FALSE(InducedDiameterAtMost(g, Clique{0, 4}, 10));
  EXPECT_TRUE(InducedDiameterAtMost(g, Clique{2}, 0));
  EXPECT_TRUE(InducedDiameterAtMost(g, Clique{}, 0));
}

TEST(KClansTest, ClassicCounterexample) {
  // C6: the maximal 2-cliques are the six consecutive triples
  // {i, i+1, i+2} (paths of induced diameter 2 -> 2-clans) plus the two
  // independent triples {0,2,4} and {1,3,5}, whose pairwise distance-2
  // connections all run through EXCLUDED nodes — their induced subgraphs
  // are edgeless, so they are 2-cliques but not 2-clans.
  Graph g = mce::test::CycleGraph(6);
  CliqueSet two_cliques = MaximalDistanceKCliques(g, 2);
  CliqueSet two_clans = KClans(g, 2);
  EXPECT_EQ(two_cliques.size(), 8u);
  EXPECT_EQ(two_clans.size(), 6u);
  two_cliques.Canonicalize();
  EXPECT_TRUE(std::binary_search(two_cliques.cliques().begin(),
                                 two_cliques.cliques().end(),
                                 Clique{0, 2, 4}));
  two_clans.Canonicalize();
  EXPECT_FALSE(std::binary_search(two_clans.cliques().begin(),
                                  two_clans.cliques().end(),
                                  Clique{0, 2, 4}));
  for (const Clique& c : two_clans.cliques()) {
    EXPECT_TRUE(InducedDiameterAtMost(g, c, 2));
  }
}

TEST(KClansTest, CompleteGraphIsItsOwnClan) {
  Graph g = gen::Complete(5);
  CliqueSet clans = KClans(g, 2);
  ASSERT_EQ(clans.size(), 1u);
  EXPECT_EQ(clans.cliques()[0].size(), 5u);
}

TEST(KClansTest, EveryClanIsAKClique) {
  Rng rng(7);
  Graph g = gen::ErdosRenyiGnp(25, 0.1, &rng);
  CliqueSet kcliques = MaximalDistanceKCliques(g, 2);
  kcliques.Canonicalize();
  CliqueSet clans = KClans(g, 2);
  for (const Clique& clan : clans.cliques()) {
    EXPECT_TRUE(std::binary_search(kcliques.cliques().begin(),
                                   kcliques.cliques().end(), clan));
  }
}

}  // namespace
}  // namespace mce::community
