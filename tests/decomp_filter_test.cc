#include "decomp/filter.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/subgraph.h"
#include "mce/naive.h"
#include "test_util.h"
#include "util/random.h"

namespace mce::decomp {
namespace {

TEST(FilterContainedTest, DropsContainedKeepsOthers) {
  CliqueSet ch, cf;
  ch.Add(Clique{1, 2});        // contained in {1,2,3}
  ch.Add(Clique{4, 5});        // not contained
  ch.Add(Clique{1, 2, 3});     // equal counts as contained
  cf.Add(Clique{1, 2, 3});
  cf.Add(Clique{6});
  CliqueSet out = FilterContainedCliques(ch, cf);
  CliqueSet expected;
  expected.Add(Clique{4, 5});
  mce::test::ExpectSameCliques(out, expected);
}

TEST(FilterContainedTest, EmptyInputs) {
  CliqueSet empty, some;
  some.Add(Clique{1});
  EXPECT_EQ(FilterContainedCliques(empty, some).size(), 0u);
  EXPECT_EQ(FilterContainedCliques(some, empty).size(), 1u);
}

TEST(IsMaximalInGraphTest, MatchesDefinition) {
  using namespace mce::test;
  Graph g = Figure1Graph();
  EXPECT_TRUE(IsMaximalInGraph(g, Clique{D, S, E}));
  EXPECT_FALSE(IsMaximalInGraph(g, Clique{D, S}));
  EXPECT_FALSE(IsMaximalInGraph(g, Clique{A, J}));
}

TEST(FilterNonMaximalTest, KeepsOnlyMaximal) {
  using namespace mce::test;
  Graph g = Figure1Graph();
  CliqueSet in;
  in.Add(Clique{D, S, E});
  in.Add(Clique{D, S});
  in.Add(Clique{H, F, D});
  in.Add(Clique{F, D});
  CliqueSet out = FilterNonMaximal(g, in);
  CliqueSet expected;
  expected.Add(Clique{D, S, E});
  expected.Add(Clique{H, F, D});
  mce::test::ExpectSameCliques(out, expected);
}

// Lemma 1, property-tested: for a random graph and a random bipartition
// (N1, N2), let C1 = maximal cliques of G with a node in N1 and C2 =
// maximal cliques of the subgraph induced by N2. Then
// C1 u filter(C2, C1) = all maximal cliques of G, and the two filter
// implementations agree on C2.
TEST(Lemma1PropertyTest, HoldsOnRandomBipartitions) {
  Rng rng(51);
  for (int trial = 0; trial < 12; ++trial) {
    Graph g = gen::ErdosRenyiGnp(26, 0.15 + 0.04 * (trial % 5), &rng);
    std::unordered_set<NodeId> n1;
    std::vector<NodeId> n2;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (rng.NextBool(0.5)) {
        n1.insert(v);
      } else {
        n2.push_back(v);
      }
    }
    CliqueSet all = NaiveMceSet(g);
    CliqueSet c1;
    for (const Clique& c : all.cliques()) {
      for (NodeId v : c) {
        if (n1.count(v)) {
          c1.Add(c);
          break;
        }
      }
    }
    InducedSubgraph sub = Induce(g, n2);
    CliqueSet c2;
    NaiveMce(sub.graph, [&](std::span<const NodeId> local) {
      c2.Add(ToParentIds(sub, local));
    });

    // The two filters agree.
    CliqueSet by_containment = FilterContainedCliques(c2, c1);
    CliqueSet by_maximality = FilterNonMaximal(g, c2);
    mce::test::ExpectSameCliques(by_containment, by_maximality);

    // And the union reconstructs all maximal cliques (Lemma 1).
    CliqueSet reconstructed = c1;
    reconstructed.Merge(std::move(by_containment));
    mce::test::ExpectSameCliques(reconstructed, all);
  }
}

TEST(FilterEquivalenceTest, HubSideOfFigure1) {
  using namespace mce::test;
  Graph g = Figure1Graph();
  // C_h = maximal cliques of the induced hub triangle = {D,S,E}. It is
  // maximal in G, so both filters keep it.
  CliqueSet ch;
  ch.Add(Clique{D, S, E});
  CliqueSet cf = Figure1Cliques();  // superset of C_f; contains no {D,S,E}
  CliqueSet cf_without;
  for (const Clique& c : cf.cliques()) {
    if (!(c == Clique{static_cast<NodeId>(D), static_cast<NodeId>(E),
                      static_cast<NodeId>(S)})) {
      cf_without.Add(c);
    }
  }
  EXPECT_EQ(FilterContainedCliques(ch, cf_without).size(), 1u);
  EXPECT_EQ(FilterNonMaximal(g, ch).size(), 1u);
}

}  // namespace
}  // namespace mce::decomp
