#include "baseline/truncated_mce.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/special.h"
#include "mce/naive.h"
#include "test_util.h"
#include "util/random.h"

namespace mce::baseline {
namespace {

TEST(TruncatedMceTest, NoTruncationMeansExactResult) {
  // With m above every closed neighborhood the baseline is just a block
  // decomposition: it must be exact.
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = gen::ErdosRenyiGnp(30, 0.15 + 0.05 * trial, &rng);
    TruncatedMceOptions options;
    options.max_block_size = g.num_nodes() + 1;
    TruncatedMceResult result = TruncatedBlockMce(g, options);
    EXPECT_EQ(result.truncated_nodes, 0u);
    EXPECT_EQ(result.dropped_neighbors, 0u);
    mce::test::ExpectMatchesNaive(g, result.cliques);
  }
}

TEST(TruncatedMceTest, HubsAreTruncated) {
  Graph g = mce::test::StarGraph(20);  // center degree 19
  TruncatedMceOptions options;
  options.max_block_size = 5;
  TruncatedMceResult result = TruncatedBlockMce(g, options);
  EXPECT_EQ(result.truncated_nodes, 1u);  // only the center
  EXPECT_EQ(result.dropped_neighbors, 19u - 4u);
}

TEST(TruncatedMceTest, MissesCliquesThroughDroppedNeighbors) {
  // The paper's failure scenario: a hub whose neighborhood exceeds m and
  // contains a clique spanning the dropped part.
  using namespace mce::test;
  Graph g = Figure1Graph();
  TruncatedMceOptions options;
  options.max_block_size = 4;  // even D's triangle {D,S,E} cannot fit with
                               // the rest of D's neighborhood
  TruncatedMceResult result = TruncatedBlockMce(g, options);
  CliqueSet truth = Figure1Cliques();
  BaselineComparison cmp = CompareWithTruth(g, result.cliques, truth);
  EXPECT_GT(cmp.missed + cmp.erroneous, 0u)
      << "truncation at m=4 must corrupt the result on Figure 1";
}

TEST(TruncatedMceTest, QuantifiesLossOnScaleFreeGraphs) {
  Rng rng(13);
  Graph base = gen::BarabasiAlbert(150, 3, &rng);
  Graph g = gen::OverlayRandomCliques(base, 10, 5, 9, true, &rng);
  TruncatedMceOptions options;
  options.max_block_size = 12;
  TruncatedMceResult result = TruncatedBlockMce(g, options);
  EXPECT_GT(result.truncated_nodes, 0u);
  CliqueSet truth = NaiveMceSet(g);
  BaselineComparison cmp = CompareWithTruth(g, result.cliques, truth);
  // The baseline must be visibly lossy where the hub cliques live.
  EXPECT_GT(cmp.missed, 0u);
  // Everything it got right is genuinely maximal.
  EXPECT_EQ(cmp.correct + cmp.missed, truth.size());
  EXPECT_EQ(cmp.correct + cmp.erroneous, result.cliques.size());
}

TEST(TruncatedMceTest, ErroneousCliquesAreNonMaximal) {
  Rng rng(17);
  Graph base = gen::BarabasiAlbert(100, 3, &rng);
  Graph g = gen::OverlayRandomCliques(base, 8, 5, 9, true, &rng);
  TruncatedMceOptions options;
  options.max_block_size = 10;
  TruncatedMceResult result = TruncatedBlockMce(g, options);
  CliqueSet truth = NaiveMceSet(g);
  // Every reported clique must at least be a clique (the corruption is
  // about maximality, not adjacency).
  for (const Clique& c : result.cliques.cliques()) {
    EXPECT_TRUE(IsClique(g, c));
  }
  BaselineComparison cmp = CompareWithTruth(g, result.cliques, truth);
  if (cmp.erroneous > 0) {
    // Find one erroneous clique and confirm it is non-maximal.
    truth.Canonicalize();
    for (const Clique& c : result.cliques.cliques()) {
      if (!std::binary_search(truth.cliques().begin(),
                              truth.cliques().end(), c)) {
        EXPECT_FALSE(IsMaximalClique(g, c));
        break;
      }
    }
  }
}

TEST(TruncatedMceTest, PoliciesAreDeterministic) {
  Rng rng(19);
  Graph g = gen::BarabasiAlbert(80, 3, &rng);
  for (TruncationPolicy policy : {TruncationPolicy::kKeepLowDegree,
                                  TruncationPolicy::kKeepFirstIds}) {
    TruncatedMceOptions options;
    options.max_block_size = 8;
    options.policy = policy;
    TruncatedMceResult r1 = TruncatedBlockMce(g, options);
    TruncatedMceResult r2 = TruncatedBlockMce(g, options);
    EXPECT_TRUE(CliqueSet::Equal(r1.cliques, r2.cliques));
    EXPECT_EQ(r1.truncated_nodes, r2.truncated_nodes);
  }
}

TEST(PartitionedMceTest, WholeGraphBlockIsExact) {
  Rng rng(23);
  Graph g = gen::ErdosRenyiGnp(30, 0.2, &rng);
  PartitionedMceResult result =
      PartitionedBlockMce(g, g.num_nodes());
  EXPECT_EQ(result.num_blocks, 1u);
  mce::test::ExpectMatchesNaive(g, result.cliques);
}

TEST(PartitionedMceTest, MissesInterBlockCliques) {
  // A clique spanning any chunk boundary is lost — the Section 7 critique
  // of BMC. Take K12 with chunk size 6: no block sees the whole clique.
  Graph g = gen::Complete(12);
  PartitionedMceResult result = PartitionedBlockMce(g, 6);
  EXPECT_EQ(result.num_blocks, 2u);
  CliqueSet truth = NaiveMceSet(g);
  BaselineComparison cmp = CompareWithTruth(g, result.cliques, truth);
  EXPECT_EQ(cmp.correct, 0u);   // the true K12 is never found
  EXPECT_EQ(cmp.missed, 1u);
  EXPECT_GT(cmp.erroneous, 0u);  // chunk-local K6s are non-maximal in G
}

TEST(PartitionedMceTest, LossGrowsAsBlocksShrink) {
  Rng rng(29);
  Graph g = gen::OverlayRandomCliques(gen::BarabasiAlbert(120, 3, &rng), 10,
                                      5, 10, false, &rng);
  CliqueSet truth = NaiveMceSet(g);
  uint64_t previous_missed = 0;
  bool first = true;
  for (uint32_t block_size : {120u, 40u, 12u}) {
    PartitionedMceResult result = PartitionedBlockMce(g, block_size);
    CliqueSet reported = result.cliques;  // copy; compare canonicalizes
    BaselineComparison cmp = CompareWithTruth(g, reported, truth);
    if (!first) {
      EXPECT_GE(cmp.missed, previous_missed)
          << "block_size=" << block_size;
    }
    previous_missed = cmp.missed;
    first = false;
  }
  EXPECT_GT(previous_missed, 0u);
}

TEST(PartitionedMceTest, EmptyGraph) {
  PartitionedMceResult result = PartitionedBlockMce(Graph(), 5);
  EXPECT_EQ(result.num_blocks, 0u);
  EXPECT_EQ(result.cliques.size(), 0u);
}

TEST(CompareWithTruthTest, CountsAllThreeBuckets) {
  Graph g = gen::Complete(4);
  CliqueSet reported;
  reported.Add(Clique{0, 1, 2});     // erroneous (non-maximal)
  reported.Add(Clique{0, 1, 2, 3});  // correct
  CliqueSet truth;
  truth.Add(Clique{0, 1, 2, 3});
  truth.Add(Clique{9, 10});  // pretend a second one was missed
  BaselineComparison cmp = CompareWithTruth(g, reported, truth);
  EXPECT_EQ(cmp.correct, 1u);
  EXPECT_EQ(cmp.erroneous, 1u);
  EXPECT_EQ(cmp.missed, 1u);
  EXPECT_EQ(cmp.largest_missed, 2u);
}

}  // namespace
}  // namespace mce::baseline
