#include "mce/max_clique.h"

#include <gtest/gtest.h>

#include "decomp/find_max_cliques.h"
#include "gen/generators.h"
#include "gen/social.h"
#include "gen/special.h"
#include "mce/naive.h"
#include "test_util.h"
#include "util/random.h"

namespace mce {
namespace {

TEST(MaxCliqueTest, KnownGraphs) {
  EXPECT_EQ(CliqueNumber(gen::Complete(7)), 7u);
  EXPECT_EQ(CliqueNumber(test::PathGraph(10)), 2u);
  EXPECT_EQ(CliqueNumber(test::CycleGraph(5)), 2u);
  EXPECT_EQ(CliqueNumber(test::CycleGraph(3)), 3u);
  EXPECT_EQ(CliqueNumber(test::StarGraph(9)), 2u);
  EXPECT_EQ(CliqueNumber(gen::MoonMoser(4)), 4u);  // one per part
  EXPECT_EQ(CliqueNumber(Graph()), 0u);
}

TEST(MaxCliqueTest, ResultIsACliqueOfClaimedSize) {
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = gen::ErdosRenyiGnp(40, 0.2 + 0.07 * trial, &rng);
    MaxCliqueResult r = FindMaximumClique(g);
    EXPECT_TRUE(IsClique(g, r.clique));
    EXPECT_GT(r.branches, 0u);
  }
}

TEST(MaxCliqueTest, MatchesEnumerationMaximum) {
  Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = gen::ErdosRenyiGnp(35, 0.15 + 0.08 * trial, &rng);
    CliqueSet all = NaiveMceSet(g);
    EXPECT_EQ(CliqueNumber(g), all.MaxCliqueSize()) << "trial " << trial;
  }
}

TEST(MaxCliqueTest, FindsPlantedClique) {
  Rng rng(7);
  Graph base = gen::ErdosRenyiGnp(200, 0.03, &rng);
  Graph g = gen::OverlayCliques(
      base, {{3, 17, 42, 77, 101, 130, 155, 180, 191}});
  MaxCliqueResult r = FindMaximumClique(g);
  EXPECT_EQ(r.clique.size(), 9u);
  EXPECT_EQ(r.clique, (Clique{3, 17, 42, 77, 101, 130, 155, 180, 191}));
}

TEST(MaxCliqueTest, LowerBoundPrunes) {
  Rng rng(9);
  Graph g = gen::ErdosRenyiGnp(40, 0.3, &rng);
  const size_t omega = CliqueNumber(g);
  // Seeding with the true clique number: nothing bigger exists, so the
  // search returns empty but must not crash or return a wrong clique.
  MaxCliqueResult pruned = FindMaximumClique(g, omega);
  EXPECT_TRUE(pruned.clique.empty());
  // Seeding with omega - 1 must still find a maximum clique.
  MaxCliqueResult seeded = FindMaximumClique(g, omega - 1);
  EXPECT_EQ(seeded.clique.size(), omega);
  // And pruning reduces the explored branches.
  MaxCliqueResult unseeded = FindMaximumClique(g);
  EXPECT_LE(seeded.branches, unseeded.branches);
}

TEST(MaxCliqueTest, WorksOnScaleFreeStandIn) {
  Graph g = gen::GenerateSocialNetwork(gen::Twitter1Config(0.03));
  const size_t omega = CliqueNumber(g);
  // The planted community recipe bounds the max clique size; it must be
  // at least the edge-clique floor and at most the planted maximum.
  EXPECT_GE(omega, 3u);
  EXPECT_LE(omega, 27u);
  // Cross-check against the full pipeline's max clique size.
  decomp::FindMaxCliquesOptions options;
  options.max_block_size = g.MaxDegree() / 2;
  decomp::FindMaxCliquesResult all = decomp::FindMaxCliques(g, options);
  EXPECT_EQ(omega, all.cliques.MaxCliqueSize());
}

}  // namespace
}  // namespace mce
