#include "decision/block_cost.h"

#include <cmath>

#include <gtest/gtest.h>

#include "decision/features.h"
#include "gen/generators.h"
#include "util/random.h"

namespace mce::decision {
namespace {

BlockFeatures Features(double nodes, double edges, double density,
                       double degeneracy) {
  BlockFeatures f;
  f.num_nodes = nodes;
  f.num_edges = edges;
  f.density = density;
  f.degeneracy = degeneracy;
  return f;
}

TEST(EstimateBlockCostTest, MonotoneInSizeDensityAndDegeneracy) {
  const double base = EstimateBlockCost(Features(20, 40, 0.2, 4));
  EXPECT_GE(EstimateBlockCost(Features(40, 40, 0.2, 4)), base);
  EXPECT_GE(EstimateBlockCost(Features(20, 80, 0.2, 4)), base);
  EXPECT_GE(EstimateBlockCost(Features(20, 40, 0.4, 4)), base);
  EXPECT_GT(EstimateBlockCost(Features(20, 40, 0.2, 8)), base);
}

TEST(EstimateBlockCostTest, AlwaysAtLeastOneAndFinite) {
  EXPECT_GE(EstimateBlockCost(Features(0, 0, 0, 0)), 1.0);
  // The exponent clamp keeps even a block-bound-sized degeneracy finite
  // (3^(2000/3) would overflow the double range).
  const double huge = EstimateBlockCost(Features(5000, 1e6, 1.0, 2000));
  EXPECT_TRUE(std::isfinite(huge));
  EXPECT_GE(huge, 1.0);
}

TEST(EstimateBlockCostTest, DenseBlockOutranksSparseBlockOfSameSize) {
  // The LPT dispatch order only needs the ranking: a near-clique must
  // score far above a near-tree on the same node count.
  const double dense = EstimateBlockCost(Features(30, 400, 0.92, 25));
  const double sparse = EstimateBlockCost(Features(30, 32, 0.07, 2));
  EXPECT_GT(dense, 10 * sparse);
}

TEST(EstimateBlockCostTest, GraphOverloadMatchesExplicitFeatures) {
  // The Graph overload skips d* (the model never reads it), so it must
  // agree exactly with scoring the computed features.
  Rng rng(7);
  const Graph g = gen::BarabasiAlbert(60, 3, &rng);
  EXPECT_DOUBLE_EQ(EstimateBlockCost(g),
                   EstimateBlockCost(ComputeFeatures(g)));
}

TEST(EstimateBlockCostTest, ExponentClampBoundary) {
  // Below the d = 120 clamp each +3 of degeneracy triples the tree term;
  // at the boundary the exponent freezes and only the polynomial span and
  // degeneracy factors keep moving, so the step ratio collapses while the
  // ordering stays monotone.
  const double below = EstimateBlockCost(Features(5000, 1e6, 1.0, 117));
  const double at = EstimateBlockCost(Features(5000, 1e6, 1.0, 120));
  const double above = EstimateBlockCost(Features(5000, 1e6, 1.0, 123));
  EXPECT_GT(at / below, 2.0);  // unclamped +3 step: ~3x
  EXPECT_LT(above / at, 1.1);  // clamped +3 step: polynomial factors only
  EXPECT_GE(above, at);        // never loses monotonicity at the clamp
}

TEST(PlanShardCountTest, SplitsProportionallyToCostOverThreshold) {
  EXPECT_EQ(PlanShardCount(100.0, 1000.0, 16), 1u);   // under threshold
  EXPECT_EQ(PlanShardCount(2500.0, 1000.0, 16), 3u);  // ceil(2.5)
  EXPECT_EQ(PlanShardCount(999.0, 1000.0, 16), 1u);
  EXPECT_EQ(PlanShardCount(1001.0, 1000.0, 16), 2u);
}

TEST(PlanShardCountTest, ClampsToKernelCount) {
  EXPECT_EQ(PlanShardCount(1e9, 1000.0, 4), 4u);
  // One kernel cannot be subdivided; neither can zero.
  EXPECT_EQ(PlanShardCount(1e9, 1000.0, 1), 1u);
  EXPECT_EQ(PlanShardCount(1e9, 1000.0, 0), 1u);
}

TEST(PlanShardCountTest, ExactThresholdBoundaries) {
  // cost == max_cost sits on the no-split side of the comparison; the
  // first representable cost above it crosses to two shards.
  EXPECT_EQ(PlanShardCount(1000.0, 1000.0, 16), 1u);
  EXPECT_EQ(PlanShardCount(std::nextafter(1000.0, 2000.0), 1000.0, 16), 2u);
  // want == kernels lands exactly on the kernel clamp.
  EXPECT_EQ(PlanShardCount(16000.0, 1000.0, 16), 16u);
  EXPECT_EQ(PlanShardCount(15999.0, 1000.0, 16), 16u);  // ceil -> clamp
}

TEST(PlanShardCountTest, NonPositiveThresholdDisablesSplitting) {
  EXPECT_EQ(PlanShardCount(1e9, 0.0, 64), 1u);
  EXPECT_EQ(PlanShardCount(1e9, -5.0, 64), 1u);
}

}  // namespace
}  // namespace mce::decision
