#include "incremental/incremental_mce.h"

#include <gtest/gtest.h>

#include "decomp/find_max_cliques.h"
#include "gen/generators.h"
#include "gen/special.h"
#include "mce/naive.h"
#include "test_util.h"
#include "util/random.h"

namespace mce::incremental {
namespace {

/// Asserts the engine's clique set equals a fresh enumeration of its
/// current graph.
void ExpectConsistent(const IncrementalMce& engine) {
  CliqueSet current = engine.CurrentCliques();
  Graph snapshot = engine.graph().ToGraph();
  mce::test::ExpectMatchesNaive(snapshot, current);
}

TEST(IncrementalMceTest, InitializesFromGraph) {
  Graph g = mce::test::Figure1Graph();
  IncrementalMce engine(g);
  EXPECT_EQ(engine.num_cliques(), 12u);
  ExpectConsistent(engine);
}

TEST(IncrementalMceTest, InsertCreatesEdgeClique) {
  IncrementalMce engine(mce::test::PathGraph(4));  // 0-1-2-3
  // Initially three edge-cliques.
  EXPECT_EQ(engine.num_cliques(), 3u);
  Result<UpdateStats> stats = engine.AddEdge(0, 3);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->cliques_added, 1u);
  EXPECT_EQ(stats->cliques_removed, 0u);
  EXPECT_EQ(engine.num_cliques(), 4u);
  ExpectConsistent(engine);
}

TEST(IncrementalMceTest, InsertMergesTriangle) {
  IncrementalMce engine(mce::test::PathGraph(3));  // 0-1-2
  Result<UpdateStats> stats = engine.AddEdge(0, 2);
  ASSERT_TRUE(stats.ok());
  // {0,1} and {1,2} die; {0,1,2} is born.
  EXPECT_EQ(stats->cliques_added, 1u);
  EXPECT_EQ(stats->cliques_removed, 2u);
  EXPECT_EQ(engine.num_cliques(), 1u);
  ExpectConsistent(engine);
}

TEST(IncrementalMceTest, RemoveSplitsClique) {
  IncrementalMce engine(gen::Complete(4));
  EXPECT_EQ(engine.num_cliques(), 1u);
  Result<UpdateStats> stats = engine.RemoveEdge(0, 1);
  ASSERT_TRUE(stats.ok());
  // {0,1,2,3} dies; {0,2,3} and {1,2,3} are born.
  EXPECT_EQ(stats->cliques_removed, 1u);
  EXPECT_EQ(stats->cliques_added, 2u);
  ExpectConsistent(engine);
}

TEST(IncrementalMceTest, RemoveKeepsHalvesUniqueAndMaximal) {
  // Two overlapping triangles {0,1,2} and {0,1,3}: deleting (0,1) must
  // not duplicate the shared pair {0,1}'s remnants.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  b.AddEdge(0, 3);
  b.AddEdge(1, 3);
  IncrementalMce engine(b.Build());
  EXPECT_EQ(engine.num_cliques(), 2u);
  ASSERT_TRUE(engine.RemoveEdge(0, 1).ok());
  ExpectConsistent(engine);
}

TEST(IncrementalMceTest, ErrorsOnBadUpdates) {
  IncrementalMce engine(mce::test::PathGraph(3));
  EXPECT_EQ(engine.AddEdge(0, 1).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(engine.RemoveEdge(0, 2).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.AddEdge(0, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.AddEdge(0, 99).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(engine.RemoveEdge(0, 99).status().code(),
            StatusCode::kOutOfRange);
  // Failed updates must not corrupt state.
  ExpectConsistent(engine);
}

TEST(IncrementalMceTest, AddNodeIsSingletonClique) {
  IncrementalMce engine(mce::test::PathGraph(2));
  NodeId v = engine.AddNode();
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(engine.num_cliques(), 2u);  // {0,1} and {2}
  ExpectConsistent(engine);
  // Wire it in: singleton dies, edge clique born.
  ASSERT_TRUE(engine.AddEdge(2, 0).ok());
  ExpectConsistent(engine);
}

TEST(IncrementalMceTest, CliquesContainingTracksMembership) {
  IncrementalMce engine(gen::Complete(3));
  EXPECT_EQ(engine.CliquesContaining(0), 1u);
  ASSERT_TRUE(engine.RemoveEdge(0, 1).ok());
  // Cliques now {0,2} and {1,2}.
  EXPECT_EQ(engine.CliquesContaining(2), 2u);
  EXPECT_EQ(engine.CliquesContaining(0), 1u);
}

// The load-bearing property test: a long random edit script, checked
// against a fresh enumeration after every single update.
TEST(IncrementalMceTest, RandomEditScriptStaysExact) {
  Rng rng(2016);
  const NodeId n = 14;
  Graph start = gen::ErdosRenyiGnp(n, 0.2, &rng);
  IncrementalMce engine(start);
  ExpectConsistent(engine);
  int applied = 0;
  for (int step = 0; step < 250; ++step) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) continue;
    if (engine.graph().HasEdge(u, v)) {
      ASSERT_TRUE(engine.RemoveEdge(u, v).ok());
    } else {
      ASSERT_TRUE(engine.AddEdge(u, v).ok());
    }
    ++applied;
    ExpectConsistent(engine);
  }
  EXPECT_GT(applied, 100);
}

TEST(IncrementalMceTest, DensifyThenSparsify) {
  // Drive an empty graph to complete and back; the engine must match a
  // fresh enumeration at the extremes and at spot checks.
  const NodeId n = 8;
  GraphBuilder b;
  b.ReserveNodes(n);
  IncrementalMce engine(b.Build());
  EXPECT_EQ(engine.num_cliques(), n);  // n singletons
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      ASSERT_TRUE(engine.AddEdge(u, v).ok());
    }
  }
  EXPECT_EQ(engine.num_cliques(), 1u);  // K_n
  ExpectConsistent(engine);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      ASSERT_TRUE(engine.RemoveEdge(u, v).ok());
    }
  }
  EXPECT_EQ(engine.num_cliques(), n);  // back to singletons
  ExpectConsistent(engine);
}

TEST(IncrementalMceTest, GrowingNetworkWithNodeArrivals) {
  // The evolving-social-network scenario: nodes join over time and attach
  // to existing members (preferential-attachment flavored).
  GraphBuilder b;
  b.ReserveNodes(3);
  b.AddEdge(0, 1);
  IncrementalMce engine(b.Build());
  Rng rng(7);
  for (int arrival = 0; arrival < 15; ++arrival) {
    NodeId v = engine.AddNode();
    // Attach to 1-3 random existing nodes.
    const int links = 1 + static_cast<int>(rng.NextBounded(3));
    for (int l = 0; l < links; ++l) {
      NodeId target = static_cast<NodeId>(rng.NextBounded(v));
      if (target != v && !engine.graph().HasEdge(v, target)) {
        ASSERT_TRUE(engine.AddEdge(v, target).ok());
      }
    }
    ExpectConsistent(engine);
  }
  EXPECT_EQ(engine.graph().num_nodes(), 18u);
}

TEST(IncrementalMceTest, UpdateStatsAreAccurate) {
  IncrementalMce engine(mce::test::PathGraph(3));  // cliques {0,1},{1,2}
  size_t before = engine.num_cliques();
  Result<UpdateStats> s = engine.AddEdge(0, 2);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(before + s->cliques_added - s->cliques_removed,
            engine.num_cliques());
  Result<UpdateStats> r = engine.RemoveEdge(0, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(engine.num_cliques(), 2u);  // {0,2} and {1,2}
}

TEST(IncrementalMceTest, MatchesBatchPipelineAfterUpdates) {
  // Cross-check against the decomposition pipeline, not just the naive
  // enumerator.
  Rng rng(99);
  Graph start = gen::BarabasiAlbert(40, 2, &rng);
  IncrementalMce engine(start);
  for (int step = 0; step < 30; ++step) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(40));
    NodeId v = static_cast<NodeId>(rng.NextBounded(40));
    if (u == v) continue;
    if (engine.graph().HasEdge(u, v)) {
      ASSERT_TRUE(engine.RemoveEdge(u, v).ok());
    } else {
      ASSERT_TRUE(engine.AddEdge(u, v).ok());
    }
  }
  Graph snapshot = engine.graph().ToGraph();
  decomp::FindMaxCliquesOptions options;
  options.max_block_size = 12;
  decomp::FindMaxCliquesResult batch =
      decomp::FindMaxCliques(snapshot, options);
  CliqueSet current = engine.CurrentCliques();
  mce::test::ExpectSameCliques(current, batch.cliques);
}

}  // namespace
}  // namespace mce::incremental
