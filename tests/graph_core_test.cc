#include "graph/core_decomposition.h"
#include "graph/ordered_adjacency.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/special.h"
#include "graph/builder.h"
#include "graph/metrics.h"
#include "test_util.h"
#include "util/random.h"

namespace mce {
namespace {

TEST(CoreDecompositionTest, PathGraphHasDegeneracyOne) {
  Graph g = test::PathGraph(10);
  CoreDecomposition d = ComputeCoreDecomposition(g);
  EXPECT_EQ(d.degeneracy, 1u);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(d.core[v], 1u);
}

TEST(CoreDecompositionTest, CycleGraphHasDegeneracyTwo) {
  Graph g = test::CycleGraph(8);
  EXPECT_EQ(Degeneracy(g), 2u);
}

TEST(CoreDecompositionTest, CompleteGraph) {
  Graph g = gen::Complete(6);
  CoreDecomposition d = ComputeCoreDecomposition(g);
  EXPECT_EQ(d.degeneracy, 5u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(d.core[v], 5u);
}

TEST(CoreDecompositionTest, StarGraphHasDegeneracyOne) {
  Graph g = test::StarGraph(20);
  EXPECT_EQ(Degeneracy(g), 1u);
}

TEST(CoreDecompositionTest, EmptyGraph) {
  Graph g;
  CoreDecomposition d = ComputeCoreDecomposition(g);
  EXPECT_EQ(d.degeneracy, 0u);
  EXPECT_TRUE(d.order.empty());
}

TEST(CoreDecompositionTest, MixedCoreNumbers) {
  // Triangle {0,1,2} with a pendant path 2-3-4: cores 2,2,2,1,1.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  Graph g = b.Build();
  CoreDecomposition d = ComputeCoreDecomposition(g);
  EXPECT_EQ(d.core[0], 2u);
  EXPECT_EQ(d.core[1], 2u);
  EXPECT_EQ(d.core[2], 2u);
  EXPECT_EQ(d.core[3], 1u);
  EXPECT_EQ(d.core[4], 1u);
  EXPECT_EQ(d.degeneracy, 2u);
}

// The defining property of a degeneracy ordering: every node has at most
// `degeneracy` neighbors that appear later in the order.
TEST(CoreDecompositionTest, OrderingPropertyOnRandomGraphs) {
  Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = gen::ErdosRenyiGnp(60, 0.1 + 0.05 * trial, &rng);
    CoreDecomposition d = ComputeCoreDecomposition(g);
    ASSERT_EQ(d.order.size(), g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      uint32_t later = 0;
      for (NodeId u : g.Neighbors(v)) {
        if (d.position[u] > d.position[v]) ++later;
      }
      EXPECT_LE(later, d.degeneracy);
    }
    // position is the inverse of order.
    for (uint32_t i = 0; i < d.order.size(); ++i) {
      EXPECT_EQ(d.position[d.order[i]], i);
    }
  }
}

TEST(CoreDecompositionTest, CoreNumbersAreMonotoneUnderEdgeAddition) {
  Rng rng(7);
  Graph g1 = gen::ErdosRenyiGnp(40, 0.1, &rng);
  CoreDecomposition d1 = ComputeCoreDecomposition(g1);
  // Add the complete graph on nodes 0..4.
  Graph g2 = gen::OverlayCliques(g1, {{0, 1, 2, 3, 4}});
  CoreDecomposition d2 = ComputeCoreDecomposition(g2);
  for (NodeId v = 0; v < 40; ++v) EXPECT_GE(d2.core[v], d1.core[v]);
}

TEST(KCoreNodesTest, ExtractsCorrectCore) {
  GraphBuilder b;
  // K4 on {0..3} plus pendant 3-4.
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = i + 1; j < 4; ++j) b.AddEdge(i, j);
  }
  b.AddEdge(3, 4);
  Graph g = b.Build();
  EXPECT_EQ(KCoreNodes(g, 3), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(KCoreNodes(g, 1).size(), 5u);
  EXPECT_TRUE(KCoreNodes(g, 4).empty());
}

TEST(DStarTest, KnownValues) {
  // Star K_{1,9}: one node of degree 9, nine of degree 1 -> d* = 1?
  // |{v: deg >= 1}| = 10 >= 1, |{v: deg >= 2}| = 1 < 2 -> d* = 1.
  EXPECT_EQ(DStar(test::StarGraph(10)), 1u);
  // Complete graph K6: all degrees 5, 6 nodes with deg >= 5 -> d* = 5.
  EXPECT_EQ(DStar(gen::Complete(6)), 5u);
  // Path of 10: degrees mostly 2 -> d* = 2.
  EXPECT_EQ(DStar(test::PathGraph(10)), 2u);
  EXPECT_EQ(DStar(Graph()), 0u);
}

TEST(DStarTest, AtLeastDegeneracyHalf) {
  // d* upper-bounds nothing in general, but it is always >= the degeneracy
  // is false; instead check the definition directly on random graphs.
  Rng rng(11);
  for (int t = 0; t < 8; ++t) {
    Graph g = gen::ErdosRenyiGnp(50, 0.15, &rng);
    uint32_t ds = DStar(g);
    uint32_t count = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (g.Degree(v) >= ds) ++count;
    }
    EXPECT_GE(count, ds);
    // Maximality: ds+1 fails.
    uint32_t count_next = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (g.Degree(v) >= ds + 1) ++count_next;
    }
    EXPECT_LT(count_next, ds + 1);
  }
}

TEST(HnWorstCaseTest, DegeneracyStaysBelowMPlusOne) {
  // Theorem 1: H_n has degeneracy < m + 1 (so <= m).
  for (uint32_t m : {2u, 4u, 6u}) {
    Graph h = gen::HnWorstCase(30, m);
    EXPECT_LE(Degeneracy(h), m);
  }
}

TEST(OrderedAdjacencyTest, PartitionsEveryRow) {
  Rng rng(91);
  Graph g = gen::BarabasiAlbert(150, 4, &rng);
  OrderedAdjacency ordered(g);
  EXPECT_EQ(ordered.num_nodes(), g.num_nodes());
  const CoreDecomposition& cores = ordered.cores();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto later = ordered.LaterNeighbors(v);
    auto earlier = ordered.EarlierNeighbors(v);
    EXPECT_EQ(later.size() + earlier.size(), g.Degree(v));
    // The degeneracy bound on the later side.
    EXPECT_LE(later.size(), cores.degeneracy);
    // Each half is sorted by id and correctly classified.
    EXPECT_TRUE(std::is_sorted(later.begin(), later.end()));
    EXPECT_TRUE(std::is_sorted(earlier.begin(), earlier.end()));
    for (NodeId u : later) {
      EXPECT_GT(cores.position[u], cores.position[v]);
      EXPECT_TRUE(g.HasEdge(u, v));
    }
    for (NodeId u : earlier) {
      EXPECT_LT(cores.position[u], cores.position[v]);
      EXPECT_TRUE(g.HasEdge(u, v));
    }
  }
}

TEST(OrderedAdjacencyTest, EmptyGraph) {
  OrderedAdjacency ordered((Graph()));
  EXPECT_EQ(ordered.num_nodes(), 0u);
}

TEST(MetricsTest, ComputeMetricsAgreesWithPieces) {
  Graph g = test::Figure1Graph();
  GraphMetrics m = ComputeMetrics(g);
  EXPECT_EQ(m.num_nodes, g.num_nodes());
  EXPECT_EQ(m.num_edges, g.num_edges());
  EXPECT_DOUBLE_EQ(m.density, g.Density());
  EXPECT_EQ(m.degeneracy, Degeneracy(g));
  EXPECT_EQ(m.d_star, DStar(g));
  EXPECT_EQ(m.max_degree, 7u);
}

TEST(MetricsTest, DegreeHistogram) {
  Graph g = test::StarGraph(6);  // center degree 5, leaves degree 1
  std::vector<uint64_t> h = DegreeHistogram(g);
  ASSERT_EQ(h.size(), 6u);
  EXPECT_EQ(h[1], 5u);
  EXPECT_EQ(h[5], 1u);
  EXPECT_EQ(h[0], 0u);
  // Truncated at 1: only leaves counted.
  std::vector<uint64_t> t = DegreeHistogram(g, 1);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[1], 5u);
}

TEST(MetricsTest, DegreeRangeFraction) {
  Graph g = test::StarGraph(6);
  EXPECT_DOUBLE_EQ(DegreeRangeFraction(g, 1, 1), 5.0 / 6.0);
  EXPECT_DOUBLE_EQ(DegreeRangeFraction(g, 1, 5), 1.0);
  EXPECT_DOUBLE_EQ(DegreeRangeFraction(g, 2, 4), 0.0);
  EXPECT_DOUBLE_EQ(DegreeRangeFraction(Graph(), 0, 10), 0.0);
}

}  // namespace
}  // namespace mce
