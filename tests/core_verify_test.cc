#include "core/verify.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/max_clique_finder.h"
#include "gen/generators.h"
#include "mce/clique_io.h"
#include "mce/naive.h"
#include "test_util.h"
#include "util/random.h"

namespace mce {
namespace {

TEST(VerifyTest, CleanResultPasses) {
  Graph g = test::Figure1Graph();
  CliqueSet cliques = NaiveMceSet(g);
  VerificationReport report = VerifyAgainstReference(g, cliques);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.checked, 12u);
  EXPECT_NE(report.ToString().find("[OK]"), std::string::npos);
}

TEST(VerifyTest, DetectsNonClique) {
  using namespace mce::test;
  Graph g = Figure1Graph();
  CliqueSet bad;
  bad.Add(Clique{A, D});  // not adjacent
  VerificationReport report = VerifyCliques(g, bad);
  EXPECT_EQ(report.not_a_clique, 1u);
  EXPECT_FALSE(report.ok());
}

TEST(VerifyTest, DetectsNonMaximal) {
  using namespace mce::test;
  Graph g = Figure1Graph();
  CliqueSet bad;
  bad.Add(Clique{A, J});  // extendable by H
  VerificationReport report = VerifyCliques(g, bad);
  EXPECT_EQ(report.not_maximal, 1u);
  EXPECT_FALSE(report.ok());
}

TEST(VerifyTest, DetectsDuplicates) {
  using namespace mce::test;
  Graph g = Figure1Graph();
  CliqueSet bad;
  bad.Add(Clique{A, J, H});
  bad.Add(Clique{H, J, A});  // same clique
  VerificationReport report = VerifyCliques(g, bad);
  EXPECT_EQ(report.duplicates, 1u);
  EXPECT_FALSE(report.ok());
}

TEST(VerifyTest, DetectsMissing) {
  Graph g = test::Figure1Graph();
  CliqueSet partial = NaiveMceSet(g);
  partial.mutable_cliques().pop_back();  // drop one clique
  VerificationReport report = VerifyAgainstReference(g, partial);
  EXPECT_EQ(report.missing, 1u);
  EXPECT_FALSE(report.ok());
}

TEST(VerifyTest, CertifiesThePipeline) {
  Rng rng(3);
  Graph g = gen::BarabasiAlbert(120, 3, &rng);
  MaxCliqueFinder::Options options;
  options.block_size_ratio = 0.2;
  MaxCliqueFinder finder(options);
  Result<FindResult> result = finder.Find(g);
  ASSERT_TRUE(result.ok());
  VerificationReport report = VerifyAgainstReference(g, result->cliques);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(CliqueIoTest, RoundTrip) {
  Graph g = test::Figure1Graph();
  CliqueSet cliques = NaiveMceSet(g);
  std::string path = testing::TempDir() + "/mce_cliques_rt.txt";
  ASSERT_TRUE(WriteCliques(cliques, path).ok());
  Result<CliqueSet> back = ReadCliques(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(CliqueSet::Equal(*back, cliques));
  std::remove(path.c_str());
}

TEST(CliqueIoTest, SkipsCommentsAndBlankLines) {
  std::string path = testing::TempDir() + "/mce_cliques_comments.txt";
  {
    std::ofstream out(path);
    out << "# header\n\n1 2 3\n\n4 5\n";
  }
  Result<CliqueSet> cs = ReadCliques(path);
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->size(), 2u);
  std::remove(path.c_str());
}

TEST(CliqueIoTest, RejectsGarbage) {
  std::string path = testing::TempDir() + "/mce_cliques_bad.txt";
  {
    std::ofstream out(path);
    out << "1 2 x 3\n";
  }
  Result<CliqueSet> cs = ReadCliques(path);
  EXPECT_FALSE(cs.ok());
  EXPECT_EQ(cs.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CliqueIoTest, MissingFile) {
  Result<CliqueSet> cs = ReadCliques("/nonexistent/zzz.cliques");
  EXPECT_FALSE(cs.ok());
  EXPECT_EQ(cs.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace mce
