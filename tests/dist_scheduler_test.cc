#include "dist/scheduler.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace mce::dist {
namespace {

std::vector<double> WorkerLoads(const std::vector<double>& costs,
                                const std::vector<int>& assignment,
                                int workers) {
  std::vector<double> loads(workers, 0.0);
  for (size_t i = 0; i < costs.size(); ++i) loads[assignment[i]] += costs[i];
  return loads;
}

TEST(SchedulerTest, AssignmentsAreInRange) {
  std::vector<double> costs(37, 1.0);
  for (PartitionStrategy s : {PartitionStrategy::kGreedyLpt,
                              PartitionStrategy::kHash,
                              PartitionStrategy::kRoundRobin}) {
    std::vector<int> a = AssignTasks(costs, 5, s);
    ASSERT_EQ(a.size(), costs.size());
    for (int w : a) {
      EXPECT_GE(w, 0);
      EXPECT_LT(w, 5);
    }
  }
}

TEST(SchedulerTest, GreedyLptBalancesUniformTasks) {
  std::vector<double> costs(100, 1.0);
  std::vector<int> a = AssignTasks(costs, 4, PartitionStrategy::kGreedyLpt);
  std::vector<double> loads = WorkerLoads(costs, a, 4);
  for (double l : loads) EXPECT_DOUBLE_EQ(l, 25.0);
}

TEST(SchedulerTest, GreedyLptHandlesSkewedTasks) {
  // One giant task plus many small ones: LPT puts the giant alone-ish.
  std::vector<double> costs{100.0};
  for (int i = 0; i < 50; ++i) costs.push_back(2.0);
  std::vector<int> a = AssignTasks(costs, 2, PartitionStrategy::kGreedyLpt);
  std::vector<double> loads = WorkerLoads(costs, a, 2);
  // Optimal split: 100 vs 100; LPT achieves it here.
  EXPECT_DOUBLE_EQ(std::max(loads[0], loads[1]), 100.0);
}

TEST(SchedulerTest, GreedyLptBeatsHashOnHeterogeneousTasks) {
  // Scale-free-like task sizes (the paper's point about hash partitioning).
  std::vector<double> costs;
  for (int i = 1; i <= 200; ++i) costs.push_back(1000.0 / i);
  const int workers = 10;
  auto lpt = AssignTasks(costs, workers, PartitionStrategy::kGreedyLpt);
  auto hash = AssignTasks(costs, workers, PartitionStrategy::kHash, 13);
  auto max_load = [&](const std::vector<int>& a) {
    std::vector<double> loads = WorkerLoads(costs, a, workers);
    return *std::max_element(loads.begin(), loads.end());
  };
  EXPECT_LT(max_load(lpt), max_load(hash));
}

TEST(SchedulerTest, RoundRobinCycles) {
  std::vector<double> costs(7, 1.0);
  std::vector<int> a = AssignTasks(costs, 3, PartitionStrategy::kRoundRobin);
  EXPECT_EQ(a, (std::vector<int>{0, 1, 2, 0, 1, 2, 0}));
}

TEST(SchedulerTest, HashIsDeterministicInSeed) {
  std::vector<double> costs(50, 1.0);
  auto a1 = AssignTasks(costs, 7, PartitionStrategy::kHash, 42);
  auto a2 = AssignTasks(costs, 7, PartitionStrategy::kHash, 42);
  auto a3 = AssignTasks(costs, 7, PartitionStrategy::kHash, 43);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, a3);
}

TEST(SchedulerTest, SingleWorkerGetsEverything) {
  std::vector<double> costs(10, 3.0);
  for (PartitionStrategy s : {PartitionStrategy::kGreedyLpt,
                              PartitionStrategy::kHash,
                              PartitionStrategy::kRoundRobin}) {
    std::vector<int> a = AssignTasks(costs, 1, s);
    for (int w : a) EXPECT_EQ(w, 0);
  }
}

TEST(SchedulerTest, EmptyTaskList) {
  std::vector<double> none;
  EXPECT_TRUE(AssignTasks(none, 4, PartitionStrategy::kGreedyLpt).empty());
}

TEST(SchedulerTest, StrategyNames) {
  EXPECT_STREQ(ToString(PartitionStrategy::kGreedyLpt), "greedy-lpt");
  EXPECT_STREQ(ToString(PartitionStrategy::kHash), "hash");
  EXPECT_STREQ(ToString(PartitionStrategy::kRoundRobin), "round-robin");
}

}  // namespace
}  // namespace mce::dist
