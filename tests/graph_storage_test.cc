// GraphStorage and the MCECSR02 binary format: heap/mmap equality, header
// validation, and the Graph ownership semantics the storage refactor
// introduced (copies share storage, moves reset the source to empty).

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/io.h"
#include "graph/storage.h"
#include "graph/subgraph.h"
#include "test_util.h"
#include "util/status.h"

namespace mce {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(GraphStorageTest, CsrBinaryRoundTripHeap) {
  const Graph g = test::Figure1Graph();
  const std::string path = TempPath("fig1.mcsr");
  ASSERT_TRUE(WriteCsrBinary(g, path).ok());
  Result<Graph> back = ReadCsrBinary(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(*back == g);
  EXPECT_EQ(back->storage().kind(), std::string("heap"));
  std::remove(path.c_str());
}

TEST(GraphStorageTest, MmapGraphEqualsHeapGraph) {
  const Graph g = test::Figure1Graph();
  const std::string path = TempPath("fig1_mmap.mcsr");
  ASSERT_TRUE(WriteCsrBinary(g, path).ok());
  Result<Graph> mapped = OpenMmapGraph(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_TRUE(*mapped == g);
  EXPECT_EQ(mapped->storage().kind(), std::string("mmap"));
  // mmap pages are clean and reclaimable, so they are not resident state.
  EXPECT_EQ(mapped->ResidentBytes(), 0u);
  EXPECT_GT(g.ResidentBytes(), 0u);
  // Neighbor queries behave identically through either storage.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_EQ(mapped->Degree(u), g.Degree(u));
  }
  std::remove(path.c_str());
}

TEST(GraphStorageTest, MmapRejectsBadMagic) {
  const std::string path = TempPath("badmagic.mcsr");
  ASSERT_TRUE(WriteCsrBinary(test::PathGraph(4), path).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.write("XXXXXXXX", 8);
  }
  Result<Graph> mapped = OpenMmapGraph(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(ReadCsrBinary(path).ok());
  std::remove(path.c_str());
}

TEST(GraphStorageTest, MmapRejectsTruncatedFile) {
  const std::string path = TempPath("truncated.mcsr");
  ASSERT_TRUE(WriteCsrBinary(test::Figure1Graph(), path).ok());
  // Chop the adjacency tail: the size check must notice the file no
  // longer matches its own header.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 8));
  out.close();
  EXPECT_FALSE(OpenMmapGraph(path).ok());
  EXPECT_FALSE(ReadCsrBinary(path).ok());
  std::remove(path.c_str());
}

TEST(GraphStorageTest, CopiesShareStorage) {
  const Graph g = test::Figure1Graph();
  const Graph copy = g;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(copy == g);
  // A copy is a second view of the same immutable CSR, not a clone.
  EXPECT_EQ(&copy.storage(), &g.storage());
  EXPECT_EQ(copy.Neighbors(0).data(), g.Neighbors(0).data());
}

TEST(GraphStorageTest, MoveResetsSourceToEmpty) {
  Graph g = test::Figure1Graph();
  const Graph expect = g;
  Graph moved = std::move(g);
  EXPECT_TRUE(moved == expect);
  // The moved-from graph is the valid empty graph, not a dangling view.
  EXPECT_EQ(g.num_nodes(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(g.num_edges(), 0u);
  g = std::move(moved);
  EXPECT_TRUE(g == expect);
  EXPECT_EQ(moved.num_nodes(), 0u);  // NOLINT(bugprone-use-after-move)
}

TEST(GraphStorageTest, InduceOnMmapGraphMatchesHeap) {
  const Graph g = test::Figure1Graph();
  const std::string path = TempPath("induce.mcsr");
  ASSERT_TRUE(WriteCsrBinary(g, path).ok());
  Result<Graph> mapped = OpenMmapGraph(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  const std::vector<NodeId> keep = {test::D, test::S, test::E, test::H};
  InducedSubgraph from_heap = Induce(g, keep);
  InducedSubgraph from_mmap = Induce(*mapped, keep);
  EXPECT_TRUE(from_heap.graph == from_mmap.graph);
  EXPECT_EQ(from_heap.to_parent, from_mmap.to_parent);
  // The induced graph is always heap-owned, whatever fed it.
  EXPECT_EQ(from_mmap.graph.storage().kind(), std::string("heap"));
  std::remove(path.c_str());
}

TEST(GraphStorageTest, EmptyGraphHasValidStorage) {
  const Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.storage().offsets().size(), 1u);
}

}  // namespace
}  // namespace mce
